// Benchmarks regenerating every table/figure of the paper's evaluation,
// plus ablations of the design choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The Figure 2 benchmarks ARE the experiment: the paper's y-axis is
// per-invocation scheduler cost, which testing.B measures directly
// (ns/op = nanoseconds per scheduled slot / per EDF invocation).
package pfair_test

import (
	"fmt"
	"testing"

	"pfair/internal/core"
	"pfair/internal/edf"
	"pfair/internal/experiments"
	"pfair/internal/heap"
	"pfair/internal/mpcp"
	"pfair/internal/overhead"
	"pfair/internal/supertask"
	"pfair/internal/task"
	"pfair/internal/taskgen"
	"pfair/internal/wfq"
	"pfair/internal/wrr"
)

// BenchmarkFig1Windows measures the subtask-algebra primitives (release,
// deadline, b-bit, group deadline) underlying Figure 1.
func BenchmarkFig1Windows(b *testing.B) {
	pat := core.NewPattern(8, 11)
	for i := 0; i < b.N; i++ {
		k := int64(i%64 + 1)
		_ = pat.Release(k)
		_ = pat.Deadline(k)
		_ = pat.BBit(k)
		_ = pat.GroupDeadline(k)
	}
}

// fig2Set builds the Figure 2 workload for n tasks and total weight ≤ m.
// At n far above m the generator's per-task weights are rejection-bound
// (Fig2a's N=1000 point admits what fits under total weight 1), which is
// the paper's setup for 2(a); 2(b) instead fixes the load fraction per
// machine size below.
func fig2Set(n, m int) task.Set {
	g := taskgen.New(int64(7000 + n + m))
	set, err := g.SetMaxUtil("T", n, float64(m), taskgen.DefaultPeriodsSlots)
	if err != nil {
		panic(err)
	}
	return set
}

// BenchmarkFig2aPD2 measures PD²'s cost per scheduled slot on one
// processor (Figure 2(a)'s PD² curve); ns/op corresponds to the paper's
// per-invocation microseconds.
func BenchmarkFig2aPD2(b *testing.B) {
	for _, n := range []int{15, 100, 1000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			set := fig2Set(n, 1)
			s := core.NewScheduler(1, core.PD2, core.Options{})
			for _, t := range set {
				if err := s.Join(t); err != nil {
					continue
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
		})
	}
}

// BenchmarkFig2aEDF measures EDF's per-invocation cost on one processor
// (Figure 2(a)'s EDF curve). Each iteration simulates a fixed window and
// normalizes to invocations.
func BenchmarkFig2aEDF(b *testing.B) {
	for _, n := range []int{15, 100, 1000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			set := fig2Set(n, 1)
			var invocations, nanos int64
			for i := 0; i < b.N; i++ {
				s := edf.NewSimulator()
				s.MeasureOverhead(true)
				for _, t := range set {
					if err := s.Add(edf.Config{Task: t}); err != nil {
						b.Fatal(err)
					}
				}
				s.Run(5000)
				invocations += s.Stats().Invocations
				nanos += s.Stats().SchedulingTime.Nanoseconds()
			}
			if invocations > 0 {
				b.ReportMetric(float64(nanos)/float64(invocations), "ns/invocation")
			}
		})
	}
}

// BenchmarkFig2bPD2 measures PD²'s per-slot cost on 2–16 processors
// (Figure 2(b)). Every point runs the same 200 tasks scaled to 75% of
// its machine (0.75·M total weight) with admission asserted, so the
// M-axis varies only the processor count, not the load: an earlier
// version drew one weight-≤M set per point and silently dropped
// rejections, which left M=16 at 58% utilization and made it measure
// cheaper than M=8.
func BenchmarkFig2bPD2(b *testing.B) {
	// The larger half of the slot-period menu: 200 tasks at weight floor
	// 1/p must stay under the smallest target load (0.75·2), which the
	// sub-100-slot periods' floors would alone exceed.
	periods := []int64{100, 200, 400, 500, 1000}
	for _, m := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			g := taskgen.New(int64(7000 + 200 + m))
			set, err := g.Set("T", 200, 0.75*float64(m), periods)
			if err != nil {
				b.Fatal(err)
			}
			s := core.NewScheduler(m, core.PD2, core.Options{})
			for _, t := range set {
				if err := s.Join(t); err != nil {
					b.Fatalf("join %s: %v", t.Name, err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
		})
	}
}

// fig3Workload builds one Figure 3 evaluation unit: a 50-task set at the
// sweep midpoint with its cache-delay table and Section 4 parameters.
func fig3Workload(seed int64) (task.Set, overhead.Params) {
	g := taskgen.New(seed)
	set, err := g.Set("T", 50, 8.0, experiments.Fig3PeriodsUS)
	if err != nil {
		panic(err)
	}
	delays := g.CacheDelays(set, 100)
	return set, experiments.PaperParams(50, delays)
}

// BenchmarkFig3PD2 evaluates the PD² schedulability computation
// (Equation (3) fixed points + quantum rounding + the self-consistent
// processor count) for one task set — the per-set unit of Figure 3.
func BenchmarkFig3PD2(b *testing.B) {
	set, params := fig3Workload(11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = overhead.MinProcsPD2(set, params)
	}
}

// BenchmarkFig3EDFFF evaluates the EDF-FF side: decreasing-period
// first-fit with inflation-aware acceptance.
func BenchmarkFig3EDFFF(b *testing.B) {
	set, params := fig3Workload(11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = overhead.MinProcsEDFFF(set, params)
	}
}

// BenchmarkFig4Losses evaluates the full loss decomposition (both schemes)
// per task set — the per-set unit of Figure 4.
func BenchmarkFig4Losses(b *testing.B) {
	set, params := fig3Workload(13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = overhead.ComputeLosses(set, params)
	}
}

// BenchmarkFig5Supertask runs the Figure 5 scenario (90 slots, both plain
// and reweighted) per iteration.
func BenchmarkFig5Supertask(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig5(90)
		if len(res.Misses) == 0 {
			b.Fatal("Figure 5 miss disappeared")
		}
	}
}

// BenchmarkQuantumSweep evaluates one quantum-size point of the Section 4
// trade-off per iteration.
func BenchmarkQuantumSweep(b *testing.B) {
	cfg := experiments.DefaultQuantumSweepConfig()
	cfg.Sets = 3
	cfg.QuantaUS = []int64{1000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.QuantumSweep(cfg)
	}
}

// BenchmarkAblationTieBreaks compares the per-slot cost of the four
// priority rules: EPDF's bare deadline comparison, PD²'s two tie-breaks,
// PD's longer chain, and PF's recursive b-bit comparison.
func BenchmarkAblationTieBreaks(b *testing.B) {
	for _, alg := range []core.Algorithm{core.EPDF, core.PD2, core.PD, core.PF} {
		b.Run(alg.String(), func(b *testing.B) {
			set := fig2Set(200, 4)
			s := core.NewScheduler(4, alg, core.Options{})
			for _, t := range set {
				if err := s.Join(t); err != nil {
					continue
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
		})
	}
}

// BenchmarkAblationAffinity compares migration counts with and without
// the keep-your-processor assignment pass (reported as migrations/slot).
func BenchmarkAblationAffinity(b *testing.B) {
	for _, noAff := range []bool{false, true} {
		name := "affinity"
		if noAff {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			set := fig2Set(50, 4)
			s := core.NewScheduler(4, core.PD2, core.Options{NoAffinity: noAff})
			for _, t := range set {
				if err := s.Join(t); err != nil {
					continue
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
			b.ReportMetric(float64(s.Stats().Migrations)/float64(b.N), "migrations/slot")
		})
	}
}

// BenchmarkAblationQueue compares the binary-heap ready queue (the
// paper's implementation choice) against a linear scan at several queue
// sizes.
func BenchmarkAblationQueue(b *testing.B) {
	for _, size := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("heap/n=%d", size), func(b *testing.B) {
			h := heap.New(func(a, c int64) bool { return a < c })
			for i := 0; i < size; i++ {
				h.Push(int64(i * 7919 % size))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := h.Pop()
				h.Push(v + 1)
			}
		})
		b.Run(fmt.Sprintf("linear/n=%d", size), func(b *testing.B) {
			vals := make([]int64, size)
			for i := range vals {
				vals[i] = int64(i * 7919 % size)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				min := 0
				for j, v := range vals {
					if v < vals[min] {
						min = j
					}
				}
				vals[min] += int64(size)
			}
		})
	}
}

// BenchmarkAblationFixedPoint compares cold-start Equation (3) fixed
// points against warm starts from the previous result, as in a Figure 3
// utilization sweep where consecutive points share task sets.
func BenchmarkAblationFixedPoint(b *testing.B) {
	set, params := fig3Workload(17)
	s := params.SchedPD2(8, len(set))
	b.Run("cold", func(b *testing.B) {
		iters := 0
		for i := 0; i < b.N; i++ {
			for _, t := range set {
				_, it, _ := overhead.InflatePD2(t.Cost, t.Period, params, s, params.CacheDelay(t))
				iters += it
			}
		}
		b.ReportMetric(float64(iters)/float64(b.N*len(set)), "iters/task")
	})
	b.Run("warm", func(b *testing.B) {
		warm := make(map[string]int64, len(set))
		for _, t := range set {
			v, _, _ := overhead.InflatePD2(t.Cost, t.Period, params, s, params.CacheDelay(t))
			warm[t.Name] = v
		}
		iters := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, t := range set {
				_, it, _ := overhead.InflatePD2From(t.Cost, warm[t.Name], t.Period, params, s, params.CacheDelay(t))
				iters += it
			}
		}
		b.ReportMetric(float64(iters)/float64(b.N*len(set)), "iters/task")
	})
}

// BenchmarkSupertaskServe measures the supertask internal-EDF step.
func BenchmarkSupertaskServe(b *testing.B) {
	sys := supertask.NewSystem(2, core.PD2)
	st := &supertask.Supertask{Name: "S", Components: task.Set{
		task.MustNew("a", 1, 5), task.MustNew("b", 1, 10), task.MustNew("c", 1, 20),
	}}
	if err := sys.AddSupertask(st, true); err != nil {
		b.Fatal(err)
	}
	if err := sys.AddTask(task.MustNew("w", 1, 2)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	sys.Run(int64(b.N))
}

// BenchmarkWRR measures the weighted-round-robin baseline's per-slot cost
// for comparison with the Pfair schedulers.
func BenchmarkWRR(b *testing.B) {
	set := fig2Set(200, 4)
	s, err := wrr.NewScheduler(4, set)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkMPCPAnalysis measures one full MPCP response-time analysis of a
// 24-task, 4-resource system.
func BenchmarkMPCPAnalysis(b *testing.B) {
	g := taskgen.New(31)
	set, err := g.SetCapped("T", 24, 6, 0.8, experiments.Fig3PeriodsUS)
	if err != nil {
		b.Fatal(err)
	}
	sys := &mpcp.System{}
	for i, t := range set {
		sys.Tasks = append(sys.Tasks, mpcp.TaskSpec{
			Task: t, Proc: i % 8,
			Sections: []mpcp.CS{{Resource: fmt.Sprintf("R%d", i%4), Length: 50}},
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.ResponseTimes(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWFQ measures packet scheduling including the GPS reference
// computation (64 packets over 8 flows per iteration).
func BenchmarkWFQ(b *testing.B) {
	for _, pol := range []wfq.Policy{wfq.WFQ, wfq.WF2Q} {
		b.Run(pol.String(), func(b *testing.B) {
			flows := make([]wfq.Flow, 8)
			for i := range flows {
				flows[i] = wfq.Flow{Name: fmt.Sprintf("f%d", i), Weight: int64(1 + i%4)}
			}
			var packets []wfq.Packet
			for i := 0; i < 64; i++ {
				packets = append(packets, wfq.Packet{
					Flow: flows[i%8].Name, Arrival: int64(i / 4), Length: int64(1 + i%5),
				})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := wfq.Schedule(flows, packets, pol); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkResponseExperiment evaluates one load level of the Section 2
// response-time comparison.
func BenchmarkResponseExperiment(b *testing.B) {
	cfg := experiments.ResponseConfig{M: 4, N: 16, Loads: []float64{0.4}, Sets: 2, Horizon: 1000, Seed: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.ResponseTimes(cfg)
	}
}

// BenchmarkSyncExperiment evaluates one critical-section length of the
// Section 5.1 comparison.
func BenchmarkSyncExperiment(b *testing.B) {
	cfg := experiments.SyncConfig{N: 16, TotalUtil: 4, Resources: 4, Sets: 2, CSLengths: []int64{100}, QuantumUS: 1000, Seed: 9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.SyncComparison(cfg)
	}
}
