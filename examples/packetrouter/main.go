// Packetrouter: the networking side of Section 5.3. Fair uniprocessor
// scheduling was developed for packet links — GPS as the fluid ideal, WFQ
// and WF²Q as its packet-by-packet approximations — and Pfair carries the
// same discipline to multiprocessors. This example schedules a bursty flow
// against ten light flows on one link and shows what WF²Q's eligibility
// rule (the packet form of a Pfair pseudo-release) buys: the burst cannot
// run ahead of its fluid service, so the light flows keep their latency.
package main

import (
	"fmt"
	"log"

	"pfair/internal/wfq"
)

func main() {
	// One heavy flow with half the link, ten light flows with 1/20 each.
	flows := []wfq.Flow{{Name: "video", Weight: 10}}
	for i := 1; i <= 10; i++ {
		flows = append(flows, wfq.Flow{Name: fmt.Sprintf("ssh-%02d", i), Weight: 1})
	}
	// The video flow dumps an 11-packet burst at t=0; every ssh flow has
	// one packet waiting at t=0 too.
	var packets []wfq.Packet
	for i := 0; i < 11; i++ {
		packets = append(packets, wfq.Packet{Flow: "video", Arrival: 0, Length: 1})
	}
	for i := 1; i <= 10; i++ {
		packets = append(packets, wfq.Packet{Flow: fmt.Sprintf("ssh-%02d", i), Arrival: 0, Length: 1})
	}

	for _, pol := range []wfq.Policy{wfq.WFQ, wfq.WF2Q} {
		deps, err := wfq.Schedule(flows, packets, pol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s service order: ", pol)
		burst := 0
		counted := true
		var worstSSH int64
		for _, d := range deps {
			name := packets[d.Packet].Flow
			if name == "video" {
				fmt.Print("V")
				if counted {
					burst++
				}
			} else {
				fmt.Print("s")
				counted = false
				if d.Finish > worstSSH {
					worstSSH = d.Finish
				}
			}
		}
		fmt.Printf("\n  leading video burst: %d packets; last ssh packet done at t=%d\n", burst, worstSSH)
		// Worst-case fairness: how far the video flow's received service
		// runs ahead of its GPS fluid share (weight 10/20 = half the
		// link while everything is backlogged).
		var served int64
		var worstLead float64
		for _, d := range deps {
			if packets[d.Packet].Flow != "video" {
				continue
			}
			served++
			if lead := float64(served) - 0.5*float64(d.Finish); lead > worstLead {
				worstLead = lead
			}
		}
		fmt.Printf("  video service lead over its fluid share: %.2f packets (WF²Q keeps this ≤ 1)\n\n", worstLead)
	}

	fmt.Println("WFQ lets the burst monopolize the link before the light flows run;")
	fmt.Println("WF²Q's eligibility rule — serve only packets whose fluid service has")
	fmt.Println("begun — interleaves them, exactly as Pfair windows gate subtasks.")
}
