// Videoserver: the intra-sporadic (IS) model on a streaming workload.
//
// Section 2 motivates the IS model with "applications involving packets
// arriving over a network: due to network congestion and other factors,
// packets may arrive late or in bursts". This example runs a two-processor
// video server with four streams whose packets jitter: some subtasks
// arrive late (IS delays shift their windows right) and some arrive early
// in bursts (eligible before their Pfair release, deadline unchanged).
// PD² is optimal for IS systems, so no deadline is ever missed while
// Equation (2) holds.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pfair"
	"pfair/internal/core"
)

// jitterModel is a core.ReleaseModel with reproducible random late and
// early arrivals.
type jitterModel struct {
	seed      int64
	lateEvery int64 // ~1 in lateEvery subtasks is late
	maxLate   int64
	maxEarly  int64
}

//pfair:hotpath
func (j jitterModel) Offset(i int64) int64 {
	// Cumulative delay: walk the per-subtask late draws up to i. Each
	// subtask's draw is deterministic in (seed, index).
	total := int64(0)
	for k := int64(1); k <= i; k++ {
		r := rand.New(rand.NewSource(j.seed + k))
		if r.Int63n(j.lateEvery) == 0 {
			total += 1 + r.Int63n(j.maxLate)
		}
	}
	return total
}

//pfair:hotpath
func (j jitterModel) Earliness(i int64) int64 {
	r := rand.New(rand.NewSource(^j.seed + i))
	if r.Int63n(j.lateEvery) == 0 {
		return r.Int63n(j.maxEarly + 1)
	}
	return 0
}

func main() {
	// Four streams: two HD (weight 2/3 ≈ a frame every 1.5 slots), one
	// SD (1/3), one audio (1/5). Σ wt = 2/3+2/3+1/3+1/5 = 1.866… ≤ 2.
	streams := []struct {
		name string
		e, p int64
	}{
		{"hd-1", 2, 3}, {"hd-2", 2, 3}, {"sd", 1, 3}, {"audio", 1, 5},
	}

	s := pfair.NewScheduler(2, pfair.PD2, pfair.Options{})
	for i, st := range streams {
		model := jitterModel{seed: int64(100 + i), lateEvery: 7, maxLate: 3, maxEarly: 2}
		if err := s.JoinModel(pfair.MustNewTask(st.name, st.e, st.p), model); err != nil {
			log.Fatalf("admitting %s: %v", st.name, err)
		}
	}

	const horizon = 2000
	delivered := map[string]int64{}
	s.OnSlot(func(t int64, assigned []core.Assignment) {
		for _, a := range assigned {
			delivered[a.Task]++
		}
	})
	s.RunUntil(horizon)
	s.FinishMisses(horizon)

	fmt.Printf("Video server: 4 jittery IS streams on 2 processors for %d slots.\n\n", horizon)
	for _, st := range streams {
		fmt.Printf("  %-6s weight %d/%d  delivered %4d quanta\n", st.name, st.e, st.p, delivered[st.name])
	}
	st := s.Stats()
	fmt.Printf("\nDeadline misses: %d (PD² is optimal for intra-sporadic systems).\n", len(st.Misses))
	fmt.Printf("Context switches: %d, migrations: %d.\n", st.ContextSwitches, st.Migrations)
	if len(st.Misses) > 0 {
		log.Fatal("unexpected misses — the IS optimality property was violated")
	}
}
