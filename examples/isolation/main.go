// Isolation: the Section 5.3 temporal-isolation story, told three ways.
//
// A network-receive handler is provisioned for 2 ms of work every 10 ms,
// but a packet flood makes every activation run 8 ms — the classic
// receive-livelock ingredient ("by using fair algorithms to schedule
// operating system activities, problems such as receive livelock can be
// ameliorated"). Three schedulers face the same flood:
//
//  1. Plain EDF: no isolation — the overrun steals time budgeted to the
//     application tasks, which miss en masse.
//  2. EDF + a constant-bandwidth server around the handler: the overrun is
//     pushed into the handler's own future bandwidth; applications are
//     safe, at the cost of extra server machinery (the paper: "the use of
//     such mechanisms increases scheduling overhead").
//  3. PD²: fairness IS the mechanism — the handler owns weight 2/10 and
//     can never execute above that rate, no matter what it demands.
package main

import (
	"fmt"
	"log"

	"pfair"
	"pfair/internal/edf"
	"pfair/internal/task"
)

func main() {
	const horizon = 4000 // ms

	apps := []*task.Task{
		task.MustNew("audio", 3, 10),
		task.MustNew("control", 2, 5),
	}
	handler := task.MustNew("net-rx", 2, 10)
	flood := func(int64) int64 { return 8 } // every job wants 8 ms, not 2

	victimMisses := func(st edf.Stats) map[string]int {
		m := map[string]int{}
		for _, miss := range st.Misses {
			m[miss.Task]++
		}
		return m
	}

	// 1. Plain EDF.
	plain := edf.NewSimulator()
	mustAdd(plain, edf.Config{Task: handler, ActualCost: flood})
	for _, a := range apps {
		mustAdd(plain, edf.Config{Task: a})
	}
	plain.Run(horizon)
	fmt.Printf("EDF, no isolation:   misses per task = %v\n", victimMisses(plain.Stats()))

	// 2. EDF with a CBS around the handler.
	served := edf.NewSimulator()
	mustAdd(served, edf.Config{
		Task: handler, ActualCost: flood,
		Server: &edf.CBS{Budget: 2, Period: 10},
	})
	for _, a := range apps {
		mustAdd(served, edf.Config{Task: a})
	}
	served.Run(horizon)
	st := served.Stats()
	fmt.Printf("EDF + CBS:           misses per task = %v (handler deadline postponements: %d)\n",
		victimMisses(st), st.Postponements)

	// 3. PD²: the handler is admitted at weight 2/10 and structurally
	// cannot exceed it; the flood shows up as the handler's own backlog,
	// never as anyone else's miss.
	s := pfair.NewScheduler(1, pfair.PD2, pfair.Options{})
	for _, t := range append([]*task.Task{handler}, apps...) {
		if err := s.Join(t); err != nil {
			log.Fatal(err)
		}
	}
	handlerQuanta := int64(0)
	s.OnSlot(func(tt int64, assigned []pfair.Assignment) {
		for _, a := range assigned {
			if a.Task == "net-rx" {
				handlerQuanta++
			}
		}
	})
	s.RunUntil(horizon)
	s.FinishMisses(horizon)
	fmt.Printf("PD²:                 misses = %d; net-rx received %d/%d ms — exactly its 2/10 share\n",
		len(s.Stats().Misses), handlerQuanta, horizon)

	if len(s.Stats().Misses) != 0 {
		log.Fatal("PD² isolation failed")
	}
	fmt.Println("\nFairness provides temporal isolation by construction; EDF needs an")
	fmt.Println("added mechanism (CBS) to get the same guarantee.")
}

func mustAdd(s *edf.Simulator, cfg edf.Config) {
	if err := s.Add(cfg); err != nil {
		log.Fatal(err)
	}
}
