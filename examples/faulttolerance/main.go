// Faulttolerance: the Section 5.4 scenarios. First a transparent failure
// (Σ wt ≤ M − K: losing K processors changes nothing), then an overload
// failure in which non-critical tasks are reweighted to slower rates so
// the critical tasks never miss, while plain EDF under the same overload
// degrades unpredictably.
package main

import (
	"fmt"
	"log"

	"pfair/internal/edf"
	"pfair/internal/faults"
	"pfair/internal/task"
)

func main() {
	crit := func(name string, e, p int64) *task.Task {
		t := task.MustNew(name, e, p)
		t.Critical = true
		return t
	}

	// Both scenarios run on one driver: a single slot engine that is
	// reset and re-bound between runs.
	drv := faults.NewDriver()

	// Scenario 1: transparent loss. Σ wt = 2 on 4 processors; 2 fail.
	out1, err := drv.Run(faults.Scenario{
		M: 4, Fail: 2, FailAt: 100, Horizon: 1200, SettleSlack: 0,
		Tasks: task.Set{
			crit("control", 2, 3),
			task.MustNew("telemetry", 2, 3),
			task.MustNew("logging", 1, 3),
			task.MustNew("ui", 1, 3),
		},
	}, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Scenario 1: 2 of 4 processors fail at t=100, Σwt = 2 ≤ M−K.")
	fmt.Printf("  reweighted: %v, misses before/critical/non-critical: %d/%d/%d\n",
		out1.Names(), out1.MissesBefore, out1.CriticalMissesAfterSettle, out1.NonCriticalMisses)
	if out1.CriticalMissesAfterSettle+out1.NonCriticalMisses+out1.MissesBefore != 0 {
		log.Fatal("transparent failure was not transparent")
	}
	fmt.Println("  → the loss was absorbed transparently, as the paper predicts.")

	// Scenario 2: overload. 1 of 3 processors fails under Σwt ≈ 2.08;
	// non-critical tasks are reweighted down so critical tasks survive.
	sc := faults.Scenario{
		M: 3, Fail: 1, FailAt: 90, Horizon: 3000, SettleSlack: 60,
		Tasks: task.Set{
			crit("flight", 1, 3), crit("nav", 1, 4),
			task.MustNew("video", 2, 3), task.MustNew("science", 1, 2), task.MustNew("comms", 1, 3),
		},
	}
	out2, err := drv.Run(sc, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nScenario 2: 1 of 3 processors fails under Σwt ≈ 2.08 → overload on 2.")
	fmt.Printf("  shed plan (new cost/period): ")
	for _, n := range out2.Names() {
		ep := out2.Reweighted[n]
		fmt.Printf("%s→%d/%d ", n, ep[0], ep[1])
	}
	fmt.Printf("\n  critical misses after settling: %d, non-critical (transient): %d\n",
		out2.CriticalMissesAfterSettle, out2.NonCriticalMisses)
	if out2.CriticalMissesAfterSettle != 0 {
		log.Fatal("critical tasks were not protected")
	}
	fmt.Println("  → graceful degradation: critical tasks kept their full rates.")

	// Contrast: EDF under the same relative overload on one processor.
	sim := edf.NewSimulator()
	for _, cfg := range []edf.Config{
		{Task: task.MustNew("flight", 1, 3)},
		{Task: task.MustNew("nav", 1, 4)},
		{Task: task.MustNew("video", 2, 3)},
	} {
		if err := sim.Add(cfg); err != nil {
			log.Fatal(err)
		}
	}
	sim.Run(3000)
	missed := map[string]int{}
	for _, m := range sim.Stats().Misses {
		missed[m.Task]++
	}
	fmt.Printf("\nContrast — plain EDF at utilization %.2f on one processor misses per task: %v\n",
		1.0/3+1.0/4+2.0/3, missed)
	fmt.Println("EDF under overload harms arbitrary tasks (Section 5.4: \"EDF has been shown to perform")
	fmt.Println("poorly under overload\"); Pfair reweighting chooses who slows down.")
}
