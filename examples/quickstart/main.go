// Quickstart: schedule the paper's motivating example — three tasks, each
// with cost 2 and period 3, on two processors. No partitioning can
// schedule this set (each processor can hold at most one weight-2/3 task),
// but PD² schedules it with zero misses, because Σ wt = 2 ≤ M is the only
// condition Pfair scheduling needs.
package main

import (
	"fmt"
	"log"

	"pfair"
	"pfair/internal/partition"
	"pfair/internal/trace"
)

func main() {
	set := pfair.Set{
		pfair.MustNewTask("A", 2, 3),
		pfair.MustNewTask("B", 2, 3),
		pfair.MustNewTask("C", 2, 3),
	}

	// Partitioning fails: even the exact bin-packer needs 3 processors.
	exact, _ := partition.MinProcessorsExact(set, partition.EDFTest)
	fmt.Printf("Total weight: %s → %d processors suffice for Pfair scheduling.\n",
		set.TotalWeight(), set.MinProcessors())
	fmt.Printf("Exact partitioning needs %d processors — partitioning is inherently suboptimal.\n\n", exact)

	// PD² on two processors.
	s := pfair.NewScheduler(2, pfair.PD2, pfair.Options{})
	rec := trace.NewRecorder()
	s.OnSlot(rec.Record)
	for _, t := range set {
		if err := s.Join(t); err != nil {
			log.Fatalf("admitting %v: %v", t, err)
		}
	}
	const horizon = 3000
	s.RunUntil(horizon)
	s.FinishMisses(horizon)

	fmt.Println("PD² schedule, first four hyperperiods (digits = processor):")
	fmt.Print(rec.Render(0, 12, "A", "B", "C"))

	st := s.Stats()
	fmt.Printf("\nOver %d slots: %d allocations, %d context switches, %d migrations, %d preemptions, %d misses.\n",
		horizon, st.Allocations, st.ContextSwitches, st.Migrations, st.Preemptions, len(st.Misses))

	lagA, _ := s.Lag("A")
	fmt.Printf("Exact lag of A at t=%d: %s (the Pfair invariant keeps every lag in (−1, 1)).\n",
		horizon, lagA)
}
