// Supertask: a walkthrough of Figure 5 and Section 5.5. Two component
// tasks that must not migrate (say, they talk to a device on one
// processor) are bundled into supertask S, which competes under PD² with
// their cumulative weight 2/9. S receives exactly its entitlement — and
// component T still misses a deadline at time 10, because the quanta
// arrive at the wrong instants. Inflating S's weight by 1/p_min (Holman &
// Anderson) fixes it.
package main

import (
	"fmt"
	"log"

	"pfair/internal/core"
	"pfair/internal/experiments"
	"pfair/internal/supertask"
	"pfair/internal/task"
)

func main() {
	res := experiments.Fig5(900)
	fmt.Print(res.Trace)
	fmt.Println()
	if len(res.Misses) == 0 {
		log.Fatal("expected the Figure 5 miss")
	}
	fmt.Printf("Without reweighting, %d component deadlines missed in 900 slots; the first:\n", len(res.Misses))
	m := res.Misses[0]
	fmt.Printf("  component %s, job %d, deadline %d — exactly the miss in Figure 5.\n\n", m.Component, m.Job, m.Deadline)

	st := &supertask.Supertask{Name: "S", Components: task.Set{
		task.MustNew("T", 1, 5), task.MustNew("U", 1, 45),
	}}
	w, _ := st.Weight()
	rw, _ := st.ReweightedWeight()
	fmt.Printf("S's cumulative weight: %s; reweighted by 1/p_min = 1/5 to %s.\n", w, rw)
	fmt.Printf("With reweighting: %d component misses in 900 slots.\n\n", len(res.ReweightedMisses))

	// Supertasking also spans the design space: a supertask per
	// processor with EDF inside is EDF partitioning; no supertasks is
	// pure Pfair. Show a mixed system: one pinned bundle + migrating
	// tasks.
	sys := supertask.NewSystem(2, core.PD2)
	if err := sys.AddSupertask(&supertask.Supertask{
		Name: "pinned-io",
		Components: task.Set{
			task.MustNew("nic-rx", 1, 4), task.MustNew("nic-tx", 1, 8), task.MustNew("disk", 1, 10),
		},
	}, true); err != nil {
		log.Fatal(err)
	}
	for _, t := range []*task.Task{task.MustNew("worker-1", 2, 3), task.MustNew("worker-2", 1, 2)} {
		if err := sys.AddTask(t); err != nil {
			log.Fatal(err)
		}
	}
	out := sys.Run(4000)
	fmt.Printf("Mixed system (pinned I/O bundle + migrating workers), 4000 slots:\n")
	fmt.Printf("  component misses: %d, global misses: %d, bundle quanta served: %d (wasted: %d)\n",
		len(out.ComponentMisses), len(out.Scheduler.Misses), out.Served["pinned-io"], out.Wasted["pinned-io"])
	if len(out.ComponentMisses)+len(out.Scheduler.Misses) != 0 {
		log.Fatal("reweighted mixed system should be miss-free")
	}
}
