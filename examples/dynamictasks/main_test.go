package main

import (
	"bytes"
	"testing"
)

// golden pins the example's full output. The schedule is deterministic
// (exact rational arithmetic, fixed tie-breaks), so any drift here means
// the admission plane changed observable behavior — regenerate only
// after confirming the change is intentional (see DESIGN.md §13).
const golden = `t= 100  user enters a complex room:  reweight render @100
t= 300  capture tool joins:          join capture @300
t= 500  scene simplifies:            reweight render @501
t= 700  capture finishes:            leave capture @700
t= 800  ML upscaler joins:           join upscale @800

Final tasks: [physics audio render upscale]
Total weight now: 89/60
Admission ledger: 8 transactions, 0 rejected
Over 1500 slots: 1986 allocations, 0 misses.
Every join, leave, and reweight was absorbed with zero deadline misses.
`

func TestGoldenOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if buf.String() != golden {
		t.Errorf("output drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.String(), golden)
	}
}
