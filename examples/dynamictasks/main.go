// Dynamictasks: the Section 5.2 virtual-reality scenario. A rendering
// task's weight tracks scene complexity, so it is reweighted repeatedly at
// runtime (modeled as leave-and-join under the safe departure rules of
// Section 2); meanwhile background tasks join and leave the system. Under
// partitioning every such event could force a full repartition; under PD²
// each event is a constant-time admission test, and no deadline is ever
// missed while Σ wt ≤ M.
//
// Every operation goes through the unified admission plane: build a
// pfair.Request with Join/Leave/Reweight and hand it to Scheduler.Submit.
// The returned Decision says when the transaction took effect and what
// the system weight became — and the same Request values would drive the
// EDF, RM, WRR, or supertask simulators unchanged.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"pfair"
)

func run(w io.Writer) error {
	s := pfair.NewScheduler(2, pfair.PD2, pfair.Options{})

	// Initial scene: renderer at weight 2/5, physics at 1/3, audio 1/5.
	for _, t := range []*pfair.Task{
		pfair.MustNewTask("render", 2, 5),
		pfair.MustNewTask("physics", 1, 3),
		pfair.MustNewTask("audio", 1, 5),
	} {
		if _, err := s.Submit(pfair.Join(t)); err != nil {
			return fmt.Errorf("join %v: %w", t, err)
		}
	}

	// The runtime script: each entry is one admission-plane transaction,
	// submitted when the scheduler clock reaches its slot.
	script := []struct {
		at  int64
		why string
		req pfair.Request
	}{
		{100, "user enters a complex room", pfair.Reweight("render", 4, 5)},
		{300, "capture tool joins", pfair.Join(pfair.MustNewTask("capture", 1, 4))},
		{500, "scene simplifies", pfair.Reweight("render", 1, 5)},
		{700, "capture finishes", pfair.Leave("capture")},
		{800, "ML upscaler joins", pfair.Join(pfair.MustNewTask("upscale", 3, 4))},
	}

	const horizon = 1500
	next := 0
	for s.Now() < horizon {
		for next < len(script) && script[next].at == s.Now() {
			ev := script[next]
			d, err := s.Submit(ev.req)
			if err != nil {
				return fmt.Errorf("t=%d %s: %w", s.Now(), ev.why, err)
			}
			fmt.Fprintf(w, "t=%4d  %-28s %s\n", s.Now(), ev.why+":", d)
			next++
		}
		s.Step()
	}
	s.FinishMisses(horizon)

	fmt.Fprintf(w, "\nFinal tasks: %v\n", s.Tasks())
	fmt.Fprintf(w, "Total weight now: %s\n", s.TotalWeight())
	fmt.Fprintf(w, "Admission ledger: %d transactions, %d rejected\n",
		len(s.AdmissionLog()), s.AdmissionRejects())
	st := s.Stats()
	fmt.Fprintf(w, "Over %d slots: %d allocations, %d misses.\n", horizon, st.Allocations, len(st.Misses))
	if len(st.Misses) != 0 {
		return fmt.Errorf("dynamic events caused misses: %+v", st.Misses[0])
	}
	fmt.Fprintln(w, "Every join, leave, and reweight was absorbed with zero deadline misses.")
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
