// Dynamictasks: the Section 5.2 virtual-reality scenario. A rendering
// task's weight tracks scene complexity, so it is reweighted repeatedly at
// runtime (modeled as leave-and-join under the safe departure rules of
// Section 2); meanwhile background tasks join and leave the system. Under
// partitioning every such event could force a full repartition; under PD²
// each event is a constant-time admission test, and no deadline is ever
// missed while Σ wt ≤ M.
package main

import (
	"fmt"
	"log"

	"pfair"
)

func main() {
	s := pfair.NewScheduler(2, pfair.PD2, pfair.Options{})

	// Initial scene: renderer at weight 2/5, physics at 1/3, audio 1/5.
	for _, t := range []*pfair.Task{
		pfair.MustNewTask("render", 2, 5),
		pfair.MustNewTask("physics", 1, 3),
		pfair.MustNewTask("audio", 1, 5),
	} {
		if err := s.Join(t); err != nil {
			log.Fatalf("join %v: %v", t, err)
		}
	}

	type event struct {
		at     int64
		action func() string
	}
	events := []event{
		{100, func() string { // the user enters a complex room
			at, err := s.Reweight("render", 4, 5)
			if err != nil {
				log.Fatal(err)
			}
			return fmt.Sprintf("render reweighted to 4/5, effective at t=%d", at)
		}},
		{300, func() string { // a capture tool joins
			if err := s.Join(pfair.MustNewTask("capture", 1, 4)); err != nil {
				log.Fatal(err)
			}
			return "capture joined at weight 1/4"
		}},
		{500, func() string { // scene simplifies
			at, err := s.Reweight("render", 1, 5)
			if err != nil {
				log.Fatal(err)
			}
			return fmt.Sprintf("render reweighted to 1/5, effective at t=%d", at)
		}},
		{700, func() string { // capture finishes
			at, err := s.Leave("capture")
			if err != nil {
				log.Fatal(err)
			}
			return fmt.Sprintf("capture leaving, departs at t=%d (safe leave rule)", at)
		}},
		{800, func() string { // a heavyweight ML upscaler joins
			if err := s.Join(pfair.MustNewTask("upscale", 3, 4)); err != nil {
				log.Fatal(err)
			}
			return "upscale joined at weight 3/4"
		}},
	}

	const horizon = 1500
	next := 0
	for s.Now() < horizon {
		for next < len(events) && events[next].at == s.Now() {
			fmt.Printf("t=%4d  %s\n", s.Now(), events[next].action())
			next++
		}
		s.Step()
	}
	s.FinishMisses(horizon)

	fmt.Printf("\nFinal tasks: %v\n", s.Tasks())
	fmt.Printf("Total weight now: %s\n", s.TotalWeight())
	st := s.Stats()
	fmt.Printf("Over %d slots: %d allocations, %d misses.\n", horizon, st.Allocations, len(st.Misses))
	if len(st.Misses) != 0 {
		log.Fatalf("dynamic events caused misses: %+v", st.Misses[0])
	}
	fmt.Println("Every join, leave, and reweight was absorbed with zero deadline misses.")
}
