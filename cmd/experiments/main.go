// Command experiments regenerates the data behind every figure in the
// paper's evaluation. Each subcommand prints a TSV table (or an ASCII
// diagram) to stdout.
//
// Usage:
//
//	experiments [flags] fig1|fig2a|fig2b|fig3|fig4|fig5|quantum|phases|all
//
// Flags:
//
//	-sets N     task sets per data point (default: scaled-down defaults)
//	-horizon H  slots simulated per set in the Figure 2 measurement
//	-full       use the paper's full protocol (1000 sets/point, 10⁶-slot
//	            horizons) — hours of CPU serially, divided by -workers
//	-seed S     base RNG seed
//	-workers N  goroutines per sweep (default: one per CPU; 1 = the old
//	            serial harness). Output is byte-identical for any value.
//	-gotrace F  write a runtime/trace of the whole run to F, with one
//	            trace region per figure (inspect with `go tool trace F`)
//	-metrics    print a per-figure summary (wall time, goroutine peak,
//	            allocation delta) to stderr after each figure
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	rtrace "runtime/trace"
	"time"

	"pfair/internal/experiments"
	"pfair/internal/obs"
)

func main() {
	sets := flag.Int("sets", 0, "task sets per data point (0 = default)")
	horizon := flag.Int64("horizon", 0, "slots per set for fig2 (0 = default)")
	full := flag.Bool("full", false, "run the paper's full protocol (slow)")
	seed := flag.Int64("seed", 0, "base RNG seed (0 = default)")
	workers := flag.Int("workers", runtime.NumCPU(), "worker goroutines per sweep (1 = serial)")
	measured := flag.Bool("measured", false, "fig3/fig4: measure scheduling costs on this machine first (the paper's methodology) instead of the calibrated default models")
	gotrace := flag.String("gotrace", "", "write a runtime/trace of the run to this file (one region per figure)")
	metrics := flag.Bool("metrics", false, "print per-figure wall-time and allocation summaries to stderr")
	shards := flag.Int("shards", 0, "fig2/phases: ready-queue shards per scheduler (0 or 1 = single queue; schedules are identical, only the measured cost moves)")
	every := flag.Int64("every", 0, "phases: profile one engine step in every N (0 = default)")
	flag.Parse()

	if *gotrace != "" {
		f, err := os.Create(*gotrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gotrace:", err)
			os.Exit(1)
		}
		if err := rtrace.Start(f); err != nil {
			fmt.Fprintln(os.Stderr, "gotrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		defer rtrace.Stop()
	}

	cmd := "all"
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
	}

	f2 := experiments.DefaultFig2Config()
	f3 := experiments.DefaultFig3Config()
	qs := experiments.DefaultQuantumSweepConfig()
	if *full {
		f2.SetsPerN = 1000
		f2.Horizon = 1000000
		f3.SetsPerStep = 1000
		qs.Sets = 1000
	}
	if *sets > 0 {
		f2.SetsPerN = *sets
		f3.SetsPerStep = *sets
		qs.Sets = *sets
	}
	if *horizon > 0 {
		f2.Horizon = *horizon
	}
	if *seed != 0 {
		f2.Seed = *seed
		f3.Seed = *seed
		qs.Seed = *seed
	}
	f2.Workers = *workers
	f3.Workers = *workers
	qs.Workers = *workers
	f2.Shards = *shards

	// Each figure sweep runs inside a runtime/trace region (visible in
	// `go tool trace` when -gotrace is set) and, with -metrics, reports a
	// summary registry of wall time and allocator movement to stderr —
	// enough to see which figure dominates a slow `experiments all` run.
	run := func(name string, fn func()) {
		if cmd != name && cmd != "all" {
			return
		}
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now() //pfair:allowtime cmd-layer measurement, reported to stderr only
		rtrace.WithRegion(context.Background(), "figure:"+name, fn)
		elapsed := time.Since(start) //pfair:allowtime cmd-layer measurement, reported to stderr only
		if !*metrics {
			return
		}
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		reg := obs.NewRegistry()
		reg.Gauge("experiments_wall_ms", fmt.Sprintf("figure=%q", name), "wall-clock time of the sweep").Set(elapsed.Milliseconds())
		reg.Gauge("experiments_allocs", fmt.Sprintf("figure=%q", name), "heap allocations during the sweep").Set(int64(after.Mallocs - before.Mallocs))
		reg.Gauge("experiments_alloc_bytes", fmt.Sprintf("figure=%q", name), "bytes allocated during the sweep").Set(int64(after.TotalAlloc - before.TotalAlloc))
		reg.Gauge("experiments_workers", fmt.Sprintf("figure=%q", name), "worker goroutines configured").Set(int64(*workers))
		fmt.Fprintf(os.Stderr, "# metrics %s\n", name)
		if err := reg.WriteSummary(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
		}
	}
	known := map[string]bool{"fig1": true, "fig2a": true, "fig2b": true, "fig3": true, "fig4": true, "fig5": true, "quantum": true, "response": true, "sync": true, "fairness": true, "phases": true, "all": true}
	if !known[cmd] {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", cmd)
		flag.Usage()
		os.Exit(2)
	}

	run("fig1", func() {
		for _, fig := range []func() (string, error){experiments.Fig1a, experiments.Fig1b} {
			out, err := fig()
			if err != nil {
				fmt.Fprintln(os.Stderr, "fig1:", err)
				os.Exit(1)
			}
			fmt.Print(out)
			fmt.Println()
		}
	})
	run("fig2a", func() {
		experiments.RenderFig2a(os.Stdout, experiments.Fig2a(f2))
	})
	run("fig2b", func() {
		experiments.RenderFig2b(os.Stdout, experiments.Fig2b(f2))
	})
	runFig34 := func(fig4 bool) {
		if *measured {
			models := experiments.MeasureCostModels(f2)
			f3.Models = &models
			fmt.Printf("# measured cost models: S_EDF(n)=%.2f+%.4f·n  S_PD2(m,n)=%.2f+%.4f·n+%.2f·(m−1) µs\n",
				models.EDFBase, models.EDFPerTask, models.PD2Base, models.PD2PerTask, models.PD2PerProc)
		}
		data := experiments.Fig3(f3)
		if fig4 {
			experiments.RenderFig4(os.Stdout, f3.Ns, data)
		} else {
			experiments.RenderFig3(os.Stdout, f3.Ns, data)
		}
	}
	run("fig3", func() { runFig34(false) })
	run("fig4", func() { runFig34(true) })
	run("fig5", func() {
		experiments.RenderFig5(os.Stdout, experiments.Fig5Workers(90, *workers))
	})
	run("response", func() {
		rc := experiments.DefaultResponseConfig()
		if *sets > 0 {
			rc.Sets = *sets
		}
		if *seed != 0 {
			rc.Seed = *seed
		}
		rc.Workers = *workers
		experiments.RenderResponse(os.Stdout, experiments.ResponseTimes(rc))
	})
	run("fairness", func() {
		fc := experiments.DefaultFairnessConfig()
		if *seed != 0 {
			fc.Seed = *seed
		}
		fc.Workers = *workers
		experiments.RenderFairness(os.Stdout, experiments.Fairness(fc))
	})
	run("sync", func() {
		sc := experiments.DefaultSyncConfig()
		if *sets > 0 {
			sc.Sets = *sets
		}
		if *seed != 0 {
			sc.Seed = *seed
		}
		sc.Workers = *workers
		experiments.RenderSync(os.Stdout, experiments.SyncComparison(sc), sc.Sets)
	})
	run("quantum", func() {
		experiments.RenderQuantum(os.Stdout, experiments.QuantumSweep(qs))
	})
	run("phases", func() {
		pc := experiments.DefaultPhasesConfig()
		if *horizon > 0 {
			pc.Horizon = *horizon
		}
		if *seed != 0 {
			pc.Seed = *seed
		}
		if *every > 0 {
			pc.Every = *every
		}
		pc.Shards = *shards
		experiments.RenderPhases(os.Stdout, pc, experiments.Phases(pc))
	})
}
