// Command experiments regenerates the data behind every figure in the
// paper's evaluation. Each subcommand prints a TSV table (or an ASCII
// diagram) to stdout.
//
// Usage:
//
//	experiments [flags] fig1|fig2a|fig2b|fig3|fig4|fig5|quantum|all
//
// Flags:
//
//	-sets N     task sets per data point (default: scaled-down defaults)
//	-horizon H  slots simulated per set in the Figure 2 measurement
//	-full       use the paper's full protocol (1000 sets/point, 10⁶-slot
//	            horizons) — slow, hours of CPU
//	-seed S     base RNG seed
package main

import (
	"flag"
	"fmt"
	"os"

	"pfair/internal/experiments"
)

func main() {
	sets := flag.Int("sets", 0, "task sets per data point (0 = default)")
	horizon := flag.Int64("horizon", 0, "slots per set for fig2 (0 = default)")
	full := flag.Bool("full", false, "run the paper's full protocol (slow)")
	seed := flag.Int64("seed", 0, "base RNG seed (0 = default)")
	measured := flag.Bool("measured", false, "fig3/fig4: measure scheduling costs on this machine first (the paper's methodology) instead of the calibrated default models")
	flag.Parse()

	cmd := "all"
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
	}

	f2 := experiments.DefaultFig2Config()
	f3 := experiments.DefaultFig3Config()
	qs := experiments.DefaultQuantumSweepConfig()
	if *full {
		f2.SetsPerN = 1000
		f2.Horizon = 1000000
		f3.SetsPerStep = 1000
		qs.Sets = 1000
	}
	if *sets > 0 {
		f2.SetsPerN = *sets
		f3.SetsPerStep = *sets
		qs.Sets = *sets
	}
	if *horizon > 0 {
		f2.Horizon = *horizon
	}
	if *seed != 0 {
		f2.Seed = *seed
		f3.Seed = *seed
		qs.Seed = *seed
	}

	run := func(name string, fn func()) {
		if cmd == name || cmd == "all" {
			fn()
		}
	}
	known := map[string]bool{"fig1": true, "fig2a": true, "fig2b": true, "fig3": true, "fig4": true, "fig5": true, "quantum": true, "response": true, "sync": true, "fairness": true, "all": true}
	if !known[cmd] {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", cmd)
		flag.Usage()
		os.Exit(2)
	}

	run("fig1", func() {
		fmt.Print(experiments.Fig1a())
		fmt.Println()
		fmt.Print(experiments.Fig1b())
		fmt.Println()
	})
	run("fig2a", func() {
		fmt.Println("# Figure 2(a): per-invocation scheduling cost on one processor")
		fmt.Println("# N\tEDF_ns\tEDF_relerr\tPD2_ns\tPD2_relerr")
		for _, p := range experiments.Fig2a(f2) {
			fmt.Printf("%d\t%.1f\t%.3f\t%.1f\t%.3f\n", p.N, p.EDFNanos, p.EDFRelErr, p.PD2Nanos, p.PD2RelErr)
		}
		fmt.Println()
	})
	run("fig2b", func() {
		fmt.Println("# Figure 2(b): PD² per-slot cost on 2/4/8/16 processors")
		fmt.Println("# M\tN\tPD2_ns\trelerr")
		for _, p := range experiments.Fig2b(f2) {
			fmt.Printf("%d\t%d\t%.1f\t%.3f\n", p.M, p.N, p.PD2Nanos, p.RelErr)
		}
		fmt.Println()
	})
	runFig34 := func(fig4 bool) {
		if *measured {
			models := experiments.MeasureCostModels(f2)
			f3.Models = &models
			fmt.Printf("# measured cost models: S_EDF(n)=%.2f+%.4f·n  S_PD2(m,n)=%.2f+%.4f·n+%.2f·(m−1) µs\n",
				models.EDFBase, models.EDFPerTask, models.PD2Base, models.PD2PerTask, models.PD2PerProc)
		}
		data := experiments.Fig3(f3)
		for _, n := range f3.Ns {
			if fig4 {
				fmt.Printf("# Figure 4: schedulability-loss fractions, N=%d\n", n)
				fmt.Println("# mean_util\tloss_pfair\tloss_edf\tloss_ff")
				for _, p := range data[n] {
					fmt.Printf("%.4f\t%.4f\t%.4f\t%.4f\n", p.MeanUtil, p.LossPfair, p.LossEDF, p.LossFF)
				}
			} else {
				fmt.Printf("# Figure 3: minimum processors for schedulability, N=%d\n", n)
				fmt.Println("# total_util\tPD2\trelerr\tEDF-FF\trelerr")
				for _, p := range data[n] {
					fmt.Printf("%.2f\t%.2f\t%.3f\t%.2f\t%.3f\n", p.TotalUtil, p.PD2Procs, p.PD2RelErr, p.FFProcs, p.FFRelErr)
				}
				if x := experiments.Crossover(data[n]); x > 0 {
					fmt.Printf("# crossover (PD2 catches EDF-FF) near total utilization %.1f\n", x)
				}
			}
			fmt.Println()
		}
	}
	run("fig3", func() { runFig34(false) })
	run("fig4", func() { runFig34(true) })
	run("fig5", func() {
		res := experiments.Fig5(90)
		fmt.Print(res.Trace)
		fmt.Println("# component misses without reweighting:")
		for _, m := range res.Misses {
			fmt.Printf("#   %s/%s job %d missed deadline %d\n", m.Supertask, m.Component, m.Job, m.Deadline)
		}
		fmt.Printf("# component misses with 1/p_min reweighting: %d\n", len(res.ReweightedMisses))
		fmt.Println()
	})
	run("response", func() {
		rc := experiments.DefaultResponseConfig()
		if *sets > 0 {
			rc.Sets = *sets
		}
		if *seed != 0 {
			rc.Seed = *seed
		}
		fmt.Println("# Section 2 claim: early release improves response times at light load")
		fmt.Println("# load\tpfair_resp\terfair_resp\tspeedup")
		for _, p := range experiments.ResponseTimes(rc) {
			fmt.Printf("%.2f\t%.2f\t%.2f\t%.3f\n", p.Load, p.PfairResponse, p.ERfairResponse, p.Speedup)
		}
		fmt.Println()
	})
	run("fairness", func() {
		fc := experiments.DefaultFairnessConfig()
		if *seed != 0 {
			fc.Seed = *seed
		}
		fmt.Println("# Equation (1) quantified: worst lag excursions on one near-saturated workload")
		fmt.Println("# scheduler\tmax_lag\tmin_lag\tmisses")
		for _, p := range experiments.Fairness(fc) {
			fmt.Printf("%s\t%.3f\t%.3f\t%d\n", p.Scheduler, p.MaxLag, p.MinLag, p.Misses)
		}
		fmt.Println()
	})
	run("sync", func() {
		sc := experiments.DefaultSyncConfig()
		if *sets > 0 {
			sc.Sets = *sets
		}
		if *seed != 0 {
			sc.Seed = *seed
		}
		fmt.Println("# Section 5.1: resource sharing — PD²+quantum-boundary locks vs partitioned RM+MPCP")
		fmt.Println("# cs_us\tpfair_procs\tmpcp_procs\tmpcp_unschedulable")
		for _, p := range experiments.SyncComparison(sc) {
			fmt.Printf("%d\t%.2f\t%.2f\t%d/%d\n", p.CSLengthUS, p.PfairProcs, p.MPCPProcs, p.MPCPFailures, sc.Sets)
		}
		fmt.Println()
	})
	run("quantum", func() {
		fmt.Println("# Section 4 trade-off: quantum size vs schedulability loss")
		fmt.Println("# q_us\tPD2_procs\trounding_loss\toverhead_loss\tinfeasible")
		for _, p := range experiments.QuantumSweep(qs) {
			fmt.Printf("%d\t%.2f\t%.3f\t%.3f\t%d\n", p.QuantumUS, p.PD2Procs, p.RoundingLoss, p.OverheadLoss, p.Infeasible)
		}
	})
}
