package main

import "testing"

func TestParseTask(t *testing.T) {
	tk, err := parseTask("video:2/3")
	if err != nil {
		t.Fatal(err)
	}
	if tk.Name != "video" || tk.Cost != 2 || tk.Period != 3 {
		t.Fatalf("parsed %+v", tk)
	}
	for _, bad := range []string{"", "noval", ":2/3", "a:2", "a:x/y", "a:0/3", "a:4/3"} {
		if _, err := parseTask(bad); err == nil {
			t.Errorf("parseTask(%q) accepted", bad)
		}
	}
}

func TestValidateFlags(t *testing.T) {
	// ok is a baseline every case below perturbs: the defaults of main's
	// flag declarations.
	ok := flagConfig{m: 1, ringCap: 65536, slotMicros: 1000}
	if err := validateFlags(ok); err != nil {
		t.Fatalf("default flags rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*flagConfig)
	}{
		{"zero processors", func(c *flagConfig) { c.m = 0 }},
		{"negative shards", func(c *flagConfig) { c.shards = -1 }},
		{"negative slots", func(c *flagConfig) { c.slots = -10 }},
		{"negative phaseprof", func(c *flagConfig) { c.phaseprof = -4 }},
		{"zero ring", func(c *flagConfig) { c.ringCap = 0 }},
		{"zero slotus", func(c *flagConfig) { c.slotMicros = 0 }},
		{"slotus without trace", func(c *flagConfig) { c.slotusSet = true }},
		{"ring without consumer", func(c *flagConfig) { c.ringSet = true }},
	}
	for _, tc := range cases {
		c := ok
		tc.mut(&c)
		if err := validateFlags(c); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The inert-combination checks clear once the output is requested.
	c := ok
	c.slotusSet, c.tracePath = true, "out.json"
	if err := validateFlags(c); err != nil {
		t.Errorf("-slotus with -trace rejected: %v", err)
	}
	c = ok
	c.ringSet, c.taskstats = true, true
	if err := validateFlags(c); err != nil {
		t.Errorf("-ring with -taskstats rejected: %v", err)
	}
}
