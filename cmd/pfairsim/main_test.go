package main

import "testing"

func TestParseTask(t *testing.T) {
	tk, err := parseTask("video:2/3")
	if err != nil {
		t.Fatal(err)
	}
	if tk.Name != "video" || tk.Cost != 2 || tk.Period != 3 {
		t.Fatalf("parsed %+v", tk)
	}
	for _, bad := range []string{"", "noval", ":2/3", "a:2", "a:x/y", "a:0/3", "a:4/3"} {
		if _, err := parseTask(bad); err == nil {
			t.Errorf("parseTask(%q) accepted", bad)
		}
	}
}
