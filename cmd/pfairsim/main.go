// Command pfairsim schedules a task set with a chosen algorithm and prints
// the resulting schedule, counters, and (optionally) the Pfair window
// layout of each task.
//
// Tasks are given as name:cost/period triples, e.g.
//
//	pfairsim -m 2 -alg pd2 -slots 24 A:2/3 B:2/3 C:2/3
//
// Flags:
//
//	-m N       processors (default 1)
//	-alg A     pd2 | pd | pf | epdf (default pd2)
//	-er        early-release (ERfair) eligibility
//	-slots T   slots to simulate (default two hyperperiods)
//	-windows   also print each task's subtask windows
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pfair/internal/core"
	"pfair/internal/task"
	"pfair/internal/trace"
)

func main() {
	m := flag.Int("m", 1, "number of processors")
	algName := flag.String("alg", "pd2", "scheduling algorithm: pd2|pd|pf|epdf")
	er := flag.Bool("er", false, "early-release (ERfair) eligibility")
	slots := flag.Int64("slots", 0, "slots to simulate (0 = two hyperperiods)")
	windows := flag.Bool("windows", false, "print subtask windows per task")
	flag.Parse()

	var alg core.Algorithm
	switch strings.ToLower(*algName) {
	case "pd2":
		alg = core.PD2
	case "pd":
		alg = core.PD
	case "pf":
		alg = core.PF
	case "epdf":
		alg = core.EPDF
	default:
		fatal("unknown algorithm %q", *algName)
	}

	if flag.NArg() == 0 {
		fatal("no tasks given; expected name:cost/period arguments")
	}
	var set task.Set
	for _, arg := range flag.Args() {
		t, err := parseTask(arg)
		if err != nil {
			fatal("%v", err)
		}
		set = append(set, t)
	}
	if err := set.Validate(); err != nil {
		fatal("%v", err)
	}

	horizon := *slots
	if horizon <= 0 {
		horizon = 2 * set.Hyperperiod()
		if horizon > 10000 {
			horizon = 10000
		}
	}

	if *windows {
		for _, t := range set {
			fmt.Printf("windows of %v:\n", t)
			pat := core.NewPattern(t.Cost, t.Period)
			last := 2 * t.Cost
			w, err := trace.Windows(pat, 1, last)
			if err != nil {
				fatal("rendering windows of %v: %v", t, err)
			}
			fmt.Print(w)
			fmt.Println()
		}
	}

	s := core.NewScheduler(*m, alg, core.Options{EarlyRelease: *er})
	rec := trace.NewRecorder()
	s.OnSlot(rec.Record)
	for _, t := range set {
		if err := s.Join(t); err != nil {
			fatal("admitting %v: %v (total weight %v on %d processors)", t, err, set.TotalWeight(), *m)
		}
	}
	s.RunUntil(horizon)
	s.FinishMisses(horizon)

	names := make([]string, len(set))
	for i, t := range set {
		names[i] = t.Name
	}
	fmt.Printf("%s on %d processor(s), %d slots (digits = processor):\n", alg, *m, horizon)
	to := horizon
	if to > 120 {
		to = 120
		fmt.Printf("(showing first %d slots)\n", to)
	}
	fmt.Print(rec.Render(0, to, names...))

	st := s.Stats()
	fmt.Printf("\nallocations=%d context-switches=%d preemptions=%d migrations=%d misses=%d\n",
		st.Allocations, st.ContextSwitches, st.Preemptions, st.Migrations, len(st.Misses))
	for i, miss := range st.Misses {
		if i == 10 {
			fmt.Printf("  … %d more\n", len(st.Misses)-10)
			break
		}
		fmt.Printf("  miss: %s subtask %d deadline %d scheduled %d\n", miss.Task, miss.Subtask, miss.Deadline, miss.ScheduledAt)
	}
}

// parseTask parses "name:cost/period".
func parseTask(s string) (*task.Task, error) {
	var name string
	var e, p int64
	colon := strings.IndexByte(s, ':')
	if colon <= 0 {
		return nil, fmt.Errorf("bad task %q: want name:cost/period", s)
	}
	name = s[:colon]
	if _, err := fmt.Sscanf(s[colon+1:], "%d/%d", &e, &p); err != nil {
		return nil, fmt.Errorf("bad task %q: want name:cost/period", s)
	}
	t := &task.Task{Name: name, Cost: e, Period: p}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
