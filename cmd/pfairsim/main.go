// Command pfairsim schedules a task set with a chosen algorithm and prints
// the resulting schedule, counters, and (optionally) the Pfair window
// layout of each task.
//
// Tasks are given as name:cost/period triples, e.g.
//
//	pfairsim -m 2 -alg pd2 -slots 24 A:2/3 B:2/3 C:2/3
//
// Flags:
//
//	-m N            processors (default 1)
//	-alg A          pd2 | pd | pf | epdf (default pd2)
//	-er             early-release (ERfair) eligibility
//	-slots T        slots to simulate (default two hyperperiods)
//	-windows        also print each task's subtask windows
//
// Observability (see internal/obs and DESIGN.md §7):
//
//	-trace FILE     write a Chrome trace-event JSON of the run; load it at
//	                https://ui.perfetto.dev (one lane per processor, one
//	                per task)
//	-timeline FILE  write a human-readable slot-by-slot event log
//	                ("-" = stdout)
//	-metrics        print a Prometheus-text metrics snapshot after the run
//	-taskstats      print a per-task accounting table (dispatches,
//	                preemptions, migrations, response times, tardiness,
//	                exact lag extrema); implies the trace recorder, so the
//	                run uses the event-narrating legacy ready queue
//	-phaseprof K    profile engine phase costs on every K-th step and
//	                print the per-phase table after the run (0 = off)
//	-ring N         trace ring capacity in events (default 65536; the ring
//	                keeps the most recent N when the run is longer)
//	-slotus N       microseconds one slot spans in the exported trace
//	                (default 1000)
//
// Profiling:
//
//	-cpuprofile FILE  write a CPU profile of the simulation loop
//	-memprofile FILE  write a heap profile taken after the run
//	-pprof ADDR       serve net/http/pprof on ADDR and block after the run
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"pfair/internal/core"
	"pfair/internal/engine"
	"pfair/internal/obs"
	"pfair/internal/task"
	"pfair/internal/trace"
)

func main() {
	m := flag.Int("m", 1, "number of processors")
	algName := flag.String("alg", "pd2", "scheduling algorithm: pd2|pd|pf|epdf")
	er := flag.Bool("er", false, "early-release (ERfair) eligibility")
	shards := flag.Int("shards", 0, "ready-queue shards (0 or 1 = single queue; schedules are identical for every value)")
	slots := flag.Int64("slots", 0, "slots to simulate (0 = two hyperperiods)")
	windows := flag.Bool("windows", false, "print subtask windows per task")
	tracePath := flag.String("trace", "", "write Chrome trace-event JSON (Perfetto-loadable) to this file")
	timelinePath := flag.String("timeline", "", "write a human-readable event timeline to this file (- = stdout)")
	metrics := flag.Bool("metrics", false, "print a Prometheus-text metrics snapshot after the run")
	taskstats := flag.Bool("taskstats", false, "print a per-task accounting table after the run (implies the trace recorder)")
	phaseprof := flag.Int64("phaseprof", 0, "profile engine phases on every K-th step and print the phase table (0 = off)")
	ringCap := flag.Int("ring", obs.DefaultRingCapacity, "trace ring capacity in events")
	slotMicros := flag.Int64("slotus", 1000, "microseconds per slot in the exported trace")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address and block after the run")
	flag.Parse()

	seen := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { seen[f.Name] = true })
	if err := validateFlags(flagConfig{
		m:            *m,
		shards:       *shards,
		slots:        *slots,
		phaseprof:    *phaseprof,
		ringCap:      *ringCap,
		slotMicros:   *slotMicros,
		ringSet:      seen["ring"],
		slotusSet:    seen["slotus"],
		tracePath:    *tracePath,
		timelinePath: *timelinePath,
		taskstats:    *taskstats,
	}); err != nil {
		fatal("%v", err)
	}

	var alg core.Algorithm
	switch strings.ToLower(*algName) {
	case "pd2":
		alg = core.PD2
	case "pd":
		alg = core.PD
	case "pf":
		alg = core.PF
	case "epdf":
		alg = core.EPDF
	default:
		fatal("unknown algorithm %q", *algName)
	}

	if flag.NArg() == 0 {
		fatal("no tasks given; expected name:cost/period arguments")
	}
	var set task.Set
	for _, arg := range flag.Args() {
		t, err := parseTask(arg)
		if err != nil {
			fatal("%v", err)
		}
		set = append(set, t)
	}
	if err := set.Validate(); err != nil {
		fatal("%v", err)
	}

	horizon := *slots
	if horizon <= 0 {
		hp, ok := set.HyperperiodOK()
		if !ok {
			fatal("the task set's hyperperiod (lcm of periods) overflows int64, so the default horizon cannot be computed; pass an explicit -slots")
		}
		horizon = 2 * hp
		if horizon/2 != hp || horizon > 10000 {
			horizon = 10000
		}
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			}
		}()
	}

	if *windows {
		for _, t := range set {
			fmt.Printf("windows of %v:\n", t)
			pat := core.NewPattern(t.Cost, t.Period)
			last := 2 * t.Cost
			w, err := trace.Windows(pat, 1, last)
			if err != nil {
				fatal("rendering windows of %v: %v", t, err)
			}
			fmt.Print(w)
			fmt.Println()
		}
	}

	var engOpts []engine.Option
	var prof *obs.PhaseProfiler
	if *phaseprof > 0 {
		prof = obs.NewPhaseProfiler(nil, *phaseprof)
		engOpts = append(engOpts, engine.WithProfiler(prof))
	}
	s := core.NewScheduler(*m, alg, core.Options{EarlyRelease: *er, Shards: *shards}, engOpts...)
	rec := trace.NewRecorder()
	s.OnSlot(rec.Record)

	// Attach the observability layer only when some consumer asked for it:
	// unobserved runs keep the nil-recorder fast path. -taskstats needs the
	// event stream, so it implies the recorder (and hence the legacy,
	// event-narrating ready queue).
	var orec *obs.Recorder
	var met *obs.SchedulerMetrics
	var acct *obs.Accounting
	if *tracePath != "" || *timelinePath != "" || *taskstats {
		orec = obs.NewRecorder(*ringCap)
	}
	if *taskstats {
		// Attached before any event is emitted: the accounting table sees
		// the full stream even when the ring wraps.
		acct = obs.NewAccounting()
		orec.SetAccounting(acct)
	}
	if *metrics {
		met = obs.NewSchedulerMetrics(nil)
	}
	if orec != nil || met != nil {
		s.Observe(orec, met)
	}

	for _, t := range set {
		if err := s.Join(t); err != nil {
			fatal("admitting %v: %v (total weight %v on %d processors)", t, err, set.TotalWeight(), *m)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("cpuprofile: %v", err)
		}
	}
	if err := s.RunUntil(horizon); err != nil {
		fatal("simulation: %v", err)
	}
	s.FinishMisses(horizon)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}

	names := make([]string, len(set))
	for i, t := range set {
		names[i] = t.Name
	}
	fmt.Printf("%s on %d processor(s), %d slots (digits = processor):\n", alg, *m, horizon)
	to := horizon
	if to > 120 {
		to = 120
		fmt.Printf("(showing first %d slots)\n", to)
	}
	fmt.Print(rec.Render(0, to, names...))

	st := s.Stats()
	fmt.Printf("\nallocations=%d context-switches=%d preemptions=%d migrations=%d misses=%d\n",
		st.Allocations, st.ContextSwitches, st.Preemptions, st.Migrations, len(st.Misses))
	for i, miss := range st.Misses {
		if i == 10 {
			fmt.Printf("  … %d more\n", len(st.Misses)-10)
			break
		}
		fmt.Printf("  miss: %s subtask %d deadline %d scheduled %d\n", miss.Task, miss.Subtask, miss.Deadline, miss.ScheduledAt)
	}

	if *taskstats {
		acct.Finalize(horizon)
		fmt.Printf("\nper-task accounting (%d events consumed):\n", acct.Events())
		if err := obs.WriteTaskTable(os.Stdout, acct.Snapshot()); err != nil {
			fatal("taskstats: %v", err)
		}
	}
	if prof != nil {
		fmt.Printf("\nengine phase profile:\n")
		if err := prof.WriteTable(os.Stdout); err != nil {
			fatal("phaseprof: %v", err)
		}
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal("trace: %v", err)
		}
		extra := map[string]any{"alg": alg.String(), "m": *m, "shards": *shards}
		// Only meaningful when the shard tier actually served picks: a
		// traced run uses the legacy ready queue (the recorder forces it),
		// so the counters cover at most the pre-attach prefix.
		if sst, ok := s.ShardStats(); ok && sst.LocalHits+sst.Steals > 0 {
			extra["shardLocalHits"] = sst.LocalHits
			extra["shardSteals"] = sst.Steals
			extra["shardUnderflows"] = sst.Underflows
		}
		opt := obs.ChromeTraceOptions{SlotMicros: *slotMicros, Procs: *m, Extra: extra}
		if err := obs.WriteChromeTrace(f, orec, opt); err != nil {
			fatal("trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("trace: %v", err)
		}
		fmt.Printf("\nwrote Chrome trace (%d events, %d dropped) to %s; open it at https://ui.perfetto.dev\n",
			len(orec.Events()), orec.Dropped(), *tracePath)
	}
	if *timelinePath != "" {
		out := os.Stdout
		if *timelinePath != "-" {
			f, err := os.Create(*timelinePath)
			if err != nil {
				fatal("timeline: %v", err)
			}
			defer f.Close()
			out = f
		} else {
			fmt.Println()
		}
		if err := obs.WriteTimeline(out, orec); err != nil {
			fatal("timeline: %v", err)
		}
	}
	if *metrics {
		fmt.Println()
		met.ObserveRing(orec) // nil-safe: gauges stay 0 without a recorder
		if err := met.Registry().WritePrometheus(os.Stdout); err != nil {
			fatal("metrics: %v", err)
		}
		if acct != nil {
			if err := acct.WritePrometheus(os.Stdout); err != nil {
				fatal("metrics: %v", err)
			}
		}
		if prof != nil {
			if err := prof.Registry().WritePrometheus(os.Stdout); err != nil {
				fatal("metrics: %v", err)
			}
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal("memprofile: %v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal("memprofile: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("memprofile: %v", err)
		}
	}
	if *pprofAddr != "" {
		fmt.Fprintf(os.Stderr, "pprof server listening on %s; Ctrl-C to exit\n", *pprofAddr)
		select {}
	}
}

// flagConfig carries the flag values validateFlags audits, plus which
// observability flags were set explicitly (flag.Visit), so a flag that
// only modifies another flag's output can be rejected when that output
// was never requested.
type flagConfig struct {
	m            int
	shards       int
	slots        int64
	phaseprof    int64
	ringCap      int
	slotMicros   int64
	ringSet      bool
	slotusSet    bool
	tracePath    string
	timelinePath string
	taskstats    bool
}

// validateFlags rejects invalid flag values and inert flag combinations
// up front, with one-line errors — before any simulation state exists,
// so a typo cannot surface as a late panic or a silently ignored option.
func validateFlags(c flagConfig) error {
	if c.m < 1 {
		return fmt.Errorf("-m %d: need at least one processor", c.m)
	}
	if c.shards < 0 {
		return fmt.Errorf("-shards %d: shard count cannot be negative (0 or 1 = single queue)", c.shards)
	}
	if c.slots < 0 {
		return fmt.Errorf("-slots %d: slot count cannot be negative (0 = two hyperperiods)", c.slots)
	}
	if c.phaseprof < 0 {
		return fmt.Errorf("-phaseprof %d: sampling interval cannot be negative (0 = off)", c.phaseprof)
	}
	if c.ringCap < 1 {
		return fmt.Errorf("-ring %d: the trace ring needs at least one event of capacity", c.ringCap)
	}
	if c.slotMicros < 1 {
		return fmt.Errorf("-slotus %d: a slot must span at least one microsecond in the exported trace", c.slotMicros)
	}
	if c.slotusSet && c.tracePath == "" {
		return fmt.Errorf("-slotus only affects the exported Chrome trace; pass -trace FILE as well")
	}
	if c.ringSet && c.tracePath == "" && c.timelinePath == "" && !c.taskstats {
		return fmt.Errorf("-ring sizes the trace event ring; pass -trace, -timeline, or -taskstats as well")
	}
	return nil
}

// parseTask parses "name:cost/period".
func parseTask(s string) (*task.Task, error) {
	var name string
	var e, p int64
	colon := strings.IndexByte(s, ':')
	if colon <= 0 {
		return nil, fmt.Errorf("bad task %q: want name:cost/period", s)
	}
	name = s[:colon]
	if _, err := fmt.Sscanf(s[colon+1:], "%d/%d", &e, &p); err != nil {
		return nil, fmt.Errorf("bad task %q: want name:cost/period", s)
	}
	t := &task.Task{Name: name, Cost: e, Period: p}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
