// Command fuzz runs the differential scheduling oracle: it generates
// random task systems and cross-checks every scheduler pair that must
// agree on feasibility (see internal/fuzz). Failures are shrunk to
// minimal reproducers and printed with one-line replay keys.
//
// Usage:
//
//	go run ./cmd/fuzz                       # 150 cases per kind, seed 1
//	go run ./cmd/fuzz -n 1000 -seed 7       # a bigger campaign
//	go run ./cmd/fuzz -kinds fullutil,epdf  # restrict the pairings
//	go run ./cmd/fuzz -mutant pd2-nobbit    # prove the oracle catches a
//	                                        # broken PD² (fault injection)
//	go run ./cmd/fuzz -replay fullutil/1/42 # re-run one failing case
//
// The exit status is 1 if any unexplained disagreement was found.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pfair/internal/fuzz"
)

func main() {
	var (
		n        = flag.Int64("n", 150, "cases to generate per kind")
		seed     = flag.Int64("seed", 1, "campaign base seed")
		workers  = flag.Int("workers", 0, "worker pool size (0 = all cores)")
		kindsArg = flag.String("kinds", "", "comma-separated kinds (default all: fullutil,epdf,edf,rm,partition,dynamic,is,shard)")
		mutArg   = flag.String("mutant", "", "fault injection: substitute pd2-nobbit or epdf for PD²")
		replay   = flag.String("replay", "", "re-run a single case by its kind/seed/trial key")
		noShrink = flag.Bool("no-shrink", false, "skip reproducer minimization")
		verbose  = flag.Bool("v", false, "describe every failing case in full")
	)
	flag.Parse()

	mutant, err := fuzz.ParseMutant(*mutArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *replay != "" {
		kind, s, trial, err := fuzz.ParseReplay(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		c := fuzz.GenCase(kind, s, trial)
		fmt.Println(c.Describe())
		out := fuzz.CheckCase(c, mutant)
		if out.Explained > 0 {
			fmt.Printf("explained disagreements: %d\n", out.Explained)
		}
		if len(out.Violations) == 0 {
			fmt.Println("PASS")
			return
		}
		for _, v := range out.Violations {
			fmt.Println("  " + v)
		}
		if !*noShrink {
			sc := fuzz.Shrink(c, mutant)
			fmt.Printf("shrunk: M=%d H=%d tasks=%v\n", sc.M, sc.Horizon, sc.Set)
		}
		os.Exit(1)
	}

	var kinds []fuzz.Kind
	if *kindsArg != "" {
		for _, name := range strings.Split(*kindsArg, ",") {
			k, err := fuzz.ParseKind(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			kinds = append(kinds, k)
		}
	}

	rep := fuzz.Run(fuzz.Config{
		Seed:     *seed,
		Trials:   *n,
		Kinds:    kinds,
		Workers:  *workers,
		Mutant:   mutant,
		NoShrink: *noShrink,
	})

	nk := len(kinds)
	if nk == 0 {
		nk = len(fuzz.AllKinds())
	}
	fmt.Printf("fuzz: %d task systems across %d kinds (seed %d): %d unexplained disagreements, %d explained EPDF counterexamples\n",
		rep.Cases, nk, *seed, len(rep.Failures), rep.Explained)

	for _, f := range rep.Failures {
		fmt.Printf("\nFAIL %s\n", f.Case.Describe())
		max := 5
		if *verbose {
			max = len(f.Violations)
		}
		for i, v := range f.Violations {
			if i == max {
				fmt.Printf("  … and %d more\n", len(f.Violations)-max)
				break
			}
			fmt.Println("  " + v)
		}
		if f.Shrunk != nil {
			fmt.Printf("  shrunk reproducer: M=%d H=%d tasks=%v\n", f.Shrunk.M, f.Shrunk.Horizon, f.Shrunk.Set)
		}
		fmt.Printf("  replay: go run ./cmd/fuzz -replay %s", f.Case.Replay())
		if *mutArg != "" {
			fmt.Printf(" -mutant %s", *mutArg)
		}
		fmt.Println()
	}
	if len(rep.Failures) > 0 {
		os.Exit(1)
	}
}
