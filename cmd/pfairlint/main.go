// Command pfairlint runs the repo-specific invariant analyzers of
// internal/lint over the given packages (default ./...) and exits
// non-zero if any invariant is violated. It is the static half of the
// repository's exactness and determinism guarantees; `make lint` wires
// it into the check target and CI runs it on every push.
//
// Usage:
//
//	pfairlint [-only name[,name...]] [-json] [-list] [packages...]
//
// The analyzers: ratfloat, determinism, hotpath, nopanic, errcheckrat
// run per package; hotclosure, floatflow, and staleannot run over the
// whole loaded program (hotclosure and floatflow follow the
// interprocedural call graph built by internal/lint/callgraph). See
// internal/lint for the invariant each enforces and the //pfair: source
// annotations that grant justified exceptions.
//
// Human-readable diagnostics go to standard error, one per line, in
// file:line:col order, so they never mix with machine output. With
// -json the diagnostics are additionally encoded to standard output as
// a JSON array of objects with the fields "file", "line", "col",
// "analyzer", and "message" (an empty array when the program is clean).
//
// Exit codes:
//
//	0  no violations
//	1  one or more violations reported
//	2  usage error (unknown analyzer) or package load failure
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"pfair/internal/lint"
)

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the -json wire form of one diagnostic.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// run executes the linter with the given working directory, arguments,
// and output streams, returning the process exit code. main is a thin
// wrapper so tests can drive the full flag-parsing, loading, and
// reporting path in-process.
func run(dir string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pfairlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	asJSON := fs.Bool("json", false, "also emit diagnostics as a JSON array on stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		if len(keep) > 0 {
			names := make([]string, 0, len(keep))
			for name := range keep { //pfair:orderinvariant collected and sorted before printing
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Fprintf(stderr, "pfairlint: unknown analyzer %q\n", name)
			}
			return 2
		}
		analyzers = sel
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(dir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "pfairlint:", err)
		return 2
	}
	diags := lint.RunAnalyzers(pkgs, analyzers)
	for _, d := range diags {
		fmt.Fprintln(stderr, d)
	}
	if *asJSON {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "pfairlint:", err)
			return 2
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "pfairlint: %d violation(s) in %d package(s) checked\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
