// Command pfairlint runs the repo-specific invariant analyzers of
// internal/lint over the given packages (default ./...) and exits
// non-zero if any invariant is violated. It is the static half of the
// repository's exactness and determinism guarantees; `make lint` wires
// it into the check target and CI runs it on every push.
//
// Usage:
//
//	pfairlint [-only name[,name...]] [packages...]
//
// The five analyzers: ratfloat, determinism, hotpath, nopanic,
// errcheckrat. See internal/lint for the invariant each enforces and
// the //pfair: source annotations that grant justified exceptions.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pfair/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		if len(keep) > 0 {
			for name := range keep {
				fmt.Fprintf(os.Stderr, "pfairlint: unknown analyzer %q\n", name)
			}
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfairlint:", err)
		os.Exit(2)
	}
	diags := lint.RunAnalyzers(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pfairlint: %d violation(s) in %d package(s) checked\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
