package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module named pfair with one package
// under internal/ (the analyzers scope their rules to pfair/internal/...
// paths) and returns its root, so run() exercises the real go-list →
// parse → type-check → analyze path without touching the pfair tree.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module pfair\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgDir := filepath.Join(dir, "internal", "p")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pkgDir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunCleanPackage(t *testing.T) {
	dir := writeModule(t, "package p\n\nfunc F() int { return 1 }\n")
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run wrote to stdout: %q", stdout.String())
	}
	if stderr.Len() != 0 {
		t.Errorf("clean run wrote to stderr: %q", stderr.String())
	}
}

func TestRunViolationsGoToStderr(t *testing.T) {
	dir := writeModule(t, "package p\n\nfunc F() { panic(\"boom\") }\n")
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"-only", "nopanic", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("diagnostics leaked to stdout: %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), "[nopanic]") {
		t.Errorf("stderr missing diagnostic, got:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "p.go:3:") {
		t.Errorf("stderr missing file:line position, got:\n%s", stderr.String())
	}
}

func TestRunJSON(t *testing.T) {
	dir := writeModule(t, "package p\n\nfunc F() { panic(\"boom\") }\n")
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"-json", "-only", "nopanic", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("stdout is not a JSON diagnostic array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %+v", len(diags), diags)
	}
	d := diags[0]
	if filepath.Base(d.File) != "p.go" || d.Line != 3 || d.Col == 0 {
		t.Errorf("bad position: %+v", d)
	}
	if d.Analyzer != "nopanic" || !strings.Contains(d.Message, "panic") {
		t.Errorf("bad analyzer/message: %+v", d)
	}
}

func TestRunJSONEmptyArrayWhenClean(t *testing.T) {
	dir := writeModule(t, "package p\n\nfunc F() int { return 1 }\n")
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"-json", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(".", []string{"-only", "nosuch", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), `unknown analyzer "nosuch"`) {
		t.Errorf("stderr missing unknown-analyzer message, got:\n%s", stderr.String())
	}
}

func TestRunLoadError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.TempDir(), []string{"./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "pfairlint:") {
		t.Errorf("stderr missing load error, got:\n%s", stderr.String())
	}
}
