// Command tracecheck validates a Chrome trace-event JSON file (as written
// by pfairsim -trace / internal/obs.WriteChromeTrace) against the subset
// of the trace-event format the exporter promises, so CI can prove the
// artifact Perfetto loads is well-formed without a browser:
//
//   - the file is a JSON object with a traceEvents array;
//   - every event has a non-empty name, a phase in {X, i, M}, and
//     numeric, non-negative ts/pid/tid;
//   - complete events (ph=X) carry a non-negative dur;
//   - metadata events (ph=M) carry args.name;
//   - X spans never overlap within one (pid, tid) lane — the invariant
//     that makes the per-processor and per-task lanes renderable;
//   - instant events carry the args pfairtrace reconstructs from:
//     release/deadline-miss need numeric subtask and deadline, migration
//     needs numeric from and to;
//   - otherData, when present, carries a positive slotMicros and ring
//     accounting with totalEvents = retainedEvents + droppedEvents — the
//     contract that lets a consumer tell a truncated trace from a
//     complete one.
//
// Usage:
//
//	tracecheck [-require name,name,...] [-spans] trace.json
//
// -require fails unless every named event kind appears at least once;
// -spans fails unless both the processor group (pid 0) and the task group
// (pid 1) contain at least one X span.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type event struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Ts   *float64        `json:"ts"`
	Dur  *float64        `json:"dur"`
	Pid  *float64        `json:"pid"`
	Tid  *float64        `json:"tid"`
	Args json.RawMessage `json:"args"`
}

func main() {
	require := flag.String("require", "", "comma-separated event names that must appear")
	spans := flag.Bool("spans", false, "require X spans in both the processor (pid 0) and task (pid 1) groups")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-require names] [-spans] trace.json")
		os.Exit(2)
	}
	path := flag.Arg(0)

	raw, err := os.ReadFile(path)
	if err != nil {
		fatal("%v", err)
	}
	// The trace-event format is open: events may carry cat, s, cname, …
	// beyond the fields we validate, so decode loosely.
	var file struct {
		TraceEvents     []event        `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		fatal("%s: not a trace-event JSON object: %v", path, err)
	}
	if len(file.TraceEvents) == 0 {
		fatal("%s: traceEvents is empty", path)
	}
	if file.OtherData != nil {
		odNum := func(key string) (float64, bool) {
			v, ok := file.OtherData[key].(float64)
			return v, ok
		}
		if u, ok := odNum("slotMicros"); !ok || u <= 0 {
			fatal("%s: otherData.slotMicros missing or not a positive number", path)
		}
		var ring [3]float64
		for i, key := range []string{"totalEvents", "retainedEvents", "droppedEvents"} {
			v, ok := odNum(key)
			if !ok || v < 0 {
				fatal("%s: otherData.%s missing or negative", path, key)
			}
			ring[i] = v
		}
		if ring[0] != ring[1]+ring[2] {
			fatal("%s: otherData ring accounting inconsistent: totalEvents %v != retainedEvents %v + droppedEvents %v",
				path, ring[0], ring[1], ring[2])
		}
	}

	seen := map[string]int{}
	spanPids := map[float64]int{}
	type lane struct{ pid, tid float64 }
	laneSpans := map[lane][][2]float64{} // [start, end) per lane
	for i, e := range file.TraceEvents {
		where := fmt.Sprintf("%s: event %d (%q)", path, i, e.Name)
		if e.Name == "" {
			fatal("%s: missing name", where)
		}
		if e.Ts == nil || e.Pid == nil || e.Tid == nil {
			fatal("%s: missing ts/pid/tid", where)
		}
		if *e.Ts < 0 {
			fatal("%s: negative ts %v", where, *e.Ts)
		}
		switch e.Ph {
		case "X":
			if e.Dur == nil || *e.Dur < 0 {
				fatal("%s: complete event without non-negative dur", where)
			}
			spanPids[*e.Pid]++
			l := lane{*e.Pid, *e.Tid}
			laneSpans[l] = append(laneSpans[l], [2]float64{*e.Ts, *e.Ts + *e.Dur})
		case "i":
			// Instant events; scope (s) is optional in the format. The
			// kinds pfairtrace reconstructs from must carry their numeric
			// payload args.
			var need []string
			switch e.Name {
			case "release", "deadline-miss":
				need = []string{"subtask", "deadline"}
			case "migration":
				need = []string{"from", "to"}
			}
			if need != nil {
				var args map[string]any
				if err := json.Unmarshal(e.Args, &args); err != nil {
					fatal("%s: %s instant without decodable args", where, e.Name)
				}
				for _, key := range need {
					if _, ok := args[key].(float64); !ok {
						fatal("%s: %s instant without numeric args.%s", where, e.Name, key)
					}
				}
			}
		case "M":
			var args struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(e.Args, &args); err != nil || args.Name == "" {
				fatal("%s: metadata event without args.name", where)
			}
		default:
			fatal("%s: unexpected phase %q (exporter emits X, i, M only)", where, e.Ph)
		}
		seen[e.Name]++
	}

	for l, ss := range laneSpans { //pfair:orderinvariant each lane is validated independently; failure aborts with the first offending lane's data
		sort.Slice(ss, func(i, j int) bool { return ss[i][0] < ss[j][0] })
		for i := 1; i < len(ss); i++ {
			if ss[i][0] < ss[i-1][1] {
				fatal("%s: overlapping spans on lane pid=%v tid=%v: [%v,%v) and [%v,%v)",
					path, l.pid, l.tid, ss[i-1][0], ss[i-1][1], ss[i][0], ss[i][1])
			}
		}
	}

	if *spans {
		for _, pid := range []float64{0, 1} {
			if spanPids[pid] == 0 {
				group := "processor"
				if pid == 1 {
					group = "task"
				}
				fatal("%s: no X spans in the %s group (pid %v)", path, group, pid)
			}
		}
	}
	if *require != "" {
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name != "" && seen[name] == 0 {
				fatal("%s: required event %q never appears", path, name)
			}
		}
	}

	names := make([]string, 0, len(seen))
	for n := range seen { //pfair:orderinvariant collects keys for sorting
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%s: %d events OK;", path, len(file.TraceEvents))
	for _, n := range names {
		fmt.Printf(" %s=%d", n, seen[n])
	}
	fmt.Println()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
