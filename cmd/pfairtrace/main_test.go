package main

import (
	"bytes"
	"strings"
	"testing"

	"pfair/internal/core"
	"pfair/internal/obs"
	"pfair/internal/task"
)

// traceOf runs a scheduler over set and returns the Chrome trace JSON a
// pfairsim -trace invocation would write, plus the scheduler for
// cross-checking the report against ground truth.
func traceOf(t *testing.T, alg core.Algorithm, m int, set task.Set, horizon int64, ringCap int) ([]byte, *core.Scheduler) {
	t.Helper()
	s := core.NewScheduler(m, alg, core.Options{})
	rec := obs.NewRecorder(ringCap)
	s.Observe(rec, nil)
	for _, tk := range set {
		if err := s.Join(tk); err != nil {
			t.Fatalf("join %v: %v", tk, err)
		}
	}
	s.RunUntil(horizon)
	s.FinishMisses(horizon)
	var buf bytes.Buffer
	err := obs.WriteChromeTrace(&buf, rec, obs.ChromeTraceOptions{
		Procs: m,
		Extra: map[string]any{"alg": alg.String(), "m": m},
	})
	if err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	return buf.Bytes(), s
}

// epdfCounterexample is the pinned workload on which EPDF misses a
// deadline (full utilization on 5 processors).
func epdfCounterexample(t *testing.T) task.Set {
	t.Helper()
	return task.Set{
		task.MustNew("T0", 4, 9), task.MustNew("T1", 3, 6), task.MustNew("T2", 1, 2),
		task.MustNew("T3", 8, 9), task.MustNew("T4", 6, 10), task.MustNew("T5", 3, 6),
		task.MustNew("T6", 9, 10), task.MustNew("T7", 2, 3),
	}
}

// TestRoundTripAccounting checks the reconstructed report against the
// scheduler that produced the trace: the trace must round-trip the
// dispatch totals, migrations, and (absence of) misses exactly.
func TestRoundTripAccounting(t *testing.T) {
	set := task.Set{task.MustNew("A", 2, 3), task.MustNew("B", 2, 3), task.MustNew("C", 2, 3)}
	data, s := traceOf(t, core.PD2, 2, set, 120, 1<<16)

	td, err := parseTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("parseTrace: %v", err)
	}
	rep, err := buildReport(td, 2)
	if err != nil {
		t.Fatalf("buildReport: %v", err)
	}
	st := s.Stats()

	var dispatches, migrations int64
	for _, ts := range rep.Tasks {
		dispatches += ts.Dispatches
		migrations += ts.Migrations
	}
	if dispatches != st.Allocations {
		t.Errorf("report dispatches = %d, scheduler allocated %d", dispatches, st.Allocations)
	}
	if migrations != st.Migrations {
		t.Errorf("report migrations = %d, scheduler counted %d", migrations, st.Migrations)
	}
	var matrixTotal int64
	for _, row := range rep.Migrations {
		for _, v := range row {
			matrixTotal += v
		}
	}
	if matrixTotal != st.Migrations {
		t.Errorf("migration matrix sums to %d, scheduler counted %d", matrixTotal, st.Migrations)
	}
	if len(rep.Misses) != 0 {
		t.Errorf("feasible PD² run reported %d misses", len(rep.Misses))
	}
	if rep.Procs != 2 {
		t.Errorf("procs = %d, want 2", rep.Procs)
	}
	if rep.Ring.DroppedEvents != 0 {
		t.Errorf("complete trace reported %d dropped events", rep.Ring.DroppedEvents)
	}

	var human bytes.Buffer
	if err := renderHuman(&human, rep); err != nil {
		t.Fatalf("renderHuman: %v", err)
	}
	for _, want := range []string{"per-task accounting", "migration matrix", "no deadline misses", "A", "trace is complete"} {
		if !strings.Contains(human.String(), want) {
			t.Errorf("human report missing %q", want)
		}
	}
}

// TestMissWindowNamesTask: on the EPDF counterexample the report must
// name the missing task, include the surrounding events, and reconstruct
// the deadline ties with b-bit/group-deadline narration.
func TestMissWindowNamesTask(t *testing.T) {
	set := epdfCounterexample(t)
	data, s := traceOf(t, core.EPDF, 5, set, 180, 1<<16)
	// Only misses detected during the run emit EvMiss; FinishMisses adds
	// horizon-boundary entries (ScheduledAt −1) the trace cannot carry.
	var traced []core.Miss
	for _, m := range s.Stats().Misses {
		if m.ScheduledAt >= 0 {
			traced = append(traced, m)
		}
	}
	if len(traced) == 0 {
		t.Fatal("EPDF counterexample no longer misses; test needs a new workload")
	}
	wantTask := traced[0].Task

	td, err := parseTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("parseTrace: %v", err)
	}
	rep, err := buildReport(td, 2)
	if err != nil {
		t.Fatalf("buildReport: %v", err)
	}
	if len(rep.Misses) != len(traced) {
		t.Fatalf("report has %d misses, scheduler detected %d during the run", len(rep.Misses), len(traced))
	}
	m := rep.Misses[0]
	if m.Task != wantTask {
		t.Errorf("miss window names %q, scheduler missed %q", m.Task, wantTask)
	}
	if len(m.Window) == 0 {
		t.Error("miss window has no events")
	}
	if len(m.Ties) == 0 {
		t.Fatal("miss window has no deadline-tie reconstruction")
	}
	foundBBit := false
	for _, tie := range m.Ties {
		for _, line := range tie.Tasks {
			if strings.Contains(line, "b-bit") {
				foundBBit = true
			}
		}
	}
	if !foundBBit {
		t.Error("tie reconstruction carries no b-bit narration")
	}

	var human bytes.Buffer
	if err := renderHuman(&human, rep); err != nil {
		t.Fatalf("renderHuman: %v", err)
	}
	out := human.String()
	for _, want := range []string{"DEADLINE MISS " + wantTask, "b-bit", "group deadline"} {
		if !strings.Contains(out, want) {
			t.Errorf("human report missing %q", want)
		}
	}
}

// TestChurnRoundTrip: a run with mid-run join, reweight, and leave must
// surface its admission-plane activity in the report — counts, a
// narrated timeline, and the reweighted task's pattern picked up for
// forensics — and the human output must carry the churn section.
func TestChurnRoundTrip(t *testing.T) {
	s := core.NewScheduler(2, core.PD2, core.Options{})
	rec := obs.NewRecorder(1 << 16)
	s.Observe(rec, nil)
	for _, tk := range []*task.Task{task.MustNew("A", 1, 2), task.MustNew("B", 1, 3)} {
		if err := s.Join(tk); err != nil {
			t.Fatalf("join %v: %v", tk, err)
		}
	}
	s.RunUntil(24)
	if err := s.Join(task.MustNew("C", 1, 4)); err != nil {
		t.Fatalf("mid-run join: %v", err)
	}
	if _, err := s.Reweight("B", 1, 2); err != nil {
		t.Fatalf("reweight: %v", err)
	}
	s.RunUntil(48)
	if _, err := s.Leave("C"); err != nil {
		t.Fatalf("leave: %v", err)
	}
	s.RunUntil(96)
	s.FinishMisses(96)

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, rec, obs.ChromeTraceOptions{Procs: 2}); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	td, err := parseTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parseTrace: %v", err)
	}
	rep, err := buildReport(td, 2)
	if err != nil {
		t.Fatalf("buildReport: %v", err)
	}
	if rep.Churn == nil {
		t.Fatal("report has no churn section despite mid-run operations")
	}
	// Core reweight is leave-and-rejoin: B's new incarnation adds one
	// join and one leave beyond the explicit operations.
	if rep.Churn.Reweights != 1 {
		t.Errorf("churn reweights = %d, want 1", rep.Churn.Reweights)
	}
	if rep.Churn.Joins < 3 || rep.Churn.Leaves < 1 {
		t.Errorf("churn joins/leaves = %d/%d, want at least 3/1", rep.Churn.Joins, rep.Churn.Leaves)
	}
	var sawReweight bool
	for _, line := range rep.Churn.Timeline {
		if strings.Contains(line, "reweight") && strings.Contains(line, "B") {
			sawReweight = true
		}
	}
	if !sawReweight {
		t.Errorf("churn timeline does not narrate B's reweight: %q", rep.Churn.Timeline)
	}

	var human bytes.Buffer
	if err := renderHuman(&human, rep); err != nil {
		t.Fatalf("renderHuman: %v", err)
	}
	for _, want := range []string{"dynamic-task churn", "reweight"} {
		if !strings.Contains(human.String(), want) {
			t.Errorf("human report missing %q", want)
		}
	}
}

// TestRingWrapSurfaced: a trace whose ring wrapped must carry the drop
// count through to the report and the human output must warn.
func TestRingWrapSurfaced(t *testing.T) {
	set := epdfCounterexample(t)
	data, _ := traceOf(t, core.EPDF, 5, set, 180, 1<<8)

	td, err := parseTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("parseTrace: %v", err)
	}
	rep, err := buildReport(td, 2)
	if err != nil {
		t.Fatalf("buildReport: %v", err)
	}
	if rep.Ring.DroppedEvents == 0 {
		t.Fatal("256-event ring over a 180-slot, 8-task run did not wrap; test premise broken")
	}
	if rep.Ring.TotalEvents != rep.Ring.RetainedEvents+rep.Ring.DroppedEvents {
		t.Errorf("ring accounting inconsistent: total %d != retained %d + dropped %d",
			rep.Ring.TotalEvents, rep.Ring.RetainedEvents, rep.Ring.DroppedEvents)
	}
	var human bytes.Buffer
	if err := renderHuman(&human, rep); err != nil {
		t.Fatalf("renderHuman: %v", err)
	}
	if !strings.Contains(human.String(), "WARNING: ring wrapped") {
		t.Error("human report does not warn about the wrapped ring")
	}
}

// TestRejectsNonTraces: garbage and schedule-free inputs must error, not
// produce empty reports.
func TestRejectsNonTraces(t *testing.T) {
	if _, err := parseTrace(strings.NewReader("not json")); err == nil {
		t.Error("parseTrace accepted garbage")
	}
	td, err := parseTrace(strings.NewReader(`{"traceEvents":[],"otherData":{"slotMicros":1000}}`))
	if err != nil {
		t.Fatalf("parseTrace on empty trace: %v", err)
	}
	if _, err := buildReport(td, 2); err == nil {
		t.Error("buildReport accepted a trace with no schedule events")
	}
}
