// Command pfairtrace is the offline forensics companion to pfairsim's
// -trace output: it reads a Chrome trace-event JSON file written by
// obs.WriteChromeTrace and reconstructs the scheduling story it encodes —
// per-task accounting, the CPU×CPU migration flow, shard steal totals,
// and a root-cause window around every deadline miss, with the PD²
// tie-break decisions that shaped it narrated inline.
//
// Usage:
//
//	pfairsim -m 5 -alg epdf -slots 180 -trace run.json T0:4/9 ... T7:2/3
//	pfairtrace run.json
//
// Flags:
//
//	-json    emit the report as JSON instead of human-readable text
//	-k N     slots of context on each side of a deadline miss (default 2)
//
// The exporter merges consecutive slots into spans and records ring
// accounting in otherData, so pfairtrace can both recover the exact
// per-slot schedule and say when it cannot: droppedEvents > 0 means the
// ring wrapped and the report describes only the retained suffix — the
// report says so instead of passing truncation off as the whole run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"pfair/internal/core"
	"pfair/internal/obs"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	k := flag.Int64("k", 2, "slots of context around each deadline miss")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pfairtrace [-json] [-k N] trace.json   (\"-\" = stdin)")
		os.Exit(2)
	}
	in := os.Stdin
	if path := flag.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		in = f
	}
	td, err := parseTrace(in)
	if err != nil {
		fatal("parsing trace: %v", err)
	}
	rep, err := buildReport(td, *k)
	if err != nil {
		fatal("%v", err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal("encoding report: %v", err)
		}
		return
	}
	if err := renderHuman(os.Stdout, rep); err != nil {
		fatal("rendering report: %v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pfairtrace: "+format+"\n", args...)
	os.Exit(1)
}

// traceEvent mirrors the subset of the Chrome trace-event record the
// exporter writes; unknown fields are ignored so hand-edited or
// tool-augmented traces still load.
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    int64          `json:"ts"`
	Dur   int64          `json:"dur"`
	Pid   int64          `json:"pid"`
	Tid   int64          `json:"tid"`
	Cat   string         `json:"cat"`
	Args  map[string]any `json:"args"`
}

type traceFile struct {
	TraceEvents []traceEvent   `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData"`
}

// Lane layout constants; must match obs/chrometrace.go.
const (
	pidProcs     = 0
	pidTasks     = 1
	schedulerTid = 1 << 20
)

// traceData is the reconstructed event stream plus the identity and
// accounting metadata needed to interpret it.
type traceData struct {
	events     []obs.Event
	names      map[int32]string
	procs      int
	slotMicros int64
	other      map[string]any
	total      int64 // events emitted during the run
	retained   int64 // events that survived the ring
	dropped    int64 // events lost to ring wrap
	horizon    int64 // one past the last slot seen
}

// num reads a JSON number (float64 after decoding into any) out of an
// args map; missing or non-numeric keys return 0.
func num(m map[string]any, key string) int64 {
	if v, ok := m[key].(float64); ok {
		return int64(v)
	}
	return 0
}

func str(m map[string]any, key string) string {
	s, _ := m[key].(string)
	return s
}

// parseTrace inverts obs.WriteChromeTrace: metadata events rebuild the
// id↔name maps, processor-lane spans expand back into per-slot schedule
// events, instants map back to their event kinds, and the scheduler
// decision lane yields the tie-break events. The result is sorted by
// (slot, within-slot causal order).
func parseTrace(r io.Reader) (*traceData, error) {
	var tf traceFile
	if err := json.NewDecoder(r).Decode(&tf); err != nil {
		return nil, err
	}
	td := &traceData{
		names:      map[int32]string{},
		slotMicros: 1000,
		other:      tf.OtherData,
	}
	if tf.OtherData != nil {
		if u := num(tf.OtherData, "slotMicros"); u > 0 {
			td.slotMicros = u
		}
		td.total = num(tf.OtherData, "totalEvents")
		td.retained = num(tf.OtherData, "retainedEvents")
		td.dropped = num(tf.OtherData, "droppedEvents")
	}

	ids := map[string]int32{} // task name → id
	for _, e := range tf.TraceEvents {
		if e.Phase == "M" && e.Name == "thread_name" && e.Pid == pidTasks {
			name := str(e.Args, "name")
			td.names[int32(e.Tid)] = name
			ids[name] = int32(e.Tid)
		}
	}
	unit := td.slotMicros
	maxProc := -1
	for _, e := range tf.TraceEvents {
		slot := e.Ts / unit
		switch {
		case e.Phase == "X" && e.Pid == pidProcs:
			// One span = consecutive slots of one task on one CPU, with
			// consecutive subtask indices (the exporter's merge rule).
			id, ok := ids[str(e.Args, "task")]
			if !ok {
				continue
			}
			n := e.Dur / unit
			firstSub := int64(0)
			if sub := str(e.Args, "subtasks"); sub != "" {
				fmt.Sscanf(sub, "%d-", &firstSub)
			}
			for i := int64(0); i < n; i++ {
				td.events = append(td.events, obs.Event{
					Slot: slot + i, Kind: obs.EvSchedule,
					Task: id, Proc: int32(e.Tid), A: firstSub + i,
				})
			}
			if int(e.Tid) > maxProc {
				maxProc = int(e.Tid)
			}
			if slot+n > td.horizon {
				td.horizon = slot + n
			}
		case e.Phase == "i" && e.Pid == pidTasks:
			ev := obs.Event{Slot: slot, Task: int32(e.Tid), Proc: -1}
			switch e.Name {
			case "release":
				ev.Kind, ev.A, ev.B = obs.EvRelease, num(e.Args, "subtask"), num(e.Args, "deadline")
			case "deadline-miss":
				ev.Kind, ev.A, ev.B = obs.EvMiss, num(e.Args, "subtask"), num(e.Args, "deadline")
			case "preemption":
				ev.Kind, ev.A, ev.Proc = obs.EvPreempt, num(e.Args, "subtask"), int32(num(e.Args, "proc"))
			case "migration":
				ev.Kind, ev.A, ev.B = obs.EvMigrate, num(e.Args, "from"), num(e.Args, "subtask")
				ev.Proc = int32(num(e.Args, "to"))
			case "join":
				ev.Kind, ev.A, ev.B = obs.EvJoin, num(e.Args, "cost"), num(e.Args, "period")
			case "leave":
				ev.Kind, ev.A = obs.EvLeave, num(e.Args, "allocated")
			case "reweight":
				ev.Kind, ev.A, ev.B = obs.EvReweight, num(e.Args, "cost"), num(e.Args, "period")
			case "lag-extremum":
				ev.Kind, ev.A, ev.B = obs.EvLagExtremum, num(e.Args, "num"), num(e.Args, "den")
			default:
				continue
			}
			td.events = append(td.events, ev)
			if slot+1 > td.horizon {
				td.horizon = slot + 1
			}
		case e.Phase == "i" && e.Pid == pidProcs && e.Tid == schedulerTid:
			kind := obs.EvTieBreakB
			if e.Name == obs.EvTieBreakGroup.String() {
				kind = obs.EvTieBreakGroup
			} else if e.Name != obs.EvTieBreakB.String() {
				continue
			}
			winner, wok := ids[str(e.Args, "winner")]
			loser, lok := ids[str(e.Args, "loser")]
			if !wok || !lok {
				continue
			}
			td.events = append(td.events, obs.Event{
				Slot: slot, Kind: kind,
				Task: winner, Proc: -1,
				A: int64(loser), B: num(e.Args, "deadline"),
			})
		}
	}
	td.procs = maxProc + 1

	// Restore the within-slot causal order the exporter's lane split
	// discarded: admissions and releases precede the pick, the pick's
	// tie-breaks precede the dispatch, dispatch effects precede the
	// post-slot bookkeeping.
	rank := map[obs.EventKind]int{
		obs.EvJoin: 0, obs.EvReweight: 1, obs.EvRelease: 2,
		obs.EvTieBreakB: 3, obs.EvTieBreakGroup: 3,
		obs.EvSchedule: 4, obs.EvPreempt: 5, obs.EvMigrate: 6,
		obs.EvMiss: 7, obs.EvLagExtremum: 8, obs.EvLeave: 9,
	}
	sort.SliceStable(td.events, func(i, j int) bool {
		a, b := td.events[i], td.events[j]
		if a.Slot != b.Slot {
			return a.Slot < b.Slot
		}
		return rank[a.Kind] < rank[b.Kind]
	})
	return td, nil
}

// RingReport is the trace-completeness accounting.
type RingReport struct {
	TotalEvents    int64 `json:"totalEvents"`
	RetainedEvents int64 `json:"retainedEvents"`
	DroppedEvents  int64 `json:"droppedEvents"`
}

// ShardReport carries the run's work-stealing totals when the trace was
// written by a sharded run (absent otherwise).
type ShardReport struct {
	LocalHits  int64 `json:"localHits"`
	Steals     int64 `json:"steals"`
	Underflows int64 `json:"underflows"`
}

// TieNote reconstructs one deadline tie near a miss: which subtasks
// shared the deadline, their b-bits and group deadlines (computed from
// each task's Pfair window pattern), and the rule PD² would apply. For a
// PD² trace this annotates the recorded tie-break events; for an EPDF
// trace — which records none, because EPDF ignores both rules — it shows
// exactly the information the algorithm threw away.
type TieNote struct {
	Deadline int64    `json:"deadline"`
	Tasks    []string `json:"tasks"`
	Rule     string   `json:"rule"`
}

// MissWindow is the root-cause context around one deadline miss: every
// reconstructed event within ±k slots, narrated, plus the deadline ties
// in the window.
type MissWindow struct {
	Task     string    `json:"task"`
	Subtask  int64     `json:"subtask"`
	Deadline int64     `json:"deadline"`
	Slot     int64     `json:"slot"`
	Window   []string  `json:"window"`
	Ties     []TieNote `json:"ties,omitempty"`
}

// ChurnReport summarizes the trace's dynamic-task activity — the
// admission plane's join/leave/reweight transactions as they landed.
// Construction-time admissions count as joins but are not narrated;
// Timeline lists only mid-run churn, the part worth a forensic look.
type ChurnReport struct {
	Joins     int      `json:"joins"`
	Leaves    int      `json:"leaves"`
	Reweights int      `json:"reweights"`
	Timeline  []string `json:"timeline,omitempty"`
}

// Report is pfairtrace's output schema.
type Report struct {
	Meta       map[string]any  `json:"meta,omitempty"`
	Ring       RingReport      `json:"ring"`
	Procs      int             `json:"procs"`
	Slots      int64           `json:"slots"`
	Tasks      []obs.TaskStats `json:"tasks"`
	Migrations [][]int64       `json:"migrationMatrix"`
	Shard      *ShardReport    `json:"shard,omitempty"`
	Churn      *ChurnReport    `json:"churn,omitempty"`
	Misses     []MissWindow    `json:"misses"`
}

// churnReport collects the admission-plane activity, or nil when the
// trace shows only a static construction-time set.
func churnReport(td *traceData) *ChurnReport {
	c := &ChurnReport{}
	for _, e := range td.events {
		switch e.Kind {
		case obs.EvJoin:
			c.Joins++
			if e.Slot > 0 {
				c.Timeline = append(c.Timeline, narrate(td, e))
			}
		case obs.EvLeave:
			c.Leaves++
			c.Timeline = append(c.Timeline, narrate(td, e))
		case obs.EvReweight:
			c.Reweights++
			c.Timeline = append(c.Timeline, narrate(td, e))
		}
	}
	if len(c.Timeline) == 0 {
		return nil
	}
	return c
}

// buildReport replays the reconstructed stream through the same
// obs.Accounting table the live scheduler feeds, then derives the
// forensic views. It rejects traces with no schedule events — either the
// file is not a pfairsim trace or the run never dispatched anything, and
// an empty report would hide that.
func buildReport(td *traceData, k int64) (*Report, error) {
	acct := obs.NewAccounting()
	for id, name := range td.names {
		acct.SetName(id, name)
	}
	scheduled := false
	lastCPU := map[int32]int32{}
	var matrix [][]int64
	if td.procs > 0 {
		matrix = make([][]int64, td.procs)
		for i := range matrix {
			matrix[i] = make([]int64, td.procs)
		}
	}
	for _, e := range td.events {
		acct.Apply(e)
		if e.Kind == obs.EvSchedule {
			scheduled = true
			if prev, ok := lastCPU[e.Task]; ok && prev != e.Proc {
				matrix[prev][e.Proc]++
			}
			lastCPU[e.Task] = e.Proc
		}
	}
	if !scheduled {
		return nil, fmt.Errorf("trace contains no schedule events; not a pfairsim -trace file, or the run never dispatched")
	}
	acct.Finalize(td.horizon)

	rep := &Report{
		Meta:  td.other,
		Ring:  RingReport{TotalEvents: td.total, RetainedEvents: td.retained, DroppedEvents: td.dropped},
		Procs: td.procs,
		Slots: td.horizon,
		Tasks: acct.Snapshot(),

		Migrations: matrix,
		Misses:     []MissWindow{},
	}
	if td.other != nil {
		if _, ok := td.other["shardLocalHits"]; ok {
			rep.Shard = &ShardReport{
				LocalHits:  num(td.other, "shardLocalHits"),
				Steals:     num(td.other, "shardSteals"),
				Underflows: num(td.other, "shardUnderflows"),
			}
		}
	}
	// Window patterns for tie reconstruction, keyed by task id, built
	// lazily from the cost/period the join events carry.
	pats := map[int32]*core.Pattern{}
	for _, e := range td.events {
		// A reweight updates the pattern in place (the in-place policies
		// emit no fresh join); core's leave-and-rejoin emits the new
		// incarnation's join first, so the overwrite is idempotent there.
		if (e.Kind == obs.EvJoin || e.Kind == obs.EvReweight) && e.A > 0 && e.B > 0 {
			pats[e.Task] = core.NewPattern(e.A, e.B)
		}
	}
	rep.Churn = churnReport(td)
	for _, e := range td.events {
		if e.Kind != obs.EvMiss {
			continue
		}
		w := MissWindow{
			Task: taskName(td, e.Task), Subtask: e.A, Deadline: e.B, Slot: e.Slot,
		}
		var rels []obs.Event
		for _, o := range td.events {
			if o.Slot >= e.Slot-k && o.Slot <= e.Slot+k {
				w.Window = append(w.Window, narrate(td, o))
				if o.Kind == obs.EvRelease {
					rels = append(rels, o)
				}
			}
		}
		w.Ties = tieNotes(td, pats, rels)
		rep.Misses = append(rep.Misses, w)
	}
	return rep, nil
}

// tieNotes groups the releases around a miss by pseudo-deadline and, for
// every deadline shared by two or more subtasks, reconstructs the PD²
// tie-break inputs from the tasks' window patterns.
func tieNotes(td *traceData, pats map[int32]*core.Pattern, rels []obs.Event) []TieNote {
	byDeadline := map[int64][]obs.Event{}
	for _, r := range rels {
		byDeadline[r.B] = append(byDeadline[r.B], r)
	}
	deadlines := make([]int64, 0, len(byDeadline))
	for d, group := range byDeadline {
		if len(group) >= 2 {
			deadlines = append(deadlines, d)
		}
	}
	sort.Slice(deadlines, func(i, j int) bool { return deadlines[i] < deadlines[j] })
	var notes []TieNote
	for _, d := range deadlines {
		group := byDeadline[d]
		note := TieNote{Deadline: d}
		bbits := map[int]bool{}
		groups := map[int64]bool{}
		complete := true
		for _, r := range group {
			pat := pats[r.Task]
			if pat == nil {
				complete = false
				note.Tasks = append(note.Tasks, fmt.Sprintf("%s subtask %d", taskName(td, r.Task), r.A))
				continue
			}
			b, g := pat.BBit(r.A), pat.GroupDeadline(r.A)
			bbits[b] = true
			groups[g] = true
			note.Tasks = append(note.Tasks, fmt.Sprintf("%s subtask %d: b-bit %d, group deadline %d", taskName(td, r.Task), r.A, b, g))
		}
		switch {
		case !complete:
			note.Rule = "tie-break inputs incomplete (join events missing from the trace)"
		case len(bbits) > 1:
			note.Rule = "PD² decides by b-bit (prefer 1)"
		case len(groups) > 1 && bbits[1]:
			note.Rule = "b-bits equal; PD² decides by group deadline (prefer later)"
		default:
			note.Rule = "neither PD² rule separates them; falls through to task id"
		}
		notes = append(notes, note)
	}
	return notes
}

func taskName(td *traceData, id int32) string {
	if n, ok := td.names[id]; ok {
		return n
	}
	return fmt.Sprintf("task#%d", id)
}

// narrate renders one reconstructed event as a human-readable line. The
// tie-break lines name the rule, winner, and loser — the PD² decisions a
// miss window exists to expose.
func narrate(td *traceData, e obs.Event) string {
	name := taskName(td, e.Task)
	switch e.Kind {
	case obs.EvJoin:
		return fmt.Sprintf("slot %4d: join          %s cost %d period %d", e.Slot, name, e.A, e.B)
	case obs.EvLeave:
		return fmt.Sprintf("slot %4d: leave         %s after %d quanta", e.Slot, name, e.A)
	case obs.EvReweight:
		return fmt.Sprintf("slot %4d: reweight      %s to cost %d period %d", e.Slot, name, e.A, e.B)
	case obs.EvRelease:
		return fmt.Sprintf("slot %4d: release       %s subtask %d (deadline %d)", e.Slot, name, e.A, e.B)
	case obs.EvSchedule:
		return fmt.Sprintf("slot %4d: schedule      %s subtask %d on CPU %d", e.Slot, name, e.A, e.Proc)
	case obs.EvPreempt:
		return fmt.Sprintf("slot %4d: preempt       %s subtask %d off CPU %d", e.Slot, name, e.A, e.Proc)
	case obs.EvMigrate:
		return fmt.Sprintf("slot %4d: migrate       %s CPU %d → CPU %d (subtask %d)", e.Slot, name, e.A, e.Proc, e.B)
	case obs.EvMiss:
		return fmt.Sprintf("slot %4d: DEADLINE MISS %s subtask %d missed deadline %d", e.Slot, name, e.A, e.B)
	case obs.EvTieBreakB:
		return fmt.Sprintf("slot %4d: tie-break     %s beats %s at deadline %d (b-bit rule)", e.Slot, name, taskName(td, int32(e.A)), e.B)
	case obs.EvTieBreakGroup:
		return fmt.Sprintf("slot %4d: tie-break     %s beats %s at deadline %d (group-deadline rule)", e.Slot, name, taskName(td, int32(e.A)), e.B)
	case obs.EvLagExtremum:
		return fmt.Sprintf("slot %4d: lag-extremum  %s |lag| reaches %d/%d", e.Slot, name, e.A, e.B)
	}
	return fmt.Sprintf("slot %4d: %s", e.Slot, e.Kind)
}

// renderHuman writes the full forensic report as text.
func renderHuman(w io.Writer, rep *Report) error {
	alg := str(rep.Meta, "alg")
	if alg == "" {
		alg = "unknown algorithm"
	}
	fmt.Fprintf(w, "pfairtrace report: %s, %d processors, %d slots\n", alg, rep.Procs, rep.Slots)
	if rep.Ring.DroppedEvents > 0 {
		fmt.Fprintf(w, "WARNING: ring wrapped — %d of %d events dropped; this report covers only the retained suffix\n",
			rep.Ring.DroppedEvents, rep.Ring.TotalEvents)
	} else if rep.Ring.TotalEvents > 0 {
		fmt.Fprintf(w, "trace is complete: %d events, none dropped\n", rep.Ring.TotalEvents)
	}

	fmt.Fprintf(w, "\nper-task accounting:\n")
	if err := obs.WriteTaskTable(w, rep.Tasks); err != nil {
		return err
	}

	if rep.Procs > 1 {
		fmt.Fprintf(w, "\nmigration matrix (rows = from CPU, cols = to CPU):\n      ")
		for j := 0; j < rep.Procs; j++ {
			fmt.Fprintf(w, "%6d", j)
		}
		fmt.Fprintln(w)
		for i, row := range rep.Migrations {
			fmt.Fprintf(w, "%6d", i)
			for _, v := range row {
				fmt.Fprintf(w, "%6d", v)
			}
			fmt.Fprintln(w)
		}
	}

	if rep.Shard != nil {
		total := rep.Shard.LocalHits + rep.Shard.Steals
		fmt.Fprintf(w, "\nshard affinity: %d picks, %d local (%s), %d stolen, %d underflow steals\n",
			total, rep.Shard.LocalHits, pct(rep.Shard.LocalHits, total), rep.Shard.Steals, rep.Shard.Underflows)
	}

	if rep.Churn != nil {
		fmt.Fprintf(w, "\ndynamic-task churn: %d joins, %d leaves, %d reweights\n",
			rep.Churn.Joins, rep.Churn.Leaves, rep.Churn.Reweights)
		for _, line := range rep.Churn.Timeline {
			fmt.Fprintln(w, " ", line)
		}
	}

	if len(rep.Misses) == 0 {
		fmt.Fprintf(w, "\nno deadline misses\n")
		return nil
	}
	fmt.Fprintf(w, "\n%d deadline miss(es):\n", len(rep.Misses))
	for i, m := range rep.Misses {
		fmt.Fprintf(w, "\nmiss %d: %s subtask %d missed deadline %d (detected slot %d)\n",
			i+1, m.Task, m.Subtask, m.Deadline, m.Slot)
		fmt.Fprintln(w, strings.Repeat("-", 60))
		for _, line := range m.Window {
			fmt.Fprintln(w, " ", line)
		}
		for _, tie := range m.Ties {
			fmt.Fprintf(w, "  deadline %d tie — %s:\n", tie.Deadline, tie.Rule)
			for _, t := range tie.Tasks {
				fmt.Fprintf(w, "    %s\n", t)
			}
		}
	}
	return nil
}

func pct(part, total int64) string {
	if total == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%d%%", 100*part/total)
}
