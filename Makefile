GO ?= go

.PHONY: build vet lint test race bench bench-scale bench-guard bench-guard-scale fuzz fuzz-short smoke taskstats engine-equiv dyn-equiv check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs pfairlint, the repo's own invariant analyzers (exact
# arithmetic, determinism, zero-alloc hot path and its call-graph
# closure, float taint flow, no library panics, checked fallible
# results, annotation staleness). See DESIGN.md for the invariants and
# the //pfair: annotation grammar. Set LINT_ONLY=name[,name...] to run
# a subset of analyzers: `make lint LINT_ONLY=hotclosure,staleannot`.
LINT_ONLY ?=
lint:
	$(GO) run ./cmd/pfairlint $(if $(LINT_ONLY),-only $(LINT_ONLY)) ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the scheduler hot-path benchmarks and writes BENCH_core.json
# (name, ns/op, allocs/op per benchmark) for machine consumption, and
# appends a dated entry to BENCH_core.trajectory.json. Refuses a dirty
# tree (BENCH_ALLOW_DIRTY=1 overrides).
bench:
	sh scripts/bench.sh BENCH_core.json

# bench-scale runs the million-task scale benchmarks (sharded ready
# queues, supertask hierarchy) at a fixed iteration count and writes
# BENCH_scale.json with slots/s throughput alongside ns/op. Three
# repeats, pinning the slowest: these benchmarks are bimodal on
# single-CPU boxes (~2.5x fast vs slow mode, DESIGN.md §10), and a
# baseline caught in the fast mode makes bench-guard-scale flake.
bench-scale:
	sh scripts/bench.sh BENCH_scale.json 'BenchmarkScale' 500x 3

# bench-guard reruns the BENCH_core.json set with fixed iteration counts
# and fails on a >30% ns/op regression — or any allocs/op growth —
# against the checked-in baseline.
bench-guard:
	sh scripts/bench_guard.sh BENCH_core.json

# bench-guard-scale is the same gate over the BENCH_scale.json baseline
# (plus its slots/s floor), with the iteration count scripts/bench.sh
# used to generate it. Four repeats and a doubled threshold: against the
# slow-mode baseline the 100% ceiling absorbs the benchmark's observed
# ~2.5x bimodal swing while still failing the order-of-magnitude
# regressions the gate exists for.
bench-guard-scale:
	BENCH_GUARD_THRESHOLD=$${BENCH_GUARD_THRESHOLD:-100} sh scripts/bench_guard.sh BENCH_scale.json 'BenchmarkScale' 500x 4

# fuzz runs the differential scheduling oracle: 150 task systems per kind
# (1350 total) across every scheduler pairing, with shrunken reproducers
# and replay keys on failure. See EXPERIMENTS.md for replaying seeds.
fuzz:
	$(GO) run ./cmd/fuzz -n 150 -seed 1

# fuzz-short is the quick campaign the check target includes.
fuzz-short:
	$(GO) run ./cmd/fuzz -n 25 -seed 1

# smoke exercises the observability layer end to end: pfairsim -trace on
# the quickstart and EPDF-counterexample sets validated by tracecheck
# and explained by pfairtrace, shard telemetry exposition, plus the
# observed and profiled hot-path allocation benchmarks. See DESIGN.md
# §7 and §12.
smoke:
	sh scripts/smoke.sh

# taskstats runs the quickstart set with the per-task accounting table
# and the sampled engine phase profile — the flight-recorder view of a
# run (DESIGN.md §12).
taskstats:
	$(GO) run ./cmd/pfairsim -m 2 -alg pd2 -slots 240 -taskstats -phaseprof 4 A:2/3 B:2/3 C:2/3

# engine-equiv runs the golden equivalence suite: every simulator policy
# on the shared slot engine must reproduce, byte for byte, the schedules
# and figures the pre-engine loops produced (internal/engine/testdata).
# Regenerate goldens after an intentional behaviour change with
#   go test ./internal/engine -run TestGolden -update
engine-equiv:
	$(GO) test ./internal/engine -run 'TestGolden' -count=1

# dyn-equiv runs the admission-plane equivalence suite: for every policy
# (PD² core, EDF, RM, WRR, supertask) the unified Submit entry point and
# the legacy per-policy entry points must produce identical schedules,
# stats, and ledgers over the same churn script (DESIGN.md §13).
dyn-equiv:
	$(GO) test ./internal/engine -run 'TestDynEquiv' -count=1

check: build vet lint test race fuzz-short smoke engine-equiv dyn-equiv bench-guard bench-guard-scale bench
