GO ?= go

.PHONY: build vet lint test race bench fuzz fuzz-short smoke check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs pfairlint, the repo's own invariant analyzers (exact
# arithmetic, determinism, zero-alloc hot path, no library panics,
# checked fallible results). See DESIGN.md for the invariants and the
# //pfair: annotation grammar.
lint:
	$(GO) run ./cmd/pfairlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the scheduler hot-path benchmarks and writes BENCH_core.json
# (name, ns/op, allocs/op per benchmark) for machine consumption.
bench:
	sh scripts/bench.sh BENCH_core.json

# fuzz runs the differential scheduling oracle: 150 task systems per kind
# (1050 total) across every scheduler pairing, with shrunken reproducers
# and replay keys on failure. See EXPERIMENTS.md for replaying seeds.
fuzz:
	$(GO) run ./cmd/fuzz -n 150 -seed 1

# fuzz-short is the quick campaign the check target includes.
fuzz-short:
	$(GO) run ./cmd/fuzz -n 25 -seed 1

# smoke exercises the observability layer end to end: pfairsim -trace on
# the quickstart and EPDF-counterexample sets validated by tracecheck,
# plus the observed hot-path allocation benchmark. See DESIGN.md §7.
smoke:
	sh scripts/smoke.sh

check: build vet lint test race fuzz-short smoke bench
