GO ?= go

.PHONY: build test race bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the scheduler hot-path benchmarks and writes BENCH_core.json
# (name, ns/op, allocs/op per benchmark) for machine consumption.
bench:
	sh scripts/bench.sh BENCH_core.json

check: build test race bench
