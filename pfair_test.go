package pfair_test

import (
	"testing"

	"pfair"
)

// TestQuickstart exercises the facade end to end: the doc-comment example
// must keep working.
func TestQuickstart(t *testing.T) {
	s := pfair.NewScheduler(2, pfair.PD2, pfair.Options{})
	for _, tk := range []*pfair.Task{
		pfair.MustNewTask("A", 2, 3), pfair.MustNewTask("B", 2, 3), pfair.MustNewTask("C", 2, 3),
	} {
		if err := s.Join(tk); err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	s.RunUntil(3000)
	s.FinishMisses(3000)
	if n := len(s.Stats().Misses); n != 0 {
		t.Fatalf("quickstart set missed %d deadlines", n)
	}
	if s.Stats().Allocations != 3000*2 {
		t.Fatalf("full-utilization set left idle slots: %d allocations", s.Stats().Allocations)
	}
}

func TestFacadeTypes(t *testing.T) {
	pat := pfair.NewPattern(8, 11)
	if pat.Deadline(1) != 2 || pat.GroupDeadline(3) != 8 {
		t.Error("pattern algebra mismatch through the facade")
	}
	tk := pfair.MustNewTask("T", 1, 2)
	if tk.Utilization() != 0.5 || !tk.Heavy() {
		t.Error("task helpers mismatch through the facade")
	}
	var set pfair.Set = []*pfair.Task{tk}
	if set.MinProcessors() != 1 {
		t.Error("set helpers mismatch through the facade")
	}
	for _, alg := range []pfair.Algorithm{pfair.PD2, pfair.PD, pfair.PF, pfair.EPDF} {
		if alg.String() == "" {
			t.Error("algorithm stringer empty")
		}
	}
}
