// Scale benchmarks: the shard tier's reason to exist. Where bench_test.go
// reproduces the paper's figures (hundreds of tasks), these push the slot
// hot path to a million tasks on a 64-processor machine and report
// throughput as slots/s alongside ns/op. scripts/bench.sh picks the
// metric up into BENCH_scale.json, and scripts/bench_guard.sh gates
// regressions against that baseline.
//
// The workloads are built directly (cost-1 tasks round-robined over a
// period menu) rather than through taskgen: rejection sampling a million
// weights would dominate setup time, and the scale axis only needs total
// weight to clear admission, not a calibrated utilization distribution.
package pfair_test

import (
	"fmt"
	"testing"

	"pfair/internal/core"
	"pfair/internal/supertask"
	"pfair/internal/task"
)

// scalePeriods is the scale-run period menu. With cost-1 tasks the menu
// sets the weight floor: 2^20 tasks round-robined over it carry ≈40
// total weight, inside a 64-processor admission bound.
var scalePeriods = []int64{16384, 24576, 32768, 49152}

// scaleSet builds n cost-1 tasks round-robined over the menu. Deterministic
// and allocation-light: scale setup joins the set once per benchmark
// invocation, so generation must not dwarf the measured region.
func scaleSet(prefix string, n int, periods []int64) task.Set {
	set := make(task.Set, n)
	for i := range set {
		set[i] = task.MustNew(fmt.Sprintf("%s%d", prefix, i), 1, periods[i%len(periods)])
	}
	return set
}

// BenchmarkScalePD2 measures PD²'s per-slot cost with 2^20 tasks on 64
// processors, single-queue versus one ready shard per CPU. One op is one
// slot: release the due subtasks, pick 64, dispatch, advance.
func BenchmarkScalePD2(b *testing.B) {
	const m = 64
	const n = 1 << 20
	for _, shards := range []int{1, m} {
		b.Run(fmt.Sprintf("M=%d,tasks=%d,shards=%d", m, n, shards), func(b *testing.B) {
			set := scaleSet("T", n, scalePeriods)
			s := core.NewScheduler(m, core.PD2, core.Options{Shards: shards})
			for _, t := range set {
				if err := s.Join(t); err != nil {
					b.Fatalf("join %s: %v", t.Name, err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "slots/s")
		})
	}
}

// BenchmarkScaleSupertask measures the §5.5 hierarchy at scale: 2^16
// components collapsed into ~weight-1 supertasks, so the global PD² tier
// (sharded per CPU) arbitrates only among the collapsed heads while the
// per-supertask EDF tier serves the components. The component count stays
// at 2^16 because the system's per-slot deadline sweep is linear in
// components — which is exactly the motivation for collapsing before the
// global comparator rather than after.
func BenchmarkScaleSupertask(b *testing.B) {
	const m = 16
	const n = 1 << 16
	// Quarter-scale periods: heavier components, so the collapse yields
	// enough ~weight-1 supertasks (≈11) to occupy the shard tier.
	periods := []int64{4096, 6144, 8192, 12288}
	b.Run(fmt.Sprintf("M=%d,comps=%d,shards=%d", m, n, m), func(b *testing.B) {
		set := scaleSet("c", n, periods)
		groups, err := supertask.Collapse("S", set, true)
		if err != nil {
			b.Fatalf("collapse: %v", err)
		}
		sys := supertask.NewSystemWith(m, core.PD2, core.Options{Shards: m})
		for _, g := range groups {
			if err := sys.AddSupertask(g, true); err != nil {
				b.Fatalf("add %s: %v", g.Name, err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		sys.Run(int64(b.N))
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "slots/s")
	})
}
