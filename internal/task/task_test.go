package task

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pfair/internal/rational"
)

func TestNewValidates(t *testing.T) {
	tk, err := New("T", 8, 11)
	if err != nil {
		t.Fatalf("New(8, 11): %v", err)
	}
	if tk.Cost != 8 || tk.Period != 11 {
		t.Fatalf("New stored %d/%d", tk.Cost, tk.Period)
	}
	for _, bad := range []struct{ e, p int64 }{{0, 5}, {-1, 5}, {6, 5}} {
		if _, err := New("bad", bad.e, bad.p); err == nil {
			t.Errorf("New(%d,%d) accepted invalid parameters", bad.e, bad.p)
		}
	}
	// MustNew panics where New errors.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustNew(0,5) did not panic")
			}
		}()
		MustNew("bad", 0, 5)
	}()
}

func TestWeightAndHeavy(t *testing.T) {
	cases := []struct {
		e, p  int64
		heavy bool
	}{
		{8, 11, true},    // 0.727
		{1, 2, true},     // exactly 1/2 is heavy
		{1, 3, false},    // light
		{2, 3, true},     // heavy
		{1, 45, false},   // very light
		{5, 5, true},     // weight 1
		{49, 100, false}, // just under 1/2
	}
	for _, c := range cases {
		tk := MustNew("T", c.e, c.p)
		if got := tk.Weight(); !got.Equal(rational.New(c.e, c.p)) {
			t.Errorf("Weight(%d/%d) = %v", c.e, c.p, got)
		}
		if got := tk.Heavy(); got != c.heavy {
			t.Errorf("Heavy(%d/%d) = %v, want %v", c.e, c.p, got, c.heavy)
		}
	}
}

func TestSetTotals(t *testing.T) {
	s := Set{MustNew("A", 2, 3), MustNew("B", 2, 3), MustNew("C", 2, 3)}
	if got := s.TotalWeight(); got.CmpInt(2) != 0 {
		t.Errorf("TotalWeight = %v, want 2", got)
	}
	if got := s.MinProcessors(); got != 2 {
		t.Errorf("MinProcessors = %d, want 2", got)
	}
	if !s.Feasible(2) {
		t.Error("set should be feasible on 2 processors")
	}
	if s.Feasible(1) {
		t.Error("set should not be feasible on 1 processor")
	}
	if got := s.Hyperperiod(); got != 3 {
		t.Errorf("Hyperperiod = %d, want 3", got)
	}
}

func TestHyperperiod(t *testing.T) {
	s := Set{MustNew("A", 1, 4), MustNew("B", 1, 6), MustNew("C", 1, 10)}
	if got := s.Hyperperiod(); got != 60 {
		t.Errorf("Hyperperiod = %d, want 60", got)
	}
	if got := (Set{}).Hyperperiod(); got != 1 {
		t.Errorf("empty Hyperperiod = %d, want 1", got)
	}
}

func TestMaxUtilization(t *testing.T) {
	s := Set{MustNew("A", 1, 4), MustNew("B", 3, 5), MustNew("C", 1, 2)}
	if got := s.MaxUtilization(); !got.Equal(rational.New(3, 5)) {
		t.Errorf("MaxUtilization = %v, want 3/5", got)
	}
	if got := (Set{}).MaxUtilization(); !got.IsZero() {
		t.Errorf("empty MaxUtilization = %v, want 0", got)
	}
}

func TestValidateDuplicates(t *testing.T) {
	s := Set{MustNew("A", 1, 2), MustNew("A", 1, 3)}
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted duplicate names")
	}
	s = Set{MustNew("A", 1, 2), MustNew("B", 1, 3)}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate rejected valid set: %v", err)
	}
}

func TestSorts(t *testing.T) {
	s := Set{MustNew("A", 1, 10), MustNew("B", 5, 6), MustNew("C", 1, 10), MustNew("D", 2, 8)}
	byPeriod := s.SortByPeriodDecreasing()
	wantP := []string{"A", "C", "D", "B"}
	for i, n := range wantP {
		if byPeriod[i].Name != n {
			t.Fatalf("SortByPeriodDecreasing order %v", byPeriod)
		}
	}
	byUtil := s.SortByUtilizationDecreasing()
	wantU := []string{"B", "D", "A", "C"} // 5/6, 1/4, 1/10, 1/10
	for i, n := range wantU {
		if byUtil[i].Name != n {
			t.Fatalf("SortByUtilizationDecreasing order %v", byUtil)
		}
	}
	// Originals untouched.
	if s[0].Name != "A" || s[3].Name != "D" {
		t.Error("sort mutated the receiver")
	}
}

func TestKindString(t *testing.T) {
	if Periodic.String() != "periodic" || Sporadic.String() != "sporadic" || IntraSporadic.String() != "intra-sporadic" {
		t.Error("Kind.String mismatch")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Error("unknown Kind.String mismatch")
	}
}

// TestQuickTotalWeightMatchesFloat cross-checks the exact rational total
// against float accumulation on random sets.
func TestQuickTotalWeightMatchesFloat(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		s := make(Set, 0, n)
		for i := 0; i < n; i++ {
			p := int64(1 + r.Intn(100))
			e := int64(1 + r.Intn(int(p)))
			s = append(s, &Task{Name: "t", Cost: e, Period: p})
		}
		exact := s.TotalWeight().Float()
		approx := s.TotalUtilization()
		diff := exact - approx
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickMinProcessorsFeasibility: the set is always feasible on
// MinProcessors() and never on one fewer.
func TestQuickMinProcessorsFeasibility(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		s := make(Set, 0, n)
		for i := 0; i < n; i++ {
			p := int64(1 + r.Intn(50))
			e := int64(1 + r.Intn(int(p)))
			s = append(s, &Task{Name: "t", Cost: e, Period: p})
		}
		m := s.MinProcessors()
		if !s.Feasible(m) {
			return false
		}
		if m > 0 && s.Feasible(m-1) {
			// Feasible on m-1 means ceil was not minimal — only valid
			// when total weight is an exact integer ≤ m-1, which would
			// make MinProcessors return that integer. So this is a bug.
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
