// Package task defines the real-time task model shared by every scheduler
// in this repository.
//
// A task is a recurring activity characterized by an integer execution cost
// e and an integer period p (both in the same time unit: quanta/slots for
// the Pfair schedulers, microseconds for the overhead experiments). Its
// weight — called utilization in the partitioning literature — is the
// rational e/p. The paper's comparison needs three recurrence flavours:
//
//   - Periodic: jobs released exactly p apart (synchronous systems release
//     the first job at time 0).
//   - Sporadic: p is a minimum, not exact, separation between releases.
//   - Intra-sporadic (IS): sporadic separation applies between consecutive
//     subtasks within a job, generalizing the sporadic model (Section 2).
//
// Only the release pattern differs; cost, period, and weight are common, so
// they live here and the pattern-specific behaviour lives with each
// scheduler.
package task

import (
	"fmt"
	"sort"

	"pfair/internal/rational"
)

// Kind identifies a task's release pattern.
type Kind int

const (
	// Periodic tasks release jobs exactly Period apart.
	Periodic Kind = iota
	// Sporadic tasks release jobs at least Period apart.
	Sporadic
	// IntraSporadic tasks allow sporadic separation between subtasks
	// within a job (the IS model of Section 2).
	IntraSporadic
)

func (k Kind) String() string {
	switch k {
	case Periodic:
		return "periodic"
	case Sporadic:
		return "sporadic"
	case IntraSporadic:
		return "intra-sporadic"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Task is a recurrent real-time task. Tasks are immutable once created;
// schedulers keep their own mutable per-task state.
type Task struct {
	// Name identifies the task in traces and error messages.
	Name string
	// Cost is the worst-case execution cost e per job, in time units.
	Cost int64
	// Period is the (exact or minimum) separation p between job releases.
	Period int64
	// Kind is the release pattern; the zero value is Periodic.
	Kind Kind
	// Critical marks tasks that must keep their full rate under overload
	// reweighting (Section 5.4). Purely advisory metadata.
	Critical bool
}

// New returns a periodic task with the given name, cost, and period, or
// an error unless 0 < cost ≤ period.
func New(name string, cost, period int64) (*Task, error) {
	t := &Task{Name: name, Cost: cost, Period: period}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustNew is New for statically known parameters (tests, examples,
// tables); it panics on invalid ones.
func MustNew(name string, cost, period int64) *Task {
	t, err := New(name, cost, period)
	if err != nil {
		//pfair:allowpanic MustNew's documented contract: parameters are compile-time constants
		panic(err)
	}
	return t
}

// Validate checks the task's parameters.
func (t *Task) Validate() error {
	if t.Cost <= 0 {
		return fmt.Errorf("task %s: cost %d must be positive", t.Name, t.Cost)
	}
	if t.Period < t.Cost {
		return fmt.Errorf("task %s: period %d smaller than cost %d (weight > 1)", t.Name, t.Period, t.Cost)
	}
	return nil
}

// Weight returns the task's exact weight (utilization) e/p.
func (t *Task) Weight() rational.Rat {
	return rational.New(t.Cost, t.Period)
}

// Utilization returns the weight as a float64 for reporting.
//
//pfair:allowfloat reporting bridge; scheduling code compares Weight() rationals
func (t *Task) Utilization() float64 {
	return float64(t.Cost) / float64(t.Period)
}

// Heavy reports whether wt(T) ≥ 1/2. The paper calls a task light if its
// weight is < 1/2 and heavy otherwise; heavy tasks are the ones with
// length-two windows that make the PD² group-deadline tie-break necessary.
func (t *Task) Heavy() bool {
	return !t.Weight().Less(rational.New(1, 2))
}

// String renders the task as "name(e/p)".
func (t *Task) String() string {
	return fmt.Sprintf("%s(%d/%d)", t.Name, t.Cost, t.Period)
}

// Set is an ordered collection of tasks.
type Set []*Task

// TotalWeight returns the exact sum of the tasks' weights, the left side of
// the feasibility condition Σ wt(T) ≤ M (Equation (2)). The result is an
// arbitrary-precision accumulator because the reduced denominator of the
// sum can exceed int64 for large sets with co-prime periods.
func (s Set) TotalWeight() *rational.Acc {
	total := rational.NewAcc()
	for _, t := range s {
		total.Add(t.Weight())
	}
	return total
}

// TotalUtilization returns the float64 total utilization for reporting.
//
//pfair:allowfloat reporting bridge; feasibility tests use TotalWeight() exactly
func (s Set) TotalUtilization() float64 {
	u := 0.0
	for _, t := range s {
		u += t.Utilization()
	}
	return u
}

// MaxUtilization returns the largest single-task utilization u_max, the
// parameter of the Lopez et al. partitioning bound. It returns 0 for an
// empty set.
func (s Set) MaxUtilization() rational.Rat {
	max := rational.Zero()
	for _, t := range s {
		if max.Less(t.Weight()) {
			max = t.Weight()
		}
	}
	return max
}

// Hyperperiod returns the least common multiple of the tasks' periods. A
// synchronous periodic schedule repeats with this period, so simulating one
// hyperperiod suffices to verify it. It panics on int64 overflow; callers
// that must degrade gracefully (CLIs sizing a default horizon from user
// input) should use HyperperiodOK.
func (s Set) Hyperperiod() int64 {
	l := int64(1)
	for _, t := range s {
		l = rational.LCM(l, t.Period)
	}
	return l
}

// HyperperiodOK is Hyperperiod returning ok=false instead of panicking
// when the LCM of the periods overflows int64 (easy to hit with a handful
// of large coprime periods).
func (s Set) HyperperiodOK() (int64, bool) {
	l := int64(1)
	for _, t := range s {
		var ok bool
		if l, ok = rational.LCMOK(l, t.Period); !ok {
			return 0, false
		}
	}
	return l, true
}

// Feasible reports whether the set satisfies Equation (2) on m processors:
// Σ wt(T) ≤ m. For periodic, sporadic, and IS task systems this is exact
// feasibility under global scheduling with migration.
func (s Set) Feasible(m int) bool {
	return s.TotalWeight().CmpInt(int64(m)) <= 0
}

// MinProcessors returns the smallest m for which the set is feasible under
// an optimal global scheduler: ⌈Σ wt(T)⌉.
func (s Set) MinProcessors() int {
	return int(s.TotalWeight().Ceil())
}

// Validate checks every task and that names are unique.
func (s Set) Validate() error {
	seen := make(map[string]bool, len(s))
	for _, t := range s {
		if err := t.Validate(); err != nil {
			return err
		}
		if seen[t.Name] {
			return fmt.Errorf("duplicate task name %q", t.Name)
		}
		seen[t.Name] = true
	}
	return nil
}

// Clone returns a shallow copy of the set (the tasks themselves are
// immutable and shared).
func (s Set) Clone() Set {
	return append(Set(nil), s...)
}

// SortByPeriodDecreasing returns a copy sorted by decreasing period, the
// order in which Section 4 requires tasks to be partitioned so that each
// task's max-D(U) inflation term is known when it is placed. Ties break by
// name for determinism.
func (s Set) SortByPeriodDecreasing() Set {
	c := s.Clone()
	sort.SliceStable(c, func(i, j int) bool {
		if c[i].Period != c[j].Period {
			return c[i].Period > c[j].Period
		}
		return c[i].Name < c[j].Name
	})
	return c
}

// SortByUtilizationDecreasing returns a copy sorted by decreasing
// utilization (the order used by the FFD and BFD heuristics). Ties break by
// name for determinism.
func (s Set) SortByUtilizationDecreasing() Set {
	c := s.Clone()
	sort.SliceStable(c, func(i, j int) bool {
		wi, wj := c[i].Weight(), c[j].Weight()
		if !wi.Equal(wj) {
			return wj.Less(wi)
		}
		return c[i].Name < c[j].Name
	})
	return c
}
