package mpcp

import (
	"testing"

	"pfair/internal/task"
)

// twoProcSystem builds a reference system used by several tests:
//
//	proc 0: hi (1,4), lo (2,10)  — lo holds local resource L for 1
//	proc 1: rem (2,8)            — rem and hi share global resource G
func twoProcSystem() *System {
	return &System{Tasks: []TaskSpec{
		{Task: task.MustNew("hi", 1, 4), Proc: 0, Sections: []CS{{Resource: "G", Length: 1}}},
		{Task: task.MustNew("lo", 2, 10), Proc: 0, Sections: []CS{{Resource: "L", Length: 1}}},
		{Task: task.MustNew("rem", 2, 8), Proc: 1, Sections: []CS{{Resource: "G", Length: 2}}},
	}}
}

func TestGlobalDetection(t *testing.T) {
	s := twoProcSystem()
	if !s.Global("G") {
		t.Error("G used from two processors should be global")
	}
	if s.Global("L") {
		t.Error("L used from one processor should be local")
	}
	if s.Global("absent") {
		t.Error("unused resource should not be global")
	}
}

func TestBlockingHandWorked(t *testing.T) {
	s := twoProcSystem()
	// hi: local PCP — L's ceiling is lo's period (10) > hi's period (4),
	// so L cannot block hi: localPCP = 0. Lower local task lo has no
	// global sections: boost = 0. hi's one global request on G: remote =
	// lower-priority remote holder rem's section (2) + no higher remote
	// users = 2. B(hi) = 2.
	b, err := s.Blocking("hi")
	if err != nil {
		t.Fatal(err)
	}
	if b != 2 {
		t.Errorf("B(hi) = %d, want 2", b)
	}
	// lo: local PCP — no lower-priority local tasks at all: 0. boost 0.
	// lo has no global sections: remote 0. B(lo) = 0.
	b, err = s.Blocking("lo")
	if err != nil {
		t.Fatal(err)
	}
	if b != 0 {
		t.Errorf("B(lo) = %d, want 0", b)
	}
	// rem: alone on proc 1: local terms 0. One global request on G:
	// remote = max lower holder (none lower: hi has period 4 < 8, so hi
	// is higher → higherSum = 1) + 0 = 1. B(rem) = 1.
	b, err = s.Blocking("rem")
	if err != nil {
		t.Fatal(err)
	}
	if b != 1 {
		t.Errorf("B(rem) = %d, want 1", b)
	}
}

func TestLocalPCPBlocking(t *testing.T) {
	// hi and lo share local resource L; lo's section can block hi once.
	s := &System{Tasks: []TaskSpec{
		{Task: task.MustNew("hi", 2, 6), Proc: 0, Sections: []CS{{Resource: "L", Length: 1}}},
		{Task: task.MustNew("lo", 3, 12), Proc: 0, Sections: []CS{{Resource: "L", Length: 2}}},
	}}
	b, err := s.Blocking("hi")
	if err != nil {
		t.Fatal(err)
	}
	if b != 2 {
		t.Errorf("B(hi) = %d, want 2 (lo's section)", b)
	}
}

func TestBoostBlocking(t *testing.T) {
	// lo's GLOBAL section can preempt hi at boosted priority during each
	// of hi's suspensions; hi has one global request → (1+1)·len = 4.
	s := &System{Tasks: []TaskSpec{
		{Task: task.MustNew("hi", 2, 8), Proc: 0, Sections: []CS{{Resource: "G1", Length: 1}}},
		{Task: task.MustNew("lo", 3, 16), Proc: 0, Sections: []CS{{Resource: "G2", Length: 2}}},
		{Task: task.MustNew("r1", 1, 9), Proc: 1, Sections: []CS{{Resource: "G1", Length: 1}}},
		{Task: task.MustNew("r2", 1, 20), Proc: 1, Sections: []CS{{Resource: "G2", Length: 1}}},
	}}
	b, err := s.Blocking("hi")
	if err != nil {
		t.Fatal(err)
	}
	// boost = (1+1)·2 = 4; remote on G1 = higher remote r1's 1 → 1.
	if b != 5 {
		t.Errorf("B(hi) = %d, want 5", b)
	}
}

func TestResponseTimesWithBlocking(t *testing.T) {
	s := twoProcSystem()
	resp, ok, err := s.ResponseTimes()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("reference system should be schedulable")
	}
	// hi: e=1 + B=2 = 3 ≤ 4.
	if resp["hi"] != 3 {
		t.Errorf("R(hi) = %d, want 3", resp["hi"])
	}
	// lo: e=2 + B=0 + interference from hi: R=2+0+⌈R/4⌉·1 → 3 → 3 ✓.
	if resp["lo"] != 3 {
		t.Errorf("R(lo) = %d, want 3", resp["lo"])
	}
	// rem: e=2 + B=1 = 3 ≤ 8, alone on proc 1.
	if resp["rem"] != 3 {
		t.Errorf("R(rem) = %d, want 3", resp["rem"])
	}
}

func TestBlockingMakesUnschedulable(t *testing.T) {
	// Without sharing this fits; a long remote section breaks it.
	build := func(remoteLen int64) *System {
		return &System{Tasks: []TaskSpec{
			{Task: task.MustNew("a", 2, 4), Proc: 0, Sections: []CS{{Resource: "G", Length: 1}}},
			{Task: task.MustNew("b", 6, 12), Proc: 1, Sections: []CS{{Resource: "G", Length: remoteLen}}},
		}}
	}
	if !build(1).Schedulable() {
		t.Fatal("short sections should be schedulable")
	}
	if build(4).Schedulable() {
		t.Fatal("a 4-unit remote section pushes R(a) = 2+4 = 6 > 4")
	}
}

// TestMonotonicity: adding a remote user of a shared resource never
// decreases anyone's blocking.
func TestMonotonicity(t *testing.T) {
	base := twoProcSystem()
	bHi, _ := base.Blocking("hi")
	grown := twoProcSystem()
	grown.Tasks = append(grown.Tasks, TaskSpec{
		Task: task.MustNew("rem2", 1, 6), Proc: 1, Sections: []CS{{Resource: "G", Length: 1}},
	})
	bHi2, err := grown.Blocking("hi")
	if err != nil {
		t.Fatal(err)
	}
	if bHi2 < bHi {
		t.Errorf("blocking decreased when a remote user joined: %d → %d", bHi, bHi2)
	}
}

func TestNoSharingNoBlocking(t *testing.T) {
	s := &System{Tasks: []TaskSpec{
		{Task: task.MustNew("a", 1, 4), Proc: 0},
		{Task: task.MustNew("b", 2, 8), Proc: 0},
		{Task: task.MustNew("c", 3, 9), Proc: 1},
	}}
	for _, name := range []string{"a", "b", "c"} {
		b, err := s.Blocking(name)
		if err != nil {
			t.Fatal(err)
		}
		if b != 0 {
			t.Errorf("B(%s) = %d, want 0 without shared resources", name, b)
		}
	}
	if !s.Schedulable() {
		t.Error("independent fitting system should be schedulable")
	}
}

func TestValidation(t *testing.T) {
	bad := &System{Tasks: []TaskSpec{
		{Task: task.MustNew("a", 1, 4), Proc: 0, Sections: []CS{{Resource: "R", Length: 2}}},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("sections exceeding cost accepted")
	}
	dup := &System{Tasks: []TaskSpec{
		{Task: task.MustNew("a", 1, 4), Proc: 0},
		{Task: task.MustNew("a", 1, 5), Proc: 1},
	}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate names accepted")
	}
	neg := &System{Tasks: []TaskSpec{
		{Task: task.MustNew("a", 1, 4), Proc: -1},
	}}
	if err := neg.Validate(); err == nil {
		t.Error("negative processor accepted")
	}
	if _, err := (&System{}).Blocking("ghost"); err == nil {
		t.Error("unknown task accepted")
	}
}
