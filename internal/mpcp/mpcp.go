// Package mpcp implements blocking analysis for the multiprocessor
// priority ceiling protocol (MPCP) of Rajkumar, Sha, and Lehoczky [33],
// the synchronization protocol Section 5.1 names as the state of the art
// for partitioned systems — and only for RM-scheduled ones ("to the best
// of our knowledge, no multiprocessor synchronization protocols have been
// developed for partitioned systems with EDF").
//
// Model: tasks are partitioned onto processors and scheduled by RM; each
// job executes a fixed list of non-nested critical sections. A resource is
// local when all of its users share a processor (plain priority-ceiling
// rules apply) and global otherwise (global critical sections execute at a
// boosted ceiling priority and waiting tasks suspend in priority order).
//
// The blocking bound implemented here is the standard conservative
// decomposition of the classical MPCP analysis:
//
//   - local PCP blocking: one critical section of a lower-priority local
//     task whose resource ceiling reaches the task (the uniprocessor PCP
//     term);
//   - local boost blocking: each of the task's suspensions (one per global
//     request, plus its release) lets lower-priority local tasks run one
//     boosted global section;
//   - remote blocking, per global request: one lower-priority holder's
//     section on the resource plus one section per higher-priority remote
//     user of the resource.
//
// It is conservative (no response-time iteration on remote segments) and
// sufficient: the returned blocking terms can be added into the RM
// response-time recurrence, which AnalyzeSystem does. Tests validate
// hand-worked examples and monotonicity properties, and the experiments
// package uses it for the Section 5.1 comparison against Pfair's
// quantum-boundary locking.
package mpcp

import (
	"fmt"
	"sort"

	"pfair/internal/task"
)

// CS is one critical-section requirement of a task: each job holds
// Resource for Length time units once.
type CS struct {
	Resource string
	Length   int64
}

// TaskSpec couples a task with its processor assignment and critical
// sections.
type TaskSpec struct {
	Task     *task.Task
	Proc     int
	Sections []CS
}

// System is a partitioned RM system with shared resources.
type System struct {
	Tasks []TaskSpec
}

// Validate checks processor indices, section lengths, and name
// uniqueness.
func (s *System) Validate() error {
	names := map[string]bool{}
	for _, ts := range s.Tasks {
		if err := ts.Task.Validate(); err != nil {
			return err
		}
		if names[ts.Task.Name] {
			return fmt.Errorf("mpcp: duplicate task %q", ts.Task.Name)
		}
		names[ts.Task.Name] = true
		if ts.Proc < 0 {
			return fmt.Errorf("mpcp: task %q on negative processor", ts.Task.Name)
		}
		var total int64
		for _, cs := range ts.Sections {
			if cs.Length <= 0 {
				return fmt.Errorf("mpcp: task %q has non-positive section on %q", ts.Task.Name, cs.Resource)
			}
			total += cs.Length
		}
		if total > ts.Task.Cost {
			return fmt.Errorf("mpcp: task %q critical sections (%d) exceed its cost (%d)", ts.Task.Name, total, ts.Task.Cost)
		}
	}
	return nil
}

// Global reports whether the resource is used from more than one
// processor.
func (s *System) Global(resource string) bool {
	proc := -1
	for _, ts := range s.Tasks {
		for _, cs := range ts.Sections {
			if cs.Resource != resource {
				continue
			}
			if proc < 0 {
				proc = ts.Proc
			} else if proc != ts.Proc {
				return true
			}
		}
	}
	return false
}

// higherPriority reports whether a outranks b under RM (shorter period;
// name tie-break).
func higherPriority(a, b *task.Task) bool {
	if a.Period != b.Period {
		return a.Period < b.Period
	}
	return a.Name < b.Name
}

// Blocking returns the worst-case per-job blocking term B for the named
// task under MPCP.
func (s *System) Blocking(name string) (int64, error) {
	var me *TaskSpec
	for i := range s.Tasks {
		if s.Tasks[i].Task.Name == name {
			me = &s.Tasks[i]
		}
	}
	if me == nil {
		return 0, fmt.Errorf("mpcp: no task %q", name)
	}

	// Ceilings of local resources: the highest priority (shortest
	// period) among local users.
	localCeiling := map[string]int64{} // resource -> min period among users
	for _, ts := range s.Tasks {
		for _, cs := range ts.Sections {
			if s.Global(cs.Resource) {
				continue
			}
			if p, ok := localCeiling[cs.Resource]; !ok || ts.Task.Period < p {
				localCeiling[cs.Resource] = ts.Task.Period
			}
		}
	}

	// (1) Local PCP blocking: one section of a lower-priority local task
	// on a local resource whose ceiling is at least my priority.
	var localPCP int64
	// (2) Boost blocking pieces: the longest global section of each
	// lower-priority local task.
	var maxLowerBoost int64
	for _, ts := range s.Tasks {
		if ts.Proc != me.Proc || ts.Task.Name == me.Task.Name || higherPriority(ts.Task, me.Task) {
			continue
		}
		for _, cs := range ts.Sections {
			if s.Global(cs.Resource) {
				if cs.Length > maxLowerBoost {
					maxLowerBoost = cs.Length
				}
				continue
			}
			if localCeiling[cs.Resource] <= me.Task.Period && cs.Length > localPCP {
				localPCP = cs.Length
			}
		}
	}

	// My global requests.
	var globalReqs int64
	for _, cs := range me.Sections {
		if s.Global(cs.Resource) {
			globalReqs++
		}
	}
	boost := (globalReqs + 1) * maxLowerBoost

	// (3) Remote blocking per global request.
	var remote int64
	for _, cs := range me.Sections {
		if !s.Global(cs.Resource) {
			continue
		}
		var lowerMax, higherSum int64
		for _, ts := range s.Tasks {
			if ts.Task.Name == me.Task.Name || ts.Proc == me.Proc {
				continue
			}
			for _, other := range ts.Sections {
				if other.Resource != cs.Resource {
					continue
				}
				if higherPriority(ts.Task, me.Task) {
					higherSum += other.Length
				} else if other.Length > lowerMax {
					lowerMax = other.Length
				}
			}
		}
		remote += lowerMax + higherSum
	}

	return localPCP + boost + remote, nil
}

// ResponseTimes runs the RM response-time analysis with MPCP blocking:
//
//	R = e + B + Σ_{higher-priority, same processor} ⌈R/pⱼ⌉·eⱼ
//
// It returns each task's response time in input order (−1 if divergent)
// and whether every task meets its period.
func (s *System) ResponseTimes() (map[string]int64, bool, error) {
	if err := s.Validate(); err != nil {
		return nil, false, err
	}
	byProc := map[int][]TaskSpec{}
	for _, ts := range s.Tasks {
		byProc[ts.Proc] = append(byProc[ts.Proc], ts)
	}
	resp := make(map[string]int64, len(s.Tasks))
	ok := true
	for _, group := range byProc { //pfair:orderinvariant per-processor analyses are independent; results are keyed by task name
		sort.SliceStable(group, func(i, j int) bool {
			return higherPriority(group[i].Task, group[j].Task)
		})
		for i, ts := range group {
			b, err := s.Blocking(ts.Task.Name)
			if err != nil {
				return nil, false, err
			}
			r := ts.Task.Cost + b
			for {
				demand := ts.Task.Cost + b
				for _, h := range group[:i] {
					demand += ((r + h.Task.Period - 1) / h.Task.Period) * h.Task.Cost
				}
				if demand == r {
					break
				}
				r = demand
				if r > ts.Task.Period {
					break
				}
			}
			if r > ts.Task.Period {
				r = -1
				ok = false
			}
			resp[ts.Task.Name] = r
		}
	}
	return resp, ok, nil
}

// Schedulable reports whether the partitioned system passes the analysis.
func (s *System) Schedulable() bool {
	_, ok, err := s.ResponseTimes()
	return err == nil && ok
}
