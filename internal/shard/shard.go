// Package shard provides the per-CPU ready-queue tier of the scheduler's
// hot path: the eligible set is partitioned into S shards — one bucketed
// min-queue (internal/calq) per CPU — and the PD² comparator arbitrates
// only among the S shard heads instead of one global structure.
//
// Placement follows cache affinity: a subtask's home shard is the shard
// of the CPU it last ran on (the scheduler re-homes it at dispatch), so
// in steady state each CPU's picks are served from its own queue. When a
// CPU's pick is served from another CPU's shard — because its own queue
// is empty (underflow) or holds no subtask as urgent as a neighbor's
// head — the pick is a steal, and the victim is by construction the
// neighbor whose head is most urgent under PD². In a loaded system that
// is the shard with the deepest backlog of urgent work, which is what
// classic most-loaded victim selection approximates by queue length.
//
// Determinism is the design constraint that shapes the stealing policy.
// The per-pop winner is the unique global minimum under (key, less) with
// a total less (the scheduler's priority order ends in a task-id
// comparison): every shard head is its shard's (key, less)-minimum, so
// the tournament minimum over heads is the global minimum over all
// queued entries, and the pop sequence is bit-identical to a single
// global queue's — for ANY shard count, including 1. Victim selection by
// mutable runtime state (queue lengths, previous steals) would break
// that reproducibility, so load only steers placement (home shards),
// never selection. The scheduler's assignment stream is therefore
// byte-reproducible across -shards values, which the differential fuzz
// kind (internal/fuzz, KindShard) and the core equivalence tests pin.
//
// Like calq, the tier allocates nothing in steady state: entries are the
// caller's persistent calq handles, and the only per-queue state beyond
// the queues themselves is the cached head array refreshed by O(1)
// bitmap probes.
package shard

import "pfair/internal/calq"

// Stats counts how picks were served. Steals are not errors — they are
// the mechanism that keeps the schedule identical to the single-queue
// one while the common case stays shard-local.
type Stats struct {
	// LocalHits counts picks served from the picking CPU's own shard.
	LocalHits int64
	// Steals counts picks served from another CPU's shard.
	Steals int64
	// Underflows counts the subset of steals taken while the picking
	// CPU's own shard was empty.
	Underflows int64
}

// Queues is a set of S per-CPU ready queues with a tournament pick over
// the cached shard heads. It is not safe for concurrent use; like every
// structure in the slot hot path it belongs to exactly one engine.
type Queues[T any] struct {
	less func(a, b T) bool
	qs   []*calq.MinQueue[T]

	// Cached head (minimum entry) per shard, refreshed on mutation so a
	// pick costs S−1 head comparisons and no queue probes beyond the
	// mutated shard's.
	headV  []T
	headK  []int64
	headOK []bool

	n     int
	stats Stats
}

// New returns S empty shards for keys spanning at most span, ties
// ordered by less. less must be total for the determinism contract in
// the package comment to hold. S is clamped below at 1.
func New[T any](shards int, span int64, less func(a, b T) bool) *Queues[T] {
	if shards < 1 {
		shards = 1
	}
	s := &Queues[T]{
		less:   less,
		qs:     make([]*calq.MinQueue[T], shards),
		headV:  make([]T, shards),
		headK:  make([]int64, shards),
		headOK: make([]bool, shards),
	}
	for i := range s.qs {
		s.qs[i] = calq.NewMinQueue[T](span, less)
	}
	return s
}

// Shards returns S.
func (s *Queues[T]) Shards() int { return len(s.qs) }

// Len returns the total number of queued entries across all shards.
//
//pfair:hotpath
func (s *Queues[T]) Len() int { return s.n }

// ShardLen returns the number of entries queued in shard i. On the hot
// path via the scheduler's per-slot occupancy gauges.
//
//pfair:hotpath
func (s *Queues[T]) ShardLen(i int) int { return s.qs[i].Len() }

// Stats returns the pick-serving counters accumulated so far. On the hot
// path via the scheduler's per-slot telemetry publication.
//
//pfair:hotpath
func (s *Queues[T]) Stats() Stats { return s.stats }

// EnsureSpan grows every shard so that span fits within half a
// revolution. Cold path: admission time only.
func (s *Queues[T]) EnsureSpan(span int64) {
	for _, q := range s.qs {
		q.EnsureSpan(span)
	}
}

// refresh re-probes shard i's minimum into the head cache.
//
//pfair:hotpath
func (s *Queues[T]) refresh(i int) {
	s.headV[i], s.headK[i], s.headOK[i] = s.qs[i].PeekMin()
}

// Add queues the entry under key in the given shard (the caller's home
// shard for the task — shard of the CPU it last ran on). The head cache
// updates without a probe: an insertion can only lower its shard's head.
//
//pfair:hotpath
func (s *Queues[T]) Add(e *calq.Entry[T], key int64, shard int) {
	s.qs[shard].Add(e, key)
	s.n++
	if !s.headOK[shard] || key < s.headK[shard] ||
		(key == s.headK[shard] && s.less(e.Value, s.headV[shard])) {
		s.headV[shard], s.headK[shard], s.headOK[shard] = e.Value, key, true
	}
}

// Remove dequeues the entry from the shard it was queued in. No-op if
// the entry is not queued. Cold path: leave/rejoin flows.
func (s *Queues[T]) Remove(e *calq.Entry[T], shard int) {
	if !e.Queued() {
		return
	}
	// Only a head removal can change the cached head; equality under a
	// total order identifies the head entry without comparable T.
	wasHead := s.headOK[shard] && e.Key() == s.headK[shard] &&
		!s.less(e.Value, s.headV[shard]) && !s.less(s.headV[shard], e.Value)
	s.qs[shard].Remove(e)
	s.n--
	if wasHead {
		s.refresh(shard)
	}
}

// headBefore reports whether shard i's head precedes shard j's under
// (key, less). Both must be occupied.
//
//pfair:hotpath
func (s *Queues[T]) headBefore(i, j int) bool {
	if s.headK[i] != s.headK[j] {
		return s.headK[i] < s.headK[j]
	}
	return s.less(s.headV[i], s.headV[j])
}

// PopMin removes and returns the global (key, less)-minimum entry via a
// tournament over the shard heads, with the shard it was served from.
// It panics if all shards are empty.
//
//pfair:hotpath
func (s *Queues[T]) PopMin() (T, int) {
	best := -1
	for i := range s.qs {
		if !s.headOK[i] {
			continue
		}
		if best < 0 || s.headBefore(i, best) {
			best = i
		}
	}
	if best < 0 {
		//pfair:allowpanic API misuse, per the doc comment; mirrors calq.PopMin
		panic("shard: PopMin with all shards empty")
	}
	v := s.qs[best].PopMin()
	s.refresh(best)
	s.n--
	return v, best
}

// PopMinFor is PopMin accounted against the picking CPU: a win served
// from cpu's own shard is a local hit, anything else a steal (an
// underflow steal when cpu's shard was empty). cpu is reduced mod S, so
// callers can pass a processor index directly even when S < M.
//
//pfair:hotpath
func (s *Queues[T]) PopMinFor(cpu int) T {
	home := cpu % len(s.qs)
	v, from := s.PopMin()
	if from == home {
		s.stats.LocalHits++
	} else {
		s.stats.Steals++
		if !s.headOK[home] && s.qs[home].Len() == 0 {
			s.stats.Underflows++
		}
	}
	return v
}
