package shard

import (
	"math/rand"
	"testing"

	"pfair/internal/calq"
)

// elem is the test payload: id breaks key ties, making the order total
// like the scheduler's priority order.
type elem struct {
	id  int
	key int64
}

func elemLess(a, b *elem) bool { return a.id < b.id }

// TestTournamentMatchesGlobalQueue is the package's core claim: for any
// shard count and any placement of entries onto shards, the pop sequence
// equals a single global min-queue's over the same entries.
func TestTournamentMatchesGlobalQueue(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 8} {
		r := rand.New(rand.NewSource(int64(41 + shards)))
		sq := New[*elem](shards, 256, elemLess)
		gq := calq.NewMinQueue[*elem](256, elemLess)

		const n = 500
		sEntries := make([]*calq.Entry[*elem], n)
		gEntries := make([]*calq.Entry[*elem], n)
		home := make([]int, n)
		queued := make([]bool, n)
		for i := 0; i < n; i++ {
			e := &elem{id: i}
			sEntries[i] = calq.NewEntry(e)
			gEntries[i] = calq.NewEntry(e)
		}

		add := func(i int) {
			k := int64(r.Intn(200))
			home[i] = r.Intn(shards)
			sq.Add(sEntries[i], k, home[i])
			gq.Add(gEntries[i], k)
			queued[i] = true
		}
		for i := 0; i < n; i++ {
			add(i)
		}

		// Interleave pops, removals from arbitrary positions, and
		// re-insertions, comparing every pop.
		live := n
		for op := 0; live > 0 && op < 5000; op++ {
			switch r.Intn(4) {
			case 0: // remove a random entry from the middle
				i := r.Intn(n)
				if queued[i] {
					sq.Remove(sEntries[i], home[i])
					gq.Remove(gEntries[i])
					queued[i] = false
					live--
				}
			case 1: // re-insert a removed entry under a fresh key
				i := r.Intn(n)
				if !queued[i] {
					add(i)
					live++
				}
			default: // pop and compare
				got, _ := sq.PopMin()
				want := gq.PopMin()
				if got != want {
					t.Fatalf("shards=%d op=%d: sharded pop = %v, global pop = %v", shards, op, *got, *want)
				}
				queued[got.id] = false
				live--
			}
			if sq.Len() != gq.Len() {
				t.Fatalf("shards=%d op=%d: Len %d vs global %d", shards, op, sq.Len(), gq.Len())
			}
		}
	}
}

// TestPopSequenceIdenticalAcrossShardCounts pins the determinism
// contract directly: identical entries, arbitrary placements, identical
// pop sequences for every S.
func TestPopSequenceIdenticalAcrossShardCounts(t *testing.T) {
	pops := func(shards int) []int {
		r := rand.New(rand.NewSource(7)) // same keys for every S
		q := New[*elem](shards, 128, elemLess)
		for i := 0; i < 300; i++ {
			q.Add(calq.NewEntry(&elem{id: i}), int64(r.Intn(90)), i%shards)
		}
		var ids []int
		for q.Len() > 0 {
			v, _ := q.PopMin()
			ids = append(ids, v.id)
		}
		return ids
	}
	want := pops(1)
	for _, s := range []int{2, 4, 7} {
		got := pops(s)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d pops, want %d", s, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: pop %d = id %d, single-queue pop = id %d", s, i, got[i], want[i])
			}
		}
	}
}

// TestStealAccounting drives a two-shard tier through the three serving
// cases: local hit, steal with local work queued, underflow steal.
func TestStealAccounting(t *testing.T) {
	q := New[*elem](2, 64, elemLess)
	a := &elem{id: 0} // shard 0, most urgent
	b := &elem{id: 1} // shard 1
	q.Add(calq.NewEntry(a), 1, 0)
	q.Add(calq.NewEntry(b), 2, 1)

	if got := q.PopMinFor(0); got != a { // local hit for cpu 0
		t.Fatalf("pop 1 = %v, want a", *got)
	}
	if st := q.Stats(); st.LocalHits != 1 || st.Steals != 0 {
		t.Fatalf("after local hit: %+v", st)
	}
	if got := q.PopMinFor(0); got != b { // cpu 0's shard empty: underflow steal
		t.Fatalf("pop 2 = %v, want b", *got)
	}
	if st := q.Stats(); st.LocalHits != 1 || st.Steals != 1 || st.Underflows != 1 {
		t.Fatalf("after underflow steal: %+v", st)
	}

	// Steal with local work queued: shard 1 holds the urgent head while
	// cpu 0 still has an entry of its own.
	c := &elem{id: 2}
	d := &elem{id: 3}
	q.Add(calq.NewEntry(c), 9, 0)
	q.Add(calq.NewEntry(d), 5, 1)
	if got := q.PopMinFor(0); got != d {
		t.Fatalf("pop 3 = %v, want d (the tournament winner)", *got)
	}
	st := q.Stats()
	if st.Steals != 2 || st.Underflows != 1 {
		t.Fatalf("after non-underflow steal: %+v", st)
	}
	// cpu index reduces mod S: cpu 4 on 2 shards is home shard 0.
	if got := q.PopMinFor(4); got != c || q.Stats().LocalHits != 2 {
		t.Fatalf("pop 4 = %v (stats %+v), want c as a local hit", *got, q.Stats())
	}
}

// TestShardLenAndEnsureSpan covers the remaining surface.
func TestShardLenAndEnsureSpan(t *testing.T) {
	q := New[*elem](3, 32, elemLess)
	if q.Shards() != 3 {
		t.Fatalf("Shards() = %d", q.Shards())
	}
	q.EnsureSpan(1 << 10) // must not disturb emptiness
	q.Add(calq.NewEntry(&elem{id: 0}), 5, 2)
	q.Add(calq.NewEntry(&elem{id: 1}), 6, 2)
	if q.ShardLen(2) != 2 || q.ShardLen(0) != 0 || q.Len() != 2 {
		t.Fatalf("lens: %d %d %d", q.ShardLen(0), q.ShardLen(2), q.Len())
	}
	// Growing with queued entries rehashes them without losing order.
	q.EnsureSpan(1 << 12)
	if v, _ := q.PopMin(); v.id != 0 {
		t.Fatalf("post-grow pop = %d, want 0", v.id)
	}

	// New clamps a nonsensical shard count to 1.
	if one := New[*elem](0, 32, elemLess); one.Shards() != 1 {
		t.Fatalf("New(0) shards = %d, want 1", one.Shards())
	}
}
