package faults

import (
	"reflect"
	"testing"

	"pfair/internal/engine"
	"pfair/internal/obs"
	"pfair/internal/task"
)

func crit(name string, e, p int64) *task.Task {
	t := task.MustNew(name, e, p)
	t.Critical = true
	return t
}

// TestTransparentFailure: Σwt ≤ M−K means the loss of K processors is
// absorbed with no misses at all and no reweighting needed (Section 5.4's
// "the optimality and global nature of Pfair scheduling ensures that the
// system can tolerate the loss of K processors transparently").
func TestTransparentFailure(t *testing.T) {
	sc := Scenario{
		M: 4, Fail: 2, FailAt: 60, Horizon: 600, SettleSlack: 0,
		Tasks: task.Set{
			crit("c1", 2, 3), task.MustNew("n1", 2, 3), task.MustNew("n2", 1, 3), task.MustNew("n3", 1, 3),
		}, // Σwt = 2 = M − K
	}
	out, err := Run(sc, true)
	if err != nil {
		t.Fatal(err)
	}
	if out.Survivors != 2 {
		t.Fatalf("survivors = %d", out.Survivors)
	}
	if len(out.Reweighted) != 0 {
		t.Errorf("reweighting happened despite spare capacity: %v", out.Reweighted)
	}
	if out.MissesBefore != 0 || out.CriticalMissesAfterSettle != 0 || out.NonCriticalMisses != 0 {
		t.Errorf("misses: %+v", out)
	}
}

// TestOverloadWithShedding: when the survivors cannot carry the load,
// shedding keeps critical tasks clean after the settle window.
func TestOverloadWithShedding(t *testing.T) {
	sc := Scenario{
		M: 3, Fail: 1, FailAt: 90, Horizon: 2000, SettleSlack: 60,
		Tasks: task.Set{
			crit("c1", 1, 3), crit("c2", 1, 4),
			task.MustNew("n1", 2, 3), task.MustNew("n2", 1, 2), task.MustNew("n3", 1, 3),
		}, // Σwt = 1/3+1/4+2/3+1/2+1/3 ≈ 2.08 → overload on 2 survivors
	}
	out, err := Run(sc, true)
	if err != nil {
		t.Fatal(err)
	}
	if out.MissesBefore != 0 {
		t.Errorf("misses before the failure: %d", out.MissesBefore)
	}
	if len(out.Reweighted) == 0 {
		t.Fatal("no task was shed despite overload")
	}
	if out.CriticalMissesAfterSettle != 0 {
		t.Errorf("critical tasks missed after settling: %d", out.CriticalMissesAfterSettle)
	}
}

// TestOverloadWithoutShedding: the same scenario without shedding piles up
// misses (including critical ones) — graceful degradation requires the
// reweighting mechanism, which Pfair supports natively.
func TestOverloadWithoutShedding(t *testing.T) {
	sc := Scenario{
		M: 3, Fail: 1, FailAt: 90, Horizon: 2000, SettleSlack: 60,
		Tasks: task.Set{
			crit("c1", 1, 3), crit("c2", 1, 4),
			task.MustNew("n1", 2, 3), task.MustNew("n2", 1, 2), task.MustNew("n3", 1, 3),
		},
	}
	out, err := Run(sc, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.CriticalMissesAfterSettle+out.NonCriticalMisses == 0 {
		t.Error("overload without shedding produced no misses at all")
	}
}

// TestSheddingPlanFits: the shed plan's post-reweight total weight fits
// the survivors.
func TestSheddingPlanFits(t *testing.T) {
	tasks := task.Set{
		crit("c", 1, 2),
		task.MustNew("a", 3, 4), task.MustNew("b", 2, 3), task.MustNew("d", 1, 2),
	}
	plan := shedPlan(tasks, 2)
	if len(plan) == 0 {
		t.Fatal("no shedding despite Σwt ≈ 2.92 > 2")
	}
	total := 0.0
	for _, tk := range tasks {
		e, p := tk.Cost, tk.Period
		if ep, ok := plan[tk.Name]; ok {
			if tk.Critical {
				t.Fatalf("critical task %s shed", tk.Name)
			}
			e, p = ep[0], ep[1]
		}
		total += float64(e) / float64(p)
	}
	if total > 2.0 {
		t.Errorf("post-shed utilization %v > 2", total)
	}
}

func TestRunRejectsFullFailure(t *testing.T) {
	if _, err := Run(Scenario{M: 2, Fail: 2, Tasks: task.Set{task.MustNew("a", 1, 2)}, Horizon: 10}, false); err == nil {
		t.Error("failing every processor accepted")
	}
}

// TestDriverReuseMatchesFreshRuns: re-running scenarios on one driver
// (one engine, reset between runs) produces exactly the outcomes of
// independent Runs — the engine reset leaks no state between variants.
func TestDriverReuseMatchesFreshRuns(t *testing.T) {
	sc := Scenario{
		M: 3, Fail: 1, FailAt: 90, Horizon: 2000, SettleSlack: 60,
		Tasks: task.Set{
			crit("c1", 1, 3), crit("c2", 1, 4),
			task.MustNew("n1", 2, 3), task.MustNew("n2", 1, 2), task.MustNew("n3", 1, 3),
		},
	}
	transparent := Scenario{
		M: 4, Fail: 2, FailAt: 60, Horizon: 600, SettleSlack: 0,
		Tasks: task.Set{
			crit("c1", 2, 3), task.MustNew("n1", 2, 3), task.MustNew("n2", 1, 3), task.MustNew("n3", 1, 3),
		},
	}
	d := NewDriver()
	for i, v := range []struct {
		sc   Scenario
		shed bool
	}{{sc, false}, {sc, true}, {transparent, true}} {
		got, err := d.Run(v.sc, v.shed)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		want, err := Run(v.sc, v.shed)
		if err != nil {
			t.Fatalf("fresh run %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("run %d: driver outcome %+v != fresh outcome %+v", i, got, want)
		}
	}
	if d.Engine() == nil {
		t.Fatal("driver has no engine after running")
	}
}

// TestDriverRecorderSpansRuns: observability attached at NewDriver
// survives the engine reset between runs, so one trace covers both the
// no-shed and shed variants. Task ids are dense per scheduler and the
// recorder registers each id once, so the two runs share ids and the
// variant boundary shows up as the slot counter restarting at zero.
func TestDriverRecorderSpansRuns(t *testing.T) {
	sc := Scenario{
		M: 3, Fail: 1, FailAt: 30, Horizon: 300, SettleSlack: 60,
		Tasks: task.Set{
			crit("c1", 1, 3), crit("c2", 1, 4),
			task.MustNew("n1", 2, 3), task.MustNew("n2", 1, 2), task.MustNew("n3", 1, 3),
		},
	}
	rec := obs.NewRecorder(1 << 16)
	d := NewDriver(engine.WithRecorder(rec))
	if _, err := d.Run(sc, false); err != nil {
		t.Fatal(err)
	}
	afterFirst := rec.Total()
	if afterFirst == 0 {
		t.Fatal("first run emitted no events")
	}
	out, err := d.Run(sc, true)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Total() <= afterFirst {
		t.Fatalf("second run emitted nothing: total %d -> %d", afterFirst, rec.Total())
	}
	joins, restarts := 0, 0
	var prevSlot int64
	for _, e := range rec.Events() {
		if e.Kind == obs.EvJoin {
			joins++
		}
		if e.Slot < prevSlot {
			restarts++
		}
		prevSlot = e.Slot
	}
	// Ids register once per recorder, so the second run adds join events
	// only for fresh ids: the reweighted tasks, which rejoin under new ids
	// (Pfair reweighting is leave-and-join).
	if want := len(sc.Tasks) + len(out.Reweighted); joins != want {
		t.Errorf("join events = %d, want %d", joins, want)
	}
	if restarts != 1 {
		t.Errorf("slot restarts = %d, want 1 (one engine reset between the runs)", restarts)
	}
}

func TestOutcomeNames(t *testing.T) {
	o := Outcome{Reweighted: map[string][2]int64{"b": {1, 2}, "a": {1, 3}}}
	names := o.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
}
