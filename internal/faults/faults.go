// Package faults orchestrates the fault-tolerance and overload scenarios
// of Section 5.4: K of M processors fail at runtime; if the surviving
// capacity still covers the total weight, Pfair's global optimality
// absorbs the loss transparently, and otherwise the system degrades
// gracefully by reweighting non-critical tasks to run at a slower rate so
// that critical tasks are unaffected.
package faults

import (
	"fmt"
	"sort"

	"pfair/internal/admission"
	"pfair/internal/core"
	"pfair/internal/engine"
	"pfair/internal/rational"
	"pfair/internal/task"
)

// Scenario describes one failure experiment.
type Scenario struct {
	// M is the initial processor count; Fail processors are removed at
	// slot FailAt.
	M      int
	Fail   int
	FailAt int64
	// Tasks is the workload; tasks with Critical set must keep their
	// full rate through the failure.
	Tasks task.Set
	// Horizon is the total simulated length in slots.
	Horizon int64
	// SettleSlack is how many slots after FailAt reweighting is allowed
	// to take effect before misses are held against the outcome
	// (leave-and-join needs the old tasks' safe departure points).
	SettleSlack int64
}

// Outcome reports the scenario's behaviour.
type Outcome struct {
	// Survivors is the processor count after the failure.
	Survivors int
	// Reweighted lists the tasks that were slowed down, with their new
	// parameters.
	Reweighted map[string][2]int64
	// MissesBefore counts deadline misses with deadlines at or before
	// FailAt (should always be zero).
	MissesBefore int
	// CriticalMissesAfterSettle counts misses of critical tasks with
	// deadlines after FailAt+SettleSlack — the figure of merit: zero
	// means the overload never touched the critical tasks.
	CriticalMissesAfterSettle int
	// NonCriticalMisses counts all non-critical misses after the
	// failure (transient misses during settling are expected under
	// overload).
	NonCriticalMisses int
}

// Driver executes failure scenarios on one reusable slot engine. Each
// Run binds a fresh PD² scheduler to the same engine (the engine's clock
// rewinds, its attachments persist), so a recorder or metrics block
// passed to NewDriver observes every variant of an experiment in a
// single trace — e.g. the shed and no-shed runs of the same overload,
// back to back, distinguishable by the second run's join events.
type Driver struct {
	// opts is held until the first Run creates the engine (an engine
	// cannot exist unbound, so creation waits for the first policy).
	opts []engine.Option
	eng  *engine.Engine
}

// NewDriver returns a scenario driver. Engine options attach once and
// observe every subsequent Run.
func NewDriver(opts ...engine.Option) *Driver { return &Driver{opts: opts} }

// Engine returns the driver's engine, or nil before the first Run.
func (d *Driver) Engine() *engine.Engine { return d.eng }

// Run executes the scenario under PD² on the driver's engine. When shed
// is true and the survivors cannot carry the full load, non-critical
// tasks are reweighted down proportionally until the system fits.
func (d *Driver) Run(s Scenario, shed bool) (Outcome, error) {
	if s.Fail >= s.M {
		return Outcome{}, fmt.Errorf("faults: cannot fail %d of %d processors", s.Fail, s.M)
	}
	var sched *core.Scheduler
	if d.eng == nil {
		sched = core.NewScheduler(s.M, core.PD2, core.Options{}, d.opts...)
		d.eng = sched.Engine()
	} else {
		sched = core.NewSchedulerOn(d.eng, s.M, core.PD2, core.Options{})
	}
	for _, t := range s.Tasks {
		if _, err := sched.Submit(admission.Join(t)); err != nil {
			return Outcome{}, err
		}
	}
	if err := sched.RunUntil(s.FailAt); err != nil {
		return Outcome{}, err
	}
	out := Outcome{Reweighted: map[string][2]int64{}}
	out.Survivors = sched.FailProcessors(s.Fail)

	if shed {
		plan := shedPlan(s.Tasks, out.Survivors)
		// Reweight through the admission plane in the declared task
		// order, not map order: each reweight lands at the scheduler's
		// current slot, and the paper's reweighting rules make the
		// resulting windows depend on the order of application.
		for _, t := range s.Tasks {
			ep, ok := plan[t.Name]
			if !ok {
				continue
			}
			if _, err := sched.Submit(admission.Reweight(t.Name, ep[0], ep[1])); err != nil {
				// Return the partial outcome alongside the error: the
				// reweights already applied (and the processor failure)
				// have happened, and a caller recovering from a refused
				// shed needs to know how far the plan got.
				return out, fmt.Errorf("faults: reweighting %s: %w", t.Name, err)
			}
			out.Reweighted[t.Name] = ep
		}
	}
	if err := sched.RunUntil(s.Horizon); err != nil {
		// Same contract on a livelocked finish: the outcome so far (the
		// survivors and every applied reweight) accompanies the error.
		return out, err
	}
	sched.FinishMisses(s.Horizon)

	critical := map[string]bool{}
	for _, t := range s.Tasks {
		critical[t.Name] = t.Critical
	}
	for _, m := range sched.Stats().Misses {
		switch {
		case m.Deadline <= s.FailAt:
			out.MissesBefore++
		case critical[m.Task]:
			if m.Deadline > s.FailAt+s.SettleSlack {
				out.CriticalMissesAfterSettle++
			}
		default:
			out.NonCriticalMisses++
		}
	}
	return out, nil
}

// Run executes the scenario under PD² on a throwaway driver. When shed
// is true and the survivors cannot carry the full load, non-critical
// tasks are reweighted down proportionally until the system fits.
func Run(s Scenario, shed bool) (Outcome, error) {
	return NewDriver().Run(s, shed)
}

// shedPlan computes new (cost, period) pairs for non-critical tasks so
// that critical weight + shed non-critical weight fits on the survivors.
// Each non-critical task keeps its period and has its cost scaled by the
// largest uniform factor that fits (at least cost 1).
func shedPlan(tasks task.Set, survivors int) map[string][2]int64 {
	critW := rational.NewAcc()
	var noncrit task.Set
	for _, t := range tasks {
		if t.Critical {
			critW.Add(t.Weight())
		} else {
			noncrit = append(noncrit, t)
		}
	}
	total := critW.Clone()
	for _, t := range noncrit {
		total.Add(t.Weight())
	}
	if total.CmpInt(int64(survivors)) <= 0 {
		return nil // still feasible, nothing to shed
	}
	// Binary-search the scale factor in 1/1024 steps, conservatively.
	plan := map[string][2]int64{}
	lo, hi := int64(0), int64(1024)
	fits := func(num int64) bool {
		w := critW.Clone()
		for _, t := range noncrit {
			c := t.Cost * num / 1024
			if c < 1 {
				c = 1
			}
			w.Add(rational.New(c, t.Period))
		}
		return w.CmpInt(int64(survivors)) <= 0
	}
	if !fits(lo) {
		// Even minimum-rate non-critical tasks do not fit: shed as far
		// as possible anyway; critical misses will expose the deficit.
		hi = 0
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if fits(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	for _, t := range noncrit {
		c := t.Cost * lo / 1024
		if c < 1 {
			c = 1
		}
		if c != t.Cost {
			plan[t.Name] = [2]int64{c, t.Period}
		}
	}
	return plan
}

// Names returns the reweighted task names in sorted order (for stable
// reporting).
func (o Outcome) Names() []string {
	names := make([]string, 0, len(o.Reweighted))
	for n := range o.Reweighted { //pfair:orderinvariant collects keys for sorting
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
