package experiments

import (
	"pfair/internal/core"
	"pfair/internal/parallel"
	"pfair/internal/rational"
	"pfair/internal/task"
	"pfair/internal/taskgen"
	"pfair/internal/wrr"
)

// Pfairness is defined by Equation (1): −1 < lag(T, t) < 1 for all T and
// t. This experiment measures the worst lag excursions actually produced
// by PD², its work-conserving ERfair variant, and the weighted
// round-robin baseline on the same workloads, making the definition
// quantitative: PD² stays strictly inside (−1, 1); ERfair keeps the upper
// bound (deadlines) but runs ahead of the fluid rate when idle capacity
// exists (negative lag below −1); WRR drifts beyond the bound in both
// directions.

// FairnessPoint reports one scheduler's worst lag excursions.
type FairnessPoint struct {
	Scheduler string
	// MaxLag is the largest lag observed (positive = behind the fluid
	// rate; ≥ 1 means a Pfairness violation).
	MaxLag float64
	// MinLag is the smallest lag observed (negative = ahead).
	MinLag float64
	// Misses counts job/subtask deadline misses.
	Misses int
}

// FairnessConfig scales the experiment.
type FairnessConfig struct {
	M       int
	N       int
	Total   float64
	Horizon int64
	Seed    int64
	// Workers runs the three scheduler variants concurrently when > 1;
	// each variant simulates its own scheduler over the same (read-only)
	// task set, so the output is identical for any worker count.
	Workers int
}

// DefaultFairnessConfig returns a near-saturated 2-processor workload
// where round-robin bursts are visible.
func DefaultFairnessConfig() FairnessConfig {
	return FairnessConfig{M: 2, N: 8, Total: 1.9, Horizon: 5000, Seed: 11}
}

// Fairness runs the comparison on one generated set. The three scheduler
// variants are independent simulations over the same read-only set, so
// they fan out across the worker pool; results are folded in the fixed
// PD2, ERfair, WRR order.
func Fairness(cfg FairnessConfig) []FairnessPoint {
	g := taskgen.New(cfg.Seed)
	set := mustSet(g.Set("T", cfg.N, cfg.Total, []int64{10, 15, 20, 30, 60}))

	results := make([]*FairnessPoint, 3)
	parallel.For(cfg.Workers, len(results), func(v int) {
		switch v {
		case 0:
			results[v] = fairnessPD2(set, cfg, "PD2", false)
		case 1:
			results[v] = fairnessPD2(set, cfg, "ERfair-PD2", true)
		case 2:
			// WRR on the same set, lags tracked through its per-slot hook.
			w, err := wrr.NewScheduler(cfg.M, set)
			if err != nil {
				return
			}
			lt := newLagTracker(set)
			w.OnSlot(func(t int64, allocated []string) {
				for _, name := range allocated {
					lt.alloc[name]++
				}
				lt.scan(t)
			})
			w.RunUntil(cfg.Horizon)
			results[v] = &FairnessPoint{
				Scheduler: "WRR",
				MaxLag:    lt.max.Float(),
				MinLag:    lt.min.Float(),
				Misses:    len(w.Stats().Misses),
			}
		}
	})

	var out []FairnessPoint
	for _, p := range results {
		if p != nil {
			out = append(out, *p)
		}
	}
	return out
}

// fairnessPD2 simulates one PD² variant and reports its lag excursions,
// or nil if the set does not fit the platform.
func fairnessPD2(set task.Set, cfg FairnessConfig, name string, earlyRelease bool) *FairnessPoint {
	s := core.NewScheduler(cfg.M, core.PD2, core.Options{EarlyRelease: earlyRelease})
	lt := newLagTracker(set)
	s.OnSlot(lt.onSlot)
	for _, t := range set {
		if err := s.Join(t); err != nil {
			return nil
		}
	}
	s.RunUntil(cfg.Horizon)
	s.FinishMisses(cfg.Horizon)
	return &FairnessPoint{
		Scheduler: name,
		MaxLag:    lt.max.Float(),
		MinLag:    lt.min.Float(),
		Misses:    len(s.Stats().Misses),
	}
}

// lagTracker maintains exact lags from slot assignments.
type lagTracker struct {
	pats     map[string]*core.Pattern
	alloc    map[string]int64
	max, min rational.Rat
}

func newLagTracker(set task.Set) *lagTracker {
	lt := &lagTracker{pats: map[string]*core.Pattern{}, alloc: map[string]int64{}}
	for _, t := range set {
		lt.pats[t.Name] = core.NewPattern(t.Cost, t.Period)
	}
	return lt
}

//pfair:hotpath
func (lt *lagTracker) onSlot(t int64, assigned []core.Assignment) {
	for _, a := range assigned {
		lt.alloc[a.Task]++
	}
	lt.scan(t)
}

//pfair:hotpath
func (lt *lagTracker) scan(t int64) {
	for name, pat := range lt.pats { //pfair:orderinvariant max over all tasks is commutative
		lag := pat.Lag(t+1, lt.alloc[name])
		if lt.max.Less(lag) {
			lt.max = lag
		}
		if lag.Less(lt.min) {
			lt.min = lag
		}
	}
}
