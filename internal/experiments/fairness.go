package experiments

import (
	"pfair/internal/core"
	"pfair/internal/rational"
	"pfair/internal/task"
	"pfair/internal/taskgen"
	"pfair/internal/wrr"
)

// Pfairness is defined by Equation (1): −1 < lag(T, t) < 1 for all T and
// t. This experiment measures the worst lag excursions actually produced
// by PD², its work-conserving ERfair variant, and the weighted
// round-robin baseline on the same workloads, making the definition
// quantitative: PD² stays strictly inside (−1, 1); ERfair keeps the upper
// bound (deadlines) but runs ahead of the fluid rate when idle capacity
// exists (negative lag below −1); WRR drifts beyond the bound in both
// directions.

// FairnessPoint reports one scheduler's worst lag excursions.
type FairnessPoint struct {
	Scheduler string
	// MaxLag is the largest lag observed (positive = behind the fluid
	// rate; ≥ 1 means a Pfairness violation).
	MaxLag float64
	// MinLag is the smallest lag observed (negative = ahead).
	MinLag float64
	// Misses counts job/subtask deadline misses.
	Misses int
}

// FairnessConfig scales the experiment.
type FairnessConfig struct {
	M       int
	N       int
	Total   float64
	Horizon int64
	Seed    int64
}

// DefaultFairnessConfig returns a near-saturated 2-processor workload
// where round-robin bursts are visible.
func DefaultFairnessConfig() FairnessConfig {
	return FairnessConfig{M: 2, N: 8, Total: 1.9, Horizon: 5000, Seed: 11}
}

// Fairness runs the comparison on one generated set.
func Fairness(cfg FairnessConfig) []FairnessPoint {
	g := taskgen.New(cfg.Seed)
	set := g.Set("T", cfg.N, cfg.Total, []int64{10, 15, 20, 30, 60})
	var out []FairnessPoint

	for _, variant := range []struct {
		name string
		er   bool
	}{{"PD2", false}, {"ERfair-PD2", true}} {
		s := core.NewScheduler(cfg.M, core.PD2, core.Options{EarlyRelease: variant.er})
		lt := newLagTracker(set)
		s.OnSlot(lt.onSlot)
		ok := true
		for _, t := range set {
			if err := s.Join(t); err != nil {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		s.RunUntil(cfg.Horizon)
		s.FinishMisses(cfg.Horizon)
		out = append(out, FairnessPoint{
			Scheduler: variant.name,
			MaxLag:    lt.max.Float(),
			MinLag:    lt.min.Float(),
			Misses:    len(s.Stats().Misses),
		})
	}

	// WRR on the same set, lags tracked through its per-slot hook.
	if w, err := wrr.NewScheduler(cfg.M, set); err == nil {
		lt := newLagTracker(set)
		w.OnSlot(func(t int64, allocated []string) {
			for _, name := range allocated {
				lt.alloc[name]++
			}
			lt.scan(t)
		})
		w.RunUntil(cfg.Horizon)
		out = append(out, FairnessPoint{
			Scheduler: "WRR",
			MaxLag:    lt.max.Float(),
			MinLag:    lt.min.Float(),
			Misses:    len(w.Stats().Misses),
		})
	}
	return out
}

// lagTracker maintains exact lags from slot assignments.
type lagTracker struct {
	pats     map[string]*core.Pattern
	alloc    map[string]int64
	max, min rational.Rat
}

func newLagTracker(set task.Set) *lagTracker {
	lt := &lagTracker{pats: map[string]*core.Pattern{}, alloc: map[string]int64{}}
	for _, t := range set {
		lt.pats[t.Name] = core.NewPattern(t.Cost, t.Period)
	}
	return lt
}

func (lt *lagTracker) onSlot(t int64, assigned []core.Assignment) {
	for _, a := range assigned {
		lt.alloc[a.Task]++
	}
	lt.scan(t)
}

func (lt *lagTracker) scan(t int64) {
	for name, pat := range lt.pats {
		lag := pat.Lag(t+1, lt.alloc[name])
		if lt.max.Less(lag) {
			lt.max = lag
		}
		if lag.Less(lt.min) {
			lt.min = lag
		}
	}
}
