package experiments

import (
	"fmt"
	"strings"

	"pfair/internal/core"
	"pfair/internal/trace"
)

// Fig1a renders the window layout of the first two jobs of a periodic
// task with weight 8/11, as in Figure 1(a).
func Fig1a() (string, error) {
	pat := core.NewPattern(8, 11)
	var b strings.Builder
	b.WriteString("Figure 1(a): windows of the first two jobs of a periodic task, wt = 8/11\n")
	w, err := trace.Windows(pat, 1, 16)
	if err != nil {
		return "", err
	}
	b.WriteString(w)
	b.WriteString("\nb-bits:          ")
	for i := int64(1); i <= 8; i++ {
		fmt.Fprintf(&b, "b(T%d)=%d ", i, pat.BBit(i))
	}
	b.WriteString("\ngroup deadlines: ")
	for i := int64(1); i <= 8; i++ {
		fmt.Fprintf(&b, "D(T%d)=%d ", i, pat.GroupDeadline(i))
	}
	b.WriteByte('\n')
	return b.String(), nil
}

// Fig1b renders the intra-sporadic variant of Figure 1(b): subtask T₅
// becomes eligible one slot late, shifting the windows of T₅ and its
// successors right by one.
func Fig1b() (string, error) {
	pat := core.NewPattern(8, 11)
	off := func(i int64) int64 {
		if i >= 5 {
			return 1
		}
		return 0
	}
	var b strings.Builder
	b.WriteString("Figure 1(b): windows of an IS task, wt = 8/11; subtask T5 one slot late\n")
	w, err := trace.WindowsIS(pat, 1, 8, off)
	if err != nil {
		return "", err
	}
	b.WriteString(w)
	return b.String(), nil
}
