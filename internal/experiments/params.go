// Package experiments regenerates the data behind every figure in the
// paper's evaluation:
//
//   - Figure 1: window layouts of a weight-8/11 periodic task and its
//     intra-sporadic variant.
//   - Figure 2: per-invocation scheduling overhead of EDF vs PD² on one
//     processor (a) and of PD² on 2–16 processors (b), measured in
//     wall-clock time on the host.
//   - Figure 3: minimum processors needed by PD² vs EDF-FF as total
//     utilization grows, with Equation (3) overhead accounting, for task
//     counts 50–1000.
//   - Figure 4: the schedulability loss split into system-overhead and
//     bin-packing components.
//   - Figure 5: the supertask deadline miss and its reweighting fix.
//   - Quantum sweep (Section 4's trade-off discussion): schedulability
//     loss as a function of quantum size.
//
// Every experiment takes an explicit seed and scale so the full paper
// protocol (1000 task sets per point, 10⁶-slot horizons) and a laptop-
// scale smoke run share one code path. EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiments

import (
	"pfair/internal/overhead"
	"pfair/internal/task"
)

// mustSet unwraps taskgen results inside the experiment harness: every
// experiment's generator parameters are statically valid, so an error here
// is a programmer error and panics (parallel.For propagates it).
func mustSet(s task.Set, err error) task.Set {
	if err != nil {
		//pfair:allowpanic experiment generator parameters are statically valid, per the doc comment
		panic(err)
	}
	return s
}

// DefaultSchedPD2 models the PD² per-invocation cost in µs as a function
// of processors and tasks, fitted to the shape of the paper's Figure 2
// measurements (≈2–3 µs at 100 tasks on one processor, ≈8 µs at 1000
// tasks, <20 µs at 200 tasks on 16 processors). The Figure 3/4 harness
// uses it by default so those figures do not depend on the speed of the
// machine the reproduction runs on; pass measured values to override.
//
// The paper measured only up to 16 processors; its N = 250/500/1000
// sweeps reach 60–120. Extrapolating the 1 µs/processor slope that far
// would make the scheduler consume a visible fraction of every 1 ms
// quantum, rejecting heavy tasks outright — our own Figure 2(b)
// measurements show the per-slot cost growing sublinearly (≈0.14 µs per
// processor between 8 and 16), so beyond the measured range the model's
// slope drops to 0.25 µs/processor. EXPERIMENTS.md discusses the
// sensitivity.
func DefaultSchedPD2(m, n int) int64 {
	s := 2 + int64(6*n)/1000
	if m <= 16 {
		return s + int64(m-1)
	}
	return s + 15 + int64(m-16)/4
}

// DefaultSchedEDF models the EDF per-invocation cost in µs (≈1–2 µs,
// growing slowly with the task count, per Figure 2(a)).
func DefaultSchedEDF(n int) int64 {
	return 1 + int64(n)/1000
}

// PaperParams assembles the Section 4 constants: 1 ms quantum, 5 µs
// context switch, the default scheduling-cost models, and the given
// per-task cache-delay table (usually from taskgen.CacheDelays, uniform
// mean 33.3 µs as in the paper).
func PaperParams(n int, delays map[string]int64) overhead.Params {
	return overhead.Params{
		Quantum:       1000,
		ContextSwitch: 5,
		SchedEDF:      DefaultSchedEDF(n),
		SchedPD2:      DefaultSchedPD2,
		CacheDelay: func(t *task.Task) int64 {
			return delays[t.Name]
		},
	}
}
