package experiments

import (
	"fmt"
	"io"
)

// This file renders every experiment's TSV table. The CLI
// (cmd/experiments) and the determinism regression tests share these
// writers, so "parallel output is byte-identical to serial output" is
// asserted on exactly the bytes users see.

// RenderFig2a writes the Figure 2(a) table.
func RenderFig2a(w io.Writer, points []Fig2aPoint) {
	fmt.Fprintln(w, "# Figure 2(a): per-invocation scheduling cost on one processor")
	fmt.Fprintln(w, "# N\tEDF_ns\tEDF_relerr\tPD2_ns\tPD2_relerr")
	for _, p := range points {
		fmt.Fprintf(w, "%d\t%.1f\t%.3f\t%.1f\t%.3f\n", p.N, p.EDFNanos, p.EDFRelErr, p.PD2Nanos, p.PD2RelErr)
	}
	fmt.Fprintln(w)
}

// RenderFig2b writes the Figure 2(b) table.
func RenderFig2b(w io.Writer, points []Fig2bPoint) {
	fmt.Fprintln(w, "# Figure 2(b): PD² per-slot cost on 2/4/8/16 processors")
	fmt.Fprintln(w, "# M\tN\tPD2_ns\trelerr")
	for _, p := range points {
		fmt.Fprintf(w, "%d\t%d\t%.1f\t%.3f\n", p.M, p.N, p.PD2Nanos, p.RelErr)
	}
	fmt.Fprintln(w)
}

// RenderFig3 writes the Figure 3 tables (one per task count, in ns order).
func RenderFig3(w io.Writer, ns []int, data map[int][]Fig3Point) {
	for _, n := range ns {
		fmt.Fprintf(w, "# Figure 3: minimum processors for schedulability, N=%d\n", n)
		fmt.Fprintln(w, "# total_util\tPD2\trelerr\tEDF-FF\trelerr")
		for _, p := range data[n] {
			fmt.Fprintf(w, "%.2f\t%.2f\t%.3f\t%.2f\t%.3f\n", p.TotalUtil, p.PD2Procs, p.PD2RelErr, p.FFProcs, p.FFRelErr)
		}
		if x := Crossover(data[n]); x > 0 {
			fmt.Fprintf(w, "# crossover (PD2 catches EDF-FF) near total utilization %.1f\n", x)
		}
		fmt.Fprintln(w)
	}
}

// RenderFig4 writes the Figure 4 loss-decomposition tables.
func RenderFig4(w io.Writer, ns []int, data map[int][]Fig3Point) {
	for _, n := range ns {
		fmt.Fprintf(w, "# Figure 4: schedulability-loss fractions, N=%d\n", n)
		fmt.Fprintln(w, "# mean_util\tloss_pfair\tloss_edf\tloss_ff")
		for _, p := range data[n] {
			fmt.Fprintf(w, "%.4f\t%.4f\t%.4f\t%.4f\n", p.MeanUtil, p.LossPfair, p.LossEDF, p.LossFF)
		}
		fmt.Fprintln(w)
	}
}

// RenderFig5 writes the Figure 5 trace and miss report.
func RenderFig5(w io.Writer, res Fig5Result) {
	fmt.Fprint(w, res.Trace)
	fmt.Fprintln(w, "# component misses without reweighting:")
	for _, m := range res.Misses {
		fmt.Fprintf(w, "#   %s/%s job %d missed deadline %d\n", m.Supertask, m.Component, m.Job, m.Deadline)
	}
	fmt.Fprintf(w, "# component misses with 1/p_min reweighting: %d\n", len(res.ReweightedMisses))
	fmt.Fprintln(w)
}

// RenderQuantum writes the quantum-sweep table.
func RenderQuantum(w io.Writer, points []QuantumPoint) {
	fmt.Fprintln(w, "# Section 4 trade-off: quantum size vs schedulability loss")
	fmt.Fprintln(w, "# q_us\tPD2_procs\trounding_loss\toverhead_loss\tinfeasible")
	for _, p := range points {
		fmt.Fprintf(w, "%d\t%.2f\t%.3f\t%.3f\t%d\n", p.QuantumUS, p.PD2Procs, p.RoundingLoss, p.OverheadLoss, p.Infeasible)
	}
}

// RenderResponse writes the response-time comparison table.
func RenderResponse(w io.Writer, points []ResponsePoint) {
	fmt.Fprintln(w, "# Section 2 claim: early release improves response times at light load")
	fmt.Fprintln(w, "# load\tpfair_resp\terfair_resp\tspeedup")
	for _, p := range points {
		fmt.Fprintf(w, "%.2f\t%.2f\t%.2f\t%.3f\n", p.Load, p.PfairResponse, p.ERfairResponse, p.Speedup)
	}
	fmt.Fprintln(w)
}

// RenderSync writes the synchronization comparison table.
func RenderSync(w io.Writer, points []SyncPoint, sets int) {
	fmt.Fprintln(w, "# Section 5.1: resource sharing — PD²+quantum-boundary locks vs partitioned RM+MPCP")
	fmt.Fprintln(w, "# cs_us\tpfair_procs\tmpcp_procs\tmpcp_unschedulable")
	for _, p := range points {
		fmt.Fprintf(w, "%d\t%.2f\t%.2f\t%d/%d\n", p.CSLengthUS, p.PfairProcs, p.MPCPProcs, p.MPCPFailures, sets)
	}
	fmt.Fprintln(w)
}

// RenderFairness writes the lag-excursion table.
func RenderFairness(w io.Writer, points []FairnessPoint) {
	fmt.Fprintln(w, "# Equation (1) quantified: worst lag excursions on one near-saturated workload")
	fmt.Fprintln(w, "# scheduler\tmax_lag\tmin_lag\tmisses")
	for _, p := range points {
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%d\n", p.Scheduler, p.MaxLag, p.MinLag, p.Misses)
	}
	fmt.Fprintln(w)
}
