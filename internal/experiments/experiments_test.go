package experiments

import (
	"strings"
	"testing"

	"pfair/internal/overhead"
	"pfair/internal/taskgen"
)

func TestFig1aContent(t *testing.T) {
	out, err := Fig1a()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"wt = 8/11",
		"T1   |==         ", // window [0,2)
		"T8   |         ==", // window [9,11)
		"b(T8)=0",
		"D(T3)=8",
		"D(T7)=11",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig1a missing %q:\n%s", want, out)
		}
	}
}

func TestFig1bContent(t *testing.T) {
	out, err := Fig1b()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "T5   |      ==") {
		t.Errorf("Fig1b missing shifted T5 window:\n%s", out)
	}
}

// TestFig2aShape: measured per-invocation costs are positive and PD²'s
// grows with the task count (the paper's headline trend). Wall-clock
// measurements are noisy, so only endpoint ordering is asserted.
func TestFig2aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	cfg := Fig2Config{Ns: []int{15, 500}, SetsPerN: 5, Horizon: 5000, Seed: 1}
	points := Fig2a(cfg)
	if len(points) != 2 {
		t.Fatalf("points: %d", len(points))
	}
	for _, p := range points {
		if p.PD2Nanos <= 0 || p.EDFNanos <= 0 {
			t.Fatalf("non-positive measurement: %+v", p)
		}
	}
	if points[1].PD2Nanos <= points[0].PD2Nanos {
		t.Errorf("PD2 overhead did not grow with N: %v → %v", points[0].PD2Nanos, points[1].PD2Nanos)
	}
}

// TestFig2bShape: for a fixed task count, PD²'s per-slot cost grows with
// the processor count (scheduling decisions are made sequentially by one
// scheduler — the paper's Figure 2(b) trend).
func TestFig2bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	cfg := Fig2Config{Ns: []int{200}, SetsPerN: 5, Horizon: 5000, Seed: 1}
	points := Fig2b(cfg)
	if len(points) != 4 {
		t.Fatalf("points: %d", len(points))
	}
	byM := map[int]float64{}
	for _, p := range points {
		byM[p.M] = p.PD2Nanos
	}
	if byM[16] <= byM[2] {
		t.Errorf("PD2 overhead did not grow from 2 to 16 processors: %v → %v", byM[2], byM[16])
	}
}

// TestFig3Shape pins the qualitative content of Figure 3 for N = 50: the
// two schemes coincide at the lowest utilizations, EDF-FF needs fewer
// processors in the middle of the sweep, and PD² catches up (crossover)
// in the upper part — with both always at least the overhead-free bound.
func TestFig3Shape(t *testing.T) {
	cfg := Fig3Config{Ns: []int{50}, Steps: 12, SetsPerStep: 25, Seed: 2}
	points := Fig3(cfg)[50]
	if len(points) != 12 {
		t.Fatalf("points: %d", len(points))
	}
	// (1) Near-identical at the lowest utilization.
	first := points[0]
	if diff := first.PD2Procs - first.FFProcs; diff > 0.5 || diff < -0.5 {
		t.Errorf("low-utilization gap too large: PD2=%v FF=%v", first.PD2Procs, first.FFProcs)
	}
	// (2) EDF-FF strictly better somewhere in the middle.
	ffBetter := false
	for _, p := range points[2:9] {
		if p.FFProcs < p.PD2Procs-0.3 {
			ffBetter = true
		}
	}
	if !ffBetter {
		t.Error("EDF-FF never clearly better in the mid-range; Figure 3's middle section missing")
	}
	// (3) PD² at least matches EDF-FF somewhere in the upper third.
	pd2Matches := false
	for _, p := range points[8:] {
		if p.PD2Procs <= p.FFProcs+0.05 {
			pd2Matches = true
		}
	}
	if !pd2Matches {
		t.Error("PD² never caught EDF-FF at high utilization; crossover missing")
	}
	// (4) Monotone resource demand and sane bounds.
	for i := 1; i < len(points); i++ {
		if points[i].PD2Procs < points[i-1].PD2Procs-0.5 || points[i].FFProcs < points[i-1].FFProcs-0.5 {
			t.Errorf("processor demand decreased along the sweep at step %d", i)
		}
	}
	for _, p := range points {
		if p.PD2Procs < p.TotalUtil || p.FFProcs < p.TotalUtil {
			t.Errorf("processor count below the utilization lower bound: %+v", p)
		}
	}
}

// TestFig4Shape: the loss decomposition behaves as the paper describes —
// PD²'s overhead fraction shrinks as utilization grows (fixed per-task
// rounding amortizes over more utilization), EDF inflation stays small
// throughout, and packing loss is the dominant EDF-FF term at high
// utilization.
func TestFig4Shape(t *testing.T) {
	cfg := Fig3Config{Ns: []int{50}, Steps: 10, SetsPerStep: 25, Seed: 2}
	points := Fig3(cfg)[50]
	first, last := points[0], points[len(points)-1]
	if !(last.LossPfair < first.LossPfair) {
		t.Errorf("Pfair loss did not shrink with utilization: %v → %v", first.LossPfair, last.LossPfair)
	}
	for _, p := range points {
		if p.LossEDF > 0.1 {
			t.Errorf("EDF system-overhead loss implausibly high: %+v", p)
		}
		if p.LossPfair < 0 || p.LossFF < 0 {
			t.Errorf("negative loss: %+v", p)
		}
	}
	if !(last.LossFF > last.LossEDF) {
		t.Errorf("at high utilization packing loss (%v) should dominate EDF overhead loss (%v)", last.LossFF, last.LossEDF)
	}
}

// TestFig5Content: the unreweighted run reproduces T's miss at time 10;
// the reweighted run is clean; the trace renders all five rows.
func TestFig5Content(t *testing.T) {
	res := Fig5(90)
	if len(res.Misses) == 0 {
		t.Fatal("no component miss")
	}
	if res.Misses[0].Component != "T" || res.Misses[0].Deadline != 10 {
		t.Errorf("first miss %+v, want T at 10", res.Misses[0])
	}
	if len(res.ReweightedMisses) != 0 {
		t.Errorf("reweighted run missed: %+v", res.ReweightedMisses[0])
	}
	for _, row := range []string{"V |", "W |", "X |", "Y |", "S |"} {
		if !strings.Contains(res.Trace, row) {
			t.Errorf("trace missing row %q:\n%s", row, res.Trace)
		}
	}
}

// TestQuantumSweepShape: the Section 4 trade-off — rounding loss grows
// with the quantum, per-quantum overhead loss shrinks, and the processor
// demand is U-shaped with an interior optimum.
func TestQuantumSweepShape(t *testing.T) {
	cfg := DefaultQuantumSweepConfig()
	cfg.Sets = 20
	points := QuantumSweep(cfg)
	if len(points) != len(cfg.QuantaUS) {
		t.Fatalf("points: %d", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].RoundingLoss < points[i-1].RoundingLoss-1e-9 {
			t.Errorf("rounding loss not nondecreasing in quantum size at %dus", points[i].QuantumUS)
		}
		if points[i].OverheadLoss > points[i-1].OverheadLoss+1e-9 {
			t.Errorf("overhead loss not nonincreasing in quantum size at %dus", points[i].QuantumUS)
		}
	}
	// U-shape: the best interior point beats both extremes.
	best := points[0].PD2Procs
	bestIdx := 0
	for i, p := range points {
		if p.PD2Procs > 0 && (best == 0 || p.PD2Procs < best) {
			best, bestIdx = p.PD2Procs, i
		}
	}
	if bestIdx == 0 || bestIdx == len(points)-1 {
		t.Errorf("no interior optimum: best at index %d (%dus)", bestIdx, points[bestIdx].QuantumUS)
	}
}

func TestDefaultConfigs(t *testing.T) {
	f2 := DefaultFig2Config()
	if len(f2.Ns) == 0 || f2.SetsPerN <= 0 || f2.Horizon <= 0 {
		t.Error("bad Fig2 defaults")
	}
	f3 := DefaultFig3Config()
	if len(f3.Ns) == 0 || f3.Steps < 2 {
		t.Error("bad Fig3 defaults")
	}
	if DefaultSchedPD2(1, 100) <= 0 || DefaultSchedEDF(100) <= 0 {
		t.Error("bad scheduling-cost models")
	}
}

// TestResponseTimesERfairHelps: the Section 2 claim — early release
// improves mean job response times, most visibly at light load. ERfair
// must never be meaningfully slower, and must be strictly faster at the
// lightest load.
func TestResponseTimesERfairHelps(t *testing.T) {
	cfg := DefaultResponseConfig()
	cfg.Sets = 10
	cfg.Horizon = 2000
	points := ResponseTimes(cfg)
	if len(points) != len(cfg.Loads) {
		t.Fatalf("points: %d", len(points))
	}
	for _, p := range points {
		if p.PfairResponse <= 0 || p.ERfairResponse <= 0 {
			t.Fatalf("degenerate point: %+v", p)
		}
		if p.ERfairResponse > p.PfairResponse*1.02 {
			t.Errorf("ERfair slower at load %.1f: %v vs %v", p.Load, p.ERfairResponse, p.PfairResponse)
		}
	}
	if first := points[0]; first.Speedup < 1.05 {
		t.Errorf("no response-time benefit at the lightest load: speedup %.3f", first.Speedup)
	}
}

// TestSyncComparison: the Section 5.1 claim — as critical sections grow,
// partitioned RM+MPCP systems increasingly become unschedulable at ANY
// processor count (blocking exceeds slack), while PD² with
// quantum-boundary locking degrades gracefully by a fraction of a
// processor.
func TestSyncComparison(t *testing.T) {
	cfg := DefaultSyncConfig()
	cfg.Sets = 8
	points := SyncComparison(cfg)
	if len(points) != len(cfg.CSLengths) {
		t.Fatalf("points: %d", len(points))
	}
	first, last := points[0], points[len(points)-1]
	if first.MPCPFailures != 0 {
		t.Errorf("MPCP failing already at %dµs sections", first.CSLengthUS)
	}
	if last.MPCPFailures <= first.MPCPFailures {
		t.Errorf("MPCP failures did not grow with section length: %d → %d",
			first.MPCPFailures, last.MPCPFailures)
	}
	// Pfair never fails and grows by at most ~1.5 processors across a
	// 100× section-length range.
	if last.PfairProcs > first.PfairProcs+1.5 {
		t.Errorf("Pfair+qlock degraded too much: %v → %v", first.PfairProcs, last.PfairProcs)
	}
	for _, p := range points {
		if p.PfairProcs <= 0 {
			t.Errorf("degenerate Pfair point: %+v", p)
		}
	}
}

// TestFairness makes Equation (1) quantitative: PD² keeps every lag
// strictly inside (−1, 1); ERfair preserves the upper bound (no task falls
// a full quantum behind) while running ahead when capacity is idle; WRR
// violates the bound.
func TestFairness(t *testing.T) {
	points := Fairness(DefaultFairnessConfig())
	if len(points) != 3 {
		t.Fatalf("points: %d", len(points))
	}
	byName := map[string]FairnessPoint{}
	for _, p := range points {
		byName[p.Scheduler] = p
	}
	pd2 := byName["PD2"]
	if pd2.MaxLag >= 1 || pd2.MinLag <= -1 {
		t.Errorf("PD2 lag excursions [%v, %v] violate (−1, 1)", pd2.MinLag, pd2.MaxLag)
	}
	if pd2.Misses != 0 {
		t.Errorf("PD2 missed %d", pd2.Misses)
	}
	er := byName["ERfair-PD2"]
	if er.MaxLag >= 1 {
		t.Errorf("ERfair max lag %v ≥ 1 (deadline bound broken)", er.MaxLag)
	}
	if er.Misses != 0 {
		t.Errorf("ERfair missed %d", er.Misses)
	}
	if er.MinLag > pd2.MinLag {
		t.Errorf("ERfair should run at least as far ahead as PD2: %v vs %v", er.MinLag, pd2.MinLag)
	}
	wrrP := byName["WRR"]
	if wrrP.MaxLag < 1 && wrrP.MinLag > -1 {
		t.Errorf("WRR stayed Pfair on a near-saturated set ([%v, %v]); expected violations", wrrP.MinLag, wrrP.MaxLag)
	}
}

// TestFitLine checks the regression helper on exact data.
func TestFitLine(t *testing.T) {
	i, s := fitLine([]float64{0, 1, 2, 3}, []float64{1, 3, 5, 7})
	if i < 0.999 || i > 1.001 || s < 1.999 || s > 2.001 {
		t.Errorf("fitLine = (%v, %v), want (1, 2)", i, s)
	}
	if i, s := fitLine(nil, nil); i != 0 || s != 0 {
		t.Errorf("empty fit = (%v, %v)", i, s)
	}
	if i, s := fitLine([]float64{2, 2}, []float64{3, 5}); i != 4 || s != 0 {
		t.Errorf("degenerate fit = (%v, %v), want mean 4", i, s)
	}
}

// TestMeasuredParamsPipeline runs the paper's measure-then-analyze
// methodology end to end at a tiny scale: measured cost models plug into
// a Figure 3 evaluation and produce sane processor counts.
func TestMeasuredParamsPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	cfg := Fig2Config{Ns: []int{15, 100}, SetsPerN: 3, Horizon: 3000, Seed: 1}
	models := MeasureCostModels(cfg)
	if models.SchedEDF(100) < 1 || models.SchedPD2(4, 100) < 1 {
		t.Fatalf("degenerate models: %+v", models)
	}
	g := taskgen.New(77)
	set := mustSet(g.SetCapped("T", 50, 8, 0.9, Fig3PeriodsUS))
	delays := g.CacheDelays(set, 100)
	params := MeasuredParams(models, len(set), delays)
	_, pd2, ff := overhead.ComputeLosses(set, params)
	if pd2.Processors < set.MinProcessors() || ff.Processors < set.MinProcessors() {
		t.Errorf("measured-params counts below the lower bound: pd2=%d ff=%d base=%d",
			pd2.Processors, ff.Processors, set.MinProcessors())
	}
	if pd2.Processors > 3*set.MinProcessors() {
		t.Errorf("measured-params PD2 count implausible: %d", pd2.Processors)
	}
}
