package experiments

import (
	"pfair/internal/overhead"
	"pfair/internal/parallel"
	"pfair/internal/stats"
	"pfair/internal/task"
	"pfair/internal/taskgen"
)

// QuantumPoint is one quantum size in the Section 4 trade-off sweep.
type QuantumPoint struct {
	QuantumUS int64
	// PD2Procs is the mean minimum processor count at this quantum.
	PD2Procs float64
	// RoundingLoss is the mean weight added purely by rounding execution
	// costs up to whole quanta (larger quanta → more rounding loss).
	RoundingLoss float64
	// OverheadLoss is the mean weight added by Equation (3) inflation
	// (smaller quanta → more per-quantum overhead).
	OverheadLoss float64
	// Infeasible counts sets where some task's inflated weight exceeded
	// one at this quantum.
	Infeasible int
}

// QuantumSweepConfig scales the sweep.
type QuantumSweepConfig struct {
	N         int
	TotalUtil float64
	Sets      int
	QuantaUS  []int64
	Seed      int64
	// Workers fans the per-quantum trials out over this many goroutines
	// (≤ 1 = serial); the output is byte-identical for any worker count.
	Workers int
}

// DefaultQuantumSweepConfig returns defaults spanning 100 µs to 10 ms.
func DefaultQuantumSweepConfig() QuantumSweepConfig {
	return QuantumSweepConfig{
		N:         50,
		TotalUtil: 8,
		Sets:      40,
		QuantaUS:  []int64{100, 200, 500, 1000, 2000, 5000, 10000},
		Seed:      3,
	}
}

// QuantumSweep quantifies the trade-off the paper describes: shrinking the
// quantum reduces rounding loss but multiplies per-quantum scheduling and
// switching overhead; growing it does the reverse. "These trade-offs must
// be carefully analyzed to determine an optimal quantum size."
func QuantumSweep(cfg QuantumSweepConfig) []QuantumPoint {
	var out []QuantumPoint
	for _, q := range cfg.QuantaUS {
		// Trial seeds deliberately exclude q: every quantum evaluates the
		// identical task sets, as the serial harness's per-quantum
		// generator reset used to guarantee.
		trials := make([]quantumResult, cfg.Sets)
		parallel.For(cfg.Workers, cfg.Sets, func(s int) {
			g := taskgen.New(taskgen.SubSeed(cfg.Seed, seedQuantum, int64(s)))
			set := mustSet(g.Set("T", cfg.N, cfg.TotalUtil, taskgen.DefaultPeriodsUS))
			delays := g.CacheDelays(set, 100)
			params := PaperParams(cfg.N, delays)
			params.Quantum = q
			trials[s] = minProcsAtQuantum(set, params)
		})
		var procs, rounding, inflation stats.Sample
		infeasible := 0
		for _, res := range trials {
			if res.Processors < 0 {
				infeasible++
				continue
			}
			procs.AddInt(int64(res.Processors))
			rounding.Add(res.roundingLoss)
			inflation.Add(res.inflationLoss)
		}
		out = append(out, QuantumPoint{
			QuantumUS:    q,
			PD2Procs:     procs.Mean(),
			RoundingLoss: rounding.Mean(),
			OverheadLoss: inflation.Mean(),
			Infeasible:   infeasible,
		})
	}
	return out
}

type quantumResult struct {
	Processors    int
	roundingLoss  float64
	inflationLoss float64
}

// minProcsAtQuantum mirrors overhead.MinProcsPD2 but additionally splits
// the added weight into inflation (Equation (3)) and rounding (cost →
// whole quanta) components. Periods in the default menu are multiples of
// every quantum in the sweep.
func minProcsAtQuantum(set task.Set, p overhead.Params) quantumResult {
	m := int(set.TotalWeight().Ceil())
	if m < 1 {
		m = 1
	}
	for round := 0; round < 32; round++ {
		s := p.SchedPD2(m, len(set))
		baseU, inflU, roundU := 0.0, 0.0, 0.0
		need := 0.0
		ok := true
		for _, t := range set {
			infl, _, good := overhead.InflatePD2(t.Cost, t.Period, p, s, p.CacheDelay(t))
			if !good {
				ok = false
				break
			}
			w := overhead.PD2Weight(infl, t.Period, p.Quantum).Float()
			baseU += t.Utilization()
			inflU += float64(infl-t.Cost) / float64(t.Period)
			roundU += w - float64(infl)/float64(t.Period)
			need += w
		}
		if !ok {
			return quantumResult{Processors: -1}
		}
		needM := int(need)
		if float64(needM) < need {
			needM++
		}
		if needM < 1 {
			needM = 1
		}
		if needM == m {
			return quantumResult{Processors: m, roundingLoss: roundU, inflationLoss: inflU}
		}
		m = needM
	}
	return quantumResult{Processors: m}
}
