package experiments

import (
	"fmt"
	"io"

	"pfair/internal/core"
	"pfair/internal/engine"
	"pfair/internal/obs"
	"pfair/internal/taskgen"
)

// This file decomposes the Figure 2 measurement: Fig2a/Fig2b report the
// total per-invocation cost of PD², the phases sweep says where inside
// the slot that cost goes, using the engine's sampled phase profiler
// (engine.WithProfiler). The decomposition is the observability layer's
// answer to "why does the cost grow with n": the pick tournament and the
// release drain scale with the ready set, the clock advance does not.

// PhasesConfig scales the phase-cost sweep.
type PhasesConfig struct {
	Ns      []int // task counts to profile
	M       int   // processors
	Horizon int64 // slots simulated per point
	Seed    int64
	Every   int64 // profile one step in every Every
	Shards  int   // ready-queue shards (0 or 1 = single queue)
}

// DefaultPhasesConfig returns laptop-scale defaults.
func DefaultPhasesConfig() PhasesConfig {
	return PhasesConfig{
		Ns:      []int{15, 50, 100, 250, 500},
		M:       4,
		Horizon: 20000,
		Seed:    1,
		Every:   32,
	}
}

// PhasesPoint is one profiled task count.
type PhasesPoint struct {
	N    int
	Prof *obs.PhaseProfiler
}

// Phases profiles one PD² scheduler per task count. Points run serially:
// concurrent schedulers would contend for cycles and distort exactly the
// wall-clock measurement being taken.
func Phases(cfg PhasesConfig) []PhasesPoint {
	every := cfg.Every
	if every < 1 {
		every = 32
	}
	points := make([]PhasesPoint, 0, len(cfg.Ns))
	for i, n := range cfg.Ns {
		g := taskgen.New(taskgen.SubSeed(cfg.Seed, int64(i)))
		set := mustSet(g.Set("T", n, 0.95*float64(cfg.M), taskgen.DefaultPeriodsSlots))
		prof := obs.NewPhaseProfiler(nil, every)
		s := core.NewScheduler(cfg.M, core.PD2, core.Options{Shards: cfg.Shards}, engine.WithProfiler(prof))
		for _, t := range set {
			if err := s.Join(t); err != nil {
				// Rounding can push the total marginally over M; skip.
				continue
			}
		}
		s.RunUntil(cfg.Horizon)
		points = append(points, PhasesPoint{N: n, Prof: prof})
	}
	return points
}

// RenderPhases writes the sweep as a TSV table of mean sampled
// nanoseconds per phase, one row per task count.
func RenderPhases(w io.Writer, cfg PhasesConfig, points []PhasesPoint) {
	every := cfg.Every
	if len(points) > 0 {
		every = points[0].Prof.Every()
	}
	fmt.Fprintf(w, "# engine phase cost decomposition: PD² on m=%d, %d slots/point, sampled every %d steps\n",
		cfg.M, cfg.Horizon, every)
	fmt.Fprintln(w, "# mean sampled ns per phase")
	fmt.Fprintln(w, "n\trelease\tpick\tdispatch\taccount\tnext\tslot")
	mean := func(h *obs.Histogram) int64 {
		if h.Count() == 0 {
			return 0
		}
		return h.Sum() / h.Count()
	}
	for _, p := range points {
		phases := []int64{
			mean(p.Prof.Release), mean(p.Prof.Pick), mean(p.Prof.Dispatch),
			mean(p.Prof.Account), mean(p.Prof.Next),
		}
		var slot int64
		fmt.Fprintf(w, "%d", p.N)
		for _, v := range phases {
			slot += v
			fmt.Fprintf(w, "\t%d", v)
		}
		fmt.Fprintf(w, "\t%d\n", slot)
	}
}
