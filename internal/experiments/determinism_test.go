package experiments

import (
	"strings"
	"testing"
)

// The parallel harness's core guarantee: for a fixed seed, the rendered
// TSV output is byte-identical for every worker count, because each trial
// owns a SubSeed-derived generator and a result slot, and slots are folded
// in index order. These tests pin that guarantee for the three sweeps the
// CLI exposes with nontrivial fan-out (fig2a uses the deterministic
// work-proxy measurement mode — wall-clock timings are never
// reproducible, parallel or not).

func fig2aTSV(workers int) string {
	cfg := Fig2Config{
		Ns:            []int{15, 50},
		SetsPerN:      6,
		Horizon:       2000,
		Seed:          1,
		Workers:       workers,
		Deterministic: true,
	}
	var b strings.Builder
	RenderFig2a(&b, Fig2a(cfg))
	return b.String()
}

func fig3TSV(workers int) string {
	cfg := Fig3Config{Ns: []int{50}, Steps: 4, SetsPerStep: 8, Seed: 2, Workers: workers}
	var b strings.Builder
	RenderFig3(&b, cfg.Ns, Fig3(cfg))
	return b.String()
}

func quantumTSV(workers int) string {
	cfg := QuantumSweepConfig{
		N:         30,
		TotalUtil: 5,
		Sets:      8,
		QuantaUS:  []int64{500, 1000, 2000},
		Seed:      3,
		Workers:   workers,
	}
	var b strings.Builder
	RenderQuantum(&b, QuantumSweep(cfg))
	return b.String()
}

func assertIdenticalAcrossWorkers(t *testing.T, name string, render func(workers int) string) {
	t.Helper()
	serial := render(1)
	if len(serial) == 0 || !strings.Contains(serial, "\t") {
		t.Fatalf("%s: serial render produced no table:\n%s", name, serial)
	}
	for _, workers := range []int{2, 3, 4} {
		if got := render(workers); got != serial {
			t.Errorf("%s: workers=%d output differs from serial.\nserial:\n%s\nworkers=%d:\n%s",
				name, workers, serial, workers, got)
		}
	}
}

func TestFig2aDeterministicAcrossWorkers(t *testing.T) {
	assertIdenticalAcrossWorkers(t, "fig2a", fig2aTSV)
}

func TestFig3DeterministicAcrossWorkers(t *testing.T) {
	assertIdenticalAcrossWorkers(t, "fig3", fig3TSV)
}

func TestQuantumDeterministicAcrossWorkers(t *testing.T) {
	assertIdenticalAcrossWorkers(t, "quantum", quantumTSV)
}

// TestQuantumSetsIdenticalAcrossQuanta pins the property the sweep's
// seeding scheme must preserve: the task sets at every quantum size are
// the same, so the curve isolates the quantum's effect (trial seeds must
// not include the quantum index).
func TestQuantumSetsIdenticalAcrossQuanta(t *testing.T) {
	cfg := QuantumSweepConfig{
		N: 20, TotalUtil: 4, Sets: 5,
		QuantaUS: []int64{1000}, Seed: 7, Workers: 2,
	}
	a := QuantumSweep(cfg)
	cfg.QuantaUS = []int64{1000, 2000}
	b := QuantumSweep(cfg)
	if a[0] != b[0] {
		t.Errorf("first-quantum point changed when the sweep grew: %+v vs %+v", a[0], b[0])
	}
}

// TestFig5WorkersIdentical: the fan-out variant returns the same result.
func TestFig5WorkersIdentical(t *testing.T) {
	serial := Fig5Workers(90, 1)
	par := Fig5Workers(90, 3)
	if serial.Trace != par.Trace || len(serial.Misses) != len(par.Misses) ||
		len(serial.ReweightedMisses) != len(par.ReweightedMisses) {
		t.Error("Fig5Workers(…, 3) differs from serial run")
	}
}

// TestFairnessWorkersIdentical: all three variant rows, in fixed order,
// regardless of fan-out.
func TestFairnessWorkersIdentical(t *testing.T) {
	cfg := DefaultFairnessConfig()
	serial := Fairness(cfg)
	cfg.Workers = 3
	par := Fairness(cfg)
	if len(serial) != len(par) {
		t.Fatalf("row count differs: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Errorf("row %d differs: %+v vs %+v", i, serial[i], par[i])
		}
	}
}

// TestResponseSyncWorkersIdentical covers the two remaining sweeps at a
// small scale.
func TestResponseSyncWorkersIdentical(t *testing.T) {
	rc := ResponseConfig{M: 2, N: 8, Loads: []float64{0.4}, Sets: 4, Horizon: 500, Seed: 5}
	var a, b strings.Builder
	RenderResponse(&a, ResponseTimes(rc))
	rc.Workers = 4
	RenderResponse(&b, ResponseTimes(rc))
	if a.String() != b.String() {
		t.Errorf("response output differs:\n%s\nvs\n%s", a.String(), b.String())
	}

	sc := SyncConfig{N: 12, TotalUtil: 3, Resources: 2, Sets: 4, CSLengths: []int64{100}, QuantumUS: 1000, Seed: 9}
	a.Reset()
	b.Reset()
	RenderSync(&a, SyncComparison(sc), sc.Sets)
	sc.Workers = 4
	RenderSync(&b, SyncComparison(sc), sc.Sets)
	if a.String() != b.String() {
		t.Errorf("sync output differs:\n%s\nvs\n%s", a.String(), b.String())
	}
}
