package experiments

import (
	"pfair/internal/core"
	"pfair/internal/parallel"
	"pfair/internal/stats"
	"pfair/internal/task"
	"pfair/internal/taskgen"
)

// Section 2 motivates the ERfair variant: "Work-conserving algorithms are
// of interest because they tend to improve job response times, especially
// in lightly-loaded systems." This experiment quantifies that claim: the
// same light workloads are scheduled with plain Pfair eligibility and with
// early release, and mean job response times are compared.

// ResponsePoint is one load level of the comparison.
type ResponsePoint struct {
	// Load is the fraction of the platform the workload uses.
	Load float64
	// PfairResponse and ERfairResponse are mean job response times in
	// slots (completion − release).
	PfairResponse  float64
	ERfairResponse float64
	// Speedup is Pfair/ERfair mean response (> 1 when early release
	// helps).
	Speedup float64
}

// ResponseConfig scales the experiment.
type ResponseConfig struct {
	M       int
	N       int
	Loads   []float64 // fractions of M
	Sets    int
	Horizon int64
	Seed    int64
	// Workers fans the per-load trials out over this many goroutines
	// (≤ 1 = serial); the output is byte-identical for any worker count.
	Workers int
}

// DefaultResponseConfig returns light-to-moderate loads on 4 processors.
func DefaultResponseConfig() ResponseConfig {
	return ResponseConfig{
		M:       4,
		N:       16,
		Loads:   []float64{0.2, 0.4, 0.6, 0.8},
		Sets:    20,
		Horizon: 4000,
		Seed:    5,
	}
}

// responseTrial carries one task set's two scheduler runs out of the pool.
type responseTrial struct {
	pf, er     float64
	pfOK, erOK bool
}

// ResponseTimes runs the comparison.
func ResponseTimes(cfg ResponseConfig) []ResponsePoint {
	var out []ResponsePoint
	for _, load := range cfg.Loads {
		trials := make([]responseTrial, cfg.Sets)
		parallel.For(cfg.Workers, cfg.Sets, func(s int) {
			g := taskgen.New(taskgen.SubSeed(cfg.Seed, seedResponse, int64(load*1000), int64(s)))
			set := mustSet(g.Set("T", cfg.N, load*float64(cfg.M), taskgen.DefaultPeriodsSlots))
			trials[s].pf, trials[s].pfOK = meanResponse(set, cfg.M, cfg.Horizon, false)
			trials[s].er, trials[s].erOK = meanResponse(set, cfg.M, cfg.Horizon, true)
		})
		var pf, er stats.Sample
		for _, tr := range trials {
			if tr.pfOK {
				pf.Add(tr.pf)
			}
			if tr.erOK {
				er.Add(tr.er)
			}
		}
		p := ResponsePoint{Load: load, PfairResponse: pf.Mean(), ERfairResponse: er.Mean()}
		if p.ERfairResponse > 0 {
			p.Speedup = p.PfairResponse / p.ERfairResponse
		}
		out = append(out, p)
	}
	return out
}

// meanResponse schedules the set and returns the mean job response time:
// for job j of a task with cost e, the completion slot of subtask j·e plus
// one, minus the job's release (j−1)·p.
func meanResponse(set task.Set, m int, horizon int64, earlyRelease bool) (float64, bool) {
	s := core.NewScheduler(m, core.PD2, core.Options{EarlyRelease: earlyRelease})
	costs := map[string]int64{}
	periods := map[string]int64{}
	var resp stats.Sample
	s.OnSlot(func(t int64, assigned []core.Assignment) {
		for _, a := range assigned {
			e := costs[a.Task]
			if a.Subtask%e == 0 {
				job := a.Subtask / e
				release := (job - 1) * periods[a.Task]
				resp.Add(float64(t + 1 - release))
			}
		}
	})
	for _, tk := range set {
		costs[tk.Name] = tk.Cost
		periods[tk.Name] = tk.Period
		if err := s.Join(tk); err != nil {
			return 0, false
		}
	}
	s.RunUntil(horizon)
	if resp.N() == 0 {
		return 0, false
	}
	return resp.Mean(), true
}
