package experiments

import (
	"fmt"

	"pfair/internal/mpcp"
	"pfair/internal/parallel"
	"pfair/internal/qlock"
	"pfair/internal/rational"
	"pfair/internal/stats"
	"pfair/internal/task"
	"pfair/internal/taskgen"
)

// Section 5.1 argues that Pfair's tight synchrony makes synchronization
// cheap — critical sections are simply kept inside quantum boundaries —
// while partitioned systems need heavyweight protocols (MPCP, defined
// only for RM) whose blocking terms erode schedulability. This experiment
// quantifies the claim: the same resource-sharing workloads are costed
// under both schemes and the minimum processor counts compared.

// SyncPoint is one critical-section length in the sweep.
type SyncPoint struct {
	// CSLengthUS is the critical-section length in µs.
	CSLengthUS int64
	// PfairProcs is the mean minimum processors under PD² with
	// quantum-boundary locking (costs inflated by the deferral and
	// blocking bounds of internal/qlock).
	PfairProcs float64
	// MPCPProcs is the mean minimum processors under partitioned RM
	// with MPCP blocking accounted in the response-time test.
	MPCPProcs float64
	// MPCPFailures counts sets no processor count could schedule under
	// RM+MPCP (blocking pushed some response time past its period).
	MPCPFailures int
}

// SyncConfig scales the sweep.
type SyncConfig struct {
	N         int
	TotalUtil float64
	Resources int
	Sets      int
	CSLengths []int64 // µs
	QuantumUS int64
	Seed      int64
	// Workers fans the per-length trials out over this many goroutines
	// (≤ 1 = serial); the output is byte-identical for any worker count.
	Workers int
}

// DefaultSyncConfig returns a moderate workload: 24 tasks at total
// utilization 6 sharing 4 resources, critical sections from 10 µs to
// 1 ms.
func DefaultSyncConfig() SyncConfig {
	return SyncConfig{
		N:         24,
		TotalUtil: 6,
		Resources: 4,
		Sets:      20,
		CSLengths: []int64{10, 50, 100, 500, 1000},
		QuantumUS: 1000,
		Seed:      9,
	}
}

// syncTrial carries one task set's two analyses out of the worker pool.
type syncTrial struct {
	pfair  int64
	mpcp   int64
	mpcpOK bool
}

// SyncComparison runs the sweep.
func SyncComparison(cfg SyncConfig) []SyncPoint {
	var out []SyncPoint
	for _, cs := range cfg.CSLengths {
		// Trial seeds exclude cs, so every section length analyzes the
		// identical task sets (as the per-length generator reset used to
		// guarantee).
		trials := make([]syncTrial, cfg.Sets)
		parallel.For(cfg.Workers, cfg.Sets, func(s int) {
			g := taskgen.New(taskgen.SubSeed(cfg.Seed, seedSync, int64(s)))
			set := mustSet(g.SetCapped("T", cfg.N, cfg.TotalUtil, 0.8, Fig3PeriodsUS))
			// Every task gets one critical section of length cs on a
			// round-robin-chosen resource.
			res := make([]string, len(set))
			for i := range set {
				res[i] = fmt.Sprintf("R%d", i%cfg.Resources)
			}
			trials[s].pfair = int64(pfairSyncProcs(set, res, cs, cfg.QuantumUS))
			if m, ok := mpcpProcs(set, res, cs); ok {
				trials[s].mpcp, trials[s].mpcpOK = int64(m), true
			}
		})
		var pf, mp stats.Sample
		failures := 0
		for _, tr := range trials {
			pf.AddInt(tr.pfair)
			if tr.mpcpOK {
				mp.AddInt(tr.mpcp)
			} else {
				failures++
			}
		}
		out = append(out, SyncPoint{
			CSLengthUS:   cs,
			PfairProcs:   pf.Mean(),
			MPCPProcs:    mp.Mean(),
			MPCPFailures: failures,
		})
	}
	return out
}

// pfairSyncProcs computes the minimum processors for PD² with
// quantum-boundary locking: each task's cost is inflated by its per-job
// synchronization overhead — one deferral (≤ cs − 1) plus the lock wait
// bound (m−1)·cs — and the resulting quantum-rounded weights are summed.
// The bound depends on m, so the count iterates to self-consistency.
func pfairSyncProcs(set task.Set, res []string, cs, quantum int64) int {
	m := int(set.TotalWeight().Ceil())
	if m < 1 {
		m = 1
	}
	for round := 0; round < 16; round++ {
		total := rational.NewAcc()
		overhead := qlock.MaxDeferral(cs, quantum) + qlock.MaxBlocking(m, cs)
		for _, t := range set {
			e := t.Cost + overhead
			if e > t.Period {
				e = t.Period
			}
			total.Add(rational.New(rational.CeilDiv(e, quantum), t.Period/quantum))
		}
		need := int(total.Ceil())
		if need < 1 {
			need = 1
		}
		if need == m {
			return m
		}
		m = need
	}
	return m
}

// mpcpProcs finds the minimum processors for partitioned RM with MPCP by
// greedy first-fit: each task (decreasing utilization) goes to the first
// processor where the WHOLE system — remote blocking is global — remains
// schedulable; a new processor opens when none accepts. ok=false when a
// task is unschedulable even on a fresh processor of an otherwise empty
// continuation (its blocking exceeds its slack at any count).
func mpcpProcs(set task.Set, res []string, cs int64) (int, bool) {
	ordered := set.SortByUtilizationDecreasing()
	resOf := map[string]string{}
	for i, t := range set {
		resOf[t.Name] = res[i]
	}
	sys := &mpcp.System{}
	procs := 0
	for _, t := range ordered {
		sec := []mpcp.CS{{Resource: resOf[t.Name], Length: minInt64(cs, t.Cost)}}
		placed := false
		for p := 0; p < procs && !placed; p++ {
			sys.Tasks = append(sys.Tasks, mpcp.TaskSpec{Task: t, Proc: p, Sections: sec})
			if sys.Schedulable() {
				placed = true
			} else {
				sys.Tasks = sys.Tasks[:len(sys.Tasks)-1]
			}
		}
		if !placed {
			sys.Tasks = append(sys.Tasks, mpcp.TaskSpec{Task: t, Proc: procs, Sections: sec})
			procs++
			if !sys.Schedulable() {
				return 0, false
			}
		}
	}
	return procs, true
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
