package experiments

import (
	"pfair/internal/overhead"
	"pfair/internal/task"
)

// The paper's Figure 3/4 methodology: "S_EDF and S_PD2 were chosen based
// on the values obtained by us in the scheduling-overhead experiments"
// (i.e. Figure 2). MeasuredParams reproduces that pipeline: it measures
// the two schedulers on this machine, fits the same functional shape the
// default models use, and returns overhead.Params built from the fit. The
// deterministic DefaultSchedPD2/EDF models remain the default so the
// figures are machine-independent; pass MeasuredParams's result to
// Fig3-style sweeps for the fully faithful (machine-dependent) protocol.

// CostModels carries fitted per-invocation scheduling costs in µs.
type CostModels struct {
	// EDFBase and EDFPerTask give S_EDF(n) = EDFBase + EDFPerTask·n.
	EDFBase, EDFPerTask float64
	// PD2Base, PD2PerTask, PD2PerProc give
	// S_PD²(m, n) = PD2Base + PD2PerTask·n + PD2PerProc·(m−1).
	PD2Base, PD2PerTask, PD2PerProc float64
}

// SchedEDF evaluates the fitted EDF model, clamped to ≥ 1 µs.
func (c CostModels) SchedEDF(n int) int64 {
	return clampMicros(c.EDFBase + c.EDFPerTask*float64(n))
}

// SchedPD2 evaluates the fitted PD² model, clamped to ≥ 1 µs.
func (c CostModels) SchedPD2(m, n int) int64 {
	return clampMicros(c.PD2Base + c.PD2PerTask*float64(n) + c.PD2PerProc*float64(m-1))
}

func clampMicros(v float64) int64 {
	if v < 1 {
		return 1
	}
	return int64(v + 0.5)
}

// MeasureCostModels runs a compact Figure-2-style measurement and fits
// the cost models by least squares over the sampled (m, n) grid.
func MeasureCostModels(cfg Fig2Config) CostModels {
	var c CostModels
	// EDF: single regression of ns/invocation on n.
	pts := Fig2a(cfg)
	var xs, ys []float64
	for _, p := range pts {
		if p.EDFNanos > 0 {
			xs = append(xs, float64(p.N))
			ys = append(ys, p.EDFNanos/1000) // ns → µs
		}
	}
	c.EDFBase, c.EDFPerTask = fitLine(xs, ys)

	// PD²: regress on n at m=1, then the processor slope from Fig2b.
	xs, ys = xs[:0], ys[:0]
	for _, p := range pts {
		if p.PD2Nanos > 0 {
			xs = append(xs, float64(p.N))
			ys = append(ys, p.PD2Nanos/1000)
		}
	}
	c.PD2Base, c.PD2PerTask = fitLine(xs, ys)

	bpts := Fig2b(cfg)
	xs, ys = xs[:0], ys[:0]
	for _, p := range bpts {
		if p.PD2Nanos > 0 {
			base := c.PD2Base + c.PD2PerTask*float64(p.N)
			xs = append(xs, float64(p.M-1))
			ys = append(ys, p.PD2Nanos/1000-base)
		}
	}
	_, c.PD2PerProc = fitLine(xs, ys)
	if c.PD2PerProc < 0 {
		c.PD2PerProc = 0
	}
	return c
}

// MeasuredParams assembles Section 4 Params (1 ms quantum, 5 µs context
// switch) around the fitted cost models and the given cache-delay table.
func MeasuredParams(c CostModels, n int, delays map[string]int64) overhead.Params {
	return overhead.Params{
		Quantum:       1000,
		ContextSwitch: 5,
		SchedEDF:      c.SchedEDF(n),
		SchedPD2:      c.SchedPD2,
		CacheDelay: func(t *task.Task) int64 {
			return delays[t.Name]
		},
	}
}

// fitLine returns the least-squares intercept and slope of y on x; with
// fewer than two points it degenerates to (mean, 0).
func fitLine(xs, ys []float64) (intercept, slope float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return sy / n, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return intercept, slope
}
