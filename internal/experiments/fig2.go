package experiments

import (
	"time"

	"pfair/internal/core"
	"pfair/internal/edf"
	"pfair/internal/parallel"
	"pfair/internal/stats"
	"pfair/internal/task"
	"pfair/internal/taskgen"
)

// Experiment tags keep the SubSeed streams of different sweeps disjoint
// even when they share a base seed and point keys.
const (
	seedFig2a int64 = iota + 1
	seedFig2b
	seedFig3
	seedQuantum
	seedResponse
	seedSync
)

// Fig2Config scales the Figure 2 measurement. The paper's full protocol is
// SetsPerN = 1000 and Horizon = 1e6; the defaults below finish in seconds
// and show the same trends.
type Fig2Config struct {
	Ns       []int // task counts (paper: 15..1000)
	SetsPerN int
	Horizon  int64 // slots simulated per set
	Seed     int64
	// Workers fans independent task-set trials out over this many
	// goroutines; values ≤ 1 keep the serial path. Results are
	// byte-identical for every worker count (each trial has its own
	// SubSeed-derived generator and result slot). Note that concurrent
	// trials share memory bandwidth, so for publication-grade absolute
	// timings use Workers = 1; parallel runs preserve the trends.
	Workers int
	// Deterministic replaces the wall-clock measurement with a
	// deterministic per-slot work proxy (scheduler decision counts). The
	// determinism regression tests use it to compare parallel and serial
	// harness output byte for byte, which real timings never are.
	Deterministic bool
	// Shards sets the scheduler's ready-queue shard count (0 or 1 keeps
	// the single queue). The schedule — and hence the deterministic
	// proxy — is identical for every value; only the measured cost
	// moves, which is the point of sweeping it.
	Shards int
}

// DefaultFig2Config returns the scaled-down defaults.
func DefaultFig2Config() Fig2Config {
	return Fig2Config{
		Ns:       []int{15, 30, 50, 75, 100, 250, 500, 750, 1000},
		SetsPerN: 10,
		Horizon:  20000,
		Seed:     1,
	}
}

// Fig2aPoint is one x-position of Figure 2(a): mean per-invocation
// scheduling cost on one processor, in nanoseconds (the paper reports µs
// on a 933 MHz machine; shape, not scale, is the reproduction target).
type Fig2aPoint struct {
	N            int
	EDFNanos     float64
	EDFRelErr    float64 // 99% CI half-width / mean
	PD2Nanos     float64
	PD2RelErr    float64
	EDFPerSecond float64 // invocations per simulated slot, for context
}

// fig2Trial carries one task set's measurements out of the worker pool.
type fig2Trial struct {
	edf   edfMeasurement
	edfOK bool
	pd2   float64
}

// Fig2a measures the mean per-invocation cost of the EDF and PD²
// schedulers on one processor over random task sets with total utilization
// at most one.
func Fig2a(cfg Fig2Config) []Fig2aPoint {
	var out []Fig2aPoint
	for _, n := range cfg.Ns {
		trials := make([]fig2Trial, cfg.SetsPerN)
		parallel.For(cfg.Workers, cfg.SetsPerN, func(s int) {
			g := taskgen.New(taskgen.SubSeed(cfg.Seed, seedFig2a, int64(n), int64(s)))
			set := mustSet(g.SetMaxUtil("T", n, 1.0, taskgen.DefaultPeriodsSlots))
			trials[s].edf, trials[s].edfOK = measureEDF(set, cfg.Horizon, cfg.Deterministic)
			trials[s].pd2 = measurePD2(set, 1, cfg.Horizon, cfg.Deterministic, cfg.Shards)
		})
		var edfNs, pd2Ns, edfInvPerSlot stats.Sample
		for _, tr := range trials {
			if tr.edfOK {
				edfNs.Add(tr.edf.nanosPerInvocation)
				edfInvPerSlot.Add(tr.edf.invocationsPerSlot)
			}
			pd2Ns.Add(tr.pd2)
		}
		out = append(out, Fig2aPoint{
			N:            n,
			EDFNanos:     edfNs.Mean(),
			EDFRelErr:    edfNs.RelErr99(),
			PD2Nanos:     pd2Ns.Mean(),
			PD2RelErr:    pd2Ns.RelErr99(),
			EDFPerSecond: edfInvPerSlot.Mean(),
		})
	}
	return out
}

// Fig2bPoint is one (m, N) cell of Figure 2(b).
type Fig2bPoint struct {
	M        int
	N        int
	PD2Nanos float64
	RelErr   float64
}

// Fig2b measures PD²'s per-invocation cost on 2, 4, 8, and 16 processors.
func Fig2b(cfg Fig2Config) []Fig2bPoint {
	var out []Fig2bPoint
	for _, m := range []int{2, 4, 8, 16} {
		for _, n := range cfg.Ns {
			trials := make([]float64, cfg.SetsPerN)
			parallel.For(cfg.Workers, cfg.SetsPerN, func(s int) {
				g := taskgen.New(taskgen.SubSeed(cfg.Seed, seedFig2b, int64(1000*m+n), int64(s)))
				set := mustSet(g.SetMaxUtil("T", n, float64(m), taskgen.DefaultPeriodsSlots))
				trials[s] = measurePD2(set, m, cfg.Horizon, cfg.Deterministic, cfg.Shards)
			})
			var pd2Ns stats.Sample
			for _, v := range trials {
				pd2Ns.Add(v)
			}
			out = append(out, Fig2bPoint{M: m, N: n, PD2Nanos: pd2Ns.Mean(), RelErr: pd2Ns.RelErr99()})
		}
	}
	return out
}

// measurePD2 returns the mean wall-clock nanoseconds per PD² invocation
// (one invocation per slot) over the horizon. In deterministic mode it
// instead returns the mean scheduler decisions (allocations plus context
// switches) per slot — a pure function of the task set that exercises the
// same simulation path.
func measurePD2(set task.Set, m int, horizon int64, deterministic bool, shards int) float64 {
	s := core.NewScheduler(m, core.PD2, core.Options{Shards: shards})
	for _, t := range set {
		if err := s.Join(t); err != nil {
			// SetMaxUtil keeps Σu ≤ m up to rounding; skip any task the
			// rounding pushed over.
			continue
		}
	}
	if deterministic {
		s.RunUntil(horizon)
		st := s.Stats()
		return float64(st.Allocations+st.ContextSwitches) / float64(horizon)
	}
	start := time.Now() //pfair:allowtime Figure 2 measures wall-clock scheduling cost by design
	s.RunUntil(horizon)
	elapsed := time.Since(start) //pfair:allowtime Figure 2 measures wall-clock scheduling cost by design
	return float64(elapsed.Nanoseconds()) / float64(horizon)
}

type edfMeasurement struct {
	nanosPerInvocation float64
	invocationsPerSlot float64
}

// measureEDF returns the mean wall-clock nanoseconds per EDF scheduler
// invocation over the horizon. In deterministic mode the nanosecond field
// carries the invocations-per-slot proxy instead of a timing.
func measureEDF(set task.Set, horizon int64, deterministic bool) (edfMeasurement, bool) {
	s := edf.NewSimulator()
	s.MeasureOverhead(!deterministic)
	for _, t := range set {
		if err := s.Add(edf.Config{Task: t}); err != nil {
			return edfMeasurement{}, false
		}
	}
	s.Run(horizon)
	st := s.Stats()
	if st.Invocations == 0 {
		return edfMeasurement{}, false
	}
	perSlot := float64(st.Invocations) / float64(horizon)
	nanos := perSlot
	if !deterministic {
		nanos = float64(st.SchedulingTime.Nanoseconds()) / float64(st.Invocations)
	}
	return edfMeasurement{nanosPerInvocation: nanos, invocationsPerSlot: perSlot}, true
}
