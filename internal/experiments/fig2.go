package experiments

import (
	"time"

	"pfair/internal/core"
	"pfair/internal/edf"
	"pfair/internal/stats"
	"pfair/internal/task"
	"pfair/internal/taskgen"
)

// Fig2Config scales the Figure 2 measurement. The paper's full protocol is
// SetsPerN = 1000 and Horizon = 1e6; the defaults below finish in seconds
// and show the same trends.
type Fig2Config struct {
	Ns       []int // task counts (paper: 15..1000)
	SetsPerN int
	Horizon  int64 // slots simulated per set
	Seed     int64
}

// DefaultFig2Config returns the scaled-down defaults.
func DefaultFig2Config() Fig2Config {
	return Fig2Config{
		Ns:       []int{15, 30, 50, 75, 100, 250, 500, 750, 1000},
		SetsPerN: 10,
		Horizon:  20000,
		Seed:     1,
	}
}

// Fig2aPoint is one x-position of Figure 2(a): mean per-invocation
// scheduling cost on one processor, in nanoseconds (the paper reports µs
// on a 933 MHz machine; shape, not scale, is the reproduction target).
type Fig2aPoint struct {
	N            int
	EDFNanos     float64
	EDFRelErr    float64 // 99% CI half-width / mean
	PD2Nanos     float64
	PD2RelErr    float64
	EDFPerSecond float64 // invocations per simulated slot, for context
}

// Fig2a measures the mean per-invocation cost of the EDF and PD²
// schedulers on one processor over random task sets with total utilization
// at most one.
func Fig2a(cfg Fig2Config) []Fig2aPoint {
	var out []Fig2aPoint
	for _, n := range cfg.Ns {
		g := taskgen.New(cfg.Seed + int64(n))
		var edfNs, pd2Ns, edfInvPerSlot stats.Sample
		for s := 0; s < cfg.SetsPerN; s++ {
			set := g.SetMaxUtil("T", n, 1.0, taskgen.DefaultPeriodsSlots)
			if v, ok := measureEDF(set, cfg.Horizon); ok {
				edfNs.Add(v.nanosPerInvocation)
				edfInvPerSlot.Add(v.invocationsPerSlot)
			}
			pd2Ns.Add(measurePD2(set, 1, cfg.Horizon))
		}
		out = append(out, Fig2aPoint{
			N:            n,
			EDFNanos:     edfNs.Mean(),
			EDFRelErr:    edfNs.RelErr99(),
			PD2Nanos:     pd2Ns.Mean(),
			PD2RelErr:    pd2Ns.RelErr99(),
			EDFPerSecond: edfInvPerSlot.Mean(),
		})
	}
	return out
}

// Fig2bPoint is one (m, N) cell of Figure 2(b).
type Fig2bPoint struct {
	M        int
	N        int
	PD2Nanos float64
	RelErr   float64
}

// Fig2b measures PD²'s per-invocation cost on 2, 4, 8, and 16 processors.
func Fig2b(cfg Fig2Config) []Fig2bPoint {
	var out []Fig2bPoint
	for _, m := range []int{2, 4, 8, 16} {
		for _, n := range cfg.Ns {
			g := taskgen.New(cfg.Seed + int64(1000*m+n))
			var pd2Ns stats.Sample
			for s := 0; s < cfg.SetsPerN; s++ {
				set := g.SetMaxUtil("T", n, float64(m), taskgen.DefaultPeriodsSlots)
				pd2Ns.Add(measurePD2(set, m, cfg.Horizon))
			}
			out = append(out, Fig2bPoint{M: m, N: n, PD2Nanos: pd2Ns.Mean(), RelErr: pd2Ns.RelErr99()})
		}
	}
	return out
}

// measurePD2 returns the mean wall-clock nanoseconds per PD² invocation
// (one invocation per slot) over the horizon.
func measurePD2(set task.Set, m int, horizon int64) float64 {
	s := core.NewScheduler(m, core.PD2, core.Options{})
	for _, t := range set {
		if err := s.Join(t); err != nil {
			// SetMaxUtil keeps Σu ≤ m up to rounding; skip any task the
			// rounding pushed over.
			continue
		}
	}
	start := time.Now()
	s.RunUntil(horizon)
	elapsed := time.Since(start)
	return float64(elapsed.Nanoseconds()) / float64(horizon)
}

type edfMeasurement struct {
	nanosPerInvocation float64
	invocationsPerSlot float64
}

// measureEDF returns the mean wall-clock nanoseconds per EDF scheduler
// invocation over the horizon.
func measureEDF(set task.Set, horizon int64) (edfMeasurement, bool) {
	s := edf.NewSimulator()
	s.MeasureOverhead(true)
	for _, t := range set {
		if err := s.Add(edf.Config{Task: t}); err != nil {
			return edfMeasurement{}, false
		}
	}
	s.Run(horizon)
	st := s.Stats()
	if st.Invocations == 0 {
		return edfMeasurement{}, false
	}
	return edfMeasurement{
		nanosPerInvocation: float64(st.SchedulingTime.Nanoseconds()) / float64(st.Invocations),
		invocationsPerSlot: float64(st.Invocations) / float64(horizon),
	}, true
}
