package experiments

import (
	"fmt"
	"strings"

	"pfair/internal/core"
	"pfair/internal/parallel"
	"pfair/internal/supertask"
	"pfair/internal/task"
	"pfair/internal/trace"
)

// Fig5Result carries the supertask experiment's outcome.
type Fig5Result struct {
	// Trace is the two-processor PD² schedule over the first 18 slots,
	// in the style of Figure 5.
	Trace string
	// Misses are the component-level deadline misses without
	// reweighting (the paper's T misses at time 10).
	Misses []supertask.ComponentMiss
	// ReweightedMisses are the component misses after the
	// Holman–Anderson 1/p_min inflation (expected empty).
	ReweightedMisses []supertask.ComponentMiss
}

// Fig5 reproduces Figure 5: on two processors, tasks V (1/2), W (1/3),
// X (1/3), Y (2/9) plus supertask S = {T (1/5), U (1/45)} competing at
// 2/9. Without reweighting, component T misses at time 10; with S
// inflated to 19/45, all component deadlines are met.
func Fig5(horizon int64) Fig5Result { return Fig5Workers(horizon, 1) }

// Fig5Workers is Fig5 with its three independent simulations — the plain
// run, the reweighted run, and the trace render — fanned out over the
// worker pool. The result is identical for any worker count.
func Fig5Workers(horizon int64, workers int) Fig5Result {
	build := func(reweighted bool) (*supertask.System, *trace.Recorder, error) {
		sys := supertask.NewSystem(2, core.PD2)
		for _, tk := range []*task.Task{
			task.MustNew("V", 1, 2), task.MustNew("W", 1, 3), task.MustNew("X", 1, 3),
		} {
			if err := sys.AddTask(tk); err != nil {
				return nil, nil, err
			}
		}
		s := &supertask.Supertask{Name: "S", Components: task.Set{
			task.MustNew("T", 1, 5), task.MustNew("U", 1, 45),
		}}
		if err := sys.AddSupertask(s, reweighted); err != nil {
			return nil, nil, err
		}
		if err := sys.AddTask(task.MustNew("Y", 2, 9)); err != nil {
			return nil, nil, err
		}
		return sys, nil, nil
	}

	var res Fig5Result
	parallel.For(workers, 3, func(part int) {
		switch part {
		case 0:
			sys, _, err := build(false)
			if err != nil {
				//pfair:allowpanic static Figure 5 workload cannot fail to build; parallel.For propagates panics
				panic(err)
			}
			res.Misses = sys.Run(horizon).ComponentMisses
		case 1:
			sysRW, _, err := build(true)
			if err != nil {
				//pfair:allowpanic static Figure 5 workload cannot fail to build; parallel.For propagates panics
				panic(err)
			}
			res.ReweightedMisses = sysRW.Run(horizon).ComponentMisses
		case 2:
			// Render the schedule with a fresh recorder-driven run.
			res.Trace = fig5Trace()
		}
	})
	return res
}

// fig5Trace renders the unreweighted schedule's first 18 slots.
func fig5Trace() string {
	sched := core.NewScheduler(2, core.PD2, core.Options{})
	rec := trace.NewRecorder()
	sched.OnSlot(rec.Record)
	for _, tk := range []*task.Task{
		task.MustNew("V", 1, 2), task.MustNew("W", 1, 3), task.MustNew("X", 1, 3),
		task.MustNew("S", 2, 9), task.MustNew("Y", 2, 9),
	} {
		if err := sched.Join(tk); err != nil {
			//pfair:allowpanic static Figure 5 task set always admits on two processors
			panic(err)
		}
	}
	sched.RunUntil(18)
	var b strings.Builder
	b.WriteString("Figure 5: PD² schedule (digits = processor), S = supertask{T:1/5, U:1/45} at weight 2/9\n")
	b.WriteString(rec.Render(0, 18, "V", "W", "X", "Y", "S"))
	fmt.Fprintf(&b, "S's quanta drive an internal EDF over T and U; T's job 2 needs one of S's quanta in [5,10).\n")
	return b.String()
}
