package experiments

import (
	"pfair/internal/overhead"
	"pfair/internal/parallel"
	"pfair/internal/stats"
	"pfair/internal/taskgen"
)

// Fig3Config scales the Figure 3/4 sweep. The paper generates, for each
// task count N, 1000 task sets at each total utilization from N/30 to N/3
// and reports the mean minimum processor count under both schemes with
// Equation (3) overheads applied (C = 5 µs, q = 1 ms, D(T) ∈ [0, 100] µs
// with mean 33.3 µs).
type Fig3Config struct {
	Ns          []int
	Steps       int // utilization steps between N/30 and N/3
	SetsPerStep int
	Seed        int64
	// Workers fans the per-step trials out over this many goroutines
	// (≤ 1 = serial); the output is byte-identical for any worker count.
	Workers int
	// Models, if non-nil, supplies scheduling costs measured on this
	// machine (MeasureCostModels) instead of the calibrated defaults —
	// the paper's own measure-then-analyze methodology.
	Models *CostModels
}

// DefaultFig3Config returns scaled-down defaults (the paper uses
// SetsPerStep = 1000).
func DefaultFig3Config() Fig3Config {
	return Fig3Config{
		Ns:          []int{50, 100, 250, 500},
		Steps:       12,
		SetsPerStep: 50,
		Seed:        2,
	}
}

// Fig3PeriodsUS is the period menu for the Figure 3/4 sweep: 50 ms–1 s,
// all multiples of the 1 ms quantum. The paper does not state its period
// distribution; periods well above the quantum match its multimedia
// motivation and reproduce its reported shape (near-identical curves at
// low utilization, PD² overtaking EDF-FF at high utilization). Shorter
// periods shift the balance toward EDF-FF by amplifying PD²'s
// quantum-rounding loss — EXPERIMENTS.md quantifies that sensitivity.
var Fig3PeriodsUS = []int64{50000, 100000, 200000, 250000, 500000, 1000000}

// Fig3Point is one x-position of a Figure 3 curve.
type Fig3Point struct {
	N         int
	TotalUtil float64 // cumulative task-set utilization (without overhead)
	MeanUtil  float64 // per-task mean, the Figure 4 x-axis
	PD2Procs  float64 // mean minimum processors for PD²
	PD2RelErr float64
	FFProcs   float64 // mean minimum processors for EDF-FF
	FFRelErr  float64

	// Figure 4 series (loss fractions at the same points).
	LossPfair float64
	LossEDF   float64
	LossFF    float64
}

// fig3Trial carries one task set's evaluation out of the worker pool.
type fig3Trial struct {
	ok                        bool
	pd2, ff                   int64
	lossP, lossE, lossF, util float64
}

// Fig3 sweeps total utilization for each task count and evaluates both
// schemes; the same pass yields Figure 4's loss decomposition. Every
// (N, step, trial) triple seeds its own generator, so trials are
// independent and the sweep parallelizes without changing a byte of
// output.
func Fig3(cfg Fig3Config) map[int][]Fig3Point {
	out := make(map[int][]Fig3Point, len(cfg.Ns))
	for _, n := range cfg.Ns {
		lo := float64(n) / 30
		hi := float64(n) / 3
		for step := 0; step < cfg.Steps; step++ {
			target := lo + (hi-lo)*float64(step)/float64(cfg.Steps-1)
			trials := make([]fig3Trial, cfg.SetsPerStep)
			parallel.For(cfg.Workers, cfg.SetsPerStep, func(s int) {
				g := taskgen.New(taskgen.SubSeed(cfg.Seed, seedFig3, int64(n), int64(step), int64(s)))
				set := mustSet(g.SetCapped("T", n, target, 0.9, Fig3PeriodsUS))
				delays := g.CacheDelays(set, 100)
				params := PaperParams(n, delays)
				if cfg.Models != nil {
					params = MeasuredParams(*cfg.Models, n, delays)
				}
				losses, pd2, ff := overhead.ComputeLosses(set, params)
				if pd2.Processors < 0 || ff.Processors < 0 {
					return // unschedulable at any count (rare)
				}
				trials[s] = fig3Trial{
					ok:  true,
					pd2: int64(pd2.Processors), ff: int64(ff.Processors),
					lossP: losses.Pfair, lossE: losses.EDF, lossF: losses.FF,
					util: set.TotalUtilization(),
				}
			})
			var pd2S, ffS, lossP, lossE, lossF, util stats.Sample
			for _, tr := range trials {
				if !tr.ok {
					continue
				}
				pd2S.AddInt(tr.pd2)
				ffS.AddInt(tr.ff)
				lossP.Add(tr.lossP)
				lossE.Add(tr.lossE)
				lossF.Add(tr.lossF)
				util.Add(tr.util)
			}
			out[n] = append(out[n], Fig3Point{
				N:         n,
				TotalUtil: util.Mean(),
				MeanUtil:  util.Mean() / float64(n),
				PD2Procs:  pd2S.Mean(),
				PD2RelErr: pd2S.RelErr99(),
				FFProcs:   ffS.Mean(),
				FFRelErr:  ffS.RelErr99(),
				LossPfair: lossP.Mean(),
				LossEDF:   lossE.Mean(),
				LossFF:    lossF.Mean(),
			})
		}
	}
	return out
}

// Crossover returns the total utilization at which PD² first needs no more
// processors than EDF-FF while utilization keeps growing (the point the
// paper highlights where packing loss overtakes PD² overheads), or −1 if
// the curves never cross in the sweep.
func Crossover(points []Fig3Point) float64 {
	// Find the last prefix position where EDF-FF is strictly better, then
	// report the first point after it where PD² is at least as good.
	crossed := -1.0
	ffWasBetter := false
	for _, p := range points {
		if p.FFProcs < p.PD2Procs {
			ffWasBetter = true
			crossed = -1
		} else if ffWasBetter && p.PD2Procs <= p.FFProcs && crossed < 0 {
			crossed = p.TotalUtil
		}
	}
	return crossed
}
