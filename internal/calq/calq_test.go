package calq

import (
	"math/rand"
	"sort"
	"testing"
)

func TestBitsetNext(t *testing.T) {
	b := newBitset(1 << 12)
	if got := b.next(0); got != -1 {
		t.Fatalf("next on empty bitset = %d, want -1", got)
	}
	for _, i := range []int{0, 1, 63, 64, 127, 4000, 4095} {
		b.set(i)
	}
	cases := []struct{ from, want int }{
		{0, 0}, {1, 1}, {2, 63}, {63, 63}, {64, 64}, {65, 127},
		{128, 4000}, {4001, 4095}, {4095, 4095},
	}
	for _, c := range cases {
		if got := b.next(c.from); got != c.want {
			t.Errorf("next(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	b.clear(63)
	if got := b.next(2); got != 64 {
		t.Errorf("after clear(63): next(2) = %d, want 64", got)
	}
	b.clear(4000)
	b.clear(4095)
	if got := b.next(128); got != -1 {
		t.Errorf("after clearing tail: next(128) = %d, want -1", got)
	}
}

func TestWheelDueBasic(t *testing.T) {
	w := NewWheel[int](100)
	items := make([]*Item[int], 10)
	for i := range items {
		items[i] = NewItem(i)
		w.Add(items[i], int64(i%3)) // slots 0,1,2
	}
	if w.Len() != 10 {
		t.Fatalf("Len = %d, want 10", w.Len())
	}
	for slot := int64(0); slot <= 2; slot++ {
		got := append([]int(nil), w.Due(slot)...)
		sort.Ints(got)
		var want []int
		for i := range items {
			if int64(i%3) == slot {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("Due(%d) = %v, want %v", slot, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Due(%d) = %v, want %v", slot, got, want)
			}
		}
	}
	if w.Len() != 0 {
		t.Fatalf("Len after draining = %d, want 0", w.Len())
	}
	if _, ok := w.NextOccupied(0); ok {
		t.Fatal("NextOccupied on empty wheel reported occupancy")
	}
}

// TestWheelWrapAround drives the drain cursor across several full
// revolutions of a small wheel — the hyperperiod case: the same buckets
// are reused round after round and a bucket shared by two rounds only
// yields the current round's items.
func TestWheelWrapAround(t *testing.T) {
	w := NewWheel[int64](40) // 128 buckets
	span := w.Span()
	// Arm a "task" per slot residue with period exactly one revolution,
	// so every Due hits a bucket that was filled in a previous round.
	const n = 16
	items := make([]*Item[int64], n)
	next := make([]int64, n)
	for i := range items {
		items[i] = NewItem(int64(i))
		next[i] = int64(i)
		w.Add(items[i], next[i])
	}
	for slot := int64(0); slot < 5*span; slot++ {
		due := w.Due(slot)
		for _, id := range due {
			if next[id] != slot {
				t.Fatalf("slot %d: item %d due, but its slot is %d", slot, id, next[id])
			}
			next[id] += span // re-arm exactly one revolution out
			w.Add(items[id], next[id])
		}
		if slot%span < n && len(due) != 1 {
			t.Fatalf("slot %d: %d items due, want 1", slot, len(due))
		}
	}
	if w.Len() != n {
		t.Fatalf("Len = %d, want %d", w.Len(), n)
	}
}

// TestWheelRoundMixing puts two items one revolution apart in the same
// bucket: NextOccupied must report the earlier one, and only it may be
// drained at its slot.
func TestWheelRoundMixing(t *testing.T) {
	w := NewWheel[string](64) // 128 buckets
	span := w.Span()
	near := NewItem("near")
	far := NewItem("far")
	w.Add(near, 5)
	w.Add(far, 5+span) // same bucket, next round
	if got, ok := w.NextOccupied(0); !ok || got != 5 {
		t.Fatalf("NextOccupied = %d,%v, want 5,true", got, ok)
	}
	due := w.Due(5)
	if len(due) != 1 || due[0] != "near" {
		t.Fatalf("Due(5) = %v, want [near]", due)
	}
	if got, ok := w.NextOccupied(6); !ok || got != 5+span {
		t.Fatalf("NextOccupied after drain = %d,%v, want %d,true", got, ok, 5+span)
	}
	if !far.Queued() || near.Queued() {
		t.Fatalf("queued flags: near=%v far=%v", near.Queued(), far.Queued())
	}
}

// TestWheelSparse checks NextOccupied across sparse, far-apart buckets,
// including candidates that force the bitmap probe to wrap.
func TestWheelSparse(t *testing.T) {
	w := NewWheel[int](1000) // 2048 buckets
	slots := []int64{3, 700, 1900, 2047}
	for i, s := range slots {
		w.Add(NewItem(i), s)
	}
	for _, c := range []struct{ from, want int64 }{
		{0, 3}, {3, 3}, {4, 700}, {701, 1900}, {1901, 2047}, {2047, 2047},
	} {
		if got, ok := w.NextOccupied(c.from); !ok || got != c.want {
			t.Errorf("NextOccupied(%d) = %d,%v, want %d,true", c.from, got, ok, c.want)
		}
	}
	// From past the last slot the probe wraps into the next revolution —
	// no item lives there, so the round check falls back to the exact
	// scan and still reports the true minimum.
	if got, ok := w.NextOccupied(2048); !ok || got != 3 {
		t.Errorf("NextOccupied(2048) = %d,%v, want 3,true (exact fallback)", got, ok)
	}
}

// TestWheelPastCurrentFuture models the §5.2 join/leave flows at the
// wheel level: joins arm timers in the current or future buckets, a
// leave removes one mid-flight, and an item armed for an already-passed
// slot (its bucket behind the cursor) is still collected — one
// revolution later, when the cursor next visits its bucket — rather
// than lost.
func TestWheelPastCurrentFuture(t *testing.T) {
	w := NewWheel[string](64)
	span := w.Span()
	cursor := int64(200)

	past := NewItem("past")
	current := NewItem("current")
	future := NewItem("future")
	leaver := NewItem("leaver")
	w.Add(past, cursor-10)
	w.Add(current, cursor)
	w.Add(future, cursor+17)
	w.Add(leaver, cursor+17)

	if due := w.Due(cursor); len(due) != 1 || due[0] != "current" {
		t.Fatalf("Due(cursor) = %v, want [current]", due)
	}
	w.Remove(leaver)
	if leaver.Queued() {
		t.Fatal("leaver still queued after Remove")
	}
	if due := w.Due(cursor + 17); len(due) != 1 || due[0] != "future" {
		t.Fatalf("Due(cursor+17) = %v, want [future]", due)
	}
	// The past item surfaces when its bucket comes around again; Due
	// treats any slot ≤ t as due.
	if due := w.Due(cursor - 10 + span); len(due) != 1 || due[0] != "past" {
		t.Fatalf("Due(past+span) = %v, want [past]", due)
	}
	if w.Len() != 0 {
		t.Fatalf("Len = %d, want 0", w.Len())
	}
}

// TestWheelEnsureSpanRehash grows a populated wheel and checks nothing is
// lost or duplicated.
func TestWheelEnsureSpanRehash(t *testing.T) {
	w := NewWheel[int](10) // 64 buckets
	var items []*Item[int]
	for i := 0; i < 50; i++ {
		it := NewItem(i)
		items = append(items, it)
		w.Add(it, int64(i*7))
	}
	w.EnsureSpan(5000) // 16384 buckets
	if w.Span() < 10000 {
		t.Fatalf("Span = %d, want ≥ 10000", w.Span())
	}
	if w.Len() != 50 {
		t.Fatalf("Len after rehash = %d, want 50", w.Len())
	}
	seen := map[int]bool{}
	for slot := int64(0); slot < 50*7; slot++ {
		for _, v := range w.Due(slot) {
			if seen[v] {
				t.Fatalf("item %d drained twice", v)
			}
			if int64(v*7) != slot {
				t.Fatalf("item %d drained at %d, want %d", v, slot, v*7)
			}
			seen[v] = true
		}
	}
	if len(seen) != 50 {
		t.Fatalf("drained %d items, want 50", len(seen))
	}
}

// TestWheelAgainstReference fuzzes the wheel against a trivial slice
// scan: the old O(n) structure the calendar queue replaces. Release
// order within a slot is unordered in both, so sets are compared.
func TestWheelAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := NewWheel[int](30) // small: force wrap-around and round mixing
	type ref struct {
		slot int64
		live bool
	}
	var refs []ref
	var items []*Item[int]
	cursor := int64(0)
	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(4); {
		case op == 0: // add at a random horizon, occasionally far out
			slot := cursor + rng.Int63n(40)
			if rng.Intn(10) == 0 {
				slot = cursor + rng.Int63n(500) // beyond the span: rounds mix
			}
			it := NewItem(len(items))
			items = append(items, it)
			refs = append(refs, ref{slot: slot, live: true})
			w.Add(it, slot)
		case op == 1 && len(items) > 0: // remove a random item (leave)
			i := rng.Intn(len(items))
			w.Remove(items[i])
			refs[i].live = false
		default: // advance the cursor and drain
			due := w.Due(cursor)
			got := map[int]bool{}
			for _, v := range due {
				got[v] = true
			}
			bucketMask := w.Span() - 1
			want := 0
			for i := range refs {
				if refs[i].live && refs[i].slot <= cursor && refs[i].slot&bucketMask == cursor&bucketMask {
					want++
					if !got[i] {
						t.Fatalf("step %d cursor %d: item %d (slot %d) not drained", step, cursor, i, refs[i].slot)
					}
					refs[i].live = false
				}
			}
			if len(got) != want {
				t.Fatalf("step %d cursor %d: drained %d items, want %d", step, cursor, len(got), want)
			}
			cursor++
		}
		live := 0
		for i := range refs {
			if refs[i].live {
				live++
			}
		}
		if w.Len() != live {
			t.Fatalf("step %d: Len = %d, reference has %d live", step, w.Len(), live)
		}
	}
}

type qv struct {
	key int64
	id  int
}

func qvLess(a, b qv) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.id < b.id
}

func TestMinQueuePopOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := NewMinQueue[qv](100, qvLess)
	var want []qv
	for i := 0; i < 300; i++ {
		v := qv{key: rng.Int63n(150), id: i}
		q.Add(NewEntry(v), v.key)
		want = append(want, v)
	}
	sort.Slice(want, func(i, j int) bool { return qvLess(want[i], want[j]) })
	for i, wv := range want {
		if got := q.PopMin(); got != wv {
			t.Fatalf("pop %d = %+v, want %+v", i, got, wv)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
}

// TestMinQueueRoundMixing pushes keys spanning many revolutions of a
// deliberately tiny queue, interleaved with pops: the exact fallback
// must preserve the global (key, less) order.
func TestMinQueueRoundMixing(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	q := NewMinQueue[qv](4, qvLess) // 64 buckets; keys will span thousands
	var entries []*Entry[qv]
	var live []qv
	popAll := func() {
		sort.Slice(live, func(i, j int) bool { return qvLess(live[i], live[j]) })
		for i, wv := range live {
			if got := q.PopMin(); got != wv {
				t.Fatalf("pop %d = %+v, want %+v", i, got, wv)
			}
		}
		live = live[:0]
	}
	for round := 0; round < 20; round++ {
		for i := 0; i < 50; i++ {
			v := qv{key: rng.Int63n(5000), id: round*100 + i}
			e := NewEntry(v)
			entries = append(entries, e)
			q.Add(e, v.key)
			live = append(live, v)
		}
		// Remove a few arbitrary live entries.
		for i := 0; i < 10; i++ {
			j := rng.Intn(len(entries))
			if entries[j].Queued() {
				v := entries[j].Value
				q.Remove(entries[j])
				for k := range live {
					if live[k] == v {
						live = append(live[:k], live[k+1:]...)
						break
					}
				}
			}
		}
		popAll()
	}
}

// TestMinQueueTardyKey checks the lo cursor: after popping up to a high
// key, adding a lower key (a tardy subtask) must rewind the cursor so
// the new minimum pops first.
func TestMinQueueTardyKey(t *testing.T) {
	q := NewMinQueue[qv](64, qvLess)
	q.Add(NewEntry(qv{key: 500, id: 1}), 500)
	q.Add(NewEntry(qv{key: 600, id: 2}), 600)
	if got := q.PopMin(); got.key != 500 {
		t.Fatalf("first pop key = %d, want 500", got.key)
	}
	q.Add(NewEntry(qv{key: 100, id: 3}), 100) // behind the cursor
	if got := q.PopMin(); got.key != 100 {
		t.Fatalf("tardy pop key = %d, want 100", got.key)
	}
	if got := q.PopMin(); got.key != 600 {
		t.Fatalf("final pop key = %d, want 600", got.key)
	}
}

func TestMinQueueEnsureSpanRehash(t *testing.T) {
	q := NewMinQueue[qv](8, qvLess)
	var want []qv
	for i := 0; i < 100; i++ {
		v := qv{key: int64(i * 13 % 97), id: i}
		q.Add(NewEntry(v), v.key)
		want = append(want, v)
	}
	q.EnsureSpan(4000)
	if q.Span() < 8000 {
		t.Fatalf("Span = %d, want ≥ 8000", q.Span())
	}
	sort.Slice(want, func(i, j int) bool { return qvLess(want[i], want[j]) })
	for i, wv := range want {
		if got := q.PopMin(); got != wv {
			t.Fatalf("pop %d after rehash = %+v, want %+v", i, got, wv)
		}
	}
}
