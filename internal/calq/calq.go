// Package calq provides the bucketed priority structures behind the
// scheduler's sublinear slot hot path: a calendar queue (timing wheel)
// for release timers and a deadline-bucketed min-queue for the eligible
// set.
//
// Both structures exploit the same property of Pfair/periodic workloads:
// the keys flowing through the queues — pseudo-release slots and
// pseudo-deadlines — are dense, near-monotone integers whose live span is
// bounded by the largest task period. Hashing a key into key mod W over a
// power-of-two W buckets therefore keeps each bucket tiny, so insertion
// and removal touch a handful of entries instead of sifting an O(log n)
// path through one global binary heap (the structure Section 4 of the
// paper measures, and the dominant cost in the Fig2 profiles).
//
// Elements carry persistent handles (Item, Entry) allocated once per task
// at admission, and the buckets are intrusive — doubly-linked lists in
// the wheel, pairing heaps in the min-queue — so requeueing an element
// is pure pointer surgery: the steady-state hot path performs no
// allocation at all, not even amortized slice growth. The only growable
// buffer is the wheel's drain scratch, bounded by one entry per task and
// pre-sized via Reserve at admission.
//
// Neither structure assumes keys stay within the configured span: a key
// far outside it only degrades lookups to an exact scan over occupied
// buckets. Correctness never depends on the span, only performance.
package calq

import "math/bits"

// minBuckets is the smallest wheel size; spans below it round up so the
// occupancy bitset always holds whole 64-bit words.
const minBuckets = 64

// DefaultSpanCap is the bucket-table ceiling schedulers pass to
// EnsureSpan: spans beyond it trade real memory (a 2·span pointer table)
// for avoiding round mixing that the structures already handle correctly
// by exact scan. Callers with longer-spanning keys should clamp to this
// (slot-driven cores, where a revolution still amortizes) or keep a
// comparison-based structure (sparse event-driven simulators).
const DefaultSpanCap = 1 << 14

// bitset is a two-level occupancy bitmap over bucket indices: one bit per
// bucket, plus a summary bit per 64-bucket word. next runs in O(W/4096)
// word probes worst case, a few loads in practice.
type bitset struct {
	words   []uint64
	summary []uint64
}

func newBitset(n int) bitset {
	nw := (n + 63) / 64
	return bitset{
		words:   make([]uint64, nw),
		summary: make([]uint64, (nw+63)/64),
	}
}

//pfair:hotpath
func (b *bitset) set(i int) {
	b.words[i>>6] |= 1 << (uint(i) & 63)
	b.summary[i>>12] |= 1 << (uint(i>>6) & 63)
}

//pfair:hotpath
func (b *bitset) clear(i int) {
	w := i >> 6
	b.words[w] &^= 1 << (uint(i) & 63)
	if b.words[w] == 0 {
		b.summary[w>>6] &^= 1 << (uint(w) & 63)
	}
}

// next returns the smallest set bit ≥ i, or −1 if none.
//
//pfair:hotpath
func (b *bitset) next(i int) int {
	nw := len(b.words)
	w := i >> 6
	if w >= nw {
		return -1
	}
	if rest := b.words[w] >> (uint(i) & 63); rest != 0 {
		return i + bits.TrailingZeros64(rest)
	}
	w++
	for w < nw {
		sw := w >> 6
		rest := b.summary[sw] >> (uint(w) & 63)
		if rest == 0 {
			w = (sw + 1) << 6
			continue
		}
		w += bits.TrailingZeros64(rest)
		return w<<6 | bits.TrailingZeros64(b.words[w])
	}
	return -1
}

// spanBuckets returns the wheel size for a key span: the smallest power
// of two at least twice the span (so a full span of live keys occupies at
// most half a revolution and rounds rarely mix), floored at minBuckets.
func spanBuckets(span int64) int64 {
	if span < 0 {
		span = 0
	}
	n := int64(minBuckets)
	for n < 2*span {
		n <<= 1
	}
	return n
}

// Item is one element of a Wheel, allocated once (NewItem) and reused for
// every insertion. It embeds its bucket's doubly-linked list links, so
// queueing and dequeueing never allocate.
type Item[T any] struct {
	Value  T
	slot   int64
	bucket int32
	queued bool
	next   *Item[T]
	prev   *Item[T]
}

// NewItem returns an unqueued item carrying v.
func NewItem[T any](v T) *Item[T] { return &Item[T]{Value: v} }

// Queued reports whether the item is currently in a wheel.
func (it *Item[T]) Queued() bool { return it.queued }

// Slot returns the absolute slot the item was queued under (meaningful
// while Queued).
func (it *Item[T]) Slot() int64 { return it.slot }

// Wheel is a calendar queue keyed by absolute slot: bucket slot mod W
// holds every queued item for that residue as an unordered intrusive
// list. Due(t) drains the single bucket for slot t, so releasing the
// subtasks due at a slot costs O(bucket) pointer unlinks instead of
// O(log n) heap pops — the calendar-queue half of the sublinear hot
// path.
type Wheel[T any] struct {
	mask    int64
	buckets []*Item[T] // bucket heads
	occ     bitset
	n       int
	due     []T // scratch returned by Due, reused across calls
}

// NewWheel returns an empty wheel sized for keys spanning at most span
// slots ahead of the drain cursor (typically the maximum task period).
func NewWheel[T any](span int64) *Wheel[T] {
	w := &Wheel[T]{}
	w.grow(spanBuckets(span))
	return w
}

// Span returns the current bucket count W.
func (w *Wheel[T]) Span() int64 { return w.mask + 1 }

// Len returns the number of queued items.
//
//pfair:hotpath
func (w *Wheel[T]) Len() int { return w.n }

// Reserve grows the drain scratch to hold n items, so Due stays
// allocation-free as long as no more than n items are ever due at once
// (one timer per task makes the task count a natural bound). Growth is
// geometric: admission calls Reserve once per join with n one larger
// each time, and growing to exactly n would reallocate and copy on
// every call — quadratic across a large admission burst. Cold path:
// call at admission.
func (w *Wheel[T]) Reserve(n int) {
	if cap(w.due) < n {
		if min := 2 * cap(w.due); n < min {
			n = min
		}
		due := make([]T, 0, n)
		w.due = append(due, w.due...)
	}
}

// EnsureSpan grows the wheel (rehashing every queued item) so that span
// fits within half a revolution. Shrinking never happens. Cold path:
// called at admission time when a longer-period task joins.
func (w *Wheel[T]) EnsureSpan(span int64) {
	if need := spanBuckets(span); need > w.mask+1 {
		w.grow(need)
	}
}

func (w *Wheel[T]) grow(nb int64) {
	old := w.buckets
	w.mask = nb - 1
	w.buckets = make([]*Item[T], nb)
	w.occ = newBitset(int(nb))
	w.n = 0
	for _, head := range old {
		for it := head; it != nil; {
			next := it.next
			it.queued = false
			it.next, it.prev = nil, nil
			w.Add(it, it.slot)
			it = next
		}
	}
}

// Add queues the item under the given absolute slot. It panics if the
// item is already queued.
//
//pfair:hotpath
func (w *Wheel[T]) Add(it *Item[T], slot int64) {
	if it.queued {
		//pfair:allowpanic API misuse, per the doc comment; mirrors heap.PushItem
		panic("calq: Add of an item that is already in a wheel")
	}
	b := slot & w.mask
	it.slot = slot
	it.bucket = int32(b)
	it.queued = true
	head := w.buckets[b]
	it.next = head
	it.prev = nil
	if head != nil {
		head.prev = it
	} else {
		w.occ.set(int(b))
	}
	w.buckets[b] = it
	w.n++
}

// Remove dequeues the item. It is a no-op if the item is not queued.
//
//pfair:hotpath
func (w *Wheel[T]) Remove(it *Item[T]) {
	if !it.queued {
		return
	}
	w.unlink(it)
	w.n--
}

//pfair:hotpath
func (w *Wheel[T]) unlink(it *Item[T]) {
	if it.prev != nil {
		it.prev.next = it.next
	} else {
		w.buckets[it.bucket] = it.next
		if it.next == nil {
			w.occ.clear(int(it.bucket))
		}
	}
	if it.next != nil {
		it.next.prev = it.prev
	}
	it.next, it.prev = nil, nil
	it.queued = false
}

// Due drains and returns every queued item whose slot is ≤ t, in
// unspecified order. Only the single bucket t mod W is inspected: with
// the wheel sized to the workload's span and a cursor that visits every
// slot (the slot-driven core scheduler) or every armed slot (the
// event-driven simulators), that bucket contains exactly the due items.
// Items of a future round sharing the bucket stay queued. The returned
// slice is internal scratch, valid until the next Due call; size it with
// Reserve to keep this allocation-free.
//
//pfair:hotpath
func (w *Wheel[T]) Due(t int64) []T {
	w.due = w.due[:0]
	for it := w.buckets[t&w.mask]; it != nil; {
		next := it.next
		if it.slot <= t {
			w.unlink(it)
			w.n--
			w.due = append(w.due, it.Value)
		}
		it = next
	}
	return w.due
}

// NextOccupied returns the smallest slot among all queued items and
// whether the wheel is non-empty. The common case — every queued slot
// within one revolution ahead of from — costs one bitmap probe plus one
// bucket scan; round mixing (or slots behind from) is detected by
// comparing the candidate against the bucket minimum and answered by an
// exact scan over the occupied buckets.
//
//pfair:hotpath
func (w *Wheel[T]) NextOccupied(from int64) (int64, bool) {
	if w.n == 0 {
		return 0, false
	}
	start := from & w.mask
	b := w.occ.next(int(start))
	var cand int64
	if b >= 0 {
		cand = from + (int64(b) - start)
	} else {
		b = w.occ.next(0)
		cand = from + (int64(b) - start) + w.mask + 1
	}
	if min := w.bucketMin(b); min != cand {
		// An item in this bucket belongs to another round, so an
		// occupied bucket elsewhere may hold a smaller slot: fall back
		// to the exact scan.
		return w.scanMin(), true
	}
	return cand, true
}

// bucketMin returns the smallest slot in (non-empty) bucket b.
//
//pfair:hotpath
func (w *Wheel[T]) bucketMin(b int) int64 {
	it := w.buckets[b]
	min := it.slot
	for it = it.next; it != nil; it = it.next {
		if it.slot < min {
			min = it.slot
		}
	}
	return min
}

// scanMin returns the smallest slot over every occupied bucket.
//
//pfair:hotpath
func (w *Wheel[T]) scanMin() int64 {
	b := w.occ.next(0)
	min := w.bucketMin(b)
	for {
		b = w.occ.next(b + 1)
		if b < 0 {
			return min
		}
		if m := w.bucketMin(b); m < min {
			min = m
		}
	}
}

// Entry is one element of a MinQueue, allocated once (NewEntry) and
// reused for every insertion. It embeds its bucket's pairing-heap links
// (child: first child; sib: next younger sibling; prev: parent for a
// first child, else the elder sibling), so queueing and dequeueing never
// allocate.
type Entry[T any] struct {
	Value  T
	key    int64
	bucket int32
	queued bool
	child  *Entry[T]
	sib    *Entry[T]
	prev   *Entry[T]
}

// NewEntry returns an unqueued entry carrying v.
func NewEntry[T any](v T) *Entry[T] { return &Entry[T]{Value: v} }

// Queued reports whether the entry is currently in a queue.
func (e *Entry[T]) Queued() bool { return e.queued }

// Key returns the key the entry was queued under (meaningful while
// Queued).
func (e *Entry[T]) Key() int64 { return e.key }

// MinQueue is a bucketed priority queue: entries hash by integer key
// (pseudo-deadline) into key mod W buckets, each bucket an intrusive
// pairing heap ordered by (key, less). PopMin locates the minimum-key
// bucket by bitmap probe from a monotone lower-bound cursor and pops
// that bucket's root, so extraction restructures one deadline-residue
// class — a handful of entries — rather than the whole eligible set.
//
// The pop order is exactly that of a single global heap ordered by
// (key, less): keys separate buckets, and a bucket's root is its
// (key, less)-minimum. With a total less (the scheduler's priority order
// ends in a task-id comparison) the extraction sequence is therefore
// bit-identical to the legacy binary heap's, which is what lets the
// scheduler swap structures without changing one scheduling decision.
type MinQueue[T any] struct {
	less    func(a, b T) bool
	mask    int64
	buckets []*Entry[T] // pairing-heap roots
	occ     bitset
	n       int
	// lo is a monotone conservative cursor: lo ≤ the minimum queued key
	// whenever the queue is non-empty. Add lowers it, PopMin advances it
	// to the popped key.
	lo int64
}

// NewMinQueue returns an empty queue for keys spanning at most span and
// ties ordered by less. less must be consistent with the key (it is
// consulted only between entries of equal key) and total if deterministic
// pop order is required.
func NewMinQueue[T any](span int64, less func(a, b T) bool) *MinQueue[T] {
	q := &MinQueue[T]{less: less}
	q.grow(spanBuckets(span))
	return q
}

// Span returns the current bucket count W.
func (q *MinQueue[T]) Span() int64 { return q.mask + 1 }

// Len returns the number of queued entries.
//
//pfair:hotpath
func (q *MinQueue[T]) Len() int { return q.n }

// EnsureSpan grows the queue (rehashing every entry) so that span fits
// within half a revolution. Cold path: admission time only.
func (q *MinQueue[T]) EnsureSpan(span int64) {
	if need := spanBuckets(span); need > q.mask+1 {
		q.grow(need)
	}
}

func (q *MinQueue[T]) grow(nb int64) {
	old := q.buckets
	q.mask = nb - 1
	q.buckets = make([]*Entry[T], nb)
	q.occ = newBitset(int(nb))
	q.n = 0
	for _, root := range old {
		q.readd(root)
	}
}

// readd re-inserts the subtree rooted at e into the (fresh) bucket
// table, iteratively: children are walked before the node's links are
// cleared. Cold path, used by grow only.
func (q *MinQueue[T]) readd(e *Entry[T]) {
	for e != nil {
		next := e.sib
		child := e.child
		e.queued = false
		e.child, e.sib, e.prev = nil, nil, nil
		q.Add(e, e.key)
		q.readd(child)
		e = next
	}
}

// entryLess orders entries within a bucket: by key, ties by the caller's
// less. Comparing keys first keeps different rounds separated and skips
// the indirect call for the common distinct-key case.
//
//pfair:hotpath
func (q *MinQueue[T]) entryLess(a, b *Entry[T]) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return q.less(a.Value, b.Value)
}

// meld links the two pairing-heap roots, returning the smaller as the
// new root with the larger as its first child.
//
//pfair:hotpath
func (q *MinQueue[T]) meld(a, b *Entry[T]) *Entry[T] {
	if q.entryLess(b, a) {
		a, b = b, a
	}
	b.prev = a
	b.sib = a.child
	if a.child != nil {
		a.child.prev = b
	}
	a.child = b
	return a
}

// mergePairs collapses a detached sibling list into one tree by the
// standard two-pass scheme (pair left to right, then meld right to
// left), implemented with in-place pointer reversal so no stack or
// scratch is needed.
//
//pfair:hotpath
func (q *MinQueue[T]) mergePairs(first *Entry[T]) *Entry[T] {
	if first == nil {
		return nil
	}
	// Pass 1: meld adjacent pairs, chaining the results into a reversed
	// list through sib.
	var paired *Entry[T]
	for first != nil {
		a := first
		b := a.sib
		if b == nil {
			a.sib, a.prev = paired, nil
			paired = a
			break
		}
		next := b.sib
		a.sib, a.prev = nil, nil
		b.sib, b.prev = nil, nil
		m := q.meld(a, b)
		m.sib = paired
		paired = m
		first = next
	}
	// Pass 2: the list is already right-to-left; fold it.
	root := paired
	paired = paired.sib
	root.sib = nil
	for paired != nil {
		next := paired.sib
		paired.sib = nil
		root = q.meld(root, paired)
		paired = next
	}
	root.prev = nil
	return root
}

// Add queues the entry under key. It panics if the entry is already
// queued.
//
//pfair:hotpath
func (q *MinQueue[T]) Add(e *Entry[T], key int64) {
	if e.queued {
		//pfair:allowpanic API misuse, per the doc comment; mirrors heap.PushItem
		panic("calq: Add of an entry that is already in a queue")
	}
	b := key & q.mask
	e.key = key
	e.bucket = int32(b)
	e.queued = true
	e.child, e.sib, e.prev = nil, nil, nil
	if root := q.buckets[b]; root != nil {
		q.buckets[b] = q.meld(root, e)
	} else {
		q.buckets[b] = e
		q.occ.set(int(b))
	}
	if q.n == 0 || key < q.lo {
		q.lo = key
	}
	q.n++
}

// Remove dequeues the entry. It is a no-op if the entry is not queued.
//
//pfair:hotpath
func (q *MinQueue[T]) Remove(e *Entry[T]) {
	if !e.queued {
		return
	}
	b := int(e.bucket)
	if q.buckets[b] == e {
		q.buckets[b] = q.mergePairs(e.child)
		if q.buckets[b] == nil {
			q.occ.clear(b)
		}
	} else {
		// Detach e from its parent's child list, collapse its children
		// into one subtree, and meld that back with the root.
		if e.prev.child == e {
			e.prev.child = e.sib
		} else {
			e.prev.sib = e.sib
		}
		if e.sib != nil {
			e.sib.prev = e.prev
		}
		if sub := q.mergePairs(e.child); sub != nil {
			q.buckets[b] = q.meld(q.buckets[b], sub)
		}
	}
	e.child, e.sib, e.prev = nil, nil, nil
	e.queued = false
	q.n--
}

// PopMin removes and returns the minimum entry under (key, less). It
// panics if the queue is empty.
//
//pfair:hotpath
func (q *MinQueue[T]) PopMin() T {
	if q.n == 0 {
		//pfair:allowpanic API misuse, per the doc comment; mirrors heap.Pop
		panic("calq: PopMin of an empty queue")
	}
	b := q.minBucket()
	e := q.buckets[b]
	q.buckets[b] = q.mergePairs(e.child)
	if q.buckets[b] == nil {
		q.occ.clear(b)
	}
	e.child, e.sib, e.prev = nil, nil, nil
	e.queued = false
	q.n--
	q.lo = e.key
	return e.Value
}

// PeekMin returns the minimum entry under (key, less) and its key
// without removing it, or ok=false when the queue is empty. It performs
// the same bucket probe as PopMin but no heap surgery, so sharded
// consumers (internal/shard) can run a head tournament across queues and
// pop only the winner.
//
//pfair:hotpath
func (q *MinQueue[T]) PeekMin() (v T, key int64, ok bool) {
	if q.n == 0 {
		return v, 0, false
	}
	e := q.buckets[q.minBucket()]
	return e.Value, e.key, true
}

// minBucket returns the index of the bucket holding the minimum-key
// entry. It probes the occupancy bitmap circularly from the lo cursor,
// accepting the first occupied bucket whose root key matches the
// cursor-derived candidate key (keys within one revolution of lo make
// this the common, O(1)-probe case). A full revolution without a match
// means the live keys span more than one round: fall back to the exact
// scan over occupied buckets.
//
//pfair:hotpath
func (q *MinQueue[T]) minBucket() int {
	d := q.lo
	w := q.mask + 1
	for scanned := int64(0); scanned <= w; {
		start := d & q.mask
		b := int64(q.occ.next(int(start)))
		if b < 0 {
			// Rest of this revolution is empty; wrap to bucket 0.
			scanned += w - start
			d += w - start
			continue
		}
		scanned += b - start
		d += b - start
		if q.buckets[b].key == d {
			return int(b)
		}
		// Occupied, but by another round's keys: skip past it.
		scanned++
		d++
	}
	return q.scanMinBucket()
}

// scanMinBucket returns the bucket with the smallest root key by
// scanning every occupied bucket. Roots are per-bucket minima and
// distinct buckets hold distinct key residues, so the smallest root is
// the global minimum and the answer is unique.
//
//pfair:hotpath
func (q *MinQueue[T]) scanMinBucket() int {
	b := q.occ.next(0)
	best := b
	min := q.buckets[b].key
	for {
		b = q.occ.next(b + 1)
		if b < 0 {
			return best
		}
		if k := q.buckets[b].key; k < min {
			min, best = k, b
		}
	}
}
