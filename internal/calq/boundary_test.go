package calq

import "testing"

// This file pins the span-cap boundary audited for PR 7: a key landing
// exactly at now + DefaultSpanCap must behave identically to any other
// in-span key. The geometry that makes it safe: spanBuckets(span) returns
// W ≥ 2·span, and both the wheel's candidate check and the min-queue's
// cursor probe only degrade to the exact scan when two live keys collide
// in a bucket, which needs a spread ≥ W = 2·DefaultSpanCap — twice the
// boundary distance. So the boundary key stays on the bucket path, and
// even a span-cap-clamped structure holding keys up to 2·cap−1 apart
// never mixes rounds. These tests fail if anyone tightens spanBuckets to
// W ≥ span (off-by-one territory) or weakens the drain/probe guards.

func TestSpanBucketsAtCap(t *testing.T) {
	cases := []struct{ span, want int64 }{
		{0, minBuckets},
		{minBuckets / 2, minBuckets},
		{minBuckets/2 + 1, 2 * minBuckets},
		{DefaultSpanCap - 1, 2 * DefaultSpanCap}, // 2·(cap−1) rounds up
		{DefaultSpanCap, 2 * DefaultSpanCap},     // exactly 2·cap, no rounding
		{DefaultSpanCap + 1, 4 * DefaultSpanCap},
	}
	for _, c := range cases {
		if got := spanBuckets(c.span); got != c.want {
			t.Fatalf("spanBuckets(%d) = %d, want %d", c.span, got, c.want)
		}
	}
	// The invariant every boundary argument below rests on: a key at
	// exactly span ahead sits half a revolution away, never a full one.
	if w := spanBuckets(DefaultSpanCap); DefaultSpanCap >= w {
		t.Fatalf("cap %d must be < one revolution (W=%d)", int64(DefaultSpanCap), w)
	}
}

// TestWheelSpanCapBoundary drives a cap-sized wheel with items at now,
// exactly now+cap, and now+W (the first slot that genuinely shares a
// bucket with now). The boundary item must be found and drained like any
// in-span item; the next-round item must survive the shared-bucket drain.
func TestWheelSpanCapBoundary(t *testing.T) {
	const now = int64(5)
	w := NewWheel[int64](DefaultSpanCap)
	rev := w.Span()
	if rev != 2*DefaultSpanCap {
		t.Fatalf("Span() = %d, want %d", rev, int64(2*DefaultSpanCap))
	}
	at := func(slot int64) *Item[int64] {
		it := NewItem(slot)
		w.Add(it, slot)
		return it
	}
	a := at(now)
	b := at(now + DefaultSpanCap) // the audited boundary key
	c := at(now + rev)            // same bucket as a, one round later

	if a.bucket != c.bucket {
		t.Fatalf("items %d and %d must share a bucket (got %d and %d)", now, now+rev, a.bucket, c.bucket)
	}
	if a.bucket == b.bucket {
		t.Fatalf("boundary key %d must NOT share the bucket of %d", now+DefaultSpanCap, now)
	}

	if min, ok := w.NextOccupied(now); !ok || min != now {
		t.Fatalf("NextOccupied(%d) = %d,%v, want %d,true", now, min, ok, now)
	}
	if due := w.Due(now); len(due) != 1 || due[0] != now {
		t.Fatalf("Due(%d) = %v, want exactly [%d]; the round-(now+W) bucket mate must stay queued", now, due, now)
	}
	if !c.Queued() {
		t.Fatal("item one full revolution ahead was drained a round early")
	}

	// The boundary item is now the minimum; the probe must locate it even
	// though a mixed-round bucket (c's) is also occupied.
	if min, ok := w.NextOccupied(now + 1); !ok || min != now+DefaultSpanCap {
		t.Fatalf("NextOccupied(%d) = %d,%v, want boundary slot %d,true", now+1, min, ok, now+DefaultSpanCap)
	}
	if due := w.Due(now + DefaultSpanCap); len(due) != 1 || due[0] != now+DefaultSpanCap {
		t.Fatalf("Due at the boundary slot = %v, want exactly [%d]", due, now+DefaultSpanCap)
	}
	if b.Queued() {
		t.Fatal("boundary item still queued after its drain")
	}

	// Only the next-round item remains; the wrap-around probe and the
	// full-revolution drain must both see it.
	if min, ok := w.NextOccupied(now + DefaultSpanCap + 1); !ok || min != now+rev {
		t.Fatalf("wrapped NextOccupied = %d,%v, want %d,true", min, ok, now+rev)
	}
	if due := w.Due(now + rev); len(due) != 1 || due[0] != now+rev {
		t.Fatalf("Due one revolution later = %v, want exactly [%d]", due, now+rev)
	}
	if w.Len() != 0 {
		t.Fatalf("wheel not empty at end: %d items", w.Len())
	}
}

// TestMinQueueSpanCapBoundary mirrors the wheel test for the ready-side
// structure: keys at lo, exactly lo+cap, and lo+W must pop in key order,
// with the boundary key resolved by the cursor probe (its root key
// matches the candidate) and the full-revolution key resolved by the
// exact-scan fallback (same bucket as lo, key ≠ candidate).
func TestMinQueueSpanCapBoundary(t *testing.T) {
	const lo = int64(3)
	q := NewMinQueue[int64](DefaultSpanCap, func(a, b int64) bool { return a < b })
	rev := q.Span()
	add := func(key int64) *Entry[int64] {
		e := NewEntry(key)
		q.Add(e, key)
		return e
	}
	ea := add(lo)
	eb := add(lo + DefaultSpanCap)
	ec := add(lo + rev)
	if ea.bucket != ec.bucket || ea.bucket == eb.bucket {
		t.Fatalf("bucket geometry wrong: a=%d b=%d c=%d", ea.bucket, eb.bucket, ec.bucket)
	}

	// White-box: with lo at the cursor, the probe must resolve the
	// boundary configuration without scanning past it — bucket lo holds
	// root key lo (candidate match on the first probe).
	if b := q.minBucket(); b != int(lo&q.mask) {
		t.Fatalf("minBucket = %d, want %d", b, lo&q.mask)
	}

	for i, want := range []int64{lo, lo + DefaultSpanCap, lo + rev} {
		if v, key, ok := q.PeekMin(); !ok || v != want || key != want {
			t.Fatalf("PeekMin #%d = %d/%d,%v, want %d", i, v, key, ok, want)
		}
		if got := q.PopMin(); got != want {
			t.Fatalf("PopMin #%d = %d, want %d", i, got, want)
		}
	}
	if _, _, ok := q.PeekMin(); ok || q.Len() != 0 {
		t.Fatal("queue must be empty after draining the boundary triple")
	}
}

// TestMinQueueCapClampedSpread pins the clamp seam the scheduler relies
// on: a queue built with the capped span still orders keys spread wider
// than the cap (up to and beyond a full revolution) correctly, because
// mixing only degrades the probe to the exact scan, never the order.
func TestMinQueueCapClampedSpread(t *testing.T) {
	q := NewMinQueue[int64](DefaultSpanCap, func(a, b int64) bool { return a < b })
	rev := q.Span()
	keys := []int64{
		0, 1,
		DefaultSpanCap - 1, DefaultSpanCap, DefaultSpanCap + 1,
		rev - 1, rev, rev + 1, // around one full revolution: mixed rounds
		2*rev + 7, // two rounds out
	}
	for _, k := range keys {
		q.Add(NewEntry(k), k)
	}
	prev := int64(-1)
	for q.Len() > 0 {
		got := q.PopMin()
		if got <= prev {
			t.Fatalf("pop order broke at %d after %d", got, prev)
		}
		prev = got
	}
	if prev != 2*rev+7 {
		t.Fatalf("last popped = %d, want %d", prev, 2*rev+7)
	}
}
