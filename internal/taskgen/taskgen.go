// Package taskgen generates the random task sets of the paper's
// experiments, reproducibly from explicit seeds.
//
// The paper's set-ups:
//
//   - Figure 2: for each task count N, 1000 random sets with total
//     utilization at most the processor count, scheduled for 10⁶ quanta.
//   - Figures 3–4: for each N, sets at a controlled total utilization
//     swept from N/30 to N/3; quantum 1 ms, periods multiples of the
//     quantum; per-task cache delays D(T) drawn "randomly between 0 µs and
//     100 µs" with mean 33.3 µs.
//
// Individual utilizations are drawn with the UUniFast algorithm (uniform
// over the simplex of utilizations summing to the target), the standard
// generator in the schedulability-evaluation literature. The paper does
// not name its generator or period distribution; both are configurable
// here and the defaults are documented in EXPERIMENTS.md.
//
// A mean of 33.3 on [0, 100] is matched with the triangular-like density
// f(x) ∝ (1 − x/100), i.e. X = 100·(1 − √U); the paper gives only the
// range and the mean, which this density satisfies exactly.
package taskgen

import (
	"fmt"
	"math"
	"math/rand"

	"pfair/internal/task"
)

// DefaultPeriodsUS is the default period menu for the overhead
// experiments, in microseconds: multiples of the 1 ms quantum spanning the
// 10 ms–1 s range typical of the multimedia workloads the paper motivates
// Pfair with.
var DefaultPeriodsUS = []int64{10000, 20000, 40000, 50000, 100000, 200000, 400000, 500000, 1000000}

// DefaultPeriodsSlots is the default period menu for slot-level (Pfair)
// simulations, in quanta.
var DefaultPeriodsSlots = []int64{10, 20, 40, 50, 100, 200, 400, 500, 1000}

// Generator produces reproducible random workloads.
type Generator struct {
	rng *rand.Rand
}

// New returns a generator seeded deterministically.
func New(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// SubSeed derives an independent stream seed from a base seed and a path
// of indices (experiment tag, data-point key, trial number, …). The
// parallel experiment harness gives every trial its own generator seeded
// by SubSeed(base, …, trial), so trial t's workload no longer depends on
// how many random draws trials 0…t−1 made — the property that makes the
// fan-out order irrelevant and the parallel output byte-identical to the
// serial output. Mixing uses the splitmix64 finalizer, whose avalanche
// keeps adjacent indices uncorrelated.
func SubSeed(base int64, parts ...int64) int64 {
	h := splitmix64(uint64(base))
	for _, p := range parts {
		h = splitmix64(h ^ uint64(p))
	}
	return int64(h)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// UUniFast returns n utilizations that sum exactly to total, uniformly
// distributed over the simplex (Bini & Buttazzo). With cap > 0, vectors
// containing a value above cap are resampled; if resampling keeps failing
// (high total relative to n·cap), the last draw is repaired by clamping
// the over-cap values and redistributing the excess to the others in
// proportion to their headroom, preserving the exact total. It returns an
// error if total < 0 or total > n·cap, which no capped vector can satisfy:
// infeasible parameters are an input condition (the fuzzer probes them),
// not a programmer error.
func (g *Generator) UUniFast(n int, total, cap float64) ([]float64, error) {
	if n <= 0 {
		return nil, nil
	}
	if total < 0 {
		return nil, fmt.Errorf("taskgen: negative total utilization %v", total)
	}
	if cap > 0 && total > float64(n)*cap+1e-9 {
		return nil, fmt.Errorf("taskgen: total utilization %v exceeds n·cap = %d·%v", total, n, cap)
	}
	draw := func() []float64 {
		us := make([]float64, n)
		sum := total
		for i := 0; i < n-1; i++ {
			next := sum * math.Pow(g.rng.Float64(), 1/float64(n-1-i))
			us[i] = sum - next
			sum = next
		}
		us[n-1] = sum
		return us
	}
	within := func(us []float64) bool {
		for _, u := range us {
			if u > cap {
				return false
			}
		}
		return true
	}
	var us []float64
	for attempt := 0; attempt < 64; attempt++ {
		us = draw()
		if cap <= 0 || within(us) {
			return us, nil
		}
	}
	// Repair: one headroom-proportional redistribution suffices, since
	// the total excess never exceeds the total headroom (total ≤ n·cap).
	excess, headroom := 0.0, 0.0
	for i, u := range us {
		if u > cap {
			excess += u - cap
			us[i] = cap
		} else {
			headroom += cap - u
		}
	}
	if excess > 0 && headroom > 0 {
		for i, u := range us {
			if u < cap {
				us[i] = u + excess*(cap-u)/headroom
			}
		}
	}
	return us, nil
}

// Set generates n tasks whose utilizations sum approximately to totalUtil,
// with periods drawn uniformly from the menu and integer costs
// cost = clamp(round(u·p), 1, p). Rounding perturbs the total slightly;
// callers needing the exact figure should read it off the returned set.
func (g *Generator) Set(prefix string, n int, totalUtil float64, periods []int64) (task.Set, error) {
	return g.SetCapped(prefix, n, totalUtil, 1.0, periods)
}

// SetCapped is Set with an explicit per-task utilization cap. The Figure 3
// harness caps at 0.9: Section 4 itself observes that tasks whose weight
// is pushed to one by inflation and quantum rounding become unschedulable
// at any processor count, and the paper's (unspecified) generator clearly
// produced none, since its Figure 3 curves stay finite. It returns an
// error for an empty or invalid period menu or infeasible utilization
// parameters rather than panicking, so randomized (fuzzer) configurations
// can probe edge cases without crashing the worker pool.
func (g *Generator) SetCapped(prefix string, n int, totalUtil, cap float64, periods []int64) (task.Set, error) {
	if len(periods) == 0 {
		return nil, fmt.Errorf("taskgen: empty period menu")
	}
	for _, p := range periods {
		if p <= 0 {
			return nil, fmt.Errorf("taskgen: non-positive period %d in menu", p)
		}
	}
	us, err := g.UUniFast(n, totalUtil, cap)
	if err != nil {
		return nil, err
	}
	set := make(task.Set, 0, n)
	for i, u := range us {
		p := periods[g.rng.Intn(len(periods))]
		e := int64(math.Round(u * float64(p)))
		if e < 1 {
			e = 1
		}
		if e > p {
			e = p
		}
		set = append(set, task.MustNew(fmt.Sprintf("%s%d", prefix, i), e, p))
	}
	return set, nil
}

// SetMaxUtil generates n tasks with total utilization uniformly random in
// (0, maxTotal] — the Figure 2 workload ("total utilization at most one").
func (g *Generator) SetMaxUtil(prefix string, n int, maxTotal float64, periods []int64) (task.Set, error) {
	total := maxTotal * (0.1 + 0.9*g.rng.Float64())
	return g.Set(prefix, n, total, periods)
}

// CacheDelays draws a cache-related preemption delay for every task:
// X = max·(1 − √U), range [0, max] with mean max/3 (33.3 µs for the
// paper's max of 100 µs). The result is a fixed map so repeated queries
// are consistent.
func (g *Generator) CacheDelays(set task.Set, max int64) map[string]int64 {
	ds := make(map[string]int64, len(set))
	for _, t := range set {
		ds[t.Name] = int64(float64(max) * (1 - math.Sqrt(g.rng.Float64())))
	}
	return ds
}
