package taskgen

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUUniFastSumsToTotal(t *testing.T) {
	g := New(1)
	for _, n := range []int{1, 2, 10, 100} {
		us, err := g.UUniFast(n, 3.5, 0)
		if err != nil {
			t.Fatalf("UUniFast: %v", err)
		}
		sum := 0.0
		for _, u := range us {
			if u < 0 {
				t.Fatalf("negative utilization %v", u)
			}
			sum += u
		}
		if math.Abs(sum-3.5) > 1e-9 {
			t.Errorf("n=%d: sum = %v, want 3.5", n, sum)
		}
	}
	if got, err := g.UUniFast(0, 1, 0); got != nil || err != nil {
		t.Errorf("UUniFast(0) = %v, %v, want nil, nil", got, err)
	}
}

func TestUUniFastCap(t *testing.T) {
	g := New(2)
	for trial := 0; trial < 50; trial++ {
		us, err := g.UUniFast(4, 2.0, 1.0)
		if err != nil {
			t.Fatalf("UUniFast: %v", err)
		}
		for _, u := range us {
			if u > 1.0+1e-12 {
				t.Fatalf("capped draw produced %v > 1", u)
			}
		}
	}
}

func TestSetProperties(t *testing.T) {
	g := New(3)
	set, err := g.Set("T", 100, 10.0, DefaultPeriodsUS)
	if err != nil {
		t.Fatalf("Set: %v", err)
	}
	if len(set) != 100 {
		t.Fatalf("generated %d tasks", len(set))
	}
	if err := set.Validate(); err != nil {
		t.Fatalf("invalid set: %v", err)
	}
	u := set.TotalUtilization()
	// Integer rounding perturbs the total; it must stay in the ballpark.
	if u < 8.0 || u > 12.0 {
		t.Errorf("total utilization %v strayed from target 10", u)
	}
	for _, tk := range set {
		if tk.Period%1000 != 0 {
			t.Fatalf("period %d not a quantum multiple", tk.Period)
		}
	}
}

func TestSetReproducible(t *testing.T) {
	a, _ := New(42).Set("T", 50, 5, DefaultPeriodsSlots)
	b, _ := New(42).Set("T", 50, 5, DefaultPeriodsSlots)
	for i := range a {
		if a[i].Cost != b[i].Cost || a[i].Period != b[i].Period {
			t.Fatal("same seed produced different sets")
		}
	}
	c, _ := New(43).Set("T", 50, 5, DefaultPeriodsSlots)
	same := true
	for i := range a {
		if a[i].Cost != c[i].Cost || a[i].Period != c[i].Period {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sets")
	}
}

func TestSetMaxUtil(t *testing.T) {
	g := New(5)
	for trial := 0; trial < 30; trial++ {
		set, err := g.SetMaxUtil("T", 20, 1.0, DefaultPeriodsSlots)
		if err != nil {
			t.Fatalf("SetMaxUtil: %v", err)
		}
		// Rounding can push the total slightly above the draw, but the
		// draw itself is ≤ 1.
		if u := set.TotalUtilization(); u > 1.3 {
			t.Errorf("total utilization %v far above the max", u)
		}
	}
}

func TestCacheDelaysDistribution(t *testing.T) {
	g := New(6)
	set, err := g.Set("T", 4000, 40, DefaultPeriodsUS)
	if err != nil {
		t.Fatalf("Set: %v", err)
	}
	ds := g.CacheDelays(set, 100)
	if len(ds) != len(set) {
		t.Fatalf("got %d delays for %d tasks", len(ds), len(set))
	}
	sum := 0.0
	for _, d := range ds {
		if d < 0 || d > 100 {
			t.Fatalf("delay %d outside [0, 100]", d)
		}
		sum += float64(d)
	}
	mean := sum / float64(len(ds))
	// The density 2(1−x/100)/100 has mean 100/3 ≈ 33.3 (the paper's
	// stated mean); with 4000 samples the sample mean is within ±2.
	if mean < 31 || mean < 0 || mean > 36 {
		t.Errorf("mean cache delay %v, want ≈ 33.3", mean)
	}
}

func TestQuickSetWithinBounds(t *testing.T) {
	f := func(seed int64) bool {
		g := New(seed)
		set, err := g.Set("T", 30, 3, DefaultPeriodsSlots)
		if err != nil {
			return false
		}
		for _, tk := range set {
			if tk.Cost < 1 || tk.Cost > tk.Period {
				return false
			}
		}
		return len(set) == 30
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestUUniFastRepair: totals near n·cap force the headroom-proportional
// repair path; the total must still be exact and every value capped.
func TestUUniFastRepair(t *testing.T) {
	g := New(9)
	for trial := 0; trial < 20; trial++ {
		us, err := g.UUniFast(5, 4.6, 1.0) // mean 0.92: resampling almost always fails
		if err != nil {
			t.Fatalf("UUniFast: %v", err)
		}
		sum := 0.0
		for _, u := range us {
			if u > 1.0+1e-9 {
				t.Fatalf("repaired value %v > cap", u)
			}
			sum += u
		}
		if math.Abs(sum-4.6) > 1e-6 {
			t.Fatalf("repaired total %v, want 4.6", sum)
		}
	}
}

// TestUUniFastInfeasibleCapErrors: total > n·cap cannot be satisfied; the
// generated-input guard reports an error (not a panic) so fuzzers can probe
// edge configurations without crashing the worker pool.
func TestUUniFastInfeasibleCapErrors(t *testing.T) {
	if _, err := New(1).UUniFast(3, 4.0, 1.0); err == nil {
		t.Fatal("no error for total > n·cap")
	}
	if _, err := New(1).UUniFast(3, -1, 0); err == nil {
		t.Fatal("no error for negative total")
	}
}

// TestSetCappedRespectsCap: generated utilizations honor the cap after
// integer rounding (up to the rounding granularity of the largest period).
func TestSetCappedRespectsCap(t *testing.T) {
	g := New(12)
	set, err := g.SetCapped("T", 40, 20, 0.6, DefaultPeriodsSlots)
	if err != nil {
		t.Fatalf("SetCapped: %v", err)
	}
	for _, tk := range set {
		if tk.Utilization() > 0.6+0.11 { // rounding can add ≤ 1/period
			t.Fatalf("task %v exceeds the cap", tk)
		}
	}
}

// TestSetInvalidMenuErrors covers the menu guards.
func TestSetInvalidMenuErrors(t *testing.T) {
	if _, err := New(1).Set("T", 3, 1, nil); err == nil {
		t.Fatal("no error for empty period menu")
	}
	if _, err := New(1).Set("T", 3, 1, []int64{10, 0}); err == nil {
		t.Fatal("no error for non-positive period in menu")
	}
}

// TestSubSeed pins the properties the parallel harness depends on:
// determinism (same inputs → same seed), sensitivity to every part and to
// part order, and no collisions across a realistic trial grid.
func TestSubSeed(t *testing.T) {
	if SubSeed(1, 2, 3) != SubSeed(1, 2, 3) {
		t.Fatal("SubSeed is not deterministic")
	}
	if SubSeed(1, 2, 3) == SubSeed(1, 3, 2) {
		t.Error("SubSeed ignores part order")
	}
	if SubSeed(1, 2) == SubSeed(2, 2) {
		t.Error("SubSeed ignores the base seed")
	}
	seen := make(map[int64][3]int64)
	for tag := int64(1); tag <= 8; tag++ {
		for a := int64(0); a < 32; a++ {
			for b := int64(0); b < 64; b++ {
				s := SubSeed(7, tag, a, b)
				if prev, dup := seen[s]; dup {
					t.Fatalf("collision: (%d,%d,%d) and %v both map to %d", tag, a, b, prev, s)
				}
				seen[s] = [3]int64{tag, a, b}
			}
		}
	}
}
