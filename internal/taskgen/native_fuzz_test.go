package taskgen

import (
	"math"
	"testing"
)

// FuzzUUniFast: for arbitrary parameters UUniFast must either return an
// error or a vector that sums exactly to the target with every component
// within the cap — never panic, never silently violate the contract.
func FuzzUUniFast(f *testing.F) {
	f.Add(int64(1), 5, 2.0, 0.9)
	f.Add(int64(7), 1, 0.5, 0.0)
	f.Add(int64(3), 100, 99.9, 1.0)
	f.Fuzz(func(t *testing.T, seed int64, n int, total, cap float64) {
		if n > 10000 || math.IsNaN(total) || math.IsInf(total, 0) || math.IsNaN(cap) || math.IsInf(cap, 0) {
			return
		}
		if total > 1e12 || cap > 1e12 || total < -1e12 || cap < -1e12 {
			return // float error bounds below are meaningless at that scale
		}
		us, err := New(seed).UUniFast(n, total, cap)
		if err != nil {
			return
		}
		if n <= 0 {
			if us != nil {
				t.Fatalf("UUniFast(%d) = %v, want nil", n, us)
			}
			return
		}
		if len(us) != n {
			t.Fatalf("got %d utilizations, want %d", len(us), n)
		}
		sum := 0.0
		for _, u := range us {
			sum += u
			if cap > 0 && u > cap+1e-6 {
				t.Errorf("utilization %v exceeds cap %v", u, cap)
			}
		}
		if diff := math.Abs(sum - total); diff > 1e-6*math.Max(1, math.Abs(total)) {
			t.Errorf("sum %v differs from total %v", sum, total)
		}
	})
}
