package edf

import (
	"fmt"

	"pfair/internal/admission"
	"pfair/internal/engine"
	"pfair/internal/rational"
)

// This file implements engine.Dynamic for the EDF simulator: mid-run
// join, leave, and reweight through the unified admission plane.
//
// The simulator is event-driven, so every instant between engine steps
// is a scheduling boundary; transactions apply immediately at the
// current engine instant rather than waiting for a Pfair-style safe
// slot. The semantics are:
//
//   - Join: feasibility-checked against the exact uniprocessor EDF
//     condition Σ bandwidth ≤ 1 over the live set (a served task demands
//     its server's bandwidth Q/P, an unserved one its weight e/p), then
//     admitted with a synchronous first release at the current instant.
//     The legacy Add entry point remains unchecked — the overload
//     experiments depend on admitting infeasible sets — so the bound
//     gates only plane-submitted joins.
//   - Leave: immediate. The task's release timer is disarmed and its
//     in-flight jobs — running, ready, and server backlog — are
//     cancelled and excluded from miss accounting: a voluntary departure
//     abandons its remaining work, and cancelling jobs can only help the
//     tasks that stay (the departing task has consumed no more than its
//     reserved share). The tstate stays in the add-order slice so
//     observability ids remain dense and stable.
//   - Reweight: leave-and-rejoin under the §5.3 model — the feasibility
//     check charges the set minus the old bandwidth plus the new, the
//     old incarnation's jobs are cancelled, and the new incarnation
//     (same name, fresh obs id, ActualCost and Server carried over)
//     releases synchronously at the current instant. EvReweight follows
//     the new incarnation's EvJoin at the same instant, mirroring core.

var _ engine.Dynamic = (*Simulator)(nil)

// bandwidth returns the processor share a config demands under EDF: the
// server bandwidth for a served task, the task weight otherwise.
func bandwidth(cfg Config) rational.Rat {
	if srv := cfg.Server; srv != nil {
		return rational.New(srv.Budget, srv.Period)
	}
	return cfg.Task.Weight()
}

// liveBandwidth returns the exact bandwidth sum of the live task set,
// excluding the named task (empty string excludes nothing).
func (s *Simulator) liveBandwidth(except string) *rational.Acc {
	total := rational.NewAcc()
	for name, ts := range s.tasks { //pfair:orderinvariant exact rational sum, order-independent
		if name == except {
			continue
		}
		total.Add(bandwidth(ts.cfg))
	}
	return total
}

// Submit implements engine.Dynamic: transactional join/leave/reweight
// through the admission plane. It must be called between engine steps
// (every instant there is a scheduling boundary), never from inside a
// phase method. Cold path.
func (s *Simulator) Submit(req admission.Request) (admission.Decision, error) {
	if err := req.Validate(); err != nil {
		return admission.Decision{}, s.plane.Reject(req.Op, err)
	}
	now := s.eng.Now()
	switch req.Op {
	case admission.OpJoin:
		cfg := Config{Task: req.Task}
		switch m := req.Model.(type) {
		case nil:
		case *CBS:
			cfg.Server = m
		case CBS:
			srv := m
			cfg.Server = &srv
		case Config:
			cfg = m
			cfg.Task = req.Task
		case *Config:
			cfg = *m
			cfg.Task = req.Task
		default:
			return admission.Decision{}, s.plane.Reject(req.Op,
				fmt.Errorf("edf: join model %T is not a CBS or Config", req.Model))
		}
		if err := admission.Utilization(s.liveBandwidth(""), bandwidth(cfg), rational.Zero(), 1); err != nil {
			return admission.Decision{}, s.plane.Reject(req.Op, err)
		}
		if err := s.Add(cfg); err != nil {
			return admission.Decision{}, s.plane.Reject(req.Op, err)
		}
		d := admission.Decision{Op: req.Op, Name: req.Task.Name, EffectiveAt: now}
		s.plane.Commit(d)
		return d, nil

	case admission.OpLeave, admission.OpFinish:
		ts, ok := s.tasks[req.Name]
		if !ok {
			return admission.Decision{}, s.plane.Reject(req.Op,
				fmt.Errorf("edf: unknown task %q", req.Name))
		}
		s.remove(ts)
		s.plane.EmitLeave(now, ts.obsID, ts.executed)
		d := admission.Decision{Op: req.Op, Name: req.Name, EffectiveAt: now}
		s.plane.Commit(d)
		return d, nil

	case admission.OpReweight:
		ts, ok := s.tasks[req.Name]
		if !ok {
			return admission.Decision{}, s.plane.Reject(req.Op,
				fmt.Errorf("edf: unknown task %q", req.Name))
		}
		nt := *ts.cfg.Task
		nt.Cost, nt.Period = req.NewCost, req.NewPeriod
		cfg := Config{Task: &nt, ActualCost: ts.cfg.ActualCost, Server: ts.cfg.Server}
		if err := admission.Utilization(s.liveBandwidth(req.Name), bandwidth(cfg), rational.Zero(), 1); err != nil {
			return admission.Decision{}, s.plane.Reject(req.Op, err)
		}
		s.remove(ts)
		if err := s.Add(cfg); err != nil {
			// Unreachable in practice (the name was just freed and the
			// parameters validated), but a rejected rejoin must still be
			// a ledgered rejection, not a silent half-applied leave.
			return admission.Decision{}, s.plane.Reject(req.Op, err)
		}
		s.plane.EmitReweight(now, s.tasks[req.Name].obsID, req.NewCost, req.NewPeriod)
		d := admission.Decision{Op: req.Op, Name: req.Name, EffectiveAt: now}
		s.plane.Commit(d)
		return d, nil
	}
	return admission.Decision{}, s.plane.Reject(req.Op,
		fmt.Errorf("admission: unknown op %d", req.Op))
}

// remove departs a task immediately: disarm its release timer, cancel
// its in-flight jobs everywhere they can live (the processor, the ready
// queue, the server backlog), and drop it from the live set. The tstate
// stays in s.order, marked left, so obs ids stay dense and a recorder
// attached later does not resurrect it.
func (s *Simulator) remove(ts *tstate) {
	if s.relHeap {
		if ts.relItem.Index() >= 0 {
			s.releases.Remove(ts.relItem)
		}
	} else if ts.relWItem.Queued() {
		s.relWheel.Remove(ts.relWItem)
	}
	if s.running != nil && s.running.ts == ts {
		s.running = nil
	}
	for _, it := range s.ready.Items() {
		if it.Value.ts == ts {
			ts.backlog = append(ts.backlog, it.Value)
		}
	}
	for _, j := range ts.backlog {
		if j.item.Index() >= 0 {
			s.ready.Remove(j.item)
		}
	}
	ts.head = nil
	ts.backlog = nil
	ts.left = true
	delete(s.tasks, ts.cfg.Task.Name)
}

// AdmissionLog returns the accepted dynamic-task transactions in commit
// order.
func (s *Simulator) AdmissionLog() []admission.Decision { return s.plane.Log() }

// AdmissionRejects returns how many dynamic-task requests were refused.
func (s *Simulator) AdmissionRejects() int64 { return s.plane.Rejects() }
