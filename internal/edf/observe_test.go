package edf

import (
	"testing"

	"pfair/internal/obs"
	"pfair/internal/task"
)

// TestSimulatorRecorder: the event-driven EDF trace mirrors the
// simulator's statistics — one release per job, one schedule per context
// switch, one preempt per preemption, one miss per recorded miss — and
// attaching the recorder does not change the schedule.
func TestSimulatorRecorder(t *testing.T) {
	build := func(rec *obs.Recorder) *Simulator {
		s := NewSimulator()
		s.SetRecorder(rec)
		mustAdd(t, s,
			Config{
				Task:       task.MustNew("rogue", 2, 10),
				ActualCost: func(int64) int64 { return 8 },
			},
			Config{Task: task.MustNew("victim", 5, 10)},
			Config{Task: task.MustNew("bg", 1, 7)},
		)
		s.Run(200)
		return s
	}
	rec := obs.NewRecorder(1 << 14)
	s := build(rec)
	plain := build(nil)

	if ps, os := plain.Stats(), s.Stats(); ps.Jobs != os.Jobs || ps.Preemptions != os.Preemptions ||
		ps.ContextSwitches != os.ContextSwitches || len(ps.Misses) != len(os.Misses) {
		t.Fatalf("observation changed the run: %+v vs %+v", ps, os)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("ring too small: dropped %d", rec.Dropped())
	}

	counts := make(map[obs.EventKind]int64)
	for _, e := range rec.Events() {
		counts[e.Kind]++
		if e.Kind != obs.EvJoin && e.Kind != obs.EvRelease && e.Proc != 0 {
			t.Fatalf("uniprocessor event off lane 0: %+v", e)
		}
	}
	st := s.Stats()
	if counts[obs.EvJoin] != 3 {
		t.Errorf("EvJoin = %d, want 3", counts[obs.EvJoin])
	}
	if counts[obs.EvRelease] != st.Jobs {
		t.Errorf("EvRelease = %d, Jobs = %d", counts[obs.EvRelease], st.Jobs)
	}
	if counts[obs.EvSchedule] != st.ContextSwitches {
		t.Errorf("EvSchedule = %d, ContextSwitches = %d", counts[obs.EvSchedule], st.ContextSwitches)
	}
	if counts[obs.EvPreempt] != st.Preemptions {
		t.Errorf("EvPreempt = %d, Preemptions = %d", counts[obs.EvPreempt], st.Preemptions)
	}
	if counts[obs.EvMiss] != int64(len(st.Misses)) {
		t.Errorf("EvMiss = %d, Misses = %d", counts[obs.EvMiss], len(st.Misses))
	}
	if counts[obs.EvMiss] == 0 {
		t.Error("overrun workload produced no miss events")
	}
	if s.Recorder() != rec {
		t.Error("Recorder() accessor mismatch")
	}

	// Attaching after Add must register the already-added tasks too.
	late := NewSimulator()
	mustAdd(t, late, Config{Task: task.MustNew("solo", 1, 4)})
	rec2 := obs.NewRecorder(1 << 10)
	late.SetRecorder(rec2)
	if got := rec2.TaskName(0); got != "solo" {
		t.Errorf("late-attached recorder knows task as %q, want solo", got)
	}
	late.Run(40)
	if rec2.Total() == 0 {
		t.Error("no events after late attach")
	}
}
