package edf

import (
	"runtime"
	"testing"

	"pfair/internal/task"
)

// The EDF simulator is event-driven on the shared engine: it allocates
// exactly one job object and its heap handle per released job, and
// nothing else in steady state. This guard pins that — the engine
// migration must not introduce per-event garbage (interface boxing,
// closure captures) on top of the inherent job objects.
func TestRunAllocsPerJob(t *testing.T) {
	s := NewSimulator()
	for _, tk := range []*task.Task{
		task.MustNew("a", 1, 4), task.MustNew("b", 1, 5), task.MustNew("c", 2, 10),
	} {
		if err := s.Add(Config{Task: tk}); err != nil {
			t.Fatal(err)
		}
	}
	// Warm-up settles heap capacities and the engine binding.
	s.Run(10_000)
	jobs0 := s.stats.Jobs

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	s.Run(100_000)
	runtime.ReadMemStats(&after)

	jobs := s.stats.Jobs - jobs0
	if jobs == 0 {
		t.Fatal("no jobs released in the measured window")
	}
	allocs := after.Mallocs - before.Mallocs
	// Two allocations per job (the job object and its heap handle) plus
	// slack for the runtime's own noise.
	if limit := uint64(2*jobs) + 64; allocs > limit {
		t.Errorf("Run allocated %d times for %d jobs, want ≤ %d (≈2 per released job)", allocs, jobs, limit)
	}
	if n := len(s.stats.Misses); n != 0 {
		t.Fatalf("schedulable set missed %d deadlines", n)
	}
}
