package edf

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"pfair/internal/rational"
	"pfair/internal/task"
)

func mustAdd(t *testing.T, s *Simulator, cfgs ...Config) {
	t.Helper()
	for _, c := range cfgs {
		if err := s.Add(c); err != nil {
			t.Fatalf("Add(%v): %v", c.Task, err)
		}
	}
}

// TestSingleTask: one task runs back-to-back jobs without preemptions.
func TestSingleTask(t *testing.T) {
	s := NewSimulator()
	mustAdd(t, s, Config{Task: task.MustNew("T", 2, 5)})
	s.Run(50)
	st := s.Stats()
	if st.Jobs != 10 || st.Completed != 10 {
		t.Fatalf("jobs=%d completed=%d, want 10/10", st.Jobs, st.Completed)
	}
	if st.Preemptions != 0 {
		t.Fatalf("preemptions = %d, want 0", st.Preemptions)
	}
	if len(st.Misses) != 0 {
		t.Fatalf("misses: %+v", st.Misses)
	}
}

// TestEDFOptimalUnderUnitUtilization: random sets with Σu ≤ 1 never miss.
func TestEDFOptimalUnderUnitUtilization(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		var set task.Set
		budget := rational.NewAcc()
		for i := 0; i < 8; i++ {
			p := int64(2 + r.Intn(40))
			e := int64(1 + r.Intn(int(p)))
			w := rational.New(e, p)
			if budget.Clone().Add(w).CmpInt(1) > 0 {
				continue
			}
			budget.Add(w)
			set = append(set, task.MustNew(fmt.Sprintf("T%d", i), e, p))
		}
		if len(set) == 0 {
			continue
		}
		if !Schedulable(set) {
			t.Fatal("constructed set should satisfy the utilization test")
		}
		s := NewSimulator()
		for _, tk := range set {
			mustAdd(t, s, Config{Task: tk})
		}
		h := set.Hyperperiod() * 2
		if h > 200000 {
			h = 200000
		}
		s.Run(h)
		if n := len(s.Stats().Misses); n != 0 {
			t.Fatalf("trial %d: EDF missed %d deadlines on %v (first %+v)",
				trial, n, set, s.Stats().Misses[0])
		}
	}
}

// TestOverloadMisses: Σu > 1 leads to misses (and EDF's domino behaviour —
// multiple tasks affected, per the Section 5.4 discussion of EDF under
// overload).
func TestOverloadMisses(t *testing.T) {
	s := NewSimulator()
	mustAdd(t, s,
		Config{Task: task.MustNew("A", 3, 5)},
		Config{Task: task.MustNew("B", 3, 5)},
	)
	s.Run(100)
	if len(s.Stats().Misses) == 0 {
		t.Fatal("overloaded EDF recorded no misses")
	}
	tasksMissed := map[string]bool{}
	for _, m := range s.Stats().Misses {
		tasksMissed[m.Task] = true
	}
	if len(tasksMissed) < 2 {
		t.Fatalf("expected the overload to spread across tasks, got %v", tasksMissed)
	}
}

// TestPreemptionsBoundedByJobs: "under EDF, the number of preemptions is at
// most the number of jobs" (Section 4).
func TestPreemptionsBoundedByJobs(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed ^ r.Int63()))
		var set task.Set
		budget := rational.NewAcc()
		for i := 0; i < 6; i++ {
			p := int64(2 + rr.Intn(30))
			e := int64(1 + rr.Intn(int(p)))
			w := rational.New(e, p)
			if budget.Clone().Add(w).CmpInt(1) > 0 {
				continue
			}
			budget.Add(w)
			set = append(set, task.MustNew(fmt.Sprintf("T%d", i), e, p))
		}
		if len(set) == 0 {
			return true
		}
		s := NewSimulator()
		for _, tk := range set {
			if err := s.Add(Config{Task: tk}); err != nil {
				return false
			}
		}
		s.Run(5000)
		st := s.Stats()
		return st.Preemptions <= st.Jobs && st.ContextSwitches <= 2*st.Jobs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestMisbehavingTaskWithoutCBS: a job overrun steals time from an
// innocent task — EDF provides no temporal isolation.
func TestMisbehavingTaskWithoutCBS(t *testing.T) {
	s := NewSimulator()
	mustAdd(t, s,
		Config{
			Task: task.MustNew("rogue", 2, 10),
			// Every job actually runs 8 units instead of the declared 2.
			ActualCost: func(int64) int64 { return 8 },
		},
		Config{Task: task.MustNew("victim", 5, 10)},
	)
	s.Run(200)
	victimMissed := false
	for _, m := range s.Stats().Misses {
		if m.Task == "victim" {
			victimMissed = true
		}
	}
	if !victimMissed {
		t.Fatal("expected the victim to miss under an unisolated overrun")
	}
}

// TestCBSIsolation: the same overrun inside a CBS cannot hurt the victim;
// the excess is pushed into the rogue's own future bandwidth (Section 5.3).
func TestCBSIsolation(t *testing.T) {
	s := NewSimulator()
	mustAdd(t, s,
		Config{
			Task:       task.MustNew("rogue", 2, 10),
			ActualCost: func(int64) int64 { return 8 },
			Server:     &CBS{Budget: 2, Period: 10},
		},
		Config{Task: task.MustNew("victim", 5, 10)},
	)
	s.Run(2000)
	for _, m := range s.Stats().Misses {
		if m.Task == "victim" {
			t.Fatalf("victim missed despite CBS: %+v", m)
		}
	}
	if s.Stats().Postponements == 0 {
		t.Fatal("CBS never postponed a deadline; the overrun was not exercised")
	}
}

// TestCBSWellBehavedTaskUnaffected: a task that stays within its budget
// behaves as under plain EDF.
func TestCBSWellBehavedTaskUnaffected(t *testing.T) {
	run := func(server *CBS) Stats {
		s := NewSimulator()
		mustAdd(t, s,
			Config{Task: task.MustNew("A", 2, 10), Server: server},
			Config{Task: task.MustNew("B", 5, 10)},
		)
		s.Run(1000)
		return s.Stats()
	}
	plain := run(nil)
	served := run(&CBS{Budget: 2, Period: 10})
	if len(plain.Misses) != 0 || len(served.Misses) != 0 {
		t.Fatalf("unexpected misses: plain=%d served=%d", len(plain.Misses), len(served.Misses))
	}
	if served.Completed != plain.Completed {
		t.Fatalf("CBS changed completions: %d vs %d", served.Completed, plain.Completed)
	}
}

// TestHorizonPartialJob: a job cut by the horizon with a later deadline is
// not a miss; one with an earlier deadline is.
func TestHorizonPartialJob(t *testing.T) {
	s := NewSimulator()
	mustAdd(t, s, Config{Task: task.MustNew("T", 4, 10)})
	s.Run(2) // first job (deadline 10) still running
	if n := len(s.Stats().Misses); n != 0 {
		t.Fatalf("premature miss: %+v", s.Stats().Misses)
	}
	s2 := NewSimulator()
	mustAdd(t, s2,
		Config{Task: task.MustNew("T", 9, 10)},
		Config{Task: task.MustNew("U", 1, 10)},
	)
	s2.Run(2000)
	if n := len(s2.Stats().Misses); n != 0 {
		t.Fatalf("full-utilization pair missed: %+v", s2.Stats().Misses)
	}
}

// TestAddValidation: error paths.
func TestAddValidation(t *testing.T) {
	s := NewSimulator()
	if err := s.Add(Config{Task: &task.Task{Name: "bad", Cost: 0, Period: 5}}); err == nil {
		t.Error("invalid task accepted")
	}
	mustAdd(t, s, Config{Task: task.MustNew("A", 1, 2)})
	if err := s.Add(Config{Task: task.MustNew("A", 1, 3)}); err == nil {
		t.Error("duplicate accepted")
	}
	if err := s.Add(Config{Task: task.MustNew("B", 1, 3), Server: &CBS{Budget: 0, Period: 3}}); err == nil {
		t.Error("invalid CBS accepted")
	}
	if err := s.Add(Config{Task: task.MustNew("C", 1, 3), Server: &CBS{Budget: 4, Period: 3}}); err == nil {
		t.Error("CBS with budget > period accepted")
	}
}

// TestDeterminism: identical runs produce identical stats.
func TestDeterminism(t *testing.T) {
	run := func() Stats {
		s := NewSimulator()
		mustAdd(t, s,
			Config{Task: task.MustNew("A", 1, 3)},
			Config{Task: task.MustNew("B", 2, 5)},
			Config{Task: task.MustNew("C", 1, 7)},
		)
		s.Run(10000)
		return s.Stats()
	}
	a, b := run(), run()
	if a.Jobs != b.Jobs || a.Preemptions != b.Preemptions || a.ContextSwitches != b.ContextSwitches || a.Invocations != b.Invocations {
		t.Fatalf("nondeterministic stats: %+v vs %+v", a, b)
	}
}

// TestMeasureOverhead: enabling measurement accumulates nonzero time and
// matching invocation counts.
func TestMeasureOverhead(t *testing.T) {
	s := NewSimulator()
	s.MeasureOverhead(true)
	mustAdd(t, s, Config{Task: task.MustNew("A", 1, 2)}, Config{Task: task.MustNew("B", 1, 4)})
	s.Run(100000)
	st := s.Stats()
	if st.Invocations == 0 {
		t.Fatal("no invocations recorded")
	}
	if st.SchedulingTime <= 0 {
		t.Fatal("no scheduling time recorded")
	}
}

// TestLatenessAccessor covers the Miss helper.
func TestLatenessAccessor(t *testing.T) {
	if (Miss{Deadline: 10, FinishedAt: 13}).Lateness() != 3 {
		t.Error("Lateness mismatch")
	}
	if (Miss{Deadline: 10, FinishedAt: -1}).Lateness() != -1 {
		t.Error("unfinished Lateness should be -1")
	}
}
