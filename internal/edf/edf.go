// Package edf implements uniprocessor earliest-deadline-first scheduling:
// an event-driven simulator with preemption and context-switch accounting,
// the exact utilization-based schedulability test, and constant-bandwidth
// servers (CBS) for temporal isolation.
//
// EDF is the per-processor scheduler of the paper's EDF-FF partitioning
// baseline (Section 3). The simulator's ready queue is a binary heap, as in
// the implementation whose per-invocation overhead Figure 2(a) measures.
// The scheduler is invoked on job releases, completions, and server-budget
// exhaustions; between events the running job executes undisturbed, so —
// unlike the slot-based Pfair schedulers — invocation counts are
// proportional to the number of jobs, not to elapsed time.
//
// Each task may declare an ActualCost function that makes some jobs run
// longer than the declared worst case. Plain EDF has no temporal isolation:
// such an overrun steals time from other tasks and causes them to miss
// deadlines. Wrapping the misbehaving task in a CBS (Section 5.3, after
// Abeni & Buttazzo [1]) restores isolation: whenever the job consumes its
// budget, the budget is replenished and the job's deadline postponed by the
// server period, pushing the excess into time reserved for later jobs.
package edf

import (
	"fmt"
	"math"
	"sort"
	"time"

	"pfair/internal/admission"
	"pfair/internal/calq"
	"pfair/internal/engine"
	"pfair/internal/heap"
	"pfair/internal/obs"
	"pfair/internal/task"
)

// CBS configures a constant-bandwidth server for one task: the task may
// consume Budget time units per Period of server bandwidth.
type CBS struct {
	Budget int64
	Period int64
}

// Utilization returns the server's bandwidth Budget/Period.
//
//pfair:allowfloat reporting helper; admission uses the exact integer test Σ budget·lcm/period
func (c CBS) Utilization() float64 { return float64(c.Budget) / float64(c.Period) }

// Config describes one task admitted to the simulator.
type Config struct {
	Task *task.Task
	// ActualCost, if non-nil, returns the real execution demand of the
	// job with the given 1-based index. A value larger than Task.Cost
	// models a misbehaving or faulty task. Nil means every job consumes
	// exactly Task.Cost.
	ActualCost func(job int64) int64
	// Server, if non-nil, runs the task inside a constant-bandwidth
	// server instead of raw EDF.
	Server *CBS
}

// Miss records a job that completed (or was still pending) after its
// deadline.
type Miss struct {
	Task     string
	Job      int64
	Deadline int64
	// FinishedAt is the completion time, or −1 if the job was still
	// unfinished at the horizon.
	FinishedAt int64
}

// Lateness returns how late the job finished, or −1 if it never did.
func (m Miss) Lateness() int64 {
	if m.FinishedAt < 0 {
		return -1
	}
	return m.FinishedAt - m.Deadline
}

// Stats aggregates counters over a run.
type Stats struct {
	Jobs            int64 // jobs released
	Completed       int64
	Preemptions     int64
	ContextSwitches int64
	Invocations     int64 // scheduler decisions
	Postponements   int64 // CBS deadline postponements
	Misses          []Miss
	// SchedulingTime is the accumulated wall-clock time spent inside
	// scheduler decisions, when measurement is enabled.
	SchedulingTime time.Duration
}

type tstate struct {
	cfg         Config
	obsID       int32 // dense trace id, −1 until a recorder is attached
	nextRelease int64
	nextJob     int64 // 1-based index of the next job to release
	executed    int64 // time units this task's jobs have run, for EvLeave
	left        bool  // departed via Submit; retained in order for obs ids

	// CBS server state (Abeni & Buttazzo): a single deadline and budget
	// shared by all of the task's jobs, which are served FIFO. Only the
	// head job competes under EDF, with the server's deadline.
	budget      int64
	srvDeadline int64
	head        *job
	backlog     []*job

	// relItem and relWItem are the task's persistent handles in the
	// release structures — the fallback heap and the calendar wheel — so
	// re-arming the release timer never allocates whichever is in use.
	relItem  *heap.Item[*tstate]
	relWItem *calq.Item[*tstate]
}

type job struct {
	ts        *tstate
	index     int64
	release   int64
	deadline  int64 // EDF priority: own deadline, or the server's
	orig      int64 // the job's own deadline, for miss accounting
	remaining int64
	missed    bool
	// item is the job's heap handle, allocated once at release so
	// re-queueing on preemption or server promotion never allocates.
	item *heap.Item[*job]
}

// Simulator is an event-driven uniprocessor EDF scheduler. Time units are
// abstract; the experiments use microseconds.
//
// The Simulator is an engine.Policy: the engine visits exactly the event
// instants (releases, completions, budget exhaustions) that Next computes,
// and at each one Release brings execution state current and processes the
// due event, then Dispatch reinvokes the scheduler. Same-instant
// re-invocation (Next(t) == t) occurs when a zero-budget head job takes
// the processor; the engine permits it.
type Simulator struct {
	eng   *engine.Engine
	now   int64 // internal execution clock; trails the engine inside Run
	tasks map[string]*tstate
	order []*tstate // add order, for deterministic obs id assignment
	ready *heap.Heap[*job]
	// Release timers live in the calendar wheel: Next finds the earliest
	// armed release by bitmap probe and Release drains one bucket, so the
	// timer path costs O(1) per event instead of O(log n) heap sifts.
	// When a task's period exceeds calq.DefaultSpanCap (timers too sparse
	// for a bounded wheel to beat a comparison structure), the simulator
	// falls back — permanently, migrating armed timers — to the heap.
	relWheel *calq.Wheel[*tstate]
	relHeap  bool
	releases *heap.Heap[*tstate]
	running  *job
	stats    Stats
	measure  bool
	rec      *obs.Recorder
	// plane is the admission-plane ledger behind Submit: it records the
	// accepted Decisions, counts rejects, and narrates churn to whatever
	// recorder/metrics are attached.
	plane *admission.Plane
}

// NewSimulator returns an empty simulator at time 0. Engine options attach
// observability at construction, equivalent to SetRecorder afterwards.
func NewSimulator(opts ...engine.Option) *Simulator {
	s := &Simulator{tasks: make(map[string]*tstate)}
	s.ready = heap.New(jobLess)
	s.relWheel = calq.NewWheel[*tstate](1)
	s.releases = heap.New(func(a, b *tstate) bool {
		if a.nextRelease != b.nextRelease {
			return a.nextRelease < b.nextRelease
		}
		return a.cfg.Task.Name < b.cfg.Task.Name
	})
	s.plane = admission.NewPlane()
	s.eng = engine.New(s, opts...)
	s.rec = s.eng.Recorder()
	s.plane.Observe(s.rec, s.eng.Metrics())
	return s
}

// Engine returns the engine this simulator runs on.
func (s *Simulator) Engine() *engine.Engine { return s.eng }

//pfair:hotpath
func jobLess(a, b *job) bool {
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	if a.ts.cfg.Task.Name != b.ts.cfg.Task.Name {
		return a.ts.cfg.Task.Name < b.ts.cfg.Task.Name
	}
	return a.index < b.index
}

// MeasureOverhead enables wall-clock timing of scheduler decisions,
// accumulated in Stats.SchedulingTime and divided by Stats.Invocations to
// reproduce Figure 2(a).
func (s *Simulator) MeasureOverhead(on bool) { s.measure = on }

// SetRecorder attaches a trace recorder (nil detaches). Releases,
// dispatches, preemptions, and deadline misses are emitted on the single
// processor lane 0; Event.Slot carries the simulator's abstract time
// units. Tasks added before and after the call are registered alike.
func (s *Simulator) SetRecorder(rec *obs.Recorder) {
	s.eng.Observe(rec, s.eng.Metrics())
	s.rec = rec
	s.plane.Observe(rec, s.eng.Metrics())
	for _, ts := range s.order {
		if !ts.left {
			s.registerObs(ts)
		}
	}
}

// Recorder returns the attached trace recorder, or nil.
func (s *Simulator) Recorder() *obs.Recorder { return s.rec }

func (s *Simulator) registerObs(ts *tstate) {
	if s.rec == nil {
		return
	}
	if ts.obsID < 0 {
		for i, o := range s.order {
			if o == ts {
				ts.obsID = int32(i)
				break
			}
		}
	}
	if s.rec.RegisterTask(ts.obsID, ts.cfg.Task.Name) {
		// Routed through the admission plane so every policy narrates
		// churn identically; the event bytes are unchanged.
		s.plane.EmitJoin(s.now, ts.obsID, ts.cfg.Task.Cost, ts.cfg.Task.Period)
	}
}

// Add admits a task with its first release at the current engine instant
// — time 0 when called before Run (the historical contract), the current
// instant when reached mid-run through Submit. Add itself performs no
// feasibility check (the overload experiments rely on admitting
// infeasible sets); Submit layers the exact bandwidth test on top.
func (s *Simulator) Add(cfg Config) error {
	if err := cfg.Task.Validate(); err != nil {
		return err
	}
	if _, dup := s.tasks[cfg.Task.Name]; dup {
		return fmt.Errorf("edf: task %q already added", cfg.Task.Name)
	}
	if srv := cfg.Server; srv != nil && (srv.Budget <= 0 || srv.Period < srv.Budget) {
		return fmt.Errorf("edf: invalid CBS %+v for %s", *srv, cfg.Task.Name)
	}
	ts := &tstate{cfg: cfg, obsID: -1, nextRelease: s.eng.Now(), nextJob: 1}
	if cfg.Server != nil {
		ts.budget = cfg.Server.Budget
	}
	s.tasks[cfg.Task.Name] = ts
	s.order = append(s.order, ts)
	s.registerObs(ts)
	ts.relItem = heap.NewItem(ts)
	ts.relWItem = calq.NewItem(ts)
	if !s.relHeap {
		if cfg.Task.Period > calq.DefaultSpanCap {
			// Timers this sparse would mix rounds constantly; move every
			// armed timer to the heap and stay there.
			s.relHeap = true
			for _, o := range s.order {
				if o.relWItem.Queued() {
					s.relWheel.Remove(o.relWItem)
					s.releases.PushItem(o.relItem)
				}
			}
		} else {
			s.relWheel.EnsureSpan(cfg.Task.Period)
			s.relWheel.Reserve(len(s.order))
		}
	}
	s.armRelease(ts)
	return nil
}

// armRelease queues the task's next release in whichever timer structure
// is active.
//
//pfair:hotpath
func (s *Simulator) armRelease(ts *tstate) {
	if s.relHeap {
		s.releases.PushItem(ts.relItem)
	} else {
		s.relWheel.Add(ts.relWItem, ts.nextRelease)
	}
}

// Schedulable reports whether a set of (well-behaved, unserved) implicit-
// deadline periodic tasks is schedulable under uniprocessor EDF: the exact
// Liu & Layland condition Σ e/p ≤ 1.
func Schedulable(set task.Set) bool {
	return set.Feasible(1)
}

// Stats returns the counters accumulated so far.
func (s *Simulator) Stats() Stats { return s.stats }

// Now returns the current simulation time.
func (s *Simulator) Now() int64 { return s.now }

// Run advances the simulation to the horizon. Jobs still incomplete at the
// horizon with deadlines at or before it are recorded as misses. A
// non-nil error (*engine.LivelockError) means the policy stopped
// advancing time — the CBS zero-budget re-invocation path makes this
// simulator a genuine livelock candidate — and the horizon accounting is
// skipped because the run never reached it.
func (s *Simulator) Run(horizon int64) error {
	if err := s.eng.Run(horizon); err != nil {
		return err
	}
	s.atHorizon(horizon)
	s.finishMisses(horizon)
	return nil
}

// pendingEvent returns the absolute time of the running job's next event —
// completion or CBS budget exhaustion — or MaxInt64 when idle.
//
//pfair:hotpath
func (s *Simulator) pendingEvent() (event int64, exhaust bool) {
	event = math.MaxInt64
	if s.running != nil {
		runLen := s.running.remaining
		if srv := s.running.ts.cfg.Server; srv != nil && s.running.ts.budget < runLen {
			runLen = s.running.ts.budget
			exhaust = true
		}
		event = s.now + runLen
	}
	return event, exhaust
}

// Release is the engine release phase at event instant t: execute the
// running job up to t, process a completion or budget exhaustion landing
// exactly at t, then release every job due.
//
//pfair:hotpath
func (s *Simulator) Release(t int64) {
	event, exhaust := s.pendingEvent()
	s.advance(t)
	if event == t {
		if exhaust {
			s.exhaustBudget()
		} else {
			s.complete()
		}
	}
	s.releaseDue()
}

// Pick implements engine.Policy; the ready heap is already
// priority-ordered, so selection happens in Dispatch's peek.
//
//pfair:hotpath
func (s *Simulator) Pick(t int64) {}

// Dispatch implements engine.Policy: one scheduler invocation.
//
//pfair:hotpath
func (s *Simulator) Dispatch(t int64) { s.dispatch() }

// Account implements engine.Policy; EDF accounting happens inside the
// event handlers.
//
//pfair:hotpath
func (s *Simulator) Account(t int64) {}

// Next returns the next event instant: the earliest pending release or
// running-job event. It may equal t (a zero-budget head job exhausts
// immediately); the engine permits the zero-length step.
//
//pfair:hotpath
func (s *Simulator) Next(t int64) int64 {
	nextRel := int64(math.MaxInt64)
	if !s.relHeap {
		if nr, ok := s.relWheel.NextOccupied(s.now); ok {
			nextRel = nr
		}
	} else if s.releases.Len() > 0 {
		nextRel = s.releases.Peek().nextRelease
	}
	event, _ := s.pendingEvent()
	if event < nextRel {
		return event
	}
	return nextRel
}

// atHorizon closes out a Run: the running job executes up to the horizon,
// and a completion or exhaustion landing exactly on it is still processed
// (followed by one dispatch) — but releases at the horizon fall outside
// the simulated window [0, horizon).
func (s *Simulator) atHorizon(horizon int64) {
	if s.now >= horizon {
		return
	}
	event, exhaust := s.pendingEvent()
	s.advance(horizon)
	if event == horizon {
		if exhaust {
			s.exhaustBudget()
		} else {
			s.complete()
		}
		s.dispatch()
	}
}

// advance moves time forward, executing the running job.
//
//pfair:hotpath
func (s *Simulator) advance(to int64) {
	if s.running != nil {
		delta := to - s.now
		s.running.remaining -= delta
		s.running.ts.executed += delta
		if s.running.ts.cfg.Server != nil {
			s.running.ts.budget -= delta
		}
	}
	s.now = to
}

// releaseDue releases every job whose time has come and re-arms the
// release timers. Wheel mode drains the single due bucket and sorts the
// batch by name — reproducing the heap's (nextRelease, Name) pop order,
// since every drained timer shares the instant s.now — so traces are
// identical in either mode.
//
//pfair:hotpath
func (s *Simulator) releaseDue() {
	if !s.relHeap {
		due := s.relWheel.Due(s.now)
		for i := 1; i < len(due); i++ {
			for j := i; j > 0 && due[j].cfg.Task.Name < due[j-1].cfg.Task.Name; j-- {
				due[j], due[j-1] = due[j-1], due[j]
			}
		}
		for _, ts := range due {
			s.releaseOne(ts)
		}
		return
	}
	for s.releases.Len() > 0 && s.releases.Peek().nextRelease <= s.now {
		s.releaseOne(s.releases.Pop())
	}
}

// releaseOne releases the job due from one task (its timer already
// dequeued), re-arms the timer, and routes the job into the ready queue
// directly or through the task's server.
//
//pfair:allowalloc releasing a job allocates the job record and its heap handle, one pair per period, off the per-slot path
func (s *Simulator) releaseOne(ts *tstate) {
	cost := ts.cfg.Task.Cost
	if ts.cfg.ActualCost != nil {
		cost = ts.cfg.ActualCost(ts.nextJob)
		if cost <= 0 {
			cost = 1
		}
	}
	orig := ts.nextRelease + ts.cfg.Task.Period
	j := &job{
		ts:        ts,
		index:     ts.nextJob,
		release:   ts.nextRelease,
		deadline:  orig,
		orig:      orig,
		remaining: cost,
	}
	j.item = heap.NewItem(j)
	s.stats.Jobs++
	if rec := s.rec; rec != nil {
		rec.Emit(obs.Event{Slot: s.now, Kind: obs.EvRelease, Task: ts.obsID, Proc: -1, A: j.index, B: j.orig})
	}
	ts.nextJob++
	ts.nextRelease += ts.cfg.Task.Period
	s.armRelease(ts)

	if srv := ts.cfg.Server; srv != nil {
		if ts.head != nil {
			// Server busy: queue behind the head, FIFO.
			ts.backlog = append(ts.backlog, j)
			return
		}
		// Server idle: if the leftover budget, consumed at the
		// server bandwidth from now, would overrun the current
		// server deadline (c_s ≥ (d_s − r)·Q/P), start a fresh
		// period; otherwise reuse the current deadline and budget.
		if ts.budget*srv.Period >= (ts.srvDeadline-s.now)*srv.Budget {
			ts.srvDeadline = s.now + srv.Period
			ts.budget = srv.Budget
		}
		j.deadline = ts.srvDeadline
		ts.head = j
	}
	s.ready.PushItem(j.item)
}

// complete retires the running job and, for served tasks, promotes the
// next backlog job to server head.
//
//pfair:hotpath
func (s *Simulator) complete() {
	j := s.running
	s.running = nil
	s.stats.Completed++
	if s.now > j.orig && !j.missed {
		j.missed = true
		s.stats.Misses = append(s.stats.Misses, Miss{
			Task: j.ts.cfg.Task.Name, Job: j.index, Deadline: j.orig, FinishedAt: s.now,
		})
		if rec := s.rec; rec != nil {
			rec.Emit(obs.Event{Slot: s.now, Kind: obs.EvMiss, Task: j.ts.obsID, Proc: 0, A: j.index, B: j.orig})
		}
	}
	ts := j.ts
	if ts.cfg.Server != nil {
		ts.head = nil
		if len(ts.backlog) > 0 {
			next := ts.backlog[0]
			ts.backlog = ts.backlog[1:]
			next.deadline = ts.srvDeadline
			ts.head = next
			s.ready.PushItem(next.item)
		}
	}
}

// exhaustBudget applies the CBS rule to the running (head) job: replenish
// the budget and postpone the server deadline by the server period. The
// job keeps the processor unless a ready job now beats its demoted
// deadline.
//
//pfair:hotpath
func (s *Simulator) exhaustBudget() {
	j := s.running
	srv := j.ts.cfg.Server
	j.ts.budget = srv.Budget
	j.ts.srvDeadline += srv.Period
	j.deadline = j.ts.srvDeadline
	s.stats.Postponements++
}

// dispatch is the scheduler invocation: ensure the processor runs the
// earliest-deadline job among the running and ready ones.
//
//pfair:hotpath
func (s *Simulator) dispatch() {
	var start time.Time
	if s.measure {
		start = time.Now() //pfair:allowtime overhead measurement, gated behind the measure flag
	}
	s.stats.Invocations++
	if s.ready.Len() > 0 {
		top := s.ready.Peek()
		switch {
		case s.running == nil:
			s.ready.Pop()
			s.running = top
			s.stats.ContextSwitches++
			if rec := s.rec; rec != nil {
				rec.Emit(obs.Event{Slot: s.now, Kind: obs.EvSchedule, Task: top.ts.obsID, Proc: 0, A: top.index})
			}
		case jobLess(top, s.running):
			s.ready.Pop()
			s.ready.PushItem(s.running.item)
			s.stats.Preemptions++
			s.stats.ContextSwitches++
			if rec := s.rec; rec != nil {
				rec.Emit(obs.Event{Slot: s.now, Kind: obs.EvPreempt, Task: s.running.ts.obsID, Proc: 0, A: s.running.index})
				rec.Emit(obs.Event{Slot: s.now, Kind: obs.EvSchedule, Task: top.ts.obsID, Proc: 0, A: top.index})
			}
			s.running = top
		}
	}
	if s.measure {
		s.stats.SchedulingTime += time.Since(start) //pfair:allowtime overhead measurement, gated behind the measure flag
	}
}

// finishMisses records jobs still incomplete at the horizon whose own
// deadlines fell at or before it.
func (s *Simulator) finishMisses(horizon int64) {
	record := func(j *job) {
		if j != nil && !j.missed && j.orig <= horizon {
			j.missed = true
			s.stats.Misses = append(s.stats.Misses, Miss{
				Task: j.ts.cfg.Task.Name, Job: j.index, Deadline: j.orig, FinishedAt: -1,
			})
			if rec := s.rec; rec != nil {
				rec.Emit(obs.Event{Slot: horizon, Kind: obs.EvMiss, Task: j.ts.obsID, Proc: 0, A: j.index, B: j.orig})
			}
		}
	}
	record(s.running)
	for _, it := range s.ready.Items() {
		record(it.Value)
	}
	// Walk backlogs in sorted task order so the recorded miss sequence is
	// a pure function of the workload, not of map iteration order.
	names := make([]string, 0, len(s.tasks))
	for name := range s.tasks { //pfair:orderinvariant collects keys for sorting
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, j := range s.tasks[name].backlog {
			record(j)
		}
	}
}
