// Package stats provides the summary statistics the paper reports with its
// experimental results: sample means, standard deviations, and 99%
// confidence intervals with relative errors (every figure caption in the
// paper quotes the 99% CI relative error of its point samples).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// AddInt appends an integer observation.
func (s *Sample) AddInt(x int64) { s.Add(float64(x)) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// StdDev returns the sample standard deviation (n−1 in the denominator).
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by nearest-rank on
// a sorted copy.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// z99 is the two-sided 99% normal critical value. The paper's samples are
// means of 1000 task sets, so the normal approximation is appropriate.
const z99 = 2.5758293035489004

// CI99 returns the half-width of the 99% confidence interval of the mean.
func (s *Sample) CI99() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	return z99 * s.StdDev() / math.Sqrt(float64(n))
}

// RelErr99 returns the 99% CI half-width as a fraction of the mean — the
// "relative error" the paper's figure captions quote (e.g. "less than 1.2%
// of the reported value"). It returns 0 when the mean is 0.
func (s *Sample) RelErr99() float64 {
	m := s.Mean()
	if m == 0 {
		return 0
	}
	return math.Abs(s.CI99() / m)
}

// String renders "mean ± ci99 (n=…)".
func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean(), s.CI99(), s.N())
}
