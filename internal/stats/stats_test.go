package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample stddev with n−1: variance = 32/7.
	want := math.Sqrt(32.0 / 7.0)
	if got := s.StdDev(); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
}

func TestEmptyAndSingle(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.StdDev() != 0 || s.CI99() != 0 || s.RelErr99() != 0 {
		t.Error("empty sample should report zeros")
	}
	if s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Error("empty sample extremes should be 0")
	}
	s.Add(3)
	if s.Mean() != 3 || s.StdDev() != 0 || s.CI99() != 0 {
		t.Error("single observation should have zero spread")
	}
}

func TestMinMaxPercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.AddInt(int64(i))
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != 50 {
		t.Errorf("P50 = %v, want 50", got)
	}
	if got := s.Percentile(99); got != 99 {
		t.Errorf("P99 = %v, want 99", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Errorf("P100 = %v, want 100", got)
	}
}

// TestCI99Coverage: the 99% CI of the mean of normal draws covers the true
// mean in roughly 99% of repetitions.
func TestCI99Coverage(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	const reps = 400
	covered := 0
	for rep := 0; rep < reps; rep++ {
		var s Sample
		for i := 0; i < 200; i++ {
			s.Add(10 + 3*r.NormFloat64())
		}
		lo, hi := s.Mean()-s.CI99(), s.Mean()+s.CI99()
		if lo <= 10 && 10 <= hi {
			covered++
		}
	}
	frac := float64(covered) / reps
	if frac < 0.96 {
		t.Errorf("99%% CI covered the mean in only %.1f%% of repetitions", 100*frac)
	}
}

func TestRelErr99(t *testing.T) {
	var s Sample
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		s.Add(100 + r.NormFloat64())
	}
	// σ≈1, n=1000 → CI ≈ 2.58/√1000 ≈ 0.081 → rel err ≈ 0.08%.
	if re := s.RelErr99(); re > 0.002 {
		t.Errorf("RelErr99 = %v, want < 0.2%%", re)
	}
}

func TestString(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(3)
	if got := s.String(); got == "" {
		t.Error("empty String")
	}
}

// TestQuickMeanWithinRange: the mean lies in [min, max].
func TestQuickMeanWithinRange(t *testing.T) {
	f := func(xs []float64) bool {
		var s Sample
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				// Magnitudes near MaxFloat64 overflow the plain
				// accumulation; the package targets experiment-scale
				// values.
				return true
			}
			s.Add(x)
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-9*math.Abs(s.Min())-1e-9 && m <= s.Max()+1e-9*math.Abs(s.Max())+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
