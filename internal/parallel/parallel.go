// Package parallel provides the fan-out primitive behind the experiment
// harness: a bounded worker pool that runs independent trials across
// GOMAXPROCS-many goroutines while keeping results deterministic.
//
// Determinism is a contract between this package and its callers, split as
// follows. For guarantees only that fn(0) … fn(n−1) each run exactly once;
// the caller guarantees that trials are independent — each fn(i) seeds its
// own RNG from the trial index (taskgen.SubSeed) and writes only to slot i
// of a pre-sized result slice — and folds the slots in index order
// afterwards. Under that split the output is byte-identical for every
// worker count, including the serial workers ≤ 1 path, which is the old
// single-core harness verbatim (no goroutines at all).
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count setting: values ≤ 0 mean "one worker
// per CPU" (runtime.NumCPU()); positive values pass through. Experiment
// configs store 0 for "serial" and the CLI resolves its default through
// this function, so library callers that leave the field zero keep the
// exact historical single-threaded behavior.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.NumCPU()
	}
	return requested
}

// For runs fn(i) for every i in [0, n), spread over at most workers
// goroutines. With workers ≤ 1 (or n ≤ 1) it degenerates to a plain loop on
// the calling goroutine. Indices are handed out dynamically (an atomic
// counter, not static striping), so a slow trial never idles the other
// workers. For returns only after every fn has returned; if any fn panics,
// For panics on the calling goroutine after the remaining workers drain.
func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicked == nil {
								panicked = r
							}
							panicMu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		//pfair:allowpanic re-raises a worker goroutine's panic on the caller, like errgroup re-returns errors
		panic(fmt.Sprintf("parallel: trial panicked: %v", panicked))
	}
}
