package parallel

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		n := 57
		counts := make([]int32, n)
		For(workers, n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: fn(%d) ran %d times", workers, i, c)
			}
		}
	}
}

func TestForSerialRunsInOrder(t *testing.T) {
	var got []int
	For(1, 5, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("serial order broken: %v", got)
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	ran := false
	For(4, 0, func(int) { ran = true })
	For(4, -3, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n ≤ 0")
	}
}

// TestForDeterministicFold is the contract in miniature: per-index results
// folded in index order are identical for every worker count.
func TestForDeterministicFold(t *testing.T) {
	compute := func(workers int) float64 {
		res := make([]float64, 100)
		For(workers, len(res), func(i int) {
			res[i] = float64(i*i%7) / 3.0
		})
		sum := 0.0
		for _, v := range res {
			sum = sum/2 + v // order-sensitive fold
		}
		return sum
	}
	want := compute(1)
	for _, w := range []int{2, 3, 7, 64} {
		if got := compute(w); got != want {
			t.Fatalf("workers=%d: fold %v != serial %v", w, got, want)
		}
	}
}

func TestForPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic lost its payload: %v", r)
		}
	}()
	For(4, 16, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("positive request should pass through")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Error("non-positive request should resolve to ≥ 1")
	}
}
