package overhead

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pfair/internal/rational"
	"pfair/internal/task"
	"pfair/internal/taskgen"
)

// paperParams mirrors the Section 4 experimental constants with a flat
// (m-independent) PD² scheduling cost for unit tests.
func paperParams(d int64) Params {
	return Params{
		Quantum:       1000,
		ContextSwitch: 5,
		SchedEDF:      1,
		SchedPD2:      func(m, n int) int64 { return 3 },
		CacheDelay:    func(*task.Task) int64 { return d },
	}
}

func TestInflateEDF(t *testing.T) {
	p := paperParams(33)
	// e' = e + 2(S+C) + maxD = 100 + 2*6 + 40 = 152.
	if got := InflateEDF(100, p, 40); got != 152 {
		t.Errorf("InflateEDF = %d, want 152", got)
	}
	// No preemptable tasks on the processor: maxD = 0.
	if got := InflateEDF(100, p, 0); got != 112 {
		t.Errorf("InflateEDF = %d, want 112", got)
	}
}

func TestInflatePD2HandWorked(t *testing.T) {
	p := paperParams(0)
	// Task e=1500 µs, p=10000 µs (10 quanta), S=3, C=5, D=20.
	// Iter 1 from e'=1500: E=2, preempts=min(1, 8)=1,
	//   e' = 1500 + 2*3 + 5 + 1*(5+20) = 1536. E stays 2 → converged.
	got, iters, ok := InflatePD2(1500, 10000, p, 3, 20)
	if !ok {
		t.Fatal("inflation rejected")
	}
	if got != 1536 {
		t.Errorf("InflatePD2 = %d, want 1536", got)
	}
	if iters < 2 {
		t.Errorf("iters = %d, want at least 2 (initial + confirm)", iters)
	}
}

func TestInflatePD2CrossesQuantum(t *testing.T) {
	p := paperParams(0)
	// e=995 in 2-quantum period: E=1 initially, overhead pushes e' past
	// one quantum, raising E to 2 and the preemption term with it.
	got, _, ok := InflatePD2(995, 2000, p, 3, 50)
	if !ok {
		t.Fatal("rejected")
	}
	// Round 1: E=1, preempts=min(0,1)=0 → e'=995+3+5=1003.
	// Round 2: E=2, preempts=min(1,0)=0 → e'=995+6+5=1006. Stable.
	if got != 1006 {
		t.Errorf("InflatePD2 = %d, want 1006", got)
	}
}

func TestInflatePD2Infeasible(t *testing.T) {
	p := paperParams(0)
	// A full-weight task cannot absorb any overhead.
	if _, _, ok := InflatePD2(1000, 1000, p, 3, 10); ok {
		t.Error("weight-1 task accepted despite overhead")
	}
}

func TestInflatePD2PanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for period not a multiple of the quantum")
		}
	}()
	InflatePD2(100, 1500, paperParams(0), 3, 0)
}

func TestPD2Weight(t *testing.T) {
	// 1536 µs in 1 ms quanta = 2 quanta per 10 slots → 1/5.
	if got := PD2Weight(1536, 10000, 1000); !got.Equal(rational.New(1, 5)) {
		t.Errorf("PD2Weight = %v, want 1/5", got)
	}
}

// TestInflationConvergence reproduces the Section 4 observation: over
// random task sets the fixed point converges within a handful of
// iterations (the paper says "usually within five").
func TestInflationConvergence(t *testing.T) {
	g := taskgen.New(99)
	p := paperParams(0)
	worst := 0
	for trial := 0; trial < 50; trial++ {
		set, err := g.Set("T", 50, 5.0, taskgen.DefaultPeriodsUS)
		if err != nil {
			t.Fatal(err)
		}
		delays := g.CacheDelays(set, 100)
		for _, tk := range set {
			_, iters, ok := InflatePD2(tk.Cost, tk.Period, p, 3, delays[tk.Name])
			if !ok {
				continue
			}
			if iters > worst {
				worst = iters
			}
		}
	}
	if worst > 8 {
		t.Errorf("worst-case fixed-point iterations = %d, expected a handful", worst)
	}
	if worst == 0 {
		t.Error("no inflation was exercised")
	}
}

// TestQuickInflationIsSound: the returned e′ always covers the right-hand
// side of Equation (3) evaluated at e′ — the soundness condition even when
// the recurrence oscillated.
func TestQuickInflationIsSound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := paperParams(0)
		pq := int64(2 + r.Intn(1000))
		per := pq * p.Quantum
		e := 1 + r.Int63n(per)
		sPD2 := int64(r.Intn(20))
		d := int64(r.Intn(150))
		got, _, ok := InflatePD2(e, per, p, sPD2, d)
		if !ok {
			return true
		}
		eq := rational.CeilDiv(got, p.Quantum)
		preempts := eq - 1
		if pq-eq < preempts {
			preempts = pq - eq
		}
		rhs := e + eq*sPD2 + p.ContextSwitch + preempts*(p.ContextSwitch+d)
		if got < rhs {
			t.Logf("e=%d per=%d s=%d d=%d: e'=%d < rhs=%d", e, per, sPD2, d, got, rhs)
			return false
		}
		return got >= e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMinProcsPD2Smoke(t *testing.T) {
	g := taskgen.New(7)
	set, err := g.Set("T", 50, 5.0, taskgen.DefaultPeriodsUS)
	if err != nil {
		t.Fatal(err)
	}
	delays := g.CacheDelays(set, 100)
	p := Params{
		Quantum:       1000,
		ContextSwitch: 5,
		SchedEDF:      1,
		SchedPD2:      func(m, n int) int64 { return int64(2 + m/4) },
		CacheDelay:    func(t *task.Task) int64 { return delays[t.Name] },
	}
	res := MinProcsPD2(set, p)
	if res.Processors < set.MinProcessors() {
		t.Errorf("PD² with overheads needs %d < overhead-free bound %d", res.Processors, set.MinProcessors())
	}
	if res.Processors > 3*set.MinProcessors()+2 {
		t.Errorf("PD² needs implausibly many processors: %d (base %d)", res.Processors, set.MinProcessors())
	}
	if res.InflatedUtil <= res.BaseUtil {
		t.Error("inflation did not increase utilization")
	}
	if res.Iterations < 1 {
		t.Error("no iterations recorded")
	}
}

func TestMinProcsEDFFFSmoke(t *testing.T) {
	g := taskgen.New(8)
	set, err := g.Set("T", 50, 5.0, taskgen.DefaultPeriodsUS)
	if err != nil {
		t.Fatal(err)
	}
	delays := g.CacheDelays(set, 100)
	p := paperParams(0)
	p.CacheDelay = func(t *task.Task) int64 { return delays[t.Name] }
	res := MinProcsEDFFF(set, p)
	if res.Processors < set.MinProcessors() {
		t.Errorf("EDF-FF needs %d < lower bound %d", res.Processors, set.MinProcessors())
	}
	if res.InflatedUtil <= res.BaseUtil {
		t.Error("inflation did not increase utilization")
	}
}

// TestLowUtilizationBothNearIdeal: when per-task utilizations are tiny,
// both schemes need close to the ideal processor count — the left edge of
// Figure 3 where the curves coincide.
func TestLowUtilizationBothNearIdeal(t *testing.T) {
	g := taskgen.New(9)
	set, err := g.Set("T", 50, 1.8, taskgen.DefaultPeriodsUS) // mean util 0.036
	if err != nil {
		t.Fatal(err)
	}
	delays := g.CacheDelays(set, 100)
	p := paperParams(0)
	p.CacheDelay = func(t *task.Task) int64 { return delays[t.Name] }
	pd2 := MinProcsPD2(set, p)
	ff := MinProcsEDFFF(set, p)
	if pd2.Processors > 4 || ff.Processors > 4 {
		t.Errorf("low-utilization set needs pd2=%d ff=%d processors; both should be near 2",
			pd2.Processors, ff.Processors)
	}
}

// TestComputeLossesDecomposition: losses are non-negative and the EDF-FF
// split adds up: inflated util + stranded capacity = platform.
func TestComputeLossesDecomposition(t *testing.T) {
	g := taskgen.New(10)
	set, err := g.Set("T", 50, 8.0, taskgen.DefaultPeriodsUS)
	if err != nil {
		t.Fatal(err)
	}
	delays := g.CacheDelays(set, 100)
	p := paperParams(0)
	p.CacheDelay = func(t *task.Task) int64 { return delays[t.Name] }
	l, pd2, ff := ComputeLosses(set, p)
	if pd2.Processors <= 0 || ff.Processors <= 0 {
		t.Fatalf("unschedulable: %+v %+v", pd2, ff)
	}
	if l.Pfair < 0 || l.EDF < 0 || l.FF < 0 {
		t.Errorf("negative loss: %+v", l)
	}
	sum := (ff.InflatedUtil-ff.BaseUtil)/float64(ff.Processors) +
		(float64(ff.Processors)-ff.InflatedUtil)/float64(ff.Processors)
	if got := l.EDF + l.FF; got < sum-1e-9 || got > sum+1e-9 {
		t.Errorf("loss split does not decompose: %v vs %v", got, sum)
	}
}

func TestParamsValidate(t *testing.T) {
	good := paperParams(0)
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := good
	bad.Quantum = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero quantum accepted")
	}
	bad = good
	bad.SchedPD2 = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil SchedPD2 accepted")
	}
	bad = good
	bad.ContextSwitch = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative cost accepted")
	}
}

// TestMinProcsPD2Infeasible: a task whose inflated weight exceeds one at
// this quantum makes the whole computation report -1.
func TestMinProcsPD2Infeasible(t *testing.T) {
	set := task.Set{task.MustNew("hog", 996, 1000)} // inflation pushes past the 1-quantum period
	p := paperParams(50)
	res := MinProcsPD2(set, p)
	if res.Processors != -1 {
		t.Errorf("Processors = %d, want -1 (inflation exceeds the period)", res.Processors)
	}
}

// TestMinProcsEDFFFInfeasible: EDF inflation can also exceed a period.
func TestMinProcsEDFFFInfeasible(t *testing.T) {
	set := task.Set{task.MustNew("hog", 995, 1000)}
	p := paperParams(0) // e' = 995 + 2(1+5) = 1007 > 1000
	res := MinProcsEDFFF(set, p)
	if res.Processors != -1 {
		t.Errorf("Processors = %d, want -1", res.Processors)
	}
}

// TestMinProcsPD2ValidatePanics covers the parameter guard.
func TestMinProcsPD2ValidatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid params")
		}
	}()
	MinProcsPD2(task.Set{task.MustNew("a", 1, 1000)}, Params{})
}

// TestMinProcsEDFFFValidatePanics covers the parameter guard.
func TestMinProcsEDFFFValidatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid params")
		}
	}()
	MinProcsEDFFF(task.Set{task.MustNew("a", 1, 1000)}, Params{})
}

// TestMinProcsPD2GrowingS: a scheduling-cost model that grows with m makes
// the self-consistency loop iterate upward and still converge.
func TestMinProcsPD2GrowingS(t *testing.T) {
	g := taskgen.New(21)
	set, err := g.SetCapped("T", 60, 20, 0.8, []int64{50000, 100000, 500000})
	if err != nil {
		t.Fatal(err)
	}
	p := Params{
		Quantum:       1000,
		ContextSwitch: 5,
		SchedEDF:      1,
		SchedPD2:      func(m, n int) int64 { return int64(2 + m) },
		CacheDelay:    func(*task.Task) int64 { return 30 },
	}
	res := MinProcsPD2(set, p)
	if res.Processors < 20 {
		t.Errorf("Processors = %d, want ≥ the overhead-free bound 20", res.Processors)
	}
	// Self-consistency: recomputing at the returned count agrees.
	s := p.SchedPD2(res.Processors, len(set))
	if s <= 2 {
		t.Fatal("model not exercised")
	}
}
