// Package overhead implements Section 4 of the paper: accounting for
// scheduling, context-switching, and cache-related preemption costs by
// inflating task execution requirements (Equation (3)), and the resulting
// schedulability machinery that Figures 3 and 4 are computed from.
//
// All times are in microseconds. For a task with base cost e and period p,
// quantum size q, per-invocation scheduling cost S, context-switch cost C,
// and cache-related preemption delay D(T):
//
//	EDF:  e′ = e + 2(S_EDF + C) + max_{U ∈ P_T} D(U)
//	PD²:  e′ = e + ⌈e′/q⌉·S_PD² + C + min(⌈e′/q⌉ − 1, p/q − ⌈e′/q⌉)·(C + D(T))
//
// where P_T is the set of tasks on T's processor with periods larger than
// T's. The PD² equation has e′ on both sides because the number of
// preemptions a job suffers varies with its (inflated) cost; it is solved
// by fixed-point iteration from e′ = e, which the paper observes converges
// within about five iterations.
package overhead

import (
	"fmt"

	"pfair/internal/partition"
	"pfair/internal/rational"
	"pfair/internal/task"
)

// Params carries the system-overhead constants of the Section 4
// experiments.
type Params struct {
	// Quantum is the PD² allocation quantum q in µs (the paper uses
	// 1000 µs = 1 ms).
	Quantum int64
	// ContextSwitch is C in µs (the paper fixes 5 µs, citing a 1–10 µs
	// range for then-modern processors).
	ContextSwitch int64
	// SchedEDF is S_EDF, the per-invocation cost of the EDF scheduler.
	SchedEDF int64
	// SchedPD2 returns S_PD², the per-invocation (per-slot) cost of the
	// PD² scheduler, which grows with the processor and task counts
	// (Figure 2(b)); the experiment harness feeds it measured values.
	SchedPD2 func(m, n int) int64
	// CacheDelay returns D(T), the cache-related preemption delay of a
	// task (the experiments draw it uniformly from [0, 100] µs).
	CacheDelay func(t *task.Task) int64
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Quantum <= 0 {
		return fmt.Errorf("overhead: quantum %d must be positive", p.Quantum)
	}
	if p.ContextSwitch < 0 || p.SchedEDF < 0 {
		return fmt.Errorf("overhead: negative cost")
	}
	if p.SchedPD2 == nil || p.CacheDelay == nil {
		return fmt.Errorf("overhead: SchedPD2 and CacheDelay are required")
	}
	return nil
}

// InflateEDF returns the inflated cost of a task under EDF given the
// largest cache delay among the same-processor tasks it can preempt.
func InflateEDF(e int64, p Params, maxD int64) int64 {
	return e + 2*(p.SchedEDF+p.ContextSwitch) + maxD
}

// InflatePD2 solves the PD² branch of Equation (3) for a task with base
// cost e and period per (per must be a multiple of the quantum, as the
// paper assumes). It returns the inflated cost, the number of fixed-point
// iterations used, and ok=false if the inflation drives the task's weight
// above one (the task cannot be scheduled at this quantum size).
func InflatePD2(e, per int64, p Params, sPD2, d int64) (inflated int64, iters int, ok bool) {
	return InflatePD2From(e, e, per, p, sPD2, d)
}

// InflatePD2From solves the same fixed point starting the iteration from
// an explicit initial value (clamped to at least e). Warm-starting from a
// previous sweep's result cuts the iteration count — the ablation
// benchmark quantifies by how much.
func InflatePD2From(e, start, per int64, p Params, sPD2, d int64) (inflated int64, iters int, ok bool) {
	if per%p.Quantum != 0 {
		//pfair:allowpanic caller contract: Params.Validate aligns periods before any sweep
		panic(fmt.Sprintf("overhead: period %d not a multiple of quantum %d", per, p.Quantum))
	}
	pq := per / p.Quantum
	cur := start
	if cur < e {
		cur = e
	}
	for iters = 1; iters <= 64; iters++ {
		eq := rational.CeilDiv(cur, p.Quantum)
		if eq > pq {
			return 0, iters, false
		}
		preempts := eq - 1
		if pq-eq < preempts {
			preempts = pq - eq
		}
		next := e + eq*sPD2 + p.ContextSwitch + preempts*(p.ContextSwitch+d)
		if next == cur {
			return cur, iters, true
		}
		if next < cur {
			// The recurrence is not monotone (the min(E−1, P−E) term
			// shrinks as E grows), so it can oscillate. cur ≥ rhs(cur)
			// means cur already covers all overheads — a sound, slightly
			// conservative inflation.
			return cur, iters, true
		}
		cur = next
	}
	// The sequence increased 64 times without converging; with costs
	// bounded by the weight-1 rejection this is unreachable, but be
	// defensive.
	return 0, iters, false
}

// PD2Weight returns the quantum-rounded weight of an inflated task:
// ⌈e′/q⌉ quanta per p/q slots. The rounding-up of execution costs to whole
// quanta is itself a schedulability loss the paper discusses.
func PD2Weight(inflated, per int64, q int64) rational.Rat {
	return rational.New(rational.CeilDiv(inflated, q), per/q)
}

// Result summarizes a schedulability computation for one task set.
type Result struct {
	// Processors is the minimum processor count that renders the set
	// schedulable, or −1 if no finite count does (some task's inflated
	// weight exceeds one).
	Processors int
	// BaseUtil is Σ e/p before inflation.
	BaseUtil float64
	// InflatedUtil is the total utilization (EDF) or weight (PD²,
	// quantum-rounded) after inflation at the returned processor count.
	InflatedUtil float64
	// Iterations is the maximum fixed-point iteration count among the
	// tasks (PD² only).
	Iterations int
}

// MinProcsPD2 computes the minimum number of processors PD² needs for the
// set once Equation (3) inflation and quantum rounding are applied. Since
// S_PD² itself grows with the processor count, the computation iterates:
// start from the overhead-free bound and recompute until the count is
// self-consistent.
func MinProcsPD2(set task.Set, p Params) Result {
	if err := p.Validate(); err != nil {
		//pfair:allowpanic experiment parameters are static tables; Validate failures are programmer errors
		panic(err)
	}
	res := Result{BaseUtil: set.TotalUtilization()}
	m := int(set.TotalWeight().Ceil())
	if m < 1 {
		m = 1
	}
	for round := 0; round < 32; round++ {
		s := p.SchedPD2(m, len(set))
		total := rational.NewAcc()
		maxIters := 0
		for _, t := range set {
			infl, iters, ok := InflatePD2(t.Cost, t.Period, p, s, p.CacheDelay(t))
			if iters > maxIters {
				maxIters = iters
			}
			if !ok {
				return Result{Processors: -1, BaseUtil: res.BaseUtil, Iterations: iters}
			}
			total.Add(PD2Weight(infl, t.Period, p.Quantum))
		}
		need := int(total.Ceil())
		if need < 1 {
			need = 1
		}
		res.Iterations = maxIters
		res.InflatedUtil = total.Float()
		if need == m {
			res.Processors = m
			return res
		}
		if need < m {
			// Overheads only grow with m, so a smaller need at larger m
			// is self-consistent already; keep the smaller answer and
			// re-verify.
			m = need
			continue
		}
		m = need
	}
	res.Processors = m
	return res
}

// MinProcsEDFFF computes the minimum number of processors EDF-FF needs
// with inflation applied. Tasks are considered in decreasing-period order
// so that when a task is placed, the tasks it can preempt (same processor,
// larger period) — whose cache delays determine its inflation — are
// already known (Section 4).
func MinProcsEDFFF(set task.Set, p Params) Result {
	if err := p.Validate(); err != nil {
		//pfair:allowpanic experiment parameters are static tables; Validate failures are programmer errors
		panic(err)
	}
	res := Result{BaseUtil: set.TotalUtilization()}
	ordered := set.SortByPeriodDecreasing()

	// inflatedUtil computes the exact inflated utilization of a
	// processor's tasks plus the candidate.
	accept := func(assigned task.Set, cand *task.Task) bool {
		total := rational.NewAcc()
		add := func(t *task.Task, others task.Set) bool {
			maxD := int64(0)
			for _, u := range others {
				if u.Period > t.Period {
					if d := p.CacheDelay(u); d > maxD {
						maxD = d
					}
				}
			}
			infl := InflateEDF(t.Cost, p, maxD)
			if infl > t.Period {
				return false
			}
			total.Add(rational.New(infl, t.Period))
			return true
		}
		all := append(assigned.Clone(), cand)
		for _, t := range all {
			if !add(t, all) {
				return false
			}
		}
		return total.CmpInt(1) <= 0
	}

	a := partition.Pack(ordered, 0, partition.FirstFit, accept)
	if !a.OK() {
		return Result{Processors: -1, BaseUtil: res.BaseUtil}
	}
	res.Processors = a.NumUsed()
	// Report the final inflated utilization across all processors.
	util := rational.NewAcc()
	for _, proc := range a.Processors {
		for _, t := range proc {
			maxD := int64(0)
			for _, u := range proc {
				if u.Period > t.Period {
					if d := p.CacheDelay(u); d > maxD {
						maxD = d
					}
				}
			}
			util.Add(rational.New(InflateEDF(t.Cost, p, maxD), t.Period))
		}
	}
	res.InflatedUtil = util.Float()
	return res
}

// Losses decomposes the schedulability loss of one task set at the
// computed processor counts, for Figure 4:
//
//   - Pfair: the fraction of PD²'s allocated platform consumed by
//     overhead inflation and quantum rounding, (W′ − U)/M_PD².
//   - EDF: the fraction of EDF-FF's platform consumed by EDF inflation,
//     (U′ − U)/M_FF.
//   - FF: the fraction of EDF-FF's platform stranded by bin-packing,
//     (M_FF − U′)/M_FF.
//
// The paper does not spell out its normalization; this one reproduces the
// qualitative shape (packing loss dominating as utilization grows).
type Losses struct {
	Pfair, EDF, FF float64
}

// ComputeLosses evaluates both schemes on the set and returns the loss
// split along with the two Results.
func ComputeLosses(set task.Set, p Params) (Losses, Result, Result) {
	pd2 := MinProcsPD2(set, p)
	ff := MinProcsEDFFF(set, p)
	var l Losses
	if pd2.Processors > 0 {
		l.Pfair = (pd2.InflatedUtil - pd2.BaseUtil) / float64(pd2.Processors)
	}
	if ff.Processors > 0 {
		l.EDF = (ff.InflatedUtil - ff.BaseUtil) / float64(ff.Processors)
		l.FF = (float64(ff.Processors) - ff.InflatedUtil) / float64(ff.Processors)
	}
	return l, pd2, ff
}
