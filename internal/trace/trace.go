// Package trace renders Pfair window layouts and schedules as ASCII
// diagrams in the style of the paper's Figures 1 and 5: one row per
// subtask (windows) or per task (schedules), one column per slot.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"pfair/internal/core"
)

// Windows renders the windows of subtasks first..last of a pattern, one
// row per subtask, with a slot ruler. offset shifts all windows (pass an
// IS offset function's values via WindowsIS for per-subtask shifts).
func Windows(pat *core.Pattern, first, last int64) (string, error) {
	return WindowsIS(pat, first, last, func(int64) int64 { return 0 })
}

// WindowsIS renders IS-shifted windows: subtask i's window moves right by
// offset(i). It returns an error unless 1 ≤ first ≤ last.
func WindowsIS(pat *core.Pattern, first, last int64, offset func(i int64) int64) (string, error) {
	if first < 1 || last < first {
		return "", fmt.Errorf("trace: invalid subtask range [%d, %d]", first, last)
	}
	end := pat.Deadline(last) + offset(last)
	var b strings.Builder
	writeRuler(&b, "      ", end)
	for i := first; i <= last; i++ {
		r := pat.Release(i) + offset(i)
		d := pat.Deadline(i) + offset(i)
		fmt.Fprintf(&b, "T%-3d |", i)
		for t := int64(0); t < end; t++ {
			switch {
			case t >= r && t < d:
				b.WriteByte('=')
			default:
				b.WriteByte(' ')
			}
		}
		b.WriteString("|\n")
	}
	return b.String(), nil
}

// Recorder captures a schedule via core.Scheduler.OnSlot and renders it.
type Recorder struct {
	rows  map[string][]byte
	order []string
	slots int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{rows: map[string][]byte{}}
}

// Record is an OnSlot callback: each assignment paints the task's row with
// the processor digit at the slot column.
//
//pfair:allowalloc the ASCII-art recorder grows per-task rows as the trace extends; diagnostic tooling, detached in measured runs
func (r *Recorder) Record(t int64, assigned []core.Assignment) {
	if t+1 > r.slots {
		r.slots = t + 1
	}
	for _, a := range assigned {
		row, ok := r.rows[a.Task]
		if !ok {
			r.order = append(r.order, a.Task)
		}
		for int64(len(row)) <= t {
			row = append(row, '.')
		}
		c := byte('0' + a.Proc%10)
		if a.Proc > 9 {
			c = '+'
		}
		row[t] = c
		r.rows[a.Task] = row
	}
}

// Render draws slots [from, to) with one row per task (in first-appearance
// order; pass names to fix the order and include never-scheduled tasks).
func (r *Recorder) Render(from, to int64, names ...string) string {
	if len(names) == 0 {
		names = append([]string(nil), r.order...)
		sort.Strings(names)
	}
	var b strings.Builder
	width := 0
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	writeRuler(&b, strings.Repeat(" ", width+2), to-from)
	for _, n := range names {
		fmt.Fprintf(&b, "%-*s |", width, n)
		row := r.rows[n]
		for t := from; t < to; t++ {
			if t >= 0 && t < int64(len(row)) {
				b.WriteByte(row[t])
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// writeRuler prints a tens/units slot ruler after the given left margin.
func writeRuler(b *strings.Builder, margin string, width int64) {
	b.WriteString(margin)
	for t := int64(0); t < width; t++ {
		if t%10 == 0 {
			fmt.Fprintf(b, "%d", (t/10)%10)
		} else {
			b.WriteByte(' ')
		}
	}
	b.WriteByte('\n')
	b.WriteString(margin)
	for t := int64(0); t < width; t++ {
		fmt.Fprintf(b, "%d", t%10)
	}
	b.WriteByte('\n')
}
