package trace

import (
	"strings"
	"testing"

	"pfair/internal/core"
	"pfair/internal/task"
)

// TestWindowsFig1a renders the Figure 1(a) layout and spot-checks rows.
func TestWindowsFig1a(t *testing.T) {
	out, err := Windows(core.NewPattern(8, 11), 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 2 ruler lines + 8 subtask rows.
	if len(lines) != 10 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// T1 window [0,2).
	if want := "T1   |==         |"; lines[2] != want {
		t.Errorf("T1 row %q, want %q", lines[2], want)
	}
	// T3 window [2,5).
	if want := "T3   |  ===      |"; lines[4] != want {
		t.Errorf("T3 row %q, want %q", lines[4], want)
	}
	// T8 window [9,11).
	if want := "T8   |         ==|"; lines[9] != want {
		t.Errorf("T8 row %q, want %q", lines[9], want)
	}
}

// TestWindowsIS renders Figure 1(b): T5 one slot late shifts rows 5+.
func TestWindowsIS(t *testing.T) {
	off := func(i int64) int64 {
		if i >= 5 {
			return 1
		}
		return 0
	}
	out, err := WindowsIS(core.NewPattern(8, 11), 1, 8, off)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// T4 unshifted: [4,6); T5 shifted: [6,8) instead of [5,7).
	if !strings.Contains(lines[5], "    ==") {
		t.Errorf("T4 row %q", lines[5])
	}
	if want := "T5   |      ==    |"; lines[6] != want {
		t.Errorf("T5 row %q, want %q", lines[6], want)
	}
}

func TestWindowsRejectsBadRange(t *testing.T) {
	if _, err := Windows(core.NewPattern(1, 2), 3, 2); err == nil {
		t.Fatal("Windows accepted an inverted subtask range")
	}
	if _, err := Windows(core.NewPattern(1, 2), 0, 2); err == nil {
		t.Fatal("Windows accepted a zero first subtask")
	}
}

func TestRecorderRender(t *testing.T) {
	s := core.NewScheduler(1, core.PD2, core.Options{})
	rec := NewRecorder()
	s.OnSlot(rec.Record)
	if err := s.Join(task.MustNew("T", 1, 2)); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(6)
	out := rec.Render(0, 6)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines: %v", lines)
	}
	// Weight-1/2 task on one processor: scheduled every other slot.
	if want := "T |0.0.0.|"; lines[2] != want {
		t.Errorf("row %q, want %q", lines[2], want)
	}
}

func TestRecorderExplicitOrderAndProcDigits(t *testing.T) {
	s := core.NewScheduler(2, core.PD2, core.Options{})
	rec := NewRecorder()
	s.OnSlot(rec.Record)
	for _, tk := range []*task.Task{task.MustNew("A", 1, 1), task.MustNew("B", 1, 1)} {
		if err := s.Join(tk); err != nil {
			t.Fatal(err)
		}
	}
	s.RunUntil(4)
	out := rec.Render(0, 4, "B", "A", "C")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines:\n%s", out)
	}
	if !strings.HasPrefix(lines[2], "B |") {
		t.Errorf("explicit order ignored: %q", lines[2])
	}
	// C never scheduled: all dots.
	if want := "C |....|"; lines[4] != want {
		t.Errorf("C row %q, want %q", lines[4], want)
	}
	// Weight-1 tasks stay on their processors: rows are constant digits.
	for _, row := range lines[2:4] {
		body := row[3 : len(row)-1]
		if strings.Contains(body, ".") {
			t.Errorf("weight-1 task idle: %q", row)
		}
	}
}
