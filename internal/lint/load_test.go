package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// writeTree lays out files under a fresh temp dir and returns its root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadNoModule(t *testing.T) {
	_, err := Load(t.TempDir(), []string{"./..."})
	if err == nil {
		t.Fatal("Load in an empty directory succeeded, want go list error")
	}
	if !strings.Contains(err.Error(), "go list") {
		t.Errorf("error does not name go list: %v", err)
	}
}

func TestLoadParseError(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "module broken\n\ngo 1.24\n",
		"pkg.go": "package broken\n\nfunc F( {\n",
		"ok.go":  "package broken\n\nfunc G() {}\n",
	})
	_, err := Load(dir, []string{"."})
	if err == nil {
		t.Fatal("Load of a syntactically broken package succeeded, want parse error")
	}
	if !strings.Contains(err.Error(), "pkg.go") {
		t.Errorf("error does not point at the broken file: %v", err)
	}
}

func TestLoadTypeError(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "module broken\n\ngo 1.24\n",
		"pkg.go": "package broken\n\nfunc F() int { return undefinedName }\n",
	})
	_, err := Load(dir, []string{"."})
	if err == nil {
		t.Fatal("Load of an ill-typed package succeeded, want type-check error")
	}
	if !strings.Contains(err.Error(), "type-checking") {
		t.Errorf("error does not name the type-checking phase: %v", err)
	}
}

func TestSortDiagnostics(t *testing.T) {
	d := func(file string, line, col int, analyzer, msg string) Diagnostic {
		return Diagnostic{
			Pos:      token.Position{Filename: file, Line: line, Column: col},
			Analyzer: analyzer,
			Message:  msg,
		}
	}
	want := []Diagnostic{
		d("a.go", 1, 1, "hotpath", "x"),
		d("a.go", 1, 2, "hotpath", "x"),
		d("a.go", 1, 2, "ratfloat", "x"),
		d("a.go", 1, 2, "ratfloat", "y"),
		d("a.go", 2, 1, "hotpath", "x"),
		d("b.go", 1, 1, "hotpath", "x"),
	}
	got := make([]Diagnostic, len(want))
	copy(got, want)
	// Reverse, sort, and compare against the hand-ordered slice: every
	// tiebreak level (file, line, column, analyzer, message) is exercised
	// by an adjacent pair above.
	sort.SliceStable(got, func(i, j int) bool { return j < i })
	sortDiagnostics(got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %v, want %v", i, got[i], want[i])
		}
	}
}
