package lint

import (
	"fmt"
	"testing"

	"pfair/internal/lint/callgraph"
)

func TestProbeTrackedIncomplete(t *testing.T) {
	pkgs, err := Load("testdata/src/probe", []string{"."})
	if err != nil {
		t.Fatal(err)
	}
	cps := make([]*callgraph.Package, len(pkgs))
	for i, p := range pkgs {
		cps[i] = &callgraph.Package{Path: p.Path, Files: p.Files, Pkg: p.Pkg, Info: p.Info}
	}
	g := callgraph.Build(pkgs[0].Fset, cps)
	for _, n := range g.DeclaredNodes() {
		for _, e := range n.Out {
			fmt.Printf("edge: %s -> %s (%s)\n", n.Name(), e.Callee.Name(), e.Kind)
		}
	}
}
