package linttest

import (
	"strings"
	"testing"

	"pfair/internal/lint"
)

// loadOne loads a single harness testdata package by pattern.
func loadOne(t *testing.T, pattern string) *lint.Package {
	t.Helper()
	pkgs, err := lint.Load(".", []string{pattern})
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	pkg := findPackage(pkgs, pattern)
	if pkg == nil {
		t.Fatalf("no loaded package matches %q", pattern)
	}
	return pkg
}

// TestDiffCatchesDisagreements runs the harness against a package that
// disagrees with its expectations in both directions: nopanic reports a
// panic no `want` clause claims, and a clause expects a diagnostic that
// never arrives (the stale-want case — the code a clause described was
// fixed but the comment stayed). Both must surface as problems, or
// suites rot silently.
func TestDiffCatchesDisagreements(t *testing.T) {
	pkg := loadOne(t, "./testdata/src/harness")
	problems := diff(t, pkg, lint.NoPanic)
	if len(problems) != 2 {
		t.Fatalf("got %d problems, want 2:\n%s", len(problems), strings.Join(problems, "\n"))
	}
	var unexpected, unmatched bool
	for _, p := range problems {
		if strings.Contains(p, "unexpected diagnostic") && strings.Contains(p, "[nopanic]") {
			unexpected = true
		}
		if strings.Contains(p, "no diagnostic matched") && strings.Contains(p, "never reported") {
			unmatched = true
		}
	}
	if !unexpected {
		t.Errorf("missing unexpected-diagnostic problem:\n%s", strings.Join(problems, "\n"))
	}
	if !unmatched {
		t.Errorf("missing stale-want problem:\n%s", strings.Join(problems, "\n"))
	}
}

// TestDiffRejectsVacuousSuite checks that a testdata package with no
// `want` comments fails rather than passing by matching nothing.
func TestDiffRejectsVacuousSuite(t *testing.T) {
	pkg := loadOne(t, "./testdata/src/vacuous")
	problems := diff(t, pkg, lint.NoPanic)
	if len(problems) != 1 || !strings.Contains(problems[0], "no `want` expectations") {
		t.Fatalf("got %v, want a single vacuous-suite problem", problems)
	}
}
