// Package vacuous declares no `want` expectations at all: a suite like
// this proves nothing, and the harness must say so instead of passing.
package vacuous

func fine() int { return 1 }
