// Package harness deliberately disagrees with its expectations in both
// directions — a diagnostic no clause claims, and a clause no diagnostic
// matches — so the linttest harness's own test can assert that stale
// `want` comments and unexpected reports both fail a suite.
package harness

// boom trips nopanic with no claiming clause.
func boom() {
	panic("boom")
}

// fine is clean, yet expects a report that never comes.
func fine() int { return 1 } // want `never reported`
