// Package linttest verifies pfair's analyzers against testdata
// packages, in the style of golang.org/x/tools' analysistest but on the
// stdlib-only lint framework: each testdata source marks the lines an
// analyzer must flag with trailing comments of the form
//
//	// want `regexp` `another regexp`
//
// and Run fails the test unless the analyzer reports exactly those
// diagnostics — every `want` clause must be matched by a diagnostic on
// its line, and every diagnostic must be claimed by a clause. Lines
// without a comment are negative cases: code the analyzer must accept.
//
// The marker is recognized anywhere inside a comment, not only at its
// start, so analyzers that anchor diagnostics at a comment itself (the
// staleannot audit reports the rotten annotation's own line) can embed
// the expectation in the flagged comment:
//
//	sum := 0 //pfair:allowpanic validated upstream // want `stale ...`
package linttest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"pfair/internal/lint"
)

// A Case pairs one analyzer with the go-list pattern (relative to the
// directory passed to Run) of the testdata package that exercises it.
type Case struct {
	Analyzer *lint.Analyzer
	Pattern  string
}

// Run loads every case's testdata package in a single pass — the
// type-checked standard library is shared across cases, which is what
// makes running five analyzer suites affordable — then checks each
// analyzer against its package in a subtest named after the analyzer.
func Run(t *testing.T, dir string, cases []Case) {
	t.Helper()
	patterns := make([]string, 0, len(cases))
	for _, c := range cases {
		patterns = append(patterns, c.Pattern)
	}
	pkgs, err := lint.Load(dir, patterns)
	if err != nil {
		t.Fatalf("loading testdata packages: %v", err)
	}
	for _, c := range cases {
		pkg := findPackage(pkgs, c.Pattern)
		if pkg == nil {
			t.Errorf("no loaded package matches pattern %q", c.Pattern)
			continue
		}
		c := c
		t.Run(c.Analyzer.Name, func(t *testing.T) {
			check(t, pkg, c.Analyzer)
		})
	}
}

// findPackage resolves a relative pattern like "./testdata/src/x" to
// the loaded package whose import path ends in that directory.
func findPackage(pkgs []*lint.Package, pattern string) *lint.Package {
	suffix := strings.TrimPrefix(pattern, "./")
	for _, p := range pkgs {
		if strings.HasSuffix(p.Path, "/"+suffix) || p.Path == suffix {
			return p
		}
	}
	return nil
}

// An expectation is one `want` clause: the analyzer must report a
// diagnostic at file:line whose message matches re.
type expectation struct {
	file string // base name of the source file
	line int
	re   *regexp.Regexp
	used bool
}

// wantMarker introduces an expectation, anywhere inside a comment, and
// wantClause extracts its backquoted regexps.
const wantMarker = "// want "

var wantClause = regexp.MustCompile("`([^`]*)`")

// check runs one analyzer over one package and diffs its diagnostics
// against the package's expectations.
func check(t *testing.T, pkg *lint.Package, a *lint.Analyzer) {
	t.Helper()
	for _, problem := range diff(t, pkg, a) {
		t.Error(problem)
	}
}

// diff returns one problem string per disagreement between the
// analyzer's diagnostics and the package's `want` expectations: an
// unexpected diagnostic, an unmatched clause, or a suite with no
// clauses at all (which would pass vacuously). check reports them;
// the harness's own tests assert on them directly.
func diff(t *testing.T, pkg *lint.Package, a *lint.Analyzer) []string {
	t.Helper()
	var problems []string
	wants := expectations(t, pkg)
	if len(wants) == 0 {
		return []string{pkg.Path + ": testdata declares no `want` expectations; the suite would pass vacuously"}
	}
	diags := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a})
	for _, d := range diags {
		if !claim(wants, d) {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.used {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re))
		}
	}
	return problems
}

// expectations parses every `// want` comment in the package.
func expectations(t *testing.T, pkg *lint.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, wantMarker)
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				clauses := wantClause.FindAllStringSubmatch(c.Text[idx:], -1)
				if len(clauses) == 0 {
					t.Errorf("%s:%d: `want` comment with no backquoted pattern", pos.Filename, pos.Line)
					continue
				}
				for _, m := range clauses {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
						continue
					}
					wants = append(wants, &expectation{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						re:   re,
					})
				}
			}
		}
	}
	return wants
}

// claim marks the first unused expectation matching d and reports
// whether one existed.
func claim(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if !w.used && w.file == filepath.Base(d.Pos.Filename) && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.used = true
			return true
		}
	}
	return false
}
