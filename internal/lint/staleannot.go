package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// knownDirectives is the complete //pfair: annotation grammar, mapping
// each directive to a short description of the construct that must exist
// for the annotation to mean anything.
var knownDirectives = map[string]string{
	"hotpath":        "function declaration (doc-comment form)",
	"allowpanic":     "panic call",
	"allowfloat":     "float use, float conversion, or internal/rational call",
	"allowtime":      "time.Now/time.Since call",
	"orderinvariant": "map iteration",
	"allowalloc":     "function that allocates (doc-comment form)",
	"coldcall":       "call expression",
}

// StaleAnnot audits every //pfair: annotation in the program: a
// suppression whose triggering construct no longer exists is not
// harmless — it is a hole in the invariant story that silently widens
// as code moves, and it teaches readers that annotations are noise.
// For each directive occurrence the analyzer checks that the construct
// it suppresses still exists in its scope (the annotation's own line and
// the next, or the whole function for doc-comment forms):
//
//   - allowpanic without a panic, allowtime without a wall-clock read,
//     orderinvariant without a map range, coldcall without a call, and
//     allowfloat without any float-typed expression, float conversion,
//     or internal/rational call in scope are reported as stale;
//   - allowalloc on a function with no allocation source (by the same
//     rules HotPath applies) is stale — the function earned back its
//     //pfair:hotpath;
//   - hotpath and allowalloc are whole-function markers: a line form
//     attached to anything but a function's doc comment marks nothing
//     and is reported;
//   - a //pfair: directive whose name is not in the grammar is reported
//     (a typo like //pfair:allowpannic suppresses nothing silently).
//
// The check is structural, not policy-aware: an allowfloat in a package
// ratfloat exempts is still audited — if the float it excuses is gone,
// the annotation goes too. Whether a live //pfair:hotpath is still
// reachable from the hot path is HotClosure's reachability side, not
// this analyzer's.
var StaleAnnot = &Analyzer{
	Name: "staleannot",
	Doc: "flag //pfair: annotations whose triggering construct no longer " +
		"exists (dead suppressions) and directives outside the known grammar",
	Run: runStaleAnnot,
}

func runStaleAnnot(pass *Pass) {
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				body := strings.TrimPrefix(c.Text, directivePrefix)
				name, _, _ := strings.Cut(body, " ")
				checkDirective(pass, file, c, cg, name)
			}
		}
	}
}

// checkDirective validates one directive occurrence.
func checkDirective(pass *Pass, file *ast.File, c *ast.Comment, group *ast.CommentGroup, name string) {
	if _, ok := knownDirectives[name]; !ok {
		pass.Reportf(c.Pos(), "unknown directive //pfair:%s (known: %s)", name, directiveNames())
		return
	}
	// Doc-comment form: the group is some function's doc comment, so
	// the directive covers the whole function.
	if fd := docOwner(file, group); fd != nil {
		checkDocForm(pass, file, c, fd, name)
		return
	}
	if name == "hotpath" || name == "allowalloc" {
		pass.Reportf(c.Pos(), "//pfair:%s marks whole functions; attach it to the function's doc comment", name)
		return
	}
	// Line form: the annotation covers its own line and the next.
	line := pass.Fset.Position(c.Pos()).Line
	nodes := nodesOnLines(pass, file, line, line+1)
	if !triggerExists(pass, name, nodes) {
		pass.Reportf(c.Pos(), "stale //pfair:%s: no %s on the annotated line; the construct it suppressed is gone — remove the annotation", name, knownDirectives[name])
	}
}

// checkDocForm validates a directive in a function's doc comment.
func checkDocForm(pass *Pass, file *ast.File, c *ast.Comment, fd *ast.FuncDecl, name string) {
	switch name {
	case "hotpath":
		if fd.Body == nil {
			pass.Reportf(c.Pos(), "stale //pfair:hotpath: the function has no body to check")
		}
	case "allowalloc":
		if fd.Body == nil || len(allocationSites(pass, fd)) == 0 {
			pass.Reportf(c.Pos(), "stale //pfair:allowalloc on %s: the function no longer allocates; it can carry //pfair:hotpath instead", fd.Name.Name)
		}
	case "coldcall":
		pass.Reportf(c.Pos(), "//pfair:coldcall applies to call lines, not whole functions; annotate the cold call site itself")
	default:
		if fd.Body == nil {
			pass.Reportf(c.Pos(), "stale //pfair:%s: the function has no body", name)
			return
		}
		var nodes []ast.Node
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if n != nil {
				nodes = append(nodes, n)
			}
			return true
		})
		if !triggerExists(pass, name, nodes) {
			pass.Reportf(c.Pos(), "stale //pfair:%s on %s: no %s left in the function — remove the annotation", name, fd.Name.Name, knownDirectives[name])
		}
	}
}

// docOwner returns the function whose doc comment is group, or nil.
func docOwner(file *ast.File, group *ast.CommentGroup) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Doc == group {
			return fd
		}
	}
	return nil
}

// nodesOnLines collects every node starting on one of the given lines.
func nodesOnLines(pass *Pass, file *ast.File, lines ...int) []ast.Node {
	want := map[int]bool{}
	for _, l := range lines {
		want[l] = true
	}
	var nodes []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if want[pass.Fset.Position(n.Pos()).Line] {
			nodes = append(nodes, n)
		}
		return true
	})
	return nodes
}

// triggerExists reports whether any node in scope is a construct the
// directive suppresses.
func triggerExists(pass *Pass, name string, nodes []ast.Node) bool {
	for _, n := range nodes {
		switch name {
		case "allowpanic":
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
					if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
						return true
					}
				}
			}
		case "allowtime":
			if call, ok := n.(*ast.CallExpr); ok {
				if fn := calleeFunc(pass.Info, call); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "time" && (fn.Name() == "Now" || fn.Name() == "Since") {
					return true
				}
			}
		case "orderinvariant":
			if rs, ok := n.(*ast.RangeStmt); ok {
				if tv, ok := pass.Info.Types[rs.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						return true
					}
				}
			}
		case "coldcall":
			if _, ok := n.(*ast.CallExpr); ok {
				return true
			}
		case "allowfloat":
			if e, ok := n.(ast.Expr); ok {
				if tv, ok := pass.Info.Types[e]; ok && tv.Type != nil && isFloat(tv.Type) {
					return true
				}
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if fn := calleeFunc(pass.Info, call); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == rationalPkgPath {
					// A floatflow sink annotation: the float heritage is
					// upstream, the rational call is the local evidence.
					return true
				}
			}
		}
	}
	return false
}

// directiveNames renders the grammar for the unknown-directive message.
func directiveNames() string {
	names := make([]string, 0, len(knownDirectives))
	for name := range knownDirectives { //pfair:orderinvariant collected into a slice and sorted before use
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
