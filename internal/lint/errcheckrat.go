package lint

import (
	"go/ast"
	"go/types"
)

// fallibleAPIPackages are the packages whose fallible results this
// analyzer guards. PR 2 converted their panic paths to returned errors
// (taskgen's infeasible random parameters, partition's out-of-range
// bounds) and gave Acc.Rat an ok result for unrepresentable sums —
// protections that evaporate if a caller drops the result on the floor.
var fallibleAPIPackages = []string{
	"pfair/internal/rational",
	"pfair/internal/taskgen",
	"pfair/internal/partition",
}

// ErrCheckRat reports calls to fallible rational/taskgen/partition APIs
// whose results are discarded: a bare call statement (or go/defer) to a
// function whose last result is an error or an ok-bool throws away the
// only signal that exact arithmetic failed or a generated task set was
// infeasible. Assigning every result to blank (`_, _ = ...`) remains
// legal as a visible, deliberate discard. Chaining APIs that return the
// receiver (Acc.Add) are not flagged — their result is a convenience,
// not a verdict.
var ErrCheckRat = &Analyzer{
	Name: "errcheckrat",
	Doc: "flag discarded results of fallible rational/taskgen/partition calls " +
		"(functions whose last result is error or bool)",
	Run: runErrCheckRat,
}

func runErrCheckRat(pass *Pass) {
	check := func(call *ast.CallExpr) {
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || !hasPrefixAny(fn.Pkg().Path(), fallibleAPIPackages...) {
			return
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Results().Len() == 0 {
			return
		}
		last := sig.Results().At(sig.Results().Len() - 1).Type()
		if !isErrorType(last) && !isBoolType(last) {
			return
		}
		pass.Reportf(call.Pos(), "result of %s.%s discarded; its last result reports failure — handle it or assign it to _ explicitly", fn.Pkg().Name(), fn.Name())
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					check(call)
				}
			case *ast.GoStmt:
				check(n.Call)
			case *ast.DeferStmt:
				check(n.Call)
			}
			return true
		})
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}
