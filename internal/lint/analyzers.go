package lint

// All returns every pfair analyzer in the order pfairlint runs them:
// the five per-package invariant analyzers, then the interprocedural
// call-graph analyzers (hotclosure, floatflow) and the annotation audit
// (staleannot).
func All() []*Analyzer {
	return []*Analyzer{RatFloat, Determinism, HotPath, NoPanic, ErrCheckRat, HotClosure, FloatFlow, StaleAnnot}
}
