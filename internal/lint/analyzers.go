package lint

// All returns every pfair analyzer in the order pfairlint runs them.
func All() []*Analyzer {
	return []*Analyzer{RatFloat, Determinism, HotPath, NoPanic, ErrCheckRat}
}
