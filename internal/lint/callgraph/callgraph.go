// Package callgraph builds a conservative whole-program call graph over
// the packages pfairlint loads, so the interprocedural analyzers
// (hotclosure, floatflow) can follow the hot path and float taint across
// function boundaries instead of trusting per-function annotation
// discipline.
//
// Resolution strategy, from precise to conservative:
//
//   - Static calls (pkg.F(...), recv.M(...) on a concrete type, and
//     generic instantiations F[T](...)) resolve to exactly one callee.
//   - Interface dispatch (i.M(...) where i is interface-typed) resolves
//     by type-set: the callee set is M's implementation on every named
//     type declared in any loaded package whose pointer method set
//     satisfies the interface. This is class-hierarchy analysis — it
//     over-approximates (a type that satisfies engine.Policy is counted
//     even where only one policy can flow in) but never misses a loaded
//     implementation.
//   - Calls of function-typed values (fields like heap's less, calq key
//     funcs, locals, parameters) resolve through a flow-insensitive
//     points-to pass: every assignment, composite-literal field, and
//     call argument carrying a function reference adds candidates to
//     the receiving object, to a fixed point, with instantiated generic
//     fields and parameters canonicalized to their origin so stores
//     through Heap[job]{less: ...} meet the generic body's h.less call.
//     A call through a fully-tracked object resolves to exactly its
//     candidates. Objects that received a function through a form the
//     pass cannot see (a call result, an indexed element) fall back to
//     every address-taken function with a compatible signature:
//     identical, or arity-equal when either side involves type
//     parameters. A function is address-taken when it is referenced
//     anywhere outside call position, including method values and,
//     transitively, every implementation of an interface method used as
//     a value.
//
// Function literals are not separate nodes: a closure's calls are
// attributed to the enclosing declared function, matching how the
// hotpath analyzer treats closure bodies. Calls appearing in
// package-level variable initializers belong to no declared function and
// contribute only to the address-taken set. Callees outside the loaded
// program (standard library) get declaration-less nodes: edges into them
// exist, but traversal cannot continue past them — the analyzers treat
// the stdlib as a trusted boundary.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A Package is one loaded, type-checked package presented to Build. It
// mirrors internal/lint's Package without importing it (lint imports
// this package).
type Package struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Kind classifies how an edge's call site resolved to its callee.
type Kind int

const (
	// Static is a direct call of a declared function or concrete method.
	Static Kind = iota
	// Interface is dispatch through an interface method, resolved by
	// type-set over the loaded packages.
	Interface
	// Dynamic is a call of a function-typed value, resolved to
	// signature-compatible address-taken functions.
	Dynamic
)

func (k Kind) String() string {
	switch k {
	case Static:
		return "static"
	case Interface:
		return "interface"
	case Dynamic:
		return "dynamic"
	}
	return "unknown"
}

// An Edge is one resolved call: Caller invokes Callee at Site.
type Edge struct {
	Caller *Node
	Callee *Node
	Site   *ast.CallExpr
	Kind   Kind
}

// A Node is one function in the graph.
type Node struct {
	// Func is the canonical (generic-origin) object for the function.
	Func *types.Func
	// Decl is the function's declaration, nil when its source is outside
	// the loaded program (stdlib, srcimporter-resolved dependencies).
	Decl *ast.FuncDecl
	// File is the file containing Decl (nil alongside it).
	File *ast.File
	// Pkg is the loaded package declaring the function (nil for
	// out-of-program nodes).
	Pkg *Package
	// Out and In are the edges leaving and entering the node, in
	// deterministic source order.
	Out []*Edge
	In  []*Edge
	// AddressTaken reports that the function is referenced as a value
	// somewhere in the program, making it a candidate target for calls
	// of function-typed values.
	AddressTaken bool
}

// Name renders the node for diagnostics: "pkgpath.Func" or
// "pkgpath.(Recv).Method".
func (n *Node) Name() string {
	fn := n.Func
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + "(" + named.Obj().Name() + ")." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

// A Graph is the whole-program call graph.
type Graph struct {
	Fset *token.FileSet
	// Nodes maps every function touched by the program — declared in it
	// or called from it — to its node.
	Nodes map[*types.Func]*Node
	// nodeOrder lists program-declared nodes in (package, position)
	// order so analyzers can iterate deterministically.
	nodeOrder []*Node
	// sites maps each call expression to the edges it produced.
	sites map[*ast.CallExpr][]*Edge
}

// DeclaredNodes returns every node with a declaration in the loaded
// program, in deterministic (package order, source position) order.
func (g *Graph) DeclaredNodes() []*Node { return g.nodeOrder }

// NodeOf returns the node for fn's generic origin, or nil.
func (g *Graph) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.Nodes[fn.Origin()]
}

// Callees returns the edges resolved for one call site.
func (g *Graph) Callees(site *ast.CallExpr) []*Edge { return g.sites[site] }

// builder carries the intermediate state of one Build.
type builder struct {
	fset  *token.FileSet
	pkgs  []*Package
	graph *Graph
	// concrete lists every named non-interface type declared at package
	// level in the program, in deterministic order, for type-set
	// interface resolution.
	concrete []*types.Named
	// implCache memoizes interface type → implementing methods, keyed by
	// the interface identity and method name.
	implCache map[implKey][]*types.Func
	// dynamicSites are calls of function-typed values, resolved after
	// the address-taken set is complete.
	dynamicSites []dynamicSite
	// callFunIdents are identifiers appearing in call position; any
	// other use of a function-valued identifier marks it address-taken.
	callFunIdents map[*ast.Ident]bool
	// funcVals maps a function-typed object (field, variable, parameter)
	// to the declared functions observed flowing into it, in
	// deterministic discovery order. Dynamic calls through a tracked
	// object resolve to exactly these; untracked objects fall back to
	// signature matching over the address-taken set.
	funcVals map[types.Object][]*types.Func
	funcSeen map[types.Object]map[*types.Func]bool
	// tracked marks objects whose every observed inflow was a form the
	// points-to pass understands; escaped marks objects that received a
	// function value through a form it cannot see (a call result, an
	// indexed element). Only tracked, unescaped objects resolve through
	// funcVals — everything else keeps the signature-matching fallback.
	tracked map[types.Object]bool
	escaped map[types.Object]bool
}

type implKey struct {
	iface  *types.Interface
	method string
}

type dynamicSite struct {
	caller *Node
	site   *ast.CallExpr
	sig    *types.Signature
}

// Build constructs the call graph for the given packages. The packages
// must share one FileSet and one type-checking universe (as produced by
// lint.Load) so that types.Func identities agree across packages.
func Build(fset *token.FileSet, pkgs []*Package) *Graph {
	b := &builder{
		fset:          fset,
		pkgs:          pkgs,
		graph:         &Graph{Fset: fset, Nodes: map[*types.Func]*Node{}, sites: map[*ast.CallExpr][]*Edge{}},
		implCache:     map[implKey][]*types.Func{},
		callFunIdents: map[*ast.Ident]bool{},
	}
	b.collectDecls()
	b.collectConcreteTypes()
	b.markCallPositions()
	b.markAddressTaken()
	b.trackFuncValues()
	for _, pkg := range b.pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller := b.graph.NodeOf(b.declFunc(pkg, fd))
				if caller == nil {
					continue
				}
				b.collectCalls(pkg, caller, fd.Body)
			}
		}
	}
	b.resolveDynamic()
	return b.graph
}

// declFunc returns the types.Func a declaration defines.
func (b *builder) declFunc(pkg *Package, fd *ast.FuncDecl) *types.Func {
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	return fn
}

// collectDecls creates a node per declared function, in source order.
func (b *builder) collectDecls() {
	for _, pkg := range b.pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn := b.declFunc(pkg, fd)
				if fn == nil {
					continue
				}
				n := &Node{Func: fn, Decl: fd, File: file, Pkg: pkg}
				b.graph.Nodes[fn] = n
				b.graph.nodeOrder = append(b.graph.nodeOrder, n)
			}
		}
	}
}

// collectConcreteTypes gathers every package-level named non-interface
// type for type-set interface resolution. Scope.Names is sorted, so the
// order is deterministic.
func (b *builder) collectConcreteTypes() {
	for _, pkg := range b.pkgs {
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			b.concrete = append(b.concrete, named)
		}
	}
}

// markCallPositions records every identifier appearing as the function
// operand of a call, so the address-taken pass can exclude them.
func (b *builder) markCallPositions() {
	for _, pkg := range b.pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id := calleeIdent(call.Fun); id != nil {
					b.callFunIdents[id] = true
				}
				return true
			})
		}
	}
}

// calleeIdent unwraps a call's Fun to the identifier naming what is
// invoked: the Ident itself, a selector's Sel, or the same through a
// generic instantiation's index expression.
func calleeIdent(fun ast.Expr) *ast.Ident {
	switch f := ast.Unparen(fun).(type) {
	case *ast.Ident:
		return f
	case *ast.SelectorExpr:
		return f.Sel
	case *ast.IndexExpr:
		return calleeIdent(f.X)
	case *ast.IndexListExpr:
		return calleeIdent(f.X)
	}
	return nil
}

// markAddressTaken marks every function referenced outside call
// position. A value use of an interface method additionally marks every
// loaded implementation of that method, since the method value can
// invoke any of them.
func (b *builder) markAddressTaken() {
	for _, pkg := range b.pkgs {
		for id, obj := range pkg.Info.Uses { //pfair:orderinvariant marking a set of address-taken functions; no output order depends on traversal
			fn, ok := obj.(*types.Func)
			if !ok || b.callFunIdents[id] {
				continue
			}
			b.markTaken(fn)
		}
		// A method value i.M on an interface receiver is recorded in
		// Selections; its concrete targets are address-taken too.
		for sel, selection := range pkg.Info.Selections { //pfair:orderinvariant marking a set of address-taken functions; no output order depends on traversal
			if selection.Kind() != types.MethodVal || b.callFunIdents[sel.Sel] {
				continue
			}
			if iface := interfaceOf(selection.Recv()); iface != nil {
				for _, impl := range b.implementations(iface, sel.Sel.Name) {
					b.markTaken(impl)
				}
			}
		}
	}
}

func (b *builder) markTaken(fn *types.Func) {
	n := b.ensureNode(fn)
	n.AddressTaken = true
	// An interface method object itself has no body; mark loaded
	// implementations so dynamic calls can reach them.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if iface := interfaceOf(sig.Recv().Type()); iface != nil {
			for _, impl := range b.implementations(iface, fn.Name()) {
				b.ensureNode(impl).AddressTaken = true
			}
		}
	}
}

// ensureNode returns fn's node, creating a declaration-less one for
// functions outside the loaded program.
func (b *builder) ensureNode(fn *types.Func) *Node {
	fn = fn.Origin()
	if n, ok := b.graph.Nodes[fn]; ok {
		return n
	}
	n := &Node{Func: fn}
	b.graph.Nodes[fn] = n
	return n
}

// interfaceOf returns t's underlying interface, unwrapping one pointer,
// or nil.
func interfaceOf(t types.Type) *types.Interface {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	iface, _ := t.Underlying().(*types.Interface)
	return iface
}

// implementations returns the concrete methods named method on every
// loaded type satisfying iface, memoized per (iface, method).
func (b *builder) implementations(iface *types.Interface, method string) []*types.Func {
	key := implKey{iface, method}
	if impls, ok := b.implCache[key]; ok {
		return impls
	}
	var impls []*types.Func
	for _, named := range b.concrete {
		ptr := types.NewPointer(named)
		if !types.Implements(ptr, iface) && !types.Implements(named, iface) {
			continue
		}
		ms := types.NewMethodSet(ptr)
		for i := 0; i < ms.Len(); i++ {
			if m := ms.At(i); m.Obj().Name() == method {
				if fn, ok := m.Obj().(*types.Func); ok {
					impls = append(impls, fn.Origin())
				}
				break
			}
		}
	}
	b.implCache[key] = impls
	return impls
}

// trackFuncValues runs a small flow-insensitive points-to pass for
// function-typed values: every assignment, declaration, composite
// literal field, and call argument that carries a reference to a
// declared function (or to another tracked object) adds candidates to
// the receiving object, to a fixed point. The result lets a call of
// h.less resolve to the comparators actually stored in less rather than
// to every two-argument function in the program.
func (b *builder) trackFuncValues() {
	b.funcVals = map[types.Object][]*types.Func{}
	b.funcSeen = map[types.Object]map[*types.Func]bool{}
	b.tracked = map[types.Object]bool{}
	b.escaped = map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		for _, pkg := range b.pkgs {
			for _, file := range pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.AssignStmt:
						if len(n.Lhs) == len(n.Rhs) {
							for i := range n.Lhs {
								if b.flowInto(pkg, targetObject(pkg, n.Lhs[i]), n.Rhs[i]) {
									changed = true
								}
							}
						}
					case *ast.ValueSpec:
						if len(n.Names) == len(n.Values) {
							for i := range n.Names {
								if b.flowInto(pkg, pkg.Info.Defs[n.Names[i]], n.Values[i]) {
									changed = true
								}
							}
						}
					case *ast.CompositeLit:
						if b.flowComposite(pkg, n) {
							changed = true
						}
					case *ast.CallExpr:
						if b.flowArgs(pkg, n) {
							changed = true
						}
					}
					return true
				})
			}
		}
	}
}

// targetObject resolves an assignment target to the object that holds
// the value: an identifier's object or a selected field/variable.
func targetObject(pkg *Package, lhs ast.Expr) types.Object {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if o := pkg.Info.Defs[lhs]; o != nil {
			return o
		}
		return pkg.Info.Uses[lhs]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[lhs.Sel]
	}
	return nil
}

// canonObj maps an instantiated generic object back to its generic
// origin. A store through Heap[job]{less: jobLess} sees the
// instantiated field variable while a call of h.less inside the generic
// method body sees the origin's; canonicalizing both to the origin
// makes them the same points-to key.
func canonObj(o types.Object) types.Object {
	switch o := o.(type) {
	case *types.Var:
		return o.Origin()
	case *types.Func:
		return o.Origin()
	}
	return o
}

// flowInto adds rhs's function candidates to obj, reporting growth. A
// function-typed rhs the tracker cannot see through marks obj escaped,
// disqualifying it from points-to resolution.
func (b *builder) flowInto(pkg *Package, obj types.Object, rhs ast.Expr) bool {
	if obj == nil {
		return false
	}
	obj = canonObj(obj)
	cands, ok := b.candidates(pkg, rhs)
	if !ok {
		if tv, tok := pkg.Info.Types[rhs]; tok && tv.Type != nil {
			if _, isSig := tv.Type.Underlying().(*types.Signature); isSig && !b.escaped[obj] {
				b.escaped[obj] = true
				return true
			}
		}
		return false
	}
	b.tracked[obj] = true
	grew := false
	for _, fn := range cands {
		if b.addFuncVal(obj, fn) {
			grew = true
		}
	}
	return grew
}

func (b *builder) addFuncVal(obj types.Object, fn *types.Func) bool {
	obj = canonObj(obj)
	seen := b.funcSeen[obj]
	if seen == nil {
		seen = map[*types.Func]bool{}
		b.funcSeen[obj] = seen
	}
	if seen[fn] {
		return false
	}
	seen[fn] = true
	b.funcVals[obj] = append(b.funcVals[obj], fn)
	return true
}

// candidates returns the declared functions e may evaluate to, and
// whether e is a form the tracker understands. A direct function
// reference yields that function; an identifier or selector yields the
// candidates of its object; a method value on an interface yields every
// loaded implementation. A function literal yields no named candidates
// but still counts as understood: a closure is not a graph node (its
// calls already belong to the enclosing function), so an object holding
// only closures resolves to nothing rather than falling back to
// signature matching over the address-taken set.
func (b *builder) candidates(pkg *Package, e ast.Expr) ([]*types.Func, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return nil, true
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[e].(*types.Func); ok {
			return []*types.Func{fn.Origin()}, true
		}
		if o := pkg.Info.Uses[e]; o != nil {
			o = canonObj(o)
			if b.escaped[o] {
				return nil, false
			}
			return b.funcVals[o], true
		}
		if o := pkg.Info.Defs[e]; o != nil {
			o = canonObj(o)
			if b.escaped[o] {
				return nil, false
			}
			return b.funcVals[o], true
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
			if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.MethodVal {
				if iface := interfaceOf(sel.Recv()); iface != nil {
					return b.implementations(iface, e.Sel.Name), true
				}
			}
			return []*types.Func{fn.Origin()}, true
		}
		if o := pkg.Info.Uses[e.Sel]; o != nil {
			o = canonObj(o)
			if b.escaped[o] {
				return nil, false
			}
			return b.funcVals[o], true
		}
	}
	return nil, false
}

// flowComposite propagates function values into struct-literal fields.
func (b *builder) flowComposite(pkg *Package, lit *ast.CompositeLit) bool {
	tv, ok := pkg.Info.Types[lit]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	grew := false
	for i, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok {
				if b.flowInto(pkg, pkg.Info.Uses[key], kv.Value) {
					grew = true
				}
			}
			continue
		}
		if i < st.NumFields() && b.flowInto(pkg, st.Field(i), el) {
			grew = true
		}
	}
	return grew
}

// flowArgs propagates function-valued arguments into the parameters of
// statically resolved, program-declared callees.
func (b *builder) flowArgs(pkg *Package, call *ast.CallExpr) bool {
	if tv, ok := pkg.Info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		return false
	}
	id := calleeIdent(call.Fun)
	if id == nil {
		return false
	}
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return false
	}
	callee := b.graph.Nodes[fn.Origin()]
	if callee == nil || callee.Decl == nil || callee.Decl.Type.Params == nil {
		return false
	}
	var params []types.Object
	for _, f := range callee.Decl.Type.Params.List {
		if len(f.Names) == 0 {
			params = append(params, nil)
			continue
		}
		for _, name := range f.Names {
			params = append(params, callee.Pkg.Info.Defs[name])
		}
	}
	grew := false
	for i, arg := range call.Args {
		if i >= len(params) || params[i] == nil {
			continue
		}
		if b.flowInto(pkg, params[i], arg) {
			grew = true
		}
	}
	return grew
}

// collectCalls resolves every call in body and records edges from
// caller. Closure bodies are included: their calls belong to the
// enclosing declared function.
func (b *builder) collectCalls(pkg *Package, caller *Node, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		b.resolveCall(pkg, caller, call)
		return true
	})
}

// resolveCall classifies one call site and records its edges.
func (b *builder) resolveCall(pkg *Package, caller *Node, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	// Conversions and builtins produce no edges.
	if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() {
		return
	}
	if id := calleeIdent(fun); id != nil {
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			return
		}
	}
	// Interface dispatch: a method call whose receiver is interface-typed.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if selection, ok := pkg.Info.Selections[sel]; ok && selection.Kind() == types.MethodVal {
			if iface := interfaceOf(selection.Recv()); iface != nil {
				for _, impl := range b.implementations(iface, sel.Sel.Name) {
					b.addEdge(caller, impl, call, Interface)
				}
				// Also record the interface method object itself so
				// out-of-program interfaces keep a callee node.
				if len(b.implementations(iface, sel.Sel.Name)) == 0 {
					if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok {
						b.addEdge(caller, fn, call, Interface)
					}
				}
				return
			}
		}
	}
	// Static: the callee identifier resolves to a *types.Func.
	if id := calleeIdent(fun); id != nil {
		if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
			b.addEdge(caller, fn, call, Static)
			return
		}
	}
	// Everything else is a call of a function-typed value. If the value
	// lives in a tracked object (field, variable, parameter) whose
	// points-to set is known, resolve to exactly those functions;
	// otherwise fall back to signature matching against the
	// address-taken set once it is complete.
	if obj := targetObject(pkg, fun); obj != nil {
		if o := canonObj(obj); b.tracked[o] && !b.escaped[o] {
			for _, fn := range b.funcVals[o] {
				b.addEdge(caller, fn, call, Dynamic)
			}
			return
		}
	}
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	b.dynamicSites = append(b.dynamicSites, dynamicSite{caller: caller, site: call, sig: sig})
}

func (b *builder) addEdge(caller *Node, callee *types.Func, site *ast.CallExpr, kind Kind) {
	cn := b.ensureNode(callee)
	e := &Edge{Caller: caller, Callee: cn, Site: site, Kind: kind}
	caller.Out = append(caller.Out, e)
	cn.In = append(cn.In, e)
	b.graph.sites[site] = append(b.graph.sites[site], e)
}

// resolveDynamic connects calls of function-typed values to every
// address-taken program function with a compatible signature.
func (b *builder) resolveDynamic() {
	var taken []*Node
	for _, n := range b.graph.nodeOrder {
		if n.AddressTaken {
			taken = append(taken, n)
		}
	}
	for _, ds := range b.dynamicSites {
		for _, cand := range taken {
			sig, ok := cand.Func.Type().(*types.Signature)
			if !ok {
				continue
			}
			if compatible(ds.sig, sig) {
				b.addEdge(ds.caller, cand.Func, ds.site, Dynamic)
			}
		}
	}
}

// compatible reports whether a function with signature have can be
// invoked at a call site expecting want: identical signatures, or equal
// parameter and result arity when type parameters are involved on either
// side (a generic container invoking a concrete comparator, or vice
// versa).
func compatible(want, have *types.Signature) bool {
	// Compare without receivers.
	w := types.NewSignatureType(nil, nil, nil, want.Params(), want.Results(), want.Variadic())
	h := types.NewSignatureType(nil, nil, nil, have.Params(), have.Results(), have.Variadic())
	if types.Identical(w, h) {
		return true
	}
	if !generic(want) && !generic(have) {
		return false
	}
	return want.Params().Len() == have.Params().Len() &&
		want.Results().Len() == have.Results().Len()
}

// generic reports whether sig mentions type parameters anywhere.
func generic(sig *types.Signature) bool {
	if sig.TypeParams().Len() > 0 || sig.RecvTypeParams().Len() > 0 {
		return true
	}
	found := false
	check := func(t *types.Tuple) {
		for i := 0; i < t.Len(); i++ {
			if mentionsTypeParam(t.At(i).Type(), 0) {
				found = true
			}
		}
	}
	check(sig.Params())
	check(sig.Results())
	return found
}

// mentionsTypeParam walks t (bounded) looking for a *types.TypeParam.
func mentionsTypeParam(t types.Type, depth int) bool {
	if depth > 8 {
		return false
	}
	switch t := t.(type) {
	case *types.TypeParam:
		return true
	case *types.Pointer:
		return mentionsTypeParam(t.Elem(), depth+1)
	case *types.Slice:
		return mentionsTypeParam(t.Elem(), depth+1)
	case *types.Array:
		return mentionsTypeParam(t.Elem(), depth+1)
	case *types.Map:
		return mentionsTypeParam(t.Key(), depth+1) || mentionsTypeParam(t.Elem(), depth+1)
	case *types.Chan:
		return mentionsTypeParam(t.Elem(), depth+1)
	case *types.Signature:
		for i := 0; i < t.Params().Len(); i++ {
			if mentionsTypeParam(t.Params().At(i).Type(), depth+1) {
				return true
			}
		}
		for i := 0; i < t.Results().Len(); i++ {
			if mentionsTypeParam(t.Results().At(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Named:
		for i := 0; i < t.TypeArgs().Len(); i++ {
			if mentionsTypeParam(t.TypeArgs().At(i), depth+1) {
				return true
			}
		}
	}
	return false
}
