package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// rationalPanicAllowlist names the internal/rational functions whose
// panics are arithmetic-invariant checks: they fire only on division by
// zero, a zero denominator, or a value that is unrepresentable in int64
// even after reduction — conditions the package documents as programmer
// errors, mirroring the standard library's math/big. Methods are listed
// as "Type.Method".
var rationalPanicAllowlist = map[string]bool{
	"New":         true, // zero denominator
	"Rat.Div":     true, // division by zero
	"FloorDiv":    true, // requires b > 0
	"CeilDiv":     true, // requires b > 0
	"mulCheck":    true, // int64 overflow in LCM
	"bigFallback": true, // result unrepresentable even in lowest terms
	"Acc.Ceil":    true, // ⌈Σwt⌉ cannot exceed the task count, so overflow is a caller bug
}

// NoPanic reports panic calls in library packages under internal/.
// Callers of a library cannot recover policy from a panic: a scheduler
// embedded in a server must degrade, not crash, so fallible conditions
// return errors. Two escapes exist, both explicit:
//
//   - the arithmetic-invariant checks of internal/rational listed in
//     rationalPanicAllowlist (the package's documented contract, like
//     math/big's);
//   - panics annotated //pfair:allowpanic <reason> — API-misuse guards
//     (heap.Fix on a removed item) and invariants the surrounding code
//     has already established, where returning an error would force
//     every caller to handle the impossible.
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc: "flag panic calls in internal/ library packages; return errors instead, " +
		"or justify invariant/misuse panics with //pfair:allowpanic <reason>",
	Run: runNoPanic,
}

func runNoPanic(pass *Pass) {
	if !strings.HasPrefix(pass.Path, "pfair/internal/") {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			if pass.Path == "pfair/internal/rational" {
				if fd := pass.enclosingFunc(file, call.Pos()); fd != nil && rationalPanicAllowlist[funcKey(fd)] {
					return true
				}
			}
			found, hasReason := pass.annotated(file, call.Pos(), "allowpanic")
			switch {
			case !found:
				pass.Reportf(call.Pos(), "panic in library package %s; return an error, or justify with //pfair:allowpanic <reason>", pass.Path)
			case !hasReason:
				pass.Reportf(call.Pos(), "//pfair:allowpanic needs a reason")
			}
			return true
		})
	}
}

// funcKey renders a declaration as "Name" or "RecvType.Name" to match
// rationalPanicAllowlist entries.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
