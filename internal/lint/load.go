package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"

	"pfair/internal/lint/callgraph"
)

// A Package is one loaded, parsed, and type-checked package ready to be
// analyzed.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Load resolves the given go-list package patterns (e.g. "./...") in dir,
// then parses and type-checks every matched package using only the
// standard library: module and stdlib imports resolve through the
// compiler's source importer, and packages matched by the patterns are
// checked once and shared between importers. Test files are not loaded;
// the analyzers guard library code, and test helpers are free to use
// floats, maps, and panics.
func Load(dir string, patterns []string) ([]*Package, error) {
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:     fset,
		metas:    map[string]*listPackage{},
		checked:  map[string]*Package{},
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	for _, m := range metas {
		ld.metas[m.ImportPath] = m
	}
	pkgs := make([]*Package, 0, len(metas))
	for _, m := range metas {
		p, err := ld.check(m.ImportPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
}

// goList shells out to the go command to expand patterns into package
// metadata. Build-constraint filtering and module resolution are the go
// command's; the loader only consumes the resulting file lists.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var metas []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var m listPackage
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if len(m.GoFiles) == 0 {
			continue
		}
		metas = append(metas, &m)
	}
	return metas, nil
}

type loader struct {
	fset     *token.FileSet
	metas    map[string]*listPackage
	checked  map[string]*Package
	fallback types.Importer
}

// check parses and type-checks the listed package at path, memoized so
// each package is checked once even when imported by later targets.
func (ld *loader) check(path string) (*Package, error) {
	if p, ok := ld.checked[path]; ok {
		return p, nil
	}
	m := ld.metas[path]
	files := make([]*ast.File, 0, len(m.GoFiles))
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(m.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: (*loaderImporter)(ld)}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	p := &Package{Path: path, Fset: ld.fset, Files: files, Pkg: tpkg, Info: info}
	ld.checked[path] = p
	return p, nil
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// loaderImporter resolves imports during type checking: packages in the
// lint target set are checked by the loader itself (so their identities
// are shared), everything else — stdlib and module packages outside the
// patterns — falls back to the source importer.
type loaderImporter loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	ld := (*loader)(li)
	if _, ok := ld.metas[path]; ok {
		p, err := ld.check(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	if from, ok := ld.fallback.(types.ImporterFrom); ok {
		return from.ImportFrom(path, srcDir, mode)
	}
	return ld.fallback.Import(path)
}

// RunAnalyzers applies every analyzer to every package — per-package
// analyzers to each package in turn, interprocedural analyzers once to
// the whole program, sharing a single call graph — and returns the
// combined diagnostics in deterministic (file, line, column) order.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	var program []*Analyzer
	for _, a := range analyzers {
		if a.RunProgram != nil {
			program = append(program, a)
			continue
		}
		for _, pkg := range pkgs {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Path:     pkg.Path,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	if len(program) > 0 {
		graph := buildGraph(pkgs)
		var fset *token.FileSet
		if len(pkgs) > 0 {
			fset = pkgs[0].Fset
		}
		for _, a := range program {
			a.RunProgram(&ProgramPass{
				Analyzer: a,
				Fset:     fset,
				Pkgs:     pkgs,
				Graph:    graph,
				diags:    &diags,
			})
		}
	}
	sortDiagnostics(diags)
	return diags
}

// buildGraph constructs the shared call graph the interprocedural
// analyzers consume.
func buildGraph(pkgs []*Package) *callgraph.Graph {
	if len(pkgs) == 0 {
		return callgraph.Build(token.NewFileSet(), nil)
	}
	cps := make([]*callgraph.Package, len(pkgs))
	for i, p := range pkgs {
		cps[i] = &callgraph.Package{Path: p.Path, Files: p.Files, Pkg: p.Pkg, Info: p.Info}
	}
	return callgraph.Build(pkgs[0].Fset, cps)
}
