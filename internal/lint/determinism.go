package lint

import (
	"go/ast"
	"go/types"
)

// determinismExemptPackages may read wall clocks and iterate maps
// freely: internal/overhead exists to measure wall-clock costs, and the
// cmd/examples layer renders results rather than producing replayable
// traces.
var determinismExemptPackages = []string{
	"pfair/internal/overhead",
	"pfair/cmd",
	"pfair/examples",
}

// seededRandConstructors are the package-level math/rand functions that
// construct isolated generators rather than touching the global source.
// Everything else at package level (Intn, Perm, Shuffle, Seed, ...)
// draws from or mutates process-global state and breaks replay.
var seededRandConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// Determinism reports nondeterminism sources in the packages whose
// output must replay byte-identically: the schedulers, simulators, the
// verifier, the parallel harness, and the experiment pipeline (PR 1's
// guarantee that any -workers count produces identical bytes). Three
// things are flagged:
//
//   - ranging over a map: Go randomizes iteration order, so any map
//     iteration whose order can reach a trace, report, or scheduling
//     decision is a replay bug. Iterations that are genuinely
//     order-insensitive (commutative folds, collect-then-sort) carry a
//     //pfair:orderinvariant annotation saying why.
//   - package-level math/rand functions: the global source is shared
//     process state; randomness must flow from seeded *rand.Rand values
//     threaded from replay keys (rand.New(rand.NewSource(seed))).
//   - time.Now/time.Since: wall clocks differ across runs; measurement
//     paths that are gated off during deterministic simulation carry a
//     //pfair:allowtime annotation.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "flag map iteration, global math/rand, and wall-clock reads in packages " +
		"whose output must replay byte-identically (annotate order-insensitive map " +
		"folds with //pfair:orderinvariant <reason>, gated measurement paths with " +
		"//pfair:allowtime <reason>)",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) {
	if hasPrefixAny(pass.Path, determinismExemptPackages...) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				tv, ok := pass.Info.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				found, hasReason := pass.annotated(file, n.Pos(), "orderinvariant")
				switch {
				case !found:
					pass.Reportf(n.Pos(), "map iteration order can leak into output; iterate a sorted key slice, or justify with //pfair:orderinvariant <reason>")
				case !hasReason:
					pass.Reportf(n.Pos(), "//pfair:orderinvariant needs a reason")
				}
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				sig, _ := fn.Type().(*types.Signature)
				pkgPath := fn.Pkg().Path()
				switch {
				case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") &&
					sig != nil && sig.Recv() == nil && !seededRandConstructors[fn.Name()]:
					pass.Reportf(n.Pos(), "global math/rand.%s breaks replay; thread a seeded *rand.Rand from the replay key instead", fn.Name())
				case pkgPath == "time" && (fn.Name() == "Now" || fn.Name() == "Since"):
					found, hasReason := pass.annotated(file, n.Pos(), "allowtime")
					switch {
					case !found:
						pass.Reportf(n.Pos(), "wall-clock time.%s in a deterministic package; gate measurement behind a flag and justify with //pfair:allowtime <reason>", fn.Name())
					case !hasReason:
						pass.Reportf(n.Pos(), "//pfair:allowtime needs a reason")
					}
				}
			}
			return true
		})
	}
}
