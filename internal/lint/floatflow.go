package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"pfair/internal/lint/callgraph"
)

// FloatFlow tracks float64 heritage across function boundaries. RatFloat
// is deliberately local: it flags float *operations* (arithmetic,
// comparisons, conversions to float) file by file, so a float value that
// is merely plumbed — returned from a helper, stored in a struct field,
// passed as an argument — and then laundered into integer state escapes
// it entirely: `n := int64(s.rate())` contains no float arithmetic, yet
// an inexact value just entered the exact world. FloatFlow closes that
// gap interprocedurally:
//
//   - every float-typed expression in a restricted package is a taint
//     source;
//   - taint propagates flow-insensitively through assignments,
//     arithmetic, conversions, returns (per-function summaries), call
//     arguments into restricted-package parameters (resolved through the
//     call graph, including interface dispatch), struct fields, and
//     package-level variables, to a whole-program fixed point;
//   - sinks are reported in restricted packages: a conversion of a
//     float-tainted value to a non-float type (the laundering point),
//     and a call passing a tainted non-float argument into
//     internal/rational (tainted exactness reaching the rational core,
//     possibly far from where the float was laundered).
//
// //pfair:allowfloat <reason> is honored at the sink line: an annotated
// laundering conversion is an audited boundary — its reason documents
// why the value is exact or why inexactness is acceptable — so it
// sanitizes the result (no downstream reports). The reporting packages
// (floatReportingPackages) are trusted entirely: their non-float outputs
// (taskgen's integer task sets) are exact by construction, so taint
// neither originates nor propagates there.
var FloatFlow = &Analyzer{
	Name: "floatflow",
	Doc: "interprocedural float taint: follow float64 values through calls, " +
		"returns, and struct fields in the exact-arithmetic packages and flag " +
		"where they launder into integer/rational state (suppress an audited " +
		"boundary with //pfair:allowfloat <reason> at the sink)",
	RunProgram: runFloatFlow,
}

// rationalPkgPath is the exact-arithmetic core; tainted values reaching
// its API are the analyzer's second sink.
const rationalPkgPath = "pfair/internal/rational"

// floatFlow is the per-run state of one whole-program taint fixpoint.
type floatFlow struct {
	pass *ProgramPass
	// restricted are the packages under analysis, in program order.
	restricted []*Package
	// tainted marks objects (locals, params, results, struct fields,
	// package vars) that may carry float heritage. Field objects are
	// shared program-wide through the type checker, so field taint in
	// one package is visible in every other.
	tainted map[types.Object]bool
	// retTainted summarizes functions any of whose return values may be
	// tainted.
	retTainted map[*types.Func]bool
	// sanitized marks conversion expressions covered by a reasoned
	// //pfair:allowfloat: audited boundaries whose results are clean.
	sanitized map[*ast.CallExpr]bool
	changed   bool
}

func runFloatFlow(pass *ProgramPass) {
	ff := &floatFlow{
		pass:       pass,
		tainted:    map[types.Object]bool{},
		retTainted: map[*types.Func]bool{},
		sanitized:  map[*ast.CallExpr]bool{},
	}
	for _, pkg := range pass.Pkgs {
		if !hasPrefixAny(pkg.Path, floatReportingPackages...) {
			ff.restricted = append(ff.restricted, pkg)
		}
	}
	// Pre-mark sanitized conversions so the fixpoint never taints
	// through an audited boundary.
	for _, pkg := range ff.restricted {
		p := pass.Pass(pkg)
		for _, file := range pkg.Files {
			file := file
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
					if found, hasReason := p.annotated(file, call.Pos(), "allowfloat"); found && hasReason {
						ff.sanitized[call] = true
					}
				}
				return true
			})
		}
	}
	// Fixed point: propagate until no object, field, or summary changes.
	for {
		ff.changed = false
		for _, pkg := range ff.restricted {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
						ff.propagate(pkg, fd)
					}
				}
			}
		}
		if !ff.changed {
			break
		}
	}
	ff.report()
}

// mark taints an object, noting the change for the fixpoint.
func (ff *floatFlow) mark(obj types.Object) {
	if obj == nil || ff.tainted[obj] {
		return
	}
	ff.tainted[obj] = true
	ff.changed = true
}

// obj resolves an identifier to its object (use or definition).
func obj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// exprTainted reports whether e may carry float heritage.
func (ff *floatFlow) exprTainted(pkg *Package, e ast.Expr) bool {
	if e == nil {
		return false
	}
	if tv, ok := pkg.Info.Types[e]; ok {
		if tv.Value != nil {
			// Constants are exact: the compiler evaluates them in
			// arbitrary precision, so no runtime float is involved.
			return false
		}
		if tv.Type != nil && isFloat(tv.Type) {
			return true
		}
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return ff.exprTainted(pkg, e.X)
	case *ast.Ident:
		return ff.tainted[obj(pkg.Info, e)]
	case *ast.SelectorExpr:
		// Field read or qualified identifier: tainted if the named
		// object (field var, package var) is.
		return ff.tainted[obj(pkg.Info, e.Sel)]
	case *ast.IndexExpr:
		// Coarse: an element of a tainted container is tainted.
		return ff.exprTainted(pkg, e.X)
	case *ast.StarExpr:
		return ff.exprTainted(pkg, e.X)
	case *ast.UnaryExpr:
		return ff.exprTainted(pkg, e.X)
	case *ast.TypeAssertExpr:
		return ff.exprTainted(pkg, e.X)
	case *ast.BinaryExpr:
		if arithmeticOps[e.Op] || e.Op == token.REM {
			return ff.exprTainted(pkg, e.X) || ff.exprTainted(pkg, e.Y)
		}
		return false
	case *ast.CallExpr:
		if tv, ok := pkg.Info.Types[e.Fun]; ok && tv.IsType() {
			// Conversion: an audited boundary sanitizes; otherwise the
			// result inherits the operand's taint.
			if ff.sanitized[e] {
				return false
			}
			return len(e.Args) == 1 && ff.exprTainted(pkg, e.Args[0])
		}
		for _, edge := range ff.pass.Graph.Callees(e) {
			if ff.retTainted[edge.Callee.Func] {
				return true
			}
		}
		return false
	}
	return false
}

// markTarget taints the object behind an assignment target.
func (ff *floatFlow) markTarget(pkg *Package, lhs ast.Expr) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		ff.mark(obj(pkg.Info, lhs))
	case *ast.SelectorExpr:
		ff.mark(obj(pkg.Info, lhs.Sel))
	case *ast.IndexExpr:
		ff.markTarget(pkg, lhs.X)
	case *ast.StarExpr:
		ff.markTarget(pkg, lhs.X)
	}
}

// propagate runs the transfer rules over one function body.
func (ff *floatFlow) propagate(pkg *Package, fd *ast.FuncDecl) {
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if ff.exprTainted(pkg, n.Rhs[i]) {
						ff.markTarget(pkg, n.Lhs[i])
					}
				}
			} else if len(n.Rhs) == 1 {
				// Multi-value call: coarse — taint every target if any
				// result may be tainted.
				if ff.exprTainted(pkg, n.Rhs[0]) {
					for _, lhs := range n.Lhs {
						ff.markTarget(pkg, lhs)
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					if ff.exprTainted(pkg, n.Values[i]) {
						ff.mark(obj(pkg.Info, n.Names[i]))
					}
				}
			} else if len(n.Values) == 1 && ff.exprTainted(pkg, n.Values[0]) {
				for _, name := range n.Names {
					ff.mark(obj(pkg.Info, name))
				}
			}
		case *ast.ReturnStmt:
			if fn == nil || ff.retTainted[fn] {
				return true
			}
			for _, r := range n.Results {
				if ff.exprTainted(pkg, r) && !isFloatExpr(pkg, r) {
					// Only laundered (non-float) taint is worth a
					// summary: float-typed returns are visible in the
					// callee's signature and already count as sources
					// at every call site.
					ff.retTainted[fn] = true
					ff.changed = true
					break
				}
			}
			// Naked returns with tainted named results.
			if len(n.Results) == 0 && fd.Type.Results != nil {
				for _, f := range fd.Type.Results.List {
					for _, name := range f.Names {
						if o := pkg.Info.Defs[name]; o != nil && ff.tainted[o] && !isFloat(o.Type()) {
							ff.retTainted[fn] = true
							ff.changed = true
						}
					}
				}
			}
		case *ast.CompositeLit:
			ff.propagateComposite(pkg, n)
		case *ast.CallExpr:
			ff.propagateCall(pkg, n)
		}
		return true
	})
}

// propagateComposite taints struct fields initialized from tainted
// elements.
func (ff *floatFlow) propagateComposite(pkg *Package, lit *ast.CompositeLit) {
	tv, ok := pkg.Info.Types[lit]
	if !ok {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if ff.exprTainted(pkg, kv.Value) {
				if key, ok := kv.Key.(*ast.Ident); ok {
					ff.mark(obj(pkg.Info, key))
				}
			}
			continue
		}
		if i < st.NumFields() && ff.exprTainted(pkg, el) {
			ff.mark(st.Field(i))
		}
	}
}

// propagateCall taints the parameters of restricted-package callees that
// receive tainted arguments, through every resolved edge (including
// interface dispatch).
func (ff *floatFlow) propagateCall(pkg *Package, call *ast.CallExpr) {
	edges := ff.pass.Graph.Callees(call)
	if len(edges) == 0 {
		return
	}
	for _, edge := range edges {
		callee := edge.Callee
		if callee.Decl == nil || callee.Pkg == nil || hasPrefixAny(callee.Pkg.Path, floatReportingPackages...) {
			continue
		}
		params := paramObjects(callee)
		for i, arg := range call.Args {
			if !ff.exprTainted(pkg, arg) {
				continue
			}
			if i < len(params) {
				ff.mark(params[i])
			} else if len(params) > 0 {
				// Variadic overflow lands in the final parameter.
				ff.mark(params[len(params)-1])
			}
		}
	}
}

// paramObjects returns a declared function's parameter objects in order.
func paramObjects(n *callgraph.Node) []types.Object {
	var params []types.Object
	if n.Decl.Type.Params == nil {
		return nil
	}
	for _, f := range n.Decl.Type.Params.List {
		if len(f.Names) == 0 {
			params = append(params, nil) // unnamed parameter absorbs nothing
			continue
		}
		for _, name := range f.Names {
			params = append(params, n.Pkg.Info.Defs[name])
		}
	}
	return params
}

// isFloatExpr reports whether e's static type is floating point.
// Constant expressions are excluded: they are evaluated exactly at
// compile time.
func isFloatExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	return ok && tv.Value == nil && tv.Type != nil && isFloat(tv.Type)
}

// report walks the restricted packages once after the fixpoint and
// emits the two sink diagnostics.
func (ff *floatFlow) report() {
	for _, pkg := range ff.restricted {
		p := ff.pass.Pass(pkg)
		for _, file := range pkg.Files {
			file := file
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
					ff.reportConversion(p, pkg, file, call, tv.Type)
					return true
				}
				ff.reportRationalSink(p, pkg, file, call)
				return true
			})
		}
	}
}

// reportConversion flags float→non-float conversions: the laundering
// point where an inexact value enters integer state.
func (ff *floatFlow) reportConversion(p *Pass, pkg *Package, file *ast.File, call *ast.CallExpr, target types.Type) {
	if isFloat(target) || len(call.Args) != 1 {
		return
	}
	if _, ok := target.Underlying().(*types.Basic); !ok {
		return
	}
	if !ff.exprTainted(pkg, call.Args[0]) && !isFloatExpr(pkg, call.Args[0]) {
		return
	}
	found, hasReason := p.annotated(file, call.Pos(), "allowfloat")
	switch {
	case !found:
		p.Reportf(call.Pos(), "float-derived value laundered into %s; exactness is lost here — compute in internal/rational, or audit the boundary with //pfair:allowfloat <reason>", target)
	case !hasReason:
		p.Reportf(call.Pos(), "//pfair:allowfloat needs a reason")
	}
}

// reportRationalSink flags calls into internal/rational carrying a
// tainted non-float argument: float heritage reaching the exact core,
// possibly far from the laundering conversion.
func (ff *floatFlow) reportRationalSink(p *Pass, pkg *Package, file *ast.File, call *ast.CallExpr) {
	if pkg.Path == rationalPkgPath {
		return
	}
	fn := calleeFunc(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != rationalPkgPath {
		return
	}
	for _, arg := range call.Args {
		if isFloatExpr(pkg, arg) || !ff.exprTainted(pkg, arg) {
			continue
		}
		found, hasReason := p.annotated(file, call.Pos(), "allowfloat")
		switch {
		case !found:
			p.Reportf(arg.Pos(), "float-tainted value reaches exact-rational call %s.%s; the float heritage upstream makes this value inexact — fix the flow, or audit it with //pfair:allowfloat <reason>", fn.Pkg().Name(), fn.Name())
		case !hasReason:
			p.Reportf(call.Pos(), "//pfair:allowfloat needs a reason")
		}
		return
	}
}
