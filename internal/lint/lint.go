// Package lint implements pfair's repo-specific static analyzers: the
// invariants that make the schedulers' exactness and determinism claims
// trustworthy are enforced here, before the differential fuzzer
// (internal/fuzz) would have to discover their violation dynamically.
//
// The per-package analyzers are:
//
//   - ratfloat: no float arithmetic, comparison, or conversion on the
//     packages that compute weights and lags; Rat.Float/Acc.Float are
//     callable only from the designated reporting packages.
//   - determinism: no map iteration, global math/rand, or wall-clock
//     reads in packages whose output must replay byte-identically.
//   - hotpath: functions annotated //pfair:hotpath must stay
//     allocation-free (the static counterpart of BenchmarkStepAllocs).
//   - nopanic: library packages under internal/ return errors; panics
//     need an explicit justification.
//   - errcheckrat: fallible rational/taskgen/partition results must not
//     be silently discarded.
//   - staleannot: every //pfair: annotation must still have its
//     triggering construct; unknown directives are typos.
//
// Two more run over the whole loaded program and the call graph built
// by internal/lint/callgraph:
//
//   - hotclosure: the transitive closure of calls from //pfair:hotpath
//     roots must be annotated (hotpath or a reasoned allowalloc), and
//     annotations no root reaches are stale; //pfair:coldcall <reason>
//     cuts call sites the steady state never takes.
//   - floatflow: float64 taint followed interprocedurally into integer
//     and rational state; a reasoned //pfair:allowfloat at the sink is
//     an audited, sanitizing boundary.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) but is built on the standard library
// only, so the linter needs no module downloads. Escape hatches are
// source annotations, never linter config, so every exception is
// visible and justified at the use site:
//
//	//pfair:hotpath                 mark a function allocation-critical
//	//pfair:allowalloc <reason>     sanction a hot-closure function that
//	                                allocates (amortized or tooling-only)
//	//pfair:coldcall <reason>       cut a call site from the hot closure
//	//pfair:allowpanic <reason>     permit a panic (invariant/misuse check)
//	//pfair:orderinvariant <reason> permit a map iteration whose result
//	                                does not depend on order
//	//pfair:allowfloat <reason>     permit float use (reporting bridges,
//	                                inherently irrational bounds, audited
//	                                laundering boundaries)
//	//pfair:allowtime <reason>      permit wall-clock reads (measurement
//	                                paths gated off during simulation)
//
// A line annotation covers its own source line and the line it
// immediately precedes; the marker forms also apply to a whole function
// when placed in its doc comment. All reason-carrying forms are invalid
// without a reason, so exceptions cannot be waved through silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"pfair/internal/lint/callgraph"
)

// An Analyzer describes one invariant checker. Exactly one of Run and
// RunProgram is set: per-package analyzers see one package at a time,
// interprocedural analyzers see the whole loaded program and its call
// graph at once.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is the one-paragraph description printed by pfairlint -help.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass)
	// RunProgram applies the analyzer to the whole program.
	RunProgram func(*ProgramPass)
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Fset maps positions for every file in the package.
	Fset *token.FileSet
	// Files are the package's parsed syntax trees (comments included).
	Files []*ast.File
	// Path is the package's import path. Analyzers classify packages
	// (restricted vs reporting) by this path.
	Path string
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type-checker's results for Files.
	Info *types.Info

	diags *[]Diagnostic
	notes map[*ast.File]noteIndex
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A ProgramPass is one interprocedural analyzer's view of the whole
// loaded program: every package plus the call graph built over them.
type ProgramPass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Fset maps positions for every file in the program.
	Fset *token.FileSet
	// Pkgs are the loaded packages, in load order.
	Pkgs []*Package
	// Graph is the whole-program call graph (see internal/lint/callgraph
	// for the dispatch approximations it makes).
	Graph *callgraph.Graph

	diags  *[]Diagnostic
	passes map[*Package]*Pass
}

// Pass returns the per-package Pass for pkg, so program analyzers can
// use the annotation helpers (annotated, notesFor) with pkg's files.
func (p *ProgramPass) Pass(pkg *Package) *Pass {
	if sub, ok := p.passes[pkg]; ok {
		return sub
	}
	sub := &Pass{
		Analyzer: p.Analyzer,
		Fset:     p.Fset,
		Files:    pkg.Files,
		Path:     pkg.Path,
		Pkg:      pkg.Pkg,
		Info:     pkg.Info,
		diags:    p.diags,
	}
	if p.passes == nil {
		p.passes = map[*Package]*Pass{}
	}
	p.passes[pkg] = sub
	return sub
}

// Reportf records a diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// sortDiagnostics orders diagnostics by file, line, column, analyzer so
// the linter's own output is deterministic regardless of package or
// analyzer scheduling.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// directivePrefix introduces every pfair source annotation.
const directivePrefix = "//pfair:"

// A note is one parsed //pfair: annotation.
type note struct {
	name   string // e.g. "allowpanic"
	reason string // text after the name, trimmed
	line   int    // line the comment itself is on
}

// noteIndex maps a source line to the annotations that cover it: an
// annotation covers its own line (end-of-line form) and the following
// line (own-line form above a statement).
type noteIndex map[int][]note

// notesFor lazily builds and returns the annotation index for file.
func (p *Pass) notesFor(file *ast.File) noteIndex {
	if idx, ok := p.notes[file]; ok {
		return idx
	}
	idx := noteIndex{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			body := strings.TrimPrefix(c.Text, directivePrefix)
			name, reason, _ := strings.Cut(body, " ")
			line := p.Fset.Position(c.Pos()).Line
			n := note{name: name, reason: strings.TrimSpace(reason), line: line}
			idx[line] = append(idx[line], n)
			idx[line+1] = append(idx[line+1], n)
		}
	}
	if p.notes == nil {
		p.notes = map[*ast.File]noteIndex{}
	}
	p.notes[file] = idx
	return idx
}

// annotated reports whether a //pfair:<name> annotation covers pos, and
// whether that annotation carries a non-empty reason. It checks, in
// order: a line annotation at pos, and the doc comment of the function
// declaration enclosing pos.
func (p *Pass) annotated(file *ast.File, pos token.Pos, name string) (found, hasReason bool) {
	line := p.Fset.Position(pos).Line
	for _, n := range p.notesFor(file)[line] {
		if n.name == name {
			return true, n.reason != ""
		}
	}
	if fd := p.enclosingFunc(file, pos); fd != nil && fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			body := strings.TrimPrefix(c.Text, directivePrefix)
			n, reason, _ := strings.Cut(body, " ")
			if n == name {
				return true, strings.TrimSpace(reason) != ""
			}
		}
	}
	return false, false
}

// enclosingFunc returns the innermost function declaration containing pos.
func (p *Pass) enclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// funcHasDirective reports whether fd's doc comment contains the given
// bare //pfair:<name> directive.
func funcHasDirective(fd *ast.FuncDecl, name string) bool {
	if fd.Doc == nil {
		return false
	}
	want := directivePrefix + name
	for _, c := range fd.Doc.List {
		if c.Text == want || strings.HasPrefix(c.Text, want+" ") {
			return true
		}
	}
	return false
}

// calleeFunc resolves the *types.Func a call expression invokes, or nil
// for builtins, type conversions, and calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether call invokes the package-level function
// path.name (methods do not match).
func isPkgFunc(info *types.Info, call *ast.CallExpr, path, name string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == path && fn.Name() == name
}

// isFloat reports whether t's core type is a floating-point basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// hasPrefixAny reports whether path equals or is a child of any of the
// given import-path prefixes.
func hasPrefixAny(path string, prefixes ...string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
