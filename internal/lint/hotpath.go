package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath reports allocation sources inside functions annotated
// //pfair:hotpath. PR 1 made Scheduler.Step and the priority comparators
// allocation-free (0 allocs/op); the benchmark notices a regression only
// when someone runs it, whereas this analyzer fails `make lint` at the
// offending line. Inside an annotated function the following are
// flagged:
//
//   - closures (func literals): closing over variables forces them to
//     the heap and allocates the closure itself;
//   - fmt calls: the ...any parameters box their arguments;
//   - make/new: direct allocations;
//   - &T{...} and slice/map composite literals: heap allocations (plain
//     struct value literals are fine — they stay in registers or get
//     copied into preallocated backing arrays);
//   - append to anything that is not a struct field or a local derived
//     from one (the s.buf[:0] double-buffer pattern): appending to a
//     fresh slice allocates its backing array in steady state.
//
// Allocation sources inside a builtin panic's argument are exempt: the
// message formatting runs once, while the program dies, never in steady
// state.
//
// Additionally, the observability contract of internal/obs is enforced:
// any method call on an obs-typed value (Recorder.Emit, Counter.Inc,
// SchedulerMetrics.Task, ...) inside a //pfair:hotpath function must be
// lexically inside the body of an `if x != nil` guard where x is an
// obs-typed prefix of the call's receiver chain. The guard is what makes
// observation free when disabled — a nil recorder costs one predictable
// branch — so an unguarded call is either a nil-pointer hazard or a sign
// the emission was written outside the sanctioned pattern
// `if rec := s.rec; rec != nil { rec.Emit(...) }`.
//
// The rules are per-function and syntactic: callees are not traversed,
// so every function on the hot path must carry its own annotation.
// BenchmarkStepAllocs asserts the dynamic side (0 allocs/op) so the
// analyzer and benchmark cross-check each other.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: "flag allocation sources (closures, fmt, make/new, escaping composite " +
		"literals, append to non-preallocated slices) and unguarded internal/obs " +
		"calls inside functions annotated //pfair:hotpath",
	Run: runHotPath,
}

// obsPkgPath is the observability package whose method calls must be
// nil-guarded on hot paths. The obs package itself is exempt: its own
// methods run on receivers the caller already guarded.
const obsPkgPath = "pfair/internal/obs"

func runHotPath(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcHasDirective(fd, "hotpath") {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	// First pass: find locals that reuse preallocated storage — assigned
	// from a slice expression (buf[:0]), a struct field, or an indexed
	// element of one (the calendar-queue bucket pattern w.buckets[b]) —
	// so appends to them are recognized as buffer reuse, not fresh
	// allocation.
	prealloc := preallocLocals(pass, fd)

	if pass.Path != obsPkgPath {
		checkObsGuards(pass, fd)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in //pfair:hotpath function %s allocates", fd.Name.Name)
			return false
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine launch in //pfair:hotpath function %s allocates", fd.Name.Name)
		case *ast.UnaryExpr:
			if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && n.Op == token.AND {
				pass.Reportf(lit.Pos(), "&composite literal in //pfair:hotpath function %s escapes to the heap", fd.Name.Name)
				return false
			}
		case *ast.CompositeLit:
			if tv, ok := pass.Info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "%s literal in //pfair:hotpath function %s allocates", describeComposite(tv.Type), fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			if isPanicCall(pass.Info, n) {
				// Failure path: formatting the panic message may allocate.
				return false
			}
			if fn := calleeFunc(pass.Info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				pass.Reportf(n.Pos(), "fmt.%s in //pfair:hotpath function %s allocates (boxing into ...any)", fn.Name(), fd.Name.Name)
				return true
			}
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			switch id.Name {
			case "make", "new":
				pass.Reportf(n.Pos(), "%s in //pfair:hotpath function %s allocates; hoist the allocation to setup and reuse it", id.Name, fd.Name.Name)
			case "append":
				if len(n.Args) == 0 || !isPreallocTarget(pass, prealloc, n.Args[0]) {
					pass.Reportf(n.Pos(), "append to a non-preallocated slice in //pfair:hotpath function %s; append only to reused buffers (fields or locals from buf[:0])", fd.Name.Name)
				}
			}
		}
		return true
	})
}

// isPreallocTarget reports whether the append target reuses preallocated
// storage: a struct field (s.buf, s.stats.Misses), an indexed element of
// one (w.buckets[b], the calendar-queue bucket pattern — the bucket table
// is allocated at construction and each bucket retains its backing array
// across drains), or a local variable recorded as derived from one.
func isPreallocTarget(pass *Pass, prealloc map[types.Object]bool, target ast.Expr) bool {
	switch t := ast.Unparen(target).(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return isPreallocTarget(pass, prealloc, t.X)
	case *ast.Ident:
		obj := pass.Info.Uses[t]
		if obj == nil {
			obj = pass.Info.Defs[t]
		}
		return obj != nil && prealloc[obj]
	}
	return false
}

func describeComposite(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}

// checkObsGuards walks fd's body tracking which expressions are known
// non-nil from enclosing `if x != nil` conditions, and reports any
// obs-typed method call not covered by such a guard. The analysis is
// lexical: a guard covers exactly the if statement's body (not its else
// branch), conditions contribute through `&&` conjunctions only, and
// expressions match by their printed form (`rec`, `s.met`, ...), so
// guarding an alias covers calls through that alias and nothing else.
func checkObsGuards(pass *Pass, fd *ast.FuncDecl) {
	var walk func(root ast.Node, guarded map[string]bool)
	walk = func(root ast.Node, guarded map[string]bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IfStmt:
				if n.Init != nil {
					walk(n.Init, guarded)
				}
				walk(n.Cond, guarded)
				g := guarded
				if keys := nilGuardKeys(n.Cond, nil); len(keys) > 0 {
					g = make(map[string]bool, len(guarded)+len(keys))
					for k := range guarded { //pfair:orderinvariant copies a set into a set
						g[k] = true
					}
					for _, k := range keys {
						g[k] = true
					}
				}
				walk(n.Body, g)
				if n.Else != nil {
					walk(n.Else, guarded)
				}
				return false
			case *ast.CallExpr:
				checkObsCall(pass, fd, n, guarded)
			}
			return true
		})
	}
	walk(fd.Body, map[string]bool{})
}

// nilGuardKeys appends the printed keys of every expression an if
// condition proves non-nil: `x != nil`, `nil != x`, and conjunctions
// thereof. Disjunctions prove nothing about either operand.
func nilGuardKeys(cond ast.Expr, keys []string) []string {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return keys
	}
	switch b.Op {
	case token.LAND:
		keys = nilGuardKeys(b.X, keys)
		keys = nilGuardKeys(b.Y, keys)
	case token.NEQ:
		if isNilIdent(b.Y) {
			if k := exprKey(b.X); k != "" {
				keys = append(keys, k)
			}
		} else if isNilIdent(b.X) {
			if k := exprKey(b.Y); k != "" {
				keys = append(keys, k)
			}
		}
	}
	return keys
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// exprKey renders an identifier or selector chain (`rec`, `s.met`,
// `tm.Misses`) for guard matching; anything else — calls, indexing —
// renders empty and never matches.
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x := exprKey(e.X); x != "" {
			return x + "." + e.Sel.Name
		}
	}
	return ""
}

// checkObsCall reports call if its receiver chain contains an obs-typed
// value and no obs-typed prefix of the chain is in the guarded set. For
// `met.Task(id).Preemptions.Inc()` the checked prefixes are
// `met.Task(id).Preemptions` and `met`; guarding either satisfies the
// rule (the intermediate call expression has no guardable key).
func checkObsCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, guarded map[string]bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	touchesObs := false
	for x := ast.Unparen(sel.X); x != nil; {
		if isObsValue(pass, x) {
			touchesObs = true
			if k := exprKey(x); k != "" && guarded[k] {
				return
			}
		}
		switch e := x.(type) {
		case *ast.SelectorExpr:
			x = ast.Unparen(e.X)
		case *ast.CallExpr:
			if f, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
				x = ast.Unparen(f.X)
			} else {
				x = nil
			}
		default:
			x = nil
		}
	}
	if touchesObs {
		pass.Reportf(call.Pos(),
			"unguarded obs call in //pfair:hotpath function %s; wrap it in `if x != nil { ... }` so a detached recorder costs one branch",
			fd.Name.Name)
	}
}

// isObsValue reports whether e is a value (not a package name) whose
// type, pointers dereferenced, is declared in the obs package.
func isObsValue(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == obsPkgPath
}
