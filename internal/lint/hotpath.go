package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath reports allocation sources inside functions annotated
// //pfair:hotpath. PR 1 made Scheduler.Step and the priority comparators
// allocation-free (0 allocs/op); the benchmark notices a regression only
// when someone runs it, whereas this analyzer fails `make lint` at the
// offending line. Inside an annotated function the following are
// flagged:
//
//   - closures (func literals): closing over variables forces them to
//     the heap and allocates the closure itself;
//   - fmt calls: the ...any parameters box their arguments;
//   - make/new: direct allocations;
//   - &T{...} and slice/map composite literals: heap allocations (plain
//     struct value literals are fine — they stay in registers or get
//     copied into preallocated backing arrays);
//   - append to anything that is not a struct field or a local derived
//     from one (the s.buf[:0] double-buffer pattern): appending to a
//     fresh slice allocates its backing array in steady state.
//
// The rules are per-function and syntactic: callees are not traversed,
// so every function on the hot path must carry its own annotation.
// BenchmarkStepAllocs asserts the dynamic side (0 allocs/op) so the
// analyzer and benchmark cross-check each other.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: "flag allocation sources (closures, fmt, make/new, escaping composite " +
		"literals, append to non-preallocated slices) inside functions annotated " +
		"//pfair:hotpath",
	Run: runHotPath,
}

func runHotPath(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcHasDirective(fd, "hotpath") {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	// First pass: find locals that reuse preallocated storage — assigned
	// from a slice expression (buf[:0]) or a struct field — so appends to
	// them are recognized as buffer reuse, not fresh allocation.
	prealloc := map[types.Object]bool{}
	record := func(lhs, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		switch r := ast.Unparen(rhs).(type) {
		case *ast.SliceExpr, *ast.SelectorExpr:
			prealloc[obj] = true
		case *ast.Ident:
			if other := pass.Info.Uses[r]; other != nil && prealloc[other] {
				prealloc[obj] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for i := range as.Lhs {
				record(as.Lhs[i], as.Rhs[i])
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in //pfair:hotpath function %s allocates", fd.Name.Name)
			return false
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine launch in //pfair:hotpath function %s allocates", fd.Name.Name)
		case *ast.UnaryExpr:
			if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && n.Op == token.AND {
				pass.Reportf(lit.Pos(), "&composite literal in //pfair:hotpath function %s escapes to the heap", fd.Name.Name)
				return false
			}
		case *ast.CompositeLit:
			if tv, ok := pass.Info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "%s literal in //pfair:hotpath function %s allocates", describeComposite(tv.Type), fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				pass.Reportf(n.Pos(), "fmt.%s in //pfair:hotpath function %s allocates (boxing into ...any)", fn.Name(), fd.Name.Name)
				return true
			}
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			switch id.Name {
			case "make", "new":
				pass.Reportf(n.Pos(), "%s in //pfair:hotpath function %s allocates; hoist the allocation to setup and reuse it", id.Name, fd.Name.Name)
			case "append":
				if len(n.Args) == 0 || !isPreallocTarget(pass, prealloc, n.Args[0]) {
					pass.Reportf(n.Pos(), "append to a non-preallocated slice in //pfair:hotpath function %s; append only to reused buffers (fields or locals from buf[:0])", fd.Name.Name)
				}
			}
		}
		return true
	})
}

// isPreallocTarget reports whether the append target reuses preallocated
// storage: a struct field (s.buf, s.stats.Misses) or a local variable
// recorded as derived from one.
func isPreallocTarget(pass *Pass, prealloc map[types.Object]bool, target ast.Expr) bool {
	switch t := ast.Unparen(target).(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.Ident:
		obj := pass.Info.Uses[t]
		if obj == nil {
			obj = pass.Info.Defs[t]
		}
		return obj != nil && prealloc[obj]
	}
	return false
}

func describeComposite(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}
