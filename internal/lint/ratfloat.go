package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatReportingPackages may use floating point freely: they render
// exact results for humans (plots, tables, CLIs), measure wall-clock
// overheads, or sample random workload parameters (taskgen's UUniFast,
// the fuzzer's weight budgets) whose outputs are exact integer tasks.
// Nothing they compute feeds back into a scheduling decision.
var floatReportingPackages = []string{
	"pfair/internal/experiments",
	"pfair/internal/stats",
	"pfair/internal/overhead",
	"pfair/internal/taskgen",
	"pfair/internal/fuzz",
	"pfair/cmd",
	"pfair/examples",
}

// RatFloat reports floating-point use in the packages that compute
// weights, lags, and utilizations. Section 2's correctness condition
// −1 < lag < 1 is a strict inequality on rationals; one float comparison
// can misclassify a schedule whose lag touches the bound, so everything
// outside the designated reporting packages must stay on
// internal/rational. Rat.Float and Acc.Float are the only sanctioned
// bridges, callable only from those reporting packages; inherently
// irrational formulas (e.g. the Liu–Layland bound n·(2^{1/n}−1)) carry a
// //pfair:allowfloat annotation naming why exact arithmetic is
// impossible.
var RatFloat = &Analyzer{
	Name: "ratfloat",
	Doc: "flag float arithmetic, comparisons, conversions, and Rat/Acc.Float calls " +
		"outside the designated reporting packages (annotate inherently irrational " +
		"formulas with //pfair:allowfloat <reason>)",
	Run: runRatFloat,
}

var comparisonOps = map[token.Token]bool{
	token.LSS: true, token.LEQ: true, token.GTR: true,
	token.GEQ: true, token.EQL: true, token.NEQ: true,
}

var arithmeticOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
}

func runRatFloat(pass *Pass) {
	if hasPrefixAny(pass.Path, floatReportingPackages...) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(pass.Info, n); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "pfair/internal/rational" && fn.Name() == "Float" {
					pass.allowFloatOr(file, n.Pos(), "call to rational %s.Float outside reporting packages", recvTypeName(fn))
					return true
				}
				// Conversions to a float type.
				if tv, ok := pass.Info.Types[n.Fun]; ok && tv.IsType() && isFloat(tv.Type) {
					pass.allowFloatOr(file, n.Pos(), "conversion to floating point")
				}
			case *ast.BinaryExpr:
				if !comparisonOps[n.Op] && !arithmeticOps[n.Op] {
					return true
				}
				x, xok := pass.Info.Types[n.X]
				y, yok := pass.Info.Types[n.Y]
				if (xok && isFloat(x.Type)) || (yok && isFloat(y.Type)) {
					verb := "arithmetic"
					if comparisonOps[n.Op] {
						verb = "comparison"
					}
					pass.allowFloatOr(file, n.Pos(), "floating-point %s", verb)
				}
			case *ast.AssignStmt:
				switch n.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				default:
					return true
				}
				for _, lhs := range n.Lhs {
					if tv, ok := pass.Info.Types[lhs]; ok && isFloat(tv.Type) {
						pass.allowFloatOr(file, n.Pos(), "floating-point arithmetic")
						break
					}
				}
			}
			return true
		})
	}
}

// allowFloatOr reports the finding unless an allowfloat annotation with a
// reason covers pos; an annotation without a reason is itself reported.
func (p *Pass) allowFloatOr(file *ast.File, pos token.Pos, format string, args ...any) {
	found, hasReason := p.annotated(file, pos, "allowfloat")
	switch {
	case !found:
		p.Reportf(pos, format+" (use internal/rational, or justify with //pfair:allowfloat <reason>)", args...)
	case !hasReason:
		p.Reportf(pos, "//pfair:allowfloat needs a reason")
	}
}

// recvTypeName returns the name of fn's receiver type (e.g. "Rat"), or
// the empty string for package-level functions.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
