package lint_test

import (
	"testing"

	"pfair/internal/lint"
	"pfair/internal/lint/linttest"
)

// TestAnalyzers checks every analyzer against its seeded testdata
// package under testdata/src: each must report exactly the violations
// marked by `// want` comments and stay silent on the adjacent allowed
// patterns (annotated escapes, sorted iteration, buffer reuse, handled
// results). The testdata directories are invisible to ./... package
// patterns, so the deliberate violations never reach the real build or
// pfairlint runs.
func TestAnalyzers(t *testing.T) {
	linttest.Run(t, ".", []linttest.Case{
		{Analyzer: lint.RatFloat, Pattern: "./testdata/src/ratfloat"},
		{Analyzer: lint.Determinism, Pattern: "./testdata/src/determinism"},
		{Analyzer: lint.HotPath, Pattern: "./testdata/src/hotpath"},
		{Analyzer: lint.NoPanic, Pattern: "./testdata/src/nopanic"},
		{Analyzer: lint.ErrCheckRat, Pattern: "./testdata/src/errcheckrat"},
		{Analyzer: lint.HotClosure, Pattern: "./testdata/src/hotclosure"},
		{Analyzer: lint.FloatFlow, Pattern: "./testdata/src/floatflow"},
		{Analyzer: lint.StaleAnnot, Pattern: "./testdata/src/staleannot"},
	})
}
