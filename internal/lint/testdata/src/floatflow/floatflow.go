// Package floatflow seeds interprocedural float heritage: laundering
// conversions, tainted values reaching internal/rational through call
// chains, struct fields, and interface dispatch, plus the audited and
// exact shapes that must stay silent — sanitized boundaries, constant
// arithmetic, and clean integer flows.
package floatflow

import "pfair/internal/rational"

// rate launders its float parameter at the return: the conversion is
// the first sink, and the summary taints every caller's target.
func rate(x float64) int64 {
	return int64(x * 2) // want `float-derived value laundered into int64`
}

// Weight carries rate's laundered result into the exact core: the
// second sink, one call away from the conversion.
func Weight() rational.Rat {
	n := rate(3.5)
	return rational.New(n, 10) // want `float-tainted value reaches exact-rational call rational.New`
}

// bound is an audited boundary: the reasoned annotation sanitizes the
// conversion, so nothing downstream is tainted.
func bound(x float64) int64 {
	return int64(x) //pfair:allowfloat floor of an inherently irrational bound; callers treat it as a conservative estimate
}

// UseBound stays clean: bound's result is sanctioned exact.
func UseBound() rational.Rat {
	n := bound(2.0)
	return rational.New(n, 1)
}

// unreasoned shows the rejected middle ground: the annotation is
// present but does not say why, so it neither sanitizes nor passes.
func unreasoned(x float64) int64 {
	//pfair:allowfloat
	return int64(x) // want `//pfair:allowfloat needs a reason`
}

// state launders into a struct field; the taint is visible wherever the
// field is read.
type state struct{ v int64 }

func set(s *state, x float64) {
	s.v = int64(x) // want `float-derived value laundered into int64`
}

// Get reads the tainted field into the exact core, far from set.
func Get(s *state) rational.Rat {
	return rational.New(s.v, 1) // want `float-tainted value reaches exact-rational call rational.New`
}

// sink dispatches dynamically: the tainted argument must follow the
// interface edge into consume's parameter and out through acc.total.
type sink interface{ consume(n int64) }

type acc struct{ total int64 }

func (a *acc) consume(n int64) { a.total = n }

// Feed launders at the call site; the interface edge carries the taint
// into every concrete consume.
func Feed(s sink, x float64) {
	s.consume(int64(x)) // want `float-derived value laundered into int64`
}

// Total surfaces the field taint that arrived through dispatch.
func (a *acc) Total() rational.Rat {
	return rational.New(a.total, 1) // want `float-tainted value reaches exact-rational call rational.New`
}

// Exact is the negative case: constant float arithmetic is evaluated in
// arbitrary precision at compile time, so no runtime float exists and
// nothing is tainted.
func Exact() rational.Rat {
	const half = 0.5
	n := int64(half * 4)
	return rational.New(n, 1)
}
