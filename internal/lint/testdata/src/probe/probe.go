package probe

type S struct{ fn func() }

func known() { _ = make([]int, 8) }

func unknownAlloc() { _ = make([]int, 8) }

func lookup() (func(), error) { return unknownAlloc, nil }

// Entry is a hot root.
//
//pfair:hotpath
func Entry() {
	s := S{fn: known}
	s.fn, _ = lookup()
	s.fn()
}
