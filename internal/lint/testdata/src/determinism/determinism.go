// Package determinism seeds replay hazards for the determinism
// analyzer: map iteration reaching output, global math/rand, and
// wall-clock reads, plus sorted/seeded/annotated negatives.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

// Leak lets map iteration order reach the returned slice.
func Leak(m map[string]int64) []string {
	var out []string
	for k := range m { // want `map iteration order can leak into output`
		out = append(out, k)
	}
	return out
}

// SortedKeys is allowed: the iteration collects keys for sorting.
func SortedKeys(m map[string]int64) []string {
	names := make([]string, 0, len(m))
	for k := range m { //pfair:orderinvariant collects keys for sorting
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Jitter draws from the process-global source.
func Jitter() int64 {
	return rand.Int63() // want `global math/rand\.Int63 breaks replay`
}

// Seeded is allowed: rand.New and rand.NewSource construct an isolated
// generator, and method calls on it replay from the seed.
func Seeded(seed int64) int64 {
	r := rand.New(rand.NewSource(seed))
	return r.Int63()
}

// Stamp reads the wall clock with no annotation.
func Stamp() int64 {
	return time.Now().UnixNano() // want `wall-clock time\.Now in a deterministic package`
}

// Measured is allowed: the read is justified as a gated measurement.
func Measured() time.Time {
	//pfair:allowtime measurement path, gated off during simulation
	return time.Now()
}
