// Package hotclosure seeds call-graph rot for the hotclosure analyzer:
// an unannotated callee reachable from a hot root (the regression the
// analyzer exists to catch), a stale annotation on a function no root
// reaches any more, and the negative shapes that must stay silent —
// annotated callees, sanctioned allocators, and cold-cut call sites.
// Reachability is exercised through all three edge kinds: static calls,
// interface dispatch, and calls of function-typed struct fields.
package hotclosure

// Step is a hot root: annotated and exported, so benchmarks and other
// packages can drive it.
//
//pfair:hotpath
func Step() {
	refill()
	record()
	//pfair:coldcall admission runs once per task join, never in steady state
	admit()
	leak()
}

// refill is reachable and annotated: the happy path.
//
//pfair:hotpath
func refill() {}

// record allocates, but says so with a reason: sanctioned.
//
//pfair:allowalloc amortized row growth, one doubling per horizon
func record() {
	_ = make([]int, 1)
}

// admit is reachable only through the cold-cut call site in Step, so it
// needs no annotation.
func admit() {
	_ = make([]int, 8)
}

// leak is the seeded regression: a new callee on the hot path that
// nobody annotated.
func leak() {} // want `leak is reachable from the //pfair:hotpath closure \(via Step → leak\) but carries no annotation`

// orphan was hot once; no root reaches it now, so its annotation
// enforces nothing.
//
//pfair:hotpath
func orphan() { refill() } // want `orphan is annotated //pfair:hotpath but is no longer reachable from any hot-path root`

// policy dispatches dynamically: the analyzer must follow the interface
// edge to every concrete pick.
type policy interface{ pick() int }

type fixed struct{ v int }

func (f fixed) pick() int { return f.v } // want `pick is reachable from the //pfair:hotpath closure \(via Drive → pick, interface call\) but carries no annotation`

// Drive is a hot root calling through the interface.
//
//pfair:hotpath
func Drive(p policy) int { return p.pick() }

// plane seeds the admission-plane seam from internal/core: the hot
// step drains a pending-departure list only on slots that have one,
// behind a cold-cut method call; Submit is the plane's cold entry
// point — it mutates the same state but no hot root reaches it, so it
// must stay silent without any annotation.
type plane struct{ pending []int }

// StepPlane is the hot root with the emptiness guard.
//
//pfair:hotpath
func (p *plane) StepPlane() {
	if len(p.pending) == 0 {
		return
	}
	//pfair:coldcall departure slots only, never in steady state
	p.applyLeaves()
}

// applyLeaves allocates freely: reachable only through the cold cut.
func (p *plane) applyLeaves() {
	p.pending = append(p.pending[:0], make([]int, 4)...)
}

// Submit mutates the pending list from the cold side; shared state
// does not make it hot.
func (p *plane) Submit(v int) { p.pending = append(p.pending, v) }

// commitLedger is the seeded admission regression: an apply helper
// that grew a call from the hot step without a cold cut or annotation.
func (p *plane) commitLedger() {} // want `commitLedger is reachable from the //pfair:hotpath closure \(via StepHot → commitLedger\) but carries no annotation`

// StepHot is a second hot root that forgot the cold cut on its ledger
// write — the exact rot the admission refactor must not introduce.
//
//pfair:hotpath
func (p *plane) StepHot() { p.commitLedger() }

// table holds a function-typed field; Apply's call of it must resolve
// to helper, the only function that flows in.
type table struct{ fn func() }

// New wires the table at setup time, off the hot path.
func New() *table { return &table{fn: helper} }

func helper() {} // want `helper is reachable from the //pfair:hotpath closure \(via Apply → helper, dynamic call\) but carries no annotation`

// Apply is a hot root calling through the function value.
//
//pfair:hotpath
func Apply(t *table) { t.fn() }
