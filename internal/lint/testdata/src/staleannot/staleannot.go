// Package staleannot seeds every way a //pfair: annotation can rot: a
// suppression whose construct is gone, a whole-function marker attached
// to a statement, a function-level coldcall, and a misspelled
// directive — next to the live forms of each that must stay silent.
// staleannot anchors its diagnostics at the offending comment, so the
// `want` clauses here ride inside the directive comments themselves
// (linttest finds the marker anywhere in a comment).
package staleannot

import "time"

// live panics, ranges a map, and reads the clock, each with its reason:
// every annotation here has its construct.
func live(m map[string]int) int {
	if len(m) == 0 {
		panic("empty") //pfair:allowpanic misuse check at the API boundary
	}
	sum := 0
	for _, v := range m { //pfair:orderinvariant sum is commutative
		sum += v
	}
	_ = time.Now() //pfair:allowtime measurement path, gated off in simulation
	return sum
}

// stale kept its annotations while the constructs moved out.
func stale(xs []int) int {
	sum := 0               //pfair:allowpanic validated upstream // want `stale //pfair:allowpanic: no panic call on the annotated line`
	for _, v := range xs { //pfair:orderinvariant sum is commutative // want `stale //pfair:orderinvariant: no map iteration on the annotated line`
		sum += v
	}
	return sum //pfair:allowtime measurement path // want `stale //pfair:allowtime: no time.Now/time.Since call on the annotated line`
}

// misplaced puts a whole-function marker on a statement, where it marks
// nothing.
func misplaced() {
	x := 1 //pfair:hotpath // want `//pfair:hotpath marks whole functions; attach it to the function's doc comment`
	_ = x
}

// alloc still allocates, so its doc-comment marker is live.
//
//pfair:allowalloc grows the scratch table once per horizon
func alloc() []int {
	return make([]int, 4)
}

// clean no longer allocates; the marker outlived the make it excused.
//
//pfair:allowalloc grows the scratch table once per horizon // want `stale //pfair:allowalloc on clean: the function no longer allocates`
func clean() int { return 0 }

// wholeCold misuses coldcall as a function marker; it cuts call sites,
// not declarations.
//
//pfair:coldcall admission only // want `//pfair:coldcall applies to call lines, not whole functions`
func wholeCold() {}

// staleCold cut a call that is no longer there.
func staleCold() int {
	//pfair:coldcall admission only // want `stale //pfair:coldcall: no call expression on the annotated line`
	return 1
}

// liveCold keeps its call: silent.
func liveCold() int {
	//pfair:coldcall admission only
	return len(make([]int, 1))
}

// ledger seeds the admission plane's method shapes. Commit appends
// into a struct field — amortized growth the analyzer treats as
// preallocated storage, so a marker there would itself be stale;
// Commit stays unannotated and silent. Snapshot copies the log into
// fresh memory, a real allocation with a live marker. Rejects kept a
// marker after the copy it excused moved into Snapshot.
type ledger struct {
	log     []int
	rejects int
}

// Commit appends into the field: amortized, no marker needed.
func (l *ledger) Commit(d int) { l.log = append(l.log, d) }

// Snapshot hands out a copy so callers cannot alias the ledger.
//
//pfair:allowalloc copies the decision log, cold query path
func (l *ledger) Snapshot() []int { return append([]int(nil), l.log...) }

// Rejects is a plain counter read now.
//
//pfair:allowalloc copies the decision log // want `stale //pfair:allowalloc on Rejects: the function no longer allocates`
func (l *ledger) Rejects() int { return l.rejects }

// typo suppresses nothing, silently — exactly what the audit exists to
// catch.
func typo() {
	_ = recover() //pfair:allowpannic typo'd name // want `unknown directive //pfair:allowpannic`
}
