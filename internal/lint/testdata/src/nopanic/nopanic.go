// Package nopanic seeds a bare library panic, an annotated misuse
// guard (allowed), and a reasonless annotation (flagged).
package nopanic

import "errors"

// Bad panics where a caller would want an error.
func Bad(x int) int {
	if x < 0 {
		panic("negative") // want `panic in library package`
	}
	return x
}

// Good returns the error instead.
func Good(x int) (int, error) {
	if x < 0 {
		return 0, errors.New("negative")
	}
	return x, nil
}

// Guard is allowed: an annotated API-misuse check.
func Guard(i int) {
	if i < 0 {
		//pfair:allowpanic API misuse guard, mirrors container/heap
		panic("misuse")
	}
}

// NoReason annotates without saying why.
func NoReason() {
	//pfair:allowpanic
	panic("unjustified") // want `//pfair:allowpanic needs a reason`
}
