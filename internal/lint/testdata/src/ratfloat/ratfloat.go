// Package ratfloat seeds violations for the ratfloat analyzer: float
// conversions, arithmetic, comparisons, and Rat.Float calls outside the
// reporting packages, plus annotated negatives that must NOT be flagged.
package ratfloat

import "pfair/internal/rational"

var lagTolerance = 0.5

// Compare misuses the reporting bridge in a scheduling decision.
func Compare(lag rational.Rat) bool {
	return lag.Float() > lagTolerance // want `call to rational Rat\.Float outside reporting packages` `floating-point comparison`
}

// Convert truncates an exact weight into a float.
func Convert(n int64) float64 {
	return float64(n) // want `conversion to floating point`
}

// Accumulate drifts: repeated float addition loses exactness.
func Accumulate(u float64) float64 {
	u += 0.25 // want `floating-point arithmetic`
	return u
}

// Bound is allowed: the constant is irrational, and the annotation says so.
func Bound(n int64) float64 {
	//pfair:allowfloat ln 2 is irrational; no exact rational representation exists
	return float64(n) * 0.6931471805599453
}

// NoReason annotates without a justification, which is itself an error.
func NoReason(x, y float64) bool {
	//pfair:allowfloat
	return x < y // want `//pfair:allowfloat needs a reason`
}
