// Package hotpath seeds allocation sources inside a //pfair:hotpath
// function, plus the sanctioned buffer-reuse patterns that must pass.
package hotpath

import (
	"fmt"

	"pfair/internal/obs"
)

type pair struct{ a, b int }

type sched struct {
	buf   []int
	items []int
	rec   *obs.Recorder
	met   *obs.SchedulerMetrics
}

// Step is the negative case: annotated, but every append targets a
// buffer derived from a struct field, and the struct literal is a plain
// value.
//
//pfair:hotpath
func (s *sched) Step() pair {
	sel := s.buf[:0]
	for _, it := range s.items {
		sel = append(sel, it)
	}
	s.buf = sel
	return pair{len(sel), cap(sel)}
}

// Bad trips every rule.
//
//pfair:hotpath
func (s *sched) Bad() {
	x := make([]int, 4) // want `make in //pfair:hotpath function Bad allocates`
	_ = x
	var out []int
	out = append(out, 1) // want `append to a non-preallocated slice in //pfair:hotpath function Bad`
	_ = out
	fmt.Println("hi") // want `fmt\.Println in //pfair:hotpath function Bad allocates`
	f := func() {}    // want `closure in //pfair:hotpath function Bad allocates`
	f()
	p := &pair{1, 2} // want `&composite literal in //pfair:hotpath function Bad escapes to the heap`
	_ = p
}

// Observed exercises the sanctioned nil-guard patterns: every obs call
// sits inside an `if x != nil` body whose x is an obs-typed prefix of the
// receiver chain, so nothing here is reported.
//
//pfair:hotpath
func (s *sched) Observed(t int64) {
	if rec := s.rec; rec != nil {
		rec.Emit(obs.Event{Slot: t, Kind: obs.EvIdle, Task: -1, Proc: 0})
	}
	if s.rec != nil {
		s.rec.Emit(obs.Event{Slot: t, Kind: obs.EvIdle, Task: -1, Proc: 1})
	}
	if met := s.met; met != nil {
		met.Slots.Inc() // guard on the chain's obs-typed root suffices
		if tm := met.Task(0); tm != nil {
			tm.Preemptions.Inc()
		}
	}
	if s.met != nil && t > 0 {
		s.met.Allocations.Add(t) // conjunction still guards
	} else if rec := s.rec; rec != nil {
		rec.Emit(obs.Event{Slot: t, Kind: obs.EvIdle, Task: -1, Proc: 2})
	}
}

// Unguarded trips the obs rule in each unsanctioned shape.
//
//pfair:hotpath
func (s *sched) Unguarded(t int64) {
	s.rec.Emit(obs.Event{Slot: t}) // want `unguarded obs call in //pfair:hotpath function Unguarded`
	if s.rec == nil {
		return
	}
	// An early-return nil check is not a lexical guard: the rule wants the
	// call inside the if body, where the proof is visible.
	s.rec.Emit(obs.Event{Slot: t}) // want `unguarded obs call in //pfair:hotpath function Unguarded`
	if s.met != nil {
		s.rec.Emit(obs.Event{Slot: t}) // want `unguarded obs call in //pfair:hotpath function Unguarded`
	}
	if rec := s.rec; rec != nil {
		_ = rec
	} else {
		s.met.Slots.Inc() // want `unguarded obs call in //pfair:hotpath function Unguarded`
	}
}

// wheel mirrors the calendar-queue shape of internal/calq: a table of
// buckets allocated at construction, where the hot path appends to one
// indexed bucket whose backing array is retained across drains.
type wheel struct {
	buckets [][]int
	scratch []int
}

// BucketAdd is the calendar-queue-indexing case: appending to an indexed
// struct-field bucket — directly or through a local derived from the
// index expression — is buffer reuse, not fresh allocation.
//
//pfair:hotpath
func (w *wheel) BucketAdd(b, v int) {
	w.buckets[b] = append(w.buckets[b], v)
	bs := w.buckets[b]
	bs = append(bs, v)
	w.buckets[b] = bs
	keep := bs[:0]
	keep = append(keep, v)
	w.buckets[b] = keep
}

// BucketBad still trips the rule: a fresh local slice does not become
// preallocated by being indexed into.
//
//pfair:hotpath
func (w *wheel) BucketBad(b, v int) {
	var fresh [][]int
	fresh = append(fresh, nil)     // want `append to a non-preallocated slice in //pfair:hotpath function BucketBad`
	fresh[0] = append(fresh[0], v) // want `append to a non-preallocated slice in //pfair:hotpath function BucketBad`
	_ = fresh
}

// policy mirrors the engine.Policy shape: the engine's step loop drives
// phases through an interface value.
type policy interface {
	Release(t int64)
	Dispatch(t int64)
}

type loop struct {
	pol policy
	rec *obs.Recorder
}

// EngineStep is the engine-kernel case: dynamic dispatch through a
// policy interface is allocation-free and must pass unremarked, while
// the surrounding loop still obeys the obs-guard and allocation rules.
//
//pfair:hotpath
func (l *loop) EngineStep(t int64) {
	l.pol.Release(t)
	l.pol.Dispatch(t)
	if rec := l.rec; rec != nil {
		rec.Emit(obs.Event{Slot: t, Kind: obs.EvIdle, Task: -1, Proc: 0})
	}
}

// ColdObs is not annotated: unguarded obs calls are fine off the hot path
// (exporters, setup code).
func ColdObs(rec *obs.Recorder) {
	rec.Emit(obs.Event{})
}

// Cold is not annotated, so the same constructs pass unremarked.
func Cold() []int {
	return make([]int, 8)
}
