// Package hotpath seeds allocation sources inside a //pfair:hotpath
// function, plus the sanctioned buffer-reuse patterns that must pass.
package hotpath

import "fmt"

type pair struct{ a, b int }

type sched struct {
	buf   []int
	items []int
}

// Step is the negative case: annotated, but every append targets a
// buffer derived from a struct field, and the struct literal is a plain
// value.
//
//pfair:hotpath
func (s *sched) Step() pair {
	sel := s.buf[:0]
	for _, it := range s.items {
		sel = append(sel, it)
	}
	s.buf = sel
	return pair{len(sel), cap(sel)}
}

// Bad trips every rule.
//
//pfair:hotpath
func (s *sched) Bad() {
	x := make([]int, 4) // want `make in //pfair:hotpath function Bad allocates`
	_ = x
	var out []int
	out = append(out, 1) // want `append to a non-preallocated slice in //pfair:hotpath function Bad`
	_ = out
	fmt.Println("hi") // want `fmt\.Println in //pfair:hotpath function Bad allocates`
	f := func() {}    // want `closure in //pfair:hotpath function Bad allocates`
	f()
	p := &pair{1, 2} // want `&composite literal in //pfair:hotpath function Bad escapes to the heap`
	_ = p
}

// Cold is not annotated, so the same constructs pass unremarked.
func Cold() []int {
	return make([]int, 8)
}
