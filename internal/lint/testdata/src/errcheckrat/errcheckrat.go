// Package errcheckrat seeds discarded fallible results from the
// rational API, plus the legal handled and explicit-blank forms.
package errcheckrat

import "pfair/internal/rational"

// Discard drops the ok result that reports an unrepresentable sum.
func Discard(a *rational.Acc) {
	a.Rat() // want `result of rational\.Rat discarded`
}

// DeferredDiscard drops it via defer.
func DeferredDiscard(a *rational.Acc) {
	defer a.Rat() // want `result of rational\.Rat discarded`
}

// Checked handles the verdict.
func Checked(a *rational.Acc) rational.Rat {
	r, ok := a.Rat()
	if !ok {
		return rational.Zero()
	}
	return r
}

// Blank discards deliberately and visibly.
func Blank(a *rational.Acc) {
	_, _ = a.Rat()
}

// Chained is allowed: Add returns the receiver for chaining, not a
// failure verdict.
func Chained(a *rational.Acc) {
	a.Add(rational.One())
}
