package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pfair/internal/lint/callgraph"
)

// HotClosure is the interprocedural counterpart of HotPath: instead of
// trusting every hot function to carry its own //pfair:hotpath
// annotation, it computes the transitive closure of calls from the
// annotated roots over the whole-program call graph (static calls,
// interface dispatch by type-set, function-value calls — see
// internal/lint/callgraph) and reports two kinds of rot:
//
//   - an unannotated callee: a function declared in the program,
//     reachable from a hot root, that carries neither //pfair:hotpath
//     (bringing it under HotPath's per-function allocation rules) nor
//     //pfair:allowalloc <reason> (declaring it a sanctioned allocation
//     point — amortized work like job release, or a cold fallback the
//     steady state never takes). The diagnostic shows a shortest call
//     chain from a root so the new edge is obvious.
//   - a stale annotation: an unexported //pfair:hotpath function that no
//     longer appears in the closure of any externally drivable root
//     (exported or address-taken annotated function). Its annotation
//     enforces nothing and should go, along with the dead code.
//
// Roots are the //pfair:hotpath functions that are exported or
// address-taken — the ones benchmarks, the engine, and other packages
// can actually drive; unexported annotated helpers join the closure only
// by being called. Call sites annotated //pfair:coldcall <reason> are
// excluded from traversal: they name branches the steady state does not
// take (error paths, one-shot growth, detach-time migration), and the
// reason documents why. Edges into functions without loaded source
// (stdlib) end traversal there; the per-function HotPath rules already
// police the stdlib calls that allocate (fmt).
var HotClosure = &Analyzer{
	Name: "hotclosure",
	Doc: "walk the call graph from //pfair:hotpath roots and flag reachable " +
		"functions with neither //pfair:hotpath nor //pfair:allowalloc <reason>, " +
		"plus unexported annotated functions no longer reachable from any root " +
		"(cut steady-state-cold call sites with //pfair:coldcall <reason>)",
	RunProgram: runHotClosure,
}

func runHotClosure(pass *ProgramPass) {
	g := pass.Graph
	// Annotated and sanctioned sets, discovered from declarations.
	hot := map[*callgraph.Node]bool{}
	sanctioned := map[*callgraph.Node]bool{}
	var roots []*callgraph.Node
	for _, n := range g.DeclaredNodes() {
		if funcHasDirective(n.Decl, "hotpath") {
			hot[n] = true
			if n.Func.Exported() || n.AddressTaken {
				roots = append(roots, n)
			}
		}
		if funcHasDirective(n.Decl, "allowalloc") {
			sanctioned[n] = true
			if !funcDirectiveReason(n.Decl, "allowalloc") {
				pass.Reportf(n.Decl.Name.Pos(), "//pfair:allowalloc needs a reason")
			}
		}
	}

	// BFS from the roots, recording a parent edge per node for chain
	// reconstruction. Cold call sites are cut; out-of-program callees
	// are terminal.
	parent := map[*callgraph.Node]*callgraph.Edge{}
	visited := map[*callgraph.Node]bool{}
	queue := make([]*callgraph.Node, 0, len(roots))
	for _, r := range roots {
		visited[r] = true
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.Decl == nil {
			continue
		}
		lintPkg := pass.Pass(pkgOf(pass, n))
		for _, e := range n.Out {
			if visited[e.Callee] {
				continue
			}
			if coldCall(lintPkg, n.File, e.Site.Pos()) {
				continue
			}
			visited[e.Callee] = true
			parent[e.Callee] = e
			queue = append(queue, e.Callee)
		}
	}

	for _, n := range g.DeclaredNodes() {
		switch {
		case visited[n] && !hot[n] && !sanctioned[n]:
			pass.Reportf(n.Decl.Name.Pos(),
				"%s is reachable from the //pfair:hotpath closure (%s) but carries no annotation; "+
					"add //pfair:hotpath, justify with //pfair:allowalloc <reason>, or cut the cold call site with //pfair:coldcall <reason>",
				n.Name(), chain(parent, n))
		case hot[n] && !visited[n] && !n.Func.Exported() && !n.AddressTaken:
			pass.Reportf(n.Decl.Name.Pos(),
				"%s is annotated //pfair:hotpath but is no longer reachable from any hot-path root; "+
					"remove the stale annotation or the dead code", n.Name())
		}
	}
}

// pkgOf finds the loaded *Package a node belongs to.
func pkgOf(pass *ProgramPass, n *callgraph.Node) *Package {
	for _, p := range pass.Pkgs {
		if p.Path == n.Pkg.Path {
			return p
		}
	}
	return nil
}

// coldCall reports whether a //pfair:coldcall annotation with a reason
// covers the call at pos. An annotation without a reason does not cut
// the edge; staleannot separately rejects reasonless forms.
func coldCall(p *Pass, file *ast.File, pos token.Pos) bool {
	found, hasReason := p.annotated(file, pos, "coldcall")
	return found && hasReason
}

// chain renders the shortest discovered call path to n, rooted at an
// annotated function: "Step → refill → grow (interface)".
func chain(parent map[*callgraph.Node]*callgraph.Edge, n *callgraph.Node) string {
	var names []string
	kind := ""
	for cur := n; ; {
		e := parent[cur]
		names = append(names, cur.Func.Name())
		if e == nil {
			break
		}
		if cur == n {
			kind = e.Kind.String()
		}
		cur = e.Caller
		if len(names) > 12 {
			names = append(names, "...")
			break
		}
	}
	// Reverse into root-first order.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	s := "via " + strings.Join(names, " → ")
	if kind != "" && kind != "static" {
		s += ", " + kind + " call"
	}
	return s
}

// funcDirectiveReason reports whether fd's doc-comment directive name
// carries a non-empty reason.
func funcDirectiveReason(fd *ast.FuncDecl, name string) bool {
	if fd.Doc == nil {
		return false
	}
	want := directivePrefix + name + " "
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, want) && strings.TrimSpace(strings.TrimPrefix(c.Text, want)) != "" {
			return true
		}
	}
	return false
}

// allocationSites returns the positions of allocation sources HotPath
// would flag in body, using the same rules (closures, go statements,
// fmt, make/new, escaping composite literals, appends to
// non-preallocated slices). Shared by staleannot to decide whether an
// //pfair:allowalloc annotation still has a triggering construct.
func allocationSites(p *Pass, fd *ast.FuncDecl) []token.Pos {
	var sites []token.Pos
	prealloc := preallocLocals(p, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			sites = append(sites, n.Pos())
			return false
		case *ast.GoStmt:
			sites = append(sites, n.Pos())
		case *ast.UnaryExpr:
			if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && n.Op == token.AND {
				sites = append(sites, lit.Pos())
				return false
			}
		case *ast.CompositeLit:
			if tv, ok := p.Info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					sites = append(sites, n.Pos())
				}
			}
		case *ast.CallExpr:
			if isPanicCall(p.Info, n) {
				return false
			}
			if fn := calleeFunc(p.Info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				sites = append(sites, n.Pos())
				return true
			}
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			switch id.Name {
			case "make", "new":
				sites = append(sites, n.Pos())
			case "append":
				if len(n.Args) == 0 || !isPreallocTarget(p, prealloc, n.Args[0]) {
					sites = append(sites, n.Pos())
				}
			}
		}
		return true
	})
	return sites
}

// isPanicCall reports whether call invokes the builtin panic. Allocation
// sources inside a panic's argument (typically fmt.Sprintf formatting
// the message) are exempt from the hot-path rules: that code runs once,
// while the program is dying, and never in steady state.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// preallocLocals is checkHotFunc's first pass, factored out: locals
// assigned from slice expressions, struct fields, or indexed elements of
// one reuse preallocated storage.
func preallocLocals(p *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	prealloc := map[types.Object]bool{}
	record := func(lhs, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		switch r := ast.Unparen(rhs).(type) {
		case *ast.SliceExpr, *ast.SelectorExpr, *ast.IndexExpr:
			prealloc[obj] = true
		case *ast.Ident:
			if other := p.Info.Uses[r]; other != nil && prealloc[other] {
				prealloc[obj] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for i := range as.Lhs {
				record(as.Lhs[i], as.Rhs[i])
			}
		}
		return true
	})
	return prealloc
}
