// Package engine is the unified simulation kernel every scheduler loop in
// this repository runs on. The paper's evaluation rests on driving many
// policies — PD², PD, PF, EPDF, ERfair, EDF, RM, weighted round-robin,
// supertasking, fault scenarios — over identical timelines; before this
// package existed the repo had grown eight independent simulation loops,
// each re-implementing release/pick/dispatch/accounting with its own (or
// missing) observability wiring and duplicated *Observed entry points.
//
// The engine factors the loop out once. A policy implements the phase
// interface below; the engine owns the clock, the step loop, and the
// observability attachment point (one nil-guarded *obs.Recorder and
// *obs.SchedulerMetrics pair shared by every simulator). Policies that
// need dynamic churn, end-of-run accounting, or quantum-boundary
// awareness implement the optional hook interfaces; the engine resolves
// them once at construction so the hot loop performs no per-step type
// assertions.
//
// Two time models coexist behind the same interface:
//
//   - slot-driven policies (core, sim global, wrr, supertask) return
//     t+1 from Next and do all their work once per slot;
//   - event-driven policies (edf, rm, sim varquanta) return the time of
//     their next release/completion event, so the engine skips idle
//     spans in O(1). Next may return t itself to request an immediate
//     re-invocation at the same instant (the EDF constant-bandwidth
//     server needs this when a zero-budget head job is dispatched); the
//     engine bounds such zero-advance streaks to catch livelocked
//     policies deterministically.
//
// Allocation discipline: the engine allocates nothing after New — Step is
// annotated //pfair:hotpath and holds only field reads, interface calls,
// and integer arithmetic. Scratch (selection buffers, assignment arrays,
// double buffers) lives in each policy and is preallocated at policy
// construction. Scratch is deliberately per-engine, never package-global:
// the parallel experiment harness (internal/parallel) runs one engine per
// goroutine, so shared scratch would race, and interface-typed shared
// scratch would box on every access. One engine = one policy = one
// arena.
package engine

import (
	"fmt"
	"time"

	"pfair/internal/admission"
	"pfair/internal/obs"
)

// Policy is the pluggable per-step scheduling policy. The engine invokes
// the four phases in order at each instant t it visits:
//
//	Release(t)   bring state current to t: apply execution effects since
//	             the previous invocation, retire completed work, ingest
//	             arrivals due at t, and record deadlines that passed;
//	Pick(t)      select the work to run at t into policy scratch;
//	Dispatch(t)  commit the selection to processors and emit its effects;
//	Account(t)   end-of-step accounting: counters, gauges, callbacks.
//
// A phase with nothing to do for a given policy is an empty method (an
// event-driven policy whose ready queue is already priority-ordered has
// no separate Pick, for example). After Account the engine advances its
// clock to Next(t).
type Policy interface {
	Release(t int64)
	Pick(t int64)
	Dispatch(t int64)
	Account(t int64)
	// Next returns the next instant the engine must invoke the policy:
	// t+1 for slot-driven policies, the next event time for event-driven
	// ones. Returning t requests a zero-advance re-invocation at the
	// same instant; returning less than t is a policy bug and panics.
	Next(t int64) int64
}

// Leaver is an optional hook for policies with dynamic departures: the
// engine invokes ApplyLeaves(t) before Release so tasks whose departure
// time has arrived are gone before new work is ingested.
type Leaver interface {
	ApplyLeaves(t int64)
}

// Joiner is an optional hook for policies with pending admissions (the
// rejoin half of core's reweighting): the engine invokes ApplyJoins(t)
// after ApplyLeaves and before Release.
type Joiner interface {
	ApplyJoins(t int64)
}

// Finisher is an optional hook for end-of-run accounting (recording
// still-pending work whose deadline fell inside the horizon). It is
// invoked by Engine.Finish, never by Run — simulations that extend a run
// with repeated Run calls must be able to defer it to the true end.
type Finisher interface {
	Finish(horizon int64)
}

// Dynamic is the optional capability of policies that accept mid-run
// task churn through the admission plane (internal/admission): Submit
// validates the request, applies the policy's feasibility test, and —
// on acceptance — arranges for the operation to take effect at a slot
// boundary, returning the Decision recording when. Like the other
// hooks it is resolved once at bind time; drivers reach it through
// Engine.Submit (or Engine.Dynamic) without knowing the policy.
//
// Submit must be called between engine steps (the engine is
// single-threaded; every instant between steps is a quantum boundary),
// never from inside a phase method.
type Dynamic interface {
	Submit(req admission.Request) (admission.Decision, error)
}

// BoundaryHook is an optional hook invoked before Release whenever the
// engine's clock lands on a quantum boundary (a multiple of the size
// configured with WithQuantum). The variable-quantum simulator uses it to
// gate aligned-mode dispatch to the global boundary lattice.
type BoundaryHook interface {
	QuantumBoundary(t int64)
}

// maxZeroAdvance bounds consecutive zero-advance steps (Next(t) == t).
// Legitimate same-instant re-invocations settle within a handful of
// steps (one per processor, at worst); a policy that exceeds this many
// is livelocked and failing fast beats spinning forever.
const maxZeroAdvance = 1 << 20

// LivelockError is the typed error the engine surfaces when a policy
// exceeds maxZeroAdvance consecutive zero-advance steps. Before this
// existed the backstop panicked inside Step, which drivers that wrap Run
// (faults, experiments) swallowed or crashed on inconsistently; a typed
// error lets every Run path fail loudly and lets callers distinguish a
// livelocked policy from any other failure with errors.As.
type LivelockError struct {
	// At is the engine instant the policy refused to advance past.
	At int64
	// Steps is the total number of policy invocations when the bound
	// tripped, including the zero-advance streak.
	Steps int64
}

func (e *LivelockError) Error() string {
	return fmt.Sprintf("engine: policy livelocked at t=%d (no time progress after %d zero-advance steps, %d total)", e.At, int64(maxZeroAdvance), e.Steps)
}

// Engine drives one policy over simulated time. It owns the clock, the
// observability attachment, and nothing else — all scheduling state is
// the policy's.
type Engine struct {
	pol Policy
	// Optional hooks, resolved once at New/Reset so Step performs no
	// type assertions.
	leaver   Leaver
	joiner   Joiner
	finisher Finisher
	boundary BoundaryHook
	dyn      Dynamic

	// rec and met are the shared observability attachment point. They are
	// concrete pointers, nil when unobserved; policies cache them at bind
	// time and nil-guard every emission (see internal/obs and the hotpath
	// analyzer), so an unobserved run costs one predictable branch per
	// emission site.
	rec *obs.Recorder
	met *obs.SchedulerMetrics

	// prof is the optional phase profiler (WithProfiler): every
	// profEvery-th step runs the profiled twin of the phase sequence,
	// bracketing each phase with a monotonic clock read. nil when
	// detached; profEvery caches prof.Every() so the steady-state cost of
	// an attached profiler is one nil check, one modulo, and one branch
	// per step.
	prof      *obs.PhaseProfiler
	profEvery int64

	quantum int64 // boundary lattice for BoundaryHook; 0 = no lattice
	now     int64
	steps   int64
	zero    int64 // consecutive zero-advance steps, for the livelock bound
	err     error // sticky failure (livelock); Step is a no-op once set
}

// Option configures an Engine at construction.
type Option func(*Engine)

// WithRecorder attaches a trace recorder (nil = unobserved). This is the
// single attachment point that replaced the per-simulator *Observed entry
// points: every policy reads the recorder from its engine at bind time.
func WithRecorder(rec *obs.Recorder) Option {
	return func(e *Engine) { e.rec = rec }
}

// WithMetrics attaches a metrics block (nil = unobserved).
func WithMetrics(met *obs.SchedulerMetrics) Option {
	return func(e *Engine) { e.met = met }
}

// WithProfiler attaches a phase profiler (nil = detached): one step in
// every p.Every() runs with each phase bracketed by monotonic clock
// reads, recording the five durations into p's preallocated histograms.
// Profiling observes wall-clock cost only — it never changes a
// scheduling decision (the golden equivalence suite pins byte-identical
// schedules with the profiler detached, and the phase sequence is the
// same either way) — and the sampled path allocates nothing
// (BenchmarkStepAllocsProfiled).
func WithProfiler(p *obs.PhaseProfiler) Option {
	return func(e *Engine) {
		e.prof = p
		if p != nil {
			e.profEvery = p.Every()
		}
	}
}

// WithQuantum sets the quantum-boundary lattice: a policy implementing
// BoundaryHook is notified whenever the clock lands on a multiple of q.
func WithQuantum(q int64) Option {
	return func(e *Engine) {
		if q > 0 {
			e.quantum = q
		}
	}
}

// New returns an engine bound to pol at time 0.
func New(pol Policy, opts ...Option) *Engine {
	e := &Engine{}
	for _, opt := range opts {
		opt(e)
	}
	e.bind(pol)
	return e
}

// bind installs pol and resolves its optional hooks.
func (e *Engine) bind(pol Policy) {
	if pol == nil {
		//pfair:allowpanic constructor contract: an engine without a policy has no meaning
		panic("engine: nil policy")
	}
	e.pol = pol
	e.leaver, _ = pol.(Leaver)
	e.joiner, _ = pol.(Joiner)
	e.finisher, _ = pol.(Finisher)
	e.boundary, _ = pol.(BoundaryHook)
	e.dyn, _ = pol.(Dynamic)
}

// Reset rebinds the engine to a (possibly new) policy and rewinds the
// clock to zero, keeping the observability attachment. Scenario drivers
// (internal/faults) use it to re-run variants of an experiment on one
// engine — and one trace ring — instead of rebuilding the world per run.
func (e *Engine) Reset(pol Policy) {
	e.bind(pol)
	e.now, e.steps, e.zero = 0, 0, 0
	e.err = nil
}

// Now returns the engine clock: the instant the next Step will simulate.
//
//pfair:hotpath
func (e *Engine) Now() int64 { return e.now }

// Steps returns the number of policy invocations so far.
func (e *Engine) Steps() int64 { return e.steps }

// Err returns the engine's sticky failure, or nil. It is set when the
// livelock backstop trips (a *LivelockError); once set, Step is a no-op
// and Run returns it immediately, so drivers that step the engine
// directly can poll it after their loop.
func (e *Engine) Err() error { return e.err }

// Dynamic returns the bound policy's admission-plane capability, or nil
// when the policy does not accept mid-run churn.
func (e *Engine) Dynamic() Dynamic { return e.dyn }

// Submit forwards a dynamic-task request to the bound policy's
// admission plane. Policies without the Dynamic capability reject every
// request with a diagnostic error rather than panicking, so generic
// drivers can probe.
func (e *Engine) Submit(req admission.Request) (admission.Decision, error) {
	if e.dyn == nil {
		return admission.Decision{}, fmt.Errorf("engine: policy %T does not accept dynamic task operations", e.pol)
	}
	return e.dyn.Submit(req)
}

// Recorder returns the attached trace recorder, or nil.
func (e *Engine) Recorder() *obs.Recorder { return e.rec }

// Metrics returns the attached metrics block, or nil.
func (e *Engine) Metrics() *obs.SchedulerMetrics { return e.met }

// Profiler returns the attached phase profiler, or nil.
func (e *Engine) Profiler() *obs.PhaseProfiler { return e.prof }

// Observe swaps the observability attachment (either may be nil).
// Policies that cache the pointers must re-read them afterwards; the
// simulators' own Observe/SetRecorder wrappers do exactly that.
func (e *Engine) Observe(rec *obs.Recorder, met *obs.SchedulerMetrics) {
	e.rec, e.met = rec, met
}

// Step runs one engine step: hooks, the four phases, and the clock
// advance. It is the single hot loop every simulator in the repository
// now runs on.
//
//pfair:hotpath
func (e *Engine) Step() {
	if e.err != nil {
		return
	}
	t := e.now
	if l := e.leaver; l != nil {
		l.ApplyLeaves(t)
	}
	if j := e.joiner; j != nil {
		j.ApplyJoins(t)
	}
	if b := e.boundary; b != nil && e.quantum > 0 && t%e.quantum == 0 {
		b.QuantumBoundary(t)
	}
	var next int64
	if pr := e.prof; pr != nil && e.steps%e.profEvery == 0 {
		next = e.stepProfiled(t, pr)
	} else {
		p := e.pol
		p.Release(t)
		p.Pick(t)
		p.Dispatch(t)
		p.Account(t)
		e.steps++
		next = p.Next(t)
	}
	if next < t {
		//pfair:allowpanic policy contract violation: time cannot flow backwards
		panic("engine: policy Next moved time backwards")
	}
	if next == t {
		e.zero++
		if e.zero > maxZeroAdvance {
			e.livelock(t)
			return
		}
	} else {
		e.zero = 0
	}
	e.now = next
}

// stepProfiled is the sampled twin of Step's phase sequence: identical
// invocations in identical order (including the steps increment before
// Next), with a monotonic clock read bracketing each phase and the five
// durations recorded into the profiler's preallocated histograms.
// time.Time values live on the stack and Histogram.Observe is an integer
// update, so the sampled path allocates nothing.
//
//pfair:allowtime phase profiling measures host wall-clock cost, never simulated time; scheduling decisions are unaffected
//pfair:hotpath
func (e *Engine) stepProfiled(t int64, pr *obs.PhaseProfiler) int64 {
	p := e.pol
	t0 := time.Now()
	p.Release(t)
	t1 := time.Now()
	p.Pick(t)
	t2 := time.Now()
	p.Dispatch(t)
	t3 := time.Now()
	p.Account(t)
	t4 := time.Now()
	e.steps++
	next := p.Next(t)
	t5 := time.Now()
	if pr != nil {
		pr.Release.Observe(t1.Sub(t0).Nanoseconds())
		pr.Pick.Observe(t2.Sub(t1).Nanoseconds())
		pr.Dispatch.Observe(t3.Sub(t2).Nanoseconds())
		pr.Account.Observe(t4.Sub(t3).Nanoseconds())
		pr.Next.Observe(t5.Sub(t4).Nanoseconds())
		pr.Samples.Inc()
	}
	return next
}

// livelock records the sticky livelock failure. It lives outside Step so
// that the error allocation — which happens at most once per engine
// lifetime, on the failure path — stays out of the zero-alloc hot path.
//
//pfair:allowalloc the sticky livelock error allocates at most once per engine lifetime, on the failure path
func (e *Engine) livelock(t int64) {
	e.err = &LivelockError{At: t, Steps: e.steps}
}

// Run steps the engine until the clock reaches horizon. Instants at or
// beyond the horizon are not simulated; if the policy's final Next
// overshoots, the clock is clamped to the horizon so a later Run resumes
// exactly where this one stopped. Event-driven simulators that must
// process events landing exactly on the horizon (edf, rm) do so in their
// own wrappers after Run returns.
//
// Run returns a non-nil error — a *LivelockError — when the policy
// exceeds the zero-advance bound; the error is sticky, so a subsequent
// Run returns it again without stepping. Reset clears it.
func (e *Engine) Run(horizon int64) error {
	for e.now < horizon {
		e.Step()
		if e.err != nil {
			return e.err
		}
	}
	if e.now > horizon {
		e.now = horizon
	}
	return e.err
}

// Finish invokes the policy's Finisher hook, if any. Call it once after
// the final Run of a simulation.
func (e *Engine) Finish(horizon int64) {
	if f := e.finisher; f != nil {
		f.Finish(horizon)
	}
}
