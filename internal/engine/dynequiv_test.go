package engine_test

// Dynamic-plane equivalence suite: the unified admission plane (Submit)
// and each policy's legacy entry points are two doors into the same
// transaction, so driving the identical churn script through either must
// produce identical observable output — assignment streams, counters,
// miss lists, and admission ledgers. `make dyn-equiv` runs exactly this
// suite; it is the executable form of the refactor's "thin shim" claim,
// policy by policy.

import (
	"reflect"
	"testing"

	"pfair/internal/admission"
	"pfair/internal/core"
	"pfair/internal/edf"
	"pfair/internal/rm"
	"pfair/internal/supertask"
	"pfair/internal/task"
	"pfair/internal/verify"
	"pfair/internal/wrr"
)

// TestDynEquivCore: Join/Reweight/Leave vs Submit on PD², including
// mid-run operations, must agree on the schedule, the stats, and the
// ledger (the legacy names are shims over Submit; this pins it).
func TestDynEquivCore(t *testing.T) {
	set := task.Set{task.MustNew("A", 1, 2), task.MustNew("B", 2, 3), task.MustNew("C", 1, 4)}
	joiner := task.MustNew("D", 1, 5)
	const horizon = 120

	run := func(plane bool) ([]verify.Slot, core.Stats, int, int64) {
		s := core.NewScheduler(2, core.PD2, core.Options{})
		rec := &verify.Recorder{}
		s.OnSlot(rec.Record)
		join := func(tk *task.Task) error {
			if plane {
				_, err := s.Submit(admission.Join(tk))
				return err
			}
			return s.Join(tk)
		}
		for _, tk := range set {
			if err := join(tk); err != nil {
				t.Fatalf("join %v: %v", tk, err)
			}
		}
		s.RunUntil(30)
		if err := join(joiner); err != nil {
			t.Fatalf("mid-run join: %v", err)
		}
		var err error
		if plane {
			_, err = s.Submit(admission.Reweight("C", 1, 2))
		} else {
			_, err = s.Reweight("C", 1, 2)
		}
		if err != nil {
			t.Fatalf("reweight: %v", err)
		}
		s.RunUntil(60)
		if plane {
			_, err = s.Submit(admission.Leave("B"))
		} else {
			_, err = s.Leave("B")
		}
		if err != nil {
			t.Fatalf("leave: %v", err)
		}
		s.RunUntil(horizon)
		s.FinishMisses(horizon)
		return rec.Slots, s.Stats(), len(s.AdmissionLog()), s.AdmissionRejects()
	}

	lSlots, lStats, lLedger, lRejects := run(false)
	pSlots, pStats, pLedger, pRejects := run(true)
	if !reflect.DeepEqual(lSlots, pSlots) {
		t.Errorf("core: legacy and Submit schedules diverge")
	}
	if !reflect.DeepEqual(lStats, pStats) {
		t.Errorf("core: stats diverge: legacy %+v, Submit %+v", lStats, pStats)
	}
	if lLedger != pLedger || lRejects != pRejects {
		t.Errorf("core: ledger diverges: legacy %d/%d, Submit %d/%d", lLedger, lRejects, pLedger, pRejects)
	}
	if lStats.Misses != nil {
		t.Errorf("core: %d misses under a feasible script", len(lStats.Misses))
	}
}

// TestDynEquivEDF: Add vs Submit-join on the EDF simulator — at
// construction time and mid-run — must produce identical runs; Submit
// only layers the Σ bandwidth ≤ 1 gate on top.
func TestDynEquivEDF(t *testing.T) {
	set := task.Set{task.MustNew("X", 1, 4), task.MustNew("Y", 2, 5)}
	joiner := task.MustNew("Z", 1, 6)
	const horizon = 240

	run := func(plane bool) edf.Stats {
		sim := edf.NewSimulator()
		join := func(tk *task.Task) error {
			if plane {
				_, err := sim.Submit(admission.Join(tk))
				return err
			}
			return sim.Add(edf.Config{Task: tk})
		}
		for _, tk := range set {
			if err := join(tk); err != nil {
				t.Fatalf("join %v: %v", tk, err)
			}
		}
		if err := sim.Engine().Run(40); err != nil {
			t.Fatalf("run: %v", err)
		}
		if err := join(joiner); err != nil {
			t.Fatalf("mid-run join: %v", err)
		}
		if err := sim.Run(horizon); err != nil {
			t.Fatalf("run: %v", err)
		}
		return sim.Stats()
	}

	legacy, planeStats := run(false), run(true)
	if !reflect.DeepEqual(legacy, planeStats) {
		t.Errorf("edf: stats diverge: legacy %+v, Submit %+v", legacy, planeStats)
	}
}

// TestDynEquivRM: a constructor-time set vs the same set joined through
// Submit at time zero must run identically under the fixed-priority
// simulator.
func TestDynEquivRM(t *testing.T) {
	set := task.Set{task.MustNew("R1", 1, 4), task.MustNew("R2", 1, 5), task.MustNew("R3", 2, 9)}
	const horizon = 360

	legacy := rm.NewSimulator(set)
	if err := legacy.Run(horizon); err != nil {
		t.Fatalf("legacy run: %v", err)
	}

	plane := rm.NewSimulator(nil)
	for _, tk := range set {
		if _, err := plane.Submit(admission.Join(tk)); err != nil {
			t.Fatalf("join %v: %v", tk, err)
		}
	}
	if err := plane.Run(horizon); err != nil {
		t.Fatalf("plane run: %v", err)
	}

	if !reflect.DeepEqual(legacy.Stats(), plane.Stats()) {
		t.Errorf("rm: stats diverge: legacy %+v, Submit %+v", legacy.Stats(), plane.Stats())
	}
}

// TestDynEquivWRR: a constructor-time queue vs the same tasks joined
// through Submit before the first slot must produce the identical
// allocation stream (ids, lattice anchors, and queue order all match).
func TestDynEquivWRR(t *testing.T) {
	set := task.Set{task.MustNew("W1", 1, 3), task.MustNew("W2", 2, 5), task.MustNew("W3", 1, 2)}
	const horizon = 90

	run := func(plane bool) ([][]string, wrr.Stats) {
		var s *wrr.Scheduler
		var err error
		if plane {
			s, err = wrr.NewScheduler(2, nil)
		} else {
			s, err = wrr.NewScheduler(2, set)
		}
		if err != nil {
			t.Fatalf("new: %v", err)
		}
		var slots [][]string
		s.OnSlot(func(t int64, allocated []string) {
			slots = append(slots, append([]string(nil), allocated...))
		})
		if plane {
			for _, tk := range set {
				if _, err := s.Submit(admission.Join(tk)); err != nil {
					t.Fatalf("join %v: %v", tk, err)
				}
			}
		}
		if err := s.RunUntil(horizon); err != nil {
			t.Fatalf("run: %v", err)
		}
		return slots, s.Stats()
	}

	lSlots, lStats := run(false)
	pSlots, pStats := run(true)
	if !reflect.DeepEqual(lSlots, pSlots) {
		t.Errorf("wrr: legacy and Submit allocation streams diverge")
	}
	if !reflect.DeepEqual(lStats, pStats) {
		t.Errorf("wrr: stats diverge: legacy %+v, Submit %+v", lStats, pStats)
	}
}

// TestDynEquivSupertask: AddTask/AddSupertask vs Submit with a plain
// join and a JoinRequest bundle — both mid-run — must produce identical
// Results (global stats, served/wasted quanta, component misses).
func TestDynEquivSupertask(t *testing.T) {
	ordinary := task.MustNew("A", 1, 3)
	st := &supertask.Supertask{Name: "S", Components: task.Set{
		task.MustNew("c1", 1, 4), task.MustNew("c2", 1, 6),
	}}
	const horizon = 120

	run := func(plane bool) supertask.Result {
		sys := supertask.NewSystem(2, core.PD2)
		if plane {
			if _, err := sys.Submit(admission.Join(ordinary)); err != nil {
				t.Fatalf("join: %v", err)
			}
		} else if err := sys.AddTask(ordinary); err != nil {
			t.Fatalf("add task: %v", err)
		}
		sys.Run(30)
		if plane {
			req, err := supertask.JoinRequest(st, true)
			if err != nil {
				t.Fatalf("join request: %v", err)
			}
			if _, err := sys.Submit(req); err != nil {
				t.Fatalf("submit supertask: %v", err)
			}
		} else if err := sys.AddSupertask(st, true); err != nil {
			t.Fatalf("add supertask: %v", err)
		}
		return sys.Run(horizon)
	}

	legacy, plane := run(false), run(true)
	if !reflect.DeepEqual(legacy, plane) {
		t.Errorf("supertask: results diverge: legacy %+v, Submit %+v", legacy, plane)
	}
}
