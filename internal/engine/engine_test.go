package engine

import (
	"errors"
	"testing"

	"pfair/internal/obs"
)

// fakePolicy records the order of phase/hook invocations and drives the
// clock via a scripted Next function.
type fakePolicy struct {
	log  []string
	next func(t int64) int64
}

func (p *fakePolicy) mark(s string, t int64) {
	p.log = append(p.log, s+"@"+itoa(t))
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func (p *fakePolicy) Release(t int64)  { p.mark("release", t) }
func (p *fakePolicy) Pick(t int64)     { p.mark("pick", t) }
func (p *fakePolicy) Dispatch(t int64) { p.mark("dispatch", t) }
func (p *fakePolicy) Account(t int64)  { p.mark("account", t) }
func (p *fakePolicy) Next(t int64) int64 {
	if p.next != nil {
		return p.next(t)
	}
	return t + 1
}

// fakeFull additionally implements every optional hook.
type fakeFull struct {
	fakePolicy
}

func (p *fakeFull) ApplyLeaves(t int64)     { p.mark("leave", t) }
func (p *fakeFull) ApplyJoins(t int64)      { p.mark("join", t) }
func (p *fakeFull) Finish(h int64)          { p.mark("finish", h) }
func (p *fakeFull) QuantumBoundary(t int64) { p.mark("boundary", t) }

func wantLog(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("log length = %d, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("log[%d] = %q, want %q\ngot:  %v\nwant: %v", i, got[i], want[i], got, want)
		}
	}
}

func TestStepPhaseOrder(t *testing.T) {
	p := &fakePolicy{}
	e := New(p)
	e.Step()
	wantLog(t, p.log, []string{"release@0", "pick@0", "dispatch@0", "account@0"})
	if e.Now() != 1 {
		t.Fatalf("Now() = %d, want 1", e.Now())
	}
	if e.Steps() != 1 {
		t.Fatalf("Steps() = %d, want 1", e.Steps())
	}
}

func TestHookOrderAndBoundary(t *testing.T) {
	p := &fakeFull{}
	e := New(p, WithQuantum(2))
	e.Run(3)
	wantLog(t, p.log, []string{
		"leave@0", "join@0", "boundary@0", "release@0", "pick@0", "dispatch@0", "account@0",
		"leave@1", "join@1", "release@1", "pick@1", "dispatch@1", "account@1",
		"leave@2", "join@2", "boundary@2", "release@2", "pick@2", "dispatch@2", "account@2",
	})
	e.Finish(3)
	if last := p.log[len(p.log)-1]; last != "finish@3" {
		t.Fatalf("last log entry = %q, want finish@3", last)
	}
}

func TestHooksNotResolvedForPlainPolicy(t *testing.T) {
	e := New(&fakePolicy{})
	if e.leaver != nil || e.joiner != nil || e.finisher != nil || e.boundary != nil {
		t.Fatal("plain policy must resolve no optional hooks")
	}
	e.Finish(10) // no Finisher: must be a no-op
}

func TestRunClampsOvershoot(t *testing.T) {
	p := &fakePolicy{next: func(t int64) int64 { return t + 7 }}
	e := New(p)
	e.Run(10)
	if e.Now() != 10 {
		t.Fatalf("Now() after overshooting Run = %d, want clamp to 10", e.Now())
	}
	if e.Steps() != 2 { // steps at t=0 and t=7
		t.Fatalf("Steps() = %d, want 2", e.Steps())
	}
	// Resuming must continue from the horizon, not the overshot instant.
	e.Run(11)
	if e.Steps() != 3 || e.Now() != 11 {
		t.Fatalf("after resume: Steps=%d Now=%d, want 3 and 11", e.Steps(), e.Now())
	}
}

func TestZeroAdvanceAllowedThenProgress(t *testing.T) {
	calls := 0
	p := &fakePolicy{next: func(t int64) int64 {
		calls++
		if calls%3 != 0 { // two same-instant re-invocations per instant
			return t
		}
		return t + 1
	}}
	e := New(p)
	e.Run(2)
	if e.Steps() != 6 {
		t.Fatalf("Steps() = %d, want 6 (3 invocations per instant × 2 instants)", e.Steps())
	}
	if e.zero != 0 {
		t.Fatalf("zero-advance streak = %d after progress, want 0", e.zero)
	}
}

func TestTimeReversalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Next moving time backwards")
		}
	}()
	p := &fakePolicy{next: func(t int64) int64 { return t - 1 }}
	New(p).Step()
}

func TestNilPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil policy")
		}
	}()
	New(nil)
}

// TestLivelockBackstop pins the loud-failure contract: a policy whose
// Next never advances must make Run return a typed *LivelockError — not
// spin forever, not panic, and above all not return as if the horizon had
// been reached cleanly.
func TestLivelockBackstop(t *testing.T) {
	p := &fakePolicy{next: func(t int64) int64 { return t }}
	e := New(p)
	err := e.Run(1)
	if err == nil {
		t.Fatal("expected livelock error on unbounded zero-advance streak, got clean return")
	}
	var ll *LivelockError
	if !errors.As(err, &ll) {
		t.Fatalf("Run error = %T (%v), want *LivelockError", err, err)
	}
	if ll.At != 0 {
		t.Fatalf("LivelockError.At = %d, want 0 (the instant the policy refused to leave)", ll.At)
	}
	if ll.Steps != maxZeroAdvance+1 {
		t.Fatalf("LivelockError.Steps = %d, want %d", ll.Steps, int64(maxZeroAdvance)+1)
	}
	if e.Now() != 0 {
		t.Fatalf("Now() = %d after livelock at t=0, want 0", e.Now())
	}

	// The error is sticky: Err() reports it, further Steps are no-ops,
	// and a repeated Run returns it again without re-spinning.
	if e.Err() != err {
		t.Fatalf("Err() = %v, want the Run error", e.Err())
	}
	steps := e.Steps()
	e.Step()
	if e.Steps() != steps {
		t.Fatal("Step after livelock must be a no-op")
	}
	if again := e.Run(1); again != err {
		t.Fatalf("second Run = %v, want the same sticky error", again)
	}

	// Reset clears the failure along with the clock.
	e.Reset(&fakePolicy{})
	if e.Err() != nil {
		t.Fatalf("Err() after Reset = %v, want nil", e.Err())
	}
	if err := e.Run(3); err != nil {
		t.Fatalf("Run after Reset = %v, want clean run", err)
	}
}

func TestResetKeepsAttachments(t *testing.T) {
	rec := obs.NewRecorder(64)
	met := obs.NewSchedulerMetrics(obs.NewRegistry())
	p1 := &fakePolicy{}
	e := New(p1, WithRecorder(rec), WithMetrics(met))
	e.Run(5)
	if e.Now() != 5 || e.Steps() != 5 {
		t.Fatalf("pre-reset: Now=%d Steps=%d", e.Now(), e.Steps())
	}
	p2 := &fakeFull{}
	e.Reset(p2)
	if e.Now() != 0 || e.Steps() != 0 {
		t.Fatalf("post-reset: Now=%d Steps=%d, want 0 and 0", e.Now(), e.Steps())
	}
	if e.Recorder() != rec || e.Metrics() != met {
		t.Fatal("Reset must keep observability attachments")
	}
	if e.leaver == nil || e.boundary == nil {
		t.Fatal("Reset must re-resolve optional hooks for the new policy")
	}
	e.Step()
	if p2.log[0] != "leave@0" {
		t.Fatalf("post-reset first hook = %q, want leave@0", p2.log[0])
	}
}

func TestObserveSwapsAttachment(t *testing.T) {
	e := New(&fakePolicy{})
	if e.Recorder() != nil || e.Metrics() != nil {
		t.Fatal("unobserved engine must report nil attachments")
	}
	rec := obs.NewRecorder(64)
	e.Observe(rec, nil)
	if e.Recorder() != rec {
		t.Fatal("Observe must install the recorder")
	}
	e.Observe(nil, nil)
	if e.Recorder() != nil {
		t.Fatal("Observe(nil, nil) must detach")
	}
}

func TestWithQuantumIgnoresNonPositive(t *testing.T) {
	p := &fakeFull{}
	e := New(p, WithQuantum(0))
	e.Step()
	for _, entry := range p.log {
		if entry == "boundary@0" {
			t.Fatal("quantum 0 must disable the boundary lattice")
		}
	}
}

// BenchmarkEngineOverhead measures the pure kernel cost per step — hook
// dispatch, phase calls, clock advance — over a no-op policy. Guarded at
// 0 allocs/op like every simulator hot path.
func BenchmarkEngineOverhead(b *testing.B) {
	e := New(&nopPolicy{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

type nopPolicy struct{}

func (nopPolicy) Release(t int64)    {}
func (nopPolicy) Pick(t int64)       {}
func (nopPolicy) Dispatch(t int64)   {}
func (nopPolicy) Account(t int64)    {}
func (nopPolicy) Next(t int64) int64 { return t + 1 }

func TestStepZeroAllocs(t *testing.T) {
	e := New(&nopPolicy{})
	if avg := testing.AllocsPerRun(200, func() { e.Step() }); avg != 0 {
		t.Fatalf("engine Step allocates %.1f allocs/op, want 0", avg)
	}
}

// TestProfilerSamplingCadence: with every=3 the profiled twin runs on
// steps 0, 3, 6, 9 — ⌈N/every⌉ samples over N steps — and each sampled
// step contributes exactly one observation to every phase histogram.
func TestProfilerSamplingCadence(t *testing.T) {
	prof := obs.NewPhaseProfiler(nil, 3)
	p := &fakePolicy{}
	e := New(p, WithProfiler(prof))
	if e.Profiler() != prof {
		t.Fatal("Profiler() does not return the attached profiler")
	}
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if got := prof.Samples.Value(); got != 4 {
		t.Errorf("Samples = %d over 10 steps at every=3, want 4", got)
	}
	for _, h := range []*obs.Histogram{prof.Release, prof.Pick, prof.Dispatch, prof.Account, prof.Next} {
		if h.Count() != prof.Samples.Value() {
			t.Errorf("phase histogram has %d observations, want %d (one per sample)", h.Count(), prof.Samples.Value())
		}
	}
}

// TestProfiledStepPhaseOrder: the profiled twin must invoke the phases in
// the same order, with the same arguments, and advance steps/now exactly
// like the unprofiled path — the property the golden equivalence suite
// pins end to end.
func TestProfiledStepPhaseOrder(t *testing.T) {
	p := &fakePolicy{}
	e := New(p, WithProfiler(obs.NewPhaseProfiler(nil, 1)))
	e.Step()
	wantLog(t, p.log, []string{"release@0", "pick@0", "dispatch@0", "account@0"})
	if e.Now() != 1 || e.Steps() != 1 {
		t.Fatalf("Now()=%d Steps()=%d after one profiled step, want 1, 1", e.Now(), e.Steps())
	}
}

func TestWithProfilerNilDetaches(t *testing.T) {
	e := New(&fakePolicy{}, WithProfiler(obs.NewPhaseProfiler(nil, 1)))
	e2 := New(&fakePolicy{}, WithProfiler(nil))
	if e.Profiler() == nil {
		t.Error("profiler not attached")
	}
	if e2.Profiler() != nil {
		t.Error("WithProfiler(nil) must leave the engine detached")
	}
}

// TestStepProfiledZeroAllocsEngine pins the sampled path itself (every=1:
// every step profiled) at zero allocations.
func TestStepProfiledZeroAllocsEngine(t *testing.T) {
	prof := obs.NewPhaseProfiler(nil, 1)
	e := New(nopPolicy{}, WithProfiler(prof))
	e.Step() // warm up
	allocs := testing.AllocsPerRun(1000, func() { e.Step() })
	if allocs != 0 {
		t.Fatalf("profiled Step allocates %v/op, want 0", allocs)
	}
	if prof.Samples.Value() < 1000 {
		t.Fatalf("profiler did not sample: %d", prof.Samples.Value())
	}
}
