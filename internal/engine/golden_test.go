package engine_test

// Golden equivalence suite for the engine migration: every simulation
// loop in the repository is run over a pinned deterministic scenario and
// its full observable output — schedule trace, counters, miss lists, and
// (where wired) the obs event stream — is serialized to a text file under
// testdata/. The files were generated against the pre-refactor loops
// (`go test ./internal/engine -run TestGoldenEquivalence -update` at the
// commit that introduced them) and re-verified byte-for-byte after each
// loop was migrated onto internal/engine, so the migration provably
// changed no schedule, counter, or event sequence.
//
// Regenerate with -update only when an intentional behaviour change is
// being made, and say so in the commit message.

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"pfair/internal/core"
	"pfair/internal/edf"
	"pfair/internal/faults"
	"pfair/internal/obs"
	"pfair/internal/rational"
	"pfair/internal/rm"
	"pfair/internal/sim"
	"pfair/internal/supertask"
	"pfair/internal/task"
	"pfair/internal/wrr"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current implementation")

// dump accumulates one scenario's serialized output.
type dump struct{ sb strings.Builder }

func (d *dump) f(format string, args ...any) { fmt.Fprintf(&d.sb, format+"\n", args...) }

func (d *dump) events(rec *obs.Recorder) {
	d.f("events total=%d dropped=%d", rec.Total(), rec.Dropped())
	for _, e := range rec.Events() {
		d.f("  t=%d kind=%s task=%d proc=%d a=%d b=%d", e.Slot, e.Kind, e.Task, e.Proc, e.A, e.B)
	}
}

func (d *dump) coreStats(st core.Stats) {
	d.f("slots=%d allocations=%d ctxsw=%d migrations=%d preemptions=%d misses=%d",
		st.Slots, st.Allocations, st.ContextSwitches, st.Migrations, st.Preemptions, len(st.Misses))
	for _, m := range st.Misses {
		d.f("  miss task=%s subtask=%d deadline=%d scheduled=%d", m.Task, m.Subtask, m.Deadline, m.ScheduledAt)
	}
}

// slotLogger captures the OnSlot callback stream.
type slotLogger struct{ d *dump }

func (l *slotLogger) log(t int64, assigned []core.Assignment) {
	var sb strings.Builder
	for _, a := range assigned {
		fmt.Fprintf(&sb, " %d:%s/%d", a.Proc, a.Task, a.Subtask)
	}
	l.d.f("slot %d%s", t, sb.String())
}

func goldenSet() task.Set {
	return task.Set{
		task.MustNew("A", 1, 3),
		task.MustNew("B", 2, 5),
		task.MustNew("C", 3, 8),
		task.MustNew("D", 1, 2),
	}
}

func dumpCore(alg core.Algorithm, opts core.Options, horizon int64) string {
	var d dump
	s := core.NewScheduler(2, alg, opts)
	rec := obs.NewRecorder(1 << 15)
	s.Observe(rec, nil)
	lg := &slotLogger{&d}
	s.OnSlot(lg.log)
	for _, t := range goldenSet() {
		if err := s.Join(t); err != nil {
			d.f("join %v: %v", t, err)
		}
	}
	s.RunUntil(horizon)
	s.FinishMisses(horizon)
	d.coreStats(s.Stats())
	for _, name := range s.Tasks() {
		lag, err := s.Lag(name)
		d.f("lag %s = %v err=%v", name, lag, err)
	}
	d.events(rec)
	return d.sb.String()
}

// dumpCoreDynamic exercises join/leave/reweight mid-run, the paths the
// engine's Leaver/Joiner hooks carry.
func dumpCoreDynamic() string {
	var d dump
	s := core.NewScheduler(2, core.PD2, core.Options{})
	lg := &slotLogger{&d}
	s.OnSlot(lg.log)
	join := func(name string, e, p int64) {
		if err := s.Join(task.MustNew(name, e, p)); err != nil {
			d.f("join %s: %v", name, err)
		}
	}
	join("A", 1, 3)
	join("H", 7, 9) // heavy
	s.RunUntil(10)
	join("B", 1, 2)
	at, err := s.Leave("A")
	d.f("leave A at=%d err=%v", at, err)
	s.RunUntil(30)
	at, err = s.Reweight("B", 1, 4)
	d.f("reweight B at=%d err=%v", at, err)
	s.RunUntil(60)
	join("C", 2, 5)
	s.RunUntil(90)
	s.FinishMisses(90)
	d.coreStats(s.Stats())
	d.f("tasks=%s", strings.Join(s.Tasks(), ","))
	return d.sb.String()
}

func dumpEDF() string {
	var d dump
	s := edf.NewSimulator()
	rec := obs.NewRecorder(1 << 15)
	s.SetRecorder(rec)
	cfgs := []edf.Config{
		{Task: task.MustNew("A", 2, 10)},
		{Task: task.MustNew("B", 3, 15), ActualCost: func(job int64) int64 {
			if job%2 == 0 {
				return 9 // periodic overrun, isolated by the CBS
			}
			return 3
		}, Server: &edf.CBS{Budget: 3, Period: 15}},
		{Task: task.MustNew("C", 1, 5)},
	}
	for _, c := range cfgs {
		if err := s.Add(c); err != nil {
			d.f("add %v: %v", c.Task, err)
		}
	}
	s.Run(300)
	st := s.Stats()
	d.f("jobs=%d completed=%d preemptions=%d ctxsw=%d invocations=%d postponements=%d misses=%d",
		st.Jobs, st.Completed, st.Preemptions, st.ContextSwitches, st.Invocations, st.Postponements, len(st.Misses))
	for _, m := range st.Misses {
		d.f("  miss task=%s job=%d deadline=%d finished=%d", m.Task, m.Job, m.Deadline, m.FinishedAt)
	}
	d.events(rec)
	return d.sb.String()
}

func dumpRM(set task.Set, horizon int64) string {
	var d dump
	resp, ok := rm.ResponseTimes(set)
	d.f("responses=%v exact=%v ll=%v hyperbolic=%v", resp, ok, rm.SchedulableLL(set), rm.SchedulableHyperbolic(set))
	s := rm.NewSimulator(set)
	s.Run(horizon)
	st := s.Stats()
	d.f("jobs=%d completed=%d preemptions=%d ctxsw=%d misses=%d",
		st.Jobs, st.Completed, st.Preemptions, st.ContextSwitches, len(st.Misses))
	for _, m := range st.Misses {
		d.f("  miss task=%s job=%d deadline=%d finished=%d", m.Task, m.Job, m.Deadline, m.FinishedAt)
	}
	return d.sb.String()
}

func dumpGlobal(pol sim.Policy) string {
	var d dump
	set := sim.DhallSet(2, 100)
	rec := obs.NewRecorder(1 << 15)
	st := runGlobalObserved(set, 2, pol, 1500, rec)
	d.f("jobs=%d completed=%d misses=%d maxlateness=%d", st.Jobs, st.Completed, len(st.Misses), st.MaxLateness(1500))
	for _, m := range st.Misses {
		d.f("  miss task=%s job=%d deadline=%d", m.Task, m.Job, m.Deadline)
	}
	d.events(rec)
	return d.sb.String()
}

// vqWorkload regenerates the pinned variable-quantum counterexample of
// internal/sim's TestVariableQuantaMisses (same seeds, same shape).
func vqWorkload() ([]sim.VQTask, int, int64, int64) {
	const q = 10
	r := rand.New(rand.NewSource(767))
	m := 2 + r.Intn(3)
	var set task.Set
	budget := rational.NewAcc()
	for i := 0; i < 14; i++ {
		p := int64(2 + r.Intn(7))
		e := int64(1 + r.Intn(int(p)))
		w := rational.New(e, p)
		if budget.Clone().Add(w).CmpInt(int64(m)) > 0 {
			continue
		}
		budget.Add(w)
		set = append(set, task.MustNew(fmt.Sprintf("T%d", len(set)), e, p))
	}
	seeds := make([]int64, len(set))
	for i := range seeds {
		seeds[i] = r.Int63()
	}
	vts := make([]sim.VQTask, len(set))
	for i, tk := range set {
		tk := tk
		js := seeds[i]
		vts[i] = sim.VQTask{Task: tk, ActualTicks: func(job int64) int64 {
			rr := rand.New(rand.NewSource(js + job*7919))
			if rr.Intn(3) == 0 {
				a := tk.Cost*q - 1 - rr.Int63n(tk.Cost*q/2+1)
				if a < 1 {
					a = 1
				}
				return a
			}
			return tk.Cost * q
		}}
	}
	horizon := set.Hyperperiod() * q * 4
	return vts, m, int64(q), horizon
}

func dumpQuanta(mode sim.QuantumMode) string {
	var d dump
	vts, m, q, horizon := vqWorkload()
	rec := obs.NewRecorder(1 << 15)
	res := runQuantaObserved(vts, m, q, horizon, mode, rec)
	d.f("completed=%d misses=%d", res.Completed, len(res.Misses))
	for _, miss := range res.Misses {
		d.f("  miss task=%s job=%d deadline=%d", miss.Task, miss.Job, miss.Deadline)
	}
	d.events(rec)
	return d.sb.String()
}

func dumpWRR() string {
	var d dump
	set := task.Set{task.MustNew("short", 1, 4), task.MustNew("long", 12, 16)}
	s, err := wrr.NewScheduler(1, set)
	if err != nil {
		d.f("new: %v", err)
		return d.sb.String()
	}
	s.OnSlot(func(t int64, allocated []string) {
		d.f("slot %d %s", t, strings.Join(allocated, ","))
	})
	s.RunUntil(320)
	st := s.Stats()
	d.f("slots=%d allocations=%d ctxsw=%d misses=%d", st.Slots, st.Allocations, st.ContextSwitches, len(st.Misses))
	for _, m := range st.Misses {
		d.f("  miss task=%s job=%d deadline=%d", m.Task, m.Job, m.Deadline)
	}
	return d.sb.String()
}

func dumpSupertask(reweighted bool) string {
	var d dump
	sys := supertask.NewSystem(2, core.PD2)
	st := &supertask.Supertask{Name: "S", Components: task.Set{
		task.MustNew("T", 1, 5), task.MustNew("U", 1, 45),
	}}
	if err := sys.AddSupertask(st, reweighted); err != nil {
		d.f("addsuper: %v", err)
	}
	for _, t := range []*task.Task{
		task.MustNew("Y", 2, 9), task.MustNew("V", 1, 2), task.MustNew("W", 1, 3),
	} {
		if err := sys.AddTask(t); err != nil {
			d.f("addtask %v: %v", t, err)
		}
	}
	res := sys.Run(450)
	d.coreStats(res.Scheduler)
	d.f("component-misses=%d", len(res.ComponentMisses))
	for _, m := range res.ComponentMisses {
		d.f("  miss super=%s comp=%s job=%d deadline=%d", m.Supertask, m.Component, m.Job, m.Deadline)
	}
	for _, kv := range sortedCounts(res.Served) {
		d.f("served %s=%d", kv.k, kv.v)
	}
	for _, kv := range sortedCounts(res.Wasted) {
		d.f("wasted %s=%d", kv.k, kv.v)
	}
	return d.sb.String()
}

type kv struct {
	k string
	v int64
}

func sortedCounts(m map[string]int64) []kv {
	out := make([]kv, 0, len(m))
	for k, v := range m {
		out = append(out, kv{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}

func dumpFaults(sc faults.Scenario, shed bool) string {
	var d dump
	out, err := runFaults(sc, shed)
	if err != nil {
		d.f("err=%v", err)
		return d.sb.String()
	}
	d.f("survivors=%d before=%d critical=%d noncritical=%d",
		out.Survivors, out.MissesBefore, out.CriticalMissesAfterSettle, out.NonCriticalMisses)
	for _, n := range out.Names() {
		ep := out.Reweighted[n]
		d.f("reweighted %s=%d/%d", n, ep[0], ep[1])
	}
	return d.sb.String()
}

func critTask(name string, e, p int64) *task.Task {
	t := task.MustNew(name, e, p)
	t.Critical = true
	return t
}

func TestGoldenEquivalence(t *testing.T) {
	overloadSc := faults.Scenario{
		M: 3, Fail: 1, FailAt: 90, Horizon: 2000, SettleSlack: 60,
		Tasks: task.Set{
			critTask("c1", 1, 3), critTask("c2", 1, 4),
			task.MustNew("n1", 2, 3), task.MustNew("n2", 1, 2), task.MustNew("n3", 1, 3),
		},
	}
	transparentSc := faults.Scenario{
		M: 4, Fail: 2, FailAt: 60, Horizon: 600, SettleSlack: 0,
		Tasks: task.Set{
			critTask("c1", 2, 3), task.MustNew("n1", 2, 3), task.MustNew("n2", 1, 3), task.MustNew("n3", 1, 3),
		},
	}
	cases := []struct {
		name string
		run  func() string
	}{
		{"core-pd2", func() string { return dumpCore(core.PD2, core.Options{}, 120) }},
		{"core-pd", func() string { return dumpCore(core.PD, core.Options{}, 120) }},
		{"core-pf", func() string { return dumpCore(core.PF, core.Options{}, 120) }},
		{"core-epdf", func() string { return dumpCore(core.EPDF, core.Options{}, 120) }},
		{"core-erfair", func() string { return dumpCore(core.PD2, core.Options{EarlyRelease: true}, 120) }},
		{"core-noaffinity", func() string { return dumpCore(core.PD2, core.Options{NoAffinity: true}, 120) }},
		{"core-dynamic", dumpCoreDynamic},
		{"edf-cbs", dumpEDF},
		{"rm-feasible", func() string {
			return dumpRM(task.Set{task.MustNew("A", 1, 4), task.MustNew("B", 1, 5), task.MustNew("C", 2, 10)}, 200)
		}},
		{"rm-overload", func() string {
			return dumpRM(task.Set{task.MustNew("A", 2, 4), task.MustNew("B", 2, 5), task.MustNew("C", 2, 10)}, 200)
		}},
		{"sim-global-edf", func() string { return dumpGlobal(sim.GlobalEDF) }},
		{"sim-global-rm", func() string { return dumpGlobal(sim.GlobalRM) }},
		{"sim-vq-aligned", func() string { return dumpQuanta(sim.Aligned) }},
		{"sim-vq-variable", func() string { return dumpQuanta(sim.Variable) }},
		{"wrr-burst", dumpWRR},
		{"supertask-fig5", func() string { return dumpSupertask(false) }},
		{"supertask-reweighted", func() string { return dumpSupertask(true) }},
		{"faults-transparent", func() string { return dumpFaults(transparentSc, true) }},
		{"faults-overload-shed", func() string { return dumpFaults(overloadSc, true) }},
		{"faults-overload-noshed", func() string { return dumpFaults(overloadSc, false) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := tc.run()
			path := filepath.Join("testdata", "golden", tc.name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("output differs from pre-refactor golden %s\n%s", path, firstDiff(got, string(want)))
			}
		})
	}
}

// firstDiff renders the first differing line for a readable failure.
func firstDiff(got, want string) string {
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	n := len(gl)
	if len(wl) < n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		if gl[i] != wl[i] {
			return fmt.Sprintf("line %d:\n  got:  %q\n  want: %q", i+1, gl[i], wl[i])
		}
	}
	return fmt.Sprintf("line counts differ: got %d, want %d", len(gl), len(wl))
}
