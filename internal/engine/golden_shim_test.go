package engine_test

// Shims between the golden dumps and the simulator entry points. This is
// the only file that changed when the loops migrated from the
// pre-refactor *Observed twins to the engine-option form; the dumped
// bytes are asserted identical across that change.

import (
	"pfair/internal/engine"
	"pfair/internal/faults"
	"pfair/internal/obs"
	"pfair/internal/sim"
	"pfair/internal/task"
)

func runGlobalObserved(set task.Set, m int, pol sim.Policy, horizon int64, rec *obs.Recorder) sim.GlobalStats {
	return sim.RunGlobal(set, m, pol, horizon, engine.WithRecorder(rec))
}

func runQuantaObserved(vts []sim.VQTask, m int, q, horizon int64, mode sim.QuantumMode, rec *obs.Recorder) sim.VQResult {
	return sim.RunQuanta(vts, m, q, horizon, mode, engine.WithRecorder(rec))
}

func runFaults(sc faults.Scenario, shed bool) (faults.Outcome, error) {
	return faults.Run(sc, shed)
}
