package sim

import (
	"testing"

	"pfair/internal/engine"
	"pfair/internal/obs"
	"pfair/internal/task"
)

// These tests pin the boundary behaviour of the variable-quantum simulator:
// runs that end mid-quantum, horizons that end mid-quantum, demand clamping,
// and the alignUp lattice arithmetic everything else leans on.

func TestAlignUp(t *testing.T) {
	cases := []struct{ t, q, want int64 }{
		{0, 10, 0},
		{1, 10, 10},
		{9, 10, 10},
		{10, 10, 10},
		{11, 10, 20},
		{5, 1, 5},   // quantum 1: every tick is a boundary
		{13, 7, 14}, // quantum not dividing the value
		{14, 7, 14},
	}
	for _, c := range cases {
		if got := alignUp(c.t, c.q); got != c.want {
			t.Errorf("alignUp(%d, %d) = %d, want %d", c.t, c.q, got, c.want)
		}
	}
}

// runLengths replays the schedule events of one simulation and returns the
// B field (run length in ticks) of each, in emission order.
func runLengths(rec *obs.Recorder) []int64 {
	var runs []int64
	for _, e := range rec.Events() {
		if e.Kind == obs.EvSchedule {
			runs = append(runs, e.B)
		}
	}
	return runs
}

// TestPartialFinalQuantum: a job whose actual demand is not a multiple of
// the quantum ends with a short run. Under Aligned the processor pads to
// the boundary, so every run still *starts* on the global lattice.
func TestPartialFinalQuantum(t *testing.T) {
	const q = 10
	vts := []VQTask{{
		Task:        task.MustNew("A", 2, 4),
		ActualTicks: func(int64) int64 { return 15 }, // 1.5 quanta per job
	}}
	rec := obs.NewRecorder(1 << 10)
	res := RunQuanta(vts, 1, q, 4*q*4, Aligned, engine.WithRecorder(rec))
	if len(res.Misses) != 0 {
		t.Fatalf("aligned missed with slack: %+v", res.Misses[0])
	}
	if res.Completed < 3 {
		t.Fatalf("completed %d jobs, want ≥ 3", res.Completed)
	}
	runs := runLengths(rec)
	if len(runs) < 4 {
		t.Fatalf("only %d runs recorded", len(runs))
	}
	for i, r := range runs {
		if i%2 == 0 && r != q {
			t.Errorf("run %d: length %d, want full quantum %d", i, r, q)
		}
		if i%2 == 1 && r != 5 {
			t.Errorf("run %d: length %d, want partial 5", i, r)
		}
	}
	for _, e := range rec.Events() {
		if e.Kind == obs.EvSchedule && e.Slot%q != 0 {
			t.Errorf("aligned run started mid-quantum at tick %d", e.Slot)
		}
	}
}

// TestVariableStartsMidQuantum: under Variable, a processor freed by an
// early completion starts the next quantum immediately, so boundaries
// drift off the global lattice — the exact behaviour Aligned forbids.
func TestVariableStartsMidQuantum(t *testing.T) {
	const q = 10
	mk := func() []VQTask {
		return []VQTask{
			{Task: task.MustNew("A", 1, 2), ActualTicks: func(int64) int64 { return 5 }},
			{Task: task.MustNew("B", 1, 2)},
		}
	}
	for _, mode := range []QuantumMode{Aligned, Variable} {
		rec := obs.NewRecorder(1 << 10)
		RunQuanta(mk(), 1, q, 2*q*6, mode, engine.WithRecorder(rec))
		offLattice := 0
		for _, e := range rec.Events() {
			if e.Kind == obs.EvSchedule && e.Slot%q != 0 {
				offLattice++
			}
		}
		if mode == Aligned && offLattice != 0 {
			t.Errorf("aligned emitted %d off-lattice starts", offLattice)
		}
		if mode == Variable && offLattice == 0 {
			t.Error("variable never started mid-quantum; drift not exercised")
		}
	}
}

// TestHorizonMidQuantum: a horizon that is not a multiple of the quantum
// truncates cleanly — results stay deterministic, sorted, and completing
// more horizon never completes fewer jobs.
func TestHorizonMidQuantum(t *testing.T) {
	vts, m, q, horizon := variableQuantaWorkload()
	cut := horizon - q/2
	a := RunQuanta(vts, m, q, cut, Variable)
	b := RunQuanta(vts, m, q, cut, Variable)
	if len(a.Misses) != len(b.Misses) || a.Completed != b.Completed {
		t.Fatal("mid-quantum horizon run is not deterministic")
	}
	for i := 1; i < len(a.Misses); i++ {
		prev, cur := a.Misses[i-1], a.Misses[i]
		if cur.Deadline < prev.Deadline || (cur.Deadline == prev.Deadline && cur.Task < prev.Task) {
			t.Fatalf("misses not sorted at %d: %+v after %+v", i, cur, prev)
		}
	}
	full := RunQuanta(vts, m, q, horizon, Variable)
	if full.Completed < a.Completed {
		t.Fatalf("longer horizon completed fewer jobs: %d < %d", full.Completed, a.Completed)
	}
}

// TestActualTicksClamped: out-of-range demands are clamped into
// [1, cost·quantum] rather than trusted.
func TestActualTicksClamped(t *testing.T) {
	const q = 10
	vts := []VQTask{{
		Task: task.MustNew("A", 2, 4),
		ActualTicks: func(job int64) int64 {
			if job == 1 {
				return 0 // below range → 1 tick
			}
			return 1000 // above range → full 2·q ticks
		},
	}}
	rec := obs.NewRecorder(1 << 10)
	res := RunQuanta(vts, 1, q, 2*4*q, Aligned, engine.WithRecorder(rec))
	if len(res.Misses) != 0 {
		t.Fatalf("clamped demands missed: %+v", res.Misses[0])
	}
	runs := runLengths(rec)
	if len(runs) < 3 {
		t.Fatalf("only %d runs recorded", len(runs))
	}
	if runs[0] != 1 {
		t.Errorf("job 1 ran %d ticks, want demand clamped up to 1", runs[0])
	}
	if runs[1] != q || runs[2] != q {
		t.Errorf("job 2 ran %d+%d ticks, want demand clamped down to two full quanta", runs[1], runs[2])
	}
}

// TestQuantumOne: with a one-tick quantum every tick is a boundary, so
// Aligned and Variable produce identical schedules.
func TestQuantumOne(t *testing.T) {
	mk := func() []VQTask {
		return []VQTask{
			{Task: task.MustNew("A", 2, 3), ActualTicks: func(job int64) int64 { return 1 + job%2 }},
			{Task: task.MustNew("B", 1, 3)},
		}
	}
	a := RunQuanta(mk(), 1, 1, 60, Aligned)
	v := RunQuanta(mk(), 1, 1, 60, Variable)
	if a.Completed != v.Completed || len(a.Misses) != len(v.Misses) {
		t.Fatalf("quantum 1: aligned (%d done, %d missed) differs from variable (%d done, %d missed)",
			a.Completed, len(a.Misses), v.Completed, len(v.Misses))
	}
}
