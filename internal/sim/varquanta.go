package sim

import (
	"math"
	"sort"

	"pfair/internal/core"
	"pfair/internal/engine"
	"pfair/internal/obs"
	"pfair/internal/task"
)

// This file studies the open problem Section 4 closes with: Pfair
// optimality requires execution costs to be multiples of the quantum, so
// sub-quantum work must be padded. "A more flexible approach is to allow a
// new quantum to begin immediately on a processor if a task completes
// execution on that processor before the next quantum boundary. However,
// with this change, quanta vary in length and may no longer align across
// all processors. It is easy to show that allowing such variable-length
// quanta can result in missed deadlines."
//
// RunQuanta simulates both policies on a fine-grained clock: Aligned pads
// every early completion to the next global quantum boundary (the standard
// Pfair model — never misses when Σ declared weight ≤ M), while Variable
// starts the processor's next quantum immediately, letting boundaries
// drift. Tests exhibit a feasible set that misses only under Variable.

// QuantumMode selects the padding policy.
type QuantumMode int

const (
	// Aligned pads early completions to the next global boundary.
	Aligned QuantumMode = iota
	// Variable begins the next quantum immediately on early completion.
	Variable
)

func (m QuantumMode) String() string {
	if m == Aligned {
		return "aligned"
	}
	return "variable"
}

// VQTask pairs a declared Pfair task (cost and period in quanta) with its
// actual per-job demand in ticks (1 quantum = Quantum ticks). ActualTicks
// nil means every job consumes its full declared cost.
type VQTask struct {
	Task *task.Task
	// ActualTicks returns the true execution demand of the 1-based job
	// index, in ticks; it must be in [1, Cost·Quantum].
	ActualTicks func(job int64) int64
}

// VQResult reports job-level deadline behaviour.
type VQResult struct {
	Completed int64
	Misses    []JobMiss // Deadline in ticks
}

type vqState struct {
	t       *task.Task
	pat     *core.Pattern
	actual  func(job int64) int64
	id      int
	idx     int64 // current subtask (1-based)
	job     int64 // current job (1-based)
	jobRem  int64 // remaining actual ticks of the current job
	running bool
	q       int64
}

// eligibleAt returns the earliest tick the current subtask may start.
//
//pfair:hotpath
func (s *vqState) eligibleAt() int64 {
	return s.pat.Release(s.idx) * s.q
}

//pfair:hotpath
func (s *vqState) deadlineTicks() int64 {
	return s.job * s.t.Period * s.q
}

// startJob initializes job j's demand.
//
//pfair:hotpath
func (s *vqState) startJob(j int64) {
	s.job = j
	s.idx = (j-1)*s.t.Cost + 1
	rem := s.t.Cost * s.q
	if s.actual != nil {
		rem = s.actual(j)
		if rem < 1 {
			rem = 1
		}
		if max := s.t.Cost * s.q; rem > max {
			rem = max
		}
	}
	s.jobRem = rem
}

// vqSim is the engine.Policy behind RunQuanta. It is event-driven: Next
// skips to the earliest processor-free or eligibility event, and the
// engine's quantum-boundary hook (WithQuantum) gates Aligned-mode
// dispatch to the global boundary lattice.
type vqSim struct {
	m       int
	quantum int64
	mode    QuantumMode
	states  []*vqState
	// busyUntil[k] < 0 means processor k is idle; otherwise it frees at
	// that tick, running busyTask[k] until then.
	busyUntil []int64
	busyTask  []*vqState
	// rec is cached from the engine at construction; nil = unobserved.
	rec *obs.Recorder
	res VQResult
	// boundary is set by the engine's QuantumBoundary hook for the current
	// instant and consumed by Dispatch: Aligned mode may only start quanta
	// while it is set.
	boundary bool
}

func newVQSim(tasks []VQTask, m int, quantum int64, mode QuantumMode) *vqSim {
	v := &vqSim{
		m:         m,
		quantum:   quantum,
		mode:      mode,
		states:    make([]*vqState, len(tasks)),
		busyUntil: make([]int64, m),
		busyTask:  make([]*vqState, m),
	}
	for i, vt := range tasks {
		st := &vqState{
			t:      vt.Task,
			pat:    core.NewPattern(vt.Task.Cost, vt.Task.Period),
			actual: vt.ActualTicks,
			id:     i,
			q:      quantum,
		}
		st.startJob(1)
		v.states[i] = st
	}
	for k := range v.busyUntil {
		v.busyUntil[k] = -1
	}
	return v
}

func (v *vqSim) register(rec *obs.Recorder) {
	v.rec = rec
	if rec == nil {
		return
	}
	for _, st := range v.states {
		rec.RegisterTask(int32(st.id), st.t.Name)
		rec.Emit(obs.Event{Slot: 0, Kind: obs.EvJoin, Task: int32(st.id), Proc: -1, A: st.t.Cost, B: st.t.Period})
	}
}

// QuantumBoundary implements engine.BoundaryHook: it marks the current
// instant as lying on the global quantum lattice.
//
//pfair:hotpath
func (v *vqSim) QuantumBoundary(t int64) { v.boundary = true }

// Release retires runs completing at t, freeing their processors.
//
//pfair:hotpath
func (v *vqSim) Release(t int64) {
	for k := 0; k < v.m; k++ {
		if v.busyUntil[k] >= 0 && v.busyUntil[k] <= t {
			v.busyTask[k].running = false
			v.busyUntil[k] = -1
			v.busyTask[k] = nil
		}
	}
}

// Pick implements engine.Policy; selection is interleaved with placement
// in Dispatch (each start changes which subtask is highest-priority next).
//
//pfair:hotpath
func (v *vqSim) Pick(t int64) {}

// Dispatch hands idle processors to eligible subtasks: repeatedly give
// the highest-priority eligible subtask to the lowest-indexed idle
// processor. Under Aligned, quanta may only begin on global boundaries
// (the engine's boundary hook).
//
//pfair:hotpath
func (v *vqSim) Dispatch(t int64) {
	for v.mode == Variable || v.boundary {
		proc := -1
		for k := 0; k < v.m; k++ {
			if v.busyUntil[k] < 0 {
				proc = k
				break
			}
		}
		if proc < 0 {
			break
		}
		var best *vqState
		for _, st := range v.states {
			if st.running || st.eligibleAt() > t {
				continue
			}
			if best == nil || core.Less(core.PD2,
				core.SubtaskRef{Pat: st.pat, Index: st.idx, ID: st.id},
				core.SubtaskRef{Pat: best.pat, Index: best.idx, ID: best.id}) {
				best = st
			}
		}
		if best == nil {
			break
		}
		run := v.quantum
		if best.jobRem < run {
			run = best.jobRem
		}
		best.running = true
		if rec := v.rec; rec != nil {
			rec.Emit(obs.Event{Slot: t, Kind: obs.EvSchedule, Task: int32(best.id), Proc: int32(proc), A: best.idx, B: run})
		}
		// Apply the run's effects now; the processor-free event only
		// clears the reservation.
		best.jobRem -= run
		if best.jobRem == 0 {
			finish := t + run
			if finish > best.deadlineTicks() {
				v.res.Misses = append(v.res.Misses, JobMiss{Task: best.t.Name, Job: best.job, Deadline: best.deadlineTicks()})
				if rec := v.rec; rec != nil {
					rec.Emit(obs.Event{Slot: finish, Kind: obs.EvMiss, Task: int32(best.id), Proc: int32(proc), A: best.job, B: best.deadlineTicks()})
				}
			}
			v.res.Completed++
			best.startJob(best.job + 1)
		} else {
			best.idx++
		}
		v.busyUntil[proc] = t + run
		v.busyTask[proc] = best
	}
	v.boundary = false
}

// Account implements engine.Policy; the quantum study keeps no gauges.
//
//pfair:hotpath
func (v *vqSim) Account(t int64) {}

// Next advances to the next event: a processor freeing, or a future
// eligibility arriving for an idle processor.
//
//pfair:hotpath
func (v *vqSim) Next(t int64) int64 {
	next := int64(math.MaxInt64)
	anyIdle := false
	for k := 0; k < v.m; k++ {
		if v.busyUntil[k] >= 0 {
			if v.busyUntil[k] < next {
				next = v.busyUntil[k]
			}
		} else {
			anyIdle = true
		}
	}
	if anyIdle {
		for _, st := range v.states {
			if st.running {
				continue
			}
			e := st.eligibleAt()
			if v.mode == Aligned {
				// Aligned starts happen on the lattice anyway.
				e = alignUp(e, v.quantum)
			}
			if e > t && e < next {
				next = e
			}
		}
		if v.mode == Aligned {
			// An idle aligned processor re-evaluates at the next
			// boundary (a mid-quantum completion elsewhere cannot
			// start work before it).
			b := alignUp(t+1, v.quantum)
			if b < next {
				next = b
			}
		}
	}
	if next <= t {
		next = t + 1
	}
	return next
}

// Finish implements engine.Finisher: pending jobs with expired deadlines
// at the horizon become misses, then misses sort deterministically.
func (v *vqSim) Finish(horizon int64) {
	for _, st := range v.states {
		if st.jobRem > 0 && st.deadlineTicks() <= horizon {
			v.res.Misses = append(v.res.Misses, JobMiss{Task: st.t.Name, Job: st.job, Deadline: st.deadlineTicks()})
			if rec := v.rec; rec != nil {
				rec.Emit(obs.Event{Slot: horizon, Kind: obs.EvMiss, Task: int32(st.id), Proc: -1, A: st.job, B: st.deadlineTicks()})
			}
		}
	}
	sort.Slice(v.res.Misses, func(i, j int) bool {
		if v.res.Misses[i].Deadline != v.res.Misses[j].Deadline {
			return v.res.Misses[i].Deadline < v.res.Misses[j].Deadline
		}
		return v.res.Misses[i].Task < v.res.Misses[j].Task
	})
}

// RunQuanta simulates the task set on m processors under PD² priorities
// with the given quantum size (in ticks) and padding mode, until the
// horizon (in ticks). Tasks are synchronous and periodic.
//
// Engine options attach observability: with engine.WithRecorder(rec),
// event Slot fields carry *ticks*, not quanta; exporters should scale
// SlotMicros accordingly. Schedule events carry the run length in ticks
// in B, making quantum drift under Variable mode directly visible on the
// timeline. Task ids are the indices into tasks. (This replaces the
// former RunQuantaObserved twin.)
func RunQuanta(tasks []VQTask, m int, quantum, horizon int64, mode QuantumMode, opts ...engine.Option) VQResult {
	v := newVQSim(tasks, m, quantum, mode)
	engOpts := make([]engine.Option, 0, len(opts)+1)
	engOpts = append(engOpts, engine.WithQuantum(quantum))
	engOpts = append(engOpts, opts...)
	eng := engine.New(v, engOpts...)
	v.register(eng.Recorder())
	if err := eng.Run(horizon); err != nil {
		//pfair:allowpanic livelock is a policy contract violation; this one-shot harness has no error channel, and silence would report a clean run that never happened
		panic(err)
	}
	eng.Finish(horizon)
	return v.res
}

//pfair:hotpath
func alignUp(t, quantum int64) int64 {
	r := t % quantum
	if r == 0 {
		return t
	}
	return t + quantum - r
}
