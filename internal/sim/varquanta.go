package sim

import (
	"math"
	"sort"

	"pfair/internal/core"
	"pfair/internal/obs"
	"pfair/internal/task"
)

// This file studies the open problem Section 4 closes with: Pfair
// optimality requires execution costs to be multiples of the quantum, so
// sub-quantum work must be padded. "A more flexible approach is to allow a
// new quantum to begin immediately on a processor if a task completes
// execution on that processor before the next quantum boundary. However,
// with this change, quanta vary in length and may no longer align across
// all processors. It is easy to show that allowing such variable-length
// quanta can result in missed deadlines."
//
// RunQuanta simulates both policies on a fine-grained clock: Aligned pads
// every early completion to the next global quantum boundary (the standard
// Pfair model — never misses when Σ declared weight ≤ M), while Variable
// starts the processor's next quantum immediately, letting boundaries
// drift. Tests exhibit a feasible set that misses only under Variable.

// QuantumMode selects the padding policy.
type QuantumMode int

const (
	// Aligned pads early completions to the next global boundary.
	Aligned QuantumMode = iota
	// Variable begins the next quantum immediately on early completion.
	Variable
)

func (m QuantumMode) String() string {
	if m == Aligned {
		return "aligned"
	}
	return "variable"
}

// VQTask pairs a declared Pfair task (cost and period in quanta) with its
// actual per-job demand in ticks (1 quantum = Quantum ticks). ActualTicks
// nil means every job consumes its full declared cost.
type VQTask struct {
	Task *task.Task
	// ActualTicks returns the true execution demand of the 1-based job
	// index, in ticks; it must be in [1, Cost·Quantum].
	ActualTicks func(job int64) int64
}

// VQResult reports job-level deadline behaviour.
type VQResult struct {
	Completed int64
	Misses    []JobMiss // Deadline in ticks
}

type vqState struct {
	t       *task.Task
	pat     *core.Pattern
	actual  func(job int64) int64
	id      int
	idx     int64 // current subtask (1-based)
	job     int64 // current job (1-based)
	jobRem  int64 // remaining actual ticks of the current job
	running bool
	q       int64
}

// eligibleAt returns the earliest tick the current subtask may start.
func (s *vqState) eligibleAt() int64 {
	return s.pat.Release(s.idx) * s.q
}

func (s *vqState) deadlineTicks() int64 {
	return s.job * s.t.Period * s.q
}

// startJob initializes job j's demand.
func (s *vqState) startJob(j int64) {
	s.job = j
	s.idx = (j-1)*s.t.Cost + 1
	rem := s.t.Cost * s.q
	if s.actual != nil {
		rem = s.actual(j)
		if rem < 1 {
			rem = 1
		}
		if max := s.t.Cost * s.q; rem > max {
			rem = max
		}
	}
	s.jobRem = rem
}

// RunQuanta simulates the task set on m processors under PD² priorities
// with the given quantum size (in ticks) and padding mode, until the
// horizon (in ticks). Tasks are synchronous and periodic.
func RunQuanta(tasks []VQTask, m int, quantum, horizon int64, mode QuantumMode) VQResult {
	return RunQuantaObserved(tasks, m, quantum, horizon, mode, nil)
}

// RunQuantaObserved is RunQuanta with an optional trace recorder (nil =
// unobserved). Event Slot fields carry *ticks*, not quanta; exporters
// should scale SlotMicros accordingly. Schedule events carry the run
// length in ticks in B, making quantum drift under Variable mode directly
// visible on the timeline. Task ids are the indices into tasks.
func RunQuantaObserved(tasks []VQTask, m int, quantum, horizon int64, mode QuantumMode, rec *obs.Recorder) VQResult {
	var res VQResult
	states := make([]*vqState, len(tasks))
	for i, vt := range tasks {
		st := &vqState{
			t:      vt.Task,
			pat:    core.NewPattern(vt.Task.Cost, vt.Task.Period),
			actual: vt.ActualTicks,
			id:     i,
			q:      quantum,
		}
		st.startJob(1)
		states[i] = st
		if rec != nil {
			rec.RegisterTask(int32(i), vt.Task.Name)
			rec.Emit(obs.Event{Slot: 0, Kind: obs.EvJoin, Task: int32(i), Proc: -1, A: vt.Task.Cost, B: vt.Task.Period})
		}
	}

	// busyUntil[k] < 0 means processor k is idle; otherwise it frees at
	// that tick, running busyTask[k] for busyLen[k] ticks.
	busyUntil := make([]int64, m)
	busyTask := make([]*vqState, m)
	for k := range busyUntil {
		busyUntil[k] = -1
	}

	now := int64(0)
	for now < horizon {
		// Retire runs completing at `now`.
		for k := 0; k < m; k++ {
			if busyUntil[k] >= 0 && busyUntil[k] <= now {
				busyTask[k].running = false
				busyUntil[k] = -1
				busyTask[k] = nil
			}
		}

		// Dispatch idle processors: repeatedly give the highest-priority
		// eligible subtask to the lowest-indexed idle processor. Under
		// Aligned, quanta may only begin on global boundaries.
		for mode == Variable || now%quantum == 0 {
			proc := -1
			for k := 0; k < m; k++ {
				if busyUntil[k] < 0 {
					proc = k
					break
				}
			}
			if proc < 0 {
				break
			}
			var best *vqState
			for _, st := range states {
				if st.running || st.eligibleAt() > now {
					continue
				}
				if best == nil || core.Less(core.PD2,
					core.SubtaskRef{Pat: st.pat, Index: st.idx, ID: st.id},
					core.SubtaskRef{Pat: best.pat, Index: best.idx, ID: best.id}) {
					best = st
				}
			}
			if best == nil {
				break
			}
			run := quantum
			if best.jobRem < run {
				run = best.jobRem
			}
			best.running = true
			if rec != nil {
				rec.Emit(obs.Event{Slot: now, Kind: obs.EvSchedule, Task: int32(best.id), Proc: int32(proc), A: best.idx, B: run})
			}
			// Apply the run's effects now; the processor-free event only
			// clears the reservation.
			best.jobRem -= run
			if best.jobRem == 0 {
				finish := now + run
				if finish > best.deadlineTicks() {
					res.Misses = append(res.Misses, JobMiss{Task: best.t.Name, Job: best.job, Deadline: best.deadlineTicks()})
					if rec != nil {
						rec.Emit(obs.Event{Slot: finish, Kind: obs.EvMiss, Task: int32(best.id), Proc: int32(proc), A: best.job, B: best.deadlineTicks()})
					}
				}
				res.Completed++
				best.startJob(best.job + 1)
			} else {
				best.idx++
			}
			busyUntil[proc] = now + run
			busyTask[proc] = best
		}

		// Advance to the next event: a processor freeing, or a future
		// eligibility arriving for an idle processor.
		next := int64(math.MaxInt64)
		anyIdle := false
		for k := 0; k < m; k++ {
			if busyUntil[k] >= 0 {
				if busyUntil[k] < next {
					next = busyUntil[k]
				}
			} else {
				anyIdle = true
			}
		}
		if anyIdle {
			for _, st := range states {
				if st.running {
					continue
				}
				e := st.eligibleAt()
				if mode == Aligned {
					// Aligned starts happen on the lattice anyway.
					e = alignUp(e, quantum)
				}
				if e > now && e < next {
					next = e
				}
			}
			if mode == Aligned {
				// An idle aligned processor re-evaluates at the next
				// boundary (a mid-quantum completion elsewhere cannot
				// start work before it).
				b := alignUp(now+1, quantum)
				if b < next {
					next = b
				}
			}
		}
		if next <= now {
			next = now + 1
		}
		now = next
	}

	// Pending jobs with expired deadlines at the horizon.
	for _, st := range states {
		if st.jobRem > 0 && st.deadlineTicks() <= horizon {
			res.Misses = append(res.Misses, JobMiss{Task: st.t.Name, Job: st.job, Deadline: st.deadlineTicks()})
			if rec != nil {
				rec.Emit(obs.Event{Slot: horizon, Kind: obs.EvMiss, Task: int32(st.id), Proc: -1, A: st.job, B: st.deadlineTicks()})
			}
		}
	}
	sort.Slice(res.Misses, func(i, j int) bool {
		if res.Misses[i].Deadline != res.Misses[j].Deadline {
			return res.Misses[i].Deadline < res.Misses[j].Deadline
		}
		return res.Misses[i].Task < res.Misses[j].Task
	})
	return res
}

func alignUp(t, quantum int64) int64 {
	r := t % quantum
	if r == 0 {
		return t
	}
	return t + quantum - r
}
