package sim

import (
	"testing"

	"pfair/internal/engine"
	"pfair/internal/obs"
	"pfair/internal/task"
)

// Both sim policies ride the shared slot engine; these guards pin their
// steady-state step loops at 0 allocs/op. Job releases inherently
// allocate (one gjob per released job), so the global-EDF guard uses
// long-running jobs whose release/completion events fall outside the
// measured window: what remains is the pure per-slot path — release
// scan, heap pick, dispatch, requeue — which must be allocation-free.

func longJobGlobal(tb testing.TB, opts ...engine.Option) (*globalSim, *engine.Engine) {
	tb.Helper()
	set := task.Set{
		task.MustNew("h1", 1<<30, 1<<31),
		task.MustNew("h2", 1<<30, 1<<31),
	}
	g := newGlobalSim(set, 2, GlobalEDF)
	eng := engine.New(g, opts...)
	g.register(eng.Recorder())
	return g, eng
}

// TestGlobalStepSteadyStateZeroAllocs pins the unobserved global-EDF
// slot loop at 0 allocs/op between job-release events.
func TestGlobalStepSteadyStateZeroAllocs(t *testing.T) {
	_, eng := longJobGlobal(t)
	eng.Run(1024)
	if allocs := testing.AllocsPerRun(500, func() { eng.Step() }); allocs != 0 {
		t.Errorf("global-EDF step allocates %v/op in steady state, want 0", allocs)
	}
}

// TestGlobalStepObservedZeroAllocs repeats the guard with a recorder
// attached: schedule/idle emissions must not allocate.
func TestGlobalStepObservedZeroAllocs(t *testing.T) {
	rec := obs.NewRecorder(1 << 12)
	_, eng := longJobGlobal(t, engine.WithRecorder(rec))
	eng.Run(1024)
	if allocs := testing.AllocsPerRun(500, func() { eng.Step() }); allocs != 0 {
		t.Errorf("observed global-EDF step allocates %v/op in steady state, want 0", allocs)
	}
	if rec.Total() == 0 {
		t.Fatal("recorder attached but no events recorded")
	}
}

// TestVQStepSteadyStateZeroAllocs pins the variable-quantum policy's
// event loop at 0 allocs/op on a feasible aligned workload (no misses,
// so the miss-recording slow path stays cold). The vq state machine is
// fully preallocated: advancing jobs and subtasks mutates in place.
func TestVQStepSteadyStateZeroAllocs(t *testing.T) {
	tasks := []VQTask{
		{Task: task.MustNew("a", 1, 3)},
		{Task: task.MustNew("b", 1, 4)},
	}
	const quantum = 4
	v := newVQSim(tasks, 1, quantum, Aligned)
	eng := engine.New(v, engine.WithQuantum(quantum))
	v.register(eng.Recorder())
	eng.Run(10_000)
	if allocs := testing.AllocsPerRun(500, func() { eng.Step() }); allocs != 0 {
		t.Errorf("vq step allocates %v/op in steady state, want 0", allocs)
	}
	if n := len(v.res.Misses); n != 0 {
		t.Fatalf("aligned feasible workload missed %d deadlines; the guard needs a miss-free steady state", n)
	}
}

// BenchmarkGlobalStepAllocs reports the steady-state per-slot cost of
// the global-EDF policy on the engine.
func BenchmarkGlobalStepAllocs(b *testing.B) {
	_, eng := longJobGlobal(b)
	eng.Run(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}
