// Package sim provides multiprocessor scheduling simulators that sit
// outside the Pfair framework of internal/core: slot-based global EDF and
// global RM (to reproduce the Dhall effect the paper cites as the reason
// naive global scheduling was abandoned), and the variable-length-quantum
// Pfair variant whose deadline misses Section 4 poses as an open problem.
package sim

import (
	"fmt"
	"math"

	"pfair/internal/engine"
	"pfair/internal/heap"
	"pfair/internal/obs"
	"pfair/internal/task"
)

// Policy selects the global job-level priority rule.
type Policy int

const (
	// GlobalEDF prioritizes jobs by absolute deadline. Dhall and Liu
	// showed it can miss deadlines at arbitrarily low utilization on
	// multiprocessors [13].
	GlobalEDF Policy = iota
	// GlobalRM prioritizes jobs by their task's period (fixed priority),
	// with the same pathology.
	GlobalRM
)

func (p Policy) String() string {
	switch p {
	case GlobalEDF:
		return "global-EDF"
	case GlobalRM:
		return "global-RM"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// JobMiss records a job that did not complete by its deadline.
type JobMiss struct {
	Task     string
	Job      int64
	Deadline int64
}

// GlobalStats aggregates a global-scheduling run.
type GlobalStats struct {
	Jobs      int64
	Completed int64
	Misses    []JobMiss
}

type gtask struct {
	t           *task.Task
	id          int32 // dense observability id (index in the input set)
	nextRelease int64
	nextJob     int64
	// Outstanding jobs, FIFO; only the head is schedulable (a task
	// cannot run in parallel with itself).
	queue []*gjob
}

type gjob struct {
	ts        *gtask
	index     int64
	deadline  int64
	remaining int64
	missed    bool
	// item is the job's heap handle, allocated once at release so
	// re-queueing a preempted or advancing job never allocates.
	item *heap.Item[*gjob]
}

// globalSim is the engine.Policy behind RunGlobal: slot-quantized global
// EDF/RM. Selection scratch (ranBuf) is preallocated per simulation and
// jobs carry their heap handle, so the steady-state slot loop stays
// allocation-free; only job releases (a job object plus its handle)
// allocate.
type globalSim struct {
	m     int
	tasks []*gtask
	ready *heap.Heap[*gjob] // heads of task queues with remaining work
	// rec is cached from the engine at construction; nil = unobserved.
	rec    *obs.Recorder
	ranBuf []*gjob
	stats  GlobalStats
}

func newGlobalSim(set task.Set, m int, pol Policy) *globalSim {
	g := &globalSim{
		m:      m,
		tasks:  make([]*gtask, len(set)),
		ranBuf: make([]*gjob, 0, m),
	}
	less := func(a, b *gjob) bool {
		switch pol {
		case GlobalRM:
			if a.ts.t.Period != b.ts.t.Period {
				return a.ts.t.Period < b.ts.t.Period
			}
		default:
			if a.deadline != b.deadline {
				return a.deadline < b.deadline
			}
		}
		if a.ts.t.Name != b.ts.t.Name {
			return a.ts.t.Name < b.ts.t.Name
		}
		return a.index < b.index
	}
	g.ready = heap.New(less)
	for i, t := range set {
		g.tasks[i] = &gtask{t: t, id: int32(i), nextJob: 1}
	}
	return g
}

// register announces the task set to the recorder; called once after the
// policy is bound to its engine.
func (g *globalSim) register(rec *obs.Recorder) {
	g.rec = rec
	if rec == nil {
		return
	}
	for _, ts := range g.tasks {
		rec.RegisterTask(ts.id, ts.t.Name)
		rec.Emit(obs.Event{Slot: 0, Kind: obs.EvJoin, Task: ts.id, Proc: -1, A: ts.t.Cost, B: ts.t.Period})
	}
}

// Release brings the slot current: releases jobs due at t, then records
// misses for queued jobs whose deadlines have passed.
//
// Not //pfair:hotpath: releasing a job inherently allocates (the job
// object and its heap handle). The between-releases slot path is pinned
// at 0 allocs/op dynamically by TestGlobalStepSteadyStateZeroAllocs.
//
//pfair:allowalloc releasing a job allocates the job record and its heap handle, one pair per period, off the per-slot path
func (g *globalSim) Release(t int64) {
	for _, ts := range g.tasks {
		for ts.nextRelease <= t {
			j := &gjob{
				ts:        ts,
				index:     ts.nextJob,
				deadline:  ts.nextRelease + ts.t.Period,
				remaining: ts.t.Cost,
			}
			j.item = heap.NewItem(j)
			g.stats.Jobs++
			if rec := g.rec; rec != nil {
				rec.Emit(obs.Event{Slot: t, Kind: obs.EvRelease, Task: ts.id, Proc: -1, A: j.index, B: j.deadline})
			}
			if len(ts.queue) == 0 {
				g.ready.PushItem(j.item)
			}
			ts.queue = append(ts.queue, j)
			ts.nextJob++
			ts.nextRelease += ts.t.Period
		}
	}
	for _, ts := range g.tasks {
		for _, j := range ts.queue {
			if !j.missed && j.deadline <= t {
				j.missed = true
				g.stats.Misses = append(g.stats.Misses, JobMiss{Task: ts.t.Name, Job: j.index, Deadline: j.deadline})
				if rec := g.rec; rec != nil {
					rec.Emit(obs.Event{Slot: t, Kind: obs.EvMiss, Task: ts.id, Proc: -1, A: j.index, B: j.deadline})
				}
			}
		}
	}
}

// Pick pops the m highest-priority queue heads into the selection scratch.
//
//pfair:hotpath
func (g *globalSim) Pick(t int64) {
	ran := g.ranBuf[:0]
	for len(ran) < g.m && g.ready.Len() > 0 {
		ran = append(ran, g.ready.Pop())
	}
	g.ranBuf = ran
}

// Dispatch runs the selection for one slot: emits schedule/idle events and
// applies execution effects (completion, queue advance, requeue).
//
//pfair:hotpath
func (g *globalSim) Dispatch(t int64) {
	ran := g.ranBuf
	if rec := g.rec; rec != nil {
		for k, j := range ran {
			rec.Emit(obs.Event{Slot: t, Kind: obs.EvSchedule, Task: j.ts.id, Proc: int32(k), A: j.index})
		}
		for k := len(ran); k < g.m; k++ {
			rec.Emit(obs.Event{Slot: t, Kind: obs.EvIdle, Task: -1, Proc: int32(k)})
		}
	}
	for _, j := range ran {
		j.remaining--
		if j.remaining == 0 {
			g.stats.Completed++
			ts := j.ts
			ts.queue = ts.queue[1:]
			if len(ts.queue) > 0 {
				g.ready.PushItem(ts.queue[0].item)
			}
		} else {
			g.ready.PushItem(j.item)
		}
	}
}

// Account implements engine.Policy; global EDF/RM keeps no per-slot gauges.
//
//pfair:hotpath
func (g *globalSim) Account(t int64) {}

// Next implements engine.Policy: the simulation is slot-driven.
//
//pfair:hotpath
func (g *globalSim) Next(t int64) int64 { return t + 1 }

// Finish implements engine.Finisher: jobs still pending with expired
// deadlines at the horizon are recorded as misses.
func (g *globalSim) Finish(horizon int64) {
	for _, ts := range g.tasks {
		for _, j := range ts.queue {
			if !j.missed && j.deadline <= horizon {
				j.missed = true
				g.stats.Misses = append(g.stats.Misses, JobMiss{Task: ts.t.Name, Job: j.index, Deadline: j.deadline})
				if rec := g.rec; rec != nil {
					rec.Emit(obs.Event{Slot: horizon, Kind: obs.EvMiss, Task: ts.id, Proc: -1, A: j.index, B: j.deadline})
				}
			}
		}
	}
}

// RunGlobal simulates synchronous periodic tasks on m processors under
// slot-quantized global EDF or RM: each slot, the m highest-priority
// eligible jobs run (at most one slot of one job per task per slot). It
// records every job-deadline miss up to the horizon.
//
// Engine options attach observability: engine.WithRecorder(rec) makes the
// run emit release, schedule, idle, and deadline-miss events, so the
// Dhall-effect runs export to the same Perfetto timeline as the Pfair
// schedulers. Task ids are the indices into set. (This replaces the former
// RunGlobalObserved twin.)
func RunGlobal(set task.Set, m int, pol Policy, horizon int64, opts ...engine.Option) GlobalStats {
	g := newGlobalSim(set, m, pol)
	eng := engine.New(g, opts...)
	g.register(eng.Recorder())
	if err := eng.Run(horizon); err != nil {
		//pfair:allowpanic livelock is a policy contract violation; this one-shot harness has no error channel, and silence would report a clean run that never happened
		panic(err)
	}
	eng.Finish(horizon)
	return g.stats
}

// DhallSet constructs the classic Dhall-effect workload for m processors:
// m light tasks of utilization 1/light and one heavy task of utilization
// just under one. Its total utilization is ≈ m/light + 1, far below m, yet
// global EDF and RM both miss the heavy task's deadlines.
func DhallSet(m int, light int64) task.Set {
	set := make(task.Set, 0, m+1)
	for i := 0; i < m; i++ {
		set = append(set, task.MustNew(fmt.Sprintf("light%d", i), 1, light))
	}
	// Heavy task: cost = 10·light, period = 10·light + 1.
	set = append(set, task.MustNew("heavy", 10*light, 10*light+1))
	return set
}

// MaxLateness returns the largest completion lateness implied by the
// misses (for reporting; unfinished jobs count as at least one slot late).
func (g GlobalStats) MaxLateness(horizon int64) int64 {
	max := int64(math.MinInt64)
	if len(g.Misses) == 0 {
		return 0
	}
	for _, m := range g.Misses {
		l := horizon - m.Deadline
		if l > max {
			max = l
		}
	}
	if max < 1 {
		max = 1
	}
	return max
}
