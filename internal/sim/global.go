// Package sim provides multiprocessor scheduling simulators that sit
// outside the Pfair framework of internal/core: slot-based global EDF and
// global RM (to reproduce the Dhall effect the paper cites as the reason
// naive global scheduling was abandoned), and the variable-length-quantum
// Pfair variant whose deadline misses Section 4 poses as an open problem.
package sim

import (
	"fmt"
	"math"

	"pfair/internal/heap"
	"pfair/internal/obs"
	"pfair/internal/task"
)

// Policy selects the global job-level priority rule.
type Policy int

const (
	// GlobalEDF prioritizes jobs by absolute deadline. Dhall and Liu
	// showed it can miss deadlines at arbitrarily low utilization on
	// multiprocessors [13].
	GlobalEDF Policy = iota
	// GlobalRM prioritizes jobs by their task's period (fixed priority),
	// with the same pathology.
	GlobalRM
)

func (p Policy) String() string {
	switch p {
	case GlobalEDF:
		return "global-EDF"
	case GlobalRM:
		return "global-RM"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// JobMiss records a job that did not complete by its deadline.
type JobMiss struct {
	Task     string
	Job      int64
	Deadline int64
}

// GlobalStats aggregates a global-scheduling run.
type GlobalStats struct {
	Jobs      int64
	Completed int64
	Misses    []JobMiss
}

type gtask struct {
	t           *task.Task
	id          int32 // dense observability id (index in the input set)
	nextRelease int64
	nextJob     int64
	// Outstanding jobs, FIFO; only the head is schedulable (a task
	// cannot run in parallel with itself).
	queue []*gjob
}

type gjob struct {
	ts        *gtask
	index     int64
	deadline  int64
	remaining int64
	missed    bool
}

// RunGlobal simulates synchronous periodic tasks on m processors under
// slot-quantized global EDF or RM: each slot, the m highest-priority
// eligible jobs run (at most one slot of one job per task per slot). It
// records every job-deadline miss up to the horizon.
func RunGlobal(set task.Set, m int, pol Policy, horizon int64) GlobalStats {
	return RunGlobalObserved(set, m, pol, horizon, nil)
}

// RunGlobalObserved is RunGlobal with an optional trace recorder (nil =
// unobserved) receiving release, schedule, idle, and deadline-miss events,
// so the Dhall-effect runs export to the same Perfetto timeline as the
// Pfair schedulers. Task ids are the indices into set.
func RunGlobalObserved(set task.Set, m int, pol Policy, horizon int64, rec *obs.Recorder) GlobalStats {
	var stats GlobalStats
	less := func(a, b *gjob) bool {
		switch pol {
		case GlobalRM:
			if a.ts.t.Period != b.ts.t.Period {
				return a.ts.t.Period < b.ts.t.Period
			}
		default:
			if a.deadline != b.deadline {
				return a.deadline < b.deadline
			}
		}
		if a.ts.t.Name != b.ts.t.Name {
			return a.ts.t.Name < b.ts.t.Name
		}
		return a.index < b.index
	}

	tasks := make([]*gtask, len(set))
	for i, t := range set {
		tasks[i] = &gtask{t: t, id: int32(i), nextJob: 1}
		if rec != nil {
			rec.RegisterTask(int32(i), t.Name)
			rec.Emit(obs.Event{Slot: 0, Kind: obs.EvJoin, Task: int32(i), Proc: -1, A: t.Cost, B: t.Period})
		}
	}

	ready := heap.New(less) // heads of task queues with remaining work
	for slot := int64(0); slot < horizon; slot++ {
		// Release jobs due this slot.
		for _, ts := range tasks {
			for ts.nextRelease <= slot {
				j := &gjob{
					ts:        ts,
					index:     ts.nextJob,
					deadline:  ts.nextRelease + ts.t.Period,
					remaining: ts.t.Cost,
				}
				stats.Jobs++
				if rec != nil {
					rec.Emit(obs.Event{Slot: slot, Kind: obs.EvRelease, Task: ts.id, Proc: -1, A: j.index, B: j.deadline})
				}
				if len(ts.queue) == 0 {
					ready.Push(j)
				}
				ts.queue = append(ts.queue, j)
				ts.nextJob++
				ts.nextRelease += ts.t.Period
			}
		}
		// Record misses as deadlines pass.
		for _, ts := range tasks {
			for _, j := range ts.queue {
				if !j.missed && j.deadline <= slot {
					j.missed = true
					stats.Misses = append(stats.Misses, JobMiss{Task: ts.t.Name, Job: j.index, Deadline: j.deadline})
					if rec != nil {
						rec.Emit(obs.Event{Slot: slot, Kind: obs.EvMiss, Task: ts.id, Proc: -1, A: j.index, B: j.deadline})
					}
				}
			}
		}
		// Run the m highest-priority heads.
		var ran []*gjob
		for len(ran) < m && ready.Len() > 0 {
			ran = append(ran, ready.Pop())
		}
		if rec != nil {
			for k, j := range ran {
				rec.Emit(obs.Event{Slot: slot, Kind: obs.EvSchedule, Task: j.ts.id, Proc: int32(k), A: j.index})
			}
			for k := len(ran); k < m; k++ {
				rec.Emit(obs.Event{Slot: slot, Kind: obs.EvIdle, Task: -1, Proc: int32(k)})
			}
		}
		for _, j := range ran {
			j.remaining--
			if j.remaining == 0 {
				stats.Completed++
				ts := j.ts
				ts.queue = ts.queue[1:]
				if len(ts.queue) > 0 {
					ready.Push(ts.queue[0])
				}
			} else {
				ready.Push(j)
			}
		}
	}
	// Jobs still pending with expired deadlines.
	for _, ts := range tasks {
		for _, j := range ts.queue {
			if !j.missed && j.deadline <= horizon {
				j.missed = true
				stats.Misses = append(stats.Misses, JobMiss{Task: ts.t.Name, Job: j.index, Deadline: j.deadline})
				if rec != nil {
					rec.Emit(obs.Event{Slot: horizon, Kind: obs.EvMiss, Task: ts.id, Proc: -1, A: j.index, B: j.deadline})
				}
			}
		}
	}
	return stats
}

// DhallSet constructs the classic Dhall-effect workload for m processors:
// m light tasks of utilization 1/light and one heavy task of utilization
// just under one. Its total utilization is ≈ m/light + 1, far below m, yet
// global EDF and RM both miss the heavy task's deadlines.
func DhallSet(m int, light int64) task.Set {
	set := make(task.Set, 0, m+1)
	for i := 0; i < m; i++ {
		set = append(set, task.MustNew(fmt.Sprintf("light%d", i), 1, light))
	}
	// Heavy task: cost = 10·light, period = 10·light + 1.
	set = append(set, task.MustNew("heavy", 10*light, 10*light+1))
	return set
}

// MaxLateness returns the largest completion lateness implied by the
// misses (for reporting; unfinished jobs count as at least one slot late).
func (g GlobalStats) MaxLateness(horizon int64) int64 {
	max := int64(math.MinInt64)
	if len(g.Misses) == 0 {
		return 0
	}
	for _, m := range g.Misses {
		l := horizon - m.Deadline
		if l > max {
			max = l
		}
	}
	if max < 1 {
		max = 1
	}
	return max
}
