package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"pfair/internal/core"
	"pfair/internal/rational"
	"pfair/internal/task"
)

// TestDhallEffect reproduces the phenomenon the paper cites from Dhall and
// Liu [13]: global EDF and global RM can miss deadlines at arbitrarily low
// utilization — m tiny tasks plus one heavy task defeat both — while PD²
// schedules the same set without misses.
func TestDhallEffect(t *testing.T) {
	for _, m := range []int{2, 4, 8} {
		set := DhallSet(m, 10)
		// Total utilization ≈ m/10 + 1, i.e. an ever-smaller fraction of
		// the m-processor platform as m grows.
		if u := set.TotalUtilization(); u > 1.01+float64(m)/10 {
			t.Fatalf("Dhall set not low-utilization: %v on %d", u, m)
		}
		horizon := set.Hyperperiod()
		if horizon > 200000 {
			horizon = 200000
		}
		for _, pol := range []Policy{GlobalEDF, GlobalRM} {
			st := RunGlobal(set, m, pol, horizon)
			missedHeavy := false
			for _, miss := range st.Misses {
				if miss.Task == "heavy" {
					missedHeavy = true
				}
			}
			if !missedHeavy {
				t.Errorf("m=%d %v: heavy task met all deadlines; Dhall effect not reproduced", m, pol)
			}
			if st.MaxLateness(horizon) <= 0 {
				t.Errorf("m=%d %v: lateness not positive", m, pol)
			}
		}
		// PD² handles it (Equation (2) holds comfortably).
		s := core.NewScheduler(m, core.PD2, core.Options{})
		for _, tk := range set {
			if err := s.Join(tk); err != nil {
				t.Fatalf("join: %v", err)
			}
		}
		s.RunUntil(horizon)
		s.FinishMisses(horizon)
		if n := len(s.Stats().Misses); n != 0 {
			t.Errorf("m=%d: PD² missed %d deadlines on the Dhall set", m, n)
		}
	}
}

// TestGlobalSchedulersFineWhenLight: at genuinely low per-task utilization
// with headroom, global EDF behaves (the pathology needs the heavy task).
func TestGlobalSchedulersFineWhenLight(t *testing.T) {
	var set task.Set
	for i := 0; i < 8; i++ {
		set = append(set, task.MustNew(fmt.Sprintf("T%d", i), 1, 10))
	}
	st := RunGlobal(set, 2, GlobalEDF, 2000)
	if len(st.Misses) != 0 {
		t.Fatalf("light global-EDF set missed: %+v", st.Misses[0])
	}
	if st.Jobs == 0 || st.Completed == 0 {
		t.Fatal("no work simulated")
	}
}

// TestGlobalUniprocessorMatchesEDF: on one processor, global EDF is plain
// EDF and never misses below full utilization.
func TestGlobalUniprocessorMatchesEDF(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		var set task.Set
		budget := rational.NewAcc()
		for i := 0; i < 6; i++ {
			p := int64(2 + r.Intn(12))
			e := int64(1 + r.Intn(int(p)))
			w := rational.New(e, p)
			if budget.Clone().Add(w).CmpInt(1) > 0 {
				continue
			}
			budget.Add(w)
			set = append(set, task.MustNew(fmt.Sprintf("T%d", i), e, p))
		}
		if len(set) == 0 {
			continue
		}
		st := RunGlobal(set, 1, GlobalEDF, 3000)
		if len(st.Misses) != 0 {
			t.Fatalf("uniprocessor global EDF missed on %v: %+v", set, st.Misses[0])
		}
	}
}

func TestPolicyString(t *testing.T) {
	if GlobalEDF.String() != "global-EDF" || GlobalRM.String() != "global-RM" {
		t.Error("Policy.String mismatch")
	}
	if Policy(5).String() != "Policy(5)" {
		t.Error("unknown Policy.String mismatch")
	}
	if Aligned.String() != "aligned" || Variable.String() != "variable" {
		t.Error("QuantumMode.String mismatch")
	}
}

// variableQuantaWorkload regenerates the pinned counterexample found by
// randomized search (see TestVariableQuantaMisses): four tasks with total
// weight exactly 2, with some jobs completing below their declared cost.
func variableQuantaWorkload() ([]VQTask, int, int64, int64) {
	const q = 10
	r := rand.New(rand.NewSource(767))
	m := 2 + r.Intn(3)
	var set task.Set
	budget := rational.NewAcc()
	for i := 0; i < 14; i++ {
		p := int64(2 + r.Intn(7))
		e := int64(1 + r.Intn(int(p)))
		w := rational.New(e, p)
		if budget.Clone().Add(w).CmpInt(int64(m)) > 0 {
			continue
		}
		budget.Add(w)
		set = append(set, task.MustNew(fmt.Sprintf("T%d", len(set)), e, p))
	}
	seeds := make([]int64, len(set))
	for i := range seeds {
		seeds[i] = r.Int63()
	}
	vts := make([]VQTask, len(set))
	for i, tk := range set {
		tk := tk
		js := seeds[i]
		vts[i] = VQTask{Task: tk, ActualTicks: func(job int64) int64 {
			rr := rand.New(rand.NewSource(js + job*7919))
			if rr.Intn(3) == 0 {
				a := tk.Cost*q - 1 - rr.Int63n(tk.Cost*q/2+1)
				if a < 1 {
					a = 1
				}
				return a
			}
			return tk.Cost * q
		}}
	}
	horizon := set.Hyperperiod() * q * 4
	return vts, m, int64(q), horizon
}

// TestVariableQuantaMisses demonstrates the Section 4 open problem: a
// fully-utilized set that standard (aligned, padded) PD² schedules without
// misses loses deadlines once early completions are allowed to start the
// next quantum immediately and boundaries drift across processors.
func TestVariableQuantaMisses(t *testing.T) {
	vts, m, q, horizon := variableQuantaWorkload()
	if len(vts) != 4 || m != 2 {
		t.Fatalf("pinned workload changed shape: %d tasks, m=%d", len(vts), m)
	}
	aligned := RunQuanta(vts, m, q, horizon, Aligned)
	if n := len(aligned.Misses); n != 0 {
		t.Fatalf("aligned quanta missed %d deadlines: %+v", n, aligned.Misses[0])
	}
	variable := RunQuanta(vts, m, q, horizon, Variable)
	if len(variable.Misses) == 0 {
		t.Fatal("variable quanta met all deadlines; counterexample no longer reproduces")
	}
}

// TestAlignedNeverMisses: with full declared costs or early completions,
// aligned PD² keeps every job deadline whenever Σ weight ≤ M.
func TestAlignedNeverMisses(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	const q = 10
	for trial := 0; trial < 15; trial++ {
		m := 1 + r.Intn(3)
		var set task.Set
		budget := rational.NewAcc()
		for i := 0; i < 8; i++ {
			p := int64(2 + r.Intn(7))
			e := int64(1 + r.Intn(int(p)))
			w := rational.New(e, p)
			if budget.Clone().Add(w).CmpInt(int64(m)) > 0 {
				continue
			}
			budget.Add(w)
			set = append(set, task.MustNew(fmt.Sprintf("T%d", len(set)), e, p))
		}
		if len(set) == 0 {
			continue
		}
		vts := make([]VQTask, len(set))
		for i, tk := range set {
			tk := tk
			short := r.Intn(2) == 0
			vts[i] = VQTask{Task: tk, ActualTicks: func(job int64) int64 {
				if short && job%2 == 0 {
					return tk.Cost*q - q/2
				}
				return tk.Cost * q
			}}
		}
		horizon := set.Hyperperiod() * q * 3
		if horizon > 300000 {
			horizon = 300000
		}
		res := RunQuanta(vts, m, q, horizon, Aligned)
		if n := len(res.Misses); n != 0 {
			t.Fatalf("trial %d: aligned missed %d (first %+v) on %v", trial, n, res.Misses[0], set)
		}
		if res.Completed == 0 {
			t.Fatal("nothing completed")
		}
	}
}

// TestVariableFullCostsEquivalent: when every job consumes its full
// declared cost there is nothing to truncate, so Variable behaves exactly
// like Aligned and misses nothing.
func TestVariableFullCostsEquivalent(t *testing.T) {
	set := task.Set{task.MustNew("A", 2, 3), task.MustNew("B", 2, 3), task.MustNew("C", 2, 3)}
	vts := make([]VQTask, len(set))
	for i, tk := range set {
		vts[i] = VQTask{Task: tk}
	}
	const q = 10
	horizon := int64(3 * q * 20)
	for _, mode := range []QuantumMode{Aligned, Variable} {
		res := RunQuanta(vts, 2, q, horizon, mode)
		if len(res.Misses) != 0 {
			t.Fatalf("%v missed with full costs: %+v", mode, res.Misses[0])
		}
		if res.Completed == 0 {
			t.Fatalf("%v completed nothing", mode)
		}
	}
}
