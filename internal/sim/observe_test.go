package sim

import (
	"testing"

	"pfair/internal/engine"
	"pfair/internal/obs"
)

func kindCounts(rec *obs.Recorder) map[obs.EventKind]int64 {
	counts := make(map[obs.EventKind]int64)
	for _, e := range rec.Events() {
		counts[e.Kind]++
	}
	return counts
}

// TestRunGlobalObserved: the Dhall-effect run emits a trace that tiles the
// processor grid and mirrors the returned statistics, and attaching the
// recorder does not perturb the simulation.
func TestRunGlobalObserved(t *testing.T) {
	set := DhallSet(2, 100)
	const m, horizon = 2, 2000
	rec := obs.NewRecorder(1 << 16)
	observed := RunGlobal(set, m, GlobalEDF, horizon, engine.WithRecorder(rec))
	plain := RunGlobal(set, m, GlobalEDF, horizon)

	if observed.Jobs != plain.Jobs || observed.Completed != plain.Completed ||
		len(observed.Misses) != len(plain.Misses) {
		t.Fatalf("observation changed the run: %+v vs %+v", observed, plain)
	}
	if len(observed.Misses) == 0 {
		t.Fatal("Dhall set no longer misses under global EDF")
	}
	if rec.Dropped() != 0 {
		t.Fatalf("ring too small: dropped %d", rec.Dropped())
	}
	counts := kindCounts(rec)
	if counts[obs.EvJoin] != int64(len(set)) {
		t.Errorf("EvJoin = %d, want %d", counts[obs.EvJoin], len(set))
	}
	if counts[obs.EvRelease] != observed.Jobs {
		t.Errorf("EvRelease = %d, Jobs = %d", counts[obs.EvRelease], observed.Jobs)
	}
	if counts[obs.EvMiss] != int64(len(observed.Misses)) {
		t.Errorf("EvMiss = %d, Misses = %d", counts[obs.EvMiss], len(observed.Misses))
	}
	if got := counts[obs.EvSchedule] + counts[obs.EvIdle]; got != m*horizon {
		t.Errorf("schedule(%d)+idle(%d) = %d, want m·horizon = %d",
			counts[obs.EvSchedule], counts[obs.EvIdle], got, m*horizon)
	}
}

// TestRunQuantaObserved: the variable-quantum counterexample run records
// schedule events carrying run lengths, its misses match the result, and
// observation does not perturb the simulation.
func TestRunQuantaObserved(t *testing.T) {
	vts, m, q, horizon := variableQuantaWorkload()
	rec := obs.NewRecorder(1 << 16)
	observed := RunQuanta(vts, m, q, horizon, Variable, engine.WithRecorder(rec))
	plain := RunQuanta(vts, m, q, horizon, Variable)

	if observed.Completed != plain.Completed || len(observed.Misses) != len(plain.Misses) {
		t.Fatalf("observation changed the run: %+v vs %+v", observed, plain)
	}
	if len(observed.Misses) == 0 {
		t.Fatal("variable-quantum counterexample no longer misses")
	}
	if rec.Dropped() != 0 {
		t.Fatalf("ring too small: dropped %d", rec.Dropped())
	}
	counts := kindCounts(rec)
	if counts[obs.EvMiss] != int64(len(observed.Misses)) {
		t.Errorf("EvMiss = %d, Misses = %d", counts[obs.EvMiss], len(observed.Misses))
	}
	if counts[obs.EvSchedule] == 0 {
		t.Error("no schedule events")
	}
	// Under Variable mode truncated runs exist by construction: some
	// schedule event must carry a run length shorter than the quantum.
	short := false
	for _, e := range rec.Events() {
		if e.Kind == obs.EvSchedule {
			if e.B < 1 || e.B > q {
				t.Fatalf("schedule run length %d outside (0, %d]", e.B, q)
			}
			if e.B < q {
				short = true
			}
		}
	}
	if !short {
		t.Error("no truncated quantum visible in the trace despite early completions")
	}
}
