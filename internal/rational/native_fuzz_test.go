package rational

import (
	"math"
	"math/big"
	"testing"
)

// FuzzRatArithmetic cross-checks Add and Mul against math/big on
// arbitrary operands: whenever the int64 implementation produces a value
// (rather than panicking as genuinely out of range), it must be the exact
// reduced big.Rat result.
func FuzzRatArithmetic(f *testing.F) {
	f.Add(int64(1), int64(2), int64(1), int64(3))
	f.Add(int64(1)<<62+1, int64(2), int64(1)<<62+1, int64(2))
	f.Add(int64(-5), int64(12), int64(7), int64(9))
	f.Fuzz(func(t *testing.T, an, ad, bn, bd int64) {
		if ad == 0 || bd == 0 {
			return
		}
		if an == math.MinInt64 || ad == math.MinInt64 || bn == math.MinInt64 || bd == math.MinInt64 {
			return // abs() overflows; New would misbehave before arithmetic is at fault
		}
		a, b := New(an, ad), New(bn, bd)
		try := func(op func(Rat, Rat) Rat) (r Rat, ok bool) {
			defer func() {
				if recover() != nil {
					ok = false
				}
			}()
			return op(a, b), true
		}
		ba := new(big.Rat).SetFrac64(an, ad)
		bb := new(big.Rat).SetFrac64(bn, bd)
		check := func(name string, got Rat, ok bool, want *big.Rat) {
			if !ok {
				// A panic is only legitimate when the reduced result
				// truly exceeds int64.
				if want.Num().IsInt64() && want.Denom().IsInt64() {
					t.Errorf("%s(%v, %v) panicked but %v is representable", name, a, b, want)
				}
				return
			}
			if got.Num() != want.Num().Int64() || got.Den() != want.Denom().Int64() {
				t.Errorf("%s(%v, %v) = %v, want %v", name, a, b, got, want)
			}
		}
		got, ok := try(Rat.Add)
		check("Add", got, ok, new(big.Rat).Add(ba, bb))
		got, ok = try(Rat.Mul)
		check("Mul", got, ok, new(big.Rat).Mul(ba, bb))
	})
}
