package rational

import "math/big"

// Acc is an exact arbitrary-precision rational accumulator.
//
// Rat deliberately restricts itself to int64 components, which is safe for
// per-task quantities (a task's lags and window bounds have denominators
// dividing its period). Sums across a task *set* — the Σ wt(T) of the
// feasibility condition (2) — have denominators near the lcm of all
// periods, which overflows int64 for realistic sets of hundreds of tasks
// with co-prime periods. Acc holds such sums exactly using math/big.
//
// The zero value is not usable; construct with NewAcc.
type Acc struct {
	v big.Rat
}

// NewAcc returns an accumulator holding zero.
func NewAcc() *Acc { return &Acc{} }

// Add adds r to the accumulator and returns it for chaining.
func (a *Acc) Add(r Rat) *Acc {
	var t big.Rat
	t.SetFrac64(r.Num(), r.Den())
	a.v.Add(&a.v, &t)
	return a
}

// Sub subtracts r from the accumulator and returns it for chaining.
func (a *Acc) Sub(r Rat) *Acc {
	var t big.Rat
	t.SetFrac64(r.Num(), r.Den())
	a.v.Sub(&a.v, &t)
	return a
}

// AddAcc adds another accumulator's value.
func (a *Acc) AddAcc(b *Acc) *Acc {
	a.v.Add(&a.v, &b.v)
	return a
}

// SubAcc subtracts another accumulator's value.
func (a *Acc) SubAcc(b *Acc) *Acc {
	a.v.Sub(&a.v, &b.v)
	return a
}

// MulRat multiplies the accumulator by r and returns it for chaining.
func (a *Acc) MulRat(r Rat) *Acc {
	var t big.Rat
	t.SetFrac64(r.Num(), r.Den())
	a.v.Mul(&a.v, &t)
	return a
}

// MulAcc multiplies by another accumulator's value.
func (a *Acc) MulAcc(b *Acc) *Acc {
	a.v.Mul(&a.v, &b.v)
	return a
}

// QuoAcc divides the accumulator by another accumulator's value. Like
// math/big, it panics on a zero divisor — a programmer error on par with
// integer division by zero.
func (a *Acc) QuoAcc(b *Acc) *Acc {
	a.v.Quo(&a.v, &b.v)
	return a
}

// SetInt sets the accumulator to the integer n and returns it.
func (a *Acc) SetInt(n int64) *Acc {
	a.v.SetInt64(n)
	return a
}

// Set copies another accumulator's value.
func (a *Acc) Set(b *Acc) *Acc {
	a.v.Set(&b.v)
	return a
}

// CmpAcc compares two accumulated values: −1 if a < b, 0 if equal, +1 if
// a > b.
func (a *Acc) CmpAcc(b *Acc) int { return a.v.Cmp(&b.v) }

// Clone returns an independent copy.
func (a *Acc) Clone() *Acc {
	c := NewAcc()
	c.v.Set(&a.v)
	return c
}

// Cmp compares the accumulated value with r: −1 if less, 0 if equal, +1 if
// greater.
func (a *Acc) Cmp(r Rat) int {
	var t big.Rat
	t.SetFrac64(r.Num(), r.Den())
	return a.v.Cmp(&t)
}

// CmpInt compares the accumulated value with the integer n.
func (a *Acc) CmpInt(n int64) int {
	var t big.Rat
	t.SetInt64(n)
	return a.v.Cmp(&t)
}

// Sign returns the sign of the accumulated value.
func (a *Acc) Sign() int { return a.v.Sign() }

// Ceil returns ⌈value⌉. It panics if the result does not fit in int64
// (impossible for task-weight sums, which are bounded by the task count).
func (a *Acc) Ceil() int64 {
	num := a.v.Num()
	den := a.v.Denom()
	var q, m big.Int
	q.QuoRem(num, den, &m)
	if m.Sign() != 0 && num.Sign() > 0 {
		q.Add(&q, big.NewInt(1))
	}
	if !q.IsInt64() {
		panic("rational: Acc.Ceil overflows int64")
	}
	return q.Int64()
}

// Float returns the nearest float64 for reporting.
func (a *Acc) Float() float64 {
	f, _ := a.v.Float64()
	return f
}

// String renders the exact value.
func (a *Acc) String() string { return a.v.RatString() }

// Rat returns the value as an int64 Rat if it fits, with ok reporting
// whether it did.
func (a *Acc) Rat() (r Rat, ok bool) {
	if !a.v.Num().IsInt64() || !a.v.Denom().IsInt64() {
		return Zero(), false
	}
	return New(a.v.Num().Int64(), a.v.Denom().Int64()), true
}
