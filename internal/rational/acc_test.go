package rational

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccBasics(t *testing.T) {
	a := NewAcc()
	if a.Sign() != 0 {
		t.Error("fresh Acc not zero")
	}
	a.Add(New(1, 2)).Add(New(1, 3)).Add(New(1, 6))
	if a.CmpInt(1) != 0 {
		t.Errorf("1/2+1/3+1/6 = %v, want 1", a)
	}
	if a.Sign() != 1 {
		t.Error("positive Acc sign mismatch")
	}
	a.Sub(New(3, 2))
	if a.Cmp(New(-1, 2)) != 0 {
		t.Errorf("after Sub: %v, want -1/2", a)
	}
	if a.Sign() != -1 {
		t.Error("negative Acc sign mismatch")
	}
	if a.String() != "-1/2" {
		t.Errorf("String = %q", a.String())
	}
}

func TestAccCeilFloatClone(t *testing.T) {
	a := NewAcc().Add(New(7, 3)) // 2.333…
	if got := a.Ceil(); got != 3 {
		t.Errorf("Ceil = %d, want 3", got)
	}
	if f := a.Float(); f < 2.33 || f > 2.34 {
		t.Errorf("Float = %v", f)
	}
	b := a.Clone()
	b.Add(One())
	if a.Cmp(New(7, 3)) != 0 {
		t.Error("Clone is not independent")
	}
	if b.Cmp(New(10, 3)) != 0 {
		t.Errorf("clone+1 = %v, want 10/3", b)
	}
	// Negative and integer ceilings.
	if got := NewAcc().Sub(New(7, 3)).Ceil(); got != -2 {
		t.Errorf("Ceil(-7/3) = %d, want -2", got)
	}
	if got := NewAcc().Add(FromInt(5)).Ceil(); got != 5 {
		t.Errorf("Ceil(5) = %d, want 5", got)
	}
}

func TestAccAddAcc(t *testing.T) {
	a := NewAcc().Add(New(1, 3))
	b := NewAcc().Add(New(2, 3))
	a.AddAcc(b)
	if a.CmpInt(1) != 0 {
		t.Errorf("AddAcc = %v, want 1", a)
	}
}

func TestAccRatRoundTrip(t *testing.T) {
	a := NewAcc().Add(New(8, 11)).Sub(New(1, 11))
	r, ok := a.Rat()
	if !ok || !r.Equal(New(7, 11)) {
		t.Errorf("Rat = %v (%v)", r, ok)
	}
	// A sum whose reduced denominator exceeds int64 does not fit: build
	// one from many co-prime denominators.
	big := NewAcc()
	for _, p := range []int64{1000003, 1000033, 1000037, 1000039, 1000081, 1000099, 1000117, 1000121} {
		big.Add(New(1, p))
	}
	if _, ok := big.Rat(); ok {
		t.Error("astronomical denominator claimed to fit in int64")
	}
	if big.Sign() != 1 || big.CmpInt(1) >= 0 {
		t.Error("big sum out of expected range")
	}
}

// TestQuickAccMatchesRat: on moderate inputs Acc arithmetic agrees with
// the int64 Rat arithmetic.
func TestQuickAccMatchesRat(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		acc := NewAcc()
		sum := Zero()
		for i := 0; i < 12; i++ {
			x := New(r.Int63n(2001)-1000, r.Int63n(50)+1)
			acc.Add(x)
			sum = sum.Add(x)
		}
		if acc.Cmp(sum) != 0 {
			return false
		}
		got, ok := acc.Rat()
		return ok && got.Equal(sum)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickAccCeilMatchesRatCeil: Ceil agrees with Rat.Ceil on values that
// fit.
func TestQuickAccCeilMatchesRatCeil(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := New(r.Int63n(200001)-100000, r.Int63n(1000)+1)
		return NewAcc().Add(x).Ceil() == x.Ceil()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
