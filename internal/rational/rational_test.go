package rational

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewReduces(t *testing.T) {
	cases := []struct {
		num, den         int64
		wantNum, wantDen int64
	}{
		{2, 4, 1, 2},
		{8, 11, 8, 11},
		{-2, 4, -1, 2},
		{2, -4, -1, 2},
		{-2, -4, 1, 2},
		{0, 5, 0, 1},
		{0, -5, 0, 1},
		{6, 3, 2, 1},
		{45, 45, 1, 1},
	}
	for _, c := range cases {
		r := New(c.num, c.den)
		if r.Num() != c.wantNum || r.Den() != c.wantDen {
			t.Errorf("New(%d,%d) = %d/%d, want %d/%d", c.num, c.den, r.Num(), r.Den(), c.wantNum, c.wantDen)
		}
	}
}

func TestNewPanicsOnZeroDen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1, 0) did not panic")
		}
	}()
	New(1, 0)
}

func TestZeroValueIsZero(t *testing.T) {
	var r Rat
	if !r.IsZero() {
		t.Error("zero value Rat is not zero")
	}
	if got := r.Add(New(1, 2)); !got.Equal(New(1, 2)) {
		t.Errorf("0 + 1/2 = %v", got)
	}
	if r.String() != "0" {
		t.Errorf("zero value String = %q", r.String())
	}
}

func TestArithmetic(t *testing.T) {
	half := New(1, 2)
	third := New(1, 3)
	if got := half.Add(third); !got.Equal(New(5, 6)) {
		t.Errorf("1/2 + 1/3 = %v, want 5/6", got)
	}
	if got := half.Sub(third); !got.Equal(New(1, 6)) {
		t.Errorf("1/2 - 1/3 = %v, want 1/6", got)
	}
	if got := half.Mul(third); !got.Equal(New(1, 6)) {
		t.Errorf("1/2 * 1/3 = %v, want 1/6", got)
	}
	if got := half.Div(third); !got.Equal(New(3, 2)) {
		t.Errorf("(1/2) / (1/3) = %v, want 3/2", got)
	}
	if got := half.Neg(); !got.Equal(New(-1, 2)) {
		t.Errorf("-(1/2) = %v", got)
	}
	if got := third.MulInt(6); !got.Equal(FromInt(2)) {
		t.Errorf("1/3 * 6 = %v, want 2", got)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("division by zero did not panic")
		}
	}()
	One().Div(Zero())
}

func TestCmp(t *testing.T) {
	cases := []struct {
		a, b Rat
		want int
	}{
		{New(1, 2), New(1, 3), 1},
		{New(1, 3), New(1, 2), -1},
		{New(2, 4), New(1, 2), 0},
		{New(-1, 2), New(1, 2), -1},
		{New(-1, 2), New(-1, 3), -1},
		{Zero(), Zero(), 0},
		{New(8, 11), New(3, 4), -1}, // 0.7272… < 0.75
		{FromInt(math.MaxInt64 / 2), FromInt(math.MaxInt64/2 - 1), 1},
	}
	for _, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("Cmp(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestCmpNoOverflow uses denominators near the int64 limit where a naive
// cross-multiplication would overflow.
func TestCmpNoOverflow(t *testing.T) {
	big := int64(3037000499) // ~sqrt(MaxInt64)
	a := New(big, big+1)
	b := New(big-1, big)
	// a = big/(big+1), b = (big-1)/big; a - b = 1/(big(big+1)) > 0.
	if got := a.Cmp(b); got != 1 {
		t.Errorf("Cmp near overflow = %d, want 1", got)
	}
	if got := b.Cmp(a); got != -1 {
		t.Errorf("reverse Cmp near overflow = %d, want -1", got)
	}
}

func TestFloorCeil(t *testing.T) {
	cases := []struct {
		r           Rat
		floor, ceil int64
	}{
		{New(7, 2), 3, 4},
		{New(-7, 2), -4, -3},
		{New(6, 2), 3, 3},
		{New(-6, 2), -3, -3},
		{Zero(), 0, 0},
		{New(1, 1000), 0, 1},
		{New(-1, 1000), -1, 0},
	}
	for _, c := range cases {
		if got := c.r.Floor(); got != c.floor {
			t.Errorf("Floor(%v) = %d, want %d", c.r, got, c.floor)
		}
		if got := c.r.Ceil(); got != c.ceil {
			t.Errorf("Ceil(%v) = %d, want %d", c.r, got, c.ceil)
		}
	}
}

func TestFloorCeilDiv(t *testing.T) {
	for a := int64(-20); a <= 20; a++ {
		for b := int64(1); b <= 7; b++ {
			wantF := int64(math.Floor(float64(a) / float64(b)))
			wantC := int64(math.Ceil(float64(a) / float64(b)))
			if got := FloorDiv(a, b); got != wantF {
				t.Errorf("FloorDiv(%d,%d) = %d, want %d", a, b, got, wantF)
			}
			if got := CeilDiv(a, b); got != wantC {
				t.Errorf("CeilDiv(%d,%d) = %d, want %d", a, b, got, wantC)
			}
		}
	}
}

func TestGCDLCM(t *testing.T) {
	if got := GCD(12, 18); got != 6 {
		t.Errorf("GCD(12,18) = %d", got)
	}
	if got := GCD(0, 5); got != 5 {
		t.Errorf("GCD(0,5) = %d", got)
	}
	if got := GCD(-12, 18); got != 6 {
		t.Errorf("GCD(-12,18) = %d", got)
	}
	if got := LCM(4, 6); got != 12 {
		t.Errorf("LCM(4,6) = %d", got)
	}
	if got := LCM(0, 6); got != 0 {
		t.Errorf("LCM(0,6) = %d", got)
	}
	if got := LCM(7, 13); got != 91 {
		t.Errorf("LCM(7,13) = %d", got)
	}
}

func TestString(t *testing.T) {
	if s := New(8, 11).String(); s != "8/11" {
		t.Errorf("String = %q", s)
	}
	if s := New(4, 2).String(); s != "2" {
		t.Errorf("String = %q", s)
	}
	if s := New(-1, 2).String(); s != "-1/2" {
		t.Errorf("String = %q", s)
	}
}

func TestSum(t *testing.T) {
	rs := []Rat{New(1, 2), New(1, 3), New(1, 6)}
	if got := Sum(rs); !got.Equal(One()) {
		t.Errorf("Sum = %v, want 1", got)
	}
	if got := Sum(nil); !got.IsZero() {
		t.Errorf("Sum(nil) = %v, want 0", got)
	}
}

// randRat generates rationals with moderate components so quick-check
// arithmetic cannot overflow even after a few combined operations.
func randRat(r *rand.Rand) Rat {
	num := r.Int63n(2000001) - 1000000
	den := r.Int63n(1000000) + 1
	return New(num, den)
}

func TestQuickAddCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randRat(r), randRat(r)
		return a.Add(b).Equal(b.Add(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAddAssociative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randRat(r), randRat(r), randRat(r)
		return a.Add(b).Add(c).Equal(a.Add(b.Add(c)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMulDistributes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randRat(r), randRat(r), randRat(r)
		return a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubInverse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randRat(r), randRat(r)
		return a.Add(b).Sub(b).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCmpMatchesFloat(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randRat(r), randRat(r)
		fa, fb := a.Float(), b.Float()
		if math.Abs(fa-fb) < 1e-9 {
			return true // too close for float comparison to be trustworthy
		}
		want := 1
		if fa < fb {
			want = -1
		}
		return a.Cmp(b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFloorCeilConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randRat(r)
		fl, ce := a.Floor(), a.Ceil()
		if a.Den() == 1 {
			return fl == ce && fl == a.Num()
		}
		return ce == fl+1 && FromInt(fl).Less(a) && a.Less(FromInt(ce))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDivMulRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randRat(r), randRat(r)
		if b.IsZero() {
			return true
		}
		return a.Div(b).Mul(b).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	x, y := New(8, 11), New(7, 13)
	for i := 0; i < b.N; i++ {
		_ = x.Add(y)
	}
}

func BenchmarkCmp(b *testing.B) {
	x, y := New(8, 11), New(7, 13)
	for i := 0; i < b.N; i++ {
		_ = x.Cmp(y)
	}
}

// TestAddBigFallbackAtPriorPanicBoundary: before the math/big fallback,
// Add panicked whenever an int64 intermediate overflowed, even when the
// reduced result fits comfortably. (2^62+1)/2 + (2^62+1)/2 = 2^62+1 is
// exactly such a case: the numerator sum overflows int64 but the result is
// a plain integer. Long-horizon lag accumulations in fuzz runs hit this.
func TestAddBigFallbackAtPriorPanicBoundary(t *testing.T) {
	const big62 = int64(1)<<62 + 1 // odd, so num/den stay coprime
	a := New(big62, 2)
	got := a.Add(a)
	if want := FromInt(big62); !got.Equal(want) {
		t.Fatalf("Add fallback: got %v, want %v", got, want)
	}
	// Subtraction through the same path: the intermediates overflow but
	// the difference is zero.
	if d := a.Sub(a); !d.IsZero() {
		t.Fatalf("Sub fallback: got %v, want 0", d)
	}
	// Denominator-side fallback: 1/(3·2^61) + 1/2^61 = 4/(3·2^61). The lcm
	// intermediate a·b overflows but the reduced result fits.
	x := New(1, 3*(int64(1)<<61))
	y := New(1, int64(1)<<61)
	if got, want := x.Add(y), New(4, 3*(int64(1)<<61)); !got.Equal(want) {
		t.Fatalf("denominator fallback: got %v, want %v", got, want)
	}
}

// TestMulBigFallback: cross-reduction leaves Mul's result in lowest terms,
// so an overflow there is genuinely unrepresentable — the fallback must
// still panic, now with the precise reduced value in the message.
func TestMulBigFallback(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul of an unrepresentable product did not panic")
		}
	}()
	New(int64(1)<<62, 3).Mul(New(int64(1)<<62, 5))
}

// TestAddStillPanicsWhenTrulyOutOfRange: a sum whose lowest-terms
// denominator exceeds int64 must still refuse.
func TestAddStillPanicsWhenTrulyOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add of an unrepresentable sum did not panic")
		}
	}()
	// 1/(2^40) + 1/(3^25): denominators coprime, lcm ≈ 9.3·10^23.
	p3 := int64(1)
	for i := 0; i < 25; i++ {
		p3 *= 3
	}
	New(1, int64(1)<<40).Add(New(1, p3))
}
