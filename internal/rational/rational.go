// Package rational implements exact arithmetic on rational numbers with
// int64 numerators and denominators.
//
// Pfair scheduling theory is stated in terms of exact task weights
// wt(T) = e/p and exact per-slot lags lag(T, t) = wt(T)·t − allocated(T, t).
// The correctness condition −1 < lag < 1 (Equation (1) of the paper) is a
// strict inequality on rationals; evaluating it in floating point can
// misclassify schedules whose lag touches the bound. Every lag and weight
// computation in this repository therefore uses this package.
//
// Values are kept in lowest terms with a positive denominator, so Rat is
// comparable with == and usable as a map key. Add and Mul reduce by gcd
// before multiplying so intermediates stay small; when an intermediate
// still overflows int64 they redo the operation exactly in math/big and
// convert back, so any result that fits int64 after reduction is returned
// exactly. Only a result that is out of int64 range even in lowest terms
// panics: long-horizon lag accumulations stay exact, and a panic signals a
// genuinely unrepresentable value rather than an unlucky intermediate.
package rational

import (
	"fmt"
	"math/big"
	"math/bits"
)

// Rat is an exact rational number. The zero value is 0/1, i.e. zero.
type Rat struct {
	num int64 // may be negative; zero iff the value is zero
	den int64 // always > 0; 1 when num == 0
}

// New returns the rational num/den in lowest terms. It panics if den == 0.
//
//pfair:hotpath
func New(num, den int64) Rat {
	if den == 0 {
		panic("rational: zero denominator")
	}
	if den < 0 {
		num, den = -num, -den
	}
	if num == 0 {
		return Rat{0, 1}
	}
	g := gcd(abs(num), den)
	return Rat{num / g, den / g}
}

// FromInt returns the rational n/1.
func FromInt(n int64) Rat { return Rat{n, 1} }

// Zero returns the rational 0.
func Zero() Rat { return Rat{0, 1} }

// One returns the rational 1.
func One() Rat { return Rat{1, 1} }

// Num returns the numerator in lowest terms (sign carried here).
//
//pfair:hotpath
func (r Rat) Num() int64 { return r.normalized().num }

// Den returns the denominator in lowest terms (always positive).
//
//pfair:hotpath
func (r Rat) Den() int64 { return r.normalized().den }

// normalized maps the zero value Rat{} to the canonical 0/1.
//
//pfair:hotpath
func (r Rat) normalized() Rat {
	if r.den == 0 {
		return Rat{0, 1}
	}
	return r
}

// Add returns r + s.
func (r Rat) Add(s Rat) Rat {
	r, s = r.normalized(), s.normalized()
	// r.num/r.den + s.num/s.den over the lcm denominator.
	g := gcd(r.den, s.den)
	ld, ok1 := mulOK(r.den/g, s.den)
	a, ok2 := mulOK(r.num, s.den/g)
	b, ok3 := mulOK(s.num, r.den/g)
	if ok1 && ok2 && ok3 {
		if sum, ok := addOK(a, b); ok {
			return New(sum, ld)
		}
	}
	return bigFallback(r, s, (*big.Rat).Add)
}

// Sub returns r − s.
func (r Rat) Sub(s Rat) Rat { return r.Add(s.Neg()) }

// Neg returns −r.
func (r Rat) Neg() Rat { r = r.normalized(); return Rat{-r.num, r.den} }

// Mul returns r · s.
func (r Rat) Mul(s Rat) Rat {
	r, s = r.normalized(), s.normalized()
	// Cross-reduce before multiplying to keep intermediates small.
	g1 := gcd(abs(r.num), s.den)
	g2 := gcd(abs(s.num), r.den)
	num, ok1 := mulOK(r.num/g1, s.num/g2)
	den, ok2 := mulOK(r.den/g2, s.den/g1)
	if ok1 && ok2 {
		return New(num, den)
	}
	return bigFallback(r, s, (*big.Rat).Mul)
}

// MulInt returns r · n.
func (r Rat) MulInt(n int64) Rat { return r.Mul(FromInt(n)) }

// Div returns r / s. It panics if s is zero.
func (r Rat) Div(s Rat) Rat {
	s = s.normalized()
	if s.num == 0 {
		panic("rational: division by zero")
	}
	return r.Mul(Rat{s.den, s.num}.canon())
}

// canon restores the positive-denominator invariant after an inversion.
func (r Rat) canon() Rat {
	if r.den < 0 {
		return Rat{-r.num, -r.den}
	}
	return r
}

// Cmp returns −1, 0, or +1 according to whether r < s, r == s, or r > s.
//
//pfair:hotpath
func (r Rat) Cmp(s Rat) int {
	r, s = r.normalized(), s.normalized()
	// Compare r.num·s.den with s.num·r.den using 128-bit products so the
	// comparison itself cannot overflow.
	lhsHi, lhsLo := mul128(r.num, s.den)
	rhsHi, rhsLo := mul128(s.num, r.den)
	switch {
	case lhsHi < rhsHi:
		return -1
	case lhsHi > rhsHi:
		return 1
	case lhsLo < rhsLo:
		return -1
	case lhsLo > rhsLo:
		return 1
	}
	return 0
}

// Less reports whether r < s.
//
//pfair:hotpath
func (r Rat) Less(s Rat) bool { return r.Cmp(s) < 0 }

// LessEq reports whether r ≤ s.
func (r Rat) LessEq(s Rat) bool { return r.Cmp(s) <= 0 }

// Equal reports whether r == s.
func (r Rat) Equal(s Rat) bool { return r.Cmp(s) == 0 }

// Sign returns −1, 0, or +1 according to the sign of r.
func (r Rat) Sign() int {
	r = r.normalized()
	switch {
	case r.num < 0:
		return -1
	case r.num > 0:
		return 1
	}
	return 0
}

// IsZero reports whether r is zero.
func (r Rat) IsZero() bool { return r.normalized().num == 0 }

// Floor returns ⌊r⌋.
func (r Rat) Floor() int64 {
	r = r.normalized()
	q := r.num / r.den
	if r.num%r.den != 0 && r.num < 0 {
		q--
	}
	return q
}

// Ceil returns ⌈r⌉.
func (r Rat) Ceil() int64 {
	r = r.normalized()
	q := r.num / r.den
	if r.num%r.den != 0 && r.num > 0 {
		q++
	}
	return q
}

// Float returns the nearest float64 (for reporting only — never used in
// scheduling decisions).
func (r Rat) Float() float64 {
	r = r.normalized()
	//pfair:allowfloat the sanctioned reporting bridge itself; ratfloat polices its callers
	return float64(r.num) / float64(r.den)
}

// String renders r as "num/den", or just "num" for integers.
func (r Rat) String() string {
	r = r.normalized()
	if r.den == 1 {
		return fmt.Sprintf("%d", r.num)
	}
	return fmt.Sprintf("%d/%d", r.num, r.den)
}

// Sum returns the sum of rs, or zero for an empty slice.
func Sum(rs []Rat) Rat {
	total := Zero()
	for _, r := range rs {
		total = total.Add(r)
	}
	return total
}

// FloorDiv returns ⌊a/b⌋ for b > 0, exact for all int64 a.
//
//pfair:hotpath
func FloorDiv(a, b int64) int64 {
	if b <= 0 {
		panic("rational: FloorDiv requires b > 0")
	}
	q := a / b
	if a%b != 0 && a < 0 {
		q--
	}
	return q
}

// CeilDiv returns ⌈a/b⌉ for b > 0, exact for all int64 a.
//
//pfair:hotpath
func CeilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("rational: CeilDiv requires b > 0")
	}
	q := a / b
	if a%b != 0 && a > 0 {
		q++
	}
	return q
}

// GCD returns the greatest common divisor of a and b (gcd(0,0) = 0).
func GCD(a, b int64) int64 { return gcd(abs(a), abs(b)) }

// LCM returns the least common multiple of a and b. It panics on overflow.
func LCM(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	a, b = abs(a), abs(b)
	return mulCheck(a/gcd(a, b), b)
}

// LCMOK is LCM returning ok=false instead of panicking on int64 overflow,
// for callers (CLIs, admission paths) that must report the error rather
// than crash.
func LCMOK(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	a, b = abs(a), abs(b)
	return mulOK(a/gcd(a, b), b)
}

//pfair:hotpath
func abs(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

//pfair:hotpath
func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func addOK(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s <= 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func mulOK(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

func mulCheck(a, b int64) int64 {
	p, ok := mulOK(a, b)
	if !ok {
		panic("rational: int64 overflow in multiplication")
	}
	return p
}

// bigFallback redoes a binary operation exactly in math/big when the int64
// fast path overflowed. big.Rat keeps results in lowest terms with a
// positive denominator, so a result whose reduced components fit int64
// converts back losslessly; anything larger is genuinely unrepresentable.
func bigFallback(r, s Rat, op func(z, x, y *big.Rat) *big.Rat) Rat {
	var x, y big.Rat
	x.SetFrac64(r.num, r.den)
	y.SetFrac64(s.num, s.den)
	op(&x, &x, &y)
	if !x.Num().IsInt64() || !x.Denom().IsInt64() {
		panic(fmt.Sprintf("rational: %s/%s out of int64 range after reduction", x.Num(), x.Denom()))
	}
	n, d := x.Num().Int64(), x.Denom().Int64()
	if n == 0 {
		return Rat{0, 1}
	}
	return Rat{n, d}
}

// mul128 returns the signed 128-bit product a·b as (hi, lo) in two's
// complement, suitable for lexicographic comparison.
//
//pfair:hotpath
func mul128(a, b int64) (hi int64, lo uint64) {
	neg := false
	ua, ub := uint64(a), uint64(b)
	if a < 0 {
		ua = uint64(-a)
		neg = !neg
	}
	if b < 0 {
		ub = uint64(-b)
		neg = !neg
	}
	h, l := bits.Mul64(ua, ub)
	if neg {
		// Two's complement negate the 128-bit value (h, l).
		l = ^l + 1
		h = ^h
		if l == 0 {
			h++
		}
	}
	return int64(h), l
}
