package rm

import (
	"fmt"

	"pfair/internal/admission"
	"pfair/internal/calq"
	"pfair/internal/engine"
	"pfair/internal/heap"
	"pfair/internal/task"
)

// This file implements engine.Dynamic for the RM simulator: mid-run
// join, leave, and reweight through the unified admission plane.
//
// The simulator is event-driven, so every instant between engine steps
// is a scheduling boundary; transactions apply at the current engine
// instant. Feasibility is the hyperbolic bound Π(uᵢ+1) ≤ 2 over the
// prospective live set — sufficient for RM from any release phasing
// (the critical-instant argument), so a mid-run join it admits meets
// all deadlines. Leaves cancel the task's in-flight jobs (running and
// ready) and exclude them from miss accounting: a voluntary departure
// abandons its remaining work, and removing a task can only help the
// ones that stay. Reweight is leave-and-rejoin: the bound is checked
// with the old parameters replaced by the new, and the new incarnation
// releases synchronously at the current instant.
//
// RM has no trace-recorder integration, so the plane carries the
// transaction ledger and the admission counters only; no events.

var _ engine.Dynamic = (*Simulator)(nil)

// liveSet returns the live tasks, excluding the named one (empty string
// excludes nothing). The hyperbolic product is order-independent, so the
// map-order walk is fine.
func (s *Simulator) liveSet(except string) task.Set {
	set := make(task.Set, 0, len(s.tasks))
	for name, ts := range s.tasks { //pfair:orderinvariant feeds an order-independent exact product
		if name == except {
			continue
		}
		set = append(set, ts.t)
	}
	return set
}

// admit installs a validated, feasibility-checked task with its first
// release at the current engine instant, growing (or abandoning) the
// timer wheel if the new period demands it.
func (s *Simulator) admit(t *task.Task) {
	ts := &tstate{t: t, nextJob: 1, nextRelease: s.eng.Now()}
	ts.relItem = heap.NewItem(ts)
	ts.relWItem = calq.NewItem(ts)
	s.tasks[t.Name] = ts
	if !s.relHeap {
		if t.Period > calq.DefaultSpanCap {
			// Timers this sparse would mix rounds constantly; move every
			// armed timer to the heap and stay there, as edf does.
			s.relHeap = true
			for _, o := range s.tasks { //pfair:orderinvariant heap order is (nextRelease, name), independent of push order
				if o.relWItem.Queued() {
					s.relWheel.Remove(o.relWItem)
					s.releases.PushItem(o.relItem)
				}
			}
		} else {
			s.relWheel.EnsureSpan(t.Period)
			s.relWheel.Reserve(len(s.tasks))
		}
	}
	s.armRelease(ts)
}

// remove departs a task immediately: disarm its release timer, cancel
// its in-flight jobs, and drop it from the live set.
func (s *Simulator) remove(ts *tstate) {
	if s.relHeap {
		if ts.relItem.Index() >= 0 {
			s.releases.Remove(ts.relItem)
		}
	} else if ts.relWItem.Queued() {
		s.relWheel.Remove(ts.relWItem)
	}
	if s.running != nil && s.running.ts == ts {
		s.running = nil
	}
	var cancelled []*heap.Item[*job]
	for _, it := range s.ready.Items() {
		if it.Value.ts == ts {
			cancelled = append(cancelled, it)
		}
	}
	for _, it := range cancelled {
		s.ready.Remove(it)
	}
	delete(s.tasks, ts.t.Name)
}

// Submit implements engine.Dynamic: transactional join/leave/reweight
// through the admission plane. It must be called between engine steps,
// never from inside a phase method. Cold path.
func (s *Simulator) Submit(req admission.Request) (admission.Decision, error) {
	if err := req.Validate(); err != nil {
		return admission.Decision{}, s.plane.Reject(req.Op, err)
	}
	now := s.eng.Now()
	switch req.Op {
	case admission.OpJoin:
		if req.Model != nil {
			return admission.Decision{}, s.plane.Reject(req.Op,
				fmt.Errorf("rm: join model %T is not supported", req.Model))
		}
		if _, dup := s.tasks[req.Task.Name]; dup {
			return admission.Decision{}, s.plane.Reject(req.Op,
				fmt.Errorf("rm: task %q already admitted", req.Task.Name))
		}
		if err := admission.Hyperbolic(s.liveSet(""), req.Task); err != nil {
			return admission.Decision{}, s.plane.Reject(req.Op, err)
		}
		s.admit(req.Task)
		d := admission.Decision{Op: req.Op, Name: req.Task.Name, EffectiveAt: now}
		s.plane.Commit(d)
		return d, nil

	case admission.OpLeave, admission.OpFinish:
		ts, ok := s.tasks[req.Name]
		if !ok {
			return admission.Decision{}, s.plane.Reject(req.Op,
				fmt.Errorf("rm: unknown task %q", req.Name))
		}
		s.remove(ts)
		d := admission.Decision{Op: req.Op, Name: req.Name, EffectiveAt: now}
		s.plane.Commit(d)
		return d, nil

	case admission.OpReweight:
		ts, ok := s.tasks[req.Name]
		if !ok {
			return admission.Decision{}, s.plane.Reject(req.Op,
				fmt.Errorf("rm: unknown task %q", req.Name))
		}
		nt := *ts.t
		nt.Cost, nt.Period = req.NewCost, req.NewPeriod
		if err := admission.Hyperbolic(s.liveSet(req.Name), &nt); err != nil {
			return admission.Decision{}, s.plane.Reject(req.Op, err)
		}
		s.remove(ts)
		s.admit(&nt)
		d := admission.Decision{Op: req.Op, Name: req.Name, EffectiveAt: now}
		s.plane.Commit(d)
		return d, nil
	}
	return admission.Decision{}, s.plane.Reject(req.Op,
		fmt.Errorf("admission: unknown op %d", req.Op))
}

// AdmissionLog returns the accepted dynamic-task transactions in commit
// order.
func (s *Simulator) AdmissionLog() []admission.Decision { return s.plane.Log() }

// AdmissionRejects returns how many dynamic-task requests were refused.
func (s *Simulator) AdmissionRejects() int64 { return s.plane.Rejects() }
