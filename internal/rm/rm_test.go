package rm

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pfair/internal/task"
)

func TestLiuLaylandBound(t *testing.T) {
	if got := LiuLaylandBound(1); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("LL(1) = %v, want 1", got)
	}
	if got := LiuLaylandBound(2); math.Abs(got-2*(math.Sqrt2-1)) > 1e-12 {
		t.Errorf("LL(2) = %v, want 2(√2−1)", got)
	}
	if got := LiuLaylandBound(1000); math.Abs(got-math.Ln2) > 1e-3 {
		t.Errorf("LL(1000) = %v, want ≈ ln 2", got)
	}
	if got := LiuLaylandBound(0); got != 0 {
		t.Errorf("LL(0) = %v, want 0", got)
	}
}

func TestBoundsOnClassicExamples(t *testing.T) {
	// The canonical Liu–Layland example: u = 0.5 + 0.25 + 0.25... a set
	// at exactly the n=2 bound is schedulable.
	set := task.Set{task.MustNew("A", 1, 2), task.MustNew("B", 2, 5)} // u = 0.9
	if SchedulableLL(set) {
		t.Error("0.9 should exceed the n=2 LL bound (0.828)")
	}
	// But the exact test accepts it: R_A = 1, R_B = 2 + ceil(R/2)*1 →
	// R=4: 2+2=4 ✤ fits in 5.
	if !Schedulable(set) {
		t.Error("exact test should accept {1/2, 2/5}")
	}
	// Hyperbolic is between LL and exact: (1.5)(1.4) = 2.1 > 2 → reject.
	if SchedulableHyperbolic(set) {
		t.Error("hyperbolic should reject this set")
	}
}

func TestResponseTimes(t *testing.T) {
	// Worked example: tasks (1,4), (2,6), (3,13) in RM order.
	set := task.Set{task.MustNew("A", 1, 4), task.MustNew("B", 2, 6), task.MustNew("C", 3, 13)}
	resp, ok := ResponseTimes(set)
	if !ok {
		t.Fatal("set should be schedulable")
	}
	// R_A = 1. R_B = 2 + ceil(R/4)*1 → R = 3. R_C: 3 + ceil(R/4) + 2*ceil(R/6):
	// start 3 → 3+1+2=6 → 3+2+2=7 → 3+2+4=9 → 3+3+4=10 → 3+3+4=10 ✓
	want := []int64{1, 3, 10}
	for i := range want {
		if resp[i] != want[i] {
			t.Errorf("R[%d] = %d, want %d", i, resp[i], want[i])
		}
	}
}

func TestUnschedulableExact(t *testing.T) {
	// {3/6, 4/9}: u ≈ 0.944 ≤ 1 (EDF-schedulable) but RM-infeasible:
	// R_B = 4 + ⌈R/6⌉·3 diverges past 9.
	set := task.Set{task.MustNew("A", 3, 6), task.MustNew("B", 4, 9)}
	resp, ok := ResponseTimes(set)
	if ok {
		t.Fatal("expected unschedulable")
	}
	if resp[1] != -1 {
		t.Errorf("diverging response = %d, want -1", resp[1])
	}
}

func TestHarmonicFullUtilization(t *testing.T) {
	// Harmonic periods allow 100% utilization under RM.
	set := task.Set{task.MustNew("A", 1, 2), task.MustNew("B", 1, 4), task.MustNew("C", 2, 8)}
	if !Schedulable(set) {
		t.Error("harmonic full-utilization set should pass the exact test")
	}
	if SchedulableLL(set) {
		t.Error("the LL bound cannot accept utilization 1")
	}
}

// TestSimulatorMatchesSingleTask sanity-checks the simulator.
func TestSimulatorMatchesSingleTask(t *testing.T) {
	set := task.Set{task.MustNew("T", 2, 5)}
	s := NewSimulator(set)
	s.Run(50)
	st := s.Stats()
	if st.Jobs != 10 || st.Completed != 10 || len(st.Misses) != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestQuickExactTestMatchesSimulation: the response-time analysis agrees
// with simulating one hyperperiod from the synchronous critical instant.
func TestQuickExactTestMatchesSimulation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		var set task.Set
		for i := 0; i < n; i++ {
			p := int64(2 + r.Intn(16))
			e := int64(1 + r.Intn(int(p)))
			set = append(set, task.MustNew(fmt.Sprintf("T%d", i), e, p))
		}
		if set.TotalUtilization() > 1.2 {
			return true // hopeless overloads make hyperperiod runs slow
		}
		analytic := Schedulable(set)
		s := NewSimulator(set)
		h := set.Hyperperiod()
		if h > 100000 {
			return true
		}
		s.Run(h)
		simulated := len(s.Stats().Misses) == 0
		if analytic != simulated {
			t.Logf("set %v: analytic=%v simulated=%v", set, analytic, simulated)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickBoundHierarchy: LL ⊆ hyperbolic ⊆ exact — a set accepted by a
// weaker test is accepted by every stronger one.
func TestQuickBoundHierarchy(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		var set task.Set
		for i := 0; i < n; i++ {
			p := int64(2 + r.Intn(40))
			e := int64(1 + r.Intn(int(p)))
			set = append(set, task.MustNew(fmt.Sprintf("T%d", i), e, p))
		}
		ll := SchedulableLL(set)
		hyp := SchedulableHyperbolic(set)
		exact := Schedulable(set)
		if ll && !hyp {
			return false
		}
		if hyp && !exact {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickPreemptionsBounded: fixed-priority preemptions are bounded by
// the number of higher-priority job releases.
func TestQuickPreemptionsBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var set task.Set
		u := 0.0
		for i := 0; i < 4; i++ {
			p := int64(2 + r.Intn(20))
			e := int64(1 + r.Intn(int(p)))
			if u+float64(e)/float64(p) > 1 {
				continue
			}
			u += float64(e) / float64(p)
			set = append(set, task.MustNew(fmt.Sprintf("T%d", i), e, p))
		}
		if len(set) == 0 {
			return true
		}
		s := NewSimulator(set)
		s.Run(4000)
		st := s.Stats()
		return st.Preemptions <= st.Jobs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
