// Package rm implements uniprocessor rate-monotonic (RM) fixed-priority
// scheduling: the Liu–Layland and hyperbolic utilization bounds, the exact
// response-time (time-demand) schedulability test of Lehoczky, Sha, and
// Ding [25], and a preemptive fixed-priority simulator.
//
// The paper discusses RM as the other popular partitioning companion
// (RM-FF, Section 3) and notes its drawbacks: the guaranteed multiprocessor
// utilization under RM-FF is only 41% (Oh & Baker [30]), and using the
// exact test instead of the 69% utilization bound turns partitioning into a
// variable-sized-bin-packing problem. This package provides both tests so
// internal/partition can exhibit exactly that trade-off.
package rm

import (
	"math"
	"sort"

	"pfair/internal/admission"
	"pfair/internal/calq"
	"pfair/internal/engine"
	"pfair/internal/heap"
	"pfair/internal/rational"
	"pfair/internal/task"
)

// LiuLaylandBound returns the classic utilization bound n·(2^{1/n} − 1) for
// n tasks; any set with Σu below it is RM-schedulable. The bound tends to
// ln 2 ≈ 0.693 as n grows.
//
//pfair:allowfloat n·(2^{1/n} − 1) is irrational; no exact rational representation exists
func LiuLaylandBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

// SchedulableLL applies the Liu–Layland sufficient test.
//
//pfair:allowfloat the bound is irrational, so the comparison is inherently approximate; the exact RT analysis is ResponseTimes
func SchedulableLL(set task.Set) bool {
	return set.TotalUtilization() <= LiuLaylandBound(len(set))+1e-12
}

// SchedulableHyperbolic applies the (tighter, still sufficient) hyperbolic
// bound of Bini et al.: Π (uᵢ + 1) ≤ 2, evaluated in exact rational
// arithmetic so a product that lands exactly on the bound is classified
// correctly rather than by float rounding.
func SchedulableHyperbolic(set task.Set) bool {
	prod := rational.NewAcc().SetInt(1)
	for _, t := range set {
		prod.MulRat(t.Weight().Add(rational.One()))
	}
	return prod.CmpInt(2) <= 0
}

// byRM returns the set sorted rate-monotonically: shorter period = higher
// priority, ties by name for determinism.
func byRM(set task.Set) task.Set {
	c := set.Clone()
	sort.SliceStable(c, func(i, j int) bool {
		if c[i].Period != c[j].Period {
			return c[i].Period < c[j].Period
		}
		return c[i].Name < c[j].Name
	})
	return c
}

// ResponseTimes runs the exact response-time analysis: for each task (in RM
// priority order) it solves the recurrence
//
//	R = e + Σ_{j higher priority} ⌈R/pⱼ⌉·eⱼ
//
// by fixed-point iteration. It returns the worst-case response time of each
// task in the same order as the input set, and whether every response time
// is within its task's period. Tasks whose recurrence diverges past their
// period get response −1.
func ResponseTimes(set task.Set) (responses []int64, schedulable bool) {
	ordered := byRM(set)
	resp := make(map[string]int64, len(set))
	schedulable = true
	for i, t := range ordered {
		r := t.Cost
		for {
			demand := t.Cost
			for _, h := range ordered[:i] {
				demand += ((r + h.Period - 1) / h.Period) * h.Cost
			}
			if demand == r {
				break
			}
			r = demand
			if r > t.Period {
				r = -1
				schedulable = false
				break
			}
		}
		resp[t.Name] = r
	}
	responses = make([]int64, len(set))
	for i, t := range set {
		responses[i] = resp[t.Name]
	}
	return responses, schedulable
}

// Schedulable applies the exact test.
func Schedulable(set task.Set) bool {
	_, ok := ResponseTimes(set)
	return ok
}

// Miss records a job finishing after its deadline in the simulator.
type Miss struct {
	Task     string
	Job      int64
	Deadline int64
	// FinishedAt is the completion time, or −1 if unfinished at the
	// horizon.
	FinishedAt int64
}

// Stats aggregates simulator counters.
type Stats struct {
	Jobs            int64
	Completed       int64
	Preemptions     int64
	ContextSwitches int64
	Misses          []Miss
}

type tstate struct {
	t           *task.Task
	nextRelease int64
	nextJob     int64
	// relItem and relWItem are the task's persistent handles in the
	// release structures — the fallback heap and the calendar wheel — so
	// re-arming the release timer never allocates whichever is in use.
	relItem  *heap.Item[*tstate]
	relWItem *calq.Item[*tstate]
}

type job struct {
	ts        *tstate
	index     int64
	deadline  int64
	remaining int64
	missed    bool
	// item is the job's heap handle, allocated once at release so
	// re-queueing on preemption never allocates.
	item *heap.Item[*job]
}

// Simulator is an event-driven preemptive fixed-priority (RM) simulator
// with synchronous first releases, used to cross-validate the analytical
// tests (the critical-instant theorem makes the synchronous pattern the
// worst case).
//
// The Simulator is an engine.Policy: the engine visits exactly the event
// instants (releases and completions) that Next computes.
type Simulator struct {
	eng   *engine.Engine
	now   int64 // internal execution clock; trails the engine inside Run
	tasks map[string]*tstate
	ready *heap.Heap[*job]
	// Release timers live in the calendar wheel unless some period
	// exceeds calq.DefaultSpanCap (timers too sparse for a bounded wheel),
	// in which case the constructor picks the comparison heap instead —
	// the task set is fixed up front, so the choice is made once.
	relWheel *calq.Wheel[*tstate]
	relHeap  bool
	releases *heap.Heap[*tstate]
	running  *job
	stats    Stats
	// plane is the admission-plane ledger behind Submit. RM has no trace
	// integration, so the plane carries decisions and metrics only.
	plane *admission.Plane
}

// NewSimulator returns an empty simulator at time 0.
func NewSimulator(set task.Set, opts ...engine.Option) *Simulator {
	s := &Simulator{tasks: make(map[string]*tstate, len(set))}
	s.ready = heap.New(func(a, b *job) bool {
		if a.ts.t.Period != b.ts.t.Period {
			return a.ts.t.Period < b.ts.t.Period
		}
		if a.ts.t.Name != b.ts.t.Name {
			return a.ts.t.Name < b.ts.t.Name
		}
		return a.index < b.index
	})
	s.releases = heap.New(func(a, b *tstate) bool {
		if a.nextRelease != b.nextRelease {
			return a.nextRelease < b.nextRelease
		}
		return a.t.Name < b.t.Name
	})
	var maxPeriod int64
	for _, t := range set {
		if t.Period > maxPeriod {
			maxPeriod = t.Period
		}
	}
	s.relHeap = maxPeriod > calq.DefaultSpanCap
	if !s.relHeap {
		s.relWheel = calq.NewWheel[*tstate](maxPeriod)
		s.relWheel.Reserve(len(set))
	}
	for _, t := range set {
		ts := &tstate{t: t, nextJob: 1}
		ts.relItem = heap.NewItem(ts)
		ts.relWItem = calq.NewItem(ts)
		s.tasks[t.Name] = ts
		s.armRelease(ts)
	}
	s.plane = admission.NewPlane()
	s.eng = engine.New(s, opts...)
	s.plane.Observe(nil, s.eng.Metrics())
	return s
}

// armRelease queues the task's next release in whichever timer structure
// the constructor selected.
//
//pfair:hotpath
func (s *Simulator) armRelease(ts *tstate) {
	if s.relHeap {
		s.releases.PushItem(ts.relItem)
	} else {
		s.relWheel.Add(ts.relWItem, ts.nextRelease)
	}
}

// Engine returns the engine this simulator runs on.
func (s *Simulator) Engine() *engine.Engine { return s.eng }

// Stats returns the counters accumulated so far.
func (s *Simulator) Stats() Stats { return s.stats }

// Run advances the simulation to the horizon. A non-nil error
// (*engine.LivelockError) means the policy stopped advancing time; the
// horizon accounting is skipped because the run never reached it.
func (s *Simulator) Run(horizon int64) error {
	if err := s.eng.Run(horizon); err != nil {
		return err
	}
	s.atHorizon(horizon)
	// Account jobs cut off by the horizon.
	record := func(j *job) {
		if j != nil && !j.missed && j.deadline <= horizon {
			j.missed = true
			s.stats.Misses = append(s.stats.Misses, Miss{Task: j.ts.t.Name, Job: j.index, Deadline: j.deadline, FinishedAt: -1})
		}
	}
	record(s.running)
	for _, it := range s.ready.Items() {
		record(it.Value)
	}
	return nil
}

// pendingEvent returns the running job's completion time, or MaxInt64
// when the processor is idle.
//
//pfair:hotpath
func (s *Simulator) pendingEvent() int64 {
	if s.running != nil {
		return s.now + s.running.remaining
	}
	return math.MaxInt64
}

// advance executes the running job up to t.
//
//pfair:hotpath
func (s *Simulator) advance(t int64) {
	if s.running != nil {
		s.running.remaining -= t - s.now
	}
	s.now = t
}

// complete retires the running job, recording a miss if it finished late.
//
//pfair:hotpath
func (s *Simulator) complete() {
	j := s.running
	s.running = nil
	s.stats.Completed++
	if s.now > j.deadline && !j.missed {
		j.missed = true
		s.stats.Misses = append(s.stats.Misses, Miss{Task: j.ts.t.Name, Job: j.index, Deadline: j.deadline, FinishedAt: s.now})
	}
}

// Release is the engine release phase at event instant t: execute the
// running job up to t, retire a completion landing exactly at t, then
// release every job due.
//
//pfair:hotpath
func (s *Simulator) Release(t int64) {
	event := s.pendingEvent()
	s.advance(t)
	if event == t {
		s.complete()
	}
	s.releaseDue()
}

// releaseDue releases every job whose time has come and re-arms the
// timers. Wheel mode drains the single due bucket and sorts the batch by
// name, matching the heap's (nextRelease, Name) pop order — every
// drained timer shares the instant s.now.
//
//pfair:hotpath
func (s *Simulator) releaseDue() {
	if !s.relHeap {
		due := s.relWheel.Due(s.now)
		for i := 1; i < len(due); i++ {
			for j := i; j > 0 && due[j].t.Name < due[j-1].t.Name; j-- {
				due[j], due[j-1] = due[j-1], due[j]
			}
		}
		for _, ts := range due {
			s.releaseOne(ts)
		}
		return
	}
	for s.releases.Len() > 0 && s.releases.Peek().nextRelease <= s.now {
		s.releaseOne(s.releases.Pop())
	}
}

// releaseOne releases one task's due job (its timer already dequeued)
// and re-arms the timer.
//
//pfair:allowalloc releasing a job allocates the job record and its heap handle, one pair per period, off the per-slot path
func (s *Simulator) releaseOne(ts *tstate) {
	j := &job{
		ts:        ts,
		index:     ts.nextJob,
		deadline:  ts.nextRelease + ts.t.Period,
		remaining: ts.t.Cost,
	}
	j.item = heap.NewItem(j)
	s.ready.PushItem(j.item)
	s.stats.Jobs++
	ts.nextJob++
	ts.nextRelease += ts.t.Period
	s.armRelease(ts)
}

// Pick implements engine.Policy; the ready heap is already
// priority-ordered, so selection happens in Dispatch's peek.
//
//pfair:hotpath
func (s *Simulator) Pick(t int64) {}

// Dispatch implements engine.Policy: one scheduler invocation.
//
//pfair:hotpath
func (s *Simulator) Dispatch(t int64) { s.dispatch() }

// Account implements engine.Policy; RM accounting happens in the event
// handlers.
//
//pfair:hotpath
func (s *Simulator) Account(t int64) {}

// Next returns the next event instant: the earliest pending release or
// the running job's completion.
//
//pfair:hotpath
func (s *Simulator) Next(t int64) int64 {
	nextRel := int64(math.MaxInt64)
	if !s.relHeap {
		if nr, ok := s.relWheel.NextOccupied(s.now); ok {
			nextRel = nr
		}
	} else if s.releases.Len() > 0 {
		nextRel = s.releases.Peek().nextRelease
	}
	if event := s.pendingEvent(); event < nextRel {
		return event
	}
	return nextRel
}

// atHorizon closes out a Run: the running job executes up to the horizon,
// and a completion landing exactly on it is still processed (followed by
// one dispatch) — but releases at the horizon fall outside the simulated
// window [0, horizon).
func (s *Simulator) atHorizon(horizon int64) {
	if s.now >= horizon {
		return
	}
	event := s.pendingEvent()
	s.advance(horizon)
	if event == horizon {
		s.complete()
		s.dispatch()
	}
}

//pfair:hotpath
func (s *Simulator) dispatch() {
	if s.ready.Len() == 0 {
		return
	}
	top := s.ready.Peek()
	switch {
	case s.running == nil:
		s.ready.Pop()
		s.running = top
		s.stats.ContextSwitches++
	case top.ts.t.Period < s.running.ts.t.Period ||
		(top.ts.t.Period == s.running.ts.t.Period && top.ts.t.Name < s.running.ts.t.Name):
		s.ready.Pop()
		s.ready.PushItem(s.running.item)
		s.stats.Preemptions++
		s.stats.ContextSwitches++
		s.running = top
	}
}
