// Package wfq implements the fair packet-queueing algorithms the paper's
// Section 5.3 points to as Pfair's lineage: generalized processor sharing
// (GPS, the fluid reference [32]), weighted fair queueing (WFQ [12]), and
// worst-case fair weighted fair queueing (WF²Q [7]).
//
// The correspondence with Pfair is direct. GPS is the packet world's
// ideal fluid schedule, exactly as the per-slot wt(T) allocation is
// Pfair's. WFQ serves the queued packet that would finish first under
// GPS; WF²Q additionally restricts the choice to packets whose GPS
// service has *started* (the eligibility rule). GPS start and finish
// times are the pseudo-release and pseudo-deadline of a Pfair subtask,
// and WF²Q's "smallest eligible finish time" is EPDF over those windows.
// WFQ, lacking the eligibility rule, can run a flow far ahead of its
// fluid service and then starve it — the packet-world analogue of why
// Pfair windows constrain when a subtask may run, not just its deadline.
// The tests quantify this with the burst scenario from the WF²Q paper.
//
// The link has rate 1: real time advances by packet lengths, so packet
// departures are exact integers. The GPS fluid reference is simulated in
// exact rational arithmetic (GPS event times are rationals with
// denominators dividing products of backlogged-weight sums), so packet
// selection never hinges on a float comparison; the float64 GPS times
// returned by GPSTimes are a reporting bridge over the exact reference.
package wfq

import (
	"fmt"
	"sort"

	"pfair/internal/rational"
)

// Flow is a weighted traffic source.
type Flow struct {
	Name   string
	Weight int64
}

// Packet is one arrival. Packets of a flow are served FIFO.
type Packet struct {
	Flow    string
	Arrival int64
	Length  int64
}

// Departure reports one packet's service under a packet policy.
type Departure struct {
	Packet int // index into the input slice
	Start  int64
	Finish int64
}

// Policy selects the packet-scheduling rule.
type Policy int

const (
	// WFQ serves, among queued packets, the one with the smallest GPS
	// finish time.
	WFQ Policy = iota
	// WF2Q serves the smallest GPS finish time among ELIGIBLE packets —
	// those whose GPS service has begun.
	WF2Q
)

func (p Policy) String() string {
	if p == WFQ {
		return "WFQ"
	}
	return "WF2Q"
}

// validate checks flows and packets.
func validate(flows []Flow, packets []Packet) (map[string]int64, error) {
	ws := map[string]int64{}
	for _, f := range flows {
		if f.Weight <= 0 {
			return nil, fmt.Errorf("wfq: flow %q has non-positive weight", f.Name)
		}
		if _, dup := ws[f.Name]; dup {
			return nil, fmt.Errorf("wfq: duplicate flow %q", f.Name)
		}
		ws[f.Name] = f.Weight
	}
	for i, p := range packets {
		if _, ok := ws[p.Flow]; !ok {
			return nil, fmt.Errorf("wfq: packet %d references unknown flow %q", i, p.Flow)
		}
		if p.Length <= 0 || p.Arrival < 0 {
			return nil, fmt.Errorf("wfq: packet %d has invalid parameters", i)
		}
	}
	return ws, nil
}

// gpsTimes simulates the fluid GPS reference at unit rate in exact
// rational arithmetic and returns each packet's GPS service start and
// finish times. A packet starts in GPS when it reaches the head of its
// flow's FIFO queue. Flows are always visited in their declaration
// order, so the event sequence is a pure function of the inputs.
func gpsTimes(flows []Flow, packets []Packet) (starts, finishes []*rational.Acc, err error) {
	ws, err := validate(flows, packets)
	if err != nil {
		return nil, nil, err
	}
	type fp struct {
		idx     int
		rem     *rational.Acc
		started bool
	}
	names := make([]string, len(flows))
	for i, f := range flows {
		names[i] = f.Name
	}
	order := arrivalOrder(packets)
	starts = make([]*rational.Acc, len(packets))
	finishes = make([]*rational.Acc, len(packets))
	queue := map[string][]*fp{}
	now := rational.NewAcc()
	next := 0
	markHeads := func() {
		for _, name := range names {
			if q := queue[name]; len(q) > 0 && !q[0].started {
				q[0].started = true
				starts[q[0].idx] = now.Clone()
			}
		}
	}
	admit := func() {
		for next < len(order) && now.CmpInt(packets[order[next]].Arrival) >= 0 {
			i := order[next]
			queue[packets[i].Flow] = append(queue[packets[i].Flow],
				&fp{idx: i, rem: rational.NewAcc().SetInt(packets[i].Length)})
			next++
		}
	}
	for {
		var bw int64
		for _, name := range names {
			if len(queue[name]) > 0 {
				bw += ws[name]
			}
		}
		if bw == 0 {
			if next >= len(order) {
				break
			}
			if t := packets[order[next]].Arrival; now.CmpInt(t) < 0 {
				now.SetInt(t)
			}
			admit()
			markHeads()
			continue
		}
		// Next event: earliest head completion at current rates, or the
		// next arrival. The head of flow f drains at rate w_f/bw, so it
		// completes after dt = rem·bw/w_f.
		var eventDT *rational.Acc
		for _, name := range names {
			q := queue[name]
			if len(q) == 0 {
				continue
			}
			dt := q[0].rem.Clone().MulRat(rational.New(bw, ws[name]))
			if eventDT == nil || dt.CmpAcc(eventDT) < 0 {
				eventDT = dt
			}
		}
		if next < len(order) {
			dt := rational.NewAcc().SetInt(packets[order[next]].Arrival).SubAcc(now)
			if dt.CmpAcc(eventDT) < 0 {
				eventDT = dt
			}
		}
		for _, name := range names {
			q := queue[name]
			if len(q) == 0 {
				continue
			}
			q[0].rem.SubAcc(eventDT.Clone().MulRat(rational.New(ws[name], bw)))
		}
		now.AddAcc(eventDT)
		for _, name := range names {
			q := queue[name]
			for len(q) > 0 && q[0].rem.Sign() <= 0 {
				finishes[q[0].idx] = now.Clone()
				q = q[1:]
			}
			queue[name] = q
		}
		admit()
		markHeads()
	}
	return starts, finishes, nil
}

// GPSTimes returns each packet's GPS service start and finish times as
// float64 for reporting and plotting. The underlying simulation is
// exact; only this boundary rounds.
func GPSTimes(flows []Flow, packets []Packet) (starts, finishes []float64, err error) {
	s, f, err := gpsTimes(flows, packets)
	if err != nil {
		return nil, nil, err
	}
	starts = make([]float64, len(s))
	finishes = make([]float64, len(f))
	for i := range s {
		//pfair:allowfloat reporting bridge: rounds the exact GPS reference for human-facing output
		starts[i], finishes[i] = s[i].Float(), f[i].Float()
	}
	return starts, finishes, nil
}

// GPSFinishTimes returns only the fluid completion times.
func GPSFinishTimes(flows []Flow, packets []Packet) ([]float64, error) {
	_, fin, err := GPSTimes(flows, packets)
	return fin, err
}

func arrivalOrder(packets []Packet) []int {
	order := make([]int, len(packets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return packets[order[a]].Arrival < packets[order[b]].Arrival
	})
	return order
}

// Schedule serves the packets at unit rate under the given policy and
// returns departures in service order. Selection uses the exact GPS
// reference times, per the original WFQ/WF²Q definitions: WFQ picks the
// queued packet with the smallest GPS finish; WF²Q restricts to packets
// whose GPS start is at or before the current time. With exact
// arithmetic the WF²Q eligibility theorem guarantees the eligible set is
// never empty while packets are queued, but the selection still prefers
// eligible packets rather than assuming it, so the scheduler is
// work-conserving by construction.
func Schedule(flows []Flow, packets []Packet, pol Policy) ([]Departure, error) {
	starts, finishes, err := gpsTimes(flows, packets)
	if err != nil {
		return nil, err
	}
	order := arrivalOrder(packets)
	next := 0
	queued := map[int]bool{}
	now := int64(0)
	var out []Departure
	for next < len(order) || len(queued) > 0 {
		if len(queued) == 0 {
			if t := packets[order[next]].Arrival; t > now {
				now = t
			}
		}
		for next < len(order) && packets[order[next]].Arrival <= now {
			queued[order[next]] = true
			next++
		}
		best := -1
		bestEligible := false
		//pfair:orderinvariant argmin under less, a strict total order (index tiebreak), is unique
		for idx := range queued {
			eligible := pol == WFQ || starts[idx].CmpInt(now) <= 0
			switch {
			case best < 0,
				eligible && !bestEligible,
				eligible == bestEligible && less(finishes, starts, idx, best):
				best = idx
				bestEligible = eligible
			}
		}
		p := packets[best]
		start := now
		finish := start + p.Length
		out = append(out, Departure{Packet: best, Start: start, Finish: finish})
		delete(queued, best)
		now = finish
	}
	return out, nil
}

// less orders packets by (GPS finish, GPS start, index), exactly.
func less(finishes, starts []*rational.Acc, a, b int) bool {
	if c := finishes[a].CmpAcc(finishes[b]); c != 0 {
		return c < 0
	}
	if c := starts[a].CmpAcc(starts[b]); c != 0 {
		return c < 0
	}
	return a < b
}
