package wfq

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleFlowFIFO(t *testing.T) {
	flows := []Flow{{Name: "a", Weight: 1}}
	packets := []Packet{
		{Flow: "a", Arrival: 0, Length: 3},
		{Flow: "a", Arrival: 0, Length: 2},
		{Flow: "a", Arrival: 1, Length: 1},
	}
	for _, pol := range []Policy{WFQ, WF2Q} {
		deps, err := Schedule(flows, packets, pol)
		if err != nil {
			t.Fatal(err)
		}
		if len(deps) != 3 {
			t.Fatalf("%v: %d departures", pol, len(deps))
		}
		wantOrder := []int{0, 1, 2}
		wantFinish := []int64{3, 5, 6}
		for i, d := range deps {
			if d.Packet != wantOrder[i] || d.Finish != wantFinish[i] {
				t.Errorf("%v departure %d = %+v, want pkt %d finish %d", pol, i, d, wantOrder[i], wantFinish[i])
			}
		}
	}
}

func TestGPSEqualSplit(t *testing.T) {
	flows := []Flow{{Name: "a", Weight: 1}, {Name: "b", Weight: 1}}
	packets := []Packet{
		{Flow: "a", Arrival: 0, Length: 1},
		{Flow: "b", Arrival: 0, Length: 1},
	}
	fin, err := GPSFinishTimes(flows, packets)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range fin {
		if math.Abs(f-2.0) > 1e-6 {
			t.Errorf("GPS finish[%d] = %v, want 2.0", i, f)
		}
	}
}

func TestGPSWeightedSplit(t *testing.T) {
	flows := []Flow{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}}
	packets := []Packet{
		{Flow: "a", Arrival: 0, Length: 3},
		{Flow: "b", Arrival: 0, Length: 1},
	}
	fin, err := GPSFinishTimes(flows, packets)
	if err != nil {
		t.Fatal(err)
	}
	// Both drain at t=4: a at rate 3/4 (3/0.75 = 4), b at rate 1/4.
	if math.Abs(fin[0]-4) > 1e-6 || math.Abs(fin[1]-4) > 1e-6 {
		t.Errorf("GPS finishes = %v, want [4 4]", fin)
	}
}

// TestFinishWithinGPSBound: the classic delay bound — every packet's real
// finish under WFQ and WF²Q is at most its GPS finish plus one maximum
// packet length.
func TestFinishWithinGPSBound(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		nf := 2 + r.Intn(4)
		flows := make([]Flow, nf)
		for i := range flows {
			flows[i] = Flow{Name: fmt.Sprintf("f%d", i), Weight: int64(1 + r.Intn(5))}
		}
		var packets []Packet
		var lmax int64
		tme := int64(0)
		for i := 0; i < 12; i++ {
			tme += int64(r.Intn(3))
			l := int64(1 + r.Intn(6))
			if l > lmax {
				lmax = l
			}
			packets = append(packets, Packet{
				Flow: flows[r.Intn(nf)].Name, Arrival: tme, Length: l,
			})
		}
		gps, err := GPSFinishTimes(flows, packets)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range []Policy{WFQ, WF2Q} {
			deps, err := Schedule(flows, packets, pol)
			if err != nil {
				t.Fatal(err)
			}
			if len(deps) != len(packets) {
				t.Fatalf("trial %d %v: served %d of %d", trial, pol, len(deps), len(packets))
			}
			for _, d := range deps {
				if float64(d.Finish) > gps[d.Packet]+float64(lmax)+1e-6 {
					t.Errorf("trial %d %v: packet %d finished %d, GPS %v + Lmax %d",
						trial, pol, d.Packet, d.Finish, gps[d.Packet], lmax)
				}
			}
		}
	}
}

// TestWF2QLimitsBurstLead reproduces the WF²Q paper's motivating scenario:
// a weight-half flow with a backlog of packets. WFQ serves a long burst of
// that flow first (its service runs far ahead of GPS); WF²Q's eligibility
// rule interleaves it with the light flows, exactly as Pfair windows
// prevent a subtask from running before its pseudo-release.
func TestWF2QLimitsBurstLead(t *testing.T) {
	flows := []Flow{{Name: "f0", Weight: 10}}
	var packets []Packet
	for i := 0; i < 11; i++ {
		packets = append(packets, Packet{Flow: "f0", Arrival: 0, Length: 1})
	}
	for i := 1; i <= 10; i++ {
		name := fmt.Sprintf("f%02d", i)
		flows = append(flows, Flow{Name: name, Weight: 1})
		packets = append(packets, Packet{Flow: name, Arrival: 0, Length: 1})
	}
	countBurst := func(pol Policy) int {
		deps, err := Schedule(flows, packets, pol)
		if err != nil {
			t.Fatal(err)
		}
		burst := 0
		for _, d := range deps {
			if packets[d.Packet].Flow != "f0" {
				break
			}
			burst++
		}
		return burst
	}
	wfqBurst := countBurst(WFQ)
	wf2qBurst := countBurst(WF2Q)
	if wfqBurst < 9 {
		t.Errorf("WFQ initial f0 burst = %d, expected ≥ 9", wfqBurst)
	}
	if wf2qBurst > 2 {
		t.Errorf("WF2Q initial f0 burst = %d, expected ≤ 2 (eligibility interleaves)", wf2qBurst)
	}
}

// TestQuickWorkConservation: the server never idles while packets are
// queued — total makespan equals total length when everything arrives at
// time zero, and every packet is served exactly once.
func TestQuickWorkConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nf := 1 + r.Intn(4)
		flows := make([]Flow, nf)
		for i := range flows {
			flows[i] = Flow{Name: fmt.Sprintf("f%d", i), Weight: int64(1 + r.Intn(4))}
		}
		n := 1 + r.Intn(10)
		var packets []Packet
		var total int64
		for i := 0; i < n; i++ {
			l := int64(1 + r.Intn(5))
			total += l
			packets = append(packets, Packet{Flow: flows[r.Intn(nf)].Name, Arrival: 0, Length: l})
		}
		for _, pol := range []Policy{WFQ, WF2Q} {
			deps, err := Schedule(flows, packets, pol)
			if err != nil || len(deps) != n {
				return false
			}
			seen := map[int]bool{}
			var last int64
			for _, d := range deps {
				if seen[d.Packet] {
					return false
				}
				seen[d.Packet] = true
				if d.Finish > last {
					last = d.Finish
				}
			}
			if last != total {
				t.Logf("%v: makespan %d, want %d", pol, last, total)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Schedule([]Flow{{Name: "a", Weight: 0}}, nil, WFQ); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := Schedule([]Flow{{Name: "a", Weight: 1}, {Name: "a", Weight: 2}}, nil, WFQ); err == nil {
		t.Error("duplicate flow accepted")
	}
	if _, err := Schedule([]Flow{{Name: "a", Weight: 1}}, []Packet{{Flow: "b", Length: 1}}, WFQ); err == nil {
		t.Error("unknown flow accepted")
	}
	if _, err := Schedule([]Flow{{Name: "a", Weight: 1}}, []Packet{{Flow: "a", Length: 0}}, WFQ); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := GPSFinishTimes([]Flow{{Name: "a", Weight: -1}}, nil); err == nil {
		t.Error("negative weight accepted by GPS")
	}
	if WFQ.String() != "WFQ" || WF2Q.String() != "WF2Q" {
		t.Error("Policy.String mismatch")
	}
}

// TestIdlePeriodsReset: packets separated by idle gaps are each served
// promptly on arrival.
func TestIdlePeriodsReset(t *testing.T) {
	flows := []Flow{{Name: "a", Weight: 1}, {Name: "b", Weight: 1}}
	packets := []Packet{
		{Flow: "a", Arrival: 0, Length: 2},
		{Flow: "b", Arrival: 100, Length: 2},
	}
	for _, pol := range []Policy{WFQ, WF2Q} {
		deps, err := Schedule(flows, packets, pol)
		if err != nil {
			t.Fatal(err)
		}
		if deps[0].Start != 0 || deps[0].Finish != 2 {
			t.Errorf("%v first departure %+v", pol, deps[0])
		}
		if deps[1].Start != 100 || deps[1].Finish != 102 {
			t.Errorf("%v second departure %+v", pol, deps[1])
		}
	}
}
