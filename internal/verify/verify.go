// Package verify independently validates recorded multiprocessor
// schedules against the definitions of Section 2. It shares no code with
// the scheduler's own bookkeeping: it recomputes windows, allocations,
// and lags from the raw (slot, processor, task, subtask) trace, so a bug
// in the scheduler's internal state cannot hide itself. The core test
// suites run every property-test schedule through this validator.
//
// Checks:
//
//   - capacity: at most M allocations per slot, one task per processor;
//   - no intra-slot parallelism: a task at most once per slot;
//   - sequence: each task's subtasks appear in order 1, 2, 3, … with no
//     gaps or repeats;
//   - windows: every subtask runs inside [r(Tᵢ), d(Tᵢ)) shifted by its
//     offset (unless tardiness is explicitly allowed);
//   - Pfairness: −1 < lag(T, t) < 1 after every slot in [0, Horizon),
//     including idle slots missing from the trace (periodic tasks);
//   - completion: no subtask with a deadline inside the horizon is left
//     unscheduled.
package verify

import (
	"fmt"

	"pfair/internal/core"
	"pfair/internal/rational"
	"pfair/internal/task"
)

// Slot is one slot of a recorded schedule.
type Slot struct {
	Time     int64
	Assigned []core.Assignment
}

// Recorder accumulates a schedule in the OnSlot callback shape.
type Recorder struct {
	Slots []Slot
}

// Record implements the core.Scheduler OnSlot signature.
//
//pfair:allowalloc the verification recorder copies every slot's assignments; test-time tooling, detached in measured runs
func (r *Recorder) Record(t int64, assigned []core.Assignment) {
	cp := make([]core.Assignment, len(assigned))
	copy(cp, assigned)
	r.Slots = append(r.Slots, Slot{Time: t, Assigned: cp})
}

// Options configures which checks apply.
type Options struct {
	// Processors is M; capacity checks use it.
	Processors int
	// Horizon is the number of simulated slots; completion checks use it.
	Horizon int64
	// AllowTardy disables the window and completion checks (overload
	// traces legitimately run subtasks late).
	AllowTardy bool
	// SkipLag disables the Pfair lag check (use for ERfair and IS
	// schedules, whose lag bounds differ from Equation (1)).
	SkipLag bool
	// Offsets optionally gives each task's per-subtask window shift
	// (join time + IS delay). Nil means synchronous periodic (offset 0).
	Offsets map[string]func(i int64) int64
}

// maxErrors caps the number of violations Check collects; a single root
// cause (e.g. a starved task failing the lag bound on every slot of a long
// horizon) would otherwise flood the report.
const maxErrors = 1024

// Check validates the trace of the given task set and returns every
// violation found (nil means the schedule is valid), truncating after
// maxErrors entries.
func Check(set task.Set, slots []Slot, opts Options) []error {
	var errs []error
	fail := func(format string, args ...any) {
		if len(errs) < maxErrors {
			errs = append(errs, fmt.Errorf(format, args...))
		}
	}

	pats := make(map[string]*core.Pattern, len(set))
	for _, t := range set {
		pats[t.Name] = core.NewPattern(t.Cost, t.Period)
	}
	offset := func(name string, i int64) int64 {
		if opts.Offsets == nil || opts.Offsets[name] == nil {
			return 0
		}
		return opts.Offsets[name](i)
	}

	next := make(map[string]int64, len(set))      // expected next subtask
	seqBroken := make(map[string]bool, len(set)) // sequence error already reported
	alloc := make(map[string]int64, len(set))
	for _, t := range set {
		next[t.Name] = 1
	}
	one := rational.One()

	// lagCheck validates Equation (1) at every slot boundary u in
	// [from, to]: lag(T, u) is the lag after slot u−1, computed from the
	// allocations seen so far. Calling it for the gaps between recorded
	// slots (and after the last one, up to the horizon) means idle slots
	// that were never delivered to the Recorder still get their lag
	// checked — a trace with gaps cannot hide a starved task.
	lagCheck := func(from, to int64) {
		if opts.SkipLag {
			return
		}
		for u := from; u <= to && len(errs) < maxErrors; u++ {
			// Iterate the declared task order so the first maxErrors
			// reported failures are deterministic.
			for _, t := range set {
				lag := pats[t.Name].Lag(u, alloc[t.Name])
				if !lag.Less(one) || !one.Neg().Less(lag) {
					fail("slot %d: task %s lag %v outside (-1, 1)", u-1, t.Name, lag)
				}
			}
		}
	}

	prevTime := int64(-1)
	for _, s := range slots {
		if s.Time <= prevTime {
			fail("slot times not strictly increasing at %d", s.Time)
		} else {
			// Boundaries inside the idle gap (prevTime, s.Time).
			lagCheck(prevTime+2, s.Time)
		}
		prevTime = s.Time
		if opts.Processors > 0 && len(s.Assigned) > opts.Processors {
			fail("slot %d: %d allocations on %d processors", s.Time, len(s.Assigned), opts.Processors)
		}
		procs := map[int]bool{}
		tasks := map[string]bool{}
		for _, a := range s.Assigned {
			if procs[a.Proc] {
				fail("slot %d: processor %d assigned twice", s.Time, a.Proc)
			}
			procs[a.Proc] = true
			if opts.Processors > 0 && (a.Proc < 0 || a.Proc >= opts.Processors) {
				fail("slot %d: processor %d out of range", s.Time, a.Proc)
			}
			if tasks[a.Task] {
				fail("slot %d: task %s scheduled in parallel with itself", s.Time, a.Task)
			}
			tasks[a.Task] = true

			pat, ok := pats[a.Task]
			if !ok {
				fail("slot %d: unknown task %s", s.Time, a.Task)
				continue
			}
			// On a mismatch, report once and keep counting allocations
			// (next advances by one per quantum received, not to the
			// recorded index): resynchronizing to a.Subtask+1 would turn
			// one skipped subtask into a spurious error on every later
			// slot and bury the root cause.
			if want := next[a.Task]; a.Subtask != want && !seqBroken[a.Task] {
				seqBroken[a.Task] = true
				fail("slot %d: task %s ran subtask %d, expected %d (suppressing later sequence errors for this task)",
					s.Time, a.Task, a.Subtask, want)
			}
			next[a.Task]++
			alloc[a.Task]++

			if !opts.AllowTardy {
				off := offset(a.Task, a.Subtask)
				r := off + pat.Release(a.Subtask)
				d := off + pat.Deadline(a.Subtask)
				if s.Time < r || s.Time >= d {
					fail("slot %d: subtask %s/%d outside window [%d,%d)", s.Time, a.Task, a.Subtask, r, d)
				}
			}
		}
		// Boundary after this slot's allocations.
		lagCheck(s.Time+1, s.Time+1)
	}
	// Trailing idle slots up to the horizon.
	if opts.Horizon > prevTime+1 {
		lagCheck(prevTime+2, opts.Horizon)
	}

	if !opts.AllowTardy && opts.Horizon > 0 {
		for _, t := range set {
			pat := pats[t.Name]
			i := next[t.Name]
			if off := offset(t.Name, i); off+pat.Deadline(i) <= opts.Horizon {
				fail("subtask %s/%d (deadline %d) never scheduled before horizon %d",
					t.Name, i, off+pat.Deadline(i), opts.Horizon)
			}
		}
	}
	return errs
}
