package verify

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"pfair/internal/core"
	"pfair/internal/rational"
	"pfair/internal/task"
)

func runAndCheck(t *testing.T, set task.Set, m int, horizon int64, opts Options) []error {
	t.Helper()
	s := core.NewScheduler(m, core.PD2, core.Options{})
	var rec Recorder
	s.OnSlot(rec.Record)
	for _, tk := range set {
		if err := s.Join(tk); err != nil {
			t.Fatalf("join %v: %v", tk, err)
		}
	}
	s.RunUntil(horizon)
	opts.Processors = m
	opts.Horizon = horizon
	return Check(set, rec.Slots, opts)
}

// TestValidSchedulePasses: real PD² schedules pass every check.
func TestValidSchedulePasses(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		m := 1 + r.Intn(3)
		var set task.Set
		budget := rational.NewAcc()
		for i := 0; i < 6; i++ {
			p := int64(2 + r.Intn(10))
			e := int64(1 + r.Intn(int(p)))
			w := rational.New(e, p)
			if budget.Clone().Add(w).CmpInt(int64(m)) > 0 {
				continue
			}
			budget.Add(w)
			set = append(set, task.MustNew(fmt.Sprintf("T%d", i), e, p))
		}
		if len(set) == 0 {
			continue
		}
		if errs := runAndCheck(t, set, m, 2000, Options{}); len(errs) != 0 {
			t.Fatalf("trial %d: valid schedule rejected: %v", trial, errs[0])
		}
	}
}

// corrupt applies a named mutation to a valid trace and expects the
// validator to object.
func TestCorruptionsDetected(t *testing.T) {
	set := task.Set{task.MustNew("A", 2, 3), task.MustNew("B", 1, 3), task.MustNew("C", 1, 2)}
	s := core.NewScheduler(2, core.PD2, core.Options{})
	var rec Recorder
	s.OnSlot(rec.Record)
	for _, tk := range set {
		if err := s.Join(tk); err != nil {
			t.Fatal(err)
		}
	}
	const horizon = 60
	s.RunUntil(horizon)
	base := rec.Slots

	clone := func() []Slot {
		out := make([]Slot, len(base))
		for i, sl := range base {
			cp := make([]core.Assignment, len(sl.Assigned))
			copy(cp, sl.Assigned)
			out[i] = Slot{Time: sl.Time, Assigned: cp}
		}
		return out
	}
	opts := Options{Processors: 2, Horizon: horizon}

	cases := []struct {
		name   string
		mutate func([]Slot) []Slot
	}{
		{"drop an allocation", func(sl []Slot) []Slot {
			for i := range sl {
				if len(sl[i].Assigned) > 0 {
					sl[i].Assigned = sl[i].Assigned[1:]
					return sl
				}
			}
			return sl
		}},
		{"duplicate a processor", func(sl []Slot) []Slot {
			for i := range sl {
				if len(sl[i].Assigned) >= 2 {
					sl[i].Assigned[1].Proc = sl[i].Assigned[0].Proc
					return sl
				}
			}
			return sl
		}},
		{"run a task in parallel", func(sl []Slot) []Slot {
			for i := range sl {
				if len(sl[i].Assigned) >= 2 {
					sl[i].Assigned[1].Task = sl[i].Assigned[0].Task
					sl[i].Assigned[1].Subtask = sl[i].Assigned[0].Subtask + 1
					return sl
				}
			}
			return sl
		}},
		{"skip a subtask", func(sl []Slot) []Slot {
			sl[0].Assigned[0].Subtask += 5
			return sl
		}},
		{"out-of-range processor", func(sl []Slot) []Slot {
			sl[0].Assigned[0].Proc = 9
			return sl
		}},
		{"unknown task", func(sl []Slot) []Slot {
			sl[0].Assigned[0].Task = "ghost"
			return sl
		}},
		{"non-increasing time", func(sl []Slot) []Slot {
			if len(sl) > 1 {
				sl[1].Time = sl[0].Time
			}
			return sl
		}},
	}
	for _, c := range cases {
		if errs := Check(set, c.mutate(clone()), opts); len(errs) == 0 {
			t.Errorf("%s: validator accepted the corrupted trace", c.name)
		}
	}
}

// TestLagViolationDetected: starving a task trips the Pfairness check even
// when every individual assignment looks plausible.
func TestLagViolationDetected(t *testing.T) {
	set := task.Set{task.MustNew("A", 1, 2)}
	// A receives nothing for 4 slots: lag reaches 2.
	slots := []Slot{
		{Time: 0}, {Time: 1}, {Time: 2}, {Time: 3},
	}
	errs := Check(set, slots, Options{Processors: 1, Horizon: 4})
	if len(errs) == 0 {
		t.Fatal("starvation passed the lag check")
	}
}

// TestCompletionCheck: a trace that simply ends early is caught by the
// horizon completion check.
func TestCompletionCheck(t *testing.T) {
	set := task.Set{task.MustNew("A", 1, 2)}
	slots := []Slot{{Time: 0, Assigned: []core.Assignment{{Proc: 0, Task: "A", Subtask: 1}}}}
	errs := Check(set, slots, Options{Processors: 1, Horizon: 10, SkipLag: true})
	if len(errs) == 0 {
		t.Fatal("missing subtasks passed the completion check")
	}
	// With AllowTardy (overload semantics) the same trace passes.
	if errs := Check(set, slots, Options{Processors: 1, Horizon: 10, SkipLag: true, AllowTardy: true}); len(errs) != 0 {
		t.Fatalf("tardy-allowed check failed: %v", errs[0])
	}
}

// TestOffsetsShiftWindows: IS traces validate against shifted windows.
func TestOffsetsShiftWindows(t *testing.T) {
	set := task.Set{task.MustNew("A", 1, 2)}
	// Subtask 2's window shifts by 3: [2,4) → [5,7).
	off := map[string]func(int64) int64{
		"A": func(i int64) int64 {
			if i >= 2 {
				return 3
			}
			return 0
		},
	}
	slots := []Slot{
		{Time: 0, Assigned: []core.Assignment{{Proc: 0, Task: "A", Subtask: 1}}},
		{Time: 5, Assigned: []core.Assignment{{Proc: 0, Task: "A", Subtask: 2}}},
	}
	errs := Check(set, slots, Options{Processors: 1, Horizon: 6, Offsets: off, SkipLag: true})
	if len(errs) != 0 {
		t.Fatalf("shifted schedule rejected: %v", errs[0])
	}
	// Without the offsets the same trace violates subtask 2's window.
	errs = Check(set, slots, Options{Processors: 1, Horizon: 6, SkipLag: true})
	if len(errs) == 0 {
		t.Fatal("unshifted check accepted an out-of-window run")
	}
}

// TestAllAlgorithmsCrossValidated runs PD, PF, and ERfair-PD² schedules
// through the independent validator (ERfair and tardy traces relax the
// window/lag checks that do not define them).
func TestAllAlgorithmsCrossValidated(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 6; trial++ {
		m := 1 + r.Intn(3)
		var set task.Set
		budget := rational.NewAcc()
		for i := 0; i < 6; i++ {
			p := int64(2 + r.Intn(10))
			e := int64(1 + r.Intn(int(p)))
			w := rational.New(e, p)
			if budget.Clone().Add(w).CmpInt(int64(m)) > 0 {
				continue
			}
			budget.Add(w)
			set = append(set, task.MustNew(fmt.Sprintf("T%d", i), e, p))
		}
		if len(set) == 0 {
			continue
		}
		for _, alg := range []core.Algorithm{core.PD, core.PF} {
			s := core.NewScheduler(m, alg, core.Options{})
			var rec Recorder
			s.OnSlot(rec.Record)
			for _, tk := range set {
				if err := s.Join(tk); err != nil {
					t.Fatal(err)
				}
			}
			s.RunUntil(1500)
			if errs := Check(set, rec.Slots, Options{Processors: m, Horizon: 1500}); len(errs) != 0 {
				t.Fatalf("trial %d %v: %v", trial, alg, errs[0])
			}
		}
		// ERfair: windows and Equation (1) lags do not apply (subtasks
		// legitimately run before their pseudo-releases), but structure,
		// capacity, and sequence still must.
		s := core.NewScheduler(m, core.PD2, core.Options{EarlyRelease: true})
		var rec Recorder
		s.OnSlot(rec.Record)
		for _, tk := range set {
			if err := s.Join(tk); err != nil {
				t.Fatal(err)
			}
		}
		s.RunUntil(1500)
		if errs := Check(set, rec.Slots, Options{Processors: m, SkipLag: true, AllowTardy: true}); len(errs) != 0 {
			t.Fatalf("trial %d ERfair: %v", trial, errs[0])
		}
	}
}

// TestLagCheckedInTraceGaps: idle slots that were never delivered to the
// Recorder must still get their lag checked. Task A(1,2) runs at slot 0
// and then the trace jumps to slot 9: by slot 4 its lag exceeds 1, which
// the old recorded-slots-only walk silently skipped.
func TestLagCheckedInTraceGaps(t *testing.T) {
	set := task.Set{task.MustNew("A", 1, 2)}
	slots := []Slot{
		{Time: 0, Assigned: []core.Assignment{{Proc: 0, Task: "A", Subtask: 1}}},
		{Time: 9, Assigned: []core.Assignment{{Proc: 0, Task: "A", Subtask: 2}}},
	}
	errs := Check(set, slots, Options{Processors: 1, Horizon: 10, AllowTardy: true})
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "lag") {
			found = true
		}
	}
	if !found {
		t.Fatalf("gap starvation passed the lag check: %v", errs)
	}

	// Trailing gap: the trace simply stops while the horizon continues.
	head := slots[:1]
	errs = Check(set, head, Options{Processors: 1, Horizon: 10, AllowTardy: true})
	found = false
	for _, e := range errs {
		if strings.Contains(e.Error(), "lag") {
			found = true
		}
	}
	if !found {
		t.Fatalf("trailing starvation passed the lag check: %v", errs)
	}
}

// TestSequenceMismatchReportedOnce: one skipped subtask must produce one
// sequence error, not a cascade that buries the root cause on every later
// slot.
func TestSequenceMismatchReportedOnce(t *testing.T) {
	set := task.Set{task.MustNew("A", 1, 2)}
	var slots []Slot
	for i := int64(0); i < 20; i++ {
		sub := i + 1
		if i >= 3 {
			sub = i + 2 // subtask 4 skipped: 1,2,3,5,6,…
		}
		slots = append(slots, Slot{Time: 2 * i, Assigned: []core.Assignment{{Proc: 0, Task: "A", Subtask: sub}}})
	}
	errs := Check(set, slots, Options{Processors: 1, SkipLag: true, AllowTardy: true})
	seq := 0
	for _, e := range errs {
		if strings.Contains(e.Error(), "expected") {
			seq++
		}
	}
	if seq != 1 {
		t.Fatalf("got %d sequence errors, want exactly 1: %v", seq, errs)
	}
}

// TestErrorFlood is bounded: a fully-starved long trace reports at most
// maxErrors violations.
func TestErrorFloodBounded(t *testing.T) {
	set := task.Set{task.MustNew("A", 1, 2), task.MustNew("B", 1, 2)}
	errs := Check(set, nil, Options{Processors: 1, Horizon: 100000})
	if len(errs) == 0 || len(errs) > maxErrors {
		t.Fatalf("got %d errors, want within (0, %d]", len(errs), maxErrors)
	}
}
