package heap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intHeap() *Heap[int] {
	return New(func(a, b int) bool { return a < b })
}

func TestPushPopSorted(t *testing.T) {
	h := intHeap()
	in := []int{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
	for _, v := range in {
		h.Push(v)
	}
	if h.Len() != len(in) {
		t.Fatalf("Len = %d, want %d", h.Len(), len(in))
	}
	for want := 0; want < len(in); want++ {
		if got := h.Peek(); got != want {
			t.Fatalf("Peek = %d, want %d", got, want)
		}
		if got := h.Pop(); got != want {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("Len after drain = %d", h.Len())
	}
}

func TestDuplicates(t *testing.T) {
	h := intHeap()
	for _, v := range []int{3, 1, 3, 1, 2, 2} {
		h.Push(v)
	}
	want := []int{1, 1, 2, 2, 3, 3}
	for _, w := range want {
		if got := h.Pop(); got != w {
			t.Fatalf("Pop = %d, want %d", got, w)
		}
	}
}

func TestRemove(t *testing.T) {
	h := intHeap()
	items := make([]*Item[int], 0, 10)
	for v := 0; v < 10; v++ {
		items = append(items, h.Push(v))
	}
	h.Remove(items[0]) // remove min
	h.Remove(items[9]) // remove max
	h.Remove(items[5]) // remove middle
	h.Remove(items[5]) // double-remove is a no-op
	if items[5].Index() != -1 {
		t.Errorf("removed item index = %d, want -1", items[5].Index())
	}
	var got []int
	for h.Len() > 0 {
		got = append(got, h.Pop())
	}
	want := []int{1, 2, 3, 4, 6, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
}

func TestFix(t *testing.T) {
	type job struct{ deadline int }
	h := New(func(a, b *job) bool { return a.deadline < b.deadline })
	a := &job{10}
	b := &job{20}
	c := &job{30}
	ia := h.Push(a)
	h.Push(b)
	h.Push(c)
	// Postpone a's deadline past everything; b should become the min.
	a.deadline = 40
	h.Fix(ia)
	if got := h.Pop(); got != b {
		t.Fatalf("after Fix, Pop = %+v, want b", got)
	}
	if got := h.Pop(); got != c {
		t.Fatalf("Pop = %+v, want c", got)
	}
	if got := h.Pop(); got != a {
		t.Fatalf("Pop = %+v, want a", got)
	}
}

func TestFixRemovedPanics(t *testing.T) {
	h := intHeap()
	it := h.Push(1)
	h.Remove(it)
	defer func() {
		if recover() == nil {
			t.Fatal("Fix of removed item did not panic")
		}
	}()
	h.Fix(it)
}

func TestQuickHeapSort(t *testing.T) {
	f := func(vals []int) bool {
		h := intHeap()
		for _, v := range vals {
			h.Push(v)
		}
		got := make([]int, 0, len(vals))
		for h.Len() > 0 {
			got = append(got, h.Pop())
		}
		want := append([]int(nil), vals...)
		sort.Ints(want)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickRandomRemovals interleaves pushes, pops, and removals and checks
// the heap invariant (every pop is ≤ all remaining elements) throughout.
func TestQuickRandomRemovals(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := intHeap()
		var live []*Item[int]
		for op := 0; op < 300; op++ {
			switch {
			case h.Len() == 0 || r.Intn(3) == 0:
				live = append(live, h.Push(r.Intn(100)))
			case r.Intn(2) == 0 && len(live) > 0:
				// Remove a random live item.
				k := r.Intn(len(live))
				h.Remove(live[k])
				live = append(live[:k], live[k+1:]...)
			default:
				min := h.Pop()
				// Locate and drop from live, verifying minimality.
				idx := -1
				for k, it := range live {
					if it.Index() == -1 && it.Value == min && idx == -1 {
						idx = k
					}
					if it.Index() >= 0 && it.Value < min {
						return false // popped value was not the minimum
					}
				}
				if idx >= 0 {
					live = append(live[:idx], live[idx+1:]...)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	h := intHeap()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		h.Push(r.Intn(1 << 20))
		if h.Len() > 1024 {
			h.Pop()
		}
	}
}

// TestPushItemReuse: a persistent item cycles through push/pop/push with
// correct ordering, and its allocation is reused (0 allocs per cycle).
func TestPushItemReuse(t *testing.T) {
	h := intHeap()
	items := make([]*Item[int], 10)
	for i := range items {
		items[i] = NewItem(i)
		if items[i].Index() != -1 {
			t.Fatalf("fresh item index %d, want -1", items[i].Index())
		}
	}
	for round := 0; round < 3; round++ {
		for _, it := range items {
			h.PushItem(it)
		}
		for want := 0; h.Len() > 0; want++ {
			if got := h.Pop(); got != want {
				t.Fatalf("round %d: popped %d, want %d", round, got, want)
			}
		}
	}
	h.PushItem(items[0])
	allocs := testing.AllocsPerRun(100, func() {
		h.Pop()
		h.PushItem(items[0])
	})
	if allocs != 0 {
		t.Errorf("PushItem/Pop cycle allocates %v per run, want 0", allocs)
	}
}

func TestPushItemQueuedPanics(t *testing.T) {
	h := intHeap()
	it := NewItem(1)
	h.PushItem(it)
	defer func() {
		if recover() == nil {
			t.Fatal("PushItem of a queued item did not panic")
		}
	}()
	h.PushItem(it)
}
