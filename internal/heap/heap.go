// Package heap provides a generic binary min-heap keyed by an explicit
// comparison function.
//
// Section 4 of the paper states that "binary heaps [were used] to implement
// the priority queues of both schedulers" when measuring the per-invocation
// scheduling overhead of EDF and PD² (Figure 2). This package is that
// reference structure: the EDF and RM job queues use it directly, and the
// Pfair core's observed mode keeps its eligible set here so the comparator
// can narrate tie-breaks as trace events. The default (unobserved) hot
// paths have since moved to the bucketed structures of internal/calq,
// whose extraction order is provably identical for the total priority
// orders the schedulers use — this heap remains both the fallback for
// key spans a bounded bucket table cannot cover and the baseline the
// calq benchmarks are measured against.
//
// The heap also supports removal and priority updates of arbitrary elements
// via the index handle recorded on each item, which the schedulers need when
// a job completes early or a task leaves the system.
package heap

// Item is a heap element paired with its current position, maintained by the
// heap so callers can Remove or Fix arbitrary elements in O(log n).
type Item[T any] struct {
	Value T
	index int // position in the heap array, -1 once removed
}

// Index returns the item's current position in the heap, or -1 if it has
// been removed.
//
//pfair:hotpath
func (it *Item[T]) Index() int { return it.index }

// Heap is a binary min-heap ordered by less. The zero value is not usable;
// construct with New.
type Heap[T any] struct {
	items []*Item[T]
	less  func(a, b T) bool
}

// New returns an empty heap ordered by less (less(a, b) means a has higher
// priority and is popped first).
func New[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len returns the number of elements in the heap.
//
//pfair:hotpath
func (h *Heap[T]) Len() int { return len(h.items) }

// Push inserts v and returns its handle.
func (h *Heap[T]) Push(v T) *Item[T] {
	it := &Item[T]{Value: v, index: len(h.items)}
	h.items = append(h.items, it)
	h.up(it.index)
	return it
}

// NewItem returns an unqueued item carrying v, for callers that move the
// same element in and out of heaps repeatedly (PushItem) and want its
// handle allocated once rather than per insertion. The Pfair scheduler's
// per-slot loop depends on this to stay allocation-free in steady state.
//
//pfair:allowalloc allocates the reusable handle; callers hoist the call to admission or setup
func NewItem[T any](v T) *Item[T] { return &Item[T]{Value: v, index: -1} }

// PushItem inserts an item previously returned by NewItem (or removed by
// Pop/Remove) without allocating. It panics if the item is still queued.
//
//pfair:hotpath
func (h *Heap[T]) PushItem(it *Item[T]) {
	if it.index >= 0 {
		//pfair:allowpanic API misuse, per the doc comment; mirrors container/heap
		panic("heap: PushItem of an item that is already in a heap")
	}
	it.index = len(h.items)
	h.items = append(h.items, it)
	h.up(it.index)
}

// Peek returns the minimum element without removing it. It panics if the
// heap is empty.
//
//pfair:hotpath
func (h *Heap[T]) Peek() T {
	return h.items[0].Value
}

// Pop removes and returns the minimum element. It panics if the heap is
// empty.
//
//pfair:hotpath
func (h *Heap[T]) Pop() T {
	it := h.items[0]
	h.swap(0, len(h.items)-1)
	h.items = h.items[:len(h.items)-1]
	if len(h.items) > 0 {
		h.down(0)
	}
	it.index = -1
	return it.Value
}

// Remove deletes the element identified by handle it. It is a no-op if the
// item was already removed.
//
//pfair:hotpath
func (h *Heap[T]) Remove(it *Item[T]) {
	i := it.index
	if i < 0 {
		return
	}
	last := len(h.items) - 1
	h.swap(i, last)
	h.items = h.items[:last]
	if i < last {
		if !h.up(i) {
			h.down(i)
		}
	}
	it.index = -1
}

// Fix re-establishes heap order after the priority of it's value changed in
// place. It panics if the item has been removed.
//
//pfair:hotpath
func (h *Heap[T]) Fix(it *Item[T]) {
	if it.index < 0 {
		//pfair:allowpanic API misuse, per the doc comment; mirrors container/heap
		panic("heap: Fix of removed item")
	}
	if !h.up(it.index) {
		h.down(it.index)
	}
}

// Items returns the underlying items in heap order (not sorted order). The
// slice must not be modified; it is exposed for iteration by the schedulers'
// introspection and trace code.
func (h *Heap[T]) Items() []*Item[T] { return h.items }

//pfair:hotpath
func (h *Heap[T]) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}

// up sifts the element at i toward the root; it reports whether the element
// moved.
//
//pfair:hotpath
func (h *Heap[T]) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i].Value, h.items[parent].Value) {
			break
		}
		h.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

//pfair:hotpath
func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(h.items[l].Value, h.items[smallest].Value) {
			smallest = l
		}
		if r < n && h.less(h.items[r].Value, h.items[smallest].Value) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
