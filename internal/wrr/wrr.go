// Package wrr implements a classic weighted round-robin (WRR) global
// multiprocessor scheduler, the general-purpose-OS algorithm Section 4
// relates Pfair to: "PD² can be thought of as a deadline-based variant of
// the weighted round-robin algorithm."
//
// Under WRR, ready tasks sit in a circular queue; when a task reaches the
// front it runs for a burst proportional to its weight (here: its cost e,
// so over one full cycle every task receives its period's worth of work)
// and returns to the tail. WRR provides long-run proportional shares with
// O(1) scheduling decisions, but it ignores deadlines entirely: a task's
// allocation within a cycle may arrive arbitrarily late, so tasks with
// tight windows miss deadlines on sets PD² schedules trivially. The tests
// exhibit this, making concrete what PD²'s deadline-based priorities and
// tie-breaks buy over the round-robin heritage.
package wrr

import (
	"fmt"

	"pfair/internal/task"
)

// Miss records a job that did not complete by its deadline.
type Miss struct {
	Task     string
	Job      int64
	Deadline int64
}

// Stats aggregates a run.
type Stats struct {
	Slots           int64
	Allocations     int64
	ContextSwitches int64
	Misses          []Miss
}

type wstate struct {
	t *task.Task
	// burst is the remaining quanta of the task's current turn.
	burst int64
	// Job bookkeeping against the periodic deadline lattice.
	completed int64 // fully finished jobs
	rem       int64 // remaining quanta of the head job
	missed    map[int64]bool
}

func (w *wstate) headDeadline() int64 { return (w.completed + 1) * w.t.Period }
func (w *wstate) headRelease() int64  { return w.completed * w.t.Period }

// Scheduler is a slot-quantized global WRR scheduler on m processors.
type Scheduler struct {
	m      int
	queue  []*wstate // circular ready order; front runs first
	now    int64
	stats  Stats
	prev   map[*wstate]bool
	onSlot func(t int64, allocated []string)
	buf    []string
}

// OnSlot registers a callback invoked after every slot with the names of
// the tasks that received a quantum. The slice is reused across calls.
func (s *Scheduler) OnSlot(fn func(t int64, allocated []string)) { s.onSlot = fn }

// NewScheduler returns a WRR scheduler for m processors over the given
// synchronous periodic set.
func NewScheduler(m int, set task.Set) (*Scheduler, error) {
	if m < 1 {
		return nil, fmt.Errorf("wrr: need at least one processor")
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	s := &Scheduler{m: m, prev: map[*wstate]bool{}}
	for _, t := range set {
		s.queue = append(s.queue, &wstate{t: t, burst: t.Cost, rem: t.Cost, missed: map[int64]bool{}})
	}
	return s, nil
}

// Step schedules one slot: the first m queue entries with released,
// unfinished work run; a task whose burst is exhausted rotates to the
// tail with a fresh burst.
func (s *Scheduler) Step() {
	t := s.now
	var running []*wstate
	for _, w := range s.queue {
		if len(running) == s.m {
			break
		}
		if w.rem > 0 && w.headRelease() <= t {
			running = append(running, w)
		}
	}
	cur := map[*wstate]bool{}
	for _, w := range running {
		cur[w] = true
		if !s.prev[w] {
			s.stats.ContextSwitches++
		}
		w.rem--
		w.burst--
		s.stats.Allocations++
		if w.rem == 0 {
			// Job complete; next job's work becomes available at its
			// release.
			w.completed++
			w.rem = w.t.Cost
		}
		if w.burst == 0 {
			s.rotate(w)
		}
	}
	// Deadline misses: the head job is released and incomplete past its
	// deadline (a caught-up task's head job is unreleased, so the
	// release check excludes it).
	for _, w := range s.queue {
		if w.headDeadline() <= t+1 && w.headRelease() <= t && !w.missed[w.completed+1] {
			w.missed[w.completed+1] = true
			s.stats.Misses = append(s.stats.Misses, Miss{Task: w.t.Name, Job: w.completed + 1, Deadline: w.headDeadline()})
		}
	}
	s.prev = cur
	s.stats.Slots++
	s.now++
	if s.onSlot != nil {
		s.buf = s.buf[:0]
		for _, w := range running {
			s.buf = append(s.buf, w.t.Name)
		}
		s.onSlot(t, s.buf)
	}
}

// rotate moves w to the tail of the queue and recharges its burst.
func (s *Scheduler) rotate(w *wstate) {
	for i, q := range s.queue {
		if q == w {
			s.queue = append(append(s.queue[:i], s.queue[i+1:]...), w)
			break
		}
	}
	w.burst = w.t.Cost
}

// RunUntil steps to the horizon.
func (s *Scheduler) RunUntil(horizon int64) {
	for s.now < horizon {
		s.Step()
	}
}

// Stats returns the accumulated counters.
func (s *Scheduler) Stats() Stats { return s.stats }
