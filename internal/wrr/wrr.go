// Package wrr implements a classic weighted round-robin (WRR) global
// multiprocessor scheduler, the general-purpose-OS algorithm Section 4
// relates Pfair to: "PD² can be thought of as a deadline-based variant of
// the weighted round-robin algorithm."
//
// Under WRR, ready tasks sit in a circular queue; when a task reaches the
// front it runs for a burst proportional to its weight (here: its cost e,
// so over one full cycle every task receives its period's worth of work)
// and returns to the tail. WRR provides long-run proportional shares with
// O(1) scheduling decisions, but it ignores deadlines entirely: a task's
// allocation within a cycle may arrive arbitrarily late, so tasks with
// tight windows miss deadlines on sets PD² schedules trivially. The tests
// exhibit this, making concrete what PD²'s deadline-based priorities and
// tie-breaks buy over the round-robin heritage.
package wrr

import (
	"fmt"

	"pfair/internal/admission"
	"pfair/internal/engine"
	"pfair/internal/obs"
	"pfair/internal/task"
)

// Miss records a job that did not complete by its deadline.
type Miss struct {
	Task     string
	Job      int64
	Deadline int64
}

// Stats aggregates a run.
type Stats struct {
	Slots           int64
	Allocations     int64
	ContextSwitches int64
	Misses          []Miss
}

type wstate struct {
	t  *task.Task
	id int32 // dense observability id (queue position at construction)
	// burst is the remaining quanta of the task's current turn.
	burst int64
	// off is the slot the task's periodic lattice starts at: 0 for
	// construction-time tasks (the historical synchronous case), the join
	// slot for tasks admitted mid-run, the reweight slot after an in-place
	// reweight (the new lattice restarts there).
	off int64
	// alloc counts quanta ever allocated to the task, for EvLeave.
	alloc int64
	// Job bookkeeping against the periodic deadline lattice.
	completed int64 // fully finished jobs
	rem       int64 // remaining quanta of the head job
	// lastRun is the last slot the task received a quantum — a generation
	// flag replacing the former ran-last-slot map, so the context-switch
	// test is an O(1) field comparison.
	lastRun int64
	// lastMissedJob is the highest job index already recorded as missed;
	// job indices are monotone, so one int replaces the former per-job map.
	lastMissedJob int64
}

//pfair:hotpath
func (w *wstate) headDeadline() int64 { return w.off + (w.completed+1)*w.t.Period }

//pfair:hotpath
func (w *wstate) headRelease() int64 { return w.off + w.completed*w.t.Period }

// Scheduler is a slot-quantized global WRR scheduler on m processors,
// run as an engine.Policy. The selection scratch is preallocated so the
// steady-state slot loop is allocation-free (miss recording aside).
type Scheduler struct {
	eng    *engine.Engine
	m      int
	queue  []*wstate // circular ready order; front runs first
	stats  Stats
	onSlot func(t int64, allocated []string)
	buf    []string
	runBuf []*wstate

	// rec and met are cached from the engine; both nil when unobserved.
	// Concrete pointers, nil-guarded at every emission site, so the
	// unobserved hot path costs one predictable branch each.
	rec *obs.Recorder
	met *obs.SchedulerMetrics

	// plane is the admission-plane ledger behind Submit; nextID hands out
	// observability ids for tasks joining after construction.
	plane  *admission.Plane
	nextID int32
}

// OnSlot registers a callback invoked after every slot with the names of
// the tasks that received a quantum. The slice is reused across calls.
func (s *Scheduler) OnSlot(fn func(t int64, allocated []string)) { s.onSlot = fn }

// NewScheduler returns a WRR scheduler for m processors over the given
// synchronous periodic set. Engine options attach observability
// (engine.WithRecorder / engine.WithMetrics): the run then emits
// schedule, idle, and deadline-miss events and scheduler counters, with
// task ids the indices into set.
func NewScheduler(m int, set task.Set, opts ...engine.Option) (*Scheduler, error) {
	if m < 1 {
		return nil, fmt.Errorf("wrr: need at least one processor")
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	s := &Scheduler{m: m, runBuf: make([]*wstate, 0, m)}
	for i, t := range set {
		s.queue = append(s.queue, &wstate{t: t, id: int32(i), burst: t.Cost, rem: t.Cost, lastRun: -2})
	}
	s.nextID = int32(len(set))
	s.plane = admission.NewPlane()
	s.eng = engine.New(s, opts...)
	s.rec, s.met = s.eng.Recorder(), s.eng.Metrics()
	s.plane.Observe(s.rec, s.met)
	for _, w := range s.queue {
		if rec := s.rec; rec != nil {
			if rec.RegisterTask(w.id, w.t.Name) {
				// Routed through the admission plane so every policy
				// narrates churn identically; the event bytes are
				// unchanged.
				s.plane.EmitJoin(0, w.id, w.t.Cost, w.t.Period)
			}
		}
		if met := s.met; met != nil {
			met.EnsureTask(w.id, w.t.Name, w.t.Period)
		}
	}
	return s, nil
}

// Engine returns the engine this scheduler runs on.
func (s *Scheduler) Engine() *engine.Engine { return s.eng }

// Release implements engine.Policy; WRR releases are implicit in the
// head-job release check during selection.
//
//pfair:hotpath
func (s *Scheduler) Release(t int64) {}

// Pick is the engine selection phase: the first m queue entries with
// released, unfinished work run this slot.
//
//pfair:hotpath
func (s *Scheduler) Pick(t int64) {
	running := s.runBuf[:0]
	for _, w := range s.queue {
		if len(running) == s.m {
			break
		}
		if w.rem > 0 && w.headRelease() <= t {
			running = append(running, w)
		}
	}
	s.runBuf = running
}

// Dispatch is the engine commit phase: the selection executes one quantum
// each; a task whose burst is exhausted rotates to the tail with a fresh
// burst.
//
//pfair:hotpath
func (s *Scheduler) Dispatch(t int64) {
	for k, w := range s.runBuf {
		if w.lastRun != t-1 {
			s.stats.ContextSwitches++
			if met := s.met; met != nil {
				met.ContextSwitches.Inc()
			}
		}
		w.lastRun = t
		w.rem--
		w.burst--
		w.alloc++
		s.stats.Allocations++
		if rec := s.rec; rec != nil {
			rec.Emit(obs.Event{Slot: t, Kind: obs.EvSchedule, Task: w.id, Proc: int32(k), A: w.completed + 1})
		}
		if met := s.met; met != nil {
			met.Allocations.Inc()
			if tm := met.Task(w.id); tm != nil {
				tm.Allocations.Inc()
			}
		}
		if w.rem == 0 {
			// Job complete; next job's work becomes available at its
			// release.
			w.completed++
			w.rem = w.t.Cost
		}
		if w.burst == 0 {
			s.rotate(w)
		}
	}
	if rec := s.rec; rec != nil {
		for k := len(s.runBuf); k < s.m; k++ {
			rec.Emit(obs.Event{Slot: t, Kind: obs.EvIdle, Task: -1, Proc: int32(k)})
		}
	}
}

// Account is the engine accounting phase: deadline misses, counters, and
// the OnSlot callback.
//
//pfair:hotpath
func (s *Scheduler) Account(t int64) {
	// Deadline misses: the head job is released and incomplete past its
	// deadline (a caught-up task's head job is unreleased, so the
	// release check excludes it).
	for _, w := range s.queue {
		if w.headDeadline() <= t+1 && w.headRelease() <= t && w.completed+1 > w.lastMissedJob {
			w.lastMissedJob = w.completed + 1
			s.stats.Misses = append(s.stats.Misses, Miss{Task: w.t.Name, Job: w.completed + 1, Deadline: w.headDeadline()})
			if rec := s.rec; rec != nil {
				rec.Emit(obs.Event{Slot: t, Kind: obs.EvMiss, Task: w.id, Proc: -1, A: w.completed + 1, B: w.headDeadline()})
			}
			if met := s.met; met != nil {
				met.Misses.Inc()
				if tm := met.Task(w.id); tm != nil {
					tm.Misses.Inc()
				}
			}
		}
	}
	s.stats.Slots++
	if met := s.met; met != nil {
		met.Slots.Inc()
		met.Occupancy.Observe(int64(len(s.runBuf)))
	}
	if s.onSlot != nil {
		s.buf = s.buf[:0]
		for _, w := range s.runBuf {
			s.buf = append(s.buf, w.t.Name)
		}
		s.onSlot(t, s.buf)
	}
}

// Next implements engine.Policy: WRR is slot-driven.
//
//pfair:hotpath
func (s *Scheduler) Next(t int64) int64 { return t + 1 }

// Step schedules one slot.
func (s *Scheduler) Step() { s.eng.Step() }

// rotate moves w to the tail of the queue and recharges its burst, in
// place (no reallocation: shift the suffix left and reuse the last cell).
//
//pfair:hotpath
func (s *Scheduler) rotate(w *wstate) {
	for i, q := range s.queue {
		if q == w {
			copy(s.queue[i:], s.queue[i+1:])
			s.queue[len(s.queue)-1] = w
			break
		}
	}
	w.burst = w.t.Cost
}

// RunUntil steps to the horizon. The error is non-nil only when the
// engine's livelock backstop trips (*engine.LivelockError).
func (s *Scheduler) RunUntil(horizon int64) error {
	return s.eng.Run(horizon)
}

// Stats returns the accumulated counters.
func (s *Scheduler) Stats() Stats { return s.stats }
