package wrr

import (
	"testing"

	"pfair/internal/engine"
	"pfair/internal/obs"
	"pfair/internal/task"
)

// The WRR policy rides the shared slot engine, so it inherits the
// engine's hot-path contract: once scratch capacities settle, a slot
// costs zero allocations, observed or not. The workload below keeps
// every deadline (m = n, so each released head job runs every slot),
// so the miss-recording slow path stays cold.

func feasibleWRR(tb testing.TB, opts ...engine.Option) *Scheduler {
	tb.Helper()
	set := task.Set{task.MustNew("a", 2, 5), task.MustNew("b", 3, 7)}
	s, err := NewScheduler(len(set), set, opts...)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// TestStepSteadyStateZeroAllocs pins the unobserved slot loop at
// 0 allocs/op after warm-up.
func TestStepSteadyStateZeroAllocs(t *testing.T) {
	s := feasibleWRR(t)
	s.OnSlot(func(int64, []string) {})
	s.RunUntil(2000)
	if allocs := testing.AllocsPerRun(500, func() { s.Step() }); allocs != 0 {
		t.Errorf("Step allocates %v/op in steady state, want 0", allocs)
	}
	if n := len(s.Stats().Misses); n != 0 {
		t.Fatalf("workload missed %d deadlines; the guard needs a miss-free steady state", n)
	}
}

// TestStepObservedZeroAllocs repeats the guard with a live recorder and
// metrics block: observation changes what is recorded, never what is
// allocated.
func TestStepObservedZeroAllocs(t *testing.T) {
	rec := obs.NewRecorder(1 << 12)
	met := obs.NewSchedulerMetrics(nil)
	s := feasibleWRR(t, engine.WithRecorder(rec), engine.WithMetrics(met))
	s.RunUntil(2000)
	if allocs := testing.AllocsPerRun(500, func() { s.Step() }); allocs != 0 {
		t.Errorf("observed Step allocates %v/op in steady state, want 0", allocs)
	}
	if rec.Total() == 0 {
		t.Fatal("recorder attached but no events recorded")
	}
}

// BenchmarkStepAllocs is the benchmark twin, reporting per-slot cost.
func BenchmarkStepAllocs(b *testing.B) {
	s := feasibleWRR(b)
	s.RunUntil(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
