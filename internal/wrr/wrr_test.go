package wrr

import (
	"fmt"
	"math/rand"
	"testing"

	"pfair/internal/core"
	"pfair/internal/rational"
	"pfair/internal/task"
)

func TestSingleTaskMeetsDeadlines(t *testing.T) {
	s, err := NewScheduler(1, task.Set{task.MustNew("T", 2, 5)})
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(100)
	if n := len(s.Stats().Misses); n != 0 {
		t.Fatalf("lone task missed %d deadlines under WRR", n)
	}
	if s.Stats().Allocations != 40 {
		t.Fatalf("allocations = %d, want 40", s.Stats().Allocations)
	}
}

// TestProportionalShare: over a long run, each task's allocation tracks
// its weight (the property WRR does provide).
func TestProportionalShare(t *testing.T) {
	set := task.Set{task.MustNew("A", 1, 4), task.MustNew("B", 1, 2), task.MustNew("C", 1, 4)}
	s, err := NewScheduler(1, set)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 4000
	s.RunUntil(horizon)
	// Σwt = 1: the processor is always busy, and shares track weights.
	if got := s.Stats().Allocations; got != horizon {
		t.Fatalf("allocations = %d, want %d", got, horizon)
	}
}

// TestWRRMissesWherePD2Succeeds: the paper's point — WRR has the right
// long-run shares but no notion of deadlines, so it misses on feasible
// sets PD² schedules. A task with a long period and large cost hogs the
// processor for its whole burst, starving a short-period task.
func TestWRRMissesWherePD2Succeeds(t *testing.T) {
	set := task.Set{
		task.MustNew("short", 1, 4),  // needs a quantum every 4 slots
		task.MustNew("long", 12, 16), // WRR burst of 12 consecutive slots
	}
	if set.TotalWeight().CmpInt(1) > 0 {
		t.Fatal("setup: set must be feasible on one processor")
	}
	s, err := NewScheduler(1, set)
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(320)
	wrrMisses := len(s.Stats().Misses)
	if wrrMisses == 0 {
		t.Fatal("WRR met all deadlines; expected burst-induced misses")
	}

	p := core.NewScheduler(1, core.PD2, core.Options{})
	for _, tk := range set {
		if err := p.Join(tk); err != nil {
			t.Fatal(err)
		}
	}
	p.RunUntil(320)
	p.FinishMisses(320)
	if n := len(p.Stats().Misses); n != 0 {
		t.Fatalf("PD² missed %d deadlines on the same set", n)
	}
}

// TestQuickWRRNeverOverAllocates: a task never receives more quanta than
// released work allows.
func TestQuickWRRNeverOverAllocates(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		m := 1 + r.Intn(3)
		var set task.Set
		budget := rational.NewAcc()
		for i := 0; i < 6; i++ {
			p := int64(2 + r.Intn(12))
			e := int64(1 + r.Intn(int(p)))
			w := rational.New(e, p)
			if budget.Clone().Add(w).CmpInt(int64(m)) > 0 {
				continue
			}
			budget.Add(w)
			set = append(set, task.MustNew(fmt.Sprintf("T%d", i), e, p))
		}
		if len(set) == 0 {
			continue
		}
		s, err := NewScheduler(m, set)
		if err != nil {
			t.Fatal(err)
		}
		const horizon = 1000
		s.RunUntil(horizon)
		// Released work by the horizon bounds total allocations.
		var released int64
		for _, tk := range set {
			released += (horizon/tk.Period + 1) * tk.Cost
		}
		if got := s.Stats().Allocations; got > released {
			t.Fatalf("allocated %d > released %d", got, released)
		}
	}
}

func TestNewSchedulerValidation(t *testing.T) {
	if _, err := NewScheduler(0, task.Set{task.MustNew("T", 1, 2)}); err == nil {
		t.Error("zero processors accepted")
	}
	if _, err := NewScheduler(1, task.Set{task.MustNew("T", 1, 2), task.MustNew("T", 1, 3)}); err == nil {
		t.Error("duplicate names accepted")
	}
}
