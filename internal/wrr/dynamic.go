package wrr

import (
	"fmt"

	"pfair/internal/admission"
	"pfair/internal/engine"
	"pfair/internal/rational"
)

// This file implements engine.Dynamic for the WRR scheduler: mid-run
// join, leave, and reweight through the unified admission plane.
//
// WRR is slot-driven, so every instant between engine steps is a slot
// boundary; transactions apply at the current engine instant (the next
// slot to run). The semantics are:
//
//   - Join: gated on the capacity condition Σ wt ≤ m over the
//     prospective queue — WRR has no deadline guarantee to protect
//     (tasks with tight windows miss regardless; that is the package's
//     point), but admitting beyond total capacity would starve shares
//     outright. The task enters at the tail of the round-robin queue
//     with its periodic lattice anchored at the join slot.
//   - Leave: immediate in-place removal from the queue; the departing
//     task's unfinished head job is abandoned and excluded from further
//     miss accounting.
//   - Reweight: in place, under the same id — WRR has no per-job state
//     worth carrying over, so the task simply restarts its lattice at
//     the reweight slot with the new parameters, a fresh burst, and a
//     tail position (a weight change re-enters the round). EvReweight
//     therefore carries the task's existing id, the in-place variant
//     obs.Accounting rebaselines on.

var _ engine.Dynamic = (*Scheduler)(nil)

// totalWeight returns the exact weight sum of the current queue,
// excluding the named task (empty string excludes nothing).
func (s *Scheduler) totalWeight(except string) *rational.Acc {
	total := rational.NewAcc()
	for _, w := range s.queue {
		if w.t.Name == except {
			continue
		}
		total.Add(w.t.Weight())
	}
	return total
}

// find returns the queue entry with the given name, or nil.
func (s *Scheduler) find(name string) *wstate {
	for _, w := range s.queue {
		if w.t.Name == name {
			return w
		}
	}
	return nil
}

// unqueue removes w from the circular queue in place.
func (s *Scheduler) unqueue(w *wstate) {
	for i, q := range s.queue {
		if q == w {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// Submit implements engine.Dynamic: transactional join/leave/reweight
// through the admission plane. It must be called between engine steps,
// never from inside a phase method. Cold path.
func (s *Scheduler) Submit(req admission.Request) (admission.Decision, error) {
	if err := req.Validate(); err != nil {
		return admission.Decision{}, s.plane.Reject(req.Op, err)
	}
	now := s.eng.Now()
	switch req.Op {
	case admission.OpJoin:
		if req.Model != nil {
			return admission.Decision{}, s.plane.Reject(req.Op,
				fmt.Errorf("wrr: join model %T is not supported", req.Model))
		}
		if s.find(req.Task.Name) != nil {
			return admission.Decision{}, s.plane.Reject(req.Op,
				fmt.Errorf("wrr: task %q already admitted", req.Task.Name))
		}
		if err := admission.Utilization(s.totalWeight(""), req.Task.Weight(), rational.Zero(), int64(s.m)); err != nil {
			return admission.Decision{}, s.plane.Reject(req.Op, err)
		}
		w := &wstate{t: req.Task, id: s.nextID, burst: req.Task.Cost, rem: req.Task.Cost, lastRun: -2, off: now}
		s.nextID++
		s.queue = append(s.queue, w)
		if rec := s.rec; rec != nil {
			if rec.RegisterTask(w.id, w.t.Name) {
				s.plane.EmitJoin(now, w.id, w.t.Cost, w.t.Period)
			}
		}
		if met := s.met; met != nil {
			met.EnsureTask(w.id, w.t.Name, w.t.Period)
		}
		d := admission.Decision{Op: req.Op, Name: req.Task.Name, EffectiveAt: now}
		s.plane.Commit(d)
		return d, nil

	case admission.OpLeave, admission.OpFinish:
		w := s.find(req.Name)
		if w == nil {
			return admission.Decision{}, s.plane.Reject(req.Op,
				fmt.Errorf("wrr: unknown task %q", req.Name))
		}
		s.unqueue(w)
		s.plane.EmitLeave(now, w.id, w.alloc)
		d := admission.Decision{Op: req.Op, Name: req.Name, EffectiveAt: now}
		s.plane.Commit(d)
		return d, nil

	case admission.OpReweight:
		w := s.find(req.Name)
		if w == nil {
			return admission.Decision{}, s.plane.Reject(req.Op,
				fmt.Errorf("wrr: unknown task %q", req.Name))
		}
		nt := *w.t
		nt.Cost, nt.Period = req.NewCost, req.NewPeriod
		if err := admission.Utilization(s.totalWeight(req.Name), nt.Weight(), rational.Zero(), int64(s.m)); err != nil {
			return admission.Decision{}, s.plane.Reject(req.Op, err)
		}
		s.unqueue(w)
		w.t = &nt
		w.burst, w.rem = nt.Cost, nt.Cost
		w.completed, w.lastMissedJob = 0, 0
		w.off = now
		s.queue = append(s.queue, w)
		s.plane.EmitReweight(now, w.id, req.NewCost, req.NewPeriod)
		d := admission.Decision{Op: req.Op, Name: req.Name, EffectiveAt: now}
		s.plane.Commit(d)
		return d, nil
	}
	return admission.Decision{}, s.plane.Reject(req.Op,
		fmt.Errorf("admission: unknown op %d", req.Op))
}

// AdmissionLog returns the accepted dynamic-task transactions in commit
// order.
func (s *Scheduler) AdmissionLog() []admission.Decision { return s.plane.Log() }

// AdmissionRejects returns how many dynamic-task requests were refused.
func (s *Scheduler) AdmissionRejects() int64 { return s.plane.Rejects() }
