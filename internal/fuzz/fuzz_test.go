package fuzz

import (
	"testing"

	"pfair/internal/core"
	"pfair/internal/task"
)

// TestGenCaseDeterministic: a case is fully reconstructible from its
// (kind, seed, trial) replay key, independent of generation order — the
// property every failure report relies on.
func TestGenCaseDeterministic(t *testing.T) {
	for _, kind := range AllKinds() {
		a := GenCase(kind, 7, 13)
		b := GenCase(kind, 7, 13)
		if a.Describe() != b.Describe() {
			t.Errorf("%v: GenCase not deterministic:\n  %s\n  %s", kind, a.Describe(), b.Describe())
		}
		if len(a.Set) == 0 {
			t.Errorf("%v: empty task set generated", kind)
		}
		c := GenCase(kind, 7, 14)
		if a.Describe() == c.Describe() {
			t.Errorf("%v: adjacent trials generated identical cases", kind)
		}
	}
}

// TestCorpusClean is the deterministic CI corpus: a short campaign over
// every kind must produce zero unexplained disagreements. The campaign
// runs through the internal/parallel pool, so under go test -race this
// doubles as the harness's data-race regression test.
func TestCorpusClean(t *testing.T) {
	trials := int64(20)
	if testing.Short() {
		trials = 5
	}
	rep := Run(Config{Seed: 1, Trials: trials})
	if len(rep.Failures) > 0 {
		for _, f := range rep.Failures {
			t.Errorf("%s\n  %v", f.Case.Describe(), f.Violations)
		}
	}
	if rep.Cases != int(trials)*int(numKinds) {
		t.Errorf("ran %d cases, want %d", rep.Cases, int(trials)*int(numKinds))
	}
}

// TestMutationCaught: injecting the PD2NoBBit mutant (PD² minus the b-bit
// tie-break) must be detected, and at least one failure must shrink to a
// reproducer of at most 4 tasks — small enough to debug by hand.
func TestMutationCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation campaign is not short")
	}
	rep := Run(Config{Seed: 2, Trials: 150, Kinds: []Kind{KindFullUtil}, Mutant: core.PD2NoBBit})
	if len(rep.Failures) == 0 {
		t.Fatal("dropping the b-bit tie-break from PD² survived 150 full-utilization cases")
	}
	min := len(rep.Failures[0].Case.Set)
	for _, f := range rep.Failures {
		if f.Shrunk == nil {
			t.Fatalf("failure %s has no shrunken reproducer", f.Case.Replay())
		}
		if !fails(*f.Shrunk, core.PD2NoBBit) {
			t.Errorf("shrunken reproducer for %s does not fail", f.Case.Replay())
		}
		if n := len(f.Shrunk.Set); n < min {
			min = n
		}
	}
	if min > 4 {
		t.Errorf("smallest shrunken reproducer has %d tasks, want ≤ 4", min)
	}
	t.Logf("caught with %d failures, smallest reproducer %d tasks", len(rep.Failures), min)
}

// TestEPDFMutantCaught: substituting EPDF for PD² is the second injected
// mutation the oracle must flag.
func TestEPDFMutantCaught(t *testing.T) {
	rep := Run(Config{Seed: 1, Trials: 40, Kinds: []Kind{KindFullUtil}, Mutant: core.EPDF, NoShrink: true})
	if len(rep.Failures) == 0 {
		t.Fatal("EPDF survived 40 full-utilization cases as a PD² substitute")
	}
}

// TestEPDFCounterexamplesExplained: the EPDF kind must find fresh
// counterexamples to EPDF optimality on M ≥ 3 (reporting them as
// explained, not as violations).
func TestEPDFCounterexamplesExplained(t *testing.T) {
	if testing.Short() {
		t.Skip("counterexample hunt is not short")
	}
	rep := Run(Config{Seed: 1, Trials: 150, Kinds: []Kind{KindEPDF}, NoShrink: true})
	if len(rep.Failures) > 0 {
		t.Fatalf("EPDF kind produced unexplained violations: %v", rep.Failures[0].Violations)
	}
	if rep.Explained == 0 {
		t.Error("no EPDF counterexample found in 150 full-utilization sets")
	}
	t.Logf("%d explained EPDF counterexamples", rep.Explained)
}

// TestShrinkPinnedEPDFCounterexample: the 8-task counterexample pinned in
// the core test suite (EPDF misses on 5 processors) must shrink to a
// strictly smaller reproducer that still fails EPDF.
func TestShrinkPinnedEPDFCounterexample(t *testing.T) {
	set := task.Set{
		task.MustNew("T0", 4, 9), task.MustNew("T1", 3, 6), task.MustNew("T2", 1, 2),
		task.MustNew("T3", 8, 9), task.MustNew("T4", 6, 10), task.MustNew("T5", 3, 6),
		task.MustNew("T6", 9, 10), task.MustNew("T7", 2, 3),
	}
	c := Case{Kind: KindFullUtil, Set: set, M: 5, Horizon: 2 * set.Hyperperiod()}
	if !fails(c, core.EPDF) {
		t.Fatal("the pinned EPDF counterexample no longer fails EPDF")
	}
	sc := Shrink(c, core.EPDF)
	if !fails(sc, core.EPDF) {
		t.Fatal("shrunken case does not fail")
	}
	if len(sc.Set) >= len(set) && sc.M >= c.M {
		t.Errorf("shrinker made no progress on the 8-task counterexample: %d tasks M=%d", len(sc.Set), sc.M)
	}
	t.Logf("shrunk 8 tasks / M=5 to %d tasks / M=%d: %v", len(sc.Set), sc.M, sc.Set)
}

// TestParseReplayRoundTrip: every case's replay key parses back to the
// coordinates that regenerate it.
func TestParseReplayRoundTrip(t *testing.T) {
	for _, kind := range AllKinds() {
		c := GenCase(kind, 42, 17)
		k, seed, trial, err := ParseReplay(c.Replay())
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if k != kind || seed != 42 || trial != 17 {
			t.Errorf("%v: round trip gave %v/%d/%d", kind, k, seed, trial)
		}
		replayed := GenCase(k, seed, trial)
		if replayed.Describe() != c.Describe() {
			t.Errorf("%v: replayed case differs", kind)
		}
	}
	for _, bad := range []string{"", "fullutil", "fullutil/1", "bogus/1/2", "fullutil/x/2", "fullutil/1/x"} {
		if _, _, _, err := ParseReplay(bad); err == nil {
			t.Errorf("ParseReplay(%q) succeeded", bad)
		}
	}
}

// TestReweightNoMisses pins the reweight path deterministically (the
// random dynplane kind scripts it too): a mid-run rate change
// (leave-and-rejoin under the hood) must not cost any task a deadline.
func TestReweightNoMisses(t *testing.T) {
	s := core.NewScheduler(2, core.PD2, core.Options{})
	set := task.Set{task.MustNew("A", 1, 2), task.MustNew("B", 2, 3), task.MustNew("C", 1, 4)}
	for _, tk := range set {
		if err := s.Join(tk); err != nil {
			t.Fatalf("join %v: %v", tk, err)
		}
	}
	s.RunUntil(50)
	at, err := s.Reweight("C", 3, 4)
	if err != nil {
		t.Fatalf("reweight: %v", err)
	}
	s.RunUntil(at + 240)
	s.FinishMisses(at + 240)
	if n := len(s.Stats().Misses); n != 0 {
		t.Fatalf("reweight caused %d misses, first %+v", n, s.Stats().Misses[0])
	}
}
