package fuzz

import (
	"pfair/internal/admission"
	"pfair/internal/core"
	"pfair/internal/edf"
	"pfair/internal/rm"
	"pfair/internal/supertask"
	"pfair/internal/task"
	"pfair/internal/verify"
	"pfair/internal/wrr"
)

// This file checks KindDynPlane: one churn script replayed against every
// admission-plane implementation. The legs are independent — each policy
// applies its own feasibility gate, so accept/reject sequences differ
// across policies by design — but within each leg the plane's contract
// must hold: core's legacy entry points and Submit are byte-identical,
// gated admissions never cost an admitted task a deadline where the
// policy guarantees one, and the ledger counts exactly the accepted and
// refused requests.

// dynScript expands the case into per-slot admission requests. Within a
// slot the order is joins, then reweights, then leaves, each in declared
// task order, so every leg submits the identical sequence.
func dynScript(c Case) map[int64][]admission.Request {
	script := map[int64][]admission.Request{}
	for _, t := range c.Set {
		at := c.Joins[t.Name] // absent = 0, the synchronous base
		script[at] = append(script[at], admission.Join(t))
	}
	for _, t := range c.Set {
		if rw, ok := c.Reweights[t.Name]; ok {
			script[rw[0]] = append(script[rw[0]], admission.Reweight(t.Name, rw[1], rw[2]))
		}
	}
	for _, t := range c.Set {
		if at, ok := c.Leaves[t.Name]; ok {
			script[at] = append(script[at], admission.Leave(t.Name))
		}
	}
	return script
}

// checkDynPlane runs the case's churn script through every plane.
func checkDynPlane(c Case, mutant core.Algorithm) Outcome {
	var v violations
	checkCoreDynPlane(c, mutant, &v)
	checkEDFDynPlane(c, &v)
	checkRMDynPlane(c, &v)
	checkWRRDynPlane(c, &v)
	checkSupertaskDynPlane(c, mutant, &v)
	return Outcome{Violations: v.list}
}

// dynRun captures one core run of the script for differential comparison.
type dynRun struct {
	slots   []verify.Slot
	accepts []bool
	// leaves counts accepted OpLeave requests: core answers an idempotent
	// repeat of a pending leave (e.g. after a reweight, which is
	// leave-and-rejoin under the hood) without re-ledgering it, so the
	// ledger may fall short of the accepted count by up to this many.
	leaves  int
	misses  int
	ledger  int
	rejects int64
}

// runCoreDynPlane drives PD² (or its mutant) over the script through
// either the legacy entry points (Join/Reweight/Leave) or Submit.
func runCoreDynPlane(c Case, mutant core.Algorithm, legacy bool) dynRun {
	s := core.NewScheduler(c.M, mutant, core.Options{})
	rec := &verify.Recorder{}
	s.OnSlot(rec.Record)
	script := dynScript(c)
	var r dynRun
	for slot := int64(0); slot < c.Horizon; slot++ {
		for _, req := range script[slot] {
			var err error
			switch {
			case !legacy:
				_, err = s.Submit(req)
			case req.Op == admission.OpJoin:
				err = s.Join(req.Task)
			case req.Op == admission.OpReweight:
				_, err = s.Reweight(req.Name, req.NewCost, req.NewPeriod)
			default:
				_, err = s.Leave(req.Name)
			}
			r.accepts = append(r.accepts, err == nil)
			if err == nil && req.Op == admission.OpLeave {
				r.leaves++
			}
		}
		s.Step()
	}
	s.FinishMisses(c.Horizon)
	r.slots = rec.Slots
	r.misses = len(s.Stats().Misses)
	r.ledger = len(s.AdmissionLog())
	r.rejects = s.AdmissionRejects()
	return r
}

// checkCoreDynPlane: the legacy entry points are shims over Submit, so
// the two runs must agree on everything — accept/reject per request,
// the assignment stream slot for slot, miss-freedom (every operation is
// feasibility-gated, so the system is never infeasible), and the
// ledger/reject counts, which must also reconcile with the observed
// accept sequence.
func checkCoreDynPlane(c Case, mutant core.Algorithm, v *violations) {
	legacy := runCoreDynPlane(c, mutant, true)
	plane := runCoreDynPlane(c, mutant, false)
	if len(legacy.accepts) != len(plane.accepts) {
		v.addf("dynplane/core: legacy issued %d requests, Submit %d", len(legacy.accepts), len(plane.accepts))
		return
	}
	for i := range legacy.accepts {
		if legacy.accepts[i] != plane.accepts[i] {
			v.addf("dynplane/core: request %d: legacy accept=%v, Submit accept=%v", i, legacy.accepts[i], plane.accepts[i])
			return
		}
	}
	if len(legacy.slots) != len(plane.slots) {
		v.addf("dynplane/core: legacy recorded %d slots, Submit %d", len(legacy.slots), len(plane.slots))
		return
	}
	for i := range legacy.slots {
		if !slotsEqual(legacy.slots[i], plane.slots[i]) {
			v.addf("dynplane/core: schedules diverge at slot %d: legacy %v vs Submit %v",
				legacy.slots[i].Time, legacy.slots[i].Assigned, plane.slots[i].Assigned)
			break
		}
	}
	if legacy.ledger != plane.ledger || legacy.rejects != plane.rejects {
		v.addf("dynplane/core: ledger parity broken: legacy %d commits/%d rejects, Submit %d/%d",
			legacy.ledger, legacy.rejects, plane.ledger, plane.rejects)
	}
	for _, r := range []struct {
		name string
		run  dynRun
	}{{"legacy", legacy}, {"Submit", plane}} {
		if r.run.misses > 0 {
			v.addf("dynplane/core: %d misses via %s under gated churn", r.run.misses, r.name)
		}
		accepted := 0
		for _, ok := range r.run.accepts {
			if ok {
				accepted++
			}
		}
		if r.run.ledger > accepted || r.run.ledger < accepted-r.run.leaves {
			v.addf("dynplane/core: %s ledger has %d transactions, %d requests were accepted (%d of them leaves)",
				r.name, r.run.ledger, accepted, r.run.leaves)
		}
		if want := int64(len(r.run.accepts) - accepted); r.run.rejects != want {
			v.addf("dynplane/core: %s ledgered %d rejects, %d requests were refused", r.name, r.run.rejects, want)
		}
	}
}

// runScriptPlane replays the script against one policy's Submit,
// advancing its clock to each operation slot first, and cross-checks the
// plane ledger against the observed accept/reject counts. It returns
// false if advancing livelocked (already reported).
func runScriptPlane(c Case, label string, v *violations, advance func(slot int64) error,
	submit func(req admission.Request) error, log func() (int, int64)) bool {
	script := dynScript(c)
	accepted, rejected := 0, 0
	for slot := int64(0); slot < c.Horizon; slot++ {
		reqs := script[slot]
		if len(reqs) == 0 {
			continue
		}
		if err := advance(slot); err != nil {
			v.addf("dynplane/%s: advancing to slot %d: %v", label, slot, err)
			return false
		}
		for _, req := range reqs {
			if submit(req) == nil {
				accepted++
			} else {
				rejected++
			}
		}
	}
	ledger, rejects := log()
	if ledger != accepted {
		v.addf("dynplane/%s: ledger has %d transactions, %d requests were accepted", label, ledger, accepted)
	}
	if rejects != int64(rejected) {
		v.addf("dynplane/%s: ledgered %d rejects, %d requests were refused", label, rejects, rejected)
	}
	return true
}

// checkEDFDynPlane: plane-admitted churn keeps Σ bandwidth ≤ 1 at every
// instant, departures only remove demand, and EDF is optimal on one
// processor for any release offsets — so no admitted job may miss.
func checkEDFDynPlane(c Case, v *violations) {
	sim := edf.NewSimulator()
	ok := runScriptPlane(c, "edf", v,
		func(slot int64) error { return sim.Engine().Run(slot) },
		func(req admission.Request) error { _, err := sim.Submit(req); return err },
		func() (int, int64) { return len(sim.AdmissionLog()), sim.AdmissionRejects() })
	if !ok {
		return
	}
	if err := sim.Run(c.Horizon); err != nil {
		v.addf("dynplane/edf: %v", err)
		return
	}
	if misses := sim.Stats().Misses; len(misses) > 0 {
		v.addf("dynplane/edf: %d misses under plane-gated churn (Σ bandwidth ≤ 1 throughout), first %+v",
			len(misses), misses[0])
	}
}

// checkRMDynPlane: the hyperbolic gate admits against the critical
// instant, which upper-bounds the interference of any actual phasing —
// so mid-run joins with synchronous first releases, and leaves that only
// remove interference, may never cost an admitted task a deadline.
func checkRMDynPlane(c Case, v *violations) {
	sim := rm.NewSimulator(nil)
	ok := runScriptPlane(c, "rm", v,
		func(slot int64) error { return sim.Engine().Run(slot) },
		func(req admission.Request) error { _, err := sim.Submit(req); return err },
		func() (int, int64) { return len(sim.AdmissionLog()), sim.AdmissionRejects() })
	if !ok {
		return
	}
	if err := sim.Run(c.Horizon); err != nil {
		v.addf("dynplane/rm: %v", err)
		return
	}
	if misses := sim.Stats().Misses; len(misses) > 0 {
		v.addf("dynplane/rm: %d misses under hyperbolic-gated churn, first %+v", len(misses), misses[0])
	}
}

// checkWRRDynPlane: WRR guarantees no deadlines, so the leg checks the
// plane contract itself — capacity-gated admission, ledger consistency,
// and a run that completes every slot without the engine tripping.
func checkWRRDynPlane(c Case, v *violations) {
	s, err := wrr.NewScheduler(c.M, nil)
	if err != nil {
		v.addf("dynplane/wrr: %v", err)
		return
	}
	ok := runScriptPlane(c, "wrr", v,
		func(slot int64) error { return s.RunUntil(slot) },
		func(req admission.Request) error { _, err := s.Submit(req); return err },
		func() (int, int64) { return len(s.AdmissionLog()), s.AdmissionRejects() })
	if !ok {
		return
	}
	if err := s.RunUntil(c.Horizon); err != nil {
		v.addf("dynplane/wrr: %v", err)
		return
	}
	if got := s.Stats().Slots; got != c.Horizon {
		v.addf("dynplane/wrr: ran %d slots, want %d", got, c.Horizon)
	}
}

// checkSupertaskDynPlane bundles the case's late joiners into one
// supertask and admits it through the system's plane: the base tasks
// join at slot 0, the bundle joins (with the Holman–Anderson inflated
// weight) at the earliest scripted join slot, and departs at the latest
// scripted leave. Everything the plane admits is Equation (2)-feasible,
// so the global Pfair schedule must stay miss-free; component misses are
// the §5.5 trade-off and are not violations.
func checkSupertaskDynPlane(c Case, mutant core.Algorithm, v *violations) {
	var comps task.Set
	joinAt, leaveAt := int64(-1), int64(-1)
	for _, t := range c.Set {
		at := c.Joins[t.Name]
		if at == 0 {
			continue
		}
		comps = append(comps, t)
		if joinAt < 0 || at < joinAt {
			joinAt = at
		}
		if la, ok := c.Leaves[t.Name]; ok && la > leaveAt {
			leaveAt = la
		}
	}
	if len(comps) == 0 {
		return
	}
	st := &supertask.Supertask{Name: "S0", Components: comps}
	req, err := supertask.JoinRequest(st, true)
	if err != nil {
		return // the bundle exceeds one processor; not a supertask case
	}
	sys := supertask.NewSystem(c.M, mutant)
	accepted, rejected := 0, 0
	submit := func(r admission.Request) {
		if _, err := sys.Submit(r); err == nil {
			accepted++
		} else {
			rejected++
		}
	}
	for _, t := range c.Set {
		if c.Joins[t.Name] == 0 {
			submit(admission.Join(t))
		}
	}
	sys.Run(joinAt)
	submit(req)
	if leaveAt > joinAt {
		sys.Run(leaveAt)
		submit(admission.Leave("S0"))
	}
	res := sys.Run(c.Horizon)
	if n := len(res.Scheduler.Misses); n > 0 {
		v.addf("dynplane/supertask: %d global misses under a plane-admitted bundle, first %+v",
			n, res.Scheduler.Misses[0])
	}
	if got := len(sys.AdmissionLog()); got != accepted {
		v.addf("dynplane/supertask: ledger has %d transactions, %d requests were accepted", got, accepted)
	}
	if got := sys.AdmissionRejects(); got != int64(rejected) {
		v.addf("dynplane/supertask: ledgered %d rejects, %d requests were refused", got, rejected)
	}
}
