package fuzz

import (
	"pfair/internal/core"
	"pfair/internal/rational"
	"pfair/internal/task"
)

// Shrink reduces a failing case to a locally-minimal reproducer: it
// repeatedly tries dropping a task, decrementing the processor count,
// halving a cost, and halving the horizon, keeping any reduction that
// still fails the oracle, until no single reduction does. The result is
// what a human debugs instead of the original dozen-task set.
func Shrink(c Case, mutant core.Algorithm) Case {
	cur := c
	for {
		next, reduced := shrinkStep(cur, mutant)
		if !reduced {
			return cur
		}
		cur = next
	}
}

func fails(c Case, mutant core.Algorithm) bool {
	return len(CheckCase(c, mutant).Violations) > 0
}

// shrinkStep tries every single-edit reduction and returns the first that
// still fails.
func shrinkStep(c Case, mutant core.Algorithm) (Case, bool) {
	// Drop one task (and its join/leave/delay script entries).
	for i := range c.Set {
		if len(c.Set) <= 1 {
			break
		}
		cand := dropTask(c, i)
		if fails(cand, mutant) {
			return cand, true
		}
	}
	// Decrement the processor count, keeping the set feasible so that
	// admission failures cannot masquerade as scheduler bugs.
	if usesProcessors(c.Kind) && c.M > 1 && c.Set.MinProcessors() <= c.M-1 {
		cand := c
		cand.M--
		if fails(cand, mutant) {
			return cand, true
		}
	}
	// Drop one task AND give up a processor together: on full-utilization
	// sets a lone drop opens slack that hides the bug, but shedding a
	// near-unit-weight task along with one processor keeps the system
	// tight.
	if usesProcessors(c.Kind) && c.M > 1 {
		for i := range c.Set {
			if len(c.Set) <= 1 {
				break
			}
			cand := dropTask(c, i)
			cand.M--
			if cand.Set.MinProcessors() <= cand.M && fails(cand, mutant) {
				return cand, true
			}
		}
	}
	// Drop task i, give up one processor, and trim task j by exactly
	// 1 − wt(i), so the total weight drops by exactly one and the set
	// stays tight at Σwt = M−1. On heavy full-utilization sets this is
	// the only way to lose a task at all: a lone drop leaves a fractional
	// hole that M−1 processors cannot cover and M processors cover with
	// bug-hiding slack.
	if (c.Kind == KindFullUtil || c.Kind == KindEPDF) && c.M > 1 && len(c.Set) > 1 {
		for i := range c.Set {
			makeup := rational.One().Sub(c.Set[i].Weight())
			for j := range c.Set {
				if j == i {
					continue
				}
				wj := c.Set[j].Weight().Sub(makeup)
				if wj.Sign() <= 0 {
					continue
				}
				cand := dropTask(c, i)
				cand.M--
				jj := j
				if i < j {
					jj--
				}
				cand.Set[jj] = task.MustNew(cand.Set[jj].Name, wj.Num(), wj.Den())
				cand.Horizon = 2 * cand.Set.Hyperperiod()
				if fails(cand, mutant) {
					return cand, true
				}
			}
		}
	}
	// Merge two tasks into one of exactly their summed weight (when that
	// is ≤ 1). This shrinks the task count without opening any slack —
	// the reduction that actually minimizes full-utilization cases. Only
	// for the plain periodic kinds: a merge has no meaning across
	// different join slots or delay tables.
	if c.Kind == KindFullUtil || c.Kind == KindEPDF {
		for i := range c.Set {
			for j := i + 1; j < len(c.Set); j++ {
				w := c.Set[i].Weight().Add(c.Set[j].Weight())
				if rational.One().Less(w) {
					continue
				}
				cand := c
				cand.Set = append(task.Set{}, c.Set...)
				cand.Set[i] = task.MustNew(c.Set[i].Name, w.Num(), w.Den())
				cand.Set = append(cand.Set[:j], cand.Set[j+1:]...)
				cand.Horizon = 2 * cand.Set.Hyperperiod()
				if fails(cand, mutant) {
					return cand, true
				}
			}
		}
	}
	// Halve one task's cost (weight shrinks, feasibility is preserved).
	for i, t := range c.Set {
		if t.Cost <= 1 {
			continue
		}
		cand := c
		cand.Set = c.Set.Clone()
		cand.Set[i] = task.MustNew(t.Name, t.Cost/2, t.Period)
		if fails(cand, mutant) {
			return cand, true
		}
	}
	// Halve the horizon.
	if c.Horizon > 4 {
		cand := c
		cand.Horizon = c.Horizon / 2
		if fails(cand, mutant) {
			return cand, true
		}
	}
	return c, false
}

func usesProcessors(k Kind) bool {
	switch k {
	case KindFullUtil, KindEPDF, KindDynamic, KindIS, KindShard, KindDynPlane:
		return true
	}
	return false
}

func dropTask(c Case, i int) Case {
	cand := c
	name := c.Set[i].Name
	cand.Set = append(append(task.Set{}, c.Set[:i]...), c.Set[i+1:]...)
	cand.Joins = dropKey(c.Joins, name)
	cand.Leaves = dropKey(c.Leaves, name)
	cand.Reweights = dropKey(c.Reweights, name)
	if c.Delays != nil {
		d := make(map[string][]int64, len(c.Delays))
		for k, v := range c.Delays { //pfair:orderinvariant rebuilds a map; insertion order does not affect map equality
			if k != name {
				d[k] = v
			}
		}
		cand.Delays = d
	}
	return cand
}

func dropKey[V any](m map[string]V, name string) map[string]V {
	if m == nil {
		return nil
	}
	out := make(map[string]V, len(m))
	for k, v := range m { //pfair:orderinvariant rebuilds a map; insertion order does not affect map equality
		if k != name {
			out[k] = v
		}
	}
	return out
}
