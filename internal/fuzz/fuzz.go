// Package fuzz is the differential scheduling oracle: it generates random
// task systems and cross-checks every pair of components that must agree
// on feasibility, using internal/verify as the independent trace judge.
//
// The pairs (one Kind per pairing):
//
//   - KindFullUtil: PD², PD, and PF on exactly-full-utilization sets. All
//     three are optimal, so every generated set must be scheduled with
//     zero misses and a verify.Check-clean trace.
//   - KindEPDF: EPDF vs PD² on the same full-utilization sets. On one or
//     two processors EPDF is optimal and held to the same standard; on
//     three or more its misses are *explained* counterexamples (the
//     scheduler-side reason the tie-break machinery exists), counted but
//     not flagged — unless PD² misses too, which is a real violation.
//   - KindEDF: the uniprocessor EDF simulator vs the exact utilization
//     test, both directions (schedulable ⇒ no misses in a hyperperiod;
//     unschedulable ⇒ at least one miss, since demand exceeds supply).
//   - KindRM: the RM simulator vs exact response-time analysis (the
//     synchronous release is the critical instant, so the two must agree),
//     plus the Liu–Layland and hyperbolic sufficient tests, which may
//     never contradict the exact test.
//   - KindPartition: every bin-packing heuristic vs the branch-and-bound
//     packer: exact ≤ heuristic, exact ≥ ⌈ΣU⌉, and each Pack placement
//     must replay through the acceptance test.
//   - KindDynamic: random joins and leaves under the Section 2 rules;
//     PD² must keep every admitted deadline, and the trace must verify
//     with per-task join offsets.
//   - KindIS: intra-sporadic delay schedules; PD² remains optimal under
//     the IS model, and the trace must verify with the shifted windows.
//   - KindShard: the sharded ready-queue representation vs the single
//     queue on full-utilization sets. The shard tier's pick is an exact
//     tournament under a total priority order, so the assignment stream
//     must be identical slot for slot at every shard count — any
//     divergence is a representation bug, caught at the first slot.
//   - KindDynPlane: one churn script — joins, reweights, and leaves —
//     replayed against every admission-plane implementation. Core's
//     legacy entry points and Submit must produce identical schedules
//     and identical accept/reject sequences; the edf, rm, and wrr
//     planes must honor their own feasibility gates (no admitted task
//     misses where the gate guarantees it), and every plane's ledger
//     must count exactly its accepted and refused requests.
//
// Every case is reconstructible from (kind, seed, trial) via GenCase —
// the replay key a failure report prints. When a case fails, Shrink
// reduces it (drop a task, halve a cost, decrement a processor, halve the
// horizon) to a minimal reproducer.
package fuzz

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"pfair/internal/rational"
	"pfair/internal/task"
	"pfair/internal/taskgen"
)

// Kind selects which scheduler pairing a case exercises.
type Kind int

const (
	KindFullUtil Kind = iota
	KindEPDF
	KindEDF
	KindRM
	KindPartition
	KindDynamic
	KindIS
	KindShard
	KindDynPlane
	numKinds
)

var kindNames = [...]string{"fullutil", "epdf", "edf", "rm", "partition", "dynamic", "is", "shard", "dynplane"}

func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind resolves a kind name as printed by String.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("fuzz: unknown kind %q", s)
}

// AllKinds returns every kind, in order.
func AllKinds() []Kind {
	ks := make([]Kind, numKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// periodMenu is the fuzzing period menu. Its lcm is 360, so every
// generated set has a hyperperiod dividing 360 and two hyperperiods (the
// Pfair horizon) stay within 720 slots — small enough that thousands of
// cases run in seconds, large enough for rich window interleavings.
var periodMenu = []int64{2, 3, 4, 5, 6, 8, 9, 10, 12}

// Case is one generated test input. It is self-contained: CheckCase needs
// nothing else, and Shrink edits it structurally.
type Case struct {
	Kind  Kind
	Seed  int64 // base seed; Replay() reconstructs the case from these
	Trial int64

	Set     task.Set
	M       int   // processors (Pfair and partition kinds)
	Horizon int64 // slots (Pfair kinds) or time units (EDF/RM)

	// Joins and Leaves give, per task name, the slot at which the task
	// joins (absent = 0) and the slot at which its departure is requested
	// (absent = never). KindDynamic and KindDynPlane.
	Joins  map[string]int64
	Leaves map[string]int64

	// Reweights gives, per task name, a [slot, newCost, newPeriod]
	// triple: at that slot the task requests new parameters through the
	// admission plane. KindDynPlane only.
	Reweights map[string][3]int64

	// Delays holds per-task IS inter-subtask delay tables. KindIS only.
	Delays map[string][]int64
}

// Replay returns the one-line replay key, e.g. "fullutil/1/42", accepted
// by cmd/fuzz -replay and by ParseReplay.
func (c *Case) Replay() string {
	return fmt.Sprintf("%s/%d/%d", c.Kind, c.Seed, c.Trial)
}

// ParseReplay parses a kind/seed/trial replay key.
func ParseReplay(s string) (Kind, int64, int64, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("fuzz: replay key %q is not kind/seed/trial", s)
	}
	k, err := ParseKind(parts[0])
	if err != nil {
		return 0, 0, 0, err
	}
	seed, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("fuzz: bad seed in replay key %q", s)
	}
	trial, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("fuzz: bad trial in replay key %q", s)
	}
	return k, seed, trial, nil
}

// GenCase deterministically generates the case for (kind, seed, trial).
// The stream is derived with taskgen.SubSeed, so every trial is an
// independent reproducible stream regardless of worker interleaving.
func GenCase(kind Kind, seed, trial int64) Case {
	rng := rand.New(rand.NewSource(taskgen.SubSeed(seed, 1000+int64(kind), trial)))
	c := Case{Kind: kind, Seed: seed, Trial: trial}
	switch kind {
	case KindFullUtil, KindEPDF, KindShard:
		// Shard cases reuse the full-utilization regime: with zero slack
		// every slot is contended, so a sharded pick that deviates from
		// the single queue's total order diverges immediately.
		c.Set, c.M = genFullUtil(rng)
		c.Horizon = 2 * c.Set.Hyperperiod()
	case KindEDF, KindRM:
		c.Set = genUniSet(rng)
		c.M = 1
		c.Horizon = c.Set.Hyperperiod()
	case KindPartition:
		c.Set = genPartitionSet(rng)
	case KindDynamic:
		genDynamic(rng, &c)
	case KindIS:
		genIS(rng, &c)
	case KindDynPlane:
		genDynPlane(rng, &c)
	default:
		//pfair:allowpanic exhaustive switch over Kind; a new kind must be wired here
		panic(fmt.Sprintf("fuzz: GenCase(%v)", kind))
	}
	return c
}

// genFullUtil builds a set whose total weight is *exactly* m for a random
// m in [2,5] — the regime where the optimality claims have no slack and a
// single mis-ordered slot cascades into a miss. Random tasks are drawn
// while they fit; the exact remainder is closed out with weight-1 tasks
// and one final filler task whose weight is the remainder itself (its
// denominator divides lcm(periodMenu) = 360, so it is always a valid
// task).
func genFullUtil(rng *rand.Rand) (task.Set, int) {
	m := 2 + rng.Intn(4)
	acc := rational.NewAcc()
	var set task.Set
	target := 2 + rng.Intn(3*m)
	// Half the campaigns lean heavy: sets of few heavy tasks with diverse
	// periods are where tie-break bugs live (every slot is contended and
	// windows overlap), and a uniform cost draw rarely produces them.
	heavy := rng.Intn(2) == 0
	if heavy {
		target = 2 + rng.Intn(m+2)
	}
	for tries := 0; tries < 64 && len(set) < target; tries++ {
		p := periodMenu[rng.Intn(len(periodMenu))]
		e := 1 + rng.Int63n(p)
		if heavy {
			e = p - rng.Int63n(p/2+1)
		}
		w := rational.New(e, p)
		if acc.Clone().Add(w).CmpInt(int64(m)) > 0 {
			continue
		}
		set = append(set, task.MustNew(fmt.Sprintf("T%d", len(set)), e, p))
		acc.Add(w)
	}
	rem := remainder(m, acc)
	for rational.One().Less(rem) {
		p := periodMenu[rng.Intn(len(periodMenu))]
		set = append(set, task.MustNew(fmt.Sprintf("T%d", len(set)), p, p))
		rem = rem.Sub(rational.One())
	}
	if !rem.IsZero() {
		set = append(set, task.MustNew(fmt.Sprintf("T%d", len(set)), rem.Num(), rem.Den()))
	}
	return set, m
}

// remainder returns m − Σweights as an exact rational. The accumulator's
// value always reduces to a denominator dividing 360 here, so the
// conversion cannot fail.
func remainder(m int, acc *rational.Acc) rational.Rat {
	r, ok := acc.Clone().Sub(rational.FromInt(int64(m))).Rat()
	if !ok {
		//pfair:allowpanic invariant: denominators divide 360 by construction, per the doc comment
		panic("fuzz: full-utilization remainder not representable")
	}
	return r.Neg()
}

// genUniSet draws a uniprocessor set with total utilization in
// [0.5, 1.25] — straddling the Σu = 1 feasibility boundary so both the
// schedulable and the unschedulable branches of the EDF/RM oracles fire.
func genUniSet(rng *rand.Rand) task.Set {
	n := 2 + rng.Intn(7)
	total := 0.5 + 0.75*rng.Float64()
	g := taskgen.New(rng.Int63())
	set, err := g.Set("T", n, total, periodMenu)
	if err != nil {
		//pfair:allowpanic generator parameters are in-range by construction
		panic(fmt.Sprintf("fuzz: genUniSet: %v", err))
	}
	return set
}

// genPartitionSet draws a small multiprocessor set (n ≤ 9, so the
// branch-and-bound packer stays fast) with total utilization in [1, 3].
func genPartitionSet(rng *rand.Rand) task.Set {
	n := 2 + rng.Intn(8)
	total := 1 + 2*rng.Float64()
	if max := float64(n) * 0.999; total > max {
		total = max
	}
	g := taskgen.New(rng.Int63())
	set, err := g.Set("T", n, total, periodMenu)
	if err != nil {
		//pfair:allowpanic generator parameters are in-range by construction
		panic(fmt.Sprintf("fuzz: genPartitionSet: %v", err))
	}
	return set
}

// genDynamic builds a join/leave scenario: a base set present from slot 0
// at ~60% of capacity, late joiners that may or may not be admitted, and
// departure requests (the scheduler delays each to its safe slot).
func genDynamic(rng *rand.Rand, c *Case) {
	c.M = 2 + rng.Intn(3)
	c.Horizon = 180 + rng.Int63n(180)
	c.Joins = map[string]int64{}
	c.Leaves = map[string]int64{}

	n0 := 2 + rng.Intn(3)
	total := (0.4 + 0.3*rng.Float64()) * float64(c.M)
	if max := float64(n0) * 0.999; total > max {
		total = max
	}
	g := taskgen.New(rng.Int63())
	base, err := g.Set("B", n0, total, periodMenu)
	if err != nil {
		//pfair:allowpanic generator parameters are in-range by construction
		panic(fmt.Sprintf("fuzz: genDynamic: %v", err))
	}
	c.Set = base

	nj := 1 + rng.Intn(3)
	for j := 0; j < nj; j++ {
		p := periodMenu[rng.Intn(len(periodMenu))]
		e := 1 + rng.Int63n((p+1)/2)
		name := fmt.Sprintf("J%d", j)
		c.Set = append(c.Set, task.MustNew(name, e, p))
		c.Joins[name] = 1 + rng.Int63n(c.Horizon/2)
	}
	for _, t := range c.Set {
		if rng.Float64() < 0.4 {
			at := c.Horizon/4 + rng.Int63n(c.Horizon/2)
			if at > c.Joins[t.Name] {
				c.Leaves[t.Name] = at
			}
		}
	}
}

// genDynPlane builds a uniprocessor churn script — joins, reweights,
// and leaves — that every admission-plane implementation replays
// (M = 1 is the one capacity all four policies share: Pfair's
// Equation (2), EDF's Σ bandwidth ≤ 1, RM's hyperbolic bound, and
// WRR's Σ wt ≤ m all gate against a single processor). The base set
// leaves slack so most operations are admitted; joiner weights range
// up to a full processor so the reject path fires too, and reweights
// may land before a task's join or after its leave, exercising the
// unknown-task rejections.
func genDynPlane(rng *rand.Rand, c *Case) {
	c.M = 1
	c.Horizon = 120 + rng.Int63n(120)
	c.Joins = map[string]int64{}
	c.Leaves = map[string]int64{}
	c.Reweights = map[string][3]int64{}

	n0 := 2 + rng.Intn(2)
	total := 0.35 + 0.2*rng.Float64()
	g := taskgen.New(rng.Int63())
	base, err := g.Set("B", n0, total, periodMenu)
	if err != nil {
		//pfair:allowpanic generator parameters are in-range by construction
		panic(fmt.Sprintf("fuzz: genDynPlane: %v", err))
	}
	c.Set = base

	nj := 1 + rng.Intn(2)
	for j := 0; j < nj; j++ {
		p := periodMenu[rng.Intn(len(periodMenu))]
		e := 1 + rng.Int63n(p) // up to weight one: some joiners must be refused
		name := fmt.Sprintf("J%d", j)
		c.Set = append(c.Set, task.MustNew(name, e, p))
		c.Joins[name] = 1 + rng.Int63n(c.Horizon/2)
	}
	for _, t := range c.Set {
		if rng.Float64() < 0.35 {
			p := periodMenu[rng.Intn(len(periodMenu))]
			e := 1 + rng.Int63n((p+1)/2)
			at := c.Joins[t.Name] + 1 + rng.Int63n(c.Horizon/2)
			if at >= c.Horizon {
				at = c.Horizon - 1
			}
			c.Reweights[t.Name] = [3]int64{at, e, p}
		}
		if rng.Float64() < 0.4 {
			at := c.Horizon/4 + rng.Int63n(c.Horizon/2)
			if at > c.Joins[t.Name] {
				c.Leaves[t.Name] = at
			}
		}
	}
}

// genIS builds an intra-sporadic scenario: a feasible set where each
// task's subtasks suffer random cumulative delays. Earliness is left at
// zero — an early subtask may legally run before its shifted release,
// which the window check (deliberately) rejects.
func genIS(rng *rand.Rand, c *Case) {
	c.M = 1 + rng.Intn(3)
	n := 2 + rng.Intn(4)
	total := (0.5 + 0.4*rng.Float64()) * float64(c.M)
	if max := float64(n) * 0.999; total > max {
		total = max
	}
	g := taskgen.New(rng.Int63())
	set, err := g.Set("T", n, total, periodMenu)
	if err != nil {
		//pfair:allowpanic generator parameters are in-range by construction
		panic(fmt.Sprintf("fuzz: genIS: %v", err))
	}
	c.Set = set
	c.Delays = map[string][]int64{}
	maxDelay := int64(0)
	for _, t := range c.Set {
		d := make([]int64, 6)
		sum := int64(0)
		for i := range d {
			d[i] = rng.Int63n(3)
			sum += d[i]
		}
		c.Delays[t.Name] = d
		if sum > maxDelay {
			maxDelay = sum
		}
	}
	c.Horizon = 2*c.Set.Hyperperiod() + maxDelay
}

// isModel adapts a delay table to core.ReleaseModel: subtask i's
// cumulative offset is the sum of the first min(i, len) deltas (constant
// past the end of the table), which is non-decreasing as the model
// requires.
type isModel struct{ deltas []int64 }

// Offset implements core.ReleaseModel.
//
//pfair:hotpath
func (m isModel) Offset(i int64) int64 {
	k := i
	if k > int64(len(m.deltas)) {
		k = int64(len(m.deltas))
	}
	sum := int64(0)
	for j := int64(0); j < k; j++ {
		sum += m.deltas[j]
	}
	return sum
}

// Earliness implements core.ReleaseModel.
//
//pfair:hotpath
func (isModel) Earliness(int64) int64 { return 0 }
