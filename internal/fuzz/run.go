package fuzz

import (
	"fmt"
	"strings"

	"pfair/internal/core"
	"pfair/internal/parallel"
)

// Config parameterizes a fuzzing campaign.
type Config struct {
	// Seed is the campaign's base seed; (Seed, kind, trial) fully
	// determines each case.
	Seed int64
	// Trials is the number of cases generated per kind.
	Trials int64
	// Kinds restricts the campaign; nil means all kinds.
	Kinds []Kind
	// Workers bounds the worker pool (0 = GOMAXPROCS-sized).
	Workers int
	// Mutant substitutes for PD² in the kinds that exercise it.
	// The zero value is core.PD2 itself: no mutation.
	Mutant core.Algorithm
	// NoShrink skips reproducer minimization on failures.
	NoShrink bool
}

// Failure is one case the oracle rejected.
type Failure struct {
	Case       Case
	Violations []string
	// Shrunk is the minimized reproducer (nil when shrinking is off).
	Shrunk *Case
}

// Report aggregates a campaign.
type Report struct {
	// Cases is the number of task systems generated and checked.
	Cases int
	// Explained counts expected disagreements (EPDF counterexamples on
	// M ≥ 3).
	Explained int
	// Failures lists the unexplained disagreements, in deterministic
	// (kind, trial) order regardless of worker interleaving.
	Failures []Failure
}

// ParseMutant resolves the -mutant flag values of cmd/fuzz.
func ParseMutant(s string) (core.Algorithm, error) {
	switch s {
	case "", "none", "pd2":
		return core.PD2, nil
	case "pd2-nobbit":
		return core.PD2NoBBit, nil
	case "epdf":
		return core.EPDF, nil
	}
	return 0, fmt.Errorf("fuzz: unknown mutant %q (want pd2-nobbit or epdf)", s)
}

// Run executes the campaign across a bounded worker pool. Each trial owns
// an independent SubSeed-derived random stream, so the report is
// byte-identical however the workers interleave.
func Run(cfg Config) Report {
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = AllKinds()
	}
	trials := int(cfg.Trials)
	if trials <= 0 {
		trials = 1
	}
	n := len(kinds) * trials
	type result struct {
		fail      *Failure
		explained int
	}
	results := make([]result, n)
	parallel.For(parallel.Workers(cfg.Workers), n, func(i int) {
		kind := kinds[i/trials]
		trial := int64(i % trials)
		c := GenCase(kind, cfg.Seed, trial)
		out := CheckCase(c, cfg.Mutant)
		results[i].explained = out.Explained
		if len(out.Violations) > 0 {
			f := &Failure{Case: c, Violations: out.Violations}
			if !cfg.NoShrink {
				sc := Shrink(c, cfg.Mutant)
				f.Shrunk = &sc
			}
			results[i].fail = f
		}
	})
	rep := Report{Cases: n}
	for _, r := range results {
		rep.Explained += r.explained
		if r.fail != nil {
			rep.Failures = append(rep.Failures, *r.fail)
		}
	}
	return rep
}

// Describe renders a case compactly for failure reports:
// "fullutil/1/42: M=3 H=720 tasks=[T0(3/4) T1(5/8) …]".
func (c *Case) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: M=%d H=%d tasks=[", c.Replay(), c.M, c.Horizon)
	for i, t := range c.Set {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(t.String())
		if at, ok := c.Joins[t.Name]; ok && at != 0 {
			fmt.Fprintf(&b, "@join%d", at)
		}
		if at, ok := c.Leaves[t.Name]; ok {
			fmt.Fprintf(&b, "@leave%d", at)
		}
		if rw, ok := c.Reweights[t.Name]; ok {
			fmt.Fprintf(&b, "@rw%d(%d/%d)", rw[0], rw[1], rw[2])
		}
	}
	b.WriteString("]")
	return b.String()
}
