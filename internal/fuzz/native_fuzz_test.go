package fuzz

import (
	"testing"

	"pfair/internal/core"
)

// FuzzDifferential is the native-fuzzing entry point to the differential
// oracle: the engine mutates the (seed, kind, trial) coordinates and
// every generated task system must satisfy its kind's cross-checks.
// Run with: go test ./internal/fuzz -fuzz FuzzDifferential
func FuzzDifferential(f *testing.F) {
	for k := int64(0); k < int64(numKinds); k++ {
		f.Add(int64(1), k, int64(0))
	}
	f.Fuzz(func(t *testing.T, seed, kind, trial int64) {
		k := Kind(((kind % int64(numKinds)) + int64(numKinds)) % int64(numKinds))
		c := GenCase(k, seed, trial)
		out := CheckCase(c, core.PD2)
		if len(out.Violations) > 0 {
			t.Errorf("%s\n  %v", c.Describe(), out.Violations)
		}
	})
}
