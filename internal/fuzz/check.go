package fuzz

import (
	"fmt"

	"pfair/internal/core"
	"pfair/internal/edf"
	"pfair/internal/partition"
	"pfair/internal/rm"
	"pfair/internal/task"
	"pfair/internal/verify"
)

// Outcome is the oracle's verdict on one case.
type Outcome struct {
	// Violations lists unexplained disagreements: a component broke a
	// property its counterpart (or the theory) guarantees. Empty means the
	// case passed.
	Violations []string
	// Explained counts expected disagreements — EPDF missing deadlines on
	// three or more processors, where it is known not to be optimal.
	Explained int
}

// CheckCase runs the case through its scheduler pairing and returns the
// verdict. mutant substitutes for PD² in the kinds that exercise PD²
// (full-utilization, dynamic, and IS schedules); pass core.PD2 — the zero
// value — for the honest scheduler, or a fault-injection variant such as
// core.PD2NoBBit to prove the oracle catches it.
func CheckCase(c Case, mutant core.Algorithm) Outcome {
	switch c.Kind {
	case KindFullUtil:
		return checkFullUtil(c, mutant)
	case KindEPDF:
		return checkEPDF(c)
	case KindEDF:
		return checkEDF(c)
	case KindRM:
		return checkRM(c)
	case KindPartition:
		return checkPartition(c)
	case KindDynamic:
		return checkDynamic(c, mutant)
	case KindIS:
		return checkIS(c, mutant)
	case KindShard:
		return checkShard(c, mutant)
	case KindDynPlane:
		return checkDynPlane(c, mutant)
	}
	return Outcome{Violations: []string{fmt.Sprintf("unknown kind %v", c.Kind)}}
}

// violations accumulates findings, folding long verify reports into a
// bounded summary.
type violations struct{ list []string }

func (v *violations) addf(format string, args ...any) {
	v.list = append(v.list, fmt.Sprintf(format, args...))
}

func (v *violations) addVerify(label string, errs []error) {
	const keep = 3
	for i, e := range errs {
		if i == keep {
			v.addf("%s: … and %d more verify errors", label, len(errs)-keep)
			break
		}
		v.addf("%s: %v", label, e)
	}
}

// runPfair drives one Pfair scheduler over the whole set (all tasks join
// at slot 0) and returns the recorded trace and final stats. A join
// rejection is itself a violation for the full-utilization kinds: their
// sets satisfy Σwt = M by construction.
func runPfair(set task.Set, m int, alg core.Algorithm, horizon int64, v *violations) ([]verify.Slot, core.Stats) {
	return runPfairOpts(set, m, alg, horizon, core.Options{}, v)
}

// runPfairOpts is runPfair with explicit scheduler options (the shard
// kind sweeps Options.Shards).
func runPfairOpts(set task.Set, m int, alg core.Algorithm, horizon int64, opts core.Options, v *violations) ([]verify.Slot, core.Stats) {
	s := core.NewScheduler(m, alg, opts)
	rec := &verify.Recorder{}
	s.OnSlot(rec.Record)
	for _, t := range set {
		if err := s.Join(t); err != nil {
			v.addf("%v: join %v rejected: %v", alg, t, err)
			return nil, core.Stats{}
		}
	}
	s.RunUntil(horizon)
	s.FinishMisses(horizon)
	return rec.Slots, s.Stats()
}

// checkFullUtil: PD² (or its mutant), PD, and PF are all optimal, so on a
// set with Σwt = M every one of them must produce a miss-free trace that
// passes the full independent verification — windows, sequence, lag at
// every slot, completion.
func checkFullUtil(c Case, mutant core.Algorithm) Outcome {
	var v violations
	for _, alg := range []core.Algorithm{mutant, core.PD, core.PF} {
		slots, stats := runPfair(c.Set, c.M, alg, c.Horizon, &v)
		if slots == nil {
			continue
		}
		if n := len(stats.Misses); n > 0 {
			v.addf("%v: %d deadline misses on a full-utilization set, first %+v", alg, n, stats.Misses[0])
		}
		v.addVerify(alg.String(), verify.Check(c.Set, slots, verify.Options{
			Processors: c.M,
			Horizon:    c.Horizon,
		}))
	}
	return Outcome{Violations: v.list}
}

// checkEPDF: EPDF vs the PD² baseline on one full-utilization set. PD²
// must always succeed. EPDF must succeed on M ≤ 2 (where it is optimal);
// on M ≥ 3 a miss is an explained counterexample, but the trace must
// still be structurally sound (capacity, sequence, windows-with-tardiness).
func checkEPDF(c Case) Outcome {
	var v violations
	slots, stats := runPfair(c.Set, c.M, core.PD2, c.Horizon, &v)
	if slots != nil {
		if n := len(stats.Misses); n > 0 {
			v.addf("PD2 baseline: %d misses on a full-utilization set, first %+v", n, stats.Misses[0])
		}
	}
	explained := 0
	slots, stats = runPfair(c.Set, c.M, core.EPDF, c.Horizon, &v)
	if slots != nil {
		switch {
		case len(stats.Misses) == 0:
			v.addVerify("EPDF", verify.Check(c.Set, slots, verify.Options{
				Processors: c.M,
				Horizon:    c.Horizon,
			}))
		case c.M <= 2:
			v.addf("EPDF: %d misses on %d processors, but EPDF is optimal for M ≤ 2; first %+v",
				len(stats.Misses), c.M, stats.Misses[0])
		default:
			explained = 1 // a fresh counterexample to EPDF optimality
			v.addVerify("EPDF(tardy)", verify.Check(c.Set, slots, verify.Options{
				Processors: c.M,
				AllowTardy: true,
				SkipLag:    true,
			}))
		}
	}
	return Outcome{Violations: v.list, Explained: explained}
}

// checkEDF: the event-driven simulator against the exact Σu ≤ 1 test,
// both directions. One synchronous hyperperiod decides: a schedulable set
// must show no misses, and an overloaded set (demand > supply over the
// hyperperiod) must show at least one.
func checkEDF(c Case) Outcome {
	var v violations
	sim := edf.NewSimulator()
	for _, t := range c.Set {
		if err := sim.Add(edf.Config{Task: t}); err != nil {
			v.addf("edf: add %v: %v", t, err)
			return Outcome{Violations: v.list}
		}
	}
	sim.Run(c.Horizon)
	misses := sim.Stats().Misses
	sched := edf.Schedulable(c.Set)
	if sched && len(misses) > 0 {
		v.addf("edf: exact test says schedulable (Σu = %v) but simulator missed %d deadlines, first %+v",
			c.Set.TotalWeight(), len(misses), misses[0])
	}
	if !sched && len(misses) == 0 {
		v.addf("edf: exact test says unschedulable (Σu = %v) but one hyperperiod ran clean", c.Set.TotalWeight())
	}
	return Outcome{Violations: v.list}
}

// checkRM: exact response-time analysis against the fixed-priority
// simulator (the synchronous release is the critical instant, so they
// must agree), plus the sufficient tests, which may never contradict the
// exact one.
func checkRM(c Case) Outcome {
	var v violations
	_, exact := rm.ResponseTimes(c.Set)
	sim := rm.NewSimulator(c.Set)
	sim.Run(c.Horizon)
	misses := sim.Stats().Misses
	if exact && len(misses) > 0 {
		v.addf("rm: response-time analysis says schedulable but simulator missed %d deadlines, first %+v",
			len(misses), misses[0])
	}
	if !exact && len(misses) == 0 {
		v.addf("rm: response-time analysis says unschedulable but the critical-instant simulation ran clean")
	}
	if rm.SchedulableLL(c.Set) && !exact {
		v.addf("rm: Liu–Layland bound accepts a set the exact test rejects")
	}
	if rm.SchedulableHyperbolic(c.Set) && !exact {
		v.addf("rm: hyperbolic bound accepts a set the exact test rejects")
	}
	return Outcome{Violations: v.list}
}

var partitionHeuristics = []partition.Heuristic{
	partition.FirstFit, partition.BestFit, partition.WorstFit, partition.NextFit,
}

// checkPartition: the branch-and-bound packer is the ground truth the
// heuristics must never beat, ⌈ΣU⌉ is the bound nothing may beat, and
// every Pack placement must replay through the acceptance test it was
// made under.
func checkPartition(c Case) Outcome {
	var v violations
	exact, ok := partition.MinProcessorsExact(c.Set, partition.EDFTest)
	if !ok {
		v.addf("partition: exact packer failed to place a set with per-task u ≤ 1")
		return Outcome{Violations: v.list}
	}
	if lower := c.Set.MinProcessors(); exact < lower {
		v.addf("partition: exact packer used %d processors, below the utilization bound ⌈ΣU⌉ = %d", exact, lower)
	}
	for _, h := range partitionHeuristics {
		mh, okh := partition.MinProcessors(c.Set, h, partition.EDFTest)
		if !okh {
			v.addf("partition: %v failed to place a set with per-task u ≤ 1", h)
			continue
		}
		if mh < exact {
			v.addf("partition: %v used %d processors, beating the exact minimum %d", h, mh, exact)
		}
		a := partition.Pack(c.Set, 0, h, partition.EDFTest)
		placed := 0
		for _, proc := range a.Processors {
			for i, t := range proc {
				if !partition.EDFTest(proc[:i], t) {
					v.addf("partition: %v placed %v on a processor the acceptance test rejects", h, t)
				}
				placed++
			}
		}
		if placed+len(a.Unplaced) != len(c.Set) {
			v.addf("partition: %v lost tasks: %d placed + %d unplaced ≠ %d", h, placed, len(a.Unplaced), len(c.Set))
		}
		if len(a.Unplaced) > 0 {
			v.addf("partition: %v left %d tasks unplaced with unbounded processors", h, len(a.Unplaced))
		}
	}
	return Outcome{Violations: v.list}
}

// checkDynamic replays the join/leave script. Every admitted task must
// keep all its deadlines (joins are gated by Equation (2) and departures
// delayed to their safe slots, so the system is never infeasible), and
// the trace must verify with each task's windows shifted by its join
// slot. Join rejections are legitimate — an overweight joiner is exactly
// what the admission test is for — and simply leave the task out.
func checkDynamic(c Case, mutant core.Algorithm) Outcome {
	var v violations
	s := core.NewScheduler(c.M, mutant, core.Options{})
	rec := &verify.Recorder{}
	s.OnSlot(rec.Record)
	admitted := map[string]int64{}
	for slot := int64(0); slot < c.Horizon; slot++ {
		for _, t := range c.Set {
			if c.Joins[t.Name] == slot {
				if err := s.Join(t); err == nil {
					admitted[t.Name] = slot
				}
			}
		}
		for _, t := range c.Set {
			if at, ok := c.Leaves[t.Name]; ok && at == slot {
				if _, in := admitted[t.Name]; in {
					if _, err := s.Leave(t.Name); err != nil {
						v.addf("dynamic: leave %s: %v", t.Name, err)
					}
				}
			}
		}
		s.Step()
	}
	s.FinishMisses(c.Horizon)
	if n := len(s.Stats().Misses); n > 0 {
		v.addf("dynamic: %d misses under admitted joins and safe leaves, first %+v", n, s.Stats().Misses[0])
	}
	var vset task.Set
	offs := map[string]func(int64) int64{}
	for _, t := range c.Set {
		if at, ok := admitted[t.Name]; ok {
			vset = append(vset, t)
			join := at
			offs[t.Name] = func(int64) int64 { return join }
		}
	}
	v.addVerify("dynamic", verify.Check(vset, rec.Slots, verify.Options{
		Processors: c.M,
		SkipLag:    true, // lag is measured from each task's own join, not slot 0
		Offsets:    offs,
	}))
	return Outcome{Violations: v.list}
}

// checkShard cross-checks the ready-queue representations: the same set,
// algorithm, and horizon must yield a slot-for-slot identical assignment
// stream whether the scheduler runs one ready queue or many shards. The
// priority order is total, so the shard tier's head tournament picks the
// unique global minimum — any divergence means a shard dropped, reordered,
// or duplicated an entry. The mutant substitutes for PD² here as in the
// other Pfair kinds: representation equivalence must hold for every
// (total-order) algorithm, so a mutant never excuses a divergence.
func checkShard(c Case, mutant core.Algorithm) Outcome {
	var v violations
	want, _ := runPfairOpts(c.Set, c.M, mutant, c.Horizon, core.Options{}, &v)
	if want == nil {
		return Outcome{Violations: v.list}
	}
	for _, shards := range []int{2, 4} {
		got, _ := runPfairOpts(c.Set, c.M, mutant, c.Horizon, core.Options{Shards: shards}, &v)
		if got == nil {
			continue
		}
		if len(got) != len(want) {
			v.addf("shard: %d shards produced %d slots, single queue %d", shards, len(got), len(want))
			continue
		}
		for i := range got {
			if !slotsEqual(got[i], want[i]) {
				v.addf("shard: %d shards diverge at slot %d: %v vs single-queue %v",
					shards, want[i].Time, got[i].Assigned, want[i].Assigned)
				break
			}
		}
	}
	return Outcome{Violations: v.list}
}

// slotsEqual compares one recorded slot of two schedules.
func slotsEqual(a, b verify.Slot) bool {
	if a.Time != b.Time || len(a.Assigned) != len(b.Assigned) {
		return false
	}
	for i := range a.Assigned {
		if a.Assigned[i] != b.Assigned[i] {
			return false
		}
	}
	return true
}

// checkIS runs the set under its intra-sporadic delay tables. PD² remains
// optimal for IS systems, so admitted tasks miss nothing, and the trace
// must verify with the per-subtask shifted windows, completion included.
func checkIS(c Case, mutant core.Algorithm) Outcome {
	var v violations
	s := core.NewScheduler(c.M, mutant, core.Options{})
	rec := &verify.Recorder{}
	s.OnSlot(rec.Record)
	var vset task.Set
	offs := map[string]func(int64) int64{}
	for _, t := range c.Set {
		m := isModel{c.Delays[t.Name]}
		if err := s.JoinModel(t, m); err == nil {
			vset = append(vset, t)
			offs[t.Name] = m.Offset
		}
	}
	if len(vset) == 0 {
		v.addf("is: no task admitted (Σu = %v on %d processors)", c.Set.TotalWeight(), c.M)
		return Outcome{Violations: v.list}
	}
	s.RunUntil(c.Horizon)
	s.FinishMisses(c.Horizon)
	if n := len(s.Stats().Misses); n > 0 {
		v.addf("is: %d misses on a feasible IS system, first %+v", n, s.Stats().Misses[0])
	}
	v.addVerify("is", verify.Check(vset, rec.Slots, verify.Options{
		Processors: c.M,
		Horizon:    c.Horizon,
		SkipLag:    true, // the fluid reference shifts with every IS delay
		Offsets:    offs,
	}))
	return Outcome{Violations: v.list}
}
