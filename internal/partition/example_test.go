package partition_test

import (
	"fmt"

	"pfair/internal/partition"
	"pfair/internal/rational"
	"pfair/internal/task"
)

// ExamplePack shows Section 3's motivating example: three tasks of weight
// 2/3 cannot be partitioned onto two processors, even though their total
// weight is exactly 2.
func ExamplePack() {
	set := task.Set{task.MustNew("A", 2, 3), task.MustNew("B", 2, 3), task.MustNew("C", 2, 3)}
	a := partition.Pack(set, 2, partition.FirstFit, partition.EDFTest)
	fmt.Println("placed everything:", a.OK())
	n, _ := partition.MinProcessorsExact(set, partition.EDFTest)
	fmt.Println("exact minimum processors:", n)
	fmt.Println("Pfair minimum processors:", set.MinProcessors())
	// Output:
	// placed everything: false
	// exact minimum processors: 3
	// Pfair minimum processors: 2
}

// ExampleLopezBound evaluates the worst-case achievable utilization of
// EDF partitioning from Lopez et al.: (βM+1)/(β+1) with β = ⌊1/umax⌋.
func ExampleLopezBound() {
	b1, _ := partition.LopezBound(4, rational.One())
	b2, _ := partition.LopezBound(4, rational.New(1, 3))
	fmt.Println(b1)
	fmt.Println(b2)
	// Output:
	// 5/2
	// 13/4
}
