package partition

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"pfair/internal/rational"
	"pfair/internal/task"
)

// TestPartitioningSuboptimal pins Section 3's motivating example: three
// synchronous periodic tasks with cost 2 and period 3 are feasible on two
// processors under Pfair scheduling, but NO partitioning (heuristic or
// exact) fits them on two processors.
func TestPartitioningSuboptimal(t *testing.T) {
	set := task.Set{task.MustNew("A", 2, 3), task.MustNew("B", 2, 3), task.MustNew("C", 2, 3)}
	if got := set.MinProcessors(); got != 2 {
		t.Fatalf("global feasibility needs %d processors, want 2", got)
	}
	for _, h := range []Heuristic{FirstFit, BestFit, WorstFit, NextFit} {
		a := Pack(set, 2, h, EDFTest)
		if a.OK() {
			t.Errorf("%v packed the unpackable set on 2 processors", h)
		}
		n, ok := MinProcessors(set, h, EDFTest)
		if !ok || n != 3 {
			t.Errorf("%v needs %d processors, want 3", h, n)
		}
	}
	n, ok := MinProcessorsExact(set, EDFTest)
	if !ok || n != 3 {
		t.Errorf("exact packing needs %d processors, want 3 (partitioning is inherently suboptimal)", n)
	}
}

// TestWorstCaseHalfBound: M+1 tasks of utilization (1+ε)/2 defeat every
// heuristic on M processors — the (M+1)/2 worst case of Section 3.
func TestWorstCaseHalfBound(t *testing.T) {
	for _, m := range []int{2, 4, 8} {
		var set task.Set
		for i := 0; i <= m; i++ {
			set = append(set, task.MustNew(fmt.Sprintf("T%d", i), 51, 100))
		}
		for _, h := range []Heuristic{FirstFit, BestFit, WorstFit, NextFit} {
			n, ok := MinProcessors(set, h, EDFTest)
			if !ok || n != m+1 {
				t.Errorf("m=%d %v: placed on %d processors, want %d", m, h, n, m+1)
			}
		}
		// Even the exact packer cannot do better: this is a lower bound
		// on partitioning itself, not a heuristic artifact.
		if n, ok := MinProcessorsExact(set, EDFTest); !ok || n != m+1 {
			t.Errorf("m=%d exact: %d processors, want %d", m, n, m+1)
		}
	}
}

// TestLopezBound checks the closed form and its guarantee.
func TestLopezBound(t *testing.T) {
	// umax = 1 ⇒ β = 1 ⇒ (m+1)/2.
	if got, err := LopezBound(4, rational.One()); err != nil || !got.Equal(rational.New(5, 2)) {
		t.Errorf("LopezBound(4, 1) = %v, %v, want 5/2", got, err)
	}
	// umax = 1/3 ⇒ β = 3 ⇒ (3m+1)/4.
	if got, err := LopezBound(4, rational.New(1, 3)); err != nil || !got.Equal(rational.New(13, 4)) {
		t.Errorf("LopezBound(4, 1/3) = %v, %v, want 13/4", got, err)
	}
	if _, err := LopezBound(2, rational.New(3, 2)); err == nil {
		t.Error("LopezBound accepted umax > 1")
	}
	if _, err := LopezBound(2, rational.Zero()); err == nil {
		t.Error("LopezBound accepted umax = 0")
	}
	if _, err := LopezBound(0, rational.One()); err == nil {
		t.Error("LopezBound accepted m = 0")
	}
}

// TestQuickLopezGuarantee: any set with per-task utilization ≤ umax and
// total utilization ≤ (βm+1)/(β+1) is schedulable by EDF-FF on m
// processors — the theorem of Lopez et al. the paper cites.
func TestQuickLopezGuarantee(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 2 + r.Intn(6)
		umaxDen := int64(2 + r.Intn(6))
		umax := rational.New(1, umaxDen)
		bound, err := LopezBound(m, umax)
		if err != nil {
			return false
		}
		var set task.Set
		total := rational.NewAcc()
		for i := 0; i < 200; i++ {
			p := umaxDen * int64(1+r.Intn(20))
			e := 1 + r.Int63n(p/umaxDen) // utilization ≤ umax
			w := rational.New(e, p)
			if total.Clone().Add(w).Cmp(bound) > 0 {
				continue
			}
			total.Add(w)
			set = append(set, task.MustNew(fmt.Sprintf("T%d", i), e, p))
		}
		a := Pack(set, m, FirstFit, EDFTest)
		if !a.OK() {
			t.Logf("m=%d umax=%v total=%v: FF failed below the Lopez bound", m, umax, total)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFFDBeatsFF on the classic instance where arrival order hurts FF.
func TestFFDBeatsFF(t *testing.T) {
	// Arrival order: four 1/4-ish fillers then two 3/4 items. FF puts the
	// fillers on one processor... construct: items 0.3,0.3,0.3,0.7,0.7,0.7.
	var set task.Set
	for i := 0; i < 3; i++ {
		set = append(set, task.MustNew(fmt.Sprintf("small%d", i), 3, 10))
	}
	for i := 0; i < 3; i++ {
		set = append(set, task.MustNew(fmt.Sprintf("big%d", i), 7, 10))
	}
	ff, _ := MinProcessors(set, FirstFit, EDFTest)
	ffd, _ := MinProcessors(set.SortByUtilizationDecreasing(), FirstFit, EDFTest)
	if !(ffd < ff) {
		t.Errorf("FFD (%d) should beat FF (%d) on this instance", ffd, ff)
	}
	if exact, ok := MinProcessorsExact(set, EDFTest); !ok || exact != 3 {
		t.Errorf("exact = %d, want 3", exact)
	}
}

// TestQuickHeuristicsVsExact: the exact packer never uses more processors
// than any heuristic, and never fewer than ⌈Σu⌉.
func TestQuickHeuristicsVsExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(9)
		var set task.Set
		for i := 0; i < n; i++ {
			p := int64(2 + r.Intn(20))
			e := int64(1 + r.Intn(int(p)))
			set = append(set, task.MustNew(fmt.Sprintf("T%d", i), e, p))
		}
		exact, ok := MinProcessorsExact(set, EDFTest)
		if !ok {
			return false
		}
		if int64(exact) < set.TotalWeight().Ceil() {
			return false
		}
		for _, h := range []Heuristic{FirstFit, BestFit, WorstFit, NextFit} {
			hn, hok := MinProcessors(set, h, EDFTest)
			if !hok || hn < exact {
				t.Logf("set %v: %v used %d < exact %d", set, h, hn, exact)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickPackRespectsTest: every processor in a packing passes its own
// acceptance test (incrementally maintained invariant re-verified from
// scratch).
func TestQuickPackRespectsTest(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(25)
		var set task.Set
		for i := 0; i < n; i++ {
			p := int64(2 + r.Intn(30))
			e := int64(1 + r.Intn(int(p)))
			set = append(set, task.MustNew(fmt.Sprintf("T%d", i), e, p))
		}
		for _, h := range []Heuristic{FirstFit, BestFit, WorstFit, NextFit} {
			a := Pack(set, 0, h, EDFTest)
			placed := 0
			for _, proc := range a.Processors {
				placed += len(proc)
				if proc.TotalWeight().CmpInt(1) > 0 {
					return false
				}
			}
			if placed+len(a.Unplaced) != len(set) {
				return false
			}
			if len(a.Unplaced) != 0 {
				return false // unbounded EDF packing always succeeds
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestRMPartitioning: the RM acceptance tests are usable and the exact
// test dominates Liu–Layland.
func TestRMPartitioning(t *testing.T) {
	set := task.Set{
		task.MustNew("A", 1, 2), task.MustNew("B", 1, 4), task.MustNew("C", 2, 8), // harmonic, u=1
		task.MustNew("D", 1, 2),
	}
	nLL, okLL := MinProcessors(set, FirstFit, RMLLTest)
	nEx, okEx := MinProcessors(set, FirstFit, RMExactTest)
	if !okLL || !okEx {
		t.Fatal("RM packing failed outright")
	}
	if nEx > nLL {
		t.Errorf("exact RM test used more processors (%d) than LL (%d)", nEx, nLL)
	}
	// The harmonic trio has utilization 1: only the exact test can put it
	// on one processor.
	trio := set[:3]
	if a := Pack(trio, 1, FirstFit, RMExactTest); !a.OK() {
		t.Error("exact RM test rejected a harmonic utilization-1 processor")
	}
	if a := Pack(trio, 1, FirstFit, RMLLTest); a.OK() {
		t.Error("LL accepted utilization 1, which is above its bound")
	}
}

// TestOhBakerBound sanity.
func TestOhBakerBound(t *testing.T) {
	if got := OhBakerBound(10); got < 4.14 || got > 4.15 {
		t.Errorf("OhBakerBound(10) = %v", got)
	}
}

// TestHeuristicString covers the stringer.
func TestHeuristicString(t *testing.T) {
	for h, want := range map[Heuristic]string{
		FirstFit: "first-fit", BestFit: "best-fit", WorstFit: "worst-fit",
		NextFit: "next-fit", Heuristic(7): "Heuristic(7)",
	} {
		if h.String() != want {
			t.Errorf("String = %q, want %q", h.String(), want)
		}
	}
}

// TestNextFitNeverLooksBack: next-fit's defining behaviour.
func TestNextFitNeverLooksBack(t *testing.T) {
	set := task.Set{
		task.MustNew("a", 1, 2), task.MustNew("b", 9, 10), // forces a second processor
		task.MustNew("c", 1, 2), // fits on proc 0, but next-fit won't return
	}
	a := Pack(set, 0, NextFit, EDFTest)
	if a.NumUsed() != 3 {
		t.Fatalf("next-fit used %d processors, want 3", a.NumUsed())
	}
	ff := Pack(set, 0, FirstFit, EDFTest)
	if ff.NumUsed() != 2 {
		t.Fatalf("first-fit used %d processors, want 2", ff.NumUsed())
	}
}

// TestMinProcessorsUnplaceable: under the inflated/RM acceptance tests a
// task can fit on no processor at all.
func TestMinProcessorsUnplaceable(t *testing.T) {
	never := func(task.Set, *task.Task) bool { return false }
	if _, ok := MinProcessors(task.Set{task.MustNew("a", 1, 2)}, FirstFit, never); ok {
		t.Error("unplaceable task reported ok")
	}
	if _, ok := MinProcessorsExact(task.Set{task.MustNew("a", 1, 2)}, never); ok {
		t.Error("exact packer reported ok for an unplaceable task")
	}
}

// TestMinProcessorsExactEarlyExit: when FFD already meets the ⌈Σu⌉ lower
// bound the search returns immediately with that answer.
func TestMinProcessorsExactEarlyExit(t *testing.T) {
	set := task.Set{task.MustNew("a", 1, 2), task.MustNew("b", 1, 2), task.MustNew("c", 1, 2), task.MustNew("d", 1, 2)}
	n, ok := MinProcessorsExact(set, EDFTest)
	if !ok || n != 2 {
		t.Fatalf("exact = %d, want 2", n)
	}
}

// TestExactImprovesOnFFD: an instance where FFD is strictly suboptimal and
// the branch-and-bound recovers the true optimum. Sizes (in hundredths):
// 55, 45, 40, 35, 30, 25, 20, 50 → exact 3 bins, FFD 4.
func TestExactImprovesOnFFD(t *testing.T) {
	sizes := []int64{44, 28, 28, 26, 24, 24, 26}
	var set task.Set
	for i, s := range sizes {
		set = append(set, task.MustNew(fmt.Sprintf("T%d", i), s, 100))
	}
	ffd, _ := MinProcessors(set.SortByUtilizationDecreasing(), FirstFit, EDFTest)
	exact, ok := MinProcessorsExact(set, EDFTest)
	if !ok {
		t.Fatal("exact failed")
	}
	if exact > ffd {
		t.Fatalf("exact (%d) worse than FFD (%d)", exact, ffd)
	}
	if exact != 2 {
		t.Fatalf("exact = %d, want 2 (44+28+28 = 100, 26+24+24+26 = 100)", exact)
	}
	if ffd == exact {
		t.Skipf("FFD matched the optimum on this instance (ffd=%d)", ffd)
	}
}
