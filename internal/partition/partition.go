// Package partition implements the task-to-processor assignment side of
// the paper's comparison (Section 3): the online bin-packing heuristics
// first-fit, best-fit, worst-fit, and next-fit, their decreasing-order
// offline variants (FFD, BFD), an exact branch-and-bound packer for small
// sets, and the analytical utilization bounds (the (M+1)/2 worst case for
// every heuristic, the Lopez et al. bound parameterized by the maximum
// task utilization, and the Oh–Baker RM-FF bound).
//
// The acceptance test is pluggable, so the same heuristics serve EDF
// partitioning (utilization ≤ 1 per processor, exact for implicit
// deadlines), RM partitioning (Liu–Layland or exact response-time
// analysis), and the overhead-inflated tests of Section 4.
package partition

import (
	"fmt"

	"pfair/internal/rational"
	"pfair/internal/rm"
	"pfair/internal/task"
)

// AcceptanceTest reports whether candidate can be added to a processor that
// already holds assigned, under the per-processor scheduler's
// schedulability test.
type AcceptanceTest func(assigned task.Set, candidate *task.Task) bool

// EDFTest is the exact uniprocessor EDF test for implicit-deadline
// periodic tasks: total utilization at most one.
func EDFTest(assigned task.Set, candidate *task.Task) bool {
	total := assigned.TotalWeight().Add(candidate.Weight())
	return total.CmpInt(1) <= 0
}

// RMLLTest is the Liu–Layland sufficient test for RM.
func RMLLTest(assigned task.Set, candidate *task.Task) bool {
	return rm.SchedulableLL(append(assigned.Clone(), candidate))
}

// RMExactTest is the exact response-time test for RM ([25]); using it makes
// partitioning a variable-sized bin-packing problem, the complication
// Section 3 notes EDF avoids.
func RMExactTest(assigned task.Set, candidate *task.Task) bool {
	return rm.Schedulable(append(assigned.Clone(), candidate))
}

// Heuristic selects the processor-choice rule.
type Heuristic int

const (
	// FirstFit assigns each task to the lowest-indexed processor that
	// accepts it.
	FirstFit Heuristic = iota
	// BestFit chooses, among accepting processors, the one with minimal
	// spare capacity after the addition.
	BestFit
	// WorstFit chooses the accepting processor with maximal spare
	// capacity after the addition.
	WorstFit
	// NextFit only ever tries the most recently used processor, moving
	// forward when it rejects.
	NextFit
)

func (h Heuristic) String() string {
	switch h {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	case WorstFit:
		return "worst-fit"
	case NextFit:
		return "next-fit"
	}
	return fmt.Sprintf("Heuristic(%d)", int(h))
}

// Assignment is a partition of tasks onto processors.
type Assignment struct {
	// Processors holds the tasks bound to each processor, in placement
	// order.
	Processors []task.Set
	// Unplaced lists tasks no processor accepted (empty on success).
	Unplaced task.Set
}

// OK reports whether every task was placed.
func (a *Assignment) OK() bool { return len(a.Unplaced) == 0 }

// NumUsed returns the number of non-empty processors.
func (a *Assignment) NumUsed() int {
	n := 0
	for _, p := range a.Processors {
		if len(p) > 0 {
			n++
		}
	}
	return n
}

// spare returns the spare utilization 1 − Σu of a processor as an exact
// arbitrary-precision rational. It is the capacity measure used by best-
// and worst-fit; for non-utilization acceptance tests it is a standard
// proxy. Acc keeps the value exact even when the assigned periods are
// co-prime enough that the sum's denominator overflows int64.
func spare(assigned task.Set) *rational.Acc {
	sp := rational.NewAcc().SetInt(1)
	for _, t := range assigned {
		sp.Sub(t.Weight())
	}
	return sp
}

// Pack assigns tasks to at most m processors (m ≤ 0 means unbounded,
// opening processors on demand — the mode used to find the minimum
// processor count). Tasks are considered in the order given; pre-sort with
// task.Set.SortByUtilizationDecreasing for FFD/BFD or
// SortByPeriodDecreasing for the Section 4 overhead-aware placement.
func Pack(set task.Set, m int, h Heuristic, accept AcceptanceTest) *Assignment {
	a := &Assignment{}
	if m > 0 {
		a.Processors = make([]task.Set, m)
	}
	last := 0 // next-fit cursor
	for _, t := range set {
		idx := -1
		switch h {
		case FirstFit:
			for i := range a.Processors {
				if accept(a.Processors[i], t) {
					idx = i
					break
				}
			}
		case NextFit:
			for i := last; i < len(a.Processors); i++ {
				if accept(a.Processors[i], t) {
					idx = i
					break
				}
			}
		case BestFit, WorstFit:
			var bestSpare *rational.Acc
			for i := range a.Processors {
				if !accept(a.Processors[i], t) {
					continue
				}
				sp := spare(a.Processors[i]).Sub(t.Weight())
				better := idx < 0 ||
					(h == BestFit && sp.CmpAcc(bestSpare) < 0) ||
					(h == WorstFit && bestSpare.CmpAcc(sp) < 0)
				if better {
					idx, bestSpare = i, sp
				}
			}
		}
		if idx < 0 && m <= 0 {
			// Open a new processor.
			a.Processors = append(a.Processors, nil)
			idx = len(a.Processors) - 1
			if !accept(a.Processors[idx], t) {
				// The task does not fit even on an empty processor
				// (possible under inflated or RM tests).
				a.Processors = a.Processors[:idx]
				idx = -1
			}
		}
		if idx < 0 {
			a.Unplaced = append(a.Unplaced, t)
			continue
		}
		a.Processors[idx] = append(a.Processors[idx], t)
		if h == NextFit {
			last = idx
		}
	}
	return a
}

// MinProcessors returns the number of processors the heuristic needs to
// place every task (tasks considered in the given order), or ok=false if
// some task fits on no processor at all.
func MinProcessors(set task.Set, h Heuristic, accept AcceptanceTest) (int, bool) {
	a := Pack(set, 0, h, accept)
	if !a.OK() {
		return 0, false
	}
	return a.NumUsed(), true
}

// MinProcessorsExact finds the true minimum number of processors by
// branch-and-bound over all assignments, with the given acceptance test.
// It is exponential and intended for small sets (≲ 20 tasks); it proves
// the heuristics sub-optimal in tests. Tasks are pre-sorted by decreasing
// utilization, and symmetry is broken by allowing each task into at most
// one currently-empty processor.
func MinProcessorsExact(set task.Set, accept AcceptanceTest) (int, bool) {
	sorted := set.SortByUtilizationDecreasing()
	// Upper bound from FFD; lower bound from total utilization.
	best, ok := MinProcessors(sorted, FirstFit, accept)
	if !ok {
		return 0, false
	}
	lower := int(set.TotalWeight().Ceil())
	if best == lower {
		return best, true
	}
	procs := make([]task.Set, 0, best)
	var dfs func(i int) bool
	found := best
	dfs = func(i int) bool {
		if len(procs) >= found {
			return false // already no better than the best known
		}
		if i == len(sorted) {
			found = len(procs)
			return found == lower
		}
		t := sorted[i]
		for k := range procs {
			if accept(procs[k], t) {
				procs[k] = append(procs[k], t)
				if dfs(i + 1) {
					return true
				}
				procs[k] = procs[k][:len(procs[k])-1]
			}
		}
		// Symmetry breaking: opening any empty processor is equivalent.
		if len(procs)+1 < found && accept(nil, t) {
			procs = append(procs, task.Set{t})
			if dfs(i + 1) {
				return true
			}
			procs = procs[:len(procs)-1]
		}
		return false
	}
	dfs(0)
	return found, true
}

// LopezBound returns the worst-case achievable utilization of EDF
// partitioning on m processors when every task's utilization is at most
// umax (Lopez et al. [27]): (β·m + 1)/(β + 1) with β = ⌊1/umax⌋. Any task
// set with total utilization at most the bound is schedulable by EDF-FF;
// with umax = 1 it degenerates to the (m+1)/2 worst case of Section 3.
// A umax outside (0, 1] — reachable from generated task parameters, e.g.
// the maximum utilization of an empty set — is reported as an error.
func LopezBound(m int, umax rational.Rat) (rational.Rat, error) {
	if m < 1 {
		return rational.Zero(), fmt.Errorf("partition: LopezBound needs m ≥ 1, got %d", m)
	}
	if umax.Sign() <= 0 || rational.One().Less(umax) {
		return rational.Zero(), fmt.Errorf("partition: umax %v outside (0, 1]", umax)
	}
	beta := rational.One().Div(umax).Floor()
	return rational.New(beta*int64(m)+1, beta+1), nil
}

// OhBakerBound returns the RM-FF guaranteed utilization m·(2^{1/2} − 1) ≈
// 0.41·m of Oh and Baker [30], the figure the paper quotes when arguing
// that partitioning with RM wastes more than half the platform.
func OhBakerBound(m int) float64 {
	//pfair:allowfloat √2 − 1 is irrational; the bound is reporting-only, never an admission test
	return float64(m) * 0.41421356237309503 // √2 − 1
}
