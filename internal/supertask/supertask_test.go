package supertask

import (
	"math/rand"
	"testing"

	"pfair/internal/core"
	"pfair/internal/rational"
	"pfair/internal/task"
)

// fig5System builds the Figure 5 scenario: on two processors, normal tasks
// V (1/2), W (1/3), X (1/3), Y (2/9) and a supertask S bundling components
// T (1/5) and U (1/45), competing with weight 1/5 + 1/45 = 2/9.
//
// Y and S have identical Pfair parameters, so their priority tie is broken
// by admission order; the schedule depicted in the paper corresponds to S
// winning the tie, so S is admitted before Y.
func fig5System(t *testing.T, reweighted bool) *System {
	t.Helper()
	sys := NewSystem(2, core.PD2)
	for _, tk := range []*task.Task{
		task.MustNew("V", 1, 2), task.MustNew("W", 1, 3), task.MustNew("X", 1, 3),
	} {
		if err := sys.AddTask(tk); err != nil {
			t.Fatalf("add %v: %v", tk, err)
		}
	}
	s := &Supertask{Name: "S", Components: task.Set{task.MustNew("T", 1, 5), task.MustNew("U", 1, 45)}}
	if err := sys.AddSupertask(s, reweighted); err != nil {
		t.Fatalf("add supertask: %v", err)
	}
	if err := sys.AddTask(task.MustNew("Y", 2, 9)); err != nil {
		t.Fatalf("add Y: %v", err)
	}
	return sys
}

// TestFig5SupertaskMiss reproduces the paper's Figure 5: component T
// misses a deadline at time 10 because no quantum is allocated to S in
// [5, 10), even though S receives its full 2/9 entitlement.
func TestFig5SupertaskMiss(t *testing.T) {
	sys := fig5System(t, false)
	res := sys.Run(90)
	if len(res.Scheduler.Misses) != 0 {
		t.Fatalf("the supertask itself missed a Pfair window: %+v", res.Scheduler.Misses[0])
	}
	if len(res.ComponentMisses) == 0 {
		t.Fatal("no component miss; Figure 5 not reproduced")
	}
	first := res.ComponentMisses[0]
	if first.Component != "T" || first.Deadline != 10 {
		t.Errorf("first component miss = %+v, want T at deadline 10", first)
	}
	if res.Served["S"] == 0 {
		t.Fatal("S was never served")
	}
}

// TestFig5ReweightingFixes: inflating S's weight by 1/p_min = 1/5 (to
// 2/9 + 1/5 = 19/45) removes every component miss, per Holman–Anderson.
func TestFig5ReweightingFixes(t *testing.T) {
	s := &Supertask{Name: "S", Components: task.Set{task.MustNew("T", 1, 5), task.MustNew("U", 1, 45)}}
	w, err := s.ReweightedWeight()
	if err != nil {
		t.Fatal(err)
	}
	if !w.Equal(rational.New(19, 45)) {
		t.Fatalf("reweighted weight = %v, want 19/45", w)
	}
	sys := fig5System(t, true)
	res := sys.Run(900)
	if len(res.ComponentMisses) != 0 {
		t.Fatalf("reweighted supertask still missed: %+v", res.ComponentMisses[0])
	}
	if len(res.Scheduler.Misses) != 0 {
		t.Fatalf("global miss: %+v", res.Scheduler.Misses[0])
	}
}

func TestWeights(t *testing.T) {
	s := &Supertask{Name: "S", Components: task.Set{task.MustNew("T", 1, 5), task.MustNew("U", 1, 45)}}
	w, err := s.Weight()
	if err != nil {
		t.Fatal(err)
	}
	if !w.Equal(rational.New(2, 9)) {
		t.Errorf("Weight = %v, want 2/9", w)
	}
	// Overweight bundles are rejected.
	over := &Supertask{Name: "O", Components: task.Set{task.MustNew("A", 2, 3), task.MustNew("B", 2, 3)}}
	if _, err := over.Weight(); err == nil {
		t.Error("cumulative weight > 1 accepted")
	}
	empty := &Supertask{Name: "E"}
	if _, err := empty.ReweightedWeight(); err == nil {
		t.Error("empty supertask accepted")
	}
}

// TestReweightedRandomNoMisses: the 1/p_min inflation guarantees component
// deadlines across random bundles (Holman–Anderson sufficiency).
func TestReweightedRandomNoMisses(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for trial := 0; trial < 10; trial++ {
		// Build a bundle with cumulative weight ≤ 1/2 so the +1/p_min
		// inflation keeps it under one processor.
		var comps task.Set
		budget := rational.NewAcc()
		pmin := int64(1 << 30)
		for i := 0; i < 4; i++ {
			p := int64(4 + r.Intn(12))
			e := int64(1 + r.Intn(2))
			w := rational.New(e, p)
			if budget.Clone().Add(w).Cmp(rational.New(1, 2)) > 0 {
				continue
			}
			budget.Add(w)
			comps = append(comps, task.MustNew(string(rune('a'+i)), e, p))
			if p < pmin {
				pmin = p
			}
		}
		if len(comps) == 0 {
			continue
		}
		sys := NewSystem(2, core.PD2)
		st := &Supertask{Name: "S", Components: comps}
		if err := sys.AddSupertask(st, true); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Competing load.
		if err := sys.AddTask(task.MustNew("bg1", 1, 2)); err != nil {
			t.Fatal(err)
		}
		if err := sys.AddTask(task.MustNew("bg2", 2, 5)); err != nil {
			t.Fatal(err)
		}
		res := sys.Run(3000)
		if len(res.ComponentMisses) != 0 {
			t.Fatalf("trial %d: reweighted bundle %v missed: %+v", trial, comps, res.ComponentMisses[0])
		}
	}
}

// TestEntitlementExact: over any whole number of supertask periods, PD²
// delivers the supertask exactly weight·horizon quanta — the supertask's
// Pfair entitlement is honored even in the failing Figure 5 scenario (the
// problem is *when* the quanta arrive, not how many).
func TestEntitlementExact(t *testing.T) {
	sys := fig5System(t, false)
	const periods = 10
	horizon := int64(9 * periods) // S has weight 2/9
	res := sys.Run(horizon)
	want := int64(2 * periods)
	if got := res.Served["S"]; got != want {
		t.Errorf("S served %d quanta over %d slots, want %d", got, horizon, want)
	}
}

// TestInternalEDFOrder: a quantum goes to the released component with the
// earliest deadline.
func TestInternalEDFOrder(t *testing.T) {
	sys := NewSystem(1, core.PD2)
	st := &Supertask{Name: "S", Components: task.Set{task.MustNew("slow", 1, 40), task.MustNew("fast", 1, 8)}}
	if err := sys.AddSupertask(st, false); err != nil {
		t.Fatal(err)
	}
	res := sys.Run(400)
	// fast (deadline every 8) must never miss: it always outranks slow.
	for _, m := range res.ComponentMisses {
		if m.Component == "fast" {
			t.Fatalf("fast component missed despite EDF priority: %+v", m)
		}
	}
}

// TestWastedQuanta: a supertask whose components are all idle wastes its
// quantum, and the counter records it.
func TestWastedQuanta(t *testing.T) {
	sys := NewSystem(1, core.PD2)
	// One component of weight 1/10 inside a supertask competing at 1/2:
	// most quanta arrive with no released work.
	st := &Supertask{Name: "S", Components: task.Set{task.MustNew("a", 1, 10)}}
	if err := sys.AddSupertask(st, false); err == nil {
		// Weight is 1/10; force a mismatch by using reweighting instead:
		// 1/10 + 1/10 = 1/5 competing weight for 1/10 of demand.
		t.Log("base add succeeded as expected")
	}
	res := sys.Run(200)
	_ = res
	sys2 := NewSystem(1, core.PD2)
	if err := sys2.AddSupertask(&Supertask{Name: "S", Components: task.Set{task.MustNew("a", 1, 10)}}, true); err != nil {
		t.Fatal(err)
	}
	res2 := sys2.Run(200)
	if res2.Wasted["S"] == 0 {
		t.Error("over-provisioned supertask never wasted a quantum")
	}
	if len(res2.ComponentMisses) != 0 {
		t.Errorf("component missed: %+v", res2.ComponentMisses[0])
	}
}

func TestAddErrors(t *testing.T) {
	sys := NewSystem(1, core.PD2)
	st := &Supertask{Name: "S", Components: task.Set{task.MustNew("a", 1, 2)}}
	if err := sys.AddSupertask(st, false); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddSupertask(st, false); err == nil {
		t.Error("duplicate supertask accepted")
	}
	big := &Supertask{Name: "B", Components: task.Set{task.MustNew("b", 9, 10)}}
	if err := sys.AddSupertask(big, false); err == nil {
		t.Error("supertask exceeding remaining capacity accepted")
	}
}
