package supertask

import (
	"fmt"

	"pfair/internal/admission"
	"pfair/internal/engine"
	"pfair/internal/task"
)

// This file implements engine.Dynamic for the supertask system: dynamic
// operations flow through the underlying Pfair scheduler's admission
// plane, so the §5.2 safe-slot rules, the Equation (2) feasibility gate,
// and the transaction ledger are exactly core's. The system adds the
// supertask-level bookkeeping on top:
//
//   - Joining a supertask submits its representative task (cumulative
//     weight, or the Holman–Anderson inflated weight) to the scheduler
//     and anchors every component's periodic lattice at the admission
//     slot. Build the request with JoinRequest; a plain task request
//     (no Model, or a core release model) passes straight through to
//     the scheduler.
//   - Leaving a supertask departs its representative under core's rules
//     (immediately for non-negative lag, at the §5.2 safe slot
//     otherwise) and stops charging component deadline misses from the
//     effective slot: the bundle leaves with its supertask.
//   - Reweighting a supertask changes the representative's weight via
//     core's leave-and-rejoin; the component set is unchanged. Whether
//     the new weight still covers the components (inflated or not) is
//     the caller's choice to make — exactly the §5.5 trade-off the
//     package exists to exhibit.

var _ engine.Dynamic = (*System)(nil)

// Model is the OpJoin release model for admitting a whole supertask
// through Submit: the component bundle and whether the representative
// competes with the Holman–Anderson inflated weight.
type Model struct {
	Super *Supertask
	// Reweighted selects the inflated weight (cumulative + 1/p_min).
	Reweighted bool
}

// JoinRequest builds the admission request that joins st as a supertask:
// the representative task carries the cumulative (or inflated) weight,
// and the model carries the bundle. An error means the component set or
// its weight is invalid.
func JoinRequest(st *Supertask, reweighted bool) (admission.Request, error) {
	if err := st.Components.Validate(); err != nil {
		return admission.Request{}, err
	}
	w, err := st.Weight()
	if reweighted {
		w, err = st.ReweightedWeight()
	}
	if err != nil {
		return admission.Request{}, err
	}
	repr, err := task.New(st.Name, w.Num(), w.Den())
	if err != nil {
		return admission.Request{}, err
	}
	return admission.JoinModel(repr, Model{Super: st, Reweighted: reweighted}), nil
}

// Submit implements engine.Dynamic. Supertask joins (Model carrying a
// supertask Model) are admitted as a bundle; every other request —
// ordinary task joins, leaves, reweights, finishes, by either kind of
// name — is forwarded to the underlying scheduler's admission plane,
// with supertask-level bookkeeping layered on its decision. Structural
// errors detected before the scheduler is consulted (a duplicate
// supertask, an infeasible bundle weight) are returned directly; the
// scheduler's plane ledgers everything it sees. Cold path; call between
// engine steps.
func (sys *System) Submit(req admission.Request) (admission.Decision, error) {
	if m, ok := req.Model.(Model); ok {
		if req.Op != admission.OpJoin {
			return admission.Decision{}, fmt.Errorf("supertask: %s request must not carry a supertask model", req.Op)
		}
		if m.Super == nil {
			return admission.Decision{}, fmt.Errorf("supertask: join model carries no supertask")
		}
		if err := sys.AddSupertask(m.Super, m.Reweighted); err != nil {
			return admission.Decision{}, err
		}
		return admission.Decision{Op: admission.OpJoin, Name: m.Super.Name, EffectiveAt: sys.sched.Now()}, nil
	}
	d, err := sys.sched.Submit(req)
	if err != nil {
		return d, err
	}
	switch req.Op {
	case admission.OpLeave, admission.OpFinish:
		if ss, ok := sys.supers[req.Name]; ok {
			ss.leaveAt = d.EffectiveAt
		}
	}
	return d, nil
}

// AdmissionLog returns the accepted dynamic-task transactions of the
// underlying scheduler's admission plane, in commit order.
func (sys *System) AdmissionLog() []admission.Decision { return sys.sched.AdmissionLog() }

// AdmissionRejects returns how many dynamic-task requests the underlying
// scheduler's admission plane refused.
func (sys *System) AdmissionRejects() int64 { return sys.sched.AdmissionRejects() }
