// Package supertask implements the supertasking approach of Section 5.5
// (after Moir and Ramamurthy [29]): a set of component tasks is bound to a
// single processor and represented in the Pfair scheduler by one supertask
// competing with their cumulative weight. Whenever the supertask receives a
// quantum, an internal scheduler — EDF here, as in the Holman–Anderson
// analysis [16] — picks which component runs.
//
// Supertasking combines the benefits of Pfair scheduling and partitioning
// (both are special cases), but it is not safe as-is: component deadlines
// can be missed even though the supertask receives its full entitlement,
// because the entitlement may arrive at the wrong instants. Figure 5's
// two-processor counterexample is reproduced in the tests. Holman and
// Anderson showed that inflating the supertask's weight by 1/p_min, where
// p_min is the smallest component period, restores the guarantee; the
// Reweighted mode applies exactly that inflation.
package supertask

import (
	"fmt"
	"sort"

	"pfair/internal/core"
	"pfair/internal/engine"
	"pfair/internal/obs"
	"pfair/internal/rational"
	"pfair/internal/task"
)

// Supertask is a named bundle of component tasks bound to one processor.
type Supertask struct {
	Name       string
	Components task.Set
}

// Weight returns the cumulative component weight. An error is returned if
// the exact sum does not fit in an int64 rational (component sets are
// small, so this is unexpected) or exceeds one.
func (s *Supertask) Weight() (rational.Rat, error) {
	acc := rational.NewAcc()
	for _, c := range s.Components {
		acc.Add(c.Weight())
	}
	return accWeight(acc, s.Name)
}

// ReweightedWeight returns the Holman–Anderson inflated weight: cumulative
// weight + 1/p_min. For EDF-internal supertasks this inflation is
// sufficient to guarantee all component deadlines [16].
func (s *Supertask) ReweightedWeight() (rational.Rat, error) {
	if len(s.Components) == 0 {
		return rational.Zero(), fmt.Errorf("supertask %s: no components", s.Name)
	}
	pmin := s.Components[0].Period
	for _, c := range s.Components[1:] {
		if c.Period < pmin {
			pmin = c.Period
		}
	}
	acc := rational.NewAcc()
	for _, c := range s.Components {
		acc.Add(c.Weight())
	}
	acc.Add(rational.New(1, pmin))
	return accWeight(acc, s.Name)
}

func accWeight(acc *rational.Acc, name string) (rational.Rat, error) {
	w, ok := acc.Rat()
	if !ok {
		return rational.Zero(), fmt.Errorf("supertask %s: weight does not reduce to an int64 rational", name)
	}
	if rational.One().Less(w) {
		return rational.Zero(), fmt.Errorf("supertask %s: cumulative weight %v exceeds one processor", name, w)
	}
	if w.Sign() <= 0 {
		return rational.Zero(), fmt.Errorf("supertask %s: empty weight", name)
	}
	return w, nil
}

// Collapse greedily partitions set into supertasks, each holding as many
// consecutive components as fit one processor: a task joins the current
// group while the group's admission weight — cumulative weight, plus the
// Holman–Anderson 1/p_min inflation when reweighted is true — stays ≤ 1,
// and otherwise starts a new group. Supertasks are named prefix0,
// prefix1, … in group order. The partition is a pure function of the set
// order, so collapsed scale runs stay reproducible.
//
// Collapsing is how Section 5.5 tames the comparator's view of a large
// system: the global scheduler arbitrates among the supertasks (one per
// ≤1 processor of load) instead of among every component, and the shard
// tier then partitions those supertasks per CPU.
//
// An error is returned when a single task cannot form a feasible group
// by itself (weight 1 under reweighting, or a weight that does not
// reduce to an int64 rational).
func Collapse(prefix string, set task.Set, reweighted bool) ([]*Supertask, error) {
	var out []*Supertask
	var cur task.Set
	acc := rational.NewAcc()
	pmin := int64(0)

	fits := func(t *task.Task) bool {
		trial := acc.Clone().Add(t.Weight())
		if reweighted {
			p := pmin
			if p == 0 || t.Period < p {
				p = t.Period
			}
			trial.Add(rational.New(1, p))
		}
		if _, ok := trial.Rat(); !ok {
			return false
		}
		return trial.CmpInt(1) <= 0
	}
	flush := func() {
		if len(cur) == 0 {
			return
		}
		out = append(out, &Supertask{Name: fmt.Sprintf("%s%d", prefix, len(out)), Components: cur})
		cur = nil
		acc = rational.NewAcc()
		pmin = 0
	}

	for _, t := range set {
		if !fits(t) {
			flush()
			if !fits(t) {
				return nil, fmt.Errorf("supertask: %v cannot form a feasible supertask alone (reweighted=%v)", t, reweighted)
			}
		}
		cur = append(cur, t)
		acc.Add(t.Weight())
		if pmin == 0 || t.Period < pmin {
			pmin = t.Period
		}
	}
	flush()
	return out, nil
}

// ComponentMiss records a component job that was not complete by its
// deadline.
type ComponentMiss struct {
	Supertask string
	Component string
	Job       int64
	Deadline  int64
}

// Result aggregates a System run.
type Result struct {
	// Scheduler carries the global PD² counters (global misses here mean
	// the supertask itself missed a window, which PD² never does while
	// Equation (2) holds).
	Scheduler core.Stats
	// ComponentMisses lists component-level deadline violations — the
	// failure mode supertasking introduces.
	ComponentMisses []ComponentMiss
	// Served counts quanta delivered to each supertask.
	Served map[string]int64
	// Wasted counts supertask quanta that arrived when no component had
	// released, unfinished work.
	Wasted map[string]int64
}

type compState struct {
	t     *task.Task
	obsID int32 // dense trace id from the scheduler's allocator; −1 until registered
	// off is the slot the component's periodic lattice starts at: 0 for
	// supertasks added before the run (the historical synchronous case),
	// the admission slot for supertasks joining mid-run.
	off       int64
	completed int64 // fully finished jobs
	rem       int64 // remaining quanta of the head job (completed+1)
	// lastMissedJob is the highest job index already recorded as missed;
	// head-job indices are monotone, so one int replaces a per-job map.
	lastMissedJob int64
}

//pfair:hotpath
func (c *compState) headJob() int64 { return c.completed + 1 }

//pfair:hotpath
func (c *compState) headRelease() int64 { return c.off + c.completed*c.t.Period }

//pfair:hotpath
func (c *compState) headDeadline() int64 { return c.off + (c.completed+1)*c.t.Period }

//pfair:hotpath
func (c *compState) released(t int64) bool { return c.headRelease() <= t }

type sstate struct {
	st    *Supertask
	comps []*compState
	// leaveAt is the slot the supertask's departure takes effect, or −1
	// while it is live. From that slot on, afterSlot stops charging
	// component deadline misses: the bundle departed with its supertask.
	leaveAt int64
}

// System couples a global PD² (or other Pfair) scheduler with supertask
// internal scheduling. It rides the scheduler's engine: the per-slot
// supertask work (serving components, checking component deadlines) runs
// in the scheduler's OnSlot callback, so System.Run is just the engine
// loop.
type System struct {
	sched   *core.Scheduler
	supers  map[string]*sstate
	ordered []*sstate // sorted by supertask name, maintained on insert
	res     Result
	// rec is cached from the engine; nil when unobserved. Component-level
	// events (join/schedule/miss) are emitted alongside the scheduler's
	// own, with ids drawn from the same dense allocator.
	rec *obs.Recorder
}

// NewSystem returns a system on m processors under the given Pfair
// algorithm. Engine options attach observability; with a recorder, the
// trace carries both the supertasks' Pfair events and component-level
// schedule/miss events (component ids are registered as "super/comp").
func NewSystem(m int, alg core.Algorithm, opts ...engine.Option) *System {
	return NewSystemWith(m, alg, core.Options{}, opts...)
}

// NewSystemWith is NewSystem with explicit scheduler options, letting
// scale runs put the supertask tier on sharded ready queues
// (core.Options.Shards) — supertasks collapse the task count the global
// comparator sees, shards partition what remains.
func NewSystemWith(m int, alg core.Algorithm, copts core.Options, opts ...engine.Option) *System {
	sys := &System{
		sched:  core.NewScheduler(m, alg, copts, opts...),
		supers: make(map[string]*sstate),
	}
	sys.rec = sys.sched.Engine().Recorder()
	sys.sched.OnSlot(sys.afterSlot)
	sys.res.Served = make(map[string]int64)
	sys.res.Wasted = make(map[string]int64)
	return sys
}

// Engine returns the engine the system's scheduler runs on.
func (sys *System) Engine() *engine.Engine { return sys.sched.Engine() }

// AddTask admits an ordinary migrating Pfair task.
func (sys *System) AddTask(t *task.Task) error { return sys.sched.Join(t) }

// AddSupertask admits a supertask competing with its cumulative weight, or
// with the Holman–Anderson inflated weight when reweighted is true.
func (sys *System) AddSupertask(st *Supertask, reweighted bool) error {
	if _, dup := sys.supers[st.Name]; dup {
		return fmt.Errorf("supertask %q already added", st.Name)
	}
	if err := st.Components.Validate(); err != nil {
		return err
	}
	w, err := st.Weight()
	if reweighted {
		w, err = st.ReweightedWeight()
	}
	if err != nil {
		return err
	}
	// The inflated weight can exceed 1 for dense component sets; surface
	// that as an admission error rather than a panic.
	repr, err := task.New(st.Name, w.Num(), w.Den())
	if err != nil {
		return err
	}
	if err := sys.sched.Join(repr); err != nil {
		return err
	}
	ss := &sstate{st: st, leaveAt: -1}
	for _, c := range st.Components {
		// The lattice anchors at the admission slot — 0 for pre-run adds,
		// the current slot for supertasks joining mid-run.
		ss.comps = append(ss.comps, &compState{t: c, obsID: -1, rem: c.Cost, off: sys.sched.Now()})
	}
	sys.supers[st.Name] = ss
	// Keep ordered sorted by name so the ComponentMisses sequence is a
	// pure function of the workload, without re-sorting every slot.
	at := sort.Search(len(sys.ordered), func(i int) bool { return sys.ordered[i].st.Name >= st.Name })
	sys.ordered = append(sys.ordered, nil)
	copy(sys.ordered[at+1:], sys.ordered[at:])
	sys.ordered[at] = ss
	sys.registerComponents(ss)
	return nil
}

// registerComponents assigns trace ids to ss's components and announces
// them to the recorder. Ids come from the scheduler's dense allocator, so
// they never collide with task ids — even for tasks joining later.
func (sys *System) registerComponents(ss *sstate) {
	rec := sys.rec
	if rec == nil {
		return
	}
	for _, c := range ss.comps {
		if c.obsID < 0 {
			c.obsID = sys.sched.AllocObsID()
		}
		if rec.RegisterTask(c.obsID, ss.st.Name+"/"+c.t.Name) {
			rec.Emit(obs.Event{Slot: sys.sched.Now(), Kind: obs.EvJoin, Task: c.obsID, Proc: -1, A: c.t.Cost, B: c.t.Period})
		}
	}
}

// Run simulates the system for the given number of slots and returns the
// accumulated result. It may be called repeatedly to extend a run.
func (sys *System) Run(horizon int64) Result {
	if err := sys.sched.RunUntil(horizon); err != nil {
		//pfair:allowpanic livelock is a policy contract violation; Result has no error channel, and silence would report a clean run that never happened
		panic(err)
	}
	sys.res.Scheduler = sys.sched.Stats()
	return sys.res
}

// afterSlot is the scheduler's OnSlot callback: serve each scheduled
// supertask's quantum to its internal EDF scheduler, then check component
// deadlines, which pass at the end of the slot. Supertasks are visited in
// sorted-name order (maintained on insert) so the ComponentMisses
// sequence is a pure function of the workload.
//
//pfair:hotpath
func (sys *System) afterSlot(t int64, assigned []core.Assignment) {
	for _, a := range assigned {
		if ss, ok := sys.supers[a.Task]; ok {
			sys.res.Served[a.Task]++
			sys.serve(ss, t, int32(a.Proc))
		}
	}
	for _, ss := range sys.ordered {
		if ss.leaveAt >= 0 && t >= ss.leaveAt {
			continue
		}
		for _, c := range ss.comps {
			if c.rem > 0 && c.headDeadline() <= t+1 && c.headJob() > c.lastMissedJob {
				c.lastMissedJob = c.headJob()
				sys.res.ComponentMisses = append(sys.res.ComponentMisses, ComponentMiss{
					Supertask: ss.st.Name, Component: c.t.Name,
					Job: c.headJob(), Deadline: c.headDeadline(),
				})
				if rec := sys.rec; rec != nil {
					rec.Emit(obs.Event{Slot: t, Kind: obs.EvMiss, Task: c.obsID, Proc: -1, A: c.headJob(), B: c.headDeadline()})
				}
			}
		}
	}
}

// serve delivers one quantum to the supertask's internal EDF scheduler:
// among components with a released, unfinished head job, the earliest head
// deadline (ties by name) runs, on the processor the supertask's quantum
// arrived on.
//
//pfair:hotpath
func (sys *System) serve(ss *sstate, t int64, proc int32) {
	var pick *compState
	for _, c := range ss.comps {
		if c.rem <= 0 || !c.released(t) {
			continue
		}
		if pick == nil || c.headDeadline() < pick.headDeadline() ||
			(c.headDeadline() == pick.headDeadline() && c.t.Name < pick.t.Name) {
			pick = c
		}
	}
	if pick == nil {
		sys.res.Wasted[ss.st.Name]++
		return
	}
	if rec := sys.rec; rec != nil {
		rec.Emit(obs.Event{Slot: t, Kind: obs.EvSchedule, Task: pick.obsID, Proc: proc, A: pick.headJob()})
	}
	pick.rem--
	if pick.rem == 0 {
		pick.completed++
		pick.rem = pick.t.Cost
	}
}
