package supertask

import (
	"testing"

	"pfair/internal/core"
	"pfair/internal/engine"
	"pfair/internal/obs"
	"pfair/internal/task"
)

// The supertask per-slot work (serving components, checking component
// deadlines) runs inside the scheduler's OnSlot callback on the shared
// engine, so it must obey the same hot-path contract as the scheduler
// itself: 0 allocs per slot in steady state. The workload is reweighted,
// so the Holman–Anderson guarantee keeps the component-miss slow path
// cold.

func steadySystem(tb testing.TB, opts ...engine.Option) *System {
	tb.Helper()
	sys := NewSystem(2, core.PD2, opts...)
	st := &Supertask{Name: "S", Components: task.Set{
		task.MustNew("x", 1, 4), task.MustNew("y", 1, 8),
	}}
	if err := sys.AddSupertask(st, true); err != nil {
		tb.Fatal(err)
	}
	if err := sys.AddTask(task.MustNew("t", 1, 2)); err != nil {
		tb.Fatal(err)
	}
	return sys
}

// TestSlotSteadyStateZeroAllocs pins the unobserved per-slot path
// (engine step + supertask serve + component deadline scan) at
// 0 allocs/op.
func TestSlotSteadyStateZeroAllocs(t *testing.T) {
	sys := steadySystem(t)
	res := sys.Run(2000)
	if n := len(res.ComponentMisses); n != 0 {
		t.Fatalf("reweighted workload missed %d component deadlines; the guard needs a miss-free steady state", n)
	}
	if allocs := testing.AllocsPerRun(500, func() { sys.sched.Step() }); allocs != 0 {
		t.Errorf("slot allocates %v/op in steady state, want 0", allocs)
	}
}

// TestSlotObservedZeroAllocs repeats the guard with a live recorder:
// component schedule/miss emissions are nil-guarded and must not box.
func TestSlotObservedZeroAllocs(t *testing.T) {
	rec := obs.NewRecorder(1 << 12)
	sys := steadySystem(t, engine.WithRecorder(rec))
	sys.Run(2000)
	if allocs := testing.AllocsPerRun(500, func() { sys.sched.Step() }); allocs != 0 {
		t.Errorf("observed slot allocates %v/op in steady state, want 0", allocs)
	}
	if rec.Total() == 0 {
		t.Fatal("recorder attached but no events recorded")
	}
}

// BenchmarkSlotAllocs reports the steady-state per-slot cost of the
// combined scheduler + supertask path.
func BenchmarkSlotAllocs(b *testing.B) {
	sys := steadySystem(b)
	sys.Run(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.sched.Step()
	}
}
