package supertask

import (
	"testing"

	"pfair/internal/core"
	"pfair/internal/rational"
	"pfair/internal/task"
	"pfair/internal/taskgen"
)

func TestCollapsePartitionsUnderWeightBudget(t *testing.T) {
	set, err := taskgen.New(99).Set("c", 200, 6.0, []int64{10, 20, 40, 50})
	if err != nil {
		t.Fatalf("taskgen: %v", err)
	}
	for _, reweighted := range []bool{false, true} {
		groups, err := Collapse("S", set, reweighted)
		if err != nil {
			t.Fatalf("reweighted=%v: %v", reweighted, err)
		}
		if len(groups) < 6 {
			t.Fatalf("reweighted=%v: %d groups for ~6 processors of load", reweighted, len(groups))
		}
		// Every component appears exactly once, in set order.
		var flat task.Set
		for i, g := range groups {
			if want := "S" + itoa(i); g.Name != want {
				t.Fatalf("group %d named %q, want %q", i, g.Name, want)
			}
			if len(g.Components) == 0 {
				t.Fatalf("group %d empty", i)
			}
			flat = append(flat, g.Components...)
			// The admission weight must fit one processor.
			w, werr := g.Weight()
			if reweighted {
				w, werr = g.ReweightedWeight()
			}
			if werr != nil {
				t.Fatalf("group %d weight: %v", i, werr)
			}
			if rational.One().Less(w) {
				t.Fatalf("group %d admission weight %v exceeds 1", i, w)
			}
		}
		if len(flat) != len(set) {
			t.Fatalf("reweighted=%v: %d components across groups, want %d", reweighted, len(flat), len(set))
		}
		for i := range flat {
			if flat[i] != set[i] {
				t.Fatalf("component %d reordered: %v vs %v", i, flat[i], set[i])
			}
		}
	}
}

func TestCollapseDeterministic(t *testing.T) {
	set, err := taskgen.New(7).Set("c", 64, 3.0, []int64{8, 16, 24})
	if err != nil {
		t.Fatalf("taskgen: %v", err)
	}
	a, err := Collapse("S", set, true)
	if err != nil {
		t.Fatalf("collapse: %v", err)
	}
	b, err := Collapse("S", set, true)
	if err != nil {
		t.Fatalf("collapse: %v", err)
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic group count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Components) != len(b[i].Components) {
			t.Fatalf("group %d sized %d vs %d", i, len(a[i].Components), len(b[i].Components))
		}
	}
}

func TestCollapseInfeasibleSingleton(t *testing.T) {
	// A full-weight task cannot absorb the 1/p_min inflation.
	set := task.Set{task.MustNew("w", 5, 5)}
	if _, err := Collapse("S", set, true); err == nil {
		t.Fatal("expected error collapsing a weight-1 task under reweighting")
	}
	// Without inflation it fits alone.
	groups, err := Collapse("S", set, false)
	if err != nil || len(groups) != 1 {
		t.Fatalf("uninflated collapse = %v groups, err %v", len(groups), err)
	}
}

func TestCollapsedSystemSchedules(t *testing.T) {
	set, err := taskgen.New(3).Set("c", 20, 1.6, []int64{10, 20, 40})
	if err != nil {
		t.Fatalf("taskgen: %v", err)
	}
	groups, err := Collapse("S", set, true)
	if err != nil {
		t.Fatalf("collapse: %v", err)
	}
	sys := NewSystemWith(3, core.PD2, core.Options{Shards: 2})
	for _, g := range groups {
		if err := sys.AddSupertask(g, true); err != nil {
			t.Fatalf("add %s: %v", g.Name, err)
		}
	}
	res := sys.Run(400)
	if len(res.ComponentMisses) != 0 {
		t.Fatalf("reweighted collapsed system missed %d component deadlines: %+v", len(res.ComponentMisses), res.ComponentMisses[0])
	}
	if len(res.Scheduler.Misses) != 0 {
		t.Fatalf("global misses: %+v", res.Scheduler.Misses)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}
