package core

import (
	"testing"

	"pfair/internal/obs"
	"pfair/internal/task"
)

// countKinds tallies the recorded events by kind.
func countKinds(rec *obs.Recorder) map[obs.EventKind]int64 {
	counts := make(map[obs.EventKind]int64)
	for _, e := range rec.Events() {
		counts[e.Kind]++
	}
	return counts
}

// TestObserveEventsMatchStats cross-checks the trace stream and metrics
// block against the scheduler's own Stats counters: every counted action
// must have exactly one corresponding event, so the trace is a faithful
// expansion of the aggregate statistics.
func TestObserveEventsMatchStats(t *testing.T) {
	s := newLoadedScheduler(t, 3, 20, 2.7, 7)
	rec := obs.NewRecorder(1 << 18)
	met := obs.NewSchedulerMetrics(nil)
	s.Observe(rec, met)
	s.RunUntil(1000)

	if rec.Dropped() != 0 {
		t.Fatalf("ring too small for the run: dropped %d events", rec.Dropped())
	}
	st := s.Stats()
	counts := countKinds(rec)

	if counts[obs.EvJoin] != int64(len(s.Tasks())) {
		t.Errorf("EvJoin count = %d, want %d", counts[obs.EvJoin], len(s.Tasks()))
	}
	if counts[obs.EvSchedule] != st.Allocations {
		t.Errorf("EvSchedule count = %d, Stats.Allocations = %d", counts[obs.EvSchedule], st.Allocations)
	}
	if counts[obs.EvMigrate] != st.Migrations {
		t.Errorf("EvMigrate count = %d, Stats.Migrations = %d", counts[obs.EvMigrate], st.Migrations)
	}
	if counts[obs.EvPreempt] != st.Preemptions {
		t.Errorf("EvPreempt count = %d, Stats.Preemptions = %d", counts[obs.EvPreempt], st.Preemptions)
	}
	if counts[obs.EvRelease] == 0 {
		t.Error("no release events recorded")
	}
	// Idle + schedule events must tile the m×slots grid exactly.
	if got := counts[obs.EvIdle] + counts[obs.EvSchedule]; got != int64(s.Processors())*st.Slots {
		t.Errorf("idle(%d)+schedule(%d) = %d, want m·slots = %d",
			counts[obs.EvIdle], counts[obs.EvSchedule], got, int64(s.Processors())*st.Slots)
	}

	for name, pair := range map[string][2]int64{
		"slots":            {met.Slots.Value(), st.Slots},
		"allocations":      {met.Allocations.Value(), st.Allocations},
		"context switches": {met.ContextSwitches.Value(), st.ContextSwitches},
		"migrations":       {met.Migrations.Value(), st.Migrations},
		"preemptions":      {met.Preemptions.Value(), st.Preemptions},
		"misses":           {met.Misses.Value(), int64(len(st.Misses))},
	} {
		if pair[0] != pair[1] {
			t.Errorf("metric %s = %d, Stats says %d", name, pair[0], pair[1])
		}
	}
	if met.Occupancy.Count() != st.Slots {
		t.Errorf("occupancy histogram has %d samples, want one per slot (%d)", met.Occupancy.Count(), st.Slots)
	}
	if met.Occupancy.Sum() != st.Allocations {
		t.Errorf("occupancy histogram sum = %d, want Stats.Allocations = %d", met.Occupancy.Sum(), st.Allocations)
	}

	// Per-task allocations must sum to the total.
	var perTask int64
	for _, id := range rec.TaskIDs() {
		if tm := met.Task(id); tm != nil {
			perTask += tm.Allocations.Value()
		}
	}
	if perTask != st.Allocations {
		t.Errorf("per-task allocations sum to %d, total is %d", perTask, st.Allocations)
	}
}

// TestObserveMisses checks the pinned EPDF counterexample produces
// deadline-miss events agreeing with Stats.Misses, with the tardiness
// histogram fed once per miss.
func TestObserveMisses(t *testing.T) {
	set := task.Set{
		task.MustNew("T0", 4, 9), task.MustNew("T1", 3, 6), task.MustNew("T2", 1, 2),
		task.MustNew("T3", 8, 9), task.MustNew("T4", 6, 10), task.MustNew("T5", 3, 6),
		task.MustNew("T6", 9, 10), task.MustNew("T7", 2, 3),
	}
	s := NewScheduler(5, EPDF, Options{})
	rec := obs.NewRecorder(1 << 16)
	met := obs.NewSchedulerMetrics(nil)
	s.Observe(rec, met)
	for _, tk := range set {
		if err := s.Join(tk); err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	s.RunUntil(2 * set.Hyperperiod())

	st := s.Stats()
	if len(st.Misses) == 0 {
		t.Fatal("EPDF counterexample no longer misses; test needs a new workload")
	}
	counts := countKinds(rec)
	if counts[obs.EvMiss] != int64(len(st.Misses)) {
		t.Errorf("EvMiss count = %d, Stats has %d misses", counts[obs.EvMiss], len(st.Misses))
	}
	if met.Misses.Value() != int64(len(st.Misses)) {
		t.Errorf("miss counter = %d, want %d", met.Misses.Value(), len(st.Misses))
	}
	if met.Tardiness.Count() != int64(len(st.Misses)) {
		t.Errorf("tardiness histogram has %d samples, want %d", met.Tardiness.Count(), len(st.Misses))
	}
	// PD² under observation still schedules the same set cleanly — the
	// instrumented comparator must not change the priority order.
	s2 := NewScheduler(5, PD2, Options{})
	s2.Observe(obs.NewRecorder(1<<16), obs.NewSchedulerMetrics(nil))
	for _, tk := range set {
		if err := s2.Join(tk); err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	s2.RunUntil(2 * set.Hyperperiod())
	if misses := s2.Stats().Misses; len(misses) != 0 {
		t.Errorf("observed PD² missed on the feasible counterexample: %+v", misses[0])
	}
}

// TestObserveTieBreaks: on a fully utilized set PD² must resolve at least
// one deadline tie via the b-bit rule, and each traced tie-break names a
// winner distinct from its loser.
func TestObserveTieBreaks(t *testing.T) {
	set := task.Set{
		task.MustNew("T0", 4, 9), task.MustNew("T1", 3, 6), task.MustNew("T2", 1, 2),
		task.MustNew("T3", 8, 9), task.MustNew("T4", 6, 10), task.MustNew("T5", 3, 6),
		task.MustNew("T6", 9, 10), task.MustNew("T7", 2, 3),
	}
	s := NewScheduler(5, PD2, Options{})
	rec := obs.NewRecorder(1 << 20)
	met := obs.NewSchedulerMetrics(nil)
	s.Observe(rec, met)
	for _, tk := range set {
		if err := s.Join(tk); err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	s.RunUntil(set.Hyperperiod())

	counts := countKinds(rec)
	if counts[obs.EvTieBreakB] == 0 {
		t.Error("no b-bit tie-break events on a fully utilized PD² run")
	}
	if met.TieBreakB.Value() != counts[obs.EvTieBreakB] {
		t.Errorf("b-bit counter = %d, %d events recorded", met.TieBreakB.Value(), counts[obs.EvTieBreakB])
	}
	if met.TieBreakGroup.Value() != counts[obs.EvTieBreakGroup] {
		t.Errorf("group counter = %d, %d events recorded", met.TieBreakGroup.Value(), counts[obs.EvTieBreakGroup])
	}
	if met.HeapCmps.Value() == 0 {
		t.Error("heap comparison counter never incremented")
	}
	for _, e := range rec.Events() {
		if e.Kind == obs.EvTieBreakB || e.Kind == obs.EvTieBreakGroup {
			if int64(e.Task) == e.A {
				t.Fatalf("tie-break event with winner == loser: %+v", e)
			}
		}
	}
}

// TestObserveJoinLeave checks the dynamic-task events: a departing task
// emits EvLeave with its total allocation, and its instruments stop
// counting afterwards.
func TestObserveJoinLeave(t *testing.T) {
	s := NewScheduler(2, PD2, Options{})
	rec := obs.NewRecorder(1 << 12)
	s.Observe(rec, obs.NewSchedulerMetrics(nil))
	for _, tk := range []*task.Task{task.MustNew("A", 1, 2), task.MustNew("B", 1, 3)} {
		if err := s.Join(tk); err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	s.RunUntil(6)
	when, err := s.Leave("B")
	if err != nil {
		t.Fatalf("leave: %v", err)
	}
	s.RunUntil(when + 2)

	var leaves []obs.Event
	for _, e := range rec.Events() {
		if e.Kind == obs.EvLeave {
			leaves = append(leaves, e)
		}
	}
	if len(leaves) != 1 {
		t.Fatalf("got %d EvLeave events, want 1", len(leaves))
	}
	if got := rec.TaskName(leaves[0].Task); got != "B" {
		t.Errorf("leave event names task %q, want B", got)
	}
	if leaves[0].A <= 0 {
		t.Errorf("leave event allocation = %d, want > 0", leaves[0].A)
	}
}

// TestObserveLagExtrema: the max-|lag| gauge must equal the numerator of
// the last extremum event for the same task, and extrema must be
// monotonically increasing per task.
func TestObserveLagExtrema(t *testing.T) {
	s := newLoadedScheduler(t, 2, 10, 1.8, 11)
	rec := obs.NewRecorder(1 << 16)
	met := obs.NewSchedulerMetrics(nil)
	s.Observe(rec, met)
	s.RunUntil(500)

	last := map[int32]int64{}
	for _, e := range rec.Events() {
		if e.Kind != obs.EvLagExtremum {
			continue
		}
		if e.A <= last[e.Task] {
			t.Fatalf("lag extremum for task %d not increasing: %d after %d", e.Task, e.A, last[e.Task])
		}
		last[e.Task] = e.A
	}
	if len(last) == 0 {
		t.Fatal("no lag extremum events recorded")
	}
	for id, num := range last {
		tm := met.Task(id)
		if tm == nil {
			t.Fatalf("task %d has extremum events but no instruments", id)
		}
		if tm.MaxAbsLagNum.Value() != num {
			t.Errorf("task %d gauge = %d, last extremum = %d", id, tm.MaxAbsLagNum.Value(), num)
		}
	}
}

// TestObserveMidRunAttach: attaching mid-run registers already-admitted
// tasks and starts the stream at the current slot; detaching stops it.
func TestObserveMidRunAttach(t *testing.T) {
	s := newLoadedScheduler(t, 2, 10, 1.8, 3)
	s.RunUntil(100)
	rec := obs.NewRecorder(1 << 12)
	s.Observe(rec, obs.NewSchedulerMetrics(nil))
	s.RunUntil(150)
	events := rec.Events()
	if len(events) == 0 {
		t.Fatal("no events after mid-run attach")
	}
	for _, e := range events {
		if e.Slot < 100 {
			t.Fatalf("event before attach slot: %+v", e)
		}
	}
	if len(rec.TaskIDs()) != len(s.Tasks()) {
		t.Errorf("registered %d tasks, scheduler has %d", len(rec.TaskIDs()), len(s.Tasks()))
	}
	total := rec.Total()
	s.Observe(nil, nil)
	s.RunUntil(200)
	if rec.Total() != total {
		t.Error("events recorded after detach")
	}
}
