package core

import (
	"fmt"

	"pfair/internal/admission"
)

// This file binds the Pfair scheduler to the admission plane
// (internal/admission): Submit implements engine.Dynamic, and the
// legacy entry points — Join, JoinModel, Leave, Reweight — are thin
// shims over it, so every mutation path shares one validate →
// feasibility → apply-at-boundary → observe transaction and the
// schedules they produce are byte-identical to the pre-plane code
// (the golden equivalence suite pins this).
//
// The boundary protocol is the §5.2/§5.3 one the scheduler always
// implemented: joins land at the current instant (every instant
// between engine steps is a slot boundary), leaves and reweights are
// validated — and, for upward reweights, capacity-reserved — at
// request time but land at the task's earliest safe departure slot,
// applied by ApplyLeaves at the top of that slot. The Decision the
// ledger records carries that effective slot.

// Submit implements engine.Dynamic: one entry point for every
// dynamic-task operation, validated and feasibility-checked before any
// state changes. Accepted transactions are recorded in the plane's
// ledger; refused ones bump its reject counter and return the
// feasibility (or lookup) error unchanged.
func (s *Scheduler) Submit(req admission.Request) (admission.Decision, error) {
	if err := req.Validate(); err != nil {
		return admission.Decision{}, s.plane.Reject(req.Op, err)
	}
	switch req.Op {
	case admission.OpJoin:
		var model ReleaseModel
		if req.Model != nil {
			m, ok := req.Model.(ReleaseModel)
			if !ok {
				return admission.Decision{}, s.plane.Reject(req.Op,
					fmt.Errorf("core: join model %T does not implement core.ReleaseModel", req.Model))
			}
			model = m
		}
		if err := s.admit(req.Task, model, true, true); err != nil {
			return admission.Decision{}, s.plane.Reject(req.Op, err)
		}
		d := admission.Decision{Op: req.Op, Name: req.Task.Name, EffectiveAt: s.eng.Now()}
		s.plane.Commit(d)
		return d, nil

	case admission.OpLeave, admission.OpFinish:
		at, already, err := s.leave(req.Name)
		if err != nil {
			return admission.Decision{}, s.plane.Reject(req.Op, err)
		}
		d := admission.Decision{Op: req.Op, Name: req.Name, EffectiveAt: at}
		if !already {
			// An idempotent repeat of a pending leave is answered, not
			// re-ledgered.
			s.plane.Commit(d)
		}
		return d, nil

	case admission.OpReweight:
		at, err := s.reweight(req.Name, req.NewCost, req.NewPeriod)
		if err != nil {
			return admission.Decision{}, s.plane.Reject(req.Op, err)
		}
		d := admission.Decision{Op: req.Op, Name: req.Name, EffectiveAt: at}
		s.plane.Commit(d)
		return d, nil
	}
	// Unreachable: Validate rejected unknown ops.
	return admission.Decision{}, s.plane.Reject(req.Op, fmt.Errorf("core: unhandled op %v", req.Op))
}

// AdmissionLog returns the plane's accepted-transaction ledger in
// acceptance order.
func (s *Scheduler) AdmissionLog() []admission.Decision { return s.plane.Log() }

// AdmissionRejects returns how many dynamic-task requests were refused.
func (s *Scheduler) AdmissionRejects() int64 { return s.plane.Rejects() }
