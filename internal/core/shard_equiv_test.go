package core

import (
	"math/rand"
	"strings"
	"testing"

	"pfair/internal/obs"
	"pfair/internal/task"
)

// This file pins the shard tier's determinism contract at the scheduler
// level: for any Options.Shards value the assignment stream is
// bit-identical to the single-queue fast mode (and hence, via
// equiv_test.go, to the legacy heap). The shard tier's pick is an exact
// tournament over per-shard heads, so sharding affects only which queue
// serves the pick — the accounting exposed by ShardStats — never the
// schedule.

// shardScheduleOf runs one sharded scheduler and returns the per-slot
// assignment stream.
func shardScheduleOf(t *testing.T, alg Algorithm, m, shards int, set task.Set, horizon int64) []string {
	t.Helper()
	s := NewScheduler(m, alg, Options{Shards: shards})
	if !s.fast {
		t.Fatal("unobserved scheduler not in fast mode")
	}
	if (shards > 1) != (s.readySh != nil) {
		t.Fatalf("Shards=%d: readySh wired = %v", shards, s.readySh != nil)
	}
	var got []string
	s.OnSlot(func(tt int64, assigned []Assignment) {
		got = append(got, assignString(tt, assigned))
	})
	for _, tk := range set {
		if err := s.Join(tk); err != nil {
			t.Fatalf("join %v: %v", tk, err)
		}
	}
	s.RunUntil(horizon)
	return got
}

// TestShardedMatchesSingleQueue fuzzes task sets under every algorithm
// and shard counts {1, 2, 4}, requiring each sharded stream to equal the
// single-queue stream slot for slot.
func TestShardedMatchesSingleQueue(t *testing.T) {
	algs := []Algorithm{PD2, PD, PF, EPDF, PD2NoBBit}
	for _, alg := range algs {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(19 + int64(alg)))
			for trial := 0; trial < 12; trial++ {
				m := 1 + r.Intn(4)
				set := randomFeasibleSet(r, m, 3+r.Intn(8), 20)
				if len(set) == 0 {
					continue
				}
				horizon := set.Hyperperiod()
				if horizon > 1500 {
					horizon = 1500
				}
				want := shardScheduleOf(t, alg, m, 1, set, horizon)
				for _, shards := range []int{2, 4} {
					got := shardScheduleOf(t, alg, m, shards, set, horizon)
					if len(got) != len(want) {
						t.Fatalf("trial %d (m=%d, shards=%d, set=%v): %d slots vs %d single-queue",
							trial, m, shards, set, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("trial %d (m=%d, shards=%d, set=%v): slot %d diverges\nsharded: %s\nsingle:  %s",
								trial, m, shards, set, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestShardedMatchesSingleQueueDynamic repeats the comparison with
// mid-run leaves and re-joins, which exercise removal out of the middle
// of a shard (the qShard bookkeeping) and re-homing across admissions.
func TestShardedMatchesSingleQueueDynamic(t *testing.T) {
	run := func(t *testing.T, shards int) []string {
		s := NewScheduler(3, PD2, Options{Shards: shards})
		var got []string
		s.OnSlot(func(tt int64, assigned []Assignment) {
			got = append(got, assignString(tt, assigned))
		})
		join := func(name string, e, p int64) {
			if err := s.Join(task.MustNew(name, e, p)); err != nil {
				t.Fatalf("join %s: %v", name, err)
			}
		}
		join("A", 2, 3)
		join("B", 3, 7)
		join("C", 1, 5)
		join("D", 4, 9)
		s.RunUntil(40)
		if _, err := s.Leave("B"); err != nil {
			t.Fatalf("leave B: %v", err)
		}
		s.RunUntil(80)
		join("E", 5, 6)
		if _, err := s.Reweight("A", 1, 4); err != nil {
			t.Fatalf("reweight A: %v", err)
		}
		s.RunUntil(200)
		return got
	}
	want := run(t, 1)
	for _, shards := range []int{2, 3, 4, 8} {
		got := run(t, shards)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d slots vs %d single-queue", shards, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: slot %d diverges\nsharded: %s\nsingle:  %s", shards, i, got[i], want[i])
			}
		}
	}
}

// TestShardStatsAccounting checks the work-stealing counters move and
// that affinity re-homing produces local hits once the system settles:
// with every task re-homed to its last CPU's shard and the PD² pick
// biased to keep tasks on their processors, steady state serves most
// picks locally.
func TestShardStatsAccounting(t *testing.T) {
	s := NewScheduler(4, PD2, Options{Shards: 4})
	if _, ok := s.ShardStats(); !ok {
		t.Fatal("ShardStats must report ok with sharding on")
	}
	r := rand.New(rand.NewSource(23))
	set := randomFeasibleSet(r, 4, 10, 20)
	for _, tk := range set {
		if err := s.Join(tk); err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	s.RunUntil(2000)
	st, ok := s.ShardStats()
	if !ok {
		t.Fatal("ShardStats not ok")
	}
	total := st.LocalHits + st.Steals
	if total == 0 {
		t.Fatal("no picks accounted")
	}
	if st.LocalHits == 0 {
		t.Fatalf("no local hits in %d picks; affinity re-homing is not reaching the shard tier (%+v)", total, st)
	}
	if st.Underflows > st.Steals {
		t.Fatalf("underflow steals exceed steals: %+v", st)
	}

	// Sharding off: the accessor must say so.
	if _, ok := NewScheduler(2, PD2, Options{}).ShardStats(); ok {
		t.Fatal("ShardStats must report !ok with sharding off")
	}
}

// TestShardTelemetryMetrics pins the shard→metrics wiring: a metrics-only
// sharded scheduler stays in fast mode (metrics no longer force the
// legacy heap), its steal/hit counters track ShardStats exactly, the
// per-shard occupancy gauges are registered, and the whole bundle
// reaches the Prometheus exposition.
func TestShardTelemetryMetrics(t *testing.T) {
	met := obs.NewSchedulerMetrics(nil)
	s := NewScheduler(4, PD2, Options{Shards: 4})
	s.Observe(nil, met)
	if !s.fast {
		t.Fatal("metrics-only scheduler fell back to legacy mode; want fast")
	}
	if s.readySh == nil {
		t.Fatal("metrics-only scheduler lost its shard tier")
	}
	r := rand.New(rand.NewSource(23))
	set := randomFeasibleSet(r, 4, 10, 20)
	for _, tk := range set {
		if err := s.Join(tk); err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	s.RunUntil(2000)

	st, ok := s.ShardStats()
	if !ok {
		t.Fatal("ShardStats not ok")
	}
	if got := met.ShardLocalHits.Value(); got != st.LocalHits {
		t.Errorf("ShardLocalHits counter = %d, ShardStats says %d", got, st.LocalHits)
	}
	if got := met.ShardSteals.Value(); got != st.Steals {
		t.Errorf("ShardSteals counter = %d, ShardStats says %d", got, st.Steals)
	}
	if got := met.ShardUnderflows.Value(); got != st.Underflows {
		t.Errorf("ShardUnderflows counter = %d, ShardStats says %d", got, st.Underflows)
	}
	if st.LocalHits == 0 {
		t.Fatal("no local hits accounted; workload too small to exercise telemetry")
	}
	// Tie-break counters must move in fast mode too: cmpFast counts what
	// cmpReady would have narrated.
	if met.HeapCmps.Value() == 0 {
		t.Error("comparator counter never incremented in fast mode")
	}

	var sb strings.Builder
	if err := met.Registry().WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := sb.String()
	for _, want := range []string{
		"pfair_shard_local_hits_total",
		"pfair_shard_steals_total",
		"pfair_shard_underflows_total",
		`pfair_shard_occupancy{shard="0"}`,
		`pfair_shard_occupancy{shard="3"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus exposition missing %q", want)
		}
	}
}
