package core

import "fmt"

// Algorithm selects the Pfair priority rule used to order subtasks with
// eligible work. All four algorithms prioritize subtasks on an
// earliest-pseudo-deadline-first basis and differ only in tie-breaking
// (Section 2: "Selecting appropriate tie-breaks turns out to be the most
// important concern in designing correct Pfair algorithms").
type Algorithm int

const (
	// PD2 breaks deadline ties by b-bit (1 first), then by later group
	// deadline. PD² is the most efficient of the three known optimal
	// Pfair algorithms and the paper's subject.
	PD2 Algorithm = iota
	// PD is the earlier optimal algorithm of Baruah, Gehrke, and Plaxton.
	// It applies PD²'s rules followed by further tie-breaks
	// (heavy-before-light, then larger weight first). Any refinement of
	// PD²'s rules remains optimal, since PD² permits remaining ties to be
	// broken arbitrarily; PD is included as the costlier baseline.
	PD
	// PF is the original optimal algorithm of Baruah et al. [5]: deadline
	// ties are broken by lexicographic comparison of the successive
	// b-bits, recursing to successor subtasks while both bits are 1.
	PF
	// EPDF uses the earliest-pseudo-deadline-first rule with no
	// tie-breaks. It is NOT optimal on more than two processors; a
	// regression test pins a feasible set it misses, motivating the
	// tie-break machinery.
	EPDF
	// PD2NoBBit is PD² with the b-bit tie-break deliberately removed and
	// the group-deadline comparison inverted (deadline ties resolve to
	// the EARLIER group deadline, the opposite of PD²'s rule). It is
	// intentionally WRONG — a fault-injection target proving that the
	// differential fuzzing oracle (internal/fuzz) catches scheduler
	// mutations with a small shrunken reproducer. Like every Algorithm
	// it is a total order (see lessWhy), which the ready representations
	// require. Never use it to schedule real workloads.
	PD2NoBBit
)

func (a Algorithm) String() string {
	switch a {
	case PD2:
		return "PD2"
	case PD:
		return "PD"
	case PF:
		return "PF"
	case EPDF:
		return "EPDF"
	case PD2NoBBit:
		return "PD2-no-bbit"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// prio is the priority-relevant view of a ready subtask. The scheduler
// fills one per task when the task's current subtask changes.
type prio struct {
	deadline int64
	bbit     int
	group    int64 // group deadline (0 for light tasks)
	pat      *Pattern
	index    int64 // subtask index, for PF's recursive comparison
	offset   int64 // IS offset θ(i), shifts PF's recursive deadlines
	id       int   // stable task id: final deterministic tie-break
}

// decidedBy names the comparison rule that resolved a priority query,
// for the observability layer's tie-break accounting. Only the b-bit and
// group-deadline outcomes are traced (they are the rules whose firing
// frequency distinguishes PD² from EPDF); everything else reports one of
// the untraced values.
type decidedBy uint8

const (
	byDeadline decidedBy = iota
	byBBit
	byGroup
	byOther // PD weight rules, PF recursion
	byID
)

// less reports whether a has strictly higher priority than b under alg.
// The final comparison on task id makes the order total and deterministic.
//
//pfair:hotpath
func less(alg Algorithm, a, b *prio) bool {
	r, _ := lessWhy(alg, a, b)
	return r
}

// lessWhy is less plus the rule that decided the comparison. It is the
// single implementation of the priority order; less delegates to it so
// the traced and untraced paths can never diverge.
//
//pfair:hotpath
func lessWhy(alg Algorithm, a, b *prio) (bool, decidedBy) {
	if a.deadline != b.deadline {
		return a.deadline < b.deadline, byDeadline
	}
	switch alg {
	case EPDF:
		// No tie-breaks.
	case PD2NoBBit:
		// Fault injection: PD² minus the b-bit comparison, with the
		// group rule inverted (earlier group deadline first — the
		// opposite of PD²'s rule) and applied unconditionally. The
		// historical form kept PD²'s group direction but gated it on
		// both b-bits being 1; gating on a field the order does not
		// otherwise compare made the relation intransitive (a bbit-0
		// entry could sit between two group-ordered bbit-1 entries by
		// id, forming a cycle), and every ready representation — heap,
		// bucketed queue, shard tournament — assumes a total order. The
		// inversion keeps the mutant reliably catchable by the fuzz
		// oracle now that the order is lexicographic.
		if a.group != b.group {
			return a.group < b.group, byGroup
		}
	case PD2:
		if a.bbit != b.bbit {
			return a.bbit > b.bbit, byBBit
		}
		if a.bbit == 1 && a.group != b.group {
			return a.group > b.group, byGroup
		}
	case PD:
		if a.bbit != b.bbit {
			return a.bbit > b.bbit, byBBit
		}
		if a.bbit == 1 && a.group != b.group {
			return a.group > b.group, byGroup
		}
		ah, bh := a.pat.Heavy(), b.pat.Heavy()
		if ah != bh {
			return ah, byOther
		}
		if c := a.pat.Weight().Cmp(b.pat.Weight()); c != 0 {
			return c > 0, byOther
		}
	case PF:
		if c := pfCompare(a.pat, a.index, a.offset, b.pat, b.index, b.offset, pfMaxDepth); c != 0 {
			return c > 0, byOther
		}
	}
	return a.id < b.id, byID
}

// SubtaskRef identifies one subtask of a task pattern for priority
// comparison by external simulators (e.g. the variable-quantum study in
// internal/sim).
type SubtaskRef struct {
	Pat    *Pattern
	Index  int64 // 1-based subtask index
	Offset int64 // absolute window shift (join time + IS delay)
	ID     int   // stable task id for the final deterministic tie-break
}

// Less reports whether subtask a has strictly higher priority than b under
// the given algorithm. It is the exported form of the scheduler's internal
// comparison.
//
//pfair:hotpath
func Less(alg Algorithm, a, b SubtaskRef) bool {
	return less(alg, refPrio(a), refPrio(b))
}

//pfair:allowalloc exported comparison wrapper materializes a prio; the scheduler's internal path fills preallocated prios
func refPrio(r SubtaskRef) *prio {
	group := int64(0)
	if r.Pat.Heavy() {
		group = r.Offset + r.Pat.GroupDeadline(r.Index)
	}
	return &prio{
		deadline: r.Offset + r.Pat.Deadline(r.Index),
		bbit:     r.Pat.BBit(r.Index),
		group:    group,
		pat:      r.Pat,
		index:    r.Index,
		offset:   r.Offset,
		id:       r.ID,
	}
}

// pfMaxDepth bounds PF's recursive b-bit comparison. Two tasks can only
// remain tied beyond every window boundary if their weights and phases
// coincide, in which case their order is irrelevant to optimality and the
// id tie-break applies. The bound is generous: a tie chain breaks at the
// first b-bit of 0, and every task has one within each period.
const pfMaxDepth = 1 << 14

// pfCompare returns +1 if subtask i of pattern a has higher PF priority
// than subtask j of pattern b, −1 for the converse, and 0 for a full tie.
// Deadlines are compared in absolute time (shifted by the IS offsets).
//
//pfair:hotpath
func pfCompare(a *Pattern, i, aoff int64, b *Pattern, j, boff int64, depth int) int {
	for ; depth > 0; depth-- {
		da, db := a.Deadline(i)+aoff, b.Deadline(j)+boff
		if da != db {
			if da < db {
				return 1
			}
			return -1
		}
		ba, bb := a.BBit(i), b.BBit(j)
		if ba != bb {
			if ba > bb {
				return 1
			}
			return -1
		}
		if ba == 0 {
			return 0 // both end their overlap chains here: tie
		}
		i, j = i+1, j+1
	}
	return 0
}
