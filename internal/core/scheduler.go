package core

import (
	"fmt"
	"sort"

	"pfair/internal/admission"
	"pfair/internal/calq"
	"pfair/internal/engine"
	"pfair/internal/heap"
	"pfair/internal/obs"
	"pfair/internal/rational"
	"pfair/internal/shard"
	"pfair/internal/task"
)

// ReleaseModel customizes when a task's subtasks arrive, implementing the
// intra-sporadic (IS) model of Section 2. The zero behaviour (a nil model)
// is a periodic task: every subtask is released exactly on its Pfair window.
type ReleaseModel interface {
	// Offset returns the cumulative IS delay θ(i) ≥ 0 of subtask i. It
	// must be non-decreasing in i. A positive jump between i−1 and i means
	// subtask i arrived late (e.g. a delayed network packet); its whole
	// window — release, deadline, group deadline — shifts right by θ(i).
	Offset(i int64) int64
	// Earliness returns how many slots before its (shifted) Pfair release
	// subtask i becomes eligible, modelling early/bursty arrivals. The
	// deadline is NOT advanced: an early packet's deadline stays where it
	// would have been had the packet arrived on time (Section 2).
	Earliness(i int64) int64
}

// Periodic is the nil ReleaseModel made explicit: no delays, no earliness.
type Periodic struct{}

// Offset implements ReleaseModel.
//
//pfair:hotpath
func (Periodic) Offset(int64) int64 { return 0 }

// Earliness implements ReleaseModel.
//
//pfair:hotpath
func (Periodic) Earliness(int64) int64 { return 0 }

// Options configures a Scheduler.
type Options struct {
	// EarlyRelease enables the work-conserving ERfair variant: a subtask
	// that is not the first of its job becomes eligible as soon as its
	// predecessor completes, possibly before its Pfair release.
	EarlyRelease bool
	// NoAffinity disables the assignment rule that keeps a task scheduled
	// in consecutive slots on the same processor. The paper's preemption
	// bound min(E−1, P−E) per job relies on affinity being on; the flag
	// exists for the ablation benchmark.
	NoAffinity bool
	// Shards selects the fast-mode ready-queue layout: 0 or 1 keeps the
	// single global bucketed queue, N > 1 partitions the eligible set
	// into N per-CPU queues (internal/shard) whose heads the priority
	// comparator arbitrates, with work-stealing accounting. The
	// assignment stream is identical for every value — the shard tier's
	// pick is the exact global (deadline, priority)-minimum — so the
	// setting trades memory locality against tournament width without
	// changing one scheduling decision. Runs with a trace recorder
	// attached use the legacy heap regardless (its comparator narrates
	// tie-break events); a metrics-only attachment keeps the fast
	// (optionally sharded) path, whose comparator counts into the metrics
	// block and whose shard stats Account publishes.
	Shards int
}

// Assignment records one processor allocation in one slot.
type Assignment struct {
	Proc    int
	Task    string
	Subtask int64
}

// Miss records a subtask that could not be scheduled within its window.
type Miss struct {
	Task     string
	Subtask  int64
	Deadline int64
	// ScheduledAt is the slot in which the subtask was eventually
	// (tardily) scheduled, or −1 if it never was before the horizon.
	ScheduledAt int64
}

// Tardiness returns by how many slots the subtask completed late, or −1 if
// it never completed.
func (m Miss) Tardiness() int64 {
	if m.ScheduledAt < 0 {
		return -1
	}
	return m.ScheduledAt + 1 - m.Deadline
}

// Stats aggregates counters over a run.
type Stats struct {
	// Slots is the number of scheduler invocations (one per slot).
	Slots int64
	// Allocations is the total number of quanta handed to tasks.
	Allocations int64
	// ContextSwitches counts slot boundaries at which a processor begins
	// executing a task different from the one it executed in the
	// previous slot (starting after an idle slot counts too).
	ContextSwitches int64
	// Migrations counts allocations on a different processor than the
	// task's previous allocation.
	Migrations int64
	// Preemptions counts slot boundaries at which a task with an
	// in-progress job ran in the previous slot but not the current one.
	Preemptions int64
	// Misses lists every subtask deadline violation detected.
	Misses []Miss
}

type tstate struct {
	task  *task.Task
	pat   *Pattern
	model ReleaseModel
	id    int

	joinedAt int64
	index    int64 // current (next unscheduled) subtask, 1-based
	// pos and cyc locate index within the task's repeating window
	// pattern: pos = (index−1) mod e, cyc = ⌊(index−1)/e⌋·p. They are
	// maintained incrementally — O(1) per subtask advance — so the hot
	// path reads the precomputed per-period tables by direct index
	// instead of re-deriving the cycle with divisions (see
	// refreshSubtask).
	pos      int64
	cyc      int64
	pr       prio  // cached priority of the current subtask
	deadline int64 // absolute deadline of the current subtask
	elig     int64 // earliest slot the current subtask may run
	missed   bool  // current subtask already recorded as missed
	// earlyRelease overrides the scheduler-wide ERfair option for this
	// task when non-nil (mixed Pfair/ERfair systems).
	earlyRelease *bool

	// Queue handles, allocated once at admission and reused for every
	// insertion so the per-slot loop stays allocation-free. readyItem is
	// the handle for the observed-mode ready heap, readyEntry for the
	// fast-mode bucketed ready queue (at most one is queued at a time),
	// and pendItem for the pending-release calendar wheel.
	readyItem  *heap.Item[*tstate]
	readyEntry *calq.Entry[*tstate]
	pendItem   *calq.Item[*tstate]

	// home is the task's home shard when sharding is enabled: the shard
	// of the CPU it last ran on (re-homed at dispatch for cache
	// affinity), id mod S before its first run. qShard records the shard
	// its ready entry is actually queued in, which can lag home when the
	// task was re-homed while eligible.
	home   int
	qShard int

	// selSlot is the last slot in which this task was selected to run — a
	// generation flag that turns the preemption scan's membership test
	// over sel into an O(1) field comparison.
	selSlot int64
	// departed marks a tstate removed from the system (ApplyLeaves), so
	// stale procPrev references can be detected without a map lookup.
	departed bool
	// obsID is the task's dense observability id (see observe.go), −1
	// until the task is registered with an attached recorder or metrics
	// block.
	obsID int32

	allocated int64
	lastProc  int
	lastSlot  int64

	// Parameters of the most recently scheduled subtask, for the
	// Section 2 leave rules.
	hasScheduled  bool
	lastSchedDead int64
	lastSchedB    int
	lastSchedGrp  int64

	leaving bool
	leaveAt int64
	rejoin  *task.Task // replacement task for Reweight, joined at leaveAt
	// rejoinReserved records that the reweight's weight delta was already
	// added to the scheduler's total at request time (upward reweights
	// reserve capacity so concurrent joins cannot oversubscribe it).
	rejoinReserved bool
}

// Scheduler is a global Pfair/ERfair scheduler for m processors. It
// allocates processor time slot by slot: in each slot the m highest-priority
// eligible subtasks (under the configured Algorithm) are selected, so a task
// may migrate between slots but never runs in parallel with itself.
//
// The Scheduler is an engine.Policy: the slot loop itself lives in
// internal/engine, which owns the clock and invokes the phase methods
// (ApplyLeaves, Release, Pick, Dispatch, Account, Next) in order each
// slot. Step and RunUntil are kept as thin wrappers over the bound
// engine so existing call sites read unchanged.
//
// Release timers live in a calendar wheel (internal/calq) keyed by
// eligibility slot, so releasing a slot's subtasks touches one bucket
// instead of popping a heap. The eligible set has two interchangeable
// representations producing the identical pop order: a deadline-bucketed
// min-queue (the fast path) and the legacy binary heap matching the
// implementation whose overhead Section 4 measures. The heap is kept for
// recorder-traced runs, whose tie-break trace events are emitted from
// inside its comparator (see cmpReady); runs without a recorder —
// including metrics-only ones, whose comparator counts through cmpFast —
// use the bucketed queue.
type Scheduler struct {
	m    int
	alg  Algorithm
	opts Options

	eng    *engine.Engine
	nextID int
	tasks  map[string]*tstate
	order  []*tstate // join order, for deterministic iteration
	weight *rational.Acc

	ready     *heap.Heap[*tstate]     // eligible subtasks (observed mode)
	readyFast *calq.MinQueue[*tstate] // eligible subtasks (fast mode, Shards ≤ 1)
	readySh   *shard.Queues[*tstate]  // eligible subtasks (fast mode, Shards > 1)
	pending   *calq.Wheel[*tstate]    // future subtasks, by eligibility slot
	// fast selects the eligible-set representation: the bucketed queue
	// (single or sharded per Options.Shards) whenever no recorder is
	// attached — metrics-only runs stay fast so shard telemetry is
	// observable — and the legacy heap when one is. Flipped (with
	// migration) by updateMode.
	fast bool
	// shardN caches the shard count (0 when sharding is off) so the
	// dispatch re-homing branch costs one compare.
	shardN    int
	maxPeriod int64
	// shardSeen is the last shard.Stats snapshot folded into the metrics
	// block, so Account can publish monotone counter deltas per slot.
	shardSeen shard.Stats

	procPrev []*tstate // task run in the previous slot, per processor
	leaves   []*tstate // tasks with a pending departure

	stats  Stats
	onSlot func(t int64, assigned []Assignment)

	// rec and met are the attached observability sinks (see observe.go);
	// both nil when unobserved. Concrete pointers, not interfaces, so the
	// unobserved hot path costs one nil check per emission site.
	rec     *obs.Recorder
	met     *obs.SchedulerMetrics
	obsNext int32

	// plane is the admission-plane ledger and event/metric fanout every
	// dynamic operation flows through (see admission.go / internal/
	// admission). Created with the scheduler; its observability
	// attachment tracks the engine's via adoptAttachments.
	plane *admission.Plane

	selBuf    []*tstate
	assignBuf []Assignment
	// procNext and taken are the assignment scratch for the current slot,
	// allocated once and cleared per Step; procNext swaps with procPrev at
	// commit so no per-slot allocation occurs.
	procNext []*tstate
	taken    []bool
}

// NewScheduler returns a scheduler for m ≥ 1 processors using the given
// algorithm, bound to a fresh engine. Engine options attach observability
// at construction (engine.WithRecorder / engine.WithMetrics), equivalent
// to calling Observe afterwards.
func NewScheduler(m int, alg Algorithm, opts Options, engOpts ...engine.Option) *Scheduler {
	s := newSchedulerState(m, alg, opts)
	s.eng = engine.New(s, engOpts...)
	s.adoptAttachments()
	return s
}

// NewSchedulerOn builds a scheduler as NewScheduler does but rebinds an
// existing engine to it instead of creating a fresh one: the engine's
// clock rewinds to zero while its observability attachments (and trace
// ring) carry over. Scenario drivers (internal/faults) use it to re-run
// variants of an experiment on one engine. A nil engine is equivalent to
// NewScheduler.
func NewSchedulerOn(e *engine.Engine, m int, alg Algorithm, opts Options) *Scheduler {
	s := newSchedulerState(m, alg, opts)
	if e == nil {
		e = engine.New(s)
	} else {
		e.Reset(s)
	}
	s.eng = e
	s.adoptAttachments()
	return s
}

// newSchedulerState builds the scheduler sans engine binding.
func newSchedulerState(m int, alg Algorithm, opts Options) *Scheduler {
	if m < 1 {
		//pfair:allowpanic constructor contract: the processor count is a static configuration value
		panic("core: scheduler needs at least one processor")
	}
	s := &Scheduler{
		m:        m,
		alg:      alg,
		opts:     opts,
		tasks:    make(map[string]*tstate),
		weight:   rational.NewAcc(),
		plane:    admission.NewPlane(),
		procPrev: make([]*tstate, m),
		procNext: make([]*tstate, m),
		taken:    make([]bool, m),
	}
	s.ready = heap.New(s.cmpReady)
	// The fast ready queue buckets by deadline; equal-deadline ties use
	// the full priority order, read through s.alg at comparison time (the
	// algorithm is mutable in tests). The order is total (it ends on the
	// task id), so the pop sequence is independent of representation —
	// including the sharded one, whose head tournament picks the same
	// global minimum. cmpFast counts comparator and tie-break metrics
	// when a metrics block is attached without changing the order.
	if opts.Shards > 1 {
		s.readySh = shard.New[*tstate](opts.Shards, minSpan, s.cmpFast)
		s.shardN = s.readySh.Shards()
	} else {
		s.readyFast = calq.NewMinQueue[*tstate](minSpan, s.cmpFast)
	}
	s.pending = calq.NewWheel[*tstate](minSpan)
	s.fast = true
	return s
}

// minSpan seeds the calendar structures before any task joins;
// admissions grow them to the largest period seen, capped at
// calq.DefaultSpanCap (beyond the cap rounds share buckets, which both
// structures resolve exactly at a scan cost — correctness never depends
// on the span).
const minSpan = 32

// updateMode reselects the eligible-set representation after the
// observability attachments changed, migrating queued subtasks between
// the two structures. Fast mode requires only that no trace recorder is
// attached: the tie-break *events* are emitted from inside the legacy
// heap's comparator, but the tie-break *counters* (and everything else a
// metrics block tracks) are maintained by cmpFast on the bucketed path
// too, so metrics-only runs keep the fast — and, with Options.Shards,
// sharded — representation whose telemetry they report. Cold path:
// construction and Observe only.
func (s *Scheduler) updateMode() {
	want := s.rec == nil
	if want == s.fast {
		return
	}
	if want {
		for _, st := range s.order {
			if st.readyItem.Index() >= 0 {
				s.ready.Remove(st.readyItem)
				if sh := s.readySh; sh != nil {
					st.qShard = st.home
					sh.Add(st.readyEntry, st.deadline, st.home)
				} else {
					s.readyFast.Add(st.readyEntry, st.deadline)
				}
			}
		}
	} else {
		for _, st := range s.order {
			if st.readyEntry.Queued() {
				if sh := s.readySh; sh != nil {
					sh.Remove(st.readyEntry, st.qShard)
				} else {
					s.readyFast.Remove(st.readyEntry)
				}
				s.ready.PushItem(st.readyItem)
			}
		}
	}
	s.fast = want
}

// readyPush queues st's current subtask as eligible — on the task's home
// shard when sharding is on.
//
//pfair:hotpath
func (s *Scheduler) readyPush(st *tstate) {
	if s.fast {
		if sh := s.readySh; sh != nil {
			st.qShard = st.home
			sh.Add(st.readyEntry, st.deadline, st.home)
		} else {
			s.readyFast.Add(st.readyEntry, st.deadline)
		}
	} else {
		s.ready.PushItem(st.readyItem)
	}
}

// readyPop removes and returns the highest-priority eligible subtask.
// cpu is the processor slot the pick is destined for, used only for the
// shard tier's local-hit/steal accounting — the popped subtask is the
// global priority minimum under every representation.
//
//pfair:hotpath
func (s *Scheduler) readyPop(cpu int) *tstate {
	if s.fast {
		if sh := s.readySh; sh != nil {
			return sh.PopMinFor(cpu)
		}
		return s.readyFast.PopMin()
	}
	return s.ready.Pop()
}

// readyLen returns the eligible-set size.
//
//pfair:hotpath
func (s *Scheduler) readyLen() int {
	if s.fast {
		if sh := s.readySh; sh != nil {
			return sh.Len()
		}
		return s.readyFast.Len()
	}
	return s.ready.Len()
}

// readyRemove dequeues st from whichever eligible-set representation
// holds it (no-op if neither does). Cold path: leave/rejoin flows.
func (s *Scheduler) readyRemove(st *tstate) {
	if st.readyEntry.Queued() {
		if sh := s.readySh; sh != nil {
			sh.Remove(st.readyEntry, st.qShard)
		} else {
			s.readyFast.Remove(st.readyEntry)
		}
	}
	if st.readyItem.Index() >= 0 {
		s.ready.Remove(st.readyItem)
	}
}

// ShardStats returns the shard tier's work-stealing counters; ok is
// false when sharding is off (Options.Shards ≤ 1).
func (s *Scheduler) ShardStats() (shard.Stats, bool) {
	if s.readySh == nil {
		return shard.Stats{}, false
	}
	return s.readySh.Stats(), true
}

// Engine returns the engine this scheduler runs on.
func (s *Scheduler) Engine() *engine.Engine { return s.eng }

// Now returns the current slot: the next call to Step schedules slot Now().
func (s *Scheduler) Now() int64 { return s.eng.Now() }

// Processors returns m.
func (s *Scheduler) Processors() int { return s.m }

// TotalWeight returns the exact current total weight of all admitted tasks.
func (s *Scheduler) TotalWeight() *rational.Acc { return s.weight.Clone() }

// OnSlot registers a callback invoked after every slot with the slot index
// and its assignments. The assignment slice is reused; callbacks must copy
// it to retain it.
func (s *Scheduler) OnSlot(fn func(t int64, assigned []Assignment)) { s.onSlot = fn }

// Stats returns the counters accumulated so far.
func (s *Scheduler) Stats() Stats { return s.stats }

// Join admits a task at the current time. Per Section 2, a task may join
// whenever the feasibility condition Σ wt(T) ≤ M (Equation (2)) continues
// to hold. The task's first subtask is released at the current slot (plus
// any model offset). Join is a thin shim over the admission plane
// (Submit); the produced schedule is byte-identical to the pre-plane
// entry point.
func (s *Scheduler) Join(t *task.Task) error { return s.JoinModel(t, nil) }

// JoinModel admits a task with an explicit IS release model, through the
// admission plane.
func (s *Scheduler) JoinModel(t *task.Task, model ReleaseModel) error {
	var req admission.Request
	if model != nil {
		req = admission.JoinModel(t, model)
	} else {
		req = admission.Join(t)
	}
	_, err := s.Submit(req)
	return err
}

// JoinEarlyRelease admits a task with a per-task early-release override,
// supporting mixed Pfair/ERfair systems (Anderson & Srinivasan [4]): some
// tasks may be scheduled eagerly within their jobs while others keep
// strict Pfair eligibility, independent of the scheduler-wide
// Options.EarlyRelease default. Optimality is unaffected — early release
// only widens eligibility, never the windows.
func (s *Scheduler) JoinEarlyRelease(t *task.Task, model ReleaseModel, earlyRelease bool) error {
	if err := s.admit(t, model, true, true); err != nil {
		return s.plane.Reject(admission.OpJoin, err)
	}
	s.plane.Commit(admission.Decision{Op: admission.OpJoin, Name: t.Name, EffectiveAt: s.eng.Now()})
	er := earlyRelease
	s.tasks[t.Name].earlyRelease = &er
	s.refreshSubtask(s.tasks[t.Name])
	// Requeue under the corrected eligibility.
	st := s.tasks[t.Name]
	s.readyRemove(st)
	s.pending.Remove(st.pendItem)
	s.enqueue(st)
	return nil
}

// earlyReleaseOn reports whether st schedules eagerly: its own override if
// set, else the scheduler-wide option.
//
//pfair:hotpath
func (s *Scheduler) earlyReleaseOn(st *tstate) bool {
	if st.earlyRelease != nil {
		return *st.earlyRelease
	}
	return s.opts.EarlyRelease
}

// admit installs a task. addWeight controls whether the task's weight is
// added to the running total (false when a Reweight already reserved it);
// check controls whether Equation (2) gates the admission (false for
// Reweight re-joins, which were validated at request time).
func (s *Scheduler) admit(t *task.Task, model ReleaseModel, addWeight, check bool) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if _, dup := s.tasks[t.Name]; dup {
		return fmt.Errorf("core: task %q already in system", t.Name)
	}
	w := t.Weight()
	if check && s.weight.Clone().Add(w).CmpInt(int64(s.m)) > 0 {
		return fmt.Errorf("core: admitting %v would violate Σwt ≤ %d (current Σwt = %v)", t, s.m, s.weight)
	}
	st := &tstate{
		task:     t,
		pat:      NewPattern(t.Cost, t.Period),
		model:    model,
		id:       s.nextID,
		joinedAt: s.eng.Now(),
		index:    1,
		lastProc: -1,
		lastSlot: -1,
		selSlot:  -1,
		obsID:    -1,
	}
	st.readyItem = heap.NewItem(st)
	st.readyEntry = calq.NewEntry(st)
	st.pendItem = calq.NewItem(st)
	if n := s.shardN; n > 0 {
		st.home = st.id % n
	}
	s.nextID++
	if p := t.Period; p > s.maxPeriod {
		s.maxPeriod = p
		span := p
		if span > calq.DefaultSpanCap {
			span = calq.DefaultSpanCap
		}
		s.pending.EnsureSpan(span)
		if sh := s.readySh; sh != nil {
			sh.EnsureSpan(span)
		} else {
			s.readyFast.EnsureSpan(span)
		}
	}
	if addWeight {
		s.weight.Add(w)
	}
	s.tasks[t.Name] = st
	s.order = append(s.order, st)
	// Each task owns at most one pending-wheel entry, so the task count
	// bounds any Due batch; reserving here keeps Release allocation-free.
	s.pending.Reserve(len(s.order))
	s.registerObs(st)
	s.refreshSubtask(st)
	s.enqueue(st)
	return nil
}

// offset returns the absolute window shift of subtask i: join time plus the
// IS delay θ(i).
//
//pfair:hotpath
func (st *tstate) offsetOf(i int64) int64 {
	off := st.joinedAt
	if st.model != nil {
		d := st.model.Offset(i)
		if d < 0 {
			//pfair:allowpanic ReleaseModel contract: offsets are cumulative delays, hence non-negative
			panic(fmt.Sprintf("core: negative IS offset %d for %s subtask %d", d, st.task.Name, i))
		}
		off += d
	}
	return off
}

// advanceSubtask moves st to its next subtask, maintaining the pattern
// position incrementally: pos walks the per-period tables, cyc
// accumulates whole periods. Together they replace the ⌊(i−1)/e⌋
// division chain inside the Pattern accessors with one compare.
//
//pfair:hotpath
func (st *tstate) advanceSubtask() {
	st.index++
	st.pos++
	if st.pos == st.pat.e {
		st.pos = 0
		st.cyc += st.pat.p
	}
}

// refreshSubtask recomputes the cached parameters (release, deadline,
// b-bit, group deadline, eligibility) for st's current subtask. For
// periodic tasks with tabulated patterns — the common case — every
// parameter is a direct table read at the incrementally maintained
// position pos, offset by joinedAt + cyc: O(1) with no divisions. Tasks
// with an IS release model or an untabulated (cost > patternTableMax)
// pattern take the general formula path.
//
//pfair:hotpath
func (s *Scheduler) refreshSubtask(st *tstate) {
	i := st.index
	pt := st.pat
	var release int64
	if st.model == nil && pt.release != nil {
		base := st.joinedAt + st.cyc
		release = base + pt.release[st.pos]
		st.deadline = base + pt.deadline[st.pos]
		group := int64(0)
		if pt.heavy {
			group = base + pt.gd[st.pos]
		}
		st.pr = prio{
			deadline: st.deadline,
			bbit:     int(pt.bbit[st.pos]),
			group:    group,
			pat:      pt,
			index:    i,
			offset:   st.joinedAt,
			id:       st.id,
		}
	} else {
		off := st.offsetOf(i)
		release = off + pt.Release(i)
		st.deadline = off + pt.Deadline(i)
		group := int64(0)
		if pt.Heavy() {
			group = off + pt.GroupDeadline(i)
		}
		st.pr = prio{
			deadline: st.deadline,
			bbit:     pt.BBit(i),
			group:    group,
			pat:      pt,
			index:    i,
			offset:   off,
			id:       st.id,
		}
	}

	elig := release
	if st.model != nil {
		e := st.model.Earliness(i)
		if e < 0 {
			//pfair:allowpanic ReleaseModel contract: earliness values are non-negative by definition
			panic(fmt.Sprintf("core: negative earliness %d for %s subtask %d", e, st.task.Name, i))
		}
		elig -= e
	}
	if s.earlyReleaseOn(st) && st.pos != 0 {
		// ERfair: eligible as soon as the predecessor completes. pos == 0
		// is FirstOfJob, maintained incrementally.
		elig = st.lastSlot + 1
	}
	// A subtask can never run before its predecessor, before the task
	// joined, or before the current slot.
	if elig < st.lastSlot+1 {
		elig = st.lastSlot + 1
	}
	if elig < st.joinedAt {
		elig = st.joinedAt
	}
	st.elig = elig
	st.missed = false
}

// enqueue places st in the ready queue or the pending wheel according to
// its eligibility. Pending insertions always satisfy elig > Now(): at
// slot t every entry with elig ≤ t goes straight to ready, so the wheel
// bucket drained by Release(t) holds exactly the slot-t releases.
func (s *Scheduler) enqueue(st *tstate) {
	if st.elig <= s.eng.Now() {
		s.readyPush(st)
	} else {
		s.pending.Add(st.pendItem, st.elig)
	}
}

// Step schedules one slot and advances time. It returns the slot's
// assignments; the slice is reused by subsequent calls. The actual slot
// work lives in the engine phase methods below; Step merely drives the
// bound engine one step.
//
//pfair:hotpath
func (s *Scheduler) Step() []Assignment {
	s.eng.Step()
	return s.assignBuf
}

// Release is the engine release phase: move every subtask whose
// eligibility has arrived from the pending wheel to the ready queue. The
// wheel drain touches only slot t's bucket. When a recorder is attached,
// the drained batch is first ordered by (eligibility, id) — the legacy
// pending-heap pop order — so EvRelease events are emitted bit-identical
// to the heap implementation. Without a recorder the sort is skipped:
// every ready representation (heap, bucketed queue, shard tier) pops the
// exact (priority)-minimum sequence under the total order regardless of
// insertion order, so the batch's order is unobservable — and the sort
// was a measurable share of the unobserved Fig2b hot path.
//
//pfair:hotpath
func (s *Scheduler) Release(t int64) {
	due := s.pending.Due(t)
	rec := s.rec
	if rec != nil {
		for i := 1; i < len(due); i++ {
			for j := i; j > 0 && dueBefore(due[j], due[j-1]); j-- {
				due[j], due[j-1] = due[j-1], due[j]
			}
		}
	}
	for _, st := range due {
		s.readyPush(st)
		if rec != nil {
			rec.Emit(obs.Event{Slot: t, Kind: obs.EvRelease, Task: st.obsID, Proc: -1, A: st.index, B: st.deadline})
		}
	}
}

// dueBefore is the legacy pending-queue order: eligibility, then id.
//
//pfair:hotpath
func dueBefore(a, b *tstate) bool {
	if a.elig != b.elig {
		return a.elig < b.elig
	}
	return a.id < b.id
}

// Pick is the engine selection phase: pop the m highest-priority eligible
// subtasks into the selection scratch, recording a miss for any whose
// window already closed (it runs tardily).
//
//pfair:hotpath
func (s *Scheduler) Pick(t int64) {
	sel := s.selBuf[:0]
	for len(sel) < s.m && s.readyLen() > 0 {
		st := s.readyPop(len(sel))
		st.selSlot = t
		if st.deadline <= t && !st.missed {
			// The window has closed; the subtask runs tardily.
			st.missed = true
			s.stats.Misses = append(s.stats.Misses, Miss{
				Task:        st.task.Name,
				Subtask:     st.index,
				Deadline:    st.deadline,
				ScheduledAt: t,
			})
			if rec := s.rec; rec != nil {
				rec.Emit(obs.Event{Slot: t, Kind: obs.EvMiss, Task: st.obsID, Proc: -1, A: st.index, B: st.deadline})
			}
			if met := s.met; met != nil {
				met.Misses.Inc()
				met.Tardiness.Observe(t + 1 - st.deadline)
				if tm := met.Task(st.obsID); tm != nil {
					tm.Misses.Inc()
				}
			}
		}
		sel = append(sel, st)
	}
	s.selBuf = sel
}

// Dispatch is the engine commit phase: count preemptions against the
// previous slot, place the selection on processors (affinity first), and
// commit allocations, counters, and subtask advancement.
//
//pfair:hotpath
func (s *Scheduler) Dispatch(t int64) {
	sel := s.selBuf

	// Count preemptions: a task that ran in slot t−1, has an in-progress
	// job, and was not selected for slot t. The selSlot generation flag
	// replaces the former O(m·|sel|) membership scan, and the departed
	// flag the former per-processor map lookup.
	for _, prev := range s.procPrev {
		if prev == nil || prev.lastSlot != t-1 {
			continue
		}
		if prev.selSlot != t && !prev.departed && prev.pos != 0 {
			s.stats.Preemptions++
			if rec := s.rec; rec != nil {
				rec.Emit(obs.Event{Slot: t, Kind: obs.EvPreempt, Task: prev.obsID, Proc: int32(prev.lastProc), A: prev.index})
			}
			if met := s.met; met != nil {
				met.Preemptions.Inc()
				if tm := met.Task(prev.obsID); tm != nil {
					tm.Preemptions.Inc()
				}
			}
		}
	}

	// Assign processors. First pass: affinity — a task that ran in the
	// previous slot keeps its processor so that continuing execution does
	// not count as a context switch (the optimization behind the paper's
	// min(E−1, P−E) preemption bound).
	assigned := s.assignBuf[:0]
	procNew := s.procNext
	taken := s.taken
	for k := range procNew {
		procNew[k] = nil
		taken[k] = false
	}
	if !s.opts.NoAffinity {
		for _, st := range sel {
			if st.lastSlot == t-1 && st.lastProc >= 0 && !taken[st.lastProc] {
				procNew[st.lastProc] = st
				taken[st.lastProc] = true
			}
		}
	}
	// Second pass: place the rest, preferring each task's previous
	// processor if free (cuts migrations after short gaps), else the
	// first free processor.
	for _, st := range sel {
		if st.lastSlot == t-1 && !s.opts.NoAffinity && st.lastProc >= 0 && procNew[st.lastProc] == st {
			continue
		}
		proc := -1
		if st.lastProc >= 0 && st.lastProc < s.m && !taken[st.lastProc] {
			proc = st.lastProc
		} else {
			for k := 0; k < s.m; k++ {
				if !taken[k] {
					proc = k
					break
				}
			}
		}
		procNew[proc] = st
		taken[proc] = true
	}

	// Commit allocations and counters.
	for k := 0; k < s.m; k++ {
		st := procNew[k]
		if st == nil {
			continue
		}
		if s.procPrev[k] != st {
			s.stats.ContextSwitches++
			if met := s.met; met != nil {
				met.ContextSwitches.Inc()
			}
		}
		if st.lastProc >= 0 && st.lastProc != k {
			s.stats.Migrations++
			if rec := s.rec; rec != nil {
				rec.Emit(obs.Event{Slot: t, Kind: obs.EvMigrate, Task: st.obsID, Proc: int32(k), A: int64(st.lastProc), B: st.index})
			}
			if met := s.met; met != nil {
				met.Migrations.Inc()
				if tm := met.Task(st.obsID); tm != nil {
					tm.Migrations.Inc()
				}
			}
		}
		st.allocated++
		st.lastProc = k
		st.lastSlot = t
		if n := s.shardN; n > 0 {
			// Work-stealing affinity: re-home the task to the shard of
			// the CPU it just ran on, so its next subtask queues where
			// that CPU picks locally.
			st.home = k % n
		}
		st.hasScheduled = true
		st.lastSchedDead = st.deadline
		st.lastSchedB = st.pr.bbit
		st.lastSchedGrp = st.pr.group
		s.stats.Allocations++
		if rec := s.rec; rec != nil {
			rec.Emit(obs.Event{Slot: t, Kind: obs.EvSchedule, Task: st.obsID, Proc: int32(k), A: st.index})
		}
		if met := s.met; met != nil {
			met.Allocations.Inc()
			if tm := met.Task(st.obsID); tm != nil {
				tm.Allocations.Inc()
			}
		}
		assigned = append(assigned, Assignment{Proc: k, Task: st.task.Name, Subtask: st.index})

		// Advance to the next subtask.
		st.advanceSubtask()
		s.refreshSubtask(st)
		s.pending.Add(st.pendItem, st.elig)
	}
	s.assignBuf = assigned
	if rec := s.rec; rec != nil {
		for k := 0; k < s.m; k++ {
			if procNew[k] == nil {
				rec.Emit(obs.Event{Slot: t, Kind: obs.EvIdle, Task: -1, Proc: int32(k)})
			}
		}
	}
	s.procPrev, s.procNext = procNew, s.procPrev
}

// Account is the engine accounting phase: per-slot counters, gauges, lag
// tracking, and the OnSlot callback.
//
//pfair:hotpath
func (s *Scheduler) Account(t int64) {
	s.stats.Slots++
	if met := s.met; met != nil {
		met.Slots.Inc()
		met.ReadyLen.Set(int64(s.readyLen()))
		met.PendingLen.Set(int64(s.pending.Len()))
		met.Occupancy.Observe(int64(len(s.assignBuf)))
		if sh := s.readySh; sh != nil {
			// Shard telemetry: publish the work-stealing counters as
			// deltas against the last snapshot (the tier's totals are
			// cumulative) and refresh each shard's occupancy gauge.
			st := sh.Stats()
			met.ShardLocalHits.Add(st.LocalHits - s.shardSeen.LocalHits)
			met.ShardSteals.Add(st.Steals - s.shardSeen.Steals)
			met.ShardUnderflows.Add(st.Underflows - s.shardSeen.Underflows)
			s.shardSeen = st
			for i := 0; i < s.shardN; i++ {
				if g := met.Shard(i); g != nil {
					g.Set(int64(sh.ShardLen(i)))
				}
			}
		}
	}
	s.observeLags(t + 1)

	if s.onSlot != nil {
		s.onSlot(t, s.assignBuf)
	}
}

// Next implements engine.Policy: the Pfair scheduler is slot-driven.
//
//pfair:hotpath
func (s *Scheduler) Next(t int64) int64 { return t + 1 }

// Finish implements engine.Finisher by delegating to FinishMisses, so
// engine-level drivers can close out a run without knowing the policy.
func (s *Scheduler) Finish(horizon int64) { s.FinishMisses(horizon) }

// RunUntil steps the scheduler until Now() == horizon. The returned
// error is non-nil only when the engine's livelock backstop trips
// (*engine.LivelockError) — impossible for this slot-driven policy, whose
// Next always advances, but surfaced so callers composing schedulers with
// event-driven policies on one engine handle every driver uniformly.
func (s *Scheduler) RunUntil(horizon int64) error {
	return s.eng.Run(horizon)
}

// FinishMisses appends, to the recorded stats, a miss for every admitted
// subtask whose deadline is at or before the horizon but which was never
// scheduled. Call it once after the final RunUntil to account for work the
// simulation ended on.
func (s *Scheduler) FinishMisses(horizon int64) {
	for _, st := range s.order {
		if st.departed {
			continue
		}
		if st.deadline <= horizon && !st.missed {
			s.stats.Misses = append(s.stats.Misses, Miss{
				Task:        st.task.Name,
				Subtask:     st.index,
				Deadline:    st.deadline,
				ScheduledAt: -1,
			})
			st.missed = true
		}
	}
}

// Lag returns the task's exact lag wt(T)·(now − join) − allocated at the
// current time. It is meaningful for periodic tasks (nil or zero-offset
// models); for IS tasks the fluid reference shifts with each delay and
// per-subtask deadlines are the correctness notion instead.
func (s *Scheduler) Lag(name string) (rational.Rat, error) {
	st, ok := s.tasks[name]
	if !ok {
		return rational.Zero(), fmt.Errorf("core: no task %q", name)
	}
	return st.pat.Lag(s.eng.Now()-st.joinedAt, st.allocated), nil
}

// Tasks returns the names of all currently admitted tasks in join order.
func (s *Scheduler) Tasks() []string {
	names := make([]string, 0, len(s.tasks))
	for _, st := range s.order {
		if !st.departed {
			names = append(names, st.task.Name)
		}
	}
	return names
}

// ApplyLeaves implements engine.Leaver: the engine invokes it at the top
// of every slot to remove tasks whose departure time has arrived and
// admit any Reweight replacements. Not intended for direct use. The
// steady-state cost is the empty-slice check; departure slots take the
// slow path, which allocates (rejoin buffers, admission structures) by
// design.
//
//pfair:hotpath
func (s *Scheduler) ApplyLeaves(t int64) {
	if len(s.leaves) == 0 {
		return
	}
	//pfair:coldcall leave and rejoin processing runs only on departure slots, not in steady state
	s.applyLeaves(t)
}

// applyLeaves processes due departures and rejoins at slot t.
func (s *Scheduler) applyLeaves(t int64) {
	kept := s.leaves[:0]
	var rejoins []*tstate
	for _, st := range s.leaves {
		if st.leaveAt > t {
			kept = append(kept, st)
			continue
		}
		s.readyRemove(st)
		s.pending.Remove(st.pendItem)
		if !st.rejoinReserved {
			// An upward Reweight already swapped the weights at request
			// time; everything else is subtracted on departure.
			s.weight.Sub(st.task.Weight())
		}
		delete(s.tasks, st.task.Name)
		st.departed = true
		s.plane.EmitLeave(t, st.obsID, st.allocated)
		if st.rejoin != nil {
			rejoins = append(rejoins, st)
		}
	}
	s.leaves = kept
	// Sort rejoins for determinism, then admit. Re-joins bypass the
	// admission check: they were validated (and, if upward, reserved)
	// when the Reweight was requested. They are not re-ledgered either —
	// the Reweight Decision that scheduled them already is — but the
	// boundary their new weight lands on is narrated with an EvReweight
	// carrying the new incarnation's id, following its EvJoin.
	sort.Slice(rejoins, func(i, j int) bool { return rejoins[i].rejoin.Name < rejoins[j].rejoin.Name })
	for _, st := range rejoins {
		if err := s.admit(st.rejoin, nil, !st.rejoinReserved, false); err != nil {
			// Unreachable: the departed task owned the name and the
			// parameters were validated at request time.
			//pfair:allowpanic invariant: the departed task owned the name and the parameters were validated at request time
			panic(fmt.Sprintf("core: reweight re-join failed: %v", err))
		}
		nst := s.tasks[st.rejoin.Name]
		s.plane.EmitReweight(t, nst.obsID, st.rejoin.Cost, st.rejoin.Period)
	}
}
