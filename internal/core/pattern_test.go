package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pfair/internal/rational"
)

// TestFig1aWindows pins the window layout of Figure 1(a): the first two
// jobs of a periodic task with weight 8/11.
func TestFig1aWindows(t *testing.T) {
	pt := NewPattern(8, 11)
	want := []struct {
		i    int64
		r, d int64
	}{
		{1, 0, 2}, {2, 1, 3}, {3, 2, 5}, {4, 4, 6},
		{5, 5, 7}, {6, 6, 9}, {7, 8, 10}, {8, 9, 11},
		// Second job: same pattern shifted by the period.
		{9, 11, 13}, {10, 12, 14}, {11, 13, 16}, {12, 15, 17},
		{13, 16, 18}, {14, 17, 20}, {15, 19, 21}, {16, 20, 22},
	}
	for _, w := range want {
		if got := pt.Release(w.i); got != w.r {
			t.Errorf("r(T%d) = %d, want %d", w.i, got, w.r)
		}
		if got := pt.Deadline(w.i); got != w.d {
			t.Errorf("d(T%d) = %d, want %d", w.i, got, w.d)
		}
	}
	// "b(Tᵢ) = 1 for 1 ≤ i ≤ 7 and b(T₈) = 0."
	for i := int64(1); i <= 7; i++ {
		if pt.BBit(i) != 1 {
			t.Errorf("b(T%d) = %d, want 1", i, pt.BBit(i))
		}
	}
	if pt.BBit(8) != 0 {
		t.Errorf("b(T8) = %d, want 0", pt.BBit(8))
	}
	// "Subtask T₃ has a group deadline at time 8 and subtask T₇ has a
	// group deadline at time 11."
	if got := pt.GroupDeadline(3); got != 8 {
		t.Errorf("D(T3) = %d, want 8", got)
	}
	if got := pt.GroupDeadline(7); got != 11 {
		t.Errorf("D(T7) = %d, want 11", got)
	}
}

func TestPatternValidation(t *testing.T) {
	for _, bad := range [][2]int64{{0, 5}, {-1, 5}, {6, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPattern(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			NewPattern(bad[0], bad[1])
		}()
	}
}

func TestWeightOnePattern(t *testing.T) {
	pt := NewPattern(4, 4)
	for i := int64(1); i <= 10; i++ {
		if pt.Release(i) != i-1 || pt.Deadline(i) != i {
			t.Fatalf("weight-1 window of T%d = [%d,%d), want [%d,%d)", i, pt.Release(i), pt.Deadline(i), i-1, i)
		}
		if pt.BBit(i) != 0 {
			t.Fatalf("weight-1 b(T%d) = %d, want 0", i, pt.BBit(i))
		}
		if pt.GroupDeadline(i) != i {
			t.Fatalf("weight-1 D(T%d) = %d, want %d", i, pt.GroupDeadline(i), i)
		}
	}
}

func TestLightGroupDeadlineZero(t *testing.T) {
	pt := NewPattern(1, 3)
	for i := int64(1); i <= 9; i++ {
		if pt.GroupDeadline(i) != 0 {
			t.Fatalf("light D(T%d) = %d, want 0", i, pt.GroupDeadline(i))
		}
	}
}

func TestJobIndexFirstOfJob(t *testing.T) {
	pt := NewPattern(3, 5)
	wantJob := []int64{1, 1, 1, 2, 2, 2, 3}
	wantFirst := []bool{true, false, false, true, false, false, true}
	for k, i := 0, int64(1); i <= 7; i, k = i+1, k+1 {
		if got := pt.JobIndex(i); got != wantJob[k] {
			t.Errorf("JobIndex(%d) = %d, want %d", i, got, wantJob[k])
		}
		if got := pt.FirstOfJob(i); got != wantFirst[k] {
			t.Errorf("FirstOfJob(%d) = %v, want %v", i, got, wantFirst[k])
		}
	}
}

func TestLag(t *testing.T) {
	pt := NewPattern(2, 3)
	// At t=3 the fluid schedule has given exactly 2 quanta.
	if got := pt.Lag(3, 2); !got.IsZero() {
		t.Errorf("lag(3, alloc=2) = %v, want 0", got)
	}
	if got := pt.Lag(3, 1); !got.Equal(rational.New(1, 1)) {
		t.Errorf("lag(3, alloc=1) = %v, want 1", got)
	}
	if got := pt.Lag(2, 2); !got.Equal(rational.New(-2, 3)) {
		t.Errorf("lag(2, alloc=2) = %v, want -2/3", got)
	}
}

// randomPattern draws a pattern with period ≤ 60.
func randomPattern(r *rand.Rand) *Pattern {
	p := int64(1 + r.Intn(60))
	e := int64(1 + r.Intn(int(p)))
	return NewPattern(e, p)
}

// TestQuickWindowStructure checks the structural facts Section 2 states
// about windows: consecutive windows overlap by one slot iff b = 1, window
// lengths differ by at most one, and every subtask's window is non-empty.
func TestQuickWindowStructure(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pt := randomPattern(r)
		minLen := rational.CeilDiv(pt.Period(), pt.Cost())
		for i := int64(1); i <= 3*pt.Cost(); i++ {
			ln := pt.WindowLength(i)
			if ln < 1 {
				return false
			}
			if ln < minLen || ln > minLen+1 {
				return false
			}
			// r(Tᵢ₊₁) = d(Tᵢ) − b(Tᵢ): overlap by exactly b slots.
			if pt.Release(i+1) != pt.Deadline(i)-int64(pt.BBit(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickPatternPeriodicity: all window parameters repeat every e
// subtasks, shifted by p.
func TestQuickPatternPeriodicity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pt := randomPattern(r)
		e, p := pt.Cost(), pt.Period()
		for i := int64(1); i <= 2*e; i++ {
			if pt.Release(i+e) != pt.Release(i)+p {
				return false
			}
			if pt.Deadline(i+e) != pt.Deadline(i)+p {
				return false
			}
			if pt.BBit(i+e) != pt.BBit(i) {
				return false
			}
			if pt.Heavy() && pt.GroupDeadline(i+e) != pt.GroupDeadline(i)+p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickGroupDeadlineMatchesBruteForce validates the memoized walk
// against a literal scan of the definition: the earliest t ≥ d(Tᵢ) with
// some k ≥ i satisfying (t = d(Tₖ) ∧ b(Tₖ)=0) ∨ (t+1 = d(Tₖ) ∧ |w(Tₖ)|=3).
func TestQuickGroupDeadlineMatchesBruteForce(t *testing.T) {
	brute := func(pt *Pattern, i int64) int64 {
		di := pt.Deadline(i)
		for tt := di; ; tt++ {
			for k := i; k <= i+2*pt.Cost()+2; k++ {
				if tt == pt.Deadline(k) && pt.BBit(k) == 0 {
					return tt
				}
				if tt+1 == pt.Deadline(k) && pt.WindowLength(k) == 3 {
					return tt
				}
			}
			if tt > di+3*pt.Period() {
				panic("brute-force group deadline ran away")
			}
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Heavy patterns only: weight in [1/2, 1).
		p := int64(2 + r.Intn(40))
		e := (p+1)/2 + r.Int63n(p-(p+1)/2) // in [ceil(p/2), p-1]
		if e >= p {
			e = p - 1
		}
		if e < (p+1)/2 {
			e = (p + 1) / 2
		}
		pt := NewPattern(e, p)
		for i := int64(1); i <= e+2; i++ {
			if pt.GroupDeadline(i) != brute(pt, i) {
				t.Logf("pattern %d/%d subtask %d: fast=%d brute=%d", e, p, i, pt.GroupDeadline(i), brute(pt, i))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickGroupDeadlineBounds: for heavy tasks, D(Tᵢ) ≥ d(Tᵢ), and the
// cascade ends within one period of the deadline.
func TestQuickGroupDeadlineBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := int64(2 + r.Intn(50))
		e := (p + 1) / 2
		pt := NewPattern(e, p)
		for i := int64(1); i <= 2*e; i++ {
			d := pt.Deadline(i)
			g := pt.GroupDeadline(i)
			if g < d || g > d+p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickLagWindowConsistency: scheduling every subtask inside its
// window keeps the lag strictly inside (−1, 1). We verify the equivalence
// on the two extreme in-window policies: always the first slot of the
// window and always the last.
func TestQuickLagWindowConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pt := randomPattern(r)
		one := rational.One()
		for _, last := range []bool{false, true} {
			horizon := 3 * pt.Period()
			slotOf := make(map[int64]int64) // subtask -> slot scheduled
			for i := int64(1); ; i++ {
				s := pt.Release(i)
				if last {
					s = pt.Deadline(i) - 1
				}
				if s >= horizon {
					break
				}
				slotOf[i] = s
			}
			alloc := int64(0)
			next := int64(1)
			for tt := int64(0); tt < horizon; tt++ {
				if s, ok := slotOf[next]; ok && s == tt {
					alloc++
					next++
				}
				lag := pt.Lag(tt+1, alloc)
				if !lag.Less(one) || !one.Neg().Less(lag) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickGroupDeadlineClosedForm: the closed form (complement-task
// deadlines) agrees with the definitional walk for every heavy pattern.
func TestQuickGroupDeadlineClosedForm(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := int64(1 + r.Intn(60))
		e := (p+1)/2 + r.Int63n(p-(p+1)/2+1) // in [⌈p/2⌉, p]
		pt := NewPattern(e, p)
		for i := int64(1); i <= 2*e+2; i++ {
			if pt.GroupDeadline(i) != pt.GroupDeadlineClosed(i) {
				t.Logf("pattern %d/%d subtask %d: walk=%d closed=%d",
					e, p, i, pt.GroupDeadline(i), pt.GroupDeadlineClosed(i))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
