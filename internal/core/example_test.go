package core_test

import (
	"fmt"

	"pfair/internal/core"
	"pfair/internal/task"
)

// ExamplePattern reproduces the paper's Figure 1(a) numbers for a task
// with weight 8/11.
func ExamplePattern() {
	pat := core.NewPattern(8, 11)
	for i := int64(1); i <= 3; i++ {
		fmt.Printf("T%d: window [%d,%d) b=%d D=%d\n",
			i, pat.Release(i), pat.Deadline(i), pat.BBit(i), pat.GroupDeadline(i))
	}
	// Output:
	// T1: window [0,2) b=1 D=4
	// T2: window [1,3) b=1 D=4
	// T3: window [2,5) b=1 D=8
}

// ExampleScheduler schedules the classic set no partitioning can handle:
// three weight-2/3 tasks on two processors.
func ExampleScheduler() {
	s := core.NewScheduler(2, core.PD2, core.Options{})
	for _, name := range []string{"A", "B", "C"} {
		if err := s.Join(task.MustNew(name, 2, 3)); err != nil {
			fmt.Println("join failed:", err)
			return
		}
	}
	s.RunUntil(300)
	s.FinishMisses(300)
	fmt.Println("misses:", len(s.Stats().Misses))
	fmt.Println("allocations:", s.Stats().Allocations)
	// Output:
	// misses: 0
	// allocations: 600
}

// ExampleScheduler_Reweight shows a Section 5.2 dynamic weight change: the
// task leaves under the safe rule and rejoins with its new rate.
func ExampleScheduler_Reweight() {
	s := core.NewScheduler(1, core.PD2, core.Options{})
	if err := s.Join(task.MustNew("render", 2, 4)); err != nil {
		fmt.Println(err)
		return
	}
	s.RunUntil(10)
	at, err := s.Reweight("render", 1, 4)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("new weight effective at slot", at)
	s.RunUntil(100)
	s.FinishMisses(100)
	fmt.Println("misses:", len(s.Stats().Misses))
	// Output:
	// new weight effective at slot 11
	// misses: 0
}
