package core

import (
	"fmt"

	"pfair/internal/admission"
	"pfair/internal/task"
)

// This file implements the dynamic-task rules of Sections 2 and 5.2:
// joining (Join/JoinModel in scheduler.go), leaving, and reweighting.
//
// Joining is simple — a task may join whenever Σ wt(T) ≤ M continues to
// hold. Leaving is not: a task that is ahead of its fluid allocation
// (negative lag) has effectively borrowed processor time from the future,
// and letting it leave-and-rejoin immediately would let it run above its
// prescribed rate and cause other tasks to miss deadlines. Srinivasan and
// Anderson's conditions delay the departure just long enough:
//
//   - light T (wt < 1/2): leave at or after d(Tᵢ) + b(Tᵢ), where Tᵢ is its
//     last-scheduled subtask;
//   - heavy T: leave strictly after its next group deadline.

// EarliestLeave returns the earliest slot at which the named task may
// depart without endangering other tasks' deadlines.
func (s *Scheduler) EarliestLeave(name string) (int64, error) {
	st, ok := s.tasks[name]
	if !ok {
		return 0, fmt.Errorf("core: no task %q", name)
	}
	return s.earliestLeave(st), nil
}

func (s *Scheduler) earliestLeave(st *tstate) int64 {
	if !st.hasScheduled {
		// The task has never received a quantum: its lag is
		// non-negative, so removing it cannot hurt anyone.
		return s.eng.Now()
	}
	var at int64
	if st.task.Heavy() {
		at = st.lastSchedGrp + 1 // strictly after the group deadline
	} else {
		at = st.lastSchedDead + int64(st.lastSchedB)
	}
	if now := s.eng.Now(); at < now {
		at = now
	}
	return at
}

// Leave schedules the named task's departure at its earliest safe time and
// returns that time. The task continues to compete (and receive its share)
// until then; from the returned slot on it no longer exists in the system.
// Leave is a thin shim over the admission plane (Submit).
func (s *Scheduler) Leave(name string) (int64, error) {
	d, err := s.Submit(admission.Leave(name))
	return d.EffectiveAt, err
}

// leave is the plane's OpLeave/OpFinish apply: it schedules the
// departure and reports whether the task was already leaving (the call
// is idempotent; repeats return the pending slot without re-ledgering).
func (s *Scheduler) leave(name string) (at int64, already bool, err error) {
	st, ok := s.tasks[name]
	if !ok {
		return 0, false, fmt.Errorf("core: no task %q", name)
	}
	if st.leaving {
		return st.leaveAt, true, nil
	}
	st.leaving = true
	st.leaveAt = s.earliestLeave(st)
	s.leaves = append(s.leaves, st)
	return st.leaveAt, false, nil
}

// Reweight changes a task's rate by having it leave at its earliest safe
// time and admitting a replacement with the new parameters at that instant
// (Section 5.2 models reweighting as a leave-and-join). The replacement
// keeps the task's name (but starts as a plain periodic task — attach a new
// IS model with JoinModel after an explicit Leave if one is needed). It
// returns the slot at which the new weight takes effect.
//
// An upward reweight is admission-checked immediately and its weight delta
// reserved, so later joins cannot oversubscribe the capacity before the
// swap happens. A downward reweight is always accepted — even when the
// system is already overloaded (e.g. after FailProcessors), since lowering
// a weight only helps; this is how Section 5.4's overload recovery sheds
// load from non-critical tasks.
func (s *Scheduler) Reweight(name string, newCost, newPeriod int64) (int64, error) {
	d, err := s.Submit(admission.Reweight(name, newCost, newPeriod))
	return d.EffectiveAt, err
}

// reweight is the plane's OpReweight apply: §5.3's leave-and-join, with
// the upward case admission-checked and capacity-reserved at request
// time.
func (s *Scheduler) reweight(name string, newCost, newPeriod int64) (int64, error) {
	st, ok := s.tasks[name]
	if !ok {
		return 0, fmt.Errorf("core: no task %q", name)
	}
	if st.leaving {
		return 0, fmt.Errorf("core: task %q is already leaving", name)
	}
	nt := &task.Task{
		Name:     st.task.Name,
		Cost:     newCost,
		Period:   newPeriod,
		Kind:     st.task.Kind,
		Critical: st.task.Critical,
	}
	if err := nt.Validate(); err != nil {
		return 0, err
	}
	oldW, newW := st.task.Weight(), nt.Weight()
	upward := oldW.Less(newW)
	if upward {
		w := s.weight.Clone().Sub(oldW).Add(newW)
		if w.CmpInt(int64(s.m)) > 0 {
			return 0, fmt.Errorf("core: reweighting %s to %d/%d would violate Σwt ≤ %d", name, newCost, newPeriod, s.m)
		}
	}
	at, _, err := s.leave(name)
	if err != nil {
		return 0, err
	}
	st.rejoin = nt
	if upward {
		// Reserve the post-reweight total now.
		s.weight.Sub(oldW).Add(newW)
		st.rejoinReserved = true
	}
	return at, nil
}

// FailProcessors removes k processors from the system at the current time,
// modelling the fault scenario of Section 5.4. Tasks are not touched: if
// total weight exceeds the surviving capacity the system is overloaded and
// will record misses; if Σ wt ≤ M − k, the optimality and global nature of
// Pfair scheduling absorbs the loss transparently. It returns the new
// processor count.
func (s *Scheduler) FailProcessors(k int) int {
	if k < 0 || k >= s.m {
		//pfair:allowpanic API misuse: failing more processors than exist has no recoverable meaning
		panic("core: cannot fail that many processors")
	}
	s.m -= k
	s.procPrev = s.procPrev[:s.m]
	s.procNext = s.procNext[:s.m]
	s.taken = s.taken[:s.m]
	// Tasks whose last allocation was on a removed processor migrate.
	for _, st := range s.order {
		if st.lastProc >= s.m {
			st.lastProc = -1
		}
	}
	return s.m
}
