package core

import (
	"pfair/internal/obs"
)

// This file wires the observability layer (internal/obs) into the
// scheduler. The design constraint is PR 1's invariant: Step stays
// 0 allocs/op whether or not a recorder is attached, and costs one
// predictable branch per emission site when it is not. Hence:
//
//   - the scheduler holds concrete *obs.Recorder / *obs.SchedulerMetrics
//     pointers (nil = unobserved), never an interface — a nil interface
//     would still cost an itab check, and a no-op implementation would
//     still evaluate every event argument;
//   - every emission site is nil-guarded, which the extended hotpath
//     analyzer enforces statically and BenchmarkStepAllocsObserved pins
//     dynamically;
//   - identity is by dense int32 task ids assigned at admission, so hot
//     emissions never touch strings or maps.

// Observe attaches a trace recorder and/or metrics block to the
// scheduler; either may be nil. The attachment lives on the engine (the
// shared attachment point for every simulator); the scheduler caches the
// concrete pointers so hot emissions stay one nil check each. Tasks
// already admitted are registered immediately, tasks admitted later are
// registered as they join. Attaching mid-run is safe: events simply
// start at the current slot. Passing nil for both detaches observation
// entirely.
func (s *Scheduler) Observe(rec *obs.Recorder, met *obs.SchedulerMetrics) {
	s.eng.Observe(rec, met)
	s.adoptAttachments()
}

// adoptAttachments re-caches the engine's observability attachments,
// registers every live task with them, and reselects the eligible-set
// representation: recorder-traced runs use the legacy ready heap (whose
// comparator emits the tie-break trace events), runs without a recorder —
// including metrics-only ones — the bucketed fast path, whose comparator
// counts through cmpFast and whose shard telemetry Account publishes.
// Queued subtasks migrate between the structures.
func (s *Scheduler) adoptAttachments() {
	s.rec, s.met = s.eng.Recorder(), s.eng.Metrics()
	s.plane.Observe(s.rec, s.met)
	for _, st := range s.order {
		if !st.departed {
			s.registerObs(st)
		}
	}
	if s.met != nil && s.shardN > 0 {
		s.met.EnsureShards(s.shardN)
	}
	if sh := s.readySh; sh != nil {
		// Counter deltas start from the attach point: stealing that
		// happened before anyone was listening stays unpublished.
		s.shardSeen = sh.Stats()
	}
	s.updateMode()
}

// AllocObsID hands out the next dense observability id from the
// scheduler's allocator. Wrappers that trace entities of their own beside
// the scheduler's tasks (internal/supertask's components) draw from the
// same space so ids never collide, even when tasks join later.
func (s *Scheduler) AllocObsID() int32 {
	id := s.obsNext
	s.obsNext++
	return id
}

// Recorder returns the attached trace recorder, or nil.
func (s *Scheduler) Recorder() *obs.Recorder { return s.rec }

// Metrics returns the attached metrics block, or nil.
func (s *Scheduler) Metrics() *obs.SchedulerMetrics { return s.met }

// registerObs assigns st a stable observability id (once) and registers
// it with whatever sinks are attached. Cold path: runs at admission and
// Observe time only.
func (s *Scheduler) registerObs(st *tstate) {
	if s.rec == nil && s.met == nil {
		return
	}
	if st.obsID < 0 {
		st.obsID = s.obsNext
		s.obsNext++
	}
	if s.rec != nil {
		if s.rec.RegisterTask(st.obsID, st.task.Name) {
			// First time this recorder sees the task: emit its join event,
			// whether registration happens at admission or at a mid-run
			// Observe. The slot is the current slot either way. The
			// emission goes through the admission plane so every policy
			// narrates churn identically (the event bytes are unchanged).
			s.plane.EmitJoin(s.eng.Now(), st.obsID, st.task.Cost, st.task.Period)
		}
	}
	if s.met != nil {
		s.met.EnsureTask(st.obsID, st.task.Name, st.task.Period)
	}
}

// cmpReady is the ready-queue ordering: the plain comparator when
// unobserved, and the tie-break-tracing variant when a recorder or
// metrics block is attached. The observed path reports which rule
// decided each deadline tie — the measurement behind the paper's claim
// that tie-breaks, not deadlines, are where Pfair algorithms differ.
//
//pfair:hotpath
func (s *Scheduler) cmpReady(a, b *tstate) bool {
	if s.rec == nil && s.met == nil {
		return less(s.alg, &a.pr, &b.pr)
	}
	if met := s.met; met != nil {
		met.HeapCmps.Inc()
	}
	res, why := lessWhy(s.alg, &a.pr, &b.pr)
	if why != byBBit && why != byGroup {
		return res
	}
	winner, loser := a, b
	if !res {
		winner, loser = b, a
	}
	kind := obs.EvTieBreakB
	if why == byGroup {
		kind = obs.EvTieBreakGroup
	}
	if met := s.met; met != nil {
		if why == byBBit {
			met.TieBreakB.Inc()
		} else {
			met.TieBreakGroup.Inc()
		}
	}
	if rec := s.rec; rec != nil {
		rec.Emit(obs.Event{
			Slot: s.eng.Now(), Kind: kind,
			Task: winner.obsID, Proc: -1,
			A: int64(loser.obsID), B: winner.pr.deadline,
		})
	}
	return res
}

// cmpFast is the fast-mode (bucketed and sharded queues) equal-deadline
// comparator: the plain priority order when no metrics block is
// attached, and the counting variant when one is — comparator
// invocations and decided tie-breaks land in the metrics block exactly
// as cmpReady's do on the legacy heap, but no events are emitted, so
// fast mode needs no recorder. The returned order is identical either
// way; only counters move.
//
//pfair:hotpath
func (s *Scheduler) cmpFast(a, b *tstate) bool {
	if met := s.met; met != nil {
		met.HeapCmps.Inc()
		res, why := lessWhy(s.alg, &a.pr, &b.pr)
		if why == byBBit {
			met.TieBreakB.Inc()
		} else if why == byGroup {
			met.TieBreakGroup.Inc()
		}
		return res
	}
	return less(s.alg, &a.pr, &b.pr)
}

// observeLags updates each live task's max-|lag| gauge after the slot
// ending at time now, emitting an EvLagExtremum whenever a task reaches
// a new extremum. Lag is kept exact as an integer pair: for a periodic
// task, lag(t) = wt·(t − join) − allocated = (cost·Δt − allocated·period)
// / period, so the numerator comparison below is the exact |lag|
// comparison with denominator fixed per task. (For IS tasks the value is
// the same formula against the unshifted fluid reference; per-subtask
// deadlines are their correctness notion, but the excursion is still
// worth plotting.) Only runs when metrics are attached; O(n) integer
// work per slot, no allocation.
//
//pfair:hotpath
func (s *Scheduler) observeLags(now int64) {
	if met := s.met; met != nil {
		for _, st := range s.order {
			if st.departed {
				continue
			}
			num := st.task.Cost*(now-st.joinedAt) - st.allocated*st.task.Period
			if num < 0 {
				num = -num
			}
			if tm := met.Task(st.obsID); tm != nil {
				if num > tm.MaxAbsLagNum.Value() {
					tm.MaxAbsLagNum.Set(num)
					if rec := s.rec; rec != nil {
						rec.Emit(obs.Event{
							Slot: now - 1, Kind: obs.EvLagExtremum,
							Task: st.obsID, Proc: -1,
							A: num, B: st.task.Period,
						})
					}
				}
			}
		}
	}
}
