package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"pfair/internal/obs"
	"pfair/internal/task"
)

// This file pins the tentpole equivalence claim of the bucketed hot path:
// the calq-backed fast mode (pending wheel + deadline-bucketed ready
// queue + incremental priority keys) produces bit-for-bit the schedule of
// the legacy representation (pending wheel + binary ready heap), because
// the priority order is total. Attaching a trace recorder is the
// sanctioned way to force legacy mode — updateMode keeps the heap
// whenever a recorder is on so its comparator can narrate tie-breaks as
// events. Metrics-only runs stay fast: cmpFast counts without a heap.

// assignString flattens one slot's assignment vector; processor order is
// part of the schedule, so it is kept.
func assignString(t int64, assigned []Assignment) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d:", t)
	for _, a := range assigned {
		fmt.Fprintf(&b, " %d=%s/%d", a.Proc, a.Task, a.Subtask)
	}
	return b.String()
}

// scheduleOf runs one scheduler over the set and returns the per-slot
// assignment stream.
func scheduleOf(t *testing.T, alg Algorithm, m int, set task.Set, horizon int64, legacy bool) []string {
	t.Helper()
	s := NewScheduler(m, alg, Options{})
	if legacy {
		s.Observe(obs.NewRecorder(1<<12), nil)
		if s.fast {
			t.Fatal("recorder attached but scheduler still in fast mode")
		}
	} else if !s.fast {
		t.Fatal("unobserved scheduler not in fast mode")
	}
	var got []string
	s.OnSlot(func(tt int64, assigned []Assignment) {
		got = append(got, assignString(tt, assigned))
	})
	for _, tk := range set {
		if err := s.Join(tk); err != nil {
			t.Fatalf("join %v: %v", tk, err)
		}
	}
	s.RunUntil(horizon)
	return got
}

// TestFastModeMatchesLegacy fuzzes task sets under every algorithm and
// requires the fast-mode and legacy-mode assignment streams to be
// identical, slot for slot, processor for processor.
func TestFastModeMatchesLegacy(t *testing.T) {
	algs := []Algorithm{PD2, PD, PF, EPDF, PD2NoBBit}
	for _, alg := range algs {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(7 + int64(alg)))
			for trial := 0; trial < 20; trial++ {
				m := 1 + r.Intn(4)
				set := randomFeasibleSet(r, m, 3+r.Intn(8), 20)
				if len(set) == 0 {
					continue
				}
				horizon := set.Hyperperiod()
				if horizon > 2000 {
					horizon = 2000
				}
				fast := scheduleOf(t, alg, m, set, horizon, false)
				slow := scheduleOf(t, alg, m, set, horizon, true)
				if len(fast) != len(slow) {
					t.Fatalf("trial %d (m=%d, set=%v): %d fast slots vs %d legacy", trial, m, set, len(fast), len(slow))
				}
				for i := range fast {
					if fast[i] != slow[i] {
						t.Fatalf("trial %d (m=%d, set=%v): slot %d diverges\nfast:   %s\nlegacy: %s",
							trial, m, set, i, fast[i], slow[i])
					}
				}
			}
		})
	}
}

// TestFastModeMatchesLegacyDynamic repeats the comparison with mid-run
// leaves and re-joins, which exercise removal from the middle of both
// ready representations and the pending wheel.
func TestFastModeMatchesLegacyDynamic(t *testing.T) {
	run := func(t *testing.T, legacy bool) []string {
		s := NewScheduler(2, PD2, Options{})
		if legacy {
			s.Observe(obs.NewRecorder(1<<12), nil)
		}
		var got []string
		s.OnSlot(func(tt int64, assigned []Assignment) {
			got = append(got, assignString(tt, assigned))
		})
		join := func(name string, e, p int64) {
			if err := s.Join(task.MustNew(name, e, p)); err != nil {
				t.Fatalf("join %s: %v", name, err)
			}
		}
		join("A", 2, 3)
		join("B", 3, 7)
		join("C", 1, 5)
		s.RunUntil(40)
		if _, err := s.Leave("B"); err != nil {
			t.Fatalf("leave B: %v", err)
		}
		s.RunUntil(80)
		join("D", 5, 6)
		if _, err := s.Reweight("A", 1, 4); err != nil {
			t.Fatalf("reweight A: %v", err)
		}
		s.RunUntil(160)
		return got
	}
	fast := run(t, false)
	slow := run(t, true)
	if len(fast) != len(slow) {
		t.Fatalf("%d fast slots vs %d legacy", len(fast), len(slow))
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Fatalf("slot %d diverges\nfast:   %s\nlegacy: %s", i, fast[i], slow[i])
		}
	}
}
