// Package core implements the paper's primary contribution: Pfair
// scheduling of recurrent real-time tasks on multiprocessors.
//
// It provides the subtask algebra of Section 2 (windows, pseudo-releases
// and pseudo-deadlines, b-bits, group deadlines, lags), the optimal global
// schedulers PF, PD, and PD² plus the naive EPDF baseline, the
// work-conserving ERfair variant, the intra-sporadic (IS) task model, and
// the dynamic join/leave/reweight rules.
//
// # Model
//
// Time is divided into unit-length slots; slot t is the interval [t, t+1).
// A periodic task T with integer cost e = T.Cost and period p = T.Period has
// weight wt(T) = e/p and is divided into quantum-length subtasks T₁, T₂, ….
// Subtask Tᵢ must execute within its window
//
//	w(Tᵢ) = [r(Tᵢ), d(Tᵢ)),  r(Tᵢ) = ⌊(i−1)·p/e⌋,  d(Tᵢ) = ⌈i·p/e⌉,
//
// or the Pfair condition −1 < lag(T, t) < 1 (Equation (1)) is violated.
package core

import (
	"fmt"

	"pfair/internal/rational"
)

// Pattern captures the Pfair window structure of a task with cost e and
// period p. All subtask parameters are pure functions of (e, p, i); the
// struct memoizes the group deadlines of the first e subtasks, since the
// pattern repeats with period p in time every e subtasks:
//
//	r(Tᵢ₊ₑ) = r(Tᵢ) + p, d(Tᵢ₊ₑ) = d(Tᵢ) + p, b(Tᵢ₊ₑ) = b(Tᵢ),
//	D(Tᵢ₊ₑ) = D(Tᵢ) + p.
type Pattern struct {
	e, p int64
	// heavy and weight are fixed at construction: the scheduler's priority
	// comparator (PD's heavy-before-light and weight tie-breaks) runs
	// inside heap sift operations, where rebuilding rationals per call
	// dominated the PD hot path.
	heavy  bool
	weight rational.Rat
	// release/deadline/bbit tables for the first period, indexed by i−1
	// for 1 ≤ i ≤ e; all three repeat every e subtasks shifted by p. Built
	// at construction when e ≤ patternTableMax, nil otherwise (the direct
	// formulas remain the fallback).
	release  []int64
	deadline []int64
	bbit     []uint8
	// gd[i-1] is the group deadline of subtask i, for 1 ≤ i ≤ e (heavy
	// tasks only): filled at construction alongside the other tables, or
	// lazily on first use for patterns too large to tabulate.
	gd []int64
}

// patternTableMax bounds the per-period tables: a pattern with cost above
// it (three int64 tables ≈ 100 KiB) falls back to the direct formulas and
// the lazy group-deadline memo. Every workload in the paper's experiments
// has costs well below the bound.
const patternTableMax = 4096

// NewPattern returns the window pattern for a task with the given cost and
// period. It panics unless 0 < cost ≤ period.
//
// Patterns with cost ≤ patternTableMax are immutable after construction
// and safe for concurrent readers; larger patterns memoize group deadlines
// lazily and must not be shared across goroutines.
func NewPattern(cost, period int64) *Pattern {
	if cost <= 0 || period < cost {
		//pfair:allowpanic constructor contract: parameters were validated by task.New before reaching here
		panic(fmt.Sprintf("core: invalid pattern %d/%d", cost, period))
	}
	pt := &Pattern{
		e:      cost,
		p:      period,
		heavy:  2*cost >= period,
		weight: rational.New(cost, period),
	}
	if cost <= patternTableMax {
		pt.release = make([]int64, cost)
		pt.deadline = make([]int64, cost)
		pt.bbit = make([]uint8, cost)
		for i := int64(1); i <= cost; i++ {
			pt.release[i-1] = rational.FloorDiv((i-1)*period, cost)
			pt.deadline[i-1] = rational.CeilDiv(i*period, cost)
			if (i*period)%cost != 0 {
				pt.bbit[i-1] = 1
			}
		}
		if pt.heavy {
			pt.fillGroupDeadlines()
		}
	}
	return pt
}

// fillGroupDeadlines tabulates D(Tᵢ) for the first period in O(e) by a
// backward pass. Writing E(j) for the first cascade event at or after
// subtask j — the earliest k ≥ j with |w(Tₖ)| = 3 (event d(Tₖ)−1) or
// b(Tₖ) = 0 (event d(Tₖ)) — the definition reduces to
//
//	D(Tᵢ) = d(Tᵢ) if b(Tᵢ) = 0, else E(i+1),
//
// because for a heavy task d is strictly increasing, so the walk's guard
// d(Tₖ)−1 ≥ d(Tᵢ) holds automatically for every k > i and can never hold
// at k = i. E satisfies E(j) = event(j) if one occurs at j, else E(j+1),
// and b(Tₑ) = 0 grounds the recurrence within the period.
// groupDeadlineSlow remains the executable ground truth; the tests check
// the two agree.
func (pt *Pattern) fillGroupDeadlines() {
	e := pt.e
	pt.gd = make([]int64, e)
	ev := make([]int64, e+1) // ev[j-1] = E(j)
	for j := e; j >= 1; j-- {
		d := pt.deadline[j-1]
		switch {
		case d-pt.release[j-1] == 3:
			ev[j-1] = d - 1
		case pt.bbit[j-1] == 0:
			ev[j-1] = d
		default:
			ev[j-1] = ev[j] // safe: b(Tₑ) = 0, so j < e here
		}
	}
	for i := int64(1); i <= e; i++ {
		if pt.bbit[i-1] == 0 {
			pt.gd[i-1] = pt.deadline[i-1]
		} else {
			pt.gd[i-1] = ev[i]
		}
	}
}

// Cost returns the per-job execution cost e.
func (pt *Pattern) Cost() int64 { return pt.e }

// Period returns the period p.
func (pt *Pattern) Period() int64 { return pt.p }

// Weight returns wt(T) = e/p.
//
//pfair:hotpath
func (pt *Pattern) Weight() rational.Rat { return pt.weight }

// Heavy reports whether wt(T) ≥ 1/2.
//
//pfair:hotpath
func (pt *Pattern) Heavy() bool { return pt.heavy }

// Release returns the pseudo-release r(Tᵢ) = ⌊(i−1)·p/e⌋ of subtask i ≥ 1.
//
//pfair:hotpath
func (pt *Pattern) Release(i int64) int64 {
	if pt.release != nil {
		cycles := (i - 1) / pt.e
		return pt.release[i-1-cycles*pt.e] + cycles*pt.p
	}
	return rational.FloorDiv((i-1)*pt.p, pt.e)
}

// Deadline returns the pseudo-deadline d(Tᵢ) = ⌈i·p/e⌉ of subtask i ≥ 1.
// Tᵢ must be scheduled in [Release(i), Deadline(i)).
//
//pfair:hotpath
func (pt *Pattern) Deadline(i int64) int64 {
	if pt.deadline != nil {
		cycles := (i - 1) / pt.e
		return pt.deadline[i-1-cycles*pt.e] + cycles*pt.p
	}
	return rational.CeilDiv(i*pt.p, pt.e)
}

// WindowLength returns |w(Tᵢ)| = d(Tᵢ) − r(Tᵢ).
//
//pfair:hotpath
func (pt *Pattern) WindowLength(i int64) int64 {
	return pt.Deadline(i) - pt.Release(i)
}

// BBit returns b(Tᵢ): 1 if Tᵢ's window overlaps Tᵢ₊₁'s window and 0
// otherwise. Consecutive windows overlap by exactly one slot iff
// r(Tᵢ₊₁) = d(Tᵢ) − 1, which holds iff i·p is not a multiple of e.
//
//pfair:hotpath
func (pt *Pattern) BBit(i int64) int {
	if pt.bbit != nil {
		cycles := (i - 1) / pt.e
		return int(pt.bbit[i-1-cycles*pt.e])
	}
	if (i*pt.p)%pt.e != 0 {
		return 1
	}
	return 0
}

// GroupDeadline returns D(Tᵢ), the time by which a cascade of forced
// allocations starting at Tᵢ must end: the earliest t ≥ d(Tᵢ) such that for
// some k ≥ i either (t = d(Tₖ) ∧ b(Tₖ) = 0) or (t+1 = d(Tₖ) ∧ |w(Tₖ)| = 3).
//
// Group deadlines only matter for heavy tasks (weight ≥ 1/2, whose windows
// have length two or three); for light tasks PD² defines D(Tᵢ) = 0.
//
//pfair:allowalloc lazily builds the per-period group-deadline memo table on first touch
func (pt *Pattern) GroupDeadline(i int64) int64 {
	if !pt.heavy {
		return 0
	}
	// Reduce to the first period using D(Tᵢ₊ₑ) = D(Tᵢ) + p.
	cycles := (i - 1) / pt.e
	base := i - cycles*pt.e // in [1, e]
	if pt.gd == nil {
		// Lazy fallback for patterns above patternTableMax.
		pt.gd = make([]int64, pt.e)
		for k := range pt.gd {
			pt.gd[k] = -1
		}
	}
	if pt.gd[base-1] < 0 {
		pt.gd[base-1] = pt.groupDeadlineSlow(base)
	}
	return pt.gd[base-1] + cycles*pt.p
}

// GroupDeadlineClosed returns D(Tᵢ) by the closed form: the group
// deadlines of a heavy task of weight e/p are exactly the subtask
// deadlines of the complementary task of weight (p−e)/p, so
//
//	D(Tᵢ) = ⌈k·p/(p−e)⌉ for the smallest k with that value ≥ d(Tᵢ),
//	i.e. k = ⌈d(Tᵢ)·(p−e)/p⌉.
//
// Intuitively, the complement's subtasks mark the slots the cascade must
// leave free. Weight-1 tasks have no complement and D(Tᵢ) = d(Tᵢ). The
// memoized iterative walk (GroupDeadline) is the ground truth;
// TestQuickGroupDeadlineClosedForm checks the two agree everywhere.
func (pt *Pattern) GroupDeadlineClosed(i int64) int64 {
	if !pt.Heavy() {
		return 0
	}
	comp := pt.p - pt.e
	if comp == 0 {
		return pt.Deadline(i) // weight 1: every b-bit is 0
	}
	d := pt.Deadline(i)
	k := rational.CeilDiv(d*comp, pt.p)
	return rational.CeilDiv(k*pt.p, comp)
}

// groupDeadlineSlow walks the subtask sequence to apply the definition
// directly. For a heavy task every window has length 2 or 3, and a cascade
// ends within one period, so the walk terminates within e+1 steps.
//
//pfair:hotpath
func (pt *Pattern) groupDeadlineSlow(i int64) int64 {
	di := pt.Deadline(i)
	for k := i; ; k++ {
		if pt.WindowLength(k) == 3 && pt.Deadline(k)-1 >= di {
			return pt.Deadline(k) - 1
		}
		if pt.BBit(k) == 0 {
			return pt.Deadline(k)
		}
		if k > i+pt.e+1 {
			//pfair:allowpanic invariant: a heavy task has a b-bit 0 within any e+1 consecutive subtasks
			panic(fmt.Sprintf("core: group deadline walk did not terminate for %d/%d subtask %d", pt.e, pt.p, i))
		}
	}
}

// JobIndex returns the 1-based index of the job containing subtask i: job j
// consists of subtasks (j−1)·e+1 … j·e.
func (pt *Pattern) JobIndex(i int64) int64 {
	return (i-1)/pt.e + 1
}

// FirstOfJob reports whether subtask i is the first subtask of its job.
// Under ERfair scheduling only non-first subtasks may be released early,
// because early release is defined within a job (Section 2).
func (pt *Pattern) FirstOfJob(i int64) bool {
	return (i-1)%pt.e == 0
}

// Lag returns lag(T, t) = wt(T)·t − allocated for a task that has received
// the given number of quanta by time t, as an exact rational.
//
//pfair:hotpath
func (pt *Pattern) Lag(t, allocated int64) rational.Rat {
	return rational.New(pt.e*t-allocated*pt.p, pt.p)
}
