package core

import (
	"fmt"
	"math/rand"
	"testing"

	"pfair/internal/rational"
	"pfair/internal/task"
)

func TestSporadicModelOffsets(t *testing.T) {
	// Task with cost 3: jobs are subtasks {1,2,3}, {4,5,6}, …
	gaps := map[int64]int64{2: 4, 4: 1}
	m := NewSporadicModel(3, func(j int64) int64 { return gaps[j] })
	// Job 1: no delay. Job 2: +4. Job 3: +4. Job 4: +5.
	wants := []struct{ i, off int64 }{
		{1, 0}, {3, 0}, {4, 4}, {6, 4}, {7, 4}, {9, 4}, {10, 5}, {12, 5},
	}
	for _, w := range wants {
		if got := m.Offset(w.i); got != w.off {
			t.Errorf("Offset(%d) = %d, want %d", w.i, got, w.off)
		}
	}
	if m.Earliness(5) != 0 {
		t.Error("sporadic tasks are never early")
	}
}

func TestSporadicModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-positive cost")
		}
	}()
	NewSporadicModel(0, nil)
}

func TestSporadicModelNegativeGapPanics(t *testing.T) {
	m := NewSporadicModel(2, func(int64) int64 { return -1 })
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative gap")
		}
	}()
	m.Offset(1)
}

// TestSporadicSeparation: with the model installed, consecutive job
// releases are separated by at least the period.
func TestSporadicSeparation(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	e, p := int64(2), int64(5)
	m := NewSporadicModel(e, func(j int64) int64 { return r.Int63n(4) })
	pat := NewPattern(e, p)
	prev := int64(-1 << 60)
	for j := int64(1); j <= 50; j++ {
		first := (j-1)*e + 1
		release := m.Offset(first) + pat.Release(first)
		if release-prev < p && j > 1 {
			t.Fatalf("job %d released %d after previous %d: separation < period %d", j, release, prev, p)
		}
		prev = release
	}
}

// TestSporadicPD2NoMisses: PD² schedules sporadic systems without misses
// (they are a special case of the IS systems it is optimal for).
func TestSporadicPD2NoMisses(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for trial := 0; trial < 10; trial++ {
		m := 1 + r.Intn(3)
		set := randomFeasibleSet(r, m, 5, 10)
		if len(set) == 0 {
			continue
		}
		s := NewScheduler(m, PD2, Options{})
		for k, tk := range set {
			seed := int64(trial*100 + k)
			gaps := rand.New(rand.NewSource(seed))
			if err := s.JoinModel(tk, NewSporadicModel(tk.Cost, func(int64) int64 {
				return gaps.Int63n(5)
			})); err != nil {
				t.Fatal(err)
			}
		}
		s.RunUntil(3000)
		s.FinishMisses(3000)
		if n := len(s.Stats().Misses); n != 0 {
			t.Fatalf("trial %d: sporadic PD² missed %d (first %+v)", trial, n, s.Stats().Misses[0])
		}
	}
}

func TestScriptModel(t *testing.T) {
	m := &ScriptModel{
		Offsets: map[int64]int64{5: 1, 9: 3},
		Early:   map[int64]int64{3: 2},
	}
	if got := m.Offset(4); got != 0 {
		t.Errorf("Offset(4) = %d", got)
	}
	if got := m.Offset(5); got != 1 {
		t.Errorf("Offset(5) = %d", got)
	}
	if got := m.Offset(8); got != 1 {
		t.Errorf("Offset(8) = %d", got)
	}
	if got := m.Offset(20); got != 3 {
		t.Errorf("Offset(20) = %d", got)
	}
	if got := m.Earliness(3); got != 2 {
		t.Errorf("Earliness(3) = %d", got)
	}
	if got := m.Earliness(4); got != 0 {
		t.Errorf("Earliness(4) = %d", got)
	}
}

// TestAllocationAccounting: over k whole hyperperiods of a synchronous
// fully-utilizing set, PD² gives every task exactly k·e·(H/p) quanta — the
// fluid schedule's integral, a sharper property than miss-freedom.
func TestAllocationAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		m := 1 + r.Intn(3)
		// Build a fully-utilizing set from unit fractions of a common
		// period so the hyperperiod stays small.
		base := int64(2+r.Intn(5)) * 2
		var set task.Set
		budget := rational.NewAcc()
		for i := 0; i < 8; i++ {
			e := int64(1 + r.Intn(int(base)))
			w := rational.New(e, base)
			if budget.Clone().Add(w).CmpInt(int64(m)) > 0 {
				continue
			}
			budget.Add(w)
			set = append(set, task.MustNew(fmt.Sprintf("T%d", i), e, base))
		}
		if len(set) == 0 {
			continue
		}
		s := NewScheduler(m, PD2, Options{})
		alloc := map[string]int64{}
		s.OnSlot(func(tt int64, assigned []Assignment) {
			for _, a := range assigned {
				alloc[a.Task]++
			}
		})
		for _, tk := range set {
			if err := s.Join(tk); err != nil {
				t.Fatal(err)
			}
		}
		const k = 7
		s.RunUntil(k * base)
		for _, tk := range set {
			want := k * tk.Cost
			if alloc[tk.Name] != want {
				t.Fatalf("trial %d: %v received %d quanta over %d hyperperiods, want %d",
					trial, tk, alloc[tk.Name], k, want)
			}
		}
	}
}

// TestMixedPfairERfair: per-task early release (mixed systems, after [4]).
// The eager task runs its job's subtasks back-to-back; the strict task
// stays inside its Pfair windows; no deadlines are missed.
func TestMixedPfairERfair(t *testing.T) {
	s := NewScheduler(1, PD2, Options{}) // global default: strict Pfair
	if err := s.JoinEarlyRelease(task.MustNew("eager", 2, 8), nil, true); err != nil {
		t.Fatal(err)
	}
	if err := s.Join(task.MustNew("strict", 2, 8)); err != nil {
		t.Fatal(err)
	}
	slotsOf := map[string][]int64{}
	s.OnSlot(func(tt int64, assigned []Assignment) {
		for _, a := range assigned {
			slotsOf[a.Task] = append(slotsOf[a.Task], tt)
		}
	})
	s.RunUntil(8)
	s.FinishMisses(8)
	if n := len(s.Stats().Misses); n != 0 {
		t.Fatalf("mixed system missed %d", n)
	}
	// eager's second subtask (Pfair window [4,8)) must run before slot 4:
	// early release made it eligible as soon as the first completed.
	es := slotsOf["eager"]
	if len(es) != 2 || es[1] >= 4 {
		t.Fatalf("eager slots %v; second subtask should run before its Pfair release 4", es)
	}
	// strict's second subtask cannot run before slot 4.
	ss := slotsOf["strict"]
	if len(ss) != 2 || ss[1] < 4 {
		t.Fatalf("strict slots %v; second subtask ran before its window", ss)
	}
	// A per-task false override under a global ERfair default works too.
	s2 := NewScheduler(1, PD2, Options{EarlyRelease: true})
	if err := s2.JoinEarlyRelease(task.MustNew("strict", 2, 8), nil, false); err != nil {
		t.Fatal(err)
	}
	slots2 := []int64{}
	s2.OnSlot(func(tt int64, assigned []Assignment) {
		for range assigned {
			slots2 = append(slots2, tt)
		}
	})
	s2.RunUntil(8)
	if len(slots2) != 2 || slots2[1] < 4 {
		t.Fatalf("override-to-strict slots %v", slots2)
	}
}

// TestAsynchronousPeriodic: tasks joining at staggered times model
// asynchronous periodic systems (first releases at arbitrary offsets);
// PD² keeps them miss-free.
func TestAsynchronousPeriodic(t *testing.T) {
	s := NewScheduler(2, PD2, Options{})
	offsets := map[string]int64{"A": 0, "B": 3, "C": 7, "D": 11}
	for tt := int64(0); tt < 2000; tt++ {
		for name, off := range offsets {
			if off == tt {
				if err := s.Join(task.MustNew(name, 1, 3)); err != nil {
					t.Fatalf("join %s: %v", name, err)
				}
			}
		}
		s.Step()
	}
	s.FinishMisses(2000)
	if n := len(s.Stats().Misses); n != 0 {
		t.Fatalf("asynchronous periodic set missed %d", n)
	}
}

// TestExportedHelpers covers the small exported surface used by external
// simulators and callers: Less/SubtaskRef, the Periodic model, Tardiness,
// and Processors.
func TestExportedHelpers(t *testing.T) {
	a := SubtaskRef{Pat: NewPattern(1, 2), Index: 1, ID: 0}
	b := SubtaskRef{Pat: NewPattern(1, 3), Index: 1, ID: 1}
	if !Less(PD2, a, b) || Less(PD2, b, a) {
		t.Error("exported Less mismatch: earlier deadline must win")
	}
	heavy := SubtaskRef{Pat: NewPattern(8, 11), Index: 1, Offset: 2, ID: 2}
	if Less(PD2, heavy, heavy) {
		t.Error("Less not irreflexive")
	}

	var p Periodic
	if p.Offset(5) != 0 || p.Earliness(5) != 0 {
		t.Error("Periodic model must be all zeros")
	}

	if (Miss{Deadline: 7, ScheduledAt: 9}).Tardiness() != 3 {
		t.Error("Tardiness: completion at 10 vs deadline 7 should be 3")
	}
	if (Miss{Deadline: 7, ScheduledAt: -1}).Tardiness() != -1 {
		t.Error("unscheduled Tardiness should be -1")
	}

	s := NewScheduler(3, PD2, Options{})
	if s.Processors() != 3 {
		t.Error("Processors mismatch")
	}
	if err := s.Join(task.MustNew("T", 1, 2)); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(4)
	lag, err := s.Lag("T")
	if err != nil {
		t.Fatal(err)
	}
	if !lag.Less(rational.One()) || !rational.One().Neg().Less(lag) {
		t.Errorf("lag %v outside (-1,1)", lag)
	}
}

// TestJoinEarlyReleaseErrors: invalid and duplicate joins fail cleanly.
func TestJoinEarlyReleaseErrors(t *testing.T) {
	s := NewScheduler(1, PD2, Options{})
	if err := s.JoinEarlyRelease(&task.Task{Name: "bad", Cost: 0, Period: 2}, nil, true); err == nil {
		t.Error("invalid task accepted")
	}
	if err := s.JoinEarlyRelease(task.MustNew("A", 1, 2), nil, true); err != nil {
		t.Fatal(err)
	}
	if err := s.JoinEarlyRelease(task.MustNew("A", 1, 2), nil, false); err == nil {
		t.Error("duplicate accepted")
	}
	if err := s.JoinEarlyRelease(task.MustNew("B", 2, 3), nil, true); err == nil {
		t.Error("overload accepted")
	}
}

// TestFailProcessorsPanics: removing every processor is rejected.
func TestFailProcessorsPanics(t *testing.T) {
	s := NewScheduler(2, PD2, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for failing all processors")
		}
	}()
	s.FailProcessors(2)
}
