package core

import (
	"fmt"
	"math/rand"
	"testing"

	"pfair/internal/rational"
	"pfair/internal/task"
)

// randomFeasibleSet draws a task set with total weight ≤ m and small
// periods (so hyperperiods stay testable).
func randomFeasibleSet(r *rand.Rand, m int, maxTasks int, maxPeriod int64) task.Set {
	var set task.Set
	budget := rational.NewAcc()
	for i := 0; i < maxTasks; i++ {
		p := int64(1 + r.Intn(int(maxPeriod)))
		e := int64(1 + r.Intn(int(p)))
		w := rational.New(e, p)
		if budget.Clone().Add(w).CmpInt(int64(m)) > 0 {
			continue
		}
		budget.Add(w)
		set = append(set, task.MustNew(fmt.Sprintf("T%d", i), e, p))
	}
	return set
}

// lagChecker verifies the Pfair condition −1 < lag < 1 after every slot for
// synchronous periodic tasks.
type lagChecker struct {
	t     *testing.T
	pats  map[string]*Pattern
	alloc map[string]int64
}

func newLagChecker(t *testing.T, set task.Set) *lagChecker {
	lc := &lagChecker{t: t, pats: map[string]*Pattern{}, alloc: map[string]int64{}}
	for _, tk := range set {
		lc.pats[tk.Name] = NewPattern(tk.Cost, tk.Period)
	}
	return lc
}

func (lc *lagChecker) onSlot(t int64, assigned []Assignment) {
	for _, a := range assigned {
		lc.alloc[a.Task]++
	}
	one := rational.One()
	for name, pt := range lc.pats {
		lag := pt.Lag(t+1, lc.alloc[name])
		if !lag.Less(one) || !one.Neg().Less(lag) {
			lc.t.Errorf("task %s lag %v at time %d violates (-1, 1)", name, lag, t+1)
		}
	}
}

func runToHyperperiod(t *testing.T, s *Scheduler, set task.Set, periods int64) Stats {
	t.Helper()
	h := set.Hyperperiod() * periods
	if h > 100000 {
		h = 100000
	}
	s.RunUntil(h)
	s.FinishMisses(h)
	return s.Stats()
}

// TestOptimalAlgorithmsNoMisses: PD², PD, and PF schedule every feasible
// periodic set with zero deadline misses and the Pfair lag invariant intact.
func TestOptimalAlgorithmsNoMisses(t *testing.T) {
	algs := []Algorithm{PD2, PD, PF}
	for _, alg := range algs {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			for trial := 0; trial < 25; trial++ {
				m := 1 + r.Intn(4)
				set := randomFeasibleSet(r, m, 3+r.Intn(6), 12)
				if len(set) == 0 {
					continue
				}
				s := NewScheduler(m, alg, Options{})
				lc := newLagChecker(t, set)
				s.OnSlot(lc.onSlot)
				for _, tk := range set {
					if err := s.Join(tk); err != nil {
						t.Fatalf("join %v: %v", tk, err)
					}
				}
				stats := runToHyperperiod(t, s, set, 3)
				if len(stats.Misses) != 0 {
					t.Fatalf("trial %d (m=%d, set=%v): %s missed %d deadlines, first %+v",
						trial, m, set, alg, len(stats.Misses), stats.Misses[0])
				}
			}
		})
	}
}

// TestFullUtilizationSchedulable: the classic partitioning counterexample —
// three tasks of weight 2/3 on two processors — is schedulable by PD²
// (Section 3's motivating example), and so are other full-utilization sets.
func TestFullUtilizationSchedulable(t *testing.T) {
	sets := []task.Set{
		{task.MustNew("A", 2, 3), task.MustNew("B", 2, 3), task.MustNew("C", 2, 3)},
		{task.MustNew("A", 1, 2), task.MustNew("B", 1, 2), task.MustNew("C", 1, 2), task.MustNew("D", 1, 2)},
		{task.MustNew("A", 3, 4), task.MustNew("B", 3, 4), task.MustNew("C", 1, 2)},
		{task.MustNew("A", 8, 11), task.MustNew("B", 3, 11), task.MustNew("C", 5, 11), task.MustNew("D", 6, 11)},
	}
	for _, set := range sets {
		m := set.MinProcessors()
		if !set.Feasible(m) {
			t.Fatalf("set %v infeasible on %d procs", set, m)
		}
		s := NewScheduler(m, PD2, Options{})
		lc := newLagChecker(t, set)
		s.OnSlot(lc.onSlot)
		for _, tk := range set {
			if err := s.Join(tk); err != nil {
				t.Fatalf("join: %v", err)
			}
		}
		stats := runToHyperperiod(t, s, set, 4)
		if len(stats.Misses) != 0 {
			t.Errorf("PD2 missed on full-utilization set %v: %+v", set, stats.Misses[0])
		}
	}
}

// TestEPDFNotOptimal: earliest-pseudo-deadline-first without tie-breaks
// misses deadlines on a feasible fully-utilized set (which is why the PD²
// tie-breaks exist), while PD², PD, and PF schedule the very same set
// cleanly. The set was found by randomized search and is pinned for
// regression: eight tasks with total weight exactly 5 on five processors.
func TestEPDFNotOptimal(t *testing.T) {
	set := task.Set{
		task.MustNew("T0", 4, 9), task.MustNew("T1", 3, 6), task.MustNew("T2", 1, 2),
		task.MustNew("T3", 8, 9), task.MustNew("T4", 6, 10), task.MustNew("T5", 3, 6),
		task.MustNew("T6", 9, 10), task.MustNew("T7", 2, 3),
	}
	const m = 5
	if set.TotalWeight().CmpInt(m) != 0 {
		t.Fatalf("counterexample no longer fully utilizes %d processors", m)
	}
	run := func(alg Algorithm) Stats {
		s := NewScheduler(m, alg, Options{})
		for _, tk := range set {
			if err := s.Join(tk); err != nil {
				t.Fatalf("join: %v", err)
			}
		}
		return runToHyperperiod(t, s, set, 2)
	}
	if misses := run(EPDF).Misses; len(misses) == 0 {
		t.Error("EPDF scheduled the pinned counterexample; expected a miss")
	}
	for _, alg := range []Algorithm{PD2, PD, PF} {
		if misses := run(alg).Misses; len(misses) != 0 {
			t.Errorf("%s missed on the feasible counterexample: %+v", alg, misses[0])
		}
	}
}

// TestERfairNoMissesAndWorkConserving: ERfair-PD² still meets all deadlines
// and never idles a processor while eligible work exists.
func TestERfairNoMissesAndWorkConserving(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 15; trial++ {
		m := 1 + r.Intn(3)
		set := randomFeasibleSet(r, m, 6, 10)
		if len(set) == 0 {
			continue
		}
		s := NewScheduler(m, PD2, Options{EarlyRelease: true})
		for _, tk := range set {
			if err := s.Join(tk); err != nil {
				t.Fatalf("join: %v", err)
			}
		}
		h := set.Hyperperiod() * 2
		if h > 50000 {
			h = 50000
		}
		for s.Now() < h {
			assigned := s.Step()
			// Work conservation: if a processor idled, the ready queue
			// must have been empty after selection.
			if len(assigned) < m && s.readyLen() > 0 {
				t.Fatalf("trial %d: processor idle at t=%d with %d ready subtasks", trial, s.Now()-1, s.readyLen())
			}
		}
		s.FinishMisses(h)
		if n := len(s.Stats().Misses); n != 0 {
			t.Fatalf("trial %d: ERfair missed %d deadlines on %v", trial, n, set)
		}
	}
}

// TestPfairNotWorkConserving: under plain Pfair a subtask that ran early
// leaves its task ineligible until the next window, so a lone task of
// weight 1/2 on one processor idles every other slot even though it has
// future work.
func TestPfairNotWorkConserving(t *testing.T) {
	s := NewScheduler(1, PD2, Options{})
	if err := s.Join(task.MustNew("T", 1, 2)); err != nil {
		t.Fatal(err)
	}
	busy := 0
	for s.Now() < 10 {
		if len(s.Step()) > 0 {
			busy++
		}
	}
	if busy != 5 {
		t.Fatalf("weight-1/2 task got %d slots of 10, want exactly 5", busy)
	}
	// With early release the same task runs every slot.
	s2 := NewScheduler(1, PD2, Options{EarlyRelease: true})
	if err := s2.Join(task.MustNew("T", 5, 10)); err != nil {
		t.Fatal(err)
	}
	busy2 := 0
	for s2.Now() < 10 {
		if len(s2.Step()) > 0 {
			busy2++
		}
	}
	// Subtasks 1..5 of the first job release eagerly; the job boundary
	// still gates subtask 6 to t=10. 5 busy slots then idle.
	if busy2 != 5 {
		t.Fatalf("ERfair 5/10 task got %d busy slots in first period, want 5", busy2)
	}
	// But they must be the FIRST five slots (work conserving).
	s3 := NewScheduler(1, PD2, Options{EarlyRelease: true})
	if err := s3.Join(task.MustNew("T", 5, 10)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if len(s3.Step()) != 1 {
			t.Fatalf("ERfair idled at slot %d with eligible work", i)
		}
	}
	if len(s3.Step()) != 0 {
		t.Fatal("ERfair ran a 6th subtask before the second job released")
	}
}

// TestWeightOneTaskRunsEverySlot: a weight-1 task occupies a processor in
// every slot and never migrates under affinity.
func TestWeightOneTaskRunsEverySlot(t *testing.T) {
	set := task.Set{task.MustNew("full", 3, 3), task.MustNew("half", 1, 2)}
	s := NewScheduler(2, PD2, Options{})
	for _, tk := range set {
		if err := s.Join(tk); err != nil {
			t.Fatal(err)
		}
	}
	fullSlots := int64(0)
	s.OnSlot(func(tt int64, assigned []Assignment) {
		for _, a := range assigned {
			if a.Task == "full" {
				fullSlots++
			}
		}
	})
	s.RunUntil(60)
	if fullSlots != 60 {
		t.Fatalf("weight-1 task ran %d of 60 slots", fullSlots)
	}
	if mg := s.Stats().Migrations; mg != 0 {
		t.Fatalf("migrations = %d, want 0 for this set", mg)
	}
	if len(s.Stats().Misses) != 0 {
		t.Fatal("unexpected misses")
	}
}

// TestPreemptionBound: the paper's example — a task with period 6 and cost
// 5 has only one unscheduled quantum per period, so each job suffers at
// most one preemption (min(E−1, P−E) = 1).
func TestPreemptionBound(t *testing.T) {
	s := NewScheduler(1, PD2, Options{})
	if err := s.Join(task.MustNew("T", 5, 6)); err != nil {
		t.Fatal(err)
	}
	const jobs = 50
	s.RunUntil(6 * jobs)
	if p := s.Stats().Preemptions; p > jobs {
		t.Fatalf("preemptions = %d over %d jobs, bound is 1/job", p, jobs)
	}
	if len(s.Stats().Misses) != 0 {
		t.Fatal("unexpected misses")
	}
}

// TestDeterminism: two schedulers over the same input produce identical
// traces.
func TestDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	set := randomFeasibleSet(r, 3, 8, 15)
	trace := func() string {
		s := NewScheduler(3, PD2, Options{})
		out := ""
		s.OnSlot(func(tt int64, assigned []Assignment) {
			for _, a := range assigned {
				out += fmt.Sprintf("%d:%d=%s/%d;", tt, a.Proc, a.Task, a.Subtask)
			}
		})
		for _, tk := range set {
			if err := s.Join(tk); err != nil {
				t.Fatal(err)
			}
		}
		s.RunUntil(2000)
		return out
	}
	if a, b := trace(), trace(); a != b {
		t.Fatal("identical runs produced different traces")
	}
}

// TestNoParallelism: a task is never scheduled on two processors in the
// same slot (Section 2: "migration is allowed but parallelism is not").
func TestNoParallelism(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	set := randomFeasibleSet(r, 4, 10, 9)
	s := NewScheduler(4, PD2, Options{EarlyRelease: true})
	s.OnSlot(func(tt int64, assigned []Assignment) {
		seen := map[string]bool{}
		for _, a := range assigned {
			if seen[a.Task] {
				t.Fatalf("task %s scheduled twice in slot %d", a.Task, tt)
			}
			seen[a.Task] = true
		}
	})
	for _, tk := range set {
		if err := s.Join(tk); err != nil {
			t.Fatal(err)
		}
	}
	s.RunUntil(5000)
}

// TestSubtasksInWindows: in a plain Pfair run every allocation lands inside
// the subtask's window [r, d).
func TestSubtasksInWindows(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	set := randomFeasibleSet(r, 2, 6, 11)
	pats := map[string]*Pattern{}
	for _, tk := range set {
		pats[tk.Name] = NewPattern(tk.Cost, tk.Period)
	}
	s := NewScheduler(2, PD2, Options{})
	s.OnSlot(func(tt int64, assigned []Assignment) {
		for _, a := range assigned {
			pt := pats[a.Task]
			if tt < pt.Release(a.Subtask) || tt >= pt.Deadline(a.Subtask) {
				t.Fatalf("subtask %s/%d scheduled at %d outside window [%d,%d)",
					a.Task, a.Subtask, tt, pt.Release(a.Subtask), pt.Deadline(a.Subtask))
			}
		}
	})
	for _, tk := range set {
		if err := s.Join(tk); err != nil {
			t.Fatal(err)
		}
	}
	s.RunUntil(3000)
	if len(s.Stats().Misses) != 0 {
		t.Fatal("unexpected misses")
	}
}

// TestJoinRejectsOverload: Equation (2) gates admission.
func TestJoinRejectsOverload(t *testing.T) {
	s := NewScheduler(2, PD2, Options{})
	if err := s.Join(task.MustNew("A", 3, 4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Join(task.MustNew("B", 3, 4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Join(task.MustNew("C", 1, 2)); err != nil {
		t.Fatal(err) // exactly fills 2.0
	}
	if err := s.Join(task.MustNew("D", 1, 1000)); err == nil {
		t.Fatal("join above capacity was accepted")
	}
	if err := s.Join(task.MustNew("A", 1, 1000)); err == nil {
		t.Fatal("duplicate name was accepted")
	}
}

// TestAffinityReducesMigrations compares migration counts with and without
// the affinity assignment pass on the same workload.
func TestAffinityReducesMigrations(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	set := randomFeasibleSet(r, 4, 10, 12)
	run := func(noAff bool) int64 {
		s := NewScheduler(4, PD2, Options{NoAffinity: noAff})
		for _, tk := range set {
			if err := s.Join(tk); err != nil {
				t.Fatal(err)
			}
		}
		s.RunUntil(20000)
		return s.Stats().Migrations
	}
	with, without := run(false), run(true)
	if with > without {
		t.Fatalf("affinity increased migrations: %d with vs %d without", with, without)
	}
}
