package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mkPrio(pat *Pattern, i int64, id int) *prio {
	group := int64(0)
	if pat.Heavy() {
		group = pat.GroupDeadline(i)
	}
	return &prio{
		deadline: pat.Deadline(i),
		bbit:     pat.BBit(i),
		group:    group,
		pat:      pat,
		index:    i,
		id:       id,
	}
}

func TestPD2DeadlineFirst(t *testing.T) {
	a := mkPrio(NewPattern(1, 3), 1, 0) // d=3
	b := mkPrio(NewPattern(1, 2), 1, 1) // d=2
	if !less(PD2, b, a) || less(PD2, a, b) {
		t.Error("earlier deadline must win under PD2")
	}
}

func TestPD2BBitTieBreak(t *testing.T) {
	// Both deadlines are 2; 8/11's T1 has b=1, 1/2's T1 has b=0.
	a := mkPrio(NewPattern(8, 11), 1, 0)
	b := mkPrio(NewPattern(1, 2), 1, 1)
	if a.deadline != b.deadline {
		t.Fatalf("test setup: deadlines differ (%d vs %d)", a.deadline, b.deadline)
	}
	if a.bbit != 1 || b.bbit != 0 {
		t.Fatalf("test setup: b-bits %d, %d", a.bbit, b.bbit)
	}
	if !less(PD2, a, b) || less(PD2, b, a) {
		t.Error("b-bit 1 must beat b-bit 0 on a deadline tie")
	}
}

func TestPD2GroupDeadlineTieBreak(t *testing.T) {
	// Two heavy tasks with equal deadline and b=1 but different group
	// deadlines: 8/11 T1 (d=2, D=4) vs 2/3 T1 (d=2, D=3).
	a := mkPrio(NewPattern(8, 11), 1, 0)
	b := mkPrio(NewPattern(2, 3), 1, 1)
	if a.deadline != b.deadline || a.bbit != b.bbit {
		t.Fatalf("test setup: d=(%d,%d) b=(%d,%d)", a.deadline, b.deadline, a.bbit, b.bbit)
	}
	if a.group == b.group {
		t.Fatalf("test setup: equal group deadlines %d", a.group)
	}
	later, earlier := a, b
	if b.group > a.group {
		later, earlier = b, a
	}
	if !less(PD2, later, earlier) || less(PD2, earlier, later) {
		t.Error("later group deadline must win on a (d, b) tie")
	}
}

func TestIDBreaksFullTies(t *testing.T) {
	for _, alg := range []Algorithm{PD2, PD, PF, EPDF} {
		a := mkPrio(NewPattern(2, 3), 1, 0)
		b := mkPrio(NewPattern(2, 3), 1, 1)
		if !less(alg, a, b) || less(alg, b, a) {
			t.Errorf("%s: id tie-break not total/antisymmetric", alg)
		}
	}
}

func TestPFCompare(t *testing.T) {
	// Same first deadline and b-bit, but the chains diverge later: 8/11
	// keeps b=1 through T7 while 3/4 hits b=0 at T3. Walk: both have
	// d(T1)=2 b=1; next deadlines d(T2): 8/11→3, 3/4→3; b: 8/11→1,
	// 3/4→1; T3: d: 8/11→5, 3/4→4 ⇒ 3/4's chain has the earlier
	// deadline and wins.
	a := NewPattern(8, 11)
	b := NewPattern(3, 4)
	if got := pfCompare(a, 1, 0, b, 1, 0, pfMaxDepth); got != -1 {
		t.Errorf("pfCompare(8/11, 3/4) = %d, want -1", got)
	}
	if got := pfCompare(b, 1, 0, a, 1, 0, pfMaxDepth); got != 1 {
		t.Errorf("pfCompare(3/4, 8/11) = %d, want 1", got)
	}
	// Identical patterns tie.
	if got := pfCompare(a, 1, 0, NewPattern(8, 11), 1, 0, pfMaxDepth); got != 0 {
		t.Errorf("pfCompare(identical) = %d, want 0", got)
	}
	// Offsets shift absolute deadlines.
	if got := pfCompare(a, 1, 1, NewPattern(8, 11), 1, 0, pfMaxDepth); got != -1 {
		t.Errorf("pfCompare(shifted) = %d, want -1", got)
	}
}

// TestQuickLessIsStrictWeakOrder: for each algorithm, less is
// irreflexive and antisymmetric, and full ties resolve by id — properties
// the heap relies on.
func TestQuickLessIsStrictWeakOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ps := make([]*prio, 3)
		for k := range ps {
			p := int64(1 + r.Intn(12))
			e := int64(1 + r.Intn(int(p)))
			ps[k] = mkPrio(NewPattern(e, p), int64(1+r.Intn(6)), k)
		}
		for _, alg := range []Algorithm{PD2, PD, PF, EPDF} {
			for _, a := range ps {
				if less(alg, a, a) {
					return false // reflexive
				}
				for _, b := range ps {
					if a != b && less(alg, a, b) && less(alg, b, a) {
						return false // symmetric
					}
					if a != b && !less(alg, a, b) && !less(alg, b, a) {
						return false // incomparable: id must decide
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAlgorithmString(t *testing.T) {
	for alg, want := range map[Algorithm]string{PD2: "PD2", PD: "PD", PF: "PF", EPDF: "EPDF", Algorithm(9): "Algorithm(9)"} {
		if got := alg.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
