package core

import (
	"fmt"
	"math/rand"
	"testing"

	"pfair/internal/rational"
	"pfair/internal/task"
)

// delayModel is a ReleaseModel with explicit cumulative offsets.
type delayModel struct {
	offsets map[int64]int64 // subtask -> θ(i); missing means carry previous
	early   map[int64]int64
	maxI    int64
}

func newDelayModel() *delayModel {
	return &delayModel{offsets: map[int64]int64{}, early: map[int64]int64{}}
}

// delayFrom adds extra delay to all subtasks at or after i.
func (d *delayModel) delayFrom(i, extra int64) {
	if i > d.maxI {
		d.maxI = i
	}
	d.offsets[i] += extra
}

func (d *delayModel) Offset(i int64) int64 {
	total := int64(0)
	for j := int64(1); j <= i && j <= d.maxI; j++ {
		total += d.offsets[j]
	}
	return total
}

func (d *delayModel) Earliness(i int64) int64 { return d.early[i] }

// TestFig1bISWindows pins Figure 1(b): the same weight-8/11 task with
// subtask T₅ released one slot late shifts all windows from T₅ on by one.
func TestFig1bISWindows(t *testing.T) {
	s := NewScheduler(1, PD2, Options{})
	dm := newDelayModel()
	dm.delayFrom(5, 1)
	if err := s.JoinModel(task.MustNew("T", 8, 11), dm); err != nil {
		t.Fatal(err)
	}
	pt := NewPattern(8, 11)
	for i := int64(1); i <= 8; i++ {
		shift := int64(0)
		if i >= 5 {
			shift = 1
		}
		wantR := pt.Release(i) + shift
		wantD := pt.Deadline(i) + shift
		off := s.tasks["T"].offsetOf(i)
		if gotR := off + pt.Release(i); gotR != wantR {
			t.Errorf("IS r(T%d) = %d, want %d", i, gotR, wantR)
		}
		if gotD := off + pt.Deadline(i); gotD != wantD {
			t.Errorf("IS d(T%d) = %d, want %d", i, gotD, wantD)
		}
	}
}

// TestISRandomDelaysNoMisses: PD² optimally schedules intra-sporadic task
// systems — random IS delays must not induce misses as long as Equation (2)
// holds.
func TestISRandomDelaysNoMisses(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 12; trial++ {
		m := 1 + r.Intn(3)
		set := randomFeasibleSet(r, m, 5, 10)
		if len(set) == 0 {
			continue
		}
		s := NewScheduler(m, PD2, Options{})
		for _, tk := range set {
			dm := newDelayModel()
			// Sprinkle random delays over the first ~200 subtasks.
			for j := 0; j < 10; j++ {
				dm.delayFrom(int64(1+r.Intn(200)), int64(r.Intn(4)))
			}
			if err := s.JoinModel(tk, dm); err != nil {
				t.Fatal(err)
			}
		}
		h := int64(3000)
		s.RunUntil(h)
		s.FinishMisses(h)
		if n := len(s.Stats().Misses); n != 0 {
			t.Fatalf("trial %d: IS-PD² missed %d deadlines (first %+v) on %v",
				trial, n, s.Stats().Misses[0], set)
		}
	}
}

// TestISEarlinessKeepsDeadline: an early (bursty) arrival may execute
// before its Pfair release but its deadline is unchanged (Section 2: the
// deadline is "postponed to where it would have been had the packet arrived
// on time").
func TestISEarlinessKeepsDeadline(t *testing.T) {
	dm := newDelayModel()
	dm.early[3] = 2 // subtask 3 arrives two slots early
	s := NewScheduler(1, PD2, Options{})
	if err := s.JoinModel(task.MustNew("T", 1, 4), dm); err != nil {
		t.Fatal(err)
	}
	var slots []int64
	s.OnSlot(func(tt int64, assigned []Assignment) {
		for _, a := range assigned {
			if a.Task == "T" {
				slots = append(slots, tt)
			}
		}
	})
	s.RunUntil(12)
	// Window of T3 is [8, 12); with earliness 2 it may run from slot 6.
	// As the only task, PD² runs each subtask as soon as eligible:
	// T1 at 0, T2 at 4, T3 at 6 (early), T4 at 12 (not reached).
	want := []int64{0, 4, 6}
	if len(slots) != len(want) {
		t.Fatalf("allocations at %v, want %v", slots, want)
	}
	for i := range want {
		if slots[i] != want[i] {
			t.Fatalf("allocations at %v, want %v", slots, want)
		}
	}
	if len(s.Stats().Misses) != 0 {
		t.Fatal("unexpected misses")
	}
}

// TestLeaveRuleLight: a light task's earliest leave is d(Tᵢ) + b(Tᵢ) of its
// last-scheduled subtask.
func TestLeaveRuleLight(t *testing.T) {
	s := NewScheduler(1, PD2, Options{})
	if err := s.Join(task.MustNew("T", 2, 5)); err != nil { // light, b(T1)=1
		t.Fatal(err)
	}
	// Before any allocation, leaving is immediate.
	at, err := s.EarliestLeave("T")
	if err != nil || at != 0 {
		t.Fatalf("EarliestLeave before scheduling = %d, %v; want 0", at, err)
	}
	s.Step() // schedules T1 at slot 0
	pt := NewPattern(2, 5)
	want := pt.Deadline(1) + int64(pt.BBit(1))
	at, err = s.EarliestLeave("T")
	if err != nil {
		t.Fatal(err)
	}
	if at != want {
		t.Fatalf("light leave time = %d, want d+b = %d", at, want)
	}
}

// TestLeaveRuleHeavy: a heavy task leaves strictly after its next group
// deadline.
func TestLeaveRuleHeavy(t *testing.T) {
	s := NewScheduler(1, PD2, Options{})
	if err := s.Join(task.MustNew("T", 8, 11)); err != nil {
		t.Fatal(err)
	}
	s.Step() // schedules T1 at slot 0
	pt := NewPattern(8, 11)
	want := pt.GroupDeadline(1) + 1
	at, err := s.EarliestLeave("T")
	if err != nil {
		t.Fatal(err)
	}
	if at != want {
		t.Fatalf("heavy leave time = %d, want D+1 = %d", at, want)
	}
}

// TestLeaveFreesCapacity: after the departure takes effect a replacement
// task fits again, and the whole dance causes no misses.
func TestLeaveFreesCapacity(t *testing.T) {
	s := NewScheduler(1, PD2, Options{})
	if err := s.Join(task.MustNew("A", 1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Join(task.MustNew("B", 1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Join(task.MustNew("C", 1, 4)); err == nil {
		t.Fatal("overload join accepted")
	}
	at, err := s.Leave("B")
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(at + 1) // departure applied at slot `at`
	if err := s.Join(task.MustNew("C", 1, 2)); err != nil {
		t.Fatalf("join after leave rejected: %v", err)
	}
	s.RunUntil(at + 40)
	s.FinishMisses(at + 40)
	if n := len(s.Stats().Misses); n != 0 {
		t.Fatalf("leave/join sequence caused %d misses", n)
	}
	names := s.Tasks()
	if len(names) != 2 || names[0] != "A" || names[1] != "C" {
		t.Fatalf("tasks after leave = %v", names)
	}
}

// TestReweight models Section 5.2's virtual-reality rendering task whose
// weight changes: reweighting is a leave-and-join and must not cause
// misses.
func TestReweight(t *testing.T) {
	s := NewScheduler(2, PD2, Options{})
	for _, tk := range []*task.Task{task.MustNew("render", 2, 3), task.MustNew("bg", 2, 3), task.MustNew("aux", 1, 2)} {
		if err := s.Join(tk); err != nil {
			t.Fatal(err)
		}
	}
	s.RunUntil(5)
	at, err := s.Reweight("render", 1, 3) // scene got simpler
	if err != nil {
		t.Fatal(err)
	}
	if at < 5 {
		t.Fatalf("reweight effective at %d, before now", at)
	}
	s.RunUntil(at + 60)
	s.FinishMisses(at + 60)
	if n := len(s.Stats().Misses); n != 0 {
		t.Fatalf("reweighting caused %d misses: %+v", n, s.Stats().Misses[0])
	}
	// The replacement keeps the name and the new weight.
	st := s.tasks["render"]
	if st == nil || st.task.Cost != 1 || st.task.Period != 3 {
		t.Fatalf("render not reweighted: %+v", st)
	}
	// Upward reweight beyond capacity must fail fast: 2/3 + 1/2 already
	// committed, so raising render to weight 1 needs 13/6 > 2.
	if _, err := s.Reweight("render", 3, 3); err == nil {
		t.Fatal("infeasible reweight accepted")
	}
	// A feasible upward reweight reserves capacity immediately: raising
	// render to 5/6 brings the total to 2, so nothing else may join even
	// before the swap takes effect.
	if _, err := s.Reweight("render", 5, 6); err != nil {
		t.Fatalf("feasible upward reweight rejected: %v", err)
	}
	if err := s.Join(task.MustNew("late", 1, 100)); err == nil {
		t.Fatal("join during reserved reweight accepted")
	}
}

// TestJoinMidRunNoMisses: tasks joining a running system at staggered times
// never cause misses while Equation (2) holds (Section 2's headline benefit
// for dynamic systems).
func TestJoinMidRunNoMisses(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		m := 2 + r.Intn(2)
		s := NewScheduler(m, PD2, Options{})
		weight := rational.NewAcc()
		joined := 0
		for tt := int64(0); tt < 2000; tt++ {
			if r.Intn(20) == 0 && joined < 12 {
				p := int64(2 + r.Intn(12))
				e := int64(1 + r.Intn(int(p)))
				w := rational.New(e, p)
				if weight.Clone().Add(w).CmpInt(int64(m)) <= 0 {
					weight.Add(w)
					name := fmt.Sprintf("J%d", joined)
					if err := s.Join(task.MustNew(name, e, p)); err != nil {
						t.Fatalf("join: %v", err)
					}
					joined++
				}
			}
			s.Step()
		}
		s.FinishMisses(2000)
		if n := len(s.Stats().Misses); n != 0 {
			t.Fatalf("trial %d: %d misses with dynamic joins", trial, n)
		}
	}
}

// TestChurnNoMisses: random joins AND leaves under the Section 2 rules keep
// the system miss-free.
func TestChurnNoMisses(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 8; trial++ {
		m := 2
		s := NewScheduler(m, PD2, Options{})
		nextName := 0
		for tt := int64(0); tt < 3000; tt++ {
			switch r.Intn(25) {
			case 0:
				p := int64(2 + r.Intn(10))
				e := int64(1 + r.Intn(int(p)))
				name := fmt.Sprintf("C%d", nextName)
				if s.TotalWeight().Add(rational.New(e, p)).CmpInt(int64(m)) <= 0 {
					if err := s.Join(task.MustNew(name, e, p)); err != nil {
						t.Fatalf("join: %v", err)
					}
					nextName++
				}
			case 1:
				names := s.Tasks()
				if len(names) > 0 {
					if _, err := s.Leave(names[r.Intn(len(names))]); err != nil {
						t.Fatalf("leave: %v", err)
					}
				}
			}
			s.Step()
		}
		s.FinishMisses(3000)
		if n := len(s.Stats().Misses); n != 0 {
			t.Fatalf("trial %d: %d misses under churn, first %+v", trial, n, s.Stats().Misses[0])
		}
	}
}

// TestFailProcessorsTransparent: Section 5.4 — losing K of M processors is
// transparent when total weight ≤ M − K.
func TestFailProcessorsTransparent(t *testing.T) {
	set := task.Set{
		task.MustNew("A", 2, 3), task.MustNew("B", 2, 3), task.MustNew("C", 2, 3),
	} // Σwt = 2
	s := NewScheduler(3, PD2, Options{})
	for _, tk := range set {
		if err := s.Join(tk); err != nil {
			t.Fatal(err)
		}
	}
	s.RunUntil(30)
	if got := s.FailProcessors(1); got != 2 {
		t.Fatalf("FailProcessors returned %d processors", got)
	}
	s.RunUntil(300)
	s.FinishMisses(300)
	if n := len(s.Stats().Misses); n != 0 {
		t.Fatalf("processor loss caused %d misses despite Σwt ≤ M−K", n)
	}
}

// TestFailProcessorsOverload: when the survivors cannot carry the load the
// system degrades by recording misses rather than wedging, and reweighting
// non-critical tasks restores schedulability (Section 5.4's graceful
// degradation).
func TestFailProcessorsOverload(t *testing.T) {
	s := NewScheduler(2, PD2, Options{})
	crit := task.MustNew("critical", 2, 3)
	crit.Critical = true
	bulk := task.MustNew("bulk", 2, 3)
	extra := task.MustNew("extra", 2, 3)
	for _, tk := range []*task.Task{crit, bulk, extra} {
		if err := s.Join(tk); err != nil {
			t.Fatal(err)
		}
	}
	s.RunUntil(30)
	s.FailProcessors(1) // Σwt = 2 > 1: overload
	// Immediately reweight the non-critical tasks down so the survivors
	// fit: 2/3 + 1/6 + 1/6 = 1.
	if _, err := s.Reweight("bulk", 1, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reweight("extra", 1, 6); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(600)
	s.FinishMisses(600)
	for _, m := range s.Stats().Misses {
		if m.Task == "critical" && m.Deadline > 60 {
			t.Fatalf("critical task still missing after reweighting settled: %+v", m)
		}
	}
}

// TestLeaveUnknownTask: error paths.
func TestLeaveUnknownTask(t *testing.T) {
	s := NewScheduler(1, PD2, Options{})
	if _, err := s.Leave("ghost"); err == nil {
		t.Error("Leave of unknown task succeeded")
	}
	if _, err := s.EarliestLeave("ghost"); err == nil {
		t.Error("EarliestLeave of unknown task succeeded")
	}
	if _, err := s.Reweight("ghost", 1, 2); err == nil {
		t.Error("Reweight of unknown task succeeded")
	}
	if _, err := s.Lag("ghost"); err == nil {
		t.Error("Lag of unknown task succeeded")
	}
}
