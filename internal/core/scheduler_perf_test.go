package core

import (
	"testing"

	"pfair/internal/engine"
	"pfair/internal/obs"
	"pfair/internal/parallel"
	"pfair/internal/taskgen"
)

// The experiment harness drives many Scheduler instances from a worker
// pool, so the scheduler must be (a) allocation-free per slot in steady
// state — the paper's Figure 2 y-axis is per-invocation cost, and
// allocator noise inflates exactly that measurement — and (b) free of
// hidden shared state between instances, which go test -race checks while
// the invariant test below runs schedulers concurrently.

// newLoadedScheduler builds a scheduler with a feasible random workload.
func newLoadedScheduler(tb testing.TB, m, n int, util float64, seed int64) *Scheduler {
	tb.Helper()
	g := taskgen.New(seed)
	set, err := g.Set("T", n, util, taskgen.DefaultPeriodsSlots)
	if err != nil {
		tb.Fatalf("taskgen: %v", err)
	}
	s := NewScheduler(m, PD2, Options{})
	for _, t := range set {
		if err := s.Join(t); err != nil {
			// Rounding can push the total marginally over m; skip.
			continue
		}
	}
	if len(s.Tasks()) == 0 {
		tb.Fatal("no tasks admitted")
	}
	return s
}

// TestStepSteadyStateZeroAllocs pins the zero-allocation hot path: after
// warm-up (scratch and queue capacities settled), Step must not allocate.
func TestStepSteadyStateZeroAllocs(t *testing.T) {
	for _, alg := range []Algorithm{PD2, PD, EPDF} {
		s := newLoadedScheduler(t, 2, 100, 1.9, 42)
		s.alg = alg // field write before any Step; comparator reads it lazily
		s.RunUntil(2000)
		allocs := testing.AllocsPerRun(500, func() { s.Step() })
		if allocs != 0 {
			t.Errorf("%v: Step allocates %v times per slot in steady state, want 0", alg, allocs)
		}
	}
}

// BenchmarkStepAllocs measures the steady-state cost of one Step and
// enforces the 0 allocs/op invariant dynamically. It is the runtime
// counterpart of the static hotpath analyzer (internal/lint): the
// analyzer pins allocation *sources* at the offending line, while this
// benchmark catches allocations the analyzer's per-function syntactic
// rules cannot see, such as interface boxing inside callees.
func BenchmarkStepAllocs(b *testing.B) {
	s := newLoadedScheduler(b, 2, 100, 1.9, 42)
	s.RunUntil(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	b.StopTimer()
	if allocs := testing.AllocsPerRun(100, func() { s.Step() }); allocs != 0 {
		b.Fatalf("Step allocates %v/op in steady state, want 0", allocs)
	}
}

// BenchmarkStepAllocsObserved is BenchmarkStepAllocs with a live trace
// recorder and metrics block attached: the observability layer's contract
// is that observation changes what is *recorded*, never what is
// *allocated*. The recorder's ring buffer and the metrics instruments are
// preallocated, so the observed hot path must also be 0 allocs/op.
func BenchmarkStepAllocsObserved(b *testing.B) {
	s := newLoadedScheduler(b, 2, 100, 1.9, 42)
	s.Observe(obs.NewRecorder(obs.DefaultRingCapacity), obs.NewSchedulerMetrics(nil))
	s.RunUntil(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	b.StopTimer()
	if allocs := testing.AllocsPerRun(100, func() { s.Step() }); allocs != 0 {
		b.Fatalf("observed Step allocates %v/op in steady state, want 0", allocs)
	}
	if s.Recorder().Total() == 0 {
		b.Fatal("recorder attached but no events recorded")
	}
}

// TestStepObservedZeroAllocs is the test-mode twin of
// BenchmarkStepAllocsObserved, so `go test` alone (CI tier 1) catches an
// allocating emission site without running benchmarks.
func TestStepObservedZeroAllocs(t *testing.T) {
	s := newLoadedScheduler(t, 2, 100, 1.9, 42)
	s.Observe(obs.NewRecorder(1<<12), obs.NewSchedulerMetrics(nil))
	s.RunUntil(2000)
	if allocs := testing.AllocsPerRun(500, func() { s.Step() }); allocs != 0 {
		t.Fatalf("observed Step allocates %v/op in steady state, want 0", allocs)
	}
	if s.Recorder().Total() == 0 {
		t.Fatal("recorder attached but no events recorded")
	}
}

// profiledScheduler builds a loaded scheduler with every observability
// attachment live at once: a phase profiler sampling every 4th step, a
// trace recorder with a per-task accounting table behind it, and a
// metrics block. This is the worst-case instrumented configuration.
func profiledScheduler(tb testing.TB) *Scheduler {
	tb.Helper()
	g := taskgen.New(42)
	set, err := g.Set("T", 100, 1.9, taskgen.DefaultPeriodsSlots)
	if err != nil {
		tb.Fatalf("taskgen: %v", err)
	}
	prof := obs.NewPhaseProfiler(nil, 4)
	s := NewScheduler(2, PD2, Options{}, engine.WithProfiler(prof))
	for _, t := range set {
		if err := s.Join(t); err != nil {
			continue
		}
	}
	if len(s.Tasks()) == 0 {
		tb.Fatal("no tasks admitted")
	}
	rec := obs.NewRecorder(1 << 12)
	rec.SetAccounting(obs.NewAccounting())
	s.Observe(rec, obs.NewSchedulerMetrics(nil))
	return s
}

// BenchmarkStepAllocsProfiled is BenchmarkStepAllocsObserved with the
// engine phase profiler sampling every 4th step and a per-task
// accounting table consuming the event stream. The profiler's histograms
// and the accounting table's dense rows are preallocated during warm-up,
// so even the fully instrumented hot path must stay 0 allocs/op.
func BenchmarkStepAllocsProfiled(b *testing.B) {
	s := profiledScheduler(b)
	s.RunUntil(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	b.StopTimer()
	if allocs := testing.AllocsPerRun(100, func() { s.Step() }); allocs != 0 {
		b.Fatalf("profiled Step allocates %v/op in steady state, want 0", allocs)
	}
	if s.eng.Profiler().Samples.Value() == 0 {
		b.Fatal("profiler attached but no samples taken")
	}
}

// TestStepProfiledZeroAllocs is the test-mode twin of
// BenchmarkStepAllocsProfiled for CI tier 1.
func TestStepProfiledZeroAllocs(t *testing.T) {
	s := profiledScheduler(t)
	s.RunUntil(2000)
	if allocs := testing.AllocsPerRun(500, func() { s.Step() }); allocs != 0 {
		t.Fatalf("profiled Step allocates %v/op in steady state, want 0", allocs)
	}
	prof := s.eng.Profiler()
	if prof.Samples.Value() == 0 {
		t.Fatal("profiler attached but no samples taken")
	}
	// Every sample brackets all five phases exactly once.
	for name, h := range map[string]*obs.Histogram{
		"release": prof.Release, "pick": prof.Pick, "dispatch": prof.Dispatch,
		"account": prof.Account, "next": prof.Next,
	} {
		if h.Count() != prof.Samples.Value() {
			t.Errorf("phase %s has %d observations, want one per sample (%d)", name, h.Count(), prof.Samples.Value())
		}
	}
	acct := s.Recorder().Accounting()
	if acct == nil || acct.Events() == 0 {
		t.Fatal("accounting table attached but consumed no events")
	}
}

// TestStepInvariantsConcurrent runs independent schedulers from a worker
// pool — the parallel harness's usage pattern — and checks per-slot
// structural invariants plus stats monotonicity on each. Run under
// go test -race this doubles as the harness's data-race regression test.
func TestStepInvariantsConcurrent(t *testing.T) {
	const trials = 8
	errs := make([]string, trials)
	parallel.For(4, trials, func(trial int) {
		fail := func(msg string) {
			if errs[trial] == "" {
				errs[trial] = msg
			}
		}
		s := newLoadedScheduler(t, 4, 16, 3.5, taskgen.SubSeed(99, int64(trial)))
		m := s.Processors()
		var prev Stats
		for slot := int64(0); slot < 2000; slot++ {
			assigned := s.Step()
			if len(assigned) > m {
				fail("more assignments than processors")
			}
			procSeen := map[int]bool{}
			taskSeen := map[string]bool{}
			for _, a := range assigned {
				if a.Proc < 0 || a.Proc >= m {
					fail("assignment to a nonexistent processor")
				}
				if procSeen[a.Proc] {
					fail("two tasks on one processor in one slot")
				}
				if taskSeen[a.Task] {
					fail("one task on two processors in one slot")
				}
				procSeen[a.Proc] = true
				taskSeen[a.Task] = true
			}
			st := s.Stats()
			if st.Slots != prev.Slots+1 {
				fail("Slots not incremented by exactly one")
			}
			if st.Allocations != prev.Allocations+int64(len(assigned)) {
				fail("Allocations out of step with assignments")
			}
			if st.ContextSwitches < prev.ContextSwitches ||
				st.Migrations < prev.Migrations ||
				st.Preemptions < prev.Preemptions ||
				len(st.Misses) < len(prev.Misses) {
				fail("stats counter decreased")
			}
			prev = st
		}
		if len(prev.Misses) != 0 {
			fail("feasible set missed a deadline")
		}
	})
	for trial, msg := range errs {
		if msg != "" {
			t.Errorf("trial %d: %s", trial, msg)
		}
	}
}
