package core

import "fmt"

// This file provides ready-made ReleaseModel implementations for the task
// classes of Section 2: sporadic tasks (minimum rather than exact job
// separation) and scripted intra-sporadic behaviour.

// SporadicModel delays whole jobs: job j is released Gap(j) slots after
// its earliest permitted time, so consecutive releases are separated by at
// least the period — the classic sporadic model, which the IS model
// generalizes. All subtasks of a job share its delay.
type SporadicModel struct {
	// Gap returns the extra separation before job j ≥ 1 (0 for a
	// punctual release). It must be non-negative. Gaps accumulate: a
	// late job shifts all later jobs.
	Gap func(job int64) int64
	// Cost is the task's per-job cost e, needed to map subtasks to jobs.
	Cost int64

	memo []int64 // memo[j-1] = cumulative offset of job j
}

// NewSporadicModel returns a sporadic release model for a task with the
// given per-job cost.
func NewSporadicModel(cost int64, gap func(job int64) int64) *SporadicModel {
	if cost <= 0 {
		//pfair:allowpanic constructor contract: cost is a static workload parameter, like NewPattern's
		panic("core: sporadic model needs a positive cost")
	}
	return &SporadicModel{Gap: gap, Cost: cost}
}

// Offset implements ReleaseModel: subtask i belongs to job ⌈i/e⌉ and
// carries that job's cumulative delay.
//
//pfair:hotpath
func (m *SporadicModel) Offset(i int64) int64 {
	job := (i-1)/m.Cost + 1
	for int64(len(m.memo)) < job {
		j := int64(len(m.memo)) + 1
		g := int64(0)
		if m.Gap != nil {
			g = m.Gap(j)
			if g < 0 {
				//pfair:allowpanic Gap callback contract: a negative gap would move a release into the past
				panic(fmt.Sprintf("core: negative sporadic gap %d for job %d", g, j))
			}
		}
		prev := int64(0)
		if j > 1 {
			prev = m.memo[j-2]
		}
		m.memo = append(m.memo, prev+g)
	}
	return m.memo[job-1]
}

// Earliness implements ReleaseModel (sporadic tasks are never early).
//
//pfair:hotpath
func (m *SporadicModel) Earliness(int64) int64 { return 0 }

// ScriptModel is a ReleaseModel driven by explicit per-subtask tables,
// convenient for constructing exact scenarios (such as Figure 1(b)) and
// for tests.
type ScriptModel struct {
	// Offsets maps a subtask index to its cumulative IS delay θ(i);
	// missing indices inherit the largest offset at a smaller index
	// (offsets are non-decreasing).
	Offsets map[int64]int64
	// Early maps a subtask index to its earliness.
	Early map[int64]int64
}

// Offset implements ReleaseModel.
//
//pfair:hotpath
func (m *ScriptModel) Offset(i int64) int64 {
	best := int64(0)
	for k, v := range m.Offsets { //pfair:orderinvariant max over all entries is commutative
		if k <= i && v > best {
			best = v
		}
	}
	return best
}

// Earliness implements ReleaseModel.
//
//pfair:hotpath
func (m *ScriptModel) Earliness(i int64) int64 {
	return m.Early[i]
}
